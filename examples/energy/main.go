// Energy-aware batch scheduling on a single machine: the active-time model
// (Sections 2-3 of the paper). A shared compute server can run up to g jobs
// per hour-slot and draws full power for every hour it is on; jobs arrive
// with deadlines and must receive their processing hours inside their
// windows (preemption at hour boundaries is fine). Minimizing active time
// minimizes the server's powered-on hours.
//
// The example schedules a synthetic batch trace with the three active-time
// algorithms of the repository (minimal feasible / Theorem 1, LP rounding /
// Theorem 2, and the exact unit solver on the unit-job part) and draws the
// resulting on/off profile.
//
// Run with: go run ./examples/energy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/activetime"
	"repro/internal/core"
)

const (
	hours   = 24
	coreCap = 3 // jobs per active hour (g)
)

func main() {
	in := trace(7)
	fmt.Printf("batch trace: %d jobs, g=%d, %d job-hours requested over %d hours\n\n",
		len(in.Jobs), in.G, in.TotalLength(), hours)

	lpres, err := activetime.SolveLP(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP lower bound: %.2f active hours (mass/g floor: %.2f)\n\n",
		lpres.Objective, float64(in.TotalLength())/float64(in.G))

	minimal, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
		Strategy: activetime.CloseRightToLeft,
	})
	if err != nil {
		log.Fatal(err)
	}
	show(in, "minimal feasible (3-approx, Theorem 1)", minimal)

	rounded, err := activetime.RoundLP(in)
	if err != nil {
		log.Fatal(err)
	}
	show(in, "LP rounding (2-approx, Theorem 2)", rounded.Schedule)
	fmt.Printf("  certificate: opened %d <= 2*LP = %.2f\n\n",
		rounded.Opened, 2*rounded.LPValue)

	exact, err := activetime.SolveExact(in, activetime.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	show(in, "exact (branch and bound)", exact)

	fmt.Println("on/off profile of the exact schedule (24 hours):")
	open := exact.OpenSet()
	var b strings.Builder
	for t := core.Time(1); t <= hours; t++ {
		if open[t] {
			b.WriteString("#")
		} else {
			b.WriteString(".")
		}
	}
	fmt.Printf("  |%s|\n", b.String())
	load := exact.Load()
	for _, t := range exact.Open {
		fmt.Printf("  hour %2d: %d/%d job-units\n", t, load[t], in.G)
	}
}

func show(in *core.Instance, name string, s *core.ActiveSchedule) {
	if err := core.VerifyActive(in, s); err != nil {
		log.Fatalf("%s: invalid schedule: %v", name, err)
	}
	fmt.Printf("%-42s %2d active hours\n", name, s.Cost())
}

// trace generates overnight batch jobs plus daytime interactive bursts,
// kept small enough for the exact solver.
func trace(seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	var jobs []core.Job
	id := 0
	add := func(r, d, p core.Time) {
		jobs = append(jobs, core.Job{ID: id, Release: r, Deadline: d, Length: p})
		id++
	}
	// Three overnight batches due by 8am.
	for i := 0; i < 3; i++ {
		p := core.Time(2 + rng.Intn(3))
		add(0, 8, p)
	}
	// Daytime jobs with tight windows.
	for i := 0; i < 5; i++ {
		r := core.Time(8 + rng.Intn(8))
		p := core.Time(1 + rng.Intn(2))
		add(r, r+p+core.Time(rng.Intn(3)), p)
	}
	// Evening flushes.
	for i := 0; i < 2; i++ {
		p := core.Time(1 + rng.Intn(2))
		add(18, 24, p)
	}
	in := &core.Instance{Name: fmt.Sprintf("energy(seed=%d)", seed), G: coreCap, Jobs: jobs}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}
	return in
}
