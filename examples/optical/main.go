// Optical network design: minimizing the fiber cost of Optical Add-Drop
// Multiplexers (OADMs), the application that introduced busy-time
// scheduling (Flammini et al. [5], Kumar-Rudra [11], Alicherry-Bhatia [1]).
//
// Lightpath requests occupy a contiguous segment of links on a line
// network; each fiber carries up to g wavelengths; the cost of a fiber is
// the span of links it must be lit on. Requests are exactly interval jobs
// (link index = time), fibers are machines, and fiber cost is busy time.
//
// The example generates a request trace on a 60-link line, compares
// FirstFit (the 4-approx), GreedyTracking (the paper's 3-approx) and
// PairCover (the 2-approx of Appendix A) against the demand-profile lower
// bound, then demonstrates the tight Figure 8 family.
//
// Run with: go run ./examples/optical
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/gen"
)

const (
	links       = 60
	wavelengths = 4 // g
	numRequests = 80
)

func main() {
	in := requests(2014)
	fmt.Printf("%d lightpath requests on a %d-link line, %d wavelengths per fiber\n\n",
		len(in.Jobs), links, wavelengths)

	dep := busytime.DemandProfileBound(in)
	fmt.Printf("demand-profile lower bound: %d lit link-segments\n\n", dep)

	for _, a := range []struct {
		name string
		run  busytime.IntervalAlgorithm
	}{
		{"FirstFit       (guarantee 4x)", busytime.FirstFit},
		{"GreedyTracking (guarantee 3x)", func(i *core.Instance) (*core.BusySchedule, error) {
			return busytime.GreedyTracking(i, busytime.GTOptions{})
		}},
		{"PairCover      (guarantee 2x)", busytime.PairCover},
	} {
		s, err := a.run(in)
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		if err := core.VerifyBusy(in, s); err != nil {
			log.Fatalf("%s: invalid fiber assignment: %v", a.name, err)
		}
		cost, err := s.Cost(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %4d lit segments on %2d fibers  (%.2fx the lower bound)\n",
			a.name, cost, len(s.Bundles), float64(cost)/float64(dep))
	}

	fmt.Println("\ntight family (Figure 8, g=2): algorithm output can approach 2x OPT")
	for _, eps := range []core.Time{400, 100, 25} {
		gd, err := gen.Fig8(1000, eps, eps/2)
		if err != nil {
			log.Fatal(err)
		}
		optCost, _ := gd.Opt.Cost(gd.Instance)
		badCost, _ := gd.Bad.Cost(gd.Instance)
		fmt.Printf("  eps=%4d: OPT=%d, adversarial output=%d, ratio %.3f\n",
			eps, optCost, badCost, float64(badCost)/float64(optCost))
	}
}

// requests generates lightpaths with a hot core segment and long-haul
// requests, mirroring the traffic-grooming workloads in the literature.
func requests(seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	var jobs []core.Job
	for i := 0; i < numRequests; i++ {
		var from, span int
		switch rng.Intn(3) {
		case 0: // long haul
			from = rng.Intn(links / 3)
			span = links/2 + rng.Intn(links/2-1)
		case 1: // hot core
			from = links/3 + rng.Intn(links/6)
			span = 2 + rng.Intn(links/6)
		default: // local
			from = rng.Intn(links - 6)
			span = 1 + rng.Intn(6)
		}
		if from+span > links {
			span = links - from
		}
		jobs = append(jobs, core.Job{
			ID: i, Release: core.Time(from), Deadline: core.Time(from + span),
			Length: core.Time(span),
		})
	}
	in := &core.Instance{Name: fmt.Sprintf("optical(seed=%d)", seed), G: wavelengths, Jobs: jobs}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}
	return in
}
