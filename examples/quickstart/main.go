// Quickstart: the paper's Figure 1 end to end.
//
// Seven interval jobs with g=3 are packed onto machines to minimize total
// busy time by three approximation algorithms and the exact solver; the
// optimal two-machine packing of Figure 1(B) is reproduced and drawn.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	in, figPacking := gen.Fig1()
	fmt.Printf("Figure 1 instance: %d interval jobs, g=%d\n\n", len(in.Jobs), in.G)
	for _, j := range in.Jobs {
		fmt.Printf("  %v  %s\n", j, bar(j.Release, j.Deadline, in.Horizon()))
	}

	fmt.Printf("\nlower bounds: mass/g=%.2f span=%d demand-profile=%d\n\n",
		busytime.MassBound(in), busytime.SpanBound(in), busytime.DemandProfileBound(in))

	algos := []struct {
		name string
		run  func() (*core.BusySchedule, error)
	}{
		{"Figure 1(B) packing", func() (*core.BusySchedule, error) { return figPacking, nil }},
		{"exact", func() (*core.BusySchedule, error) {
			return busytime.SolveExactInterval(in, busytime.ExactOptions{})
		}},
		{"GreedyTracking (3-approx, Theorem 5)", func() (*core.BusySchedule, error) {
			return busytime.GreedyTracking(in, busytime.GTOptions{})
		}},
		{"FirstFit (4-approx, Flammini et al.)", func() (*core.BusySchedule, error) {
			return busytime.FirstFit(in)
		}},
		{"PairCover (2-approx, Appendix A)", func() (*core.BusySchedule, error) {
			return busytime.PairCover(in)
		}},
	}
	for _, a := range algos {
		s, err := a.run()
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		if err := core.VerifyBusy(in, s); err != nil {
			log.Fatalf("%s: invalid schedule: %v", a.name, err)
		}
		cost, err := s.Cost(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s busy time %2d on %d machines\n", a.name, cost, len(s.Bundles))
	}

	fmt.Println("\noptimal packing (machines over time 0..6):")
	for bi := range figPacking.Bundles {
		b := &figPacking.Bundles[bi]
		fmt.Printf("  machine %d:\n", bi)
		for _, pl := range b.Placements {
			j, _ := in.JobByID(pl.JobID)
			fmt.Printf("    job %d %s\n", pl.JobID, bar(pl.Start, pl.Start+j.Length, in.Horizon()))
		}
	}
}

// bar renders [start,end) on a 0..horizon axis.
func bar(start, end, horizon core.Time) string {
	var b strings.Builder
	b.WriteByte('|')
	for t := core.Time(0); t < horizon; t++ {
		if t >= start && t < end {
			b.WriteByte('#')
		} else {
			b.WriteByte('.')
		}
	}
	b.WriteByte('|')
	return b.String()
}
