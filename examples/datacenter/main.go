// Datacenter VM consolidation, the paper's motivating application
// (Section 1): each job is a virtual-machine lease with an arrival time, a
// latest completion time and a required duration; a physical host can run up
// to g VMs at once and burns power whenever at least one VM is on it.
// Minimizing total busy time = minimizing host-on hours.
//
// The example generates a synthetic day of lease requests (ticks are
// minutes), fixes start times with the span minimizer, packs hosts with the
// paper's GreedyTracking and the 2-approximate PairCover, and compares
// against naive operation and the mass/g floor.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/busytime"
	"repro/internal/core"
)

const (
	day      = 24 * 60 // minutes
	hostCap  = 8       // VMs per host (g)
	numLease = 120
)

func main() {
	in := leases(42)
	fmt.Printf("%d VM leases over one day, %d VMs per host\n", len(in.Jobs), in.G)
	fmt.Printf("total requested VM-minutes: %d (mass/g floor: %.0f host-minutes)\n\n",
		in.TotalLength(), busytime.MassBound(in))

	// Naive operation: every VM on its own host, started on arrival.
	naive := &core.BusySchedule{}
	for _, j := range in.Jobs {
		naive.Bundles = append(naive.Bundles, core.Bundle{
			Placements: []core.Placement{{JobID: j.ID, Start: j.Release}},
		})
	}
	report(in, "one host per VM (no consolidation)", naive)

	// Consolidation via the busy-time pipeline.
	for _, a := range []struct {
		name string
		algo busytime.IntervalAlgorithm
	}{
		{"FirstFit after span minimization", busytime.FirstFit},
		{"GreedyTracking after span minimization", func(i *core.Instance) (*core.BusySchedule, error) {
			return busytime.GreedyTracking(i, busytime.GTOptions{})
		}},
		{"PairCover after span minimization", busytime.PairCover},
	} {
		s, err := busytime.SolveFlexible(in, busytime.HeuristicSpan{}, a.algo)
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		report(in, a.name, s)
	}

	// If VMs may be paused and migrated, Theorem 7's preemptive
	// 2-approximation applies directly.
	ps, err := busytime.PreemptiveBounded(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifyPreemptive(in, ps); err != nil {
		log.Fatal(err)
	}
	optInf, err := busytime.PreemptiveUnboundedValue(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s %6d host-min on %3d hosts (OPT_inf=%d)\n",
		"PreemptiveBounded (pause/migrate allowed)", ps.Cost(), len(ps.Machines), optInf)
}

func report(in *core.Instance, name string, s *core.BusySchedule) {
	if err := core.VerifyBusy(in, s); err != nil {
		log.Fatalf("%s: invalid schedule: %v", name, err)
	}
	cost, err := s.Cost(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s %6d host-min on %3d hosts (%.1fx floor)\n",
		name, cost, len(s.Bundles), float64(cost)/busytime.MassBound(in))
}

// leases generates a bursty synthetic day: short interactive jobs during
// business hours, long batch jobs overnight, with varying slack.
func leases(seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	var jobs []core.Job
	id := 0
	add := func(r, window, p core.Time) {
		if r+window > day {
			window = day - r
		}
		if window < p {
			window = p
		}
		jobs = append(jobs, core.Job{ID: id, Release: r, Deadline: r + window, Length: p})
		id++
	}
	for i := 0; i < numLease; i++ {
		if rng.Intn(3) == 0 {
			// Overnight batch: long, flexible.
			p := core.Time(120 + rng.Intn(240))
			r := core.Time(rng.Intn(day / 3))
			add(r, p+core.Time(rng.Intn(300)), p)
		} else {
			// Interactive: short, business hours, tight.
			p := core.Time(15 + rng.Intn(90))
			r := core.Time(8*60 + rng.Intn(10*60))
			add(r, p+core.Time(rng.Intn(60)), p)
		}
	}
	in := &core.Instance{Name: fmt.Sprintf("datacenter(seed=%d)", seed), G: hostCap, Jobs: jobs}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}
	return in
}
