package repro

// One benchmark per experiment (E1-E13, matching DESIGN.md's experiment
// index) plus microbenchmarks of every substrate and ablation benchmarks
// for the design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"

	"repro/internal/activetime"
	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/intervals"
	"repro/internal/lp"
)

func benchExperiment(b *testing.B, id string) {
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(experiments.Config{Quick: true, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE01_Fig3MinimalFeasible(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE02_LPRounding(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE03_IntegralityGap(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE04_Fig1Packing(b *testing.B)         { benchExperiment(b, "E4") }
func BenchmarkE05_Fig6GreedyTracking(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE06_Fig8PairCover(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE07_Fig9DemandProfile(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE08_Fig10FlexFactor4(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE09_PreemptiveUnbounded(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10_PreemptiveBounded(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11_IntervalShootout(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12_UnitActive(b *testing.B)          { benchExperiment(b, "E12") }
func BenchmarkE13_FlexiblePipeline(b *testing.B)    { benchExperiment(b, "E13") }

// --- substrate microbenchmarks ---

func BenchmarkDinicFeasibility(b *testing.B) {
	for _, size := range []struct{ n, T int }{{50, 80}, {200, 300}, {500, 600}} {
		b.Run(fmt.Sprintf("n=%d,T=%d", size.n, size.T), func(b *testing.B) {
			in := gen.RandomFlexible(gen.RandomConfig{
				N: size.n, Horizon: size.T, MaxLen: 6, Slack: 6, G: 4, Seed: 1,
			})
			open := activetime.AllSlots(in)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				activetime.CheckFeasible(in, open)
			}
		})
	}
}

func BenchmarkDinicRaw(b *testing.B) {
	// Layered random graph, int64 capacities.
	const layers, width = 8, 40
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := flow.NewNetwork[int64](2+layers*width, 0)
		src, sink := 0, 1+layers*width
		for w := 0; w < width; w++ {
			g.AddEdge(src, 1+w, int64(3+w%5))
			g.AddEdge(1+(layers-1)*width+w, sink, int64(3+w%7))
		}
		for l := 0; l+1 < layers; l++ {
			for w := 0; w < width; w++ {
				g.AddEdge(1+l*width+w, 1+(l+1)*width+(w*7+l)%width, int64(1+(w+l)%4))
				g.AddEdge(1+l*width+w, 1+(l+1)*width+(w*3+1)%width, int64(1+(w*l)%3))
			}
		}
		g.Max(src, sink)
	}
}

func BenchmarkSimplexMaster(b *testing.B) {
	// The shape of the active-time Benders master: T variables with upper
	// bounds plus covering cuts.
	const T = 120
	for i := 0; i < b.N; i++ {
		p := lp.NewProblem(T)
		for j := 0; j < T; j++ {
			p.SetObjective(j, 1)
			if err := p.AddSparse([]int{j}, []float64{1}, lp.LE, 1); err != nil {
				b.Fatal(err)
			}
		}
		for r := 0; r < 40; r++ {
			var cols []int
			var vals []float64
			for j := r; j < T; j += 3 {
				cols = append(cols, j)
				vals = append(vals, float64(1+j%3))
			}
			if err := p.AddSparse(cols, vals, lp.GE, float64(5+r%7)); err != nil {
				b.Fatal(err)
			}
		}
		sol, err := lp.Solve(p)
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("solve: %v %v", err, sol.Status)
		}
	}
}

func BenchmarkSolveLPCutGen(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 20, Horizon: 30, MaxLen: 4, Slack: 4, G: 3, Seed: 5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := activetime.SolveLP(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveLPLargeHorizon measures the full LP1 pipeline on the
// large-horizon laminar/nested family — the workload the factorized
// revised simplex, batched cut separation and cut-registry purging exist
// for. The PR 1 dense pipeline could not run these sizes at all (its dual
// simplex mis-reported the feasible master as infeasible past T ≈ 1000),
// and the PR 2 dense-inverse engine needed ~90 s for batched/T=4096 where
// the LU/eta core takes seconds — that sub-benchmark is the locked ≥10×
// record of this PR. The single-cut sub-benchmarks keep PR 1's
// one-cut-per-round separation as the in-tree baseline (omitted at 4096,
// where its long round tail dominates the suite). Separation rounds and
// purged cuts are reported so the batching and lifecycle wins are visible
// alongside wall time.
func BenchmarkSolveLPLargeHorizon(b *testing.B) {
	for _, bc := range []struct {
		name  string
		solve func(*core.Instance) (*activetime.LPResult, error)
		sizes []int
	}{
		{"batched", activetime.SolveLP, []int{1024, 2048, 4096}},
		{"single-cut", activetime.SolveLPSingleCut, []int{1024, 2048}},
	} {
		for _, T := range bc.sizes {
			b.Run(fmt.Sprintf("%s/T=%d", bc.name, T), func(b *testing.B) {
				in := gen.LargeHorizon(gen.RandomConfig{
					N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: 3,
				})
				b.ReportAllocs()
				b.ResetTimer()
				var res *activetime.LPResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = bc.solve(in)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Rounds), "rounds")
				b.ReportMetric(float64(res.Cuts), "cuts")
				b.ReportMetric(float64(res.Purged), "purged")
			})
		}
	}
}

// BenchmarkSolveLPSmall pins the small-horizon regression the adaptive
// batch cap exists to recover: at T ∈ {128, 256, 512} the full 32-cut
// batches of the large-horizon policy pad the master without saving
// meaningful rounds, so the adaptive cap (SolveLP) must track the better
// of the fixed-32 batch and the single-cut reference. These numbers, not
// prose, are what hold the adaptiveBatchCap policy in place.
func BenchmarkSolveLPSmall(b *testing.B) {
	for _, bc := range []struct {
		name  string
		solve func(*core.Instance) (*activetime.LPResult, error)
	}{
		{"adaptive", activetime.SolveLP},
		{"batched32", func(in *core.Instance) (*activetime.LPResult, error) {
			return activetime.SolveLPFixedBatch(in, 32)
		}},
		{"single-cut", activetime.SolveLPSingleCut},
	} {
		for _, T := range []int{128, 256, 512} {
			b.Run(fmt.Sprintf("%s/T=%d", bc.name, T), func(b *testing.B) {
				in := gen.LargeHorizon(gen.RandomConfig{
					N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: 3,
				})
				b.ReportAllocs()
				b.ResetTimer()
				var res *activetime.LPResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = bc.solve(in)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Rounds), "rounds")
			})
		}
	}
}

// BenchmarkSolveLPPricing is the pricing-rule ablation on the E18 family
// (seed 7): the default dual steepest-edge pipeline against the devex
// fallback rule and the Dantzig baseline, with pivots and separation
// rounds reported next to wall time. These numbers back the pricing
// architecture the same way BenchmarkSolveLPSmall backs the adaptive
// batch cap; TestPricingPivotReduction turns the ≥2× pivot win at
// T = 4096 into a hard gate.
func BenchmarkSolveLPPricing(b *testing.B) {
	for _, bc := range []struct {
		name string
		rule lp.PricingRule
	}{
		{"steepest-edge", lp.PricingSteepestEdge},
		{"devex", lp.PricingDevex},
		{"dantzig", lp.PricingDantzig},
	} {
		for _, T := range []int{1024, 2048} {
			b.Run(fmt.Sprintf("%s/T=%d", bc.name, T), func(b *testing.B) {
				in := gen.LargeHorizon(gen.RandomConfig{
					N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: 7,
				})
				b.ReportAllocs()
				b.ResetTimer()
				var res *activetime.LPResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = activetime.SolveLPPricing(in, bc.rule)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Pivots), "pivots")
				b.ReportMetric(float64(res.Rounds), "rounds")
			})
		}
	}
}

func BenchmarkRoundLP(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 20, Horizon: 30, MaxLen: 4, Slack: 4, G: 3, Seed: 5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := activetime.RoundLP(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalFeasible(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 40, Horizon: 60, MaxLen: 5, Slack: 5, G: 3, Seed: 5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
			Strategy: activetime.CloseRightToLeft,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnitExact(b *testing.B) {
	in := gen.RandomUnit(gen.RandomConfig{N: 200, Horizon: 150, Slack: 8, G: 4, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := activetime.SolveUnitExact(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxTrack(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := gen.RandomInterval(gen.RandomConfig{
				N: n, Horizon: 4 * n, MaxLen: 20, G: 4, Seed: 9,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				intervals.MaxTrack(in.Jobs, intervals.TieBenign)
			}
		})
	}
}

func BenchmarkDemandProfile(b *testing.B) {
	in := gen.RandomInterval(gen.RandomConfig{N: 2000, Horizon: 5000, MaxLen: 40, G: 8, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		intervals.NewDemandProfile(in.Jobs, in.G).Cost()
	}
}

func BenchmarkGreedyTracking(b *testing.B) {
	for _, n := range []int{50, 200, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := gen.RandomInterval(gen.RandomConfig{
				N: n, Horizon: 3 * n, MaxLen: 20, G: 4, Seed: 11,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := busytime.GreedyTracking(in, busytime.GTOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFirstFit(b *testing.B) {
	in := gen.RandomInterval(gen.RandomConfig{N: 500, Horizon: 1500, MaxLen: 20, G: 4, Seed: 11})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.FirstFit(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairCover(b *testing.B) {
	in := gen.RandomInterval(gen.RandomConfig{N: 500, Horizon: 1500, MaxLen: 20, G: 4, Seed: 11})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.PairCover(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreemptiveUnbounded(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 300, Horizon: 500, MaxLen: 10, Slack: 8, G: 1, Seed: 11,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.PreemptiveUnbounded(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreemptiveBounded(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 300, Horizon: 500, MaxLen: 10, Slack: 8, G: 8, Seed: 11,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.PreemptiveBounded(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicSpan(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 100, Horizon: 300, MaxLen: 10, Slack: 10, G: 4, Seed: 11,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := (busytime.HeuristicSpan{}).MinimizeSpan(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations ---

// BenchmarkAblation_TieBreaks compares GreedyTracking cost and time under
// the two tie-breaking rules (quality printed once via b.Log on first run).
func BenchmarkAblation_TieBreaks(b *testing.B) {
	in := gen.RandomInterval(gen.RandomConfig{N: 300, Horizon: 900, MaxLen: 20, G: 4, Seed: 13})
	for _, tb := range []struct {
		name string
		tie  intervals.TieBreak
	}{{"benign", intervals.TieBenign}, {"adversarial", intervals.TieAdversarial}} {
		b.Run(tb.name, func(b *testing.B) {
			var cost core.Time
			for i := 0; i < b.N; i++ {
				s, err := busytime.GreedyTracking(in, busytime.GTOptions{Tie: tb.tie})
				if err != nil {
					b.Fatal(err)
				}
				cost, err = s.Cost(in)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cost), "busytime")
		})
	}
}

// BenchmarkAblation_MinimalOrders compares closing orders for the minimal
// feasible algorithm (Theorem 1 holds for any order; quality differs).
func BenchmarkAblation_MinimalOrders(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 25, Horizon: 40, MaxLen: 5, Slack: 5, G: 3, Seed: 13,
	})
	for _, o := range []struct {
		name string
		opts activetime.MinimalOptions
	}{
		{"left-to-right", activetime.MinimalOptions{Strategy: activetime.CloseLeftToRight}},
		{"right-to-left", activetime.MinimalOptions{Strategy: activetime.CloseRightToLeft}},
		{"shuffled", activetime.MinimalOptions{Shuffle: true, Seed: 99}},
	} {
		b.Run(o.name, func(b *testing.B) {
			var cost core.Time
			for i := 0; i < b.N; i++ {
				s, err := activetime.MinimalFeasible(in, o.opts)
				if err != nil {
					b.Fatal(err)
				}
				cost = s.Cost()
			}
			b.ReportMetric(float64(cost), "activetime")
		})
	}
}

// BenchmarkAblation_SpanMinimizer compares span-minimizer effort levels.
func BenchmarkAblation_SpanMinimizer(b *testing.B) {
	in := gen.RandomFlexible(gen.RandomConfig{
		N: 60, Horizon: 150, MaxLen: 8, Slack: 8, G: 4, Seed: 13,
	})
	for _, passes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			var span core.Time
			for i := 0; i < b.N; i++ {
				var err error
				_, span, err = busytime.HeuristicSpan{MaxPasses: passes}.MinimizeSpan(in)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(span), "span")
		})
	}
}

func BenchmarkE14_SpecialCases(b *testing.B) { benchExperiment(b, "E14") }

func BenchmarkE15_Online(b *testing.B) { benchExperiment(b, "E15") }

func BenchmarkE16_Scaling(b *testing.B) { benchExperiment(b, "E16") }

func BenchmarkE17_LPScaling(b *testing.B) { benchExperiment(b, "E17") }

func BenchmarkE18_PivotCost(b *testing.B) { benchExperiment(b, "E18") }
