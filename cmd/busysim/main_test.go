package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func writeInstance(t *testing.T, in *core.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := in.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func intervalInstance() *core.Instance {
	return &core.Instance{Name: "cli", G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 4},
		{ID: 1, Release: 2, Deadline: 6, Length: 4},
		{ID: 2, Release: 1, Deadline: 3, Length: 2},
	}}
}

func flexInstance() *core.Instance {
	return &core.Instance{Name: "cliflex", G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 6, Length: 3},
		{ID: 1, Release: 1, Deadline: 8, Length: 2},
	}}
}

func TestRunIntervalAlgorithms(t *testing.T) {
	path := writeInstance(t, intervalInstance())
	for _, algo := range []string{"greedytracking", "firstfit", "paircover", "byrelease", "exact"} {
		var buf bytes.Buffer
		if err := run([]string{"-in", path, "-algo", algo}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(buf.String(), "busy time:") {
			t.Errorf("%s: missing cost line:\n%s", algo, buf.String())
		}
		if !strings.Contains(buf.String(), "demand profile=") {
			t.Errorf("%s: missing lower bounds for interval instance", algo)
		}
	}
}

func TestRunFlexiblePipeline(t *testing.T) {
	path := writeInstance(t, flexInstance())
	for _, span := range []string{"heuristic", "exact"} {
		var buf bytes.Buffer
		if err := run([]string{"-in", path, "-algo", "greedytracking", "-span", span}, &buf); err != nil {
			t.Fatalf("span=%s: %v", span, err)
		}
		if !strings.Contains(buf.String(), "interval=false") {
			t.Errorf("span=%s: flexible instance not flagged:\n%s", span, buf.String())
		}
	}
}

func TestRunPreemptive(t *testing.T) {
	path := writeInstance(t, flexInstance())
	for _, algo := range []string{"preemptive", "preemptive-inf"} {
		var buf bytes.Buffer
		if err := run([]string{"-in", path, "-algo", algo, "-gantt"}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(buf.String(), "preemptive busy time:") {
			t.Errorf("%s: missing cost line:\n%s", algo, buf.String())
		}
	}
}

func TestRunGanttAndClass(t *testing.T) {
	path := writeInstance(t, intervalInstance())
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "exact", "-gantt"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "class=") {
		t.Errorf("missing special-case class:\n%s", out)
	}
	if !strings.Contains(out, "M0") {
		t.Errorf("missing machine rows in gantt:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -in accepted")
	}
	path := writeInstance(t, intervalInstance())
	if err := run([]string{"-in", path, "-algo", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
