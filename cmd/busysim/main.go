// Command busysim solves one busy-time instance from a JSON file and prints
// the bundling with lower-bound certificates.
//
// Usage:
//
//	busysim -in instance.json [-algo greedytracking|firstfit|paircover|exact|preemptive|preemptive-inf]
//	        [-span heuristic|exact]   span minimizer used when jobs are flexible
//	        [-gantt]                  draw ASCII Gantt charts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "busysim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("busysim", flag.ContinueOnError)
	path := fs.String("in", "", "instance JSON file (required)")
	algo := fs.String("algo", "greedytracking",
		"greedytracking | firstfit | paircover | byrelease | exact | preemptive | preemptive-inf")
	gantt := fs.Bool("gantt", false, "draw ASCII Gantt charts")
	span := fs.String("span", "heuristic", "span minimizer for flexible jobs: heuristic | exact")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-in is required")
	}
	in, err := core.LoadInstance(*path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "instance %s: %d jobs, g=%d, mass=%d, interval=%v, class=%s\n",
		in.Name, len(in.Jobs), in.G, in.TotalLength(), in.AllInterval(),
		busytime.SpecialCase(in))

	if *gantt {
		render.Instance(stdout, in, render.Options{})
	}
	switch *algo {
	case "preemptive", "preemptive-inf":
		return runPreemptive(stdout, in, *algo == "preemptive-inf", *gantt)
	}

	var sm busytime.SpanMinimizer = busytime.HeuristicSpan{}
	if *span == "exact" {
		sm = busytime.ExactSpan{}
	}
	intervalAlgo := map[string]busytime.IntervalAlgorithm{
		"greedytracking": func(i *core.Instance) (*core.BusySchedule, error) {
			return busytime.GreedyTracking(i, busytime.GTOptions{})
		},
		"firstfit":  busytime.FirstFit,
		"paircover": busytime.PairCover,
		"byrelease": busytime.GreedyByRelease,
		"exact": func(i *core.Instance) (*core.BusySchedule, error) {
			return busytime.SolveExactInterval(i, busytime.ExactOptions{})
		},
	}[*algo]
	if intervalAlgo == nil {
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	var sched *core.BusySchedule
	if in.AllInterval() {
		sched, err = intervalAlgo(in)
	} else {
		sched, err = busytime.SolveFlexible(in, sm, intervalAlgo)
	}
	if err != nil {
		return err
	}
	if err := core.VerifyBusy(in, sched); err != nil {
		return fmt.Errorf("produced schedule failed verification: %w", err)
	}
	cost, err := sched.Cost(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "busy time: %d over %d machines\n", cost, len(sched.Bundles))
	if *gantt {
		if err := render.BusySchedule(stdout, in, sched, render.Options{}); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "lower bounds: mass/g=%.2f", busytime.MassBound(in))
	if in.AllInterval() {
		fmt.Fprintf(stdout, ", span=%d, demand profile=%d",
			busytime.SpanBound(in), busytime.DemandProfileBound(in))
	}
	fmt.Fprintln(stdout)
	for bi := range sched.Bundles {
		b := &sched.Bundles[bi]
		bt, _ := b.BusyTime(in)
		fmt.Fprintf(stdout, "  machine %d (busy %d):", bi, bt)
		for _, pl := range b.Placements {
			j, _ := in.JobByID(pl.JobID)
			fmt.Fprintf(stdout, " J%d@[%d,%d)", pl.JobID, pl.Start, pl.Start+j.Length)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func runPreemptive(stdout io.Writer, in *core.Instance, unbounded, gantt bool) error {
	var sched *core.PreemptiveSchedule
	var err error
	verifyAgainst := in
	if unbounded {
		sched, err = busytime.PreemptiveUnbounded(in)
		verifyAgainst = in.Clone()
		verifyAgainst.G = len(in.Jobs)
	} else {
		sched, err = busytime.PreemptiveBounded(in)
	}
	if err != nil {
		return err
	}
	if err := core.VerifyPreemptive(verifyAgainst, sched); err != nil {
		return fmt.Errorf("produced schedule failed verification: %w", err)
	}
	optInf, err := busytime.PreemptiveUnboundedValue(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "preemptive busy time: %d over %d machines (OPT_inf=%d, mass/g=%.2f)\n",
		sched.Cost(), len(sched.Machines), optInf, busytime.MassBound(in))
	if gantt {
		render.PreemptiveSchedule(stdout, in, sched, render.Options{})
	}
	for mi := range sched.Machines {
		m := &sched.Machines[mi]
		fmt.Fprintf(stdout, "  machine %d (busy %d):", mi, m.BusyTime())
		for _, p := range m.Pieces {
			fmt.Fprintf(stdout, " J%d%v", p.JobID, p.Span)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
