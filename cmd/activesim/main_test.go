package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func writeInstance(t *testing.T, in *core.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := in.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func testInstance() *core.Instance {
	return &core.Instance{Name: "cli", G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 2},
		{ID: 1, Release: 1, Deadline: 5, Length: 2},
		{ID: 2, Release: 0, Deadline: 6, Length: 1},
	}}
}

func TestRunAlgorithms(t *testing.T) {
	path := writeInstance(t, testInstance())
	for _, algo := range []string{"minimal", "lp-round", "exact"} {
		var buf bytes.Buffer
		if err := run([]string{"-in", path, "-algo", algo}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(buf.String(), "active time:") {
			t.Errorf("%s: missing cost line:\n%s", algo, buf.String())
		}
	}
}

func TestRunGantt(t *testing.T) {
	path := writeInstance(t, testInstance())
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "minimal", "-gantt"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "on/off") {
		t.Errorf("gantt output missing profile:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeInstance(t, testInstance())
	if err := run([]string{"-in", path, "-algo", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-in", path, "-algo", "unit-exact"}, &bytes.Buffer{}); err == nil {
		t.Error("unit-exact on non-unit instance accepted")
	}
}

func TestRunInfeasible(t *testing.T) {
	in := &core.Instance{G: 1, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 2, Length: 2},
		{ID: 1, Release: 0, Deadline: 2, Length: 2},
	}}
	path := writeInstance(t, in)
	if err := run([]string{"-in", path, "-algo", "minimal"}, &bytes.Buffer{}); err == nil {
		t.Error("infeasible instance accepted")
	}
}
