// Command activesim solves one active-time instance from a JSON file and
// prints the schedule and its certificates.
//
// Usage:
//
//	activesim -in instance.json [-algo minimal|lp-round|unit-exact|exact] [-order ltr|rtl] [-gantt]
//
// The instance format is the one produced by instgen and documented in
// internal/core: {"g": 2, "jobs": [{"id":0,"release":0,"deadline":4,"length":2}, ...]}.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/activetime"
	"repro/internal/core"
	"repro/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "activesim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("activesim", flag.ContinueOnError)
	path := fs.String("in", "", "instance JSON file (required)")
	algo := fs.String("algo", "minimal", "minimal | lp-round | unit-exact | exact")
	order := fs.String("order", "rtl", "closing order for minimal: ltr | rtl")
	gantt := fs.Bool("gantt", false, "draw ASCII Gantt charts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-in is required")
	}
	in, err := core.LoadInstance(*path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "instance %s: %d jobs, g=%d, horizon=%d, mass=%d\n",
		in.Name, len(in.Jobs), in.G, in.Horizon(), in.TotalLength())

	var sched *core.ActiveSchedule
	switch *algo {
	case "minimal":
		strategy := activetime.CloseRightToLeft
		if *order == "ltr" {
			strategy = activetime.CloseLeftToRight
		}
		sched, err = activetime.MinimalFeasible(in, activetime.MinimalOptions{Strategy: strategy})
	case "lp-round":
		var res *activetime.RoundingResult
		res, err = activetime.RoundLP(in)
		if err == nil {
			sched = res.Schedule
			fmt.Fprintf(stdout, "LP optimum %.4f; opened %d slots (<= 2*LP: %v); flow checks %d; proxies %d\n",
				res.LPValue, res.Opened, float64(res.Opened) <= 2*res.LPValue+1e-6,
				res.FlowChecks, res.ProxyCarries)
		}
	case "unit-exact":
		sched, err = activetime.SolveUnitExact(in)
	case "exact":
		sched, err = activetime.SolveExact(in, activetime.ExactOptions{})
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	if err := core.VerifyActive(in, sched); err != nil {
		return fmt.Errorf("produced schedule failed verification: %w", err)
	}
	fmt.Fprintf(stdout, "active time: %d slots\n", sched.Cost())
	if *gantt {
		render.Instance(stdout, in, render.Options{})
		render.ActiveSchedule(stdout, in, sched, render.Options{})
	}
	fmt.Fprintln(stdout, sched)
	load := sched.Load()
	for _, t := range sched.Open {
		fmt.Fprintf(stdout, "  slot %3d: %d/%d units\n", t, load[t], in.G)
	}
	return nil
}
