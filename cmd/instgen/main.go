// Command instgen generates instance JSON files from the repository's
// workload families, including every paper gadget.
//
// Usage:
//
//	instgen -family flexible -n 20 -horizon 40 -g 3 -seed 1 > inst.json
//	instgen -family fig3 -g 8 > fig3.json
//
// Families: flexible, interval, unit, clique, proper, laminar,
// fig1, fig3, fig6, fig8, fig9, fig10, lp-gap.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "instgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("instgen", flag.ContinueOnError)
	family := fs.String("family", "flexible", "workload family")
	n := fs.Int("n", 20, "number of jobs (random families)")
	horizon := fs.Int("horizon", 40, "time horizon (random families)")
	maxLen := fs.Int("maxlen", 6, "maximum job length (random families)")
	slack := fs.Int("slack", 4, "maximum window slack (random families)")
	g := fs.Int("g", 3, "parallelism bound")
	seed := fs.Int64("seed", 1, "random seed")
	unit := fs.Int64("unit", 1000, "tick scale for gadget families")
	eps := fs.Int64("eps", 20, "epsilon in ticks for gadget families")
	epsp := fs.Int64("epsp", 8, "epsilon-prime in ticks for gadget families")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := gen.RandomConfig{N: *n, Horizon: *horizon, MaxLen: *maxLen,
		Slack: *slack, G: *g, Seed: *seed}
	var in *core.Instance
	var err error
	switch *family {
	case "flexible":
		in = gen.RandomFlexible(cfg)
	case "interval":
		in = gen.RandomInterval(cfg)
	case "unit":
		in = gen.RandomUnit(cfg)
	case "clique":
		in = gen.RandomClique(cfg)
	case "proper":
		in = gen.RandomProper(cfg)
	case "laminar":
		in = gen.RandomLaminar(cfg)
	case "fig1":
		in, _ = gen.Fig1()
	case "fig3":
		var gd *gen.Fig3Gadget
		gd, err = gen.Fig3(*g)
		if err == nil {
			in = gd.Instance
		}
	case "fig6":
		var gd *gen.Fig6Gadget
		gd, err = gen.Fig6(*g, *unit, *eps)
		if err == nil {
			in = gd.Flexible
		}
	case "fig8":
		var gd *gen.Fig8Gadget
		gd, err = gen.Fig8(*unit, *eps, *epsp)
		if err == nil {
			in = gd.Instance
		}
	case "fig9":
		var gd *gen.Fig9Gadget
		gd, err = gen.Fig9(*g, *unit, *eps)
		if err == nil {
			in = gd.Flexible
		}
	case "fig10":
		var gd *gen.Fig10Gadget
		gd, err = gen.Fig10(*g, *unit, *eps, *epsp)
		if err == nil {
			in = gd.Flexible
		}
	case "lp-gap":
		in = gen.IntegralityGap(*g)
	default:
		err = fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}
	if err := in.Validate(); err != nil {
		return fmt.Errorf("generated invalid instance: %w", err)
	}
	return in.WriteJSON(stdout)
}
