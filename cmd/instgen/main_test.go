package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestAllFamiliesProduceValidInstances round-trips every family through
// the JSON encoder and the instance validator.
func TestAllFamiliesProduceValidInstances(t *testing.T) {
	families := []string{
		"flexible", "interval", "unit", "clique", "proper", "laminar",
		"fig1", "fig3", "fig6", "fig8", "fig9", "fig10", "lp-gap",
	}
	for _, fam := range families {
		var buf bytes.Buffer
		if err := run([]string{"-family", fam, "-g", "4", "-eps", "20", "-epsp", "8"}, &buf); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		in, err := core.ReadInstance(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", fam, err)
		}
		if len(in.Jobs) == 0 {
			t.Errorf("%s: no jobs", fam)
		}
	}
}

func TestUnknownFamily(t *testing.T) {
	if err := run([]string{"-family", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestGadgetParameterValidation(t *testing.T) {
	// fig3 needs g >= 3; fig6 needs even eps < unit/2.
	if err := run([]string{"-family", "fig3", "-g", "2"}, &bytes.Buffer{}); err == nil {
		t.Error("fig3 with g=2 accepted")
	}
	if err := run([]string{"-family", "fig6", "-g", "3", "-eps", "999"}, &bytes.Buffer{}); err == nil {
		t.Error("fig6 with eps >= unit/2 accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-family", "interval", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "interval", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different instances")
	}
	var c bytes.Buffer
	if err := run([]string{"-family", "interval", "-seed", "6"}, &c); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(a.String()) == strings.TrimSpace(c.String()) {
		t.Error("different seeds produced identical instances")
	}
}
