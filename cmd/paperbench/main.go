// Command paperbench regenerates every experiment table of the
// reproduction (E1-E14, one per figure/claim of the paper; see DESIGN.md).
//
// Usage:
//
//	paperbench [-quick] [-only E5] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced sweeps")
	only := fs.String("only", "", "run a single experiment by ID (e.g. E5)")
	seed := fs.Int64("seed", 7, "random seed for workload generation")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	if *only != "" {
		r, ok := experiments.ByID(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		tab, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		tab.Render(stdout)
		return nil
	}
	return experiments.RunAll(cfg, stdout)
}
