// Command paperbench regenerates every experiment table of the
// reproduction (E1-E17, one per figure/claim of the paper plus the
// large-horizon LP scaling record; see DESIGN.md).
//
// Usage:
//
//	paperbench [-quick] [-only E5 | -only E18,E19] [-seed 7] [-bench-json out.json] [-merge-bench traj.json -label pr7] [-merge-from records.json]
//
// With -bench-json, per-experiment wall times are also written to the given
// path as a JSON array (one object per experiment: id, name, millis, rows,
// columns — the table's column headers, so downstream bench tooling can pin
// the effort columns it parses — and, for experiments that report them, a
// kernel digest of deterministic simplex-kernel counters, an
// approximation digest of realized theorem-bound ratios, and a delta
// digest of live-session re-solve counters), feeding the machine-readable
// benchmark trajectory. The golden test in this package locks the schema.
//
// With -merge-bench, the run's records are appended to a committed
// benchmark-trajectory file as a new labelled entry, after gating: every
// record's approximation digest must satisfy the absolute theorem bounds
// (rounded/LP <= 2, minimal/OPT <= 3, zero repairs, at most one cold flow
// per solve), every delta digest must show delta-vs-cold agreement to 1e-6
// with zero warm-start fallbacks and a >= 5x headline arrival pivot ratio
// at T >= 4096, and against the latest existing entry the experiment set
// must not shrink, no experiment may lose table columns, the kernel
// digest's hypersparse share must not collapse, and the approximation and
// delta counters must not regress. Wall times are recorded but deliberately not gated — they
// are machine-dependent; the gated metrics are the deterministic ones.
// With -merge-from, the records of a previous run's -bench-json output are
// merged instead of running the experiments — the same gates apply; only
// the hours-long recomputation is skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
}

// benchRecord is one experiment's machine-readable timing. Its JSON schema
// (keys, experiment IDs/names, table columns, kernel digest keys) is pinned
// by the golden test; renaming a key or an effort column is a breaking
// change for downstream bench tooling and must update the golden file
// deliberately.
type benchRecord struct {
	ID      string                     `json:"id"`
	Name    string                     `json:"name"`
	Millis  float64                    `json:"millis"`
	Rows    int                        `json:"rows"`
	Columns []string                   `json:"columns"`
	Kernel  *experiments.KernelSummary `json:"kernel,omitempty"`
	Approx  *experiments.ApproxSummary `json:"approx,omitempty"`
	Delta   *experiments.DeltaSummary  `json:"delta,omitempty"`
}

// trajectoryEntry is one labelled run in the committed benchmark
// trajectory (BENCH_TRAJECTORY.json at the repo root).
type trajectoryEntry struct {
	Label   string        `json:"label"`
	Records []benchRecord `json:"records"`
}

type trajectory struct {
	Entries []trajectoryEntry `json:"entries"`
}

// mergeTrajectory appends records as a new entry to the trajectory at
// path, gating first against the latest existing entry. A regression
// returns an error without touching the file.
func mergeTrajectory(path, label string, records []benchRecord) error {
	var traj trajectory
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &traj); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, r := range records {
		if err := checkApprox(r); err != nil {
			return fmt.Errorf("bench trajectory gate: %w", err)
		}
		if err := checkDelta(r); err != nil {
			return fmt.Errorf("bench trajectory gate: %w", err)
		}
	}
	if n := len(traj.Entries); n > 0 {
		if err := checkNonRegression(traj.Entries[n-1], records); err != nil {
			return fmt.Errorf("bench trajectory regression vs entry %q: %w", traj.Entries[n-1].Label, err)
		}
	}
	traj.Entries = append(traj.Entries, trajectoryEntry{Label: label, Records: records})
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing trajectory: %w", err)
	}
	return nil
}

// checkNonRegression enforces the monotone gates between the previous
// trajectory entry and the new records, over the experiments the new run
// produced (a -only run gates just that experiment): none of those may
// have disappeared conceptually — they are present by construction — but
// each must keep every table column it ever had and must not collapse its
// kernel digest. Experiments in prev that the new run did not execute are
// left alone, so partial (-only) runs compose with full ones.
func checkNonRegression(prev trajectoryEntry, records []benchRecord) error {
	prevByID := make(map[string]benchRecord, len(prev.Records))
	for _, r := range prev.Records {
		prevByID[r.ID] = r
	}
	for _, r := range records {
		p, ok := prevByID[r.ID]
		if !ok {
			continue // new experiment: trivially non-regressing
		}
		have := make(map[string]bool, len(r.Columns))
		for _, c := range r.Columns {
			have[c] = true
		}
		for _, c := range p.Columns {
			if !have[c] {
				return fmt.Errorf("%s dropped column %q", r.ID, c)
			}
		}
		if p.Kernel != nil {
			if r.Kernel == nil {
				return fmt.Errorf("%s dropped its kernel digest", r.ID)
			}
			// Halving band, not a fixed offset: kernel retunes move the
			// share a little, but a representation change moves it a lot
			// without losing anything — switching the basis from the
			// product-form eta file to Forrest–Tomlin updates took the E18
			// headline share 0.618 -> 0.408 (spike fill densifies the
			// updated-U reach) at a ~4x wall-clock win. Losing the
			// hypersparse path entirely still zeroes the share, which no
			// band survives; the endurance gates pin the absolute floor.
			if r.Kernel.HyperShare < p.Kernel.HyperShare/2 {
				return fmt.Errorf("%s hypersparse share collapsed: %.3f -> %.3f",
					r.ID, p.Kernel.HyperShare, r.Kernel.HyperShare)
			}
			// Forrest–Tomlin non-collapse: once a headline run maintains its
			// basis with in-place updates, a later run silently degrading to
			// per-pivot refactorization (updates -> 0) or resurrecting the
			// eta-dot pass the representation eliminated must not merge.
			if p.Kernel.FTUpdates > 0 && r.Kernel.FTUpdates == 0 {
				return fmt.Errorf("%s Forrest–Tomlin updates collapsed: %d -> 0 (per-pivot refactorization?)",
					r.ID, p.Kernel.FTUpdates)
			}
			if p.Kernel.FTUpdates > 0 && p.Kernel.EtaDotOps == 0 && r.Kernel.EtaDotOps > 0 {
				return fmt.Errorf("%s eta-dot pass resurfaced on the FT default: %d entries traversed",
					r.ID, r.Kernel.EtaDotOps)
			}
		}
		if p.Approx != nil && r.Approx == nil {
			return fmt.Errorf("%s dropped its approximation digest", r.ID)
		}
		if p.Delta != nil && r.Delta == nil {
			return fmt.Errorf("%s dropped its delta digest", r.ID)
		}
		if p.Delta != nil && r.Delta != nil {
			// The fallback counter is an absolute contract (checkDelta pins
			// it at zero), but gate it against the previous entry too so the
			// absolute gate can never be loosened without this one going off.
			if r.Delta.ColdFallbacks > p.Delta.ColdFallbacks {
				return fmt.Errorf("%s warm-start fallbacks regressed: %d -> %d",
					r.ID, p.Delta.ColdFallbacks, r.Delta.ColdFallbacks)
			}
			// Once the headline cell runs at the full horizon, a later entry
			// shrinking it would quietly disarm the >= 5x ratio gate.
			if r.Delta.HeadlineT < p.Delta.HeadlineT {
				return fmt.Errorf("%s headline horizon shrank: %d -> %d (disarms the pivot-ratio gate)",
					r.ID, p.Delta.HeadlineT, r.Delta.HeadlineT)
			}
		}
		if p.Approx != nil && r.Approx != nil {
			// The incremental-flow counters are absolute contracts, but also
			// gate them against the previous entry so a creeping regression
			// (more repairs, more cold flows) cannot ratchet in.
			if r.Approx.Repairs > p.Approx.Repairs {
				return fmt.Errorf("%s repairs regressed: %d -> %d", r.ID, p.Approx.Repairs, r.Approx.Repairs)
			}
			if r.Approx.ColdFlows > p.Approx.ColdFlows {
				return fmt.Errorf("%s cold flows regressed: %d -> %d", r.ID, p.Approx.ColdFlows, r.Approx.ColdFlows)
			}
		}
	}
	return nil
}

// checkApprox enforces the absolute theorem-bound gates on a record's
// approximation digest (no previous entry needed: the bounds come from the
// paper, not from history): realized rounded/LP at most 2 + eps (Theorem 2),
// minimal-feasible/OPT at most 3 (Theorem 1), no defensive repairs, at most
// one cold flow per solve, and no unaccounted proxy mass.
func checkApprox(r benchRecord) error {
	a := r.Approx
	if a == nil {
		return nil
	}
	const eps = 1e-6
	if a.MaxRoundedOverLP > 2+eps {
		return fmt.Errorf("%s rounded/LP ratio %.6f exceeds the Theorem 2 bound 2", r.ID, a.MaxRoundedOverLP)
	}
	if a.MaxMinimalOverOPT > 3+eps {
		return fmt.Errorf("%s minimal/OPT ratio %.6f exceeds the Theorem 1 bound 3", r.ID, a.MaxMinimalOverOPT)
	}
	if a.Repairs != 0 {
		return fmt.Errorf("%s ran %d defensive repairs (expected 0)", r.ID, a.Repairs)
	}
	if a.ColdFlows > 1 {
		return fmt.Errorf("%s ran %d cold flows per solve (incremental contract allows 1)", r.ID, a.ColdFlows)
	}
	if a.DroppedMass > 0.5 {
		return fmt.Errorf("%s dropped %.6f proxy mass (breaks the charging audit)", r.ID, a.DroppedMass)
	}
	return nil
}

// checkDelta enforces the absolute gates on a record's live-session delta
// digest: every delta re-solve must match its cold twin to 1e-6, the
// warm-start fallback counter must be exactly zero (a nonzero count means
// the simplex silently abandoned a live basis), and at the full headline
// horizon the arrival re-solve must be at least 5x cheaper in pivots than
// solving cold — the tentpole claim of the delta machinery.
func checkDelta(r benchRecord) error {
	d := r.Delta
	if d == nil {
		return nil
	}
	if d.MaxObjDelta > 1e-6 {
		return fmt.Errorf("%s delta re-solves diverged %.3e from cold optima (tolerance 1e-6)", r.ID, d.MaxObjDelta)
	}
	if d.ColdFallbacks != 0 {
		return fmt.Errorf("%s fired %d warm-start fallbacks (must be 0: fallbacks are counted, never silent)", r.ID, d.ColdFallbacks)
	}
	if d.HeadlineT >= 4096 && d.HeadlineAddRatio < 5 {
		return fmt.Errorf("%s headline arrival re-solve only %.2fx cheaper than cold at T=%d (want >= 5x)",
			r.ID, d.HeadlineAddRatio, d.HeadlineT)
	}
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced sweeps")
	only := fs.String("only", "", "run only the listed experiment IDs (comma-separated, e.g. E5 or E18,E19)")
	seed := fs.Int64("seed", 7, "random seed for workload generation")
	benchJSON := fs.String("bench-json", "", "write per-experiment wall times as JSON to this path")
	mergeBench := fs.String("merge-bench", "", "append this run to the benchmark-trajectory JSON at the given path (gated, see package doc)")
	label := fs.String("label", "", "entry label for -merge-bench (required with it)")
	mergeFrom := fs.String("merge-from", "", "merge the records in this -bench-json file instead of running experiments (requires -merge-bench; every merge gate still applies)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mergeBench != "" && *label == "" {
		return fmt.Errorf("-merge-bench requires -label")
	}
	if *mergeFrom != "" {
		// Replay path: the experiments already ran (their -bench-json output
		// is the input here), so only the merge — with its full gate set —
		// happens. Useful when a multi-hour run passed every absolute gate
		// but a trajectory calibration needed fixing before the merge.
		if *mergeBench == "" {
			return fmt.Errorf("-merge-from requires -merge-bench")
		}
		data, err := os.ReadFile(*mergeFrom)
		if err != nil {
			return err
		}
		var records []benchRecord
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("parsing %s: %w", *mergeFrom, err)
		}
		return mergeTrajectory(*mergeBench, *label, records)
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	runners := experiments.All()
	if *only != "" {
		runners = nil
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			r, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			runners = append(runners, r)
		}
		if len(runners) == 0 {
			return fmt.Errorf("-only %q names no experiments", *only)
		}
	}
	var records []benchRecord
	err := experiments.RunEach(cfg, stdout, runners,
		func(r experiments.Runner, tab *experiments.Table, elapsed time.Duration) {
			records = append(records, benchRecord{
				ID:      r.ID,
				Name:    r.Name,
				Millis:  float64(elapsed.Microseconds()) / 1000,
				Rows:    len(tab.Rows),
				Columns: tab.Columns,
				Kernel:  tab.Kernel,
				Approx:  tab.Approx,
				Delta:   tab.Delta,
			})
		})
	if err != nil {
		return err
	}
	if *benchJSON != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			return fmt.Errorf("writing bench json: %w", err)
		}
	}
	if *mergeBench != "" {
		if err := mergeTrajectory(*mergeBench, *label, records); err != nil {
			return err
		}
	}
	return nil
}
