// Command paperbench regenerates every experiment table of the
// reproduction (E1-E17, one per figure/claim of the paper plus the
// large-horizon LP scaling record; see DESIGN.md).
//
// Usage:
//
//	paperbench [-quick] [-only E5] [-seed 7] [-bench-json out.json]
//
// With -bench-json, per-experiment wall times are also written to the given
// path as a JSON array (one object per experiment: id, name, millis, rows,
// columns — the table's column headers, so downstream bench tooling can pin
// the effort columns it parses), feeding the machine-readable benchmark
// trajectory. The golden test in this package locks the schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
}

// benchRecord is one experiment's machine-readable timing. Its JSON schema
// (keys, experiment IDs/names, table columns) is pinned by the golden test;
// renaming a key or an effort column is a breaking change for downstream
// bench tooling and must update the golden file deliberately.
type benchRecord struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Millis  float64  `json:"millis"`
	Rows    int      `json:"rows"`
	Columns []string `json:"columns"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced sweeps")
	only := fs.String("only", "", "run a single experiment by ID (e.g. E5)")
	seed := fs.Int64("seed", 7, "random seed for workload generation")
	benchJSON := fs.String("bench-json", "", "write per-experiment wall times as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	runners := experiments.All()
	if *only != "" {
		r, ok := experiments.ByID(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		runners = []experiments.Runner{r}
	}
	var records []benchRecord
	err := experiments.RunEach(cfg, stdout, runners,
		func(r experiments.Runner, tab *experiments.Table, elapsed time.Duration) {
			records = append(records, benchRecord{
				ID:      r.ID,
				Name:    r.Name,
				Millis:  float64(elapsed.Microseconds()) / 1000,
				Rows:    len(tab.Rows),
				Columns: tab.Columns,
			})
		})
	if err != nil {
		return err
	}
	if *benchJSON != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			return fmt.Errorf("writing bench json: %w", err)
		}
	}
	return nil
}
