package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "paper gap") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestBenchJSON(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E3", "-bench-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		ID     string  `json:"id"`
		Name   string  `json:"name"`
		Millis float64 `json:"millis"`
		Rows   int     `json:"rows"`
	}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(records) != 1 || records[0].ID != "E3" {
		t.Fatalf("records = %+v, want one E3 entry", records)
	}
	if records[0].Millis <= 0 || records[0].Rows == 0 || records[0].Name == "" {
		t.Errorf("record fields not populated: %+v", records[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seed", "11"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1 —", "E7 —", "E14 —", "E15 —"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("output missing %s", id)
		}
	}
}
