package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "paper gap") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestBenchJSON(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E3", "-bench-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		ID     string  `json:"id"`
		Name   string  `json:"name"`
		Millis float64 `json:"millis"`
		Rows   int     `json:"rows"`
	}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(records) != 1 || records[0].ID != "E3" {
		t.Fatalf("records = %+v, want one E3 entry", records)
	}
	if records[0].Millis <= 0 || records[0].Rows == 0 || records[0].Name == "" {
		t.Errorf("record fields not populated: %+v", records[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seed", "11"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1 —", "E7 —", "E14 —", "E15 —"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("output missing %s", id)
		}
	}
}

// TestMergeTrajectoryGate exercises the -merge-bench non-regression gate
// directly: appending compatible records extends the trajectory, dropping
// a column or collapsing the kernel digest is rejected without touching
// the file, and partial runs leave unexecuted experiments ungated.
func TestMergeTrajectoryGate(t *testing.T) {
	path := t.TempDir() + "/traj.json"
	kern := &experiments.KernelSummary{HyperShare: 0.35, FtranAvgNNZ: 190, BtranAvgNNZ: 320, RowRefills: 12, Pivots: 100}
	base := []benchRecord{
		{ID: "E18", Name: "pivot cost", Millis: 5, Rows: 4, Columns: []string{"T", "pivots"}, Kernel: kern},
		{ID: "E17", Name: "lp scaling", Millis: 3, Rows: 2, Columns: []string{"T", "ms"}},
	}
	if err := mergeTrajectory(path, "pr5", base); err != nil {
		t.Fatalf("initial merge: %v", err)
	}
	// Compatible growth: extra column, slightly moved kernel share, and a
	// partial run that omits E17 entirely.
	next := []benchRecord{
		{ID: "E18", Columns: []string{"T", "pivots", "hyp%"},
			Kernel: &experiments.KernelSummary{HyperShare: 0.30, Pivots: 90}},
	}
	if err := mergeTrajectory(path, "pr6", next); err != nil {
		t.Fatalf("compatible merge: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Entries) != 2 || traj.Entries[0].Label != "pr5" || traj.Entries[1].Label != "pr6" {
		t.Fatalf("unexpected trajectory after merges: %+v", traj)
	}
	for _, bad := range []struct {
		name string
		recs []benchRecord
	}{
		{"dropped column", []benchRecord{{ID: "E18", Columns: []string{"T"}, Kernel: kern}}},
		{"dropped kernel digest", []benchRecord{{ID: "E18", Columns: []string{"T", "pivots", "hyp%"}}}},
		{"collapsed hypersparse share", []benchRecord{{ID: "E18", Columns: []string{"T", "pivots", "hyp%"},
			Kernel: &experiments.KernelSummary{HyperShare: 0.01}}}},
	} {
		if err := mergeTrajectory(path, "bad", bad.recs); err == nil {
			t.Errorf("%s: merge accepted", bad.name)
		}
	}
	if after, err := os.ReadFile(path); err != nil || !bytes.Equal(after, data) {
		t.Errorf("rejected merges modified the trajectory file")
	}
}

func TestRunOnlyList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E1,E3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1 —", "E3 —"} {
		if !strings.Contains(out, id) {
			t.Errorf("output missing %s", id)
		}
	}
	if strings.Contains(out, "E2 —") {
		t.Errorf("-only E1,E3 also ran E2:\n%s", out)
	}
	if err := run([]string{"-only", "E1,,E99"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment in -only list accepted")
	}
}

// TestMergeTrajectoryApproxGate exercises the approximation-digest gates:
// the absolute theorem bounds hold for every merge (even the first entry)
// and the incremental-flow counters may not regress between entries.
func TestMergeTrajectoryApproxGate(t *testing.T) {
	path := t.TempDir() + "/traj.json"
	good := func() []benchRecord {
		return []benchRecord{{ID: "E19", Name: "approx gap", Millis: 5, Rows: 8,
			Columns: []string{"family", "T"},
			Approx: &experiments.ApproxSummary{
				MaxRoundedOverLP: 1.4, MaxMinimalOverLP: 2.1,
				MaxMinimalOverOPT: 1.6, ColdFlows: 1, Cells: 8,
			}}}
	}
	for _, bad := range []struct {
		name   string
		mutate func(*experiments.ApproxSummary)
	}{
		{"rounded/LP above 2", func(a *experiments.ApproxSummary) { a.MaxRoundedOverLP = 2.01 }},
		{"minimal/OPT above 3", func(a *experiments.ApproxSummary) { a.MaxMinimalOverOPT = 3.2 }},
		{"defensive repairs", func(a *experiments.ApproxSummary) { a.Repairs = 2 }},
		{"cold flows above 1", func(a *experiments.ApproxSummary) { a.ColdFlows = 7 }},
		{"dropped proxy mass", func(a *experiments.ApproxSummary) { a.DroppedMass = 0.75 }},
	} {
		recs := good()
		bad.mutate(recs[0].Approx)
		if err := mergeTrajectory(path, "bad", recs); err == nil {
			t.Errorf("%s: merge accepted", bad.name)
		}
	}
	if _, err := os.ReadFile(path); !os.IsNotExist(err) {
		t.Fatalf("rejected first merges created the trajectory file")
	}
	if err := mergeTrajectory(path, "pr7", good()); err != nil {
		t.Fatalf("good merge: %v", err)
	}
	// Dropping the digest or regressing a counter vs the previous entry is
	// rejected.
	noDigest := good()
	noDigest[0].Approx = nil
	if err := mergeTrajectory(path, "bad", noDigest); err == nil {
		t.Error("dropped approx digest accepted")
	}
	regressed := good()
	regressed[0].Approx.ColdFlows = 1 // equal is fine...
	if err := mergeTrajectory(path, "pr8", regressed); err != nil {
		t.Errorf("equal counters rejected: %v", err)
	}
}
