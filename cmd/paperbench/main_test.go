package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "paper gap") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seed", "11"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1 —", "E7 —", "E14 —", "E15 —"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("output missing %s", id)
		}
	}
}
