package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "paper gap") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestBenchJSON(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E3", "-bench-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		ID     string  `json:"id"`
		Name   string  `json:"name"`
		Millis float64 `json:"millis"`
		Rows   int     `json:"rows"`
	}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(records) != 1 || records[0].ID != "E3" {
		t.Fatalf("records = %+v, want one E3 entry", records)
	}
	if records[0].Millis <= 0 || records[0].Rows == 0 || records[0].Name == "" {
		t.Errorf("record fields not populated: %+v", records[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seed", "11"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1 —", "E7 —", "E14 —", "E15 —"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("output missing %s", id)
		}
	}
}

// TestMergeTrajectoryGate exercises the -merge-bench non-regression gate
// directly: appending compatible records extends the trajectory, dropping
// a column or collapsing the kernel digest is rejected without touching
// the file, and partial runs leave unexecuted experiments ungated.
func TestMergeTrajectoryGate(t *testing.T) {
	path := t.TempDir() + "/traj.json"
	kern := &experiments.KernelSummary{HyperShare: 0.35, FtranAvgNNZ: 190, BtranAvgNNZ: 320, RowRefills: 12, Pivots: 100}
	base := []benchRecord{
		{ID: "E18", Name: "pivot cost", Millis: 5, Rows: 4, Columns: []string{"T", "pivots"}, Kernel: kern},
		{ID: "E17", Name: "lp scaling", Millis: 3, Rows: 2, Columns: []string{"T", "ms"}},
	}
	if err := mergeTrajectory(path, "pr5", base); err != nil {
		t.Fatalf("initial merge: %v", err)
	}
	// Compatible growth: extra column, slightly moved kernel share, and a
	// partial run that omits E17 entirely.
	next := []benchRecord{
		{ID: "E18", Columns: []string{"T", "pivots", "hyp%"},
			Kernel: &experiments.KernelSummary{HyperShare: 0.30, Pivots: 90}},
	}
	if err := mergeTrajectory(path, "pr6", next); err != nil {
		t.Fatalf("compatible merge: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Entries) != 2 || traj.Entries[0].Label != "pr5" || traj.Entries[1].Label != "pr6" {
		t.Fatalf("unexpected trajectory after merges: %+v", traj)
	}
	for _, bad := range []struct {
		name string
		recs []benchRecord
	}{
		{"dropped column", []benchRecord{{ID: "E18", Columns: []string{"T"}, Kernel: kern}}},
		{"dropped kernel digest", []benchRecord{{ID: "E18", Columns: []string{"T", "pivots", "hyp%"}}}},
		{"collapsed hypersparse share", []benchRecord{{ID: "E18", Columns: []string{"T", "pivots", "hyp%"},
			Kernel: &experiments.KernelSummary{HyperShare: 0.01}}}},
	} {
		if err := mergeTrajectory(path, "bad", bad.recs); err == nil {
			t.Errorf("%s: merge accepted", bad.name)
		}
	}
	if after, err := os.ReadFile(path); err != nil || !bytes.Equal(after, data) {
		t.Errorf("rejected merges modified the trajectory file")
	}
}
