package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the bench-json schema golden file")

// benchSchema is the timing-independent part of a -bench-json record: the
// experiment identity and its table's column headers (including the
// solver-effort columns like cuts/rounds/pivots that downstream bench
// tooling parses). TestBenchJSONSchemaGolden pins it.
type benchSchema struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	// Kernel pins which experiments expose a kernel digest and its exact
	// key set — but not its values, which are deterministic per box/arch
	// yet not across them.
	Kernel []string `json:"kernel,omitempty"`
	// Approx likewise pins which experiments expose an approximation digest
	// and its exact key set.
	Approx []string `json:"approx,omitempty"`
	// Delta likewise pins which experiments expose a live-session delta
	// digest and its exact key set.
	Delta []string `json:"delta,omitempty"`
}

// TestBenchJSONSchemaGolden locks the machine-readable benchmark schema:
// the exact JSON keys of every record, and the full id/name/column set of
// every experiment, against testdata/bench_schema.golden. Renaming an
// effort column, dropping an experiment, or changing a JSON key breaks
// downstream bench tooling silently — this test makes it loud. Regenerate
// deliberately with:
//
//	go test ./cmd/paperbench -run BenchJSONSchemaGolden -update
func TestBenchJSONSchemaGolden(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	if err := run([]string{"-quick", "-bench-json", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Key-level pin: every record must carry exactly these JSON keys.
	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	wantKeys := []string{"columns", "id", "millis", "name", "rows"}
	for i, rec := range raw {
		extra := 0
		if _, ok := rec["kernel"]; ok {
			extra++
		}
		if _, ok := rec["approx"]; ok {
			extra++
		}
		if _, ok := rec["delta"]; ok {
			extra++
		}
		if len(rec) != len(wantKeys)+extra {
			t.Fatalf("record %d has %d keys, want %d (%v)", i, len(rec), len(wantKeys)+extra, rec)
		}
		for _, k := range wantKeys {
			if _, ok := rec[k]; !ok {
				t.Fatalf("record %d missing key %q", i, k)
			}
		}
	}

	// Schema-level pin: id/name/columns of every experiment, in order,
	// plus the key set (not the values) of any kernel digest.
	var full []benchRecord
	if err := json.Unmarshal(data, &full); err != nil {
		t.Fatal(err)
	}
	records := make([]benchSchema, len(full))
	for i, rec := range full {
		records[i] = benchSchema{ID: rec.ID, Name: rec.Name, Columns: rec.Columns}
		sortedKeys := func(m map[string]any) []string {
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return keys
		}
		if kern, ok := raw[i]["kernel"].(map[string]any); ok {
			records[i].Kernel = sortedKeys(kern)
		}
		if appr, ok := raw[i]["approx"].(map[string]any); ok {
			records[i].Approx = sortedKeys(appr)
		}
		if del, ok := raw[i]["delta"].(map[string]any); ok {
			records[i].Delta = sortedKeys(del)
		}
	}
	got, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	goldenPath := filepath.Join("testdata", "bench_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("bench-json schema drifted from %s.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is deliberate)",
			goldenPath, got, want)
	}
}
