package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/activetime"
	"repro/internal/core"
	"repro/internal/gen"
)

func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := newServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case []byte:
		rd = bytes.NewReader(b)
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

func putInstance(t *testing.T, base, tenant string, in *core.Instance) {
	t.Helper()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatalf("encode instance: %v", err)
	}
	code, body := do(t, http.MethodPut, base+"/v1/tenants/"+tenant, buf.Bytes())
	if code != http.StatusCreated {
		t.Fatalf("create tenant: status %d: %s", code, body)
	}
}

func getSolution(t *testing.T, base, tenant string) solution {
	t.Helper()
	code, body := do(t, http.MethodGet, base+"/v1/tenants/"+tenant+"/solution", nil)
	if code != http.StatusOK {
		t.Fatalf("get solution: status %d: %s", code, body)
	}
	var sol solution
	if err := json.Unmarshal(body, &sol); err != nil {
		t.Fatalf("decode solution: %v (%s)", err, body)
	}
	return sol
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decode error body: %v (%s)", err, body)
	}
	return e.Error.Code
}

// TestServerDeltaLifecycle drives one tenant through arrivals and a
// departure over HTTP and checks every returned optimum against a cold
// solve of the same instance state — the server-side delta-vs-cold
// invariant, end to end through the wire format.
func TestServerDeltaLifecycle(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	in := gen.RandomFlexible(gen.RandomConfig{N: 8, Horizon: 16, MaxLen: 3, Slack: 3, G: 3, Seed: 2})
	putInstance(t, ts.URL, "acme", in)

	mirror := in.Clone()
	sol := getSolution(t, ts.URL, "acme")
	cold, err := activetime.SolveLP(mirror)
	if err != nil {
		t.Fatalf("cold SolveLP: %v", err)
	}
	if math.Abs(sol.Objective-cold.Objective) > 1e-6 {
		t.Fatalf("initial solution %.9f, cold %.9f", sol.Objective, cold.Objective)
	}

	arrivals := []core.Job{
		{ID: 100, Release: 2, Deadline: 9, Length: 3},
		{ID: 101, Release: 0, Deadline: 20, Length: 4},
	}
	code, body := do(t, http.MethodPost, ts.URL+"/v1/tenants/acme/jobs:add",
		map[string]any{"jobs": arrivals})
	if code != http.StatusOK {
		t.Fatalf("jobs:add: status %d: %s", code, body)
	}
	mirror.Jobs = append(mirror.Jobs, arrivals...)
	var got solution
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode add solution: %v", err)
	}
	cold, err = activetime.SolveLP(mirror)
	if err != nil {
		t.Fatalf("cold SolveLP after add: %v", err)
	}
	if math.Abs(got.Objective-cold.Objective) > 1e-6 {
		t.Fatalf("post-add solution %.9f, cold %.9f", got.Objective, cold.Objective)
	}
	if got.ColdFallbacks != 0 {
		t.Fatalf("post-add solve reported %d warm-basis fallbacks: %v", got.ColdFallbacks, got.FallbackVerdicts)
	}

	code, body = do(t, http.MethodPost, ts.URL+"/v1/tenants/acme/jobs:remove",
		map[string]any{"ids": []int{100, mirror.Jobs[0].ID}})
	if code != http.StatusOK {
		t.Fatalf("jobs:remove: status %d: %s", code, body)
	}
	removed := map[int]bool{100: true, mirror.Jobs[0].ID: true}
	var kept []core.Job
	for _, j := range mirror.Jobs {
		if !removed[j.ID] {
			kept = append(kept, j)
		}
	}
	mirror.Jobs = kept
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode remove solution: %v", err)
	}
	cold, err = activetime.SolveLP(mirror)
	if err != nil {
		t.Fatalf("cold SolveLP after remove: %v", err)
	}
	if math.Abs(got.Objective-cold.Objective) > 1e-6 {
		t.Fatalf("post-remove solution %.9f, cold %.9f", got.Objective, cold.Objective)
	}

	code, _ = do(t, http.MethodDelete, ts.URL+"/v1/tenants/acme", nil)
	if code != http.StatusNoContent {
		t.Fatalf("delete tenant: status %d", code)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/v1/tenants/acme/solution", nil)
	if code != http.StatusNotFound || errCode(t, body) != "not_found" {
		t.Fatalf("deleted tenant still answers: %d %s", code, body)
	}
}

// TestServerConcurrentTenants hammers several tenants with concurrent
// disjoint arrival batches (the run CI executes under -race): every
// response must be a coherent solution, and once the dust settles each
// tenant's served optimum must equal a cold solve of everything it
// absorbed. Concurrent mutations against one tenant exercise the
// single-flight batching; distinct tenants exercise registry and cache
// sharing.
func TestServerConcurrentTenants(t *testing.T) {
	srv, ts := testServer(t, serverConfig{})
	const nTenants = 3
	const batchesPerTenant = 8
	for ti := 0; ti < nTenants; ti++ {
		in := gen.RandomFlexible(gen.RandomConfig{N: 6, Horizon: 14, MaxLen: 3, Slack: 3, G: 3, Seed: int64(ti)})
		putInstance(t, ts.URL, fmt.Sprintf("t%d", ti), in)
	}
	var wg sync.WaitGroup
	for ti := 0; ti < nTenants; ti++ {
		for b := 0; b < batchesPerTenant; b++ {
			wg.Add(1)
			go func(ti, b int) {
				defer wg.Done()
				job := core.Job{
					ID:      1000 + b,
					Release: core.Time(b % 5), Deadline: core.Time(b%5 + 4 + b%3), Length: core.Time(1 + b%2),
				}
				code, body := do(t, http.MethodPost,
					fmt.Sprintf("%s/v1/tenants/t%d/jobs:add", ts.URL, ti),
					map[string]any{"jobs": []core.Job{job}})
				// 200 (solved) and 422 (batch would be infeasible) are both
				// coherent; anything else is a server bug.
				if code != http.StatusOK && code != http.StatusUnprocessableEntity {
					t.Errorf("tenant %d batch %d: status %d: %s", ti, b, code, body)
				}
			}(ti, b)
		}
	}
	wg.Wait()
	for ti := 0; ti < nTenants; ti++ {
		name := fmt.Sprintf("t%d", ti)
		sol := getSolution(t, ts.URL, name)
		tn, ok := srv.tenant(name)
		if !ok {
			t.Fatalf("tenant %s vanished", name)
		}
		tn.sem <- struct{}{}
		final := tn.sess.Instance()
		tn.unlock()
		cold, err := activetime.SolveLP(final)
		if err != nil {
			t.Fatalf("tenant %s: cold SolveLP of final state: %v", name, err)
		}
		if math.Abs(sol.Objective-cold.Objective) > 1e-6 {
			t.Errorf("tenant %s: served %.9f, cold %.9f", name, sol.Objective, cold.Objective)
		}
	}
	code, body := do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	var m map[string]int64
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if m["tenants"] != nTenants {
		t.Errorf("metrics report %d tenants, want %d", m["tenants"], nTenants)
	}
	if m["solves"] < nTenants {
		t.Errorf("metrics report %d solves for %d tenants", m["solves"], nTenants)
	}
}

// TestServerTypedErrors pins the error contract: infeasible arrivals are
// 422 "infeasible", a tenant held busy past the deadline is 503 "overload",
// unknown tenants 404, bad payloads 400 — all as typed JSON, never bare
// strings.
func TestServerTypedErrors(t *testing.T) {
	srv, ts := testServer(t, serverConfig{Deadline: 200 * time.Millisecond})
	in := gen.RandomUnit(gen.RandomConfig{N: 4, Horizon: 8, Slack: 2, G: 2, Seed: 1})
	putInstance(t, ts.URL, "acme", in)
	getSolution(t, ts.URL, "acme") // settle the first solve

	// Crowd one slot past G on top of the existing load: infeasible.
	var crowd []core.Job
	for i := 0; i <= in.G; i++ {
		crowd = append(crowd, core.Job{ID: 500 + i, Release: 0, Deadline: 1, Length: 1})
	}
	code, body := do(t, http.MethodPost, ts.URL+"/v1/tenants/acme/jobs:add",
		map[string]any{"jobs": crowd})
	if code != http.StatusUnprocessableEntity || errCode(t, body) != "infeasible" {
		t.Errorf("infeasible batch: got %d %s", code, body)
	}

	// Hold the tenant lock so the next mutation cannot acquire it.
	tn, _ := srv.tenant("acme")
	tn.sem <- struct{}{}
	code, body = do(t, http.MethodPost, ts.URL+"/v1/tenants/acme/jobs:add",
		map[string]any{"jobs": []core.Job{{ID: 600, Release: 0, Deadline: 4, Length: 1}}})
	tn.unlock()
	if code != http.StatusServiceUnavailable || errCode(t, body) != "overload" {
		t.Errorf("busy tenant: got %d %s, want 503 overload", code, body)
	}

	code, body = do(t, http.MethodGet, ts.URL+"/v1/tenants/nobody/solution", nil)
	if code != http.StatusNotFound || errCode(t, body) != "not_found" {
		t.Errorf("unknown tenant: got %d %s", code, body)
	}
	code, body = do(t, http.MethodPost, ts.URL+"/v1/tenants/acme/jobs:add", []byte(`{"jobs": 3}`))
	if code != http.StatusBadRequest || errCode(t, body) != "bad_request" {
		t.Errorf("malformed payload: got %d %s", code, body)
	}
	code, body = do(t, http.MethodPut, ts.URL+"/v1/tenants/acme", []byte(`{"g":0,"jobs":[]}`))
	if code != http.StatusBadRequest {
		t.Errorf("invalid instance: got %d %s", code, body)
	}
}

// TestServerFingerprintCache locks the cross-tenant result cache: a second
// tenant registering a byte-identical instance must be answered from the
// fingerprint cache, not a fresh cut loop.
func TestServerFingerprintCache(t *testing.T) {
	srv, ts := testServer(t, serverConfig{})
	in := gen.RandomProper(gen.RandomConfig{N: 6, Horizon: 18, MaxLen: 4, G: 3, Seed: 9})
	putInstance(t, ts.URL, "first", in)
	a := getSolution(t, ts.URL, "first")
	putInstance(t, ts.URL, "second", in)
	b := getSolution(t, ts.URL, "second")
	if math.Abs(a.Objective-b.Objective) > 1e-12 {
		t.Fatalf("identical instances solved to different optima: %.12f vs %.12f", a.Objective, b.Objective)
	}
	if !b.Cached {
		t.Errorf("second tenant's solution was not served from the fingerprint cache")
	}
	if hits := srv.cacheHits.Load(); hits < 1 {
		t.Errorf("cacheHits = %d, want >= 1", hits)
	}
}
