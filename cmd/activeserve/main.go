// Command activeserve is a long-lived batching solve server for the
// active-time LP: tenants register instances, stream job arrivals and
// departures, and read back fresh LP optima, with each tenant held as a
// live activetime.Session whose master basis and separation network survive
// the deltas.
//
// Usage:
//
//	activeserve [-addr :8080] [-deadline 30s] [-cache 256]
//
// Wire format (JSON over HTTP; instances and jobs use the instgen schema
// documented in internal/core):
//
//	PUT    /v1/tenants/{tenant}              body: an instance            → 201 {"jobs":..,"g":..,"horizon":..}
//	POST   /v1/tenants/{tenant}/jobs:add     body: {"jobs":[{job},...]}   → 200 solution
//	POST   /v1/tenants/{tenant}/jobs:remove  body: {"ids":[7,12,...]}     → 200 solution
//	GET    /v1/tenants/{tenant}/solution                                  → 200 solution
//	DELETE /v1/tenants/{tenant}                                           → 204
//	GET    /healthz                                                       → 200
//	GET    /metrics                                                       → 200 counters
//
// A solution is {"objective":..,"y":[..],"rounds":..,"cuts":..,
// "pivots":..,"coldFallbacks":..,"fallbackVerdicts":[..],"stats":{..}}.
// Errors are typed: {"error":{"code":"overload","message":".."}} with 503
// when the tenant cannot be acquired within the request deadline, 504
// "deadline" when the re-solve outlives it (the batch keeps solving; a
// later GET returns it), 422 "infeasible" for arrival batches no schedule
// can absorb, 400/404 for malformed requests and unknown tenants.
//
// Mutations are batched per tenant: concurrent arrivals and departures
// coalesce onto one re-solve (single flight), each caller waiting on the
// batch that covers its own mutation. Results are cached across tenants by
// an order-independent instance fingerprint. Every cold escape hatch is
// counted and logged — lp-level warm-basis fallbacks (coldFallbacks) and
// session master rebuilds on tight-row removals (coldRebuilds) — never
// silent.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/activetime"
	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	deadline := flag.Duration("deadline", 30*time.Second, "per-request deadline (tenant acquisition + solve wait)")
	cacheSize := flag.Int("cache", 256, "fingerprint result-cache capacity (entries)")
	flag.Parse()
	srv := newServer(serverConfig{Deadline: *deadline, CacheSize: *cacheSize, Logf: log.Printf})
	log.Printf("activeserve: listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// serverConfig parameterizes a server; the zero value gets sane defaults.
type serverConfig struct {
	Deadline  time.Duration
	CacheSize int
	Logf      func(format string, args ...any)
}

// server is the HTTP front end: a tenant registry, a shared fingerprint
// result cache, and the solver goroutines that drain dirty tenants.
type server struct {
	cfg   serverConfig
	mux   *http.ServeMux
	mu    sync.Mutex // guards tenants
	ten   map[string]*tenant
	cache *resultCache

	// Counters surfaced by /metrics. Every fallback a session can take is
	// here: silent degradation is the failure mode this server refuses.
	solves        atomic.Int64 // re-solves actually run
	cacheHits     atomic.Int64 // solves answered from the fingerprint cache
	coalesced     atomic.Int64 // mutations that joined an in-flight batch
	overloads     atomic.Int64 // tenant lock not acquired within deadline
	deadlines     atomic.Int64 // solve outlived the request deadline
	coldFallbacks atomic.Int64 // lp-level warm-basis abandonments
	coldRebuilds  atomic.Int64 // session master rebuilds on removal
}

func newServer(cfg serverConfig) *server {
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		ten:   make(map[string]*tenant),
		cache: newResultCache(cfg.CacheSize),
	}
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}", s.handleCreate)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/jobs:add", s.handleAdd)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/jobs:remove", s.handleRemove)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/solution", s.handleSolution)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleDelete)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// tenant is one live session plus the single-flight solve state. The
// capacity-1 channel is the tenant lock (context-aware, unlike a mutex);
// every field below it is guarded by holding the channel.
type tenant struct {
	sem chan struct{}

	sess         *activetime.Session
	dirty        bool      // instance changed since the last solve
	solving      bool      // a solver goroutine is draining this tenant
	next         *batch    // the batch the next solve will complete
	lastRes      *solution // most recent completed solution
	lastErr      error     // most recent solve error
	coldRebuilds int       // session ColdRebuilds already counted
}

// batch is one coalesced re-solve: every mutation that lands before the
// solver picks the batch up shares its result.
type batch struct {
	done chan struct{} // closed when res/err are final
	res  *solution
	err  error
}

func (t *tenant) lock(ctx context.Context) error {
	select {
	case t.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (t *tenant) unlock() { <-t.sem }

// ensureBatch returns the batch covering the present dirty state, reporting
// whether the caller joined one that an earlier mutation already opened.
func (t *tenant) ensureBatch() (*batch, bool) {
	if t.next != nil {
		return t.next, true
	}
	t.next = &batch{done: make(chan struct{})}
	return t.next, false
}

// startSolver must run with the tenant lock held.
func (s *server) startSolver(t *tenant) {
	if !t.solving {
		t.solving = true
		go s.solveLoop(t)
	}
}

// solveLoop drains the tenant: solve while dirty, publish each batch, stop
// when clean. It is the only goroutine that runs Solve, so mutations only
// ever contend on the tenant lock, never on the session.
func (s *server) solveLoop(t *tenant) {
	for {
		t.sem <- struct{}{}
		if !t.dirty {
			t.solving = false
			t.unlock()
			return
		}
		t.dirty = false
		b := t.next
		t.next = nil
		fp := t.sess.Fingerprint()
		var sol *solution
		var err error
		if cached, ok := s.cache.get(fp); ok {
			s.cacheHits.Add(1)
			c := *cached
			c.Cached = true
			c.Stats = t.sess.Stats()
			sol = &c
		} else {
			var res *activetime.LPResult
			res, err = t.sess.Solve()
			s.solves.Add(1)
			if err == nil {
				sol = newSolution(res, t.sess.Stats())
				s.cache.put(fp, sol)
				if res.ColdFallbacks > 0 {
					s.coldFallbacks.Add(int64(res.ColdFallbacks))
					s.cfg.Logf("activeserve: re-solve abandoned its warm basis %d time(s): %v",
						res.ColdFallbacks, res.FallbackVerdicts)
				}
			}
		}
		t.lastRes, t.lastErr = sol, err
		if b != nil {
			b.res, b.err = sol, err
			close(b.done)
		}
		t.unlock()
	}
}

// noteRebuilds must run with the tenant lock held, after a mutation: any
// new counted cold rebuild is promoted to the server metrics and the log.
func (s *server) noteRebuilds(t *tenant) {
	if st := t.sess.Stats(); st.ColdRebuilds > t.coldRebuilds {
		d := st.ColdRebuilds - t.coldRebuilds
		t.coldRebuilds = st.ColdRebuilds
		s.coldRebuilds.Add(int64(d))
		s.cfg.Logf("activeserve: removal hit a tight row; master rebuilt cold (%d total for tenant)", st.ColdRebuilds)
	}
}

// solution is the wire form of one solved state.
type solution struct {
	Objective        float64                 `json:"objective"`
	Y                []float64               `json:"y"`
	Rounds           int                     `json:"rounds"`
	Cuts             int                     `json:"cuts"`
	Pivots           int                     `json:"pivots"`
	ColdFallbacks    int                     `json:"coldFallbacks"`
	FallbackVerdicts []string                `json:"fallbackVerdicts,omitempty"`
	Cached           bool                    `json:"cached,omitempty"`
	Stats            activetime.SessionStats `json:"stats"`
}

func newSolution(res *activetime.LPResult, st activetime.SessionStats) *solution {
	return &solution{
		Objective:        res.Objective,
		Y:                res.Y,
		Rounds:           res.Rounds,
		Cuts:             res.Cuts,
		Pivots:           res.Pivots,
		ColdFallbacks:    res.ColdFallbacks,
		FallbackVerdicts: res.FallbackVerdicts,
		Stats:            st,
	}
}

func (s *server) tenant(name string) (*tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.ten[name]
	return t, ok
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]any{"error": map[string]string{"code": code, "message": msg}})
}

func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	in, err := core.ReadInstance(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	sess, err := activetime.NewSession(in)
	if errors.Is(err, activetime.ErrInfeasible) {
		writeError(w, http.StatusUnprocessableEntity, "infeasible", "no feasible schedule exists for this instance")
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	t := &tenant{sem: make(chan struct{}, 1), sess: sess, dirty: true}
	s.mu.Lock()
	s.ten[r.PathValue("tenant")] = t
	s.mu.Unlock()
	t.sem <- struct{}{} // uncontended: the tenant is not yet visible to a solver
	s.startSolver(t)
	t.unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"jobs": sess.NumJobs(), "g": in.G, "horizon": in.Horizon(),
	})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	_, ok := s.ten[r.PathValue("tenant")]
	delete(s.ten, r.PathValue("tenant"))
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such tenant")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// mutate runs one delta under the tenant lock and waits for the batch that
// covers it — the shared shape of jobs:add and jobs:remove.
func (s *server) mutate(w http.ResponseWriter, r *http.Request, apply func(*activetime.Session) error) {
	t, ok := s.tenant(r.PathValue("tenant"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such tenant")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	if err := t.lock(ctx); err != nil {
		s.overloads.Add(1)
		writeError(w, http.StatusServiceUnavailable, "overload",
			"tenant busy beyond the request deadline; retry")
		return
	}
	if err := apply(t.sess); err != nil {
		t.unlock()
		if errors.Is(err, activetime.ErrInfeasible) {
			writeError(w, http.StatusUnprocessableEntity, "infeasible",
				"arrival batch rejected: no feasible schedule would exist")
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.noteRebuilds(t)
	t.dirty = true
	b, joined := t.ensureBatch()
	if joined {
		s.coalesced.Add(1)
	}
	s.startSolver(t)
	t.unlock()
	select {
	case <-b.done:
		if b.err != nil {
			writeError(w, http.StatusInternalServerError, "internal", b.err.Error())
			return
		}
		writeJSON(w, http.StatusOK, b.res)
	case <-ctx.Done():
		s.deadlines.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline",
			"mutation applied; re-solve still running — GET solution later")
	}
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Jobs []core.Job `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.mutate(w, r, func(sess *activetime.Session) error { return sess.AddJobs(body.Jobs) })
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var body struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.mutate(w, r, func(sess *activetime.Session) error { return sess.RemoveJobs(body.IDs) })
}

func (s *server) handleSolution(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(r.PathValue("tenant"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such tenant")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	if err := t.lock(ctx); err != nil {
		s.overloads.Add(1)
		writeError(w, http.StatusServiceUnavailable, "overload",
			"tenant busy beyond the request deadline; retry")
		return
	}
	if !t.dirty && t.next == nil {
		res, err := t.lastRes, t.lastErr
		t.unlock()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		if res == nil {
			writeError(w, http.StatusServiceUnavailable, "overload", "first solve still starting; retry")
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	b, _ := t.ensureBatch()
	s.startSolver(t)
	t.unlock()
	select {
	case <-b.done:
		if b.err != nil {
			writeError(w, http.StatusInternalServerError, "internal", b.err.Error())
			return
		}
		writeJSON(w, http.StatusOK, b.res)
	case <-ctx.Done():
		s.deadlines.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline", "solve still running — retry")
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nTen := len(s.ten)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int64{
		"tenants":       int64(nTen),
		"solves":        s.solves.Load(),
		"cacheHits":     s.cacheHits.Load(),
		"coalesced":     s.coalesced.Load(),
		"overloads":     s.overloads.Load(),
		"deadlines":     s.deadlines.Load(),
		"coldFallbacks": s.coldFallbacks.Load(),
		"coldRebuilds":  s.coldRebuilds.Load(),
	})
}

// resultCache is a bounded fingerprint → solution map with random-ish
// eviction (clock over insertion order): equal instances across tenants —
// or a tenant returning to a previous state — skip the re-solve entirely.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	m     map[[2]uint64]*solution
	order [][2]uint64
	hand  int
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, m: make(map[[2]uint64]*solution, capacity)}
}

func (c *resultCache) get(fp [2]uint64) (*solution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sol, ok := c.m[fp]
	return sol, ok
}

func (c *resultCache) put(fp [2]uint64, sol *solution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fp]; ok {
		c.m[fp] = sol
		return
	}
	if len(c.m) >= c.cap {
		victim := c.order[c.hand%len(c.order)]
		c.order[c.hand%len(c.order)] = fp
		c.hand++
		delete(c.m, victim)
	} else {
		c.order = append(c.order, fp)
	}
	c.m[fp] = sol
}
