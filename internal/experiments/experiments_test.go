package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode and checks the
// tables are well-formed; the experiments themselves re-verify every
// schedule, so a pass here is a full end-to-end check of the pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab, err := r.Run(Config{Quick: true, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if tab.ID != r.ID {
				t.Errorf("table ID %q, want %q", tab.ID, r.ID)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", r.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s: row has %d cells, want %d", r.ID, len(row), len(tab.Columns))
				}
				for _, cell := range row {
					if strings.Contains(cell, "VIOLATED") {
						t.Errorf("%s: bound violated: %v", r.ID, row)
					}
				}
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), r.ID) {
				t.Errorf("%s: render missing ID", r.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e5"); !ok {
		t.Error("ByID case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Quick: true, Seed: 3}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, r := range All() {
		if !strings.Contains(buf.String(), r.ID+" — ") {
			t.Errorf("RunAll output missing %s", r.ID)
		}
	}
}
