package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/activetime"
	"repro/internal/core"
	"repro/internal/gen"
)

// approxCell is one family × horizon point of the E19 grid.
type approxCell struct {
	family string
	T      int
	make   func(seed int64) *core.Instance
	// unitExact marks families solvable by the polynomial unit-job exact
	// algorithm at every size; other families get branch and bound only at
	// small T.
	unitExact bool
}

// e19Grid enumerates every generator family at horizons up to 32768. Full
// mode is sized for the CI scaling job (the two largest scaling cells
// dominate: one LP solve each at T = 16384 and 32768); Quick keeps one
// small cell per family so the golden schema test stays fast.
func e19Grid(quick bool) []approxCell {
	flexible := func(T int) approxCell {
		return approxCell{family: "flexible", T: T, make: func(seed int64) *core.Instance {
			return gen.RandomFlexible(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 8, Slack: 8, G: 4, Seed: seed})
		}}
	}
	interval := func(T int) approxCell {
		return approxCell{family: "interval", T: T, make: func(seed int64) *core.Instance {
			return gen.RandomInterval(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 8, G: 4, Seed: seed})
		}}
	}
	unit := func(T int) approxCell {
		return approxCell{family: "unit", T: T, unitExact: true, make: func(seed int64) *core.Instance {
			return gen.RandomUnit(gen.RandomConfig{N: T / 4, Horizon: T, Slack: 6, G: 3, Seed: seed})
		}}
	}
	clique := func(T int) approxCell {
		// Clique jobs are rigid intervals through one common point:
		// feasibility needs N <= G.
		return approxCell{family: "clique", T: T, make: func(seed int64) *core.Instance {
			return gen.RandomClique(gen.RandomConfig{N: 4, Horizon: T, MaxLen: T / 4, G: 4, Seed: seed})
		}}
	}
	proper := func(T int) approxCell {
		// The proper generator derives its horizon from N (~2N), so N = T/2.
		return approxCell{family: "proper", T: T, make: func(seed int64) *core.Instance {
			return gen.RandomProper(gen.RandomConfig{N: T / 2, Horizon: T, MaxLen: 6, G: 3, Seed: seed})
		}}
	}
	laminar := func(T int) approxCell {
		// Laminar jobs fill their whole window; g must cover the nesting depth,
		// and one depth-5 laminar tree already demands ~(depth+1)·T units
		// against g·T capacity, so n caps at one tree's worth of jobs — a
		// second root job alone would overflow the horizon.
		return approxCell{family: "laminar", T: T, make: func(seed int64) *core.Instance {
			n := T / 4
			if n > 48 {
				n = 48
			}
			return gen.RandomLaminar(gen.RandomConfig{N: n, Horizon: T, G: 6, Seed: seed})
		}}
	}
	hardness := func(T int) approxCell {
		// Selector-chain reduction gadgets (arXiv 2112.03255); T = 3k.
		return approxCell{family: "hardness", T: T, make: func(seed int64) *core.Instance {
			return gen.Hardness(T/3, 3)
		}}
	}
	scaling := func(T int) approxCell {
		return approxCell{family: "scaling", T: T, make: func(seed int64) *core.Instance {
			return gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: seed})
		}}
	}
	if quick {
		return []approxCell{
			flexible(32), interval(32), unit(32), clique(32),
			proper(32), laminar(32), hardness(24), scaling(64),
		}
	}
	return []approxCell{
		flexible(32), flexible(1024), flexible(8192),
		interval(32), interval(1024), interval(8192),
		unit(32), unit(1024), unit(8192),
		clique(32), clique(256),
		proper(32), proper(1024),
		laminar(32), laminar(512),
		hardness(24), hardness(384), hardness(1536),
		scaling(32), scaling(1024), scaling(4096), scaling(16384), scaling(32768),
	}
}

// exactHorizonCap bounds the branch-and-bound cells: above this horizon the
// search space is out of reach and the row reports bound-relative ratios
// only. Unit-family cells ignore it (their exact solver is polynomial).
const exactHorizonCap = 32

// ApproxSummary is the machine-readable digest of one E19 run: worst-case
// realized approximation ratios plus the counters that prove the post-LP
// pipeline ran incrementally. paperbench exports it into the bench records
// and gates the committed trajectory on it: the ratio bounds are absolute
// (2 for rounding vs LP, 3 for minimal-feasible vs OPT) and the counters
// must not regress between entries.
type ApproxSummary struct {
	MaxRoundedOverLP  float64 `json:"maxRoundedOverLp"`
	MaxMinimalOverLP  float64 `json:"maxMinimalOverLp"`
	MaxMinimalOverOPT float64 `json:"maxMinimalOverOpt"` // 0 when no cell reached an exact optimum
	MaxRoundedOverOPT float64 `json:"maxRoundedOverOpt"` // 0 when no cell reached an exact optimum
	Repairs           int     `json:"repairs"`           // total defensive repairs across cells (expected 0)
	ColdFlows         int     `json:"coldFlows"`         // max per-cell cold flows across rounding and minimal runs
	DroppedMass       float64 `json:"droppedMass"`       // max per-cell unplaced proxy mass
	Cells             int     `json:"cells"`
}

// E19ApproxGap runs the paper's two approximation deliverables — the
// Theorem 2 LP rounding and the Theorem 1 minimal feasible solution — over
// every generator family at horizons up to 32768 and records the realized
// ratios against the LP lower bound and, where an exact optimum is
// reachable (branch and bound at small T, the polynomial unit solver at
// every T), against OPT. Every row re-asserts the theorem bounds and the
// incremental-flow contract (no defensive repairs, no charging-invariant
// trips, at most one cold max-flow per solve); any violation fails the
// experiment rather than printing a bad row.
func E19ApproxGap(cfg Config) (*Table, error) {
	cells := e19Grid(cfg.Quick)
	tab := &Table{
		ID:    "E19",
		Title: "Approximation gap across families and horizons (Theorems 1 and 2 at scale)",
		Claim: "rounded <= 2*LP and minimal <= 3*OPT hold at every horizon the LP engine reaches, with incremental (not from-scratch) feasibility flows",
		Columns: []string{"family", "T", "n", "LP", "rounded", "minimal", "OPT",
			"rnd/LP", "min/LP", "min/OPT", "rnd-ms", "min-aug", "flow-checks", "cold"},
	}
	sum := &ApproxSummary{}
	for _, c := range cells {
		in := c.make(cfg.Seed)
		res, err := activetime.RoundLP(in)
		if err == activetime.ErrInfeasible {
			tab.AddRow(c.family, di(c.T), di(len(in.Jobs)), "infeasible",
				"-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("%s T=%d: RoundLP: %w", c.family, c.T, err)
		}
		if verr := core.VerifyActive(in, res.Schedule); verr != nil {
			return nil, fmt.Errorf("%s T=%d: rounded schedule invalid: %v", c.family, c.T, verr)
		}
		rndLP := float64(res.Opened) / res.LPValue
		if float64(res.Opened) > 2*res.LPValue+1e-6 {
			return nil, fmt.Errorf("%s T=%d: opened %d > 2*LP %.6f", c.family, c.T, res.Opened, res.LPValue)
		}
		if res.InvariantViolated {
			return nil, fmt.Errorf("%s T=%d: 2*LP charging invariant violated", c.family, c.T)
		}
		if res.Repairs != 0 {
			return nil, fmt.Errorf("%s T=%d: rounding needed %d defensive repairs", c.family, c.T, res.Repairs)
		}
		if res.ColdFlows > 1 {
			return nil, fmt.Errorf("%s T=%d: rounding ran %d cold flows (incremental contract broken)", c.family, c.T, res.ColdFlows)
		}
		minres, err := activetime.MinimalFeasibleStats(in, activetime.MinimalOptions{
			Strategy: activetime.CloseRightToLeft,
		})
		if err != nil {
			return nil, fmt.Errorf("%s T=%d: MinimalFeasible: %w", c.family, c.T, err)
		}
		if minres.ColdFlows > 1 {
			return nil, fmt.Errorf("%s T=%d: minimal-feasible ran %d cold flows (incremental contract broken)", c.family, c.T, minres.ColdFlows)
		}
		minCost := float64(minres.Schedule.Cost())
		minLP := minCost / res.LPValue
		optCell, minOPT := "-", "-"
		var opt float64
		haveOPT := false
		if c.unitExact {
			ex, exErr := activetime.SolveUnitExact(in)
			if exErr != nil {
				return nil, fmt.Errorf("%s T=%d: SolveUnitExact: %w", c.family, c.T, exErr)
			}
			opt, haveOPT = float64(ex.Cost()), true
		} else if c.T <= exactHorizonCap {
			ex, exErr := activetime.SolveExact(in, activetime.ExactOptions{MaxNodes: 2_000_000})
			switch {
			case errors.Is(exErr, activetime.ErrSearchBudget):
				// OPT unreachable here: report bound-relative ratios only.
			case exErr != nil:
				return nil, fmt.Errorf("%s T=%d: SolveExact: %w", c.family, c.T, exErr)
			default:
				opt, haveOPT = float64(ex.Cost()), true
			}
		}
		if haveOPT {
			optCell = d(int64(opt))
			mo := minCost / opt
			ro := float64(res.Opened) / opt
			minOPT = f3(mo)
			if mo > 3+1e-9 {
				return nil, fmt.Errorf("%s T=%d: minimal %d > 3*OPT %d", c.family, c.T, int(minCost), int(opt))
			}
			sum.MaxMinimalOverOPT = math.Max(sum.MaxMinimalOverOPT, mo)
			sum.MaxRoundedOverOPT = math.Max(sum.MaxRoundedOverOPT, ro)
		}
		sum.MaxRoundedOverLP = math.Max(sum.MaxRoundedOverLP, rndLP)
		sum.MaxMinimalOverLP = math.Max(sum.MaxMinimalOverLP, minLP)
		sum.Repairs += res.Repairs
		if cf := res.ColdFlows; cf > sum.ColdFlows {
			sum.ColdFlows = cf
		}
		if cf := minres.ColdFlows; cf > sum.ColdFlows {
			sum.ColdFlows = cf
		}
		sum.DroppedMass = math.Max(sum.DroppedMass, res.DroppedMass)
		sum.Cells++
		tab.AddRow(c.family, di(c.T), di(len(in.Jobs)), f3(res.LPValue),
			di(res.Opened), d(int64(minCost)), optCell,
			f3(rndLP), f3(minLP), minOPT,
			f2(res.SweepMillis+res.ShiftMillis+res.RepairMillis+res.AssignMillis+res.LPMillis),
			di(minres.FlowAugments), di(res.FlowChecks), di(res.ColdFlows+minres.ColdFlows))
	}
	tab.Approx = sum
	tab.Notes = append(tab.Notes,
		"rnd-ms includes the LP solve; min-aug is MinimalFeasible's Dinic continuation count (deterministic, unlike wall time)",
		"OPT: branch and bound at T <= 32, polynomial unit-job exact solver at every T for the unit family",
		"every row asserts rounded <= 2*LP, Repairs == 0, InvariantViolated == false, minimal <= 3*OPT, and at most one cold flow per solve",
		"cold = from-zero max-flow solves across the rounding sweep and the minimal-feasible closing loop (flow-carrying contract)")
	return tab, nil
}
