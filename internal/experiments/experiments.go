// Package experiments regenerates every figure- and theorem-level claim of
// the paper as a measurable experiment (E1-E16; see DESIGN.md section 4 for
// the full index). Each experiment returns a Table whose rows are measured
// with the repository's own solvers and verifiers — gadget claims are
// checked by constructing and verifying schedules, never by quoting
// formulas alone. cmd/paperbench renders all tables; EXPERIMENTS.md records
// a reference run.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being measured
	Columns []string
	Rows    [][]string
	Notes   []string
	// Kernel, when set, summarizes the simplex engine's triangular-solve
	// kernel activity on the experiment's headline run; paperbench exports
	// it into the machine-readable bench records so the benchmark
	// trajectory can gate on kernel behavior, not just wall time.
	Kernel *KernelSummary
	// Approx, when set, digests the run's worst-case approximation ratios
	// and incremental-flow counters (E19); paperbench exports it alongside
	// Kernel and gates the committed trajectory on the theorem bounds.
	Approx *ApproxSummary
	// Delta, when set, digests the run's live-session delta-resolve
	// counters (E20); paperbench exports it and gates the trajectory on
	// delta-vs-cold equivalence, zero warm-start fallbacks, and the
	// headline arrival pivot ratio.
	Delta *DeltaSummary
}

// KernelSummary is the deterministic kernel-counter digest of one solve:
// everything here reproduces exactly for a pinned instance, which is what
// makes it gateable where milliseconds are not.
type KernelSummary struct {
	HyperShare  float64 `json:"hyperShare"`  // fraction of FTRAN/BTRAN solved hypersparse
	FtranAvgNNZ float64 `json:"ftranAvgNnz"` // mean result nonzeros per hypersparse FTRAN
	BtranAvgNNZ float64 `json:"btranAvgNnz"` // mean result nonzeros per hypersparse BTRAN
	RowRefills  int     `json:"rowRefills"`  // dual working-set refill sweeps
	Pivots      int     `json:"pivots"`      // simplex pivots on the headline run
	// Factorization-update digest of the headline run (the Forrest–Tomlin
	// default): in-place updates applied, mean spike nonzeros absorbed per
	// update, stability-forced refactorizations, peak updated-U fill as a
	// percentage of the refactorization-time factors, and eta-file entries
	// traversed — structurally zero under FT, the whole point of the
	// representation, and gated as such by the trajectory merge.
	FTUpdates       int     `json:"ftUpdates"`
	FTSpikeAvgNNZ   float64 `json:"ftSpikeAvgNnz"`
	ForcedRefactors int     `json:"forcedRefactors"`
	UFillMaxPct     int     `json:"uFillMaxPct"`
	EtaDotOps       int     `json:"etaDotOps"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "paper claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Config scales the experiments.
type Config struct {
	// Quick shrinks sweeps for fast test runs.
	Quick bool
	// Seed feeds the random workloads.
	Seed int64
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "Fig3: minimal feasible vs optimal (Theorem 1)", E1MinimalFeasibleFig3},
		{"E2", "LP rounding on random instances (Theorem 2)", E2LPRounding},
		{"E3", "LP integrality gap (Section 3.5)", E3IntegralityGap},
		{"E4", "Fig1: busy-time packing of seven jobs", E4Fig1},
		{"E5", "Fig6/7: GreedyTracking tightness (Theorem 5)", E5Fig6GreedyTracking},
		{"E6", "Fig8: interval 2-approximation tightness (Theorem 3/8)", E6Fig8PairCover},
		{"E7", "Fig9: demand profile of the DP output (Lemma 7)", E7Fig9DemandProfile},
		{"E8", "Fig10-12: flexible extension factor 4 (Theorem 10)", E8Fig10Flexible},
		{"E9", "Preemptive unbounded greedy is exact (Theorem 6)", E9PreemptiveUnbounded},
		{"E10", "Preemptive bounded 2-approximation (Theorem 7)", E10PreemptiveBounded},
		{"E11", "Interval-job algorithm shootout", E11IntervalShootout},
		{"E12", "Unit jobs: exact vs approximations", E12UnitActive},
		{"E13", "Flexible busy-time pipeline", E13FlexiblePipeline},
		{"E14", "Special interval classes (footnote 1)", E14SpecialCases},
		{"E15", "Online busy time (Section 1.3 related work)", E15Online},
		{"E16", "Wall-clock scaling of the polynomial algorithms", E16Scaling},
		{"E17", "LP1 pipeline at large horizons (batched vs single-cut)", E17LPScaling},
		{"E18", "Pivot-cost scaling of the LU/eta simplex core", E18PivotCost},
		{"E19", "Approximation gap across families and horizons", E19ApproxGap},
		{"E20", "Live instance deltas vs cold re-solves", E20DeltaResolve},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// RunEach executes the given experiments in order, rendering each table to
// w. If observe is non-nil it receives every runner with its finished table
// and wall time (cmd/paperbench uses it for the -bench-json trajectory).
func RunEach(cfg Config, w io.Writer, runners []Runner, observe func(Runner, *Table, time.Duration)) error {
	for _, r := range runners {
		start := time.Now()
		tab, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		if observe != nil {
			observe(r, tab, time.Since(start))
		}
		tab.Render(w)
	}
	return nil
}

// RunAll executes every experiment and renders it to w.
func RunAll(cfg Config, w io.Writer) error {
	return RunEach(cfg, w, All(), nil)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }
func di(v int) string     { return fmt.Sprintf("%d", v) }
func meanMax(xs []float64) (mean, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
		if x > max {
			max = x
		}
	}
	return mean / float64(len(xs)), max
}
