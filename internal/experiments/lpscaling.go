package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/activetime"
	"repro/internal/gen"
)

// E17LPScaling measures the LP1 pipeline at large horizons on the
// laminar/nested scaling family (internal/gen.LargeHorizon): batched cut
// separation (one max-flow probe harvesting the global minimum cut plus
// per-deficient-job violators) against the single-cut-per-round reference,
// both on the factorized revised-simplex master. The two pipelines must
// agree on the LP optimum — the run fails if they diverge beyond 1e-6 — so
// the table is simultaneously a speed record and a cross-solver check. The
// PR 1 dense pipeline has no column here because it cannot run these sizes:
// it mis-reported feasible masters as infeasible past T ≈ 1000.
//
// At the smallest size the table also reports the exact rational master's
// pivots both ways — warm re-solves from the previous round's rational
// dictionary (lp.Problem.ResolveExactFrom) against the cold-per-round
// reference — quantifying what the warm start saves where the exact engine
// is affordable at all.
func E17LPScaling(cfg Config) (*Table, error) {
	sizes := []int{128, 256, 512, 1024, 2048}
	exactUpTo := 128 // dense rational tableaus; keep the comparison tiny
	if cfg.Quick {
		sizes = []int{128, 256}
	}
	tab := &Table{
		ID:    "E17",
		Title: "LP1 pipeline at large horizons: batched vs single-cut separation",
		Claim: "batched separation needs strictly fewer rounds and scales past T ~ 1000 where the dense pipeline failed",
		Columns: []string{"T", "n", "LP", "batch-ms", "batch-rounds", "batch-cuts",
			"batch-pivots", "single-ms", "single-rounds", "exact-warm-piv", "exact-cold-piv"},
	}
	for _, T := range sizes {
		in := gen.LargeHorizon(gen.RandomConfig{
			N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: cfg.Seed,
		})
		start := time.Now()
		batched, err := activetime.SolveLP(in)
		if err != nil {
			return nil, fmt.Errorf("T=%d batched: %w", T, err)
		}
		batchMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		single, err := activetime.SolveLPSingleCut(in)
		if err != nil {
			return nil, fmt.Errorf("T=%d single-cut: %w", T, err)
		}
		singleMS := float64(time.Since(start).Microseconds()) / 1000
		if math.Abs(batched.Objective-single.Objective) > 1e-6 {
			return nil, fmt.Errorf("T=%d: batched LP %.9f != single-cut LP %.9f",
				T, batched.Objective, single.Objective)
		}
		warmPiv, coldPiv := "-", "-"
		if T <= exactUpTo {
			exWarm, err := activetime.SolveLPExact(in)
			if err != nil {
				return nil, fmt.Errorf("T=%d exact warm: %w", T, err)
			}
			exCold, err := activetime.SolveLPExactCold(in)
			if err != nil {
				return nil, fmt.Errorf("T=%d exact cold: %w", T, err)
			}
			wantLP, _ := exWarm.Objective.Float64()
			if math.Abs(batched.Objective-wantLP) > 1e-6 {
				return nil, fmt.Errorf("T=%d: float LP %.9f != exact LP %.9f", T, batched.Objective, wantLP)
			}
			warmPiv, coldPiv = di(exWarm.Pivots), di(exCold.Pivots)
		}
		tab.AddRow(di(T), di(len(in.Jobs)), f3(batched.Objective),
			fmt.Sprintf("%.1f", batchMS), di(batched.Rounds), di(batched.Cuts),
			di(batched.Pivots), fmt.Sprintf("%.1f", singleMS), di(single.Rounds),
			warmPiv, coldPiv)
	}
	tab.Notes = append(tab.Notes,
		"family: laminar binary containers + nested window chains, n = T/8 jobs, g = 4",
		"identical objectives are asserted (1e-6), so the table doubles as a metamorphic check",
		"exact-warm/cold-piv: rational master pivots with and without the warm-started dictionary (T <= 128 only)",
		"E18 carries the sweep to T = 4096 with the effort anatomy of the factorized core")
	return tab, nil
}
