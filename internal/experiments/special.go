package experiments

import (
	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/gen"
)

// E14SpecialCases measures the footnote-1 special cases: the release-order
// greedy on proper instances, the longest-first greedy on cliques, and the
// general algorithms on laminar instances, each against exact optima.
func E14SpecialCases(cfg Config) (*Table, error) {
	trials := 12
	if cfg.Quick {
		trials = 4
	}
	tab := &Table{
		ID:    "E14",
		Title: "Special interval classes (footnote 1): dedicated greedies vs general algorithms",
		Claim: "release-order greedy is 2-approx on proper instances; longest-first is 2-approx on cliques",
		Columns: []string{"class", "trials", "special mean", "special max",
			"GT mean", "PairCover mean", "FirstFit mean"},
	}
	type class struct {
		name    string
		make    func(seed int64) *core.Instance
		special busytime.IntervalAlgorithm
	}
	classes := []class{
		{
			name: "proper",
			make: func(seed int64) *core.Instance {
				return gen.RandomProper(gen.RandomConfig{N: 8, MaxLen: 6, G: 2, Seed: seed})
			},
			special: busytime.GreedyByRelease,
		},
		{
			name: "clique",
			make: func(seed int64) *core.Instance {
				return gen.RandomClique(gen.RandomConfig{N: 8, Horizon: 30, MaxLen: 8, G: 3, Seed: seed})
			},
			special: busytime.CliqueGreedy,
		},
		{
			name: "laminar",
			make: func(seed int64) *core.Instance {
				return gen.RandomLaminar(gen.RandomConfig{N: 8, Horizon: 24, G: 2, Seed: seed})
			},
			special: busytime.GreedyByRelease,
		},
	}
	for _, c := range classes {
		var spR, gtR, pcR, ffR []float64
		for trial := 0; trial < trials; trial++ {
			in := c.make(cfg.Seed + int64(trial*7+len(c.name)))
			exact, err := busytime.SolveExactInterval(in, busytime.ExactOptions{})
			if err != nil {
				return nil, err
			}
			opt, err := busyCost(in, exact)
			if err != nil {
				return nil, err
			}
			measure := func(algo busytime.IntervalAlgorithm) (float64, error) {
				s, err := algo(in)
				if err != nil {
					return 0, err
				}
				cost, err := busyCost(in, s)
				if err != nil {
					return 0, err
				}
				return float64(cost) / float64(opt), nil
			}
			sp, err := measure(c.special)
			if err != nil {
				return nil, err
			}
			gt, err := measure(func(i *core.Instance) (*core.BusySchedule, error) {
				return busytime.GreedyTracking(i, busytime.GTOptions{})
			})
			if err != nil {
				return nil, err
			}
			pc, err := measure(busytime.PairCover)
			if err != nil {
				return nil, err
			}
			ff, err := measure(busytime.FirstFit)
			if err != nil {
				return nil, err
			}
			spR = append(spR, sp)
			gtR = append(gtR, gt)
			pcR = append(pcR, pc)
			ffR = append(ffR, ff)
		}
		spMean, spMax := meanMax(spR)
		gtMean, _ := meanMax(gtR)
		pcMean, _ := meanMax(pcR)
		ffMean, _ := meanMax(ffR)
		tab.AddRow(c.name, di(trials), f3(spMean), f3(spMax),
			f3(gtMean), f3(pcMean), f3(ffMean))
	}
	tab.Notes = append(tab.Notes,
		"special = GreedyByRelease on proper/laminar, CliqueGreedy on cliques; ratios vs exact OPT")
	return tab, nil
}
