package experiments

import (
	"repro/internal/busytime"
	"repro/internal/gen"
)

// E15Online measures the online busy-time policies (jobs committed to
// machines in arrival order) against the offline optimum — the model of
// Shalom et al. that Section 1.3 of the paper surveys. The paper's cited
// lower bound of g for deterministic algorithms needs an adaptive
// adversary, so this experiment reports measured competitive ratios on
// fixed random workloads; online algorithms track the offline optimum far
// more closely there.
func E15Online(cfg Config) (*Table, error) {
	type sweep struct{ n, T, g int }
	sweeps := []sweep{{8, 14, 2}, {10, 16, 3}, {12, 20, 3}, {14, 22, 4}}
	trials := 10
	if cfg.Quick {
		sweeps = sweeps[:2]
		trials = 4
	}
	tab := &Table{
		ID:    "E15",
		Title: "Online busy time: arrival-order policies vs offline optimum",
		Claim: "deterministic online is Ω(g)-competitive in the adaptive worst case (Shalom et al., Section 1.3); measured ratios on oblivious workloads stay small",
		Columns: []string{"n", "T", "g", "trials", "onlineFF mean", "onlineFF max",
			"onlineBF mean", "onlineBF max", "offline GT mean"},
	}
	for _, s := range sweeps {
		var ffR, bfR, gtR []float64
		for trial := 0; trial < trials; trial++ {
			in := gen.RandomInterval(gen.RandomConfig{
				N: s.n, Horizon: s.T, MaxLen: 6, G: s.g,
				Seed: cfg.Seed + int64(trial*17+s.n),
			})
			exact, err := busytime.SolveExactInterval(in, busytime.ExactOptions{})
			if err != nil {
				return nil, err
			}
			opt, err := busyCost(in, exact)
			if err != nil {
				return nil, err
			}
			ff, err := busytime.Online(in, busytime.OnlineFirstFit{})
			if err != nil {
				return nil, err
			}
			bf, err := busytime.Online(in, busytime.OnlineBestFit{})
			if err != nil {
				return nil, err
			}
			gt, err := busytime.GreedyTracking(in, busytime.GTOptions{})
			if err != nil {
				return nil, err
			}
			ffc, err := busyCost(in, ff)
			if err != nil {
				return nil, err
			}
			bfc, err := busyCost(in, bf)
			if err != nil {
				return nil, err
			}
			gtc, err := busyCost(in, gt)
			if err != nil {
				return nil, err
			}
			ffR = append(ffR, float64(ffc)/float64(opt))
			bfR = append(bfR, float64(bfc)/float64(opt))
			gtR = append(gtR, float64(gtc)/float64(opt))
		}
		ffMean, ffMax := meanMax(ffR)
		bfMean, bfMax := meanMax(bfR)
		gtMean, _ := meanMax(gtR)
		tab.AddRow(di(s.n), di(s.T), di(s.g), di(trials),
			f3(ffMean), f3(ffMax), f3(bfMean), f3(bfMax), f3(gtMean))
	}
	tab.Notes = append(tab.Notes,
		"onlineFF/BF commit each job at its release; offline GT sees the whole instance")
	return tab, nil
}
