package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/activetime"
	"repro/internal/gen"
)

// E18PivotCost is the pivot-cost scaling study of the LU/eta-factorized
// simplex core: the full LP1 pipeline on the laminar/nested scaling family,
// default policy (adaptive batch cap + cut-registry purging) against the
// fixed-32-cap never-purging ablation. For each size it reports the
// effort anatomy — rounds, cuts, purged rows, simplex pivots,
// refactorizations and the realized per-pivot cost — that the dense-inverse
// engine's O(m²)-per-pivot wall used to hide: PR 2's engine took ~90 s at
// T = 4096 on this family; the factorized core solves it in seconds. The
// two pipelines must agree on the LP optimum to 1e-6, so the table is also
// a metamorphic check of cut purging at scale.
func E18PivotCost(cfg Config) (*Table, error) {
	sizes := []int{512, 1024, 2048, 4096}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	tab := &Table{
		ID:    "E18",
		Title: "Pivot-cost scaling of the LU/eta simplex core (default vs fixed-batch ablation)",
		Claim: "per-pivot cost tracks factor sparsity, not m²; purging keeps the master near its binding working set",
		Columns: []string{"T", "n", "LP", "ms", "rounds", "cuts", "purged", "pivots",
			"refactors", "us/pivot", "fixed32-ms", "fixed32-pivots"},
	}
	for _, T := range sizes {
		in := gen.LargeHorizon(gen.RandomConfig{
			N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: cfg.Seed,
		})
		start := time.Now()
		def, err := activetime.SolveLP(in)
		if err != nil {
			return nil, fmt.Errorf("T=%d default: %w", T, err)
		}
		defMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		fixed, err := activetime.SolveLPFixedBatch(in, 32)
		if err != nil {
			return nil, fmt.Errorf("T=%d fixed32: %w", T, err)
		}
		fixedMS := float64(time.Since(start).Microseconds()) / 1000
		if math.Abs(def.Objective-fixed.Objective) > 1e-6 {
			return nil, fmt.Errorf("T=%d: purged LP %.9f != fixed-batch LP %.9f",
				T, def.Objective, fixed.Objective)
		}
		perPivot := 0.0
		if def.Pivots > 0 {
			perPivot = defMS * 1000 / float64(def.Pivots)
		}
		tab.AddRow(di(T), di(len(in.Jobs)), f3(def.Objective),
			fmt.Sprintf("%.1f", defMS), di(def.Rounds), di(def.Cuts), di(def.Purged),
			di(def.Pivots), di(def.Refactors), fmt.Sprintf("%.1f", perPivot),
			fmt.Sprintf("%.1f", fixedMS), di(fixed.Pivots))
	}
	tab.Notes = append(tab.Notes,
		"family: laminar binary containers + nested window chains, n = T/8 jobs, g = 4",
		"identical objectives asserted (1e-6): the table doubles as a purge-at-scale metamorphic check",
		"PR 2's dense-inverse engine needed ~90 s for T = 4096 on this family; see BenchmarkSolveLPLargeHorizon for the locked record")
	return tab, nil
}
