package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/activetime"
	"repro/internal/gen"
	"repro/internal/lp"
)

// E18PivotCost is the pivot-cost scaling study of the factorized simplex
// core, its pricing rules, and its basis-update representation: the full
// LP1 pipeline on the laminar/nested scaling family under dual
// steepest-edge pricing (the default), the devex fallback rule, and the
// Dantzig baseline (most-infeasible dual rows, full primal scans,
// two-phase cold starts — the PR 4 behavior), plus the fixed-32-cap
// never-purging ablation and the product-form-eta factorization ablation
// (the PR 6 representation the Forrest–Tomlin update replaced). For each
// size it reports the effort anatomy — rounds, cuts, purged rows, simplex
// pivots, refactorizations, the realized per-pivot cost — the FT update
// digest of the default run (in-place updates, mean spike fill,
// stability-forced refactorizations, peak updated-U fill), and the
// per-rule pivot/time columns that back the ROADMAP's pricing and
// factorization claims (the scaling suite separately locks the ≥2× pivot
// win at T = 4096 and the FT endurance ceilings at 16384/32768). All
// pipelines must agree on the LP optimum to 1e-6, so the table is also a
// metamorphic check of pricing, purging, and factorization at scale.
func E18PivotCost(cfg Config) (*Table, error) {
	sizes := []int{512, 1024, 2048, 4096}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	tab := &Table{
		ID:    "E18",
		Title: "Pivot-cost scaling of the LU/FT simplex core (steepest-edge vs devex vs Dantzig, FT vs eta-file, default vs fixed-batch)",
		Claim: "steepest-edge pricing takes fewer, better pivots than Dantzig at every horizon; FT updates hold per-pivot cost flat where the eta-file's grows with its length",
		Columns: []string{"T", "n", "LP", "se-ms", "rounds", "cuts", "purged", "se-pivots",
			"refactors", "us/pivot", "hyp%", "ftran-nnz", "btran-nnz", "refills",
			"ft-upd", "spike-nnz", "forced", "ufill%",
			"dv-ms", "dv-pivots", "dz-ms", "dz-pivots",
			"fixed32-ms", "fixed32-pivots", "pfi-ms", "pfi-pivots", "pfi-us/pivot"},
	}
	for _, T := range sizes {
		in := gen.LargeHorizon(gen.RandomConfig{
			N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: cfg.Seed,
		})
		start := time.Now()
		def, err := activetime.SolveLP(in)
		if err != nil {
			return nil, fmt.Errorf("T=%d steepest-edge: %w", T, err)
		}
		defMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		devex, err := activetime.SolveLPPricing(in, lp.PricingDevex)
		if err != nil {
			return nil, fmt.Errorf("T=%d devex: %w", T, err)
		}
		devexMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		dantzig, err := activetime.SolveLPPricing(in, lp.PricingDantzig)
		if err != nil {
			return nil, fmt.Errorf("T=%d dantzig: %w", T, err)
		}
		dantzigMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		fixed, err := activetime.SolveLPFixedBatch(in, 32)
		if err != nil {
			return nil, fmt.Errorf("T=%d fixed32: %w", T, err)
		}
		fixedMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		pfi, err := activetime.SolveLPFactorization(in, lp.FactorizationPFI)
		if err != nil {
			return nil, fmt.Errorf("T=%d pfi: %w", T, err)
		}
		pfiMS := float64(time.Since(start).Microseconds()) / 1000
		if def.Kernel.EtaDotOps != 0 {
			return nil, fmt.Errorf("T=%d: FT default traversed %d eta-file entries; the representation exists to make this zero", T, def.Kernel.EtaDotOps)
		}
		for _, alt := range []struct {
			name string
			obj  float64
		}{{"devex", devex.Objective}, {"dantzig", dantzig.Objective}, {"fixed32", fixed.Objective}, {"pfi", pfi.Objective}} {
			if math.Abs(def.Objective-alt.obj) > 1e-6 {
				return nil, fmt.Errorf("T=%d: steepest-edge LP %.9f != %s LP %.9f",
					T, def.Objective, alt.name, alt.obj)
			}
		}
		perPivot := 0.0
		if def.Pivots > 0 {
			perPivot = defMS * 1000 / float64(def.Pivots)
		}
		pfiPerPivot := 0.0
		if pfi.Pivots > 0 {
			pfiPerPivot = pfiMS * 1000 / float64(pfi.Pivots)
		}
		spikeAvg := 0.0
		if def.Kernel.FTUpdates > 0 {
			spikeAvg = float64(def.Kernel.FTSpikeNNZ) / float64(def.Kernel.FTUpdates)
		}
		tab.AddRow(di(T), di(len(in.Jobs)), f3(def.Objective),
			fmt.Sprintf("%.1f", defMS), di(def.Rounds), di(def.Cuts), di(def.Purged),
			di(def.Pivots), di(def.Refactors), fmt.Sprintf("%.1f", perPivot),
			fmt.Sprintf("%.2f", def.Kernel.HyperShare()),
			fmt.Sprintf("%.1f", def.Kernel.FtranAvgNNZ()),
			fmt.Sprintf("%.1f", def.Kernel.BtranAvgNNZ()),
			di(def.Kernel.RowRefills),
			di(def.Kernel.FTUpdates), fmt.Sprintf("%.1f", spikeAvg),
			di(def.Kernel.ForcedRefactors), di(def.Kernel.UFillMaxPct),
			fmt.Sprintf("%.1f", devexMS), di(devex.Pivots),
			fmt.Sprintf("%.1f", dantzigMS), di(dantzig.Pivots),
			fmt.Sprintf("%.1f", fixedMS), di(fixed.Pivots),
			fmt.Sprintf("%.1f", pfiMS), di(pfi.Pivots), fmt.Sprintf("%.1f", pfiPerPivot))
		// The largest size is the headline run whose kernel digest the
		// bench trajectory gates on.
		tab.Kernel = &KernelSummary{
			HyperShare:      def.Kernel.HyperShare(),
			FtranAvgNNZ:     def.Kernel.FtranAvgNNZ(),
			BtranAvgNNZ:     def.Kernel.BtranAvgNNZ(),
			RowRefills:      def.Kernel.RowRefills,
			Pivots:          def.Pivots,
			FTUpdates:       def.Kernel.FTUpdates,
			FTSpikeAvgNNZ:   spikeAvg,
			ForcedRefactors: def.Kernel.ForcedRefactors,
			UFillMaxPct:     def.Kernel.UFillMaxPct,
			EtaDotOps:       def.Kernel.EtaDotOps,
		}
	}
	tab.Notes = append(tab.Notes,
		"family: laminar binary containers + nested window chains, n = T/8 jobs, g = 4",
		"hyp%/ftran-nnz/btran-nnz/refills: hypersparse kernel share, mean result nonzeros per hypersparse FTRAN/BTRAN, dual working-set refill sweeps (steepest-edge run)",
		"ft-upd/spike-nnz/forced/ufill%: Forrest–Tomlin in-place updates, mean spike nonzeros absorbed per update, stability-forced refactorizations, peak updated-U fill vs the refactorization-time factors (default run; the FT path traverses zero eta-file entries by construction)",
		"identical objectives asserted (1e-6) across all five pipelines: the table doubles as a pricing/purging/factorization metamorphic check",
		"se/dv/dz: steepest-edge (default), devex, Dantzig-baseline pricing; TestPricingPivotReduction locks the ≥2× pivot win at T = 4096",
		"pfi: the product-form eta-file ablation (the PR 6 representation) under default pricing; its us/pivot grows with the eta file where the FT default's stays flat",
		"PR 2's dense-inverse engine needed ~90 s for T = 4096 on this family; see BenchmarkSolveLPLargeHorizon for the locked record")
	return tab, nil
}
