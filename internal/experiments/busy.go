package experiments

import (
	"fmt"

	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/gen"
)

func busyCost(in *core.Instance, s *core.BusySchedule) (core.Time, error) {
	if err := core.VerifyBusy(in, s); err != nil {
		return 0, err
	}
	return s.Cost(in)
}

// E4Fig1 runs every interval algorithm on the Figure 1 instance.
func E4Fig1(cfg Config) (*Table, error) {
	in, opt := gen.Fig1()
	tab := &Table{
		ID:      "E4",
		Title:   "Figure 1: seven interval jobs, g=3",
		Claim:   "optimal packing uses two machines (Figure 1B)",
		Columns: []string{"algorithm", "busy time", "machines", "vs OPT"},
	}
	optCost, err := busyCost(in, opt)
	if err != nil {
		return nil, err
	}
	exact, err := busytime.SolveExactInterval(in, busytime.ExactOptions{})
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name string
		s    *core.BusySchedule
	}{
		{"figure 1(B) packing", opt},
		{"exact branch&bound", exact},
	}
	gt, err := busytime.GreedyTracking(in, busytime.GTOptions{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, struct {
		name string
		s    *core.BusySchedule
	}{"GreedyTracking (3-approx)", gt})
	ff, err := busytime.FirstFit(in)
	if err != nil {
		return nil, err
	}
	rows = append(rows, struct {
		name string
		s    *core.BusySchedule
	}{"FirstFit (4-approx)", ff})
	pc, err := busytime.PairCover(in)
	if err != nil {
		return nil, err
	}
	rows = append(rows, struct {
		name string
		s    *core.BusySchedule
	}{"PairCover (2-approx)", pc})
	for _, r := range rows {
		c, err := busyCost(in, r.s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		tab.AddRow(r.name, d(int64(c)), di(len(r.s.Bundles)), f3(float64(c)/float64(optCost)))
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("demand-profile lower bound = %d = optimal cost, certifying Figure 1(B)",
			busytime.DemandProfileBound(in)))
	return tab, nil
}

// E5Fig6GreedyTracking sweeps the Figure 6 gadget: GreedyTracking's measured
// cost on the adversarial conversion, the constructed worst-case run, and
// the optimum.
func E5Fig6GreedyTracking(cfg Config) (*Table, error) {
	gs := []int{2, 3, 6, 12, 24}
	if cfg.Quick {
		gs = []int{2, 3, 6}
	}
	unit, eps := core.Time(1000), core.Time(20)
	tab := &Table{
		ID:    "E5",
		Title: "GreedyTracking on the Figure 6/7 gadget",
		Claim: "worst-case tie-breaking reaches (6-o(eps))g vs OPT 2g+2-eps: ratio -> 3 (Theorem 5 tight)",
		Columns: []string{"g", "OPT", "GT measured", "meas ratio",
			"GT adversarial", "adv ratio", "paper limit"},
	}
	for _, g := range gs {
		gd, err := gen.Fig6(g, unit, eps)
		if err != nil {
			return nil, err
		}
		optCost, err := busyCost(gd.Flexible, gd.Opt)
		if err != nil {
			return nil, err
		}
		meas, err := busytime.GreedyTracking(gd.Converted, busytime.GTOptions{})
		if err != nil {
			return nil, err
		}
		measCost, err := busyCost(gd.Flexible, meas)
		if err != nil {
			return nil, err
		}
		advCost, err := busyCost(gd.Flexible, gd.AdversarialGT)
		if err != nil {
			return nil, err
		}
		tab.AddRow(di(g), d(int64(optCost)), d(int64(measCost)),
			f3(float64(measCost)/float64(optCost)),
			d(int64(advCost)), f3(float64(advCost)/float64(optCost)),
			f3(6*float64(g)/(2*float64(g)+2)))
	}
	tab.Notes = append(tab.Notes,
		"GT measured: our deterministic tie-breaking on the paper's adversarial conversion (tends to the 2x lower-bound family)",
		"GT adversarial: an explicitly constructed legitimate GreedyTracking run with worst-case ties, verified feasible")
	return tab, nil
}

// E6Fig8PairCover sweeps the Figure 8 gadget for the interval-job
// 2-approximation.
func E6Fig8PairCover(cfg Config) (*Table, error) {
	type sweep struct{ eps, epsp core.Time }
	sweeps := []sweep{{400, 150}, {200, 80}, {100, 40}, {50, 20}, {20, 8}}
	if cfg.Quick {
		sweeps = sweeps[:3]
	}
	unit := core.Time(1000)
	tab := &Table{
		ID:    "E6",
		Title: "Interval 2-approximation on the Figure 8 gadget (g=2)",
		Claim: "a possible algorithm output costs 2+eps vs OPT 1+eps: ratio -> 2 (Theorem 8 tight)",
		Columns: []string{"eps/unit", "OPT", "PairCover", "pc ratio",
			"paper bad", "bad ratio"},
	}
	for _, s := range sweeps {
		gd, err := gen.Fig8(unit, s.eps, s.epsp)
		if err != nil {
			return nil, err
		}
		optCost, err := busyCost(gd.Instance, gd.Opt)
		if err != nil {
			return nil, err
		}
		pc, err := busytime.PairCover(gd.Instance)
		if err != nil {
			return nil, err
		}
		pcCost, err := busyCost(gd.Instance, pc)
		if err != nil {
			return nil, err
		}
		badCost, err := busyCost(gd.Instance, gd.Bad)
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.3f", float64(s.eps)/float64(unit)),
			d(int64(optCost)), d(int64(pcCost)), f3(float64(pcCost)/float64(optCost)),
			d(int64(badCost)), f3(float64(badCost)/float64(optCost)))
	}
	tab.Notes = append(tab.Notes,
		"paper bad = the Figure 8(B) output, constructed and verified; our PairCover's chain order happens to avoid it")
	return tab, nil
}

// E7Fig9DemandProfile sweeps the Figure 9 gadget: the demand profile of the
// span-minimizer's output vs the optimal layout's.
func E7Fig9DemandProfile(cfg Config) (*Table, error) {
	gs := []int{2, 3, 4, 6, 8, 12}
	if cfg.Quick {
		gs = []int{2, 3, 4}
	}
	unit, eps := core.Time(1000), core.Time(5)
	tab := &Table{
		ID:    "E7",
		Title: "Demand profile of the unbounded-g DP output (Figure 9)",
		Claim: "DeP(DP output) <= 2*DeP(optimal layout), tight as eps->0, g->inf (Lemma 7)",
		Columns: []string{"g", "DeP(DP out)", "paper formula", "DeP(opt layout)",
			"ratio", "span(DP)", "span(opt layout)"},
	}
	for _, g := range gs {
		gd, err := gen.Fig9(g, unit, eps)
		if err != nil {
			return nil, err
		}
		dpDeP := busytime.DemandProfileBound(gd.DPOutput)
		optDeP := busytime.DemandProfileBound(gd.OptLayout)
		paper := core.Time(2*g-1)*unit + core.Time(g*(g-1))*eps
		tab.AddRow(di(g), d(int64(dpDeP)), d(int64(paper)), d(int64(optDeP)),
			f3(float64(dpDeP)/float64(optDeP)),
			d(int64(busytime.SpanBound(gd.DPOutput))),
			d(int64(busytime.SpanBound(gd.OptLayout))))
	}
	tab.Notes = append(tab.Notes,
		"the DP output minimizes span (smaller span column) yet its demand profile is ~2x the optimal layout's")
	return tab, nil
}

// E8Fig10Flexible sweeps the Figures 10-12 gadget: the interval
// 2-approximation applied after the adversarial conversion is a
// 4-approximation for flexible jobs, and that is tight.
func E8Fig10Flexible(cfg Config) (*Table, error) {
	gs := []int{2, 3, 4, 6, 8}
	if cfg.Quick {
		gs = []int{2, 3, 4}
	}
	unit, eps, epsp := core.Time(1000), core.Time(40), core.Time(15)
	tab := &Table{
		ID:    "E8",
		Title: "Flexible extension of the 2-approximation (Figures 10-12)",
		Claim: "conversion + 2-approx is 4-approximate and tight (Theorem 10)",
		Columns: []string{"g", "OPT", "PairCover(conv)", "ratio", "conv DeP",
			"DeP/OPT", "4x bound ok"},
	}
	for _, g := range gs {
		gd, err := gen.Fig10(g, unit, eps, epsp)
		if err != nil {
			return nil, err
		}
		optCost, err := busyCost(gd.Flexible, gd.Opt)
		if err != nil {
			return nil, err
		}
		pc, err := busytime.PairCover(gd.Converted)
		if err != nil {
			return nil, err
		}
		pcCost, err := busyCost(gd.Flexible, pc)
		if err != nil {
			return nil, err
		}
		dep := busytime.DemandProfileBound(gd.Converted)
		ok := "yes"
		if pcCost > 4*optCost {
			ok = "VIOLATED"
		}
		tab.AddRow(di(g), d(int64(optCost)), d(int64(pcCost)),
			f3(float64(pcCost)/float64(optCost)),
			d(int64(dep)), f3(float64(dep)/float64(optCost)), ok)
	}
	tab.Notes = append(tab.Notes,
		"DeP/OPT -> 2 shows the conversion alone forfeits a factor 2 (Lemma 7); the 2-approx on top gives <= 4",
		"OPT = constructed packing of Figure 12's good solution, verified feasible")
	return tab, nil
}

// E11IntervalShootout compares all interval algorithms on random workloads.
func E11IntervalShootout(cfg Config) (*Table, error) {
	type sweep struct{ n, T, g int }
	sweeps := []sweep{{8, 14, 2}, {10, 16, 3}, {12, 20, 3}, {14, 24, 4}}
	trials := 10
	if cfg.Quick {
		sweeps = sweeps[:2]
		trials = 4
	}
	tab := &Table{
		ID:    "E11",
		Title: "Interval jobs: FirstFit vs GreedyTracking vs PairCover (ratios vs exact OPT)",
		Claim: "guarantees 4 (FirstFit), 3 (GreedyTracking), 2 (PairCover); measured means are far lower",
		Columns: []string{"n", "T", "g", "trials", "FF mean", "FF max",
			"GT mean", "GT max", "PC mean", "PC max", "DeP/OPT"},
	}
	for _, s := range sweeps {
		var ffR, gtR, pcR, depR []float64
		for trial := 0; trial < trials; trial++ {
			in := gen.RandomInterval(gen.RandomConfig{
				N: s.n, Horizon: s.T, MaxLen: 6, G: s.g,
				Seed: cfg.Seed + int64(trial*31+s.n),
			})
			exact, err := busytime.SolveExactInterval(in, busytime.ExactOptions{})
			if err != nil {
				return nil, err
			}
			opt, err := busyCost(in, exact)
			if err != nil {
				return nil, err
			}
			ff, err := busytime.FirstFit(in)
			if err != nil {
				return nil, err
			}
			gt, err := busytime.GreedyTracking(in, busytime.GTOptions{})
			if err != nil {
				return nil, err
			}
			pc, err := busytime.PairCover(in)
			if err != nil {
				return nil, err
			}
			ffc, err := busyCost(in, ff)
			if err != nil {
				return nil, err
			}
			gtc, err := busyCost(in, gt)
			if err != nil {
				return nil, err
			}
			pcc, err := busyCost(in, pc)
			if err != nil {
				return nil, err
			}
			ffR = append(ffR, float64(ffc)/float64(opt))
			gtR = append(gtR, float64(gtc)/float64(opt))
			pcR = append(pcR, float64(pcc)/float64(opt))
			depR = append(depR, float64(busytime.DemandProfileBound(in))/float64(opt))
		}
		ffMean, ffMax := meanMax(ffR)
		gtMean, gtMax := meanMax(gtR)
		pcMean, pcMax := meanMax(pcR)
		depMean, _ := meanMax(depR)
		tab.AddRow(di(s.n), di(s.T), di(s.g), di(trials),
			f3(ffMean), f3(ffMax), f3(gtMean), f3(gtMax), f3(pcMean), f3(pcMax), f3(depMean))
	}
	return tab, nil
}

// E13FlexiblePipeline measures the flexible-job pipeline (span minimizer +
// interval algorithm) against lower bounds and small-instance exact optima.
func E13FlexiblePipeline(cfg Config) (*Table, error) {
	type sweep struct{ n, T, g int }
	sweeps := []sweep{{6, 12, 2}, {7, 14, 3}, {8, 16, 3}}
	trials := 8
	if cfg.Quick {
		sweeps = sweeps[:2]
		trials = 3
	}
	tab := &Table{
		ID:    "E13",
		Title: "Flexible busy time: conversion + interval algorithms vs exact",
		Claim: "span-minimizing conversion + GreedyTracking is the paper's 3-approximation (Section 4.3)",
		Columns: []string{"n", "T", "g", "trials", "GT mean", "GT max",
			"FF mean", "PC mean", "heur span/exact"},
	}
	for _, s := range sweeps {
		var gtR, ffR, pcR, spanR []float64
		for trial := 0; trial < trials; trial++ {
			in := gen.RandomFlexible(gen.RandomConfig{
				N: s.n, Horizon: s.T, MaxLen: 4, Slack: 3, G: s.g,
				Seed: cfg.Seed + int64(trial*13+s.n),
			})
			exact, err := busytime.SolveExactFlexible(in, busytime.ExactOptions{})
			if err != nil {
				return nil, err
			}
			opt, err := busyCost(in, exact)
			if err != nil {
				return nil, err
			}
			_, heurSpan, err := busytime.HeuristicSpan{}.MinimizeSpan(in)
			if err != nil {
				return nil, err
			}
			_, exactSpan, err := busytime.ExactSpan{}.MinimizeSpan(in)
			if err != nil {
				return nil, err
			}
			spanR = append(spanR, float64(heurSpan)/float64(exactSpan))
			run := func(algo busytime.IntervalAlgorithm) (float64, error) {
				s, err := busytime.SolveFlexible(in, busytime.HeuristicSpan{}, algo)
				if err != nil {
					return 0, err
				}
				c, err := busyCost(in, s)
				if err != nil {
					return 0, err
				}
				return float64(c) / float64(opt), nil
			}
			gt, err := run(func(i *core.Instance) (*core.BusySchedule, error) {
				return busytime.GreedyTracking(i, busytime.GTOptions{})
			})
			if err != nil {
				return nil, err
			}
			ff, err := run(busytime.FirstFit)
			if err != nil {
				return nil, err
			}
			pc, err := run(busytime.PairCover)
			if err != nil {
				return nil, err
			}
			gtR = append(gtR, gt)
			ffR = append(ffR, ff)
			pcR = append(pcR, pc)
		}
		gtMean, gtMax := meanMax(gtR)
		ffMean, _ := meanMax(ffR)
		pcMean, _ := meanMax(pcR)
		spanMean, _ := meanMax(spanR)
		tab.AddRow(di(s.n), di(s.T), di(s.g), di(trials),
			f3(gtMean), f3(gtMax), f3(ffMean), f3(pcMean), f3(spanMean))
	}
	tab.Notes = append(tab.Notes,
		"heur span/exact validates the heuristic span minimizer (substitution #2) against exact search")
	return tab, nil
}
