package experiments

import (
	"fmt"
	"time"

	"repro/internal/activetime"
	"repro/internal/busytime"
	"repro/internal/gen"
)

// E16Scaling measures wall-clock growth of the polynomial algorithms as the
// instance size grows — the systems-side complement to the approximation
// tables. The paper states polynomial running times (in n and P for the
// active-time algorithms, n log n-ish per track extraction); this records
// what the implementation actually delivers on one core.
func E16Scaling(cfg Config) (*Table, error) {
	sizes := []int{100, 200, 400, 800}
	if cfg.Quick {
		sizes = []int{50, 100}
	}
	tab := &Table{
		ID:    "E16",
		Title: "Wall-clock scaling of the polynomial algorithms (single core)",
		Claim: "all algorithms are polynomial; per-size medians of one run each",
		Columns: []string{"n", "GreedyTracking", "PairCover", "FirstFit",
			"Preempt-inf", "Preempt-g", "UnitExact", "MinFeasible(T=n)"},
	}
	timeIt := func(f func() error) (string, error) {
		start := time.Now()
		if err := f(); err != nil {
			return "", err
		}
		return fmt.Sprintf("%.1fms", float64(time.Since(start).Microseconds())/1000), nil
	}
	for _, n := range sizes {
		iv := gen.RandomInterval(gen.RandomConfig{
			N: n, Horizon: 3 * n, MaxLen: 20, G: 4, Seed: cfg.Seed,
		})
		flex := gen.RandomFlexible(gen.RandomConfig{
			N: n, Horizon: 3 * n, MaxLen: 10, Slack: 8, G: 4, Seed: cfg.Seed,
		})
		unit := gen.RandomUnit(gen.RandomConfig{
			N: 2 * n, Horizon: n, Slack: 8, G: 4, Seed: cfg.Seed,
		})
		act := gen.RandomFlexible(gen.RandomConfig{
			N: n / 2, Horizon: n, MaxLen: 4, Slack: 4, G: 4, Seed: cfg.Seed,
		})
		gt, err := timeIt(func() error {
			_, err := busytime.GreedyTracking(iv, busytime.GTOptions{})
			return err
		})
		if err != nil {
			return nil, err
		}
		pc, err := timeIt(func() error { _, err := busytime.PairCover(iv); return err })
		if err != nil {
			return nil, err
		}
		ff, err := timeIt(func() error { _, err := busytime.FirstFit(iv); return err })
		if err != nil {
			return nil, err
		}
		pi, err := timeIt(func() error { _, err := busytime.PreemptiveUnbounded(flex); return err })
		if err != nil {
			return nil, err
		}
		pg, err := timeIt(func() error { _, err := busytime.PreemptiveBounded(flex); return err })
		if err != nil {
			return nil, err
		}
		ue, err := timeIt(func() error {
			_, err := activetime.SolveUnitExact(unit)
			if err == activetime.ErrInfeasible {
				return nil
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		mf, err := timeIt(func() error {
			_, err := activetime.MinimalFeasible(act, activetime.MinimalOptions{
				Strategy: activetime.CloseRightToLeft,
			})
			if err == activetime.ErrInfeasible {
				return nil
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(di(n), gt, pc, ff, pi, pg, ue, mf)
	}
	tab.Notes = append(tab.Notes,
		"interval workloads: n jobs on horizon 3n; unit workloads use 2n jobs; active-time uses n/2 jobs on horizon n",
		"timings are single measurements (see bench_output.txt for statistically sound numbers)")
	return tab, nil
}
