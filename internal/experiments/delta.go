package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/activetime"
	"repro/internal/core"
	"repro/internal/gen"
)

// deltaCell is one family of the E20 grid: a base instance plus a donor
// instance of the same family whose jobs arrive mid-session.
type deltaCell struct {
	family string
	T      int
	make   func(seed int64) *core.Instance
}

// e20Grid enumerates every generator family at a horizon small enough
// that the scripted mutation trace (each step re-solved twice: once
// through the live session, once cold) stays cheap, plus the canonical
// scaling family. The headline pivot-ratio cell is separate (see
// e20Headline).
func e20Grid(quick bool) []deltaCell {
	T := 64
	if quick {
		T = 32
	}
	return []deltaCell{
		{"flexible", T, func(seed int64) *core.Instance {
			return gen.RandomFlexible(gen.RandomConfig{N: T / 4, Horizon: T, MaxLen: 4, Slack: 4, G: 3, Seed: seed})
		}},
		{"interval", T, func(seed int64) *core.Instance {
			return gen.RandomInterval(gen.RandomConfig{N: T / 4, Horizon: T, MaxLen: 4, G: 3, Seed: seed})
		}},
		{"unit", T, func(seed int64) *core.Instance {
			return gen.RandomUnit(gen.RandomConfig{N: T / 4, Horizon: T, Slack: 4, G: 3, Seed: seed})
		}},
		{"proper", T, func(seed int64) *core.Instance {
			return gen.RandomProper(gen.RandomConfig{N: T / 2, Horizon: T, MaxLen: 6, G: 3, Seed: seed})
		}},
		{"laminar", T, func(seed int64) *core.Instance {
			return gen.RandomLaminar(gen.RandomConfig{N: T / 4, Horizon: T, G: 6, Seed: seed})
		}},
		{"hardness", 24, func(seed int64) *core.Instance {
			return gen.Hardness(8, 3)
		}},
		{"scaling", 4 * T, func(seed int64) *core.Instance {
			return gen.LargeHorizon(gen.RandomConfig{N: T / 2, Horizon: 4 * T, MaxLen: 8, G: 4, Seed: seed})
		}},
	}
}

// e20Headline is the pivot-ratio deliverable: the canonical scaling
// instance (the endurance family at seed 3) at T = 4096, where a small
// arrival batch re-solved through the live basis must be at least 5x
// cheaper in pivots than re-solving cold. Quick mode shrinks the horizon;
// the >= 5x merge gate only arms at T >= 4096, so quick runs record the
// ratio without being held to the large-horizon bound.
func e20Headline(quick bool) (T int) {
	if quick {
		return 256
	}
	return 4096
}

// DeltaSummary is the machine-readable digest of one E20 run. paperbench
// exports it into the bench records and gates the committed trajectory on
// it: the delta-vs-cold objective divergence is bounded absolutely at
// 1e-6, the warm-start fallback counter must be exactly zero (a nonzero
// count means the simplex silently abandoned a live basis — the bug class
// this experiment exists to keep extinct), and the headline add-ratio
// must stay >= 5 whenever the headline horizon is the full 4096.
type DeltaSummary struct {
	MaxObjDelta      float64 `json:"maxObjDelta"`      // worst |session - cold| objective gap
	ColdFallbacks    int     `json:"coldFallbacks"`    // warm-start fallbacks across every solve (must be 0)
	RemoveRebuilds   int     `json:"removeRebuilds"`   // counted master rebuilds on the removal path
	RejectedDeltas   int     `json:"rejectedDeltas"`   // arrivals refused atomically as infeasible
	HeadlineT        int     `json:"headlineT"`        // horizon of the pivot-ratio cell
	HeadlineAddRatio float64 `json:"headlineAddRatio"` // cold pivots / delta pivots on the headline arrival
	Steps            int     `json:"steps"`            // delta-vs-cold comparisons performed
	Cells            int     `json:"cells"`
}

// E20DeltaResolve drives a live activetime.Session through a scripted
// arrival/departure trace on every generator family, re-solving after each
// mutation both through the patched master (the delta path) and from
// scratch, and records the worst objective divergence plus the fallback
// and rebuild counters. A final headline cell measures the point of the
// machinery: the pivot cost of absorbing a small arrival batch at T = 4096
// through the live basis versus cold.
func E20DeltaResolve(cfg Config) (*Table, error) {
	tab := &Table{
		ID:    "E20",
		Title: "Live instance deltas: patched-master re-solves vs cold solves",
		Claim: "session re-solves after arrivals/departures match cold optima to 1e-6 with zero warm-start fallbacks, and a T=4096 arrival re-solve is >= 5x cheaper in pivots than solving cold",
		Columns: []string{"family", "T", "n0", "adds", "rejects", "removes", "rebuilds",
			"maxΔobj", "Δpivots", "coldpivots", "fallbacks"},
	}
	sum := &DeltaSummary{}
	for ci, c := range e20Grid(cfg.Quick) {
		if err := runDeltaCell(tab, sum, c, cfg.Seed, int64(ci)); err != nil {
			return nil, err
		}
	}
	if err := runDeltaHeadline(tab, sum, cfg); err != nil {
		return nil, err
	}
	tab.Delta = sum
	tab.Notes = append(tab.Notes,
		"maxΔobj compares each post-mutation session solve against a cold SolveLP of the identical instance state",
		"fallbacks counts warm-start abandonments across both solve paths; any nonzero value fails the trajectory merge",
		"rebuilds counts the removal path's counted cold-rebuild escape hatch (a departed seed row tight in the basis refuses in-place RemoveRows)",
		"the headline row's Δpivots/coldpivots ratio is the tentpole gate: >= 5x at T = 4096")
	return tab, nil
}

// runDeltaCell executes one family's mutation trace: two arrival batches
// and two departure batches interleaved, each followed by a delta-vs-cold
// comparison.
func runDeltaCell(tab *Table, sum *DeltaSummary, c deltaCell, seed, cellIdx int64) error {
	in := c.make(seed)
	donor := c.make(seed + 1)
	sess, err := activetime.NewSession(in)
	if err == activetime.ErrInfeasible {
		tab.AddRow(c.family, di(c.T), di(len(in.Jobs)), "-", "-", "-", "-", "infeasible", "-", "-", "-")
		return nil
	}
	if err != nil {
		return fmt.Errorf("%s T=%d: NewSession: %w", c.family, c.T, err)
	}
	if _, err := sess.Solve(); err != nil {
		return fmt.Errorf("%s T=%d: initial solve: %w", c.family, c.T, err)
	}
	rng := rand.New(rand.NewSource(seed*1001 + cellIdx))
	nextID := 1 + maxJobID(in)
	for _, j := range donor.Jobs {
		if j.ID >= nextID {
			nextID = j.ID + 1
		}
	}
	var maxDelta float64
	adds, rejects, removes, deltaPivots := 0, 0, 0, 0
	fallbacks := 0
	donorAt := 0
	for step := 0; step < 4; step++ {
		if step%2 == 0 {
			// Arrival batch: 1-2 donor jobs under fresh IDs.
			k := 1 + rng.Intn(2)
			var batch []core.Job
			for i := 0; i < k && donorAt < len(donor.Jobs); i++ {
				j := donor.Jobs[donorAt]
				donorAt++
				j.ID = nextID
				nextID++
				batch = append(batch, j)
			}
			if len(batch) == 0 {
				continue
			}
			switch err := sess.AddJobs(batch); {
			case err == activetime.ErrInfeasible:
				rejects++
				continue
			case err != nil:
				return fmt.Errorf("%s T=%d step %d: AddJobs: %w", c.family, c.T, step, err)
			}
			adds += len(batch)
		} else {
			if sess.NumJobs() < 3 {
				continue
			}
			jobs := sess.Instance().Jobs
			if err := sess.RemoveJobs([]int{jobs[rng.Intn(len(jobs))].ID}); err != nil {
				return fmt.Errorf("%s T=%d step %d: RemoveJobs: %w", c.family, c.T, step, err)
			}
			removes++
		}
		res, err := sess.Solve()
		if err != nil {
			return fmt.Errorf("%s T=%d step %d: delta solve: %w", c.family, c.T, step, err)
		}
		cold, err := activetime.SolveLP(sess.Instance())
		if err != nil {
			return fmt.Errorf("%s T=%d step %d: cold solve: %w", c.family, c.T, step, err)
		}
		if d := math.Abs(res.Objective - cold.Objective); d > maxDelta {
			maxDelta = d
		}
		deltaPivots += res.Pivots
		fallbacks += res.ColdFallbacks + cold.ColdFallbacks
		sum.Steps++
	}
	st := sess.Stats()
	sum.Cells++
	sum.RejectedDeltas += rejects
	sum.RemoveRebuilds += st.ColdRebuilds
	sum.ColdFallbacks += fallbacks
	if maxDelta > sum.MaxObjDelta {
		sum.MaxObjDelta = maxDelta
	}
	tab.AddRow(c.family, di(c.T), di(len(in.Jobs)), di(adds), di(rejects), di(removes),
		di(st.ColdRebuilds), fmt.Sprintf("%.2e", maxDelta), di(deltaPivots), "-", di(fallbacks))
	return nil
}

// runDeltaHeadline measures the tentpole ratio: solve the canonical
// scaling instance, add a small donor batch, and compare the delta
// re-solve's pivot count against a cold solve of the grown instance.
func runDeltaHeadline(tab *Table, sum *DeltaSummary, cfg Config) error {
	T := e20Headline(cfg.Quick)
	in := gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: 3})
	donor := gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: 4})
	sess, err := activetime.NewSession(in)
	if err != nil {
		return fmt.Errorf("headline T=%d: NewSession: %w", T, err)
	}
	if _, err := sess.Solve(); err != nil {
		return fmt.Errorf("headline T=%d: initial solve: %w", T, err)
	}
	nextID := 1 + maxJobID(in)
	batch := make([]core.Job, 0, 8)
	for i := 0; i < 8 && i < len(donor.Jobs); i++ {
		j := donor.Jobs[i]
		j.ID = nextID
		nextID++
		batch = append(batch, j)
	}
	if err := sess.AddJobs(batch); err != nil {
		return fmt.Errorf("headline T=%d: AddJobs: %w", T, err)
	}
	res, err := sess.Solve()
	if err != nil {
		return fmt.Errorf("headline T=%d: delta solve: %w", T, err)
	}
	cold, err := activetime.SolveLP(sess.Instance())
	if err != nil {
		return fmt.Errorf("headline T=%d: cold solve: %w", T, err)
	}
	d := math.Abs(res.Objective - cold.Objective)
	if d > sum.MaxObjDelta {
		sum.MaxObjDelta = d
	}
	fallbacks := res.ColdFallbacks + cold.ColdFallbacks
	sum.ColdFallbacks += fallbacks
	sum.Steps++
	sum.Cells++
	sum.HeadlineT = T
	if res.Pivots > 0 {
		sum.HeadlineAddRatio = float64(cold.Pivots) / float64(res.Pivots)
	} else {
		// A zero-pivot re-solve means the old basis stayed optimal: the
		// delta path is as cheap as it gets; report the cold count as the
		// realized ratio floor.
		sum.HeadlineAddRatio = float64(cold.Pivots)
	}
	tab.AddRow("scaling-headline", di(T), di(len(in.Jobs)), di(len(batch)), "0", "0",
		di(sess.Stats().ColdRebuilds), fmt.Sprintf("%.2e", d), di(res.Pivots), di(cold.Pivots), di(fallbacks))
	return nil
}

// maxJobID returns the largest job ID of the instance (0 when empty).
func maxJobID(in *core.Instance) int {
	m := 0
	for _, j := range in.Jobs {
		if j.ID > m {
			m = j.ID
		}
	}
	return m
}
