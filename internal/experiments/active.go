package experiments

import (
	"fmt"

	"repro/internal/activetime"
	"repro/internal/core"
	"repro/internal/gen"
)

// E1MinimalFeasibleFig3 sweeps the Figure 3 gadget: any minimal feasible
// solution is a 3-approximation (Theorem 1) and the gadget drives the
// adversarial closing order to cost 3g-2 against an optimum of g.
func E1MinimalFeasibleFig3(cfg Config) (*Table, error) {
	gs := []int{3, 4, 6, 8, 12, 16}
	if cfg.Quick {
		gs = []int{3, 4, 6}
	}
	tab := &Table{
		ID:    "E1",
		Title: "Minimal feasible schedules on the Figure 3 gadget",
		Claim: "minimal feasible <= 3*OPT; tight: (3g-2)/g -> 3 (Theorem 1, Figure 3)",
		Columns: []string{"g", "OPT", "adversarial", "ratio", "right-to-left",
			"left-to-right", "LP bound"},
	}
	for _, g := range gs {
		gd, err := gen.Fig3(g)
		if err != nil {
			return nil, err
		}
		in := gd.Instance
		adv, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
			First: gd.AdversarialFirst,
		})
		if err != nil {
			return nil, err
		}
		if err := core.VerifyActive(in, adv); err != nil {
			return nil, err
		}
		rtl, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
			Strategy: activetime.CloseRightToLeft,
		})
		if err != nil {
			return nil, err
		}
		ltr, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
			Strategy: activetime.CloseLeftToRight,
		})
		if err != nil {
			return nil, err
		}
		lpres, err := activetime.SolveLP(in)
		if err != nil {
			return nil, err
		}
		tab.AddRow(di(g), d(int64(gd.OptValue)), d(int64(adv.Cost())),
			f3(float64(adv.Cost())/float64(gd.OptValue)),
			d(int64(rtl.Cost())), d(int64(ltr.Cost())), f2(lpres.Objective))
	}
	tab.Notes = append(tab.Notes,
		"adversarial = MinimalFeasible closing slots g+1 and 2g first (reaches the Figure 3 minimal solution)",
		"OPT verified by flow feasibility of the g-slot solution and, for g=3, by exact branch and bound")
	return tab, nil
}

// E2LPRounding measures the LP-rounding 2-approximation (Theorem 2) on
// random flexible instances: rounded cost vs LP optimum and vs exact OPT.
func E2LPRounding(cfg Config) (*Table, error) {
	type sweep struct{ n, T, g int }
	sweeps := []sweep{{6, 10, 2}, {8, 12, 3}, {10, 14, 3}, {12, 16, 4}}
	trials := 12
	if cfg.Quick {
		sweeps = sweeps[:2]
		trials = 4
	}
	tab := &Table{
		ID:    "E2",
		Title: "LP rounding on random active-time instances",
		Claim: "opened slots <= 2*LP <= 2*OPT (Theorem 2); integrality gap makes 2 unbeatable",
		Columns: []string{"n", "T", "g", "trials", "mean r/LP", "max r/LP",
			"mean r/OPT", "max r/OPT", "mean min/OPT"},
	}
	for _, s := range sweeps {
		var rLP, rOPT, mOPT []float64
		used := 0
		for trial := 0; trial < trials; trial++ {
			in := gen.RandomFlexible(gen.RandomConfig{
				N: s.n, Horizon: s.T, MaxLen: 4, Slack: 4, G: s.g,
				Seed: cfg.Seed + int64(trial*1000+s.n),
			})
			res, err := activetime.RoundLP(in)
			if err == activetime.ErrInfeasible {
				continue
			}
			if err != nil {
				return nil, err
			}
			if float64(res.Opened) > 2*res.LPValue+1e-6 {
				return nil, fmt.Errorf("invariant violated: opened %d > 2*LP %v", res.Opened, res.LPValue)
			}
			exact, err := activetime.SolveExact(in, activetime.ExactOptions{})
			if err != nil {
				return nil, err
			}
			minimal, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
				Strategy: activetime.CloseRightToLeft,
			})
			if err != nil {
				return nil, err
			}
			used++
			rLP = append(rLP, float64(res.Opened)/res.LPValue)
			rOPT = append(rOPT, float64(res.Opened)/float64(exact.Cost()))
			mOPT = append(mOPT, float64(minimal.Cost())/float64(exact.Cost()))
		}
		meanLP, maxLP := meanMax(rLP)
		meanO, maxO := meanMax(rOPT)
		meanM, _ := meanMax(mOPT)
		tab.AddRow(di(s.n), di(s.T), di(s.g), di(used),
			f3(meanLP), f3(maxLP), f3(meanO), f3(maxO), f3(meanM))
	}
	tab.Notes = append(tab.Notes,
		"r = LP rounding (RoundLP), min = minimal feasible right-to-left, OPT = exact branch and bound",
		"every run also re-verified opened <= 2*LP and schedule validity")
	return tab, nil
}

// E3IntegralityGap sweeps the Section 3.5 construction: IP/LP = 2g/(g+1).
func E3IntegralityGap(cfg Config) (*Table, error) {
	gs := []int{2, 3, 4, 5, 6, 8}
	if cfg.Quick {
		gs = []int{2, 3, 4}
	}
	tab := &Table{
		ID:    "E3",
		Title: "LP1 integrality gap construction",
		Claim: "IP = 2g, LP = g+1, gap = 2g/(g+1) -> 2 (Section 3.5)",
		Columns: []string{"g", "jobs", "IP (unit exact)", "LP", "gap", "paper gap",
			"cuts", "rounds", "pivots"},
	}
	for _, g := range gs {
		in := gen.IntegralityGap(g)
		exact, err := activetime.SolveUnitExact(in)
		if err != nil {
			return nil, err
		}
		lpres, err := activetime.SolveLP(in)
		if err != nil {
			return nil, err
		}
		gap := float64(exact.Cost()) / lpres.Objective
		paper := 2 * float64(g) / float64(g+1)
		tab.AddRow(di(g), di(len(in.Jobs)), d(int64(exact.Cost())),
			f3(lpres.Objective), f3(gap), f3(paper),
			di(lpres.Cuts), di(lpres.Rounds), di(lpres.Pivots))
	}
	tab.Notes = append(tab.Notes,
		"cuts/rounds/pivots: Benders solver effort (cut count, master solves, total simplex pivots across warm re-solves)")
	return tab, nil
}

// E12UnitActive compares the exact unit-job solver against the
// approximations on random unit instances.
func E12UnitActive(cfg Config) (*Table, error) {
	type sweep struct{ n, T, w, g int }
	sweeps := []sweep{{10, 12, 3, 2}, {16, 16, 4, 3}, {24, 20, 5, 3}, {32, 24, 6, 4}}
	trials := 10
	if cfg.Quick {
		sweeps = sweeps[:2]
		trials = 4
	}
	tab := &Table{
		ID:    "E12",
		Title: "Unit-length jobs: exact vs minimal feasible vs LP rounding",
		Claim: "unit jobs are polynomial (role of Chang-Gabow-Khuller [2]); approximations stay within their factors",
		Columns: []string{"n", "T", "g", "trials", "mean OPT", "mean min/OPT",
			"max min/OPT", "mean rnd/OPT", "max rnd/OPT"},
	}
	for _, s := range sweeps {
		var minR, rndR []float64
		var optSum float64
		used := 0
		for trial := 0; trial < trials; trial++ {
			in := gen.RandomUnit(gen.RandomConfig{
				N: s.n, Horizon: s.T, Slack: s.w, G: s.g,
				Seed: cfg.Seed + int64(trial*77+s.n),
			})
			exact, err := activetime.SolveUnitExact(in)
			if err == activetime.ErrInfeasible {
				continue
			}
			if err != nil {
				return nil, err
			}
			minimal, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
				Strategy: activetime.CloseRightToLeft,
			})
			if err != nil {
				return nil, err
			}
			rnd, err := activetime.RoundLP(in)
			if err != nil {
				return nil, err
			}
			used++
			opt := float64(exact.Cost())
			optSum += opt
			minR = append(minR, float64(minimal.Cost())/opt)
			rndR = append(rndR, float64(rnd.Opened)/opt)
		}
		meanMin, maxMin := meanMax(minR)
		meanRnd, maxRnd := meanMax(rndR)
		tab.AddRow(di(s.n), di(s.T), di(s.g), di(used), f2(optSum/float64(used)),
			f3(meanMin), f3(maxMin), f3(meanRnd), f3(maxRnd))
	}
	return tab, nil
}
