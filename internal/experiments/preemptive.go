package experiments

import (
	"fmt"

	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/gen"
)

// E9PreemptiveUnbounded checks Theorem 6's greedy against the independent
// difference-constraint optimum on random flexible workloads.
func E9PreemptiveUnbounded(cfg Config) (*Table, error) {
	type sweep struct{ n, T int }
	sweeps := []sweep{{8, 16}, {16, 28}, {32, 48}, {64, 90}}
	trials := 15
	if cfg.Quick {
		sweeps = sweeps[:2]
		trials = 5
	}
	tab := &Table{
		ID:    "E9",
		Title: "Preemptive busy time, unbounded g: Theorem 6 greedy vs independent exact",
		Claim: "the greedy of Theorem 6 is exact",
		Columns: []string{"n", "T", "trials", "agreements", "mean cost",
			"mean machines opened"},
	}
	for _, s := range sweeps {
		agree := 0
		var costSum float64
		for trial := 0; trial < trials; trial++ {
			in := gen.RandomFlexible(gen.RandomConfig{
				N: s.n, Horizon: s.T, MaxLen: 6, Slack: 5, G: 1,
				Seed: cfg.Seed + int64(trial*101+s.n),
			})
			sched, err := busytime.PreemptiveUnbounded(in)
			if err != nil {
				return nil, err
			}
			unb := in.Clone()
			unb.G = len(unb.Jobs)
			if err := core.VerifyPreemptive(unb, sched); err != nil {
				return nil, err
			}
			want, err := busytime.PreemptiveUnboundedValue(in)
			if err != nil {
				return nil, err
			}
			if sched.Cost() == want {
				agree++
			} else {
				return nil, fmt.Errorf("greedy %d != exact %d on %s", sched.Cost(), want, in.Name)
			}
			costSum += float64(sched.Cost())
		}
		tab.AddRow(di(s.n), di(s.T), di(trials), di(agree),
			f2(costSum/float64(trials)), "1")
	}
	tab.Notes = append(tab.Notes,
		"independent exact = interval multicover via difference constraints (longest paths)")
	return tab, nil
}

// E10PreemptiveBounded measures Theorem 7's 2-approximation.
func E10PreemptiveBounded(cfg Config) (*Table, error) {
	type sweep struct{ n, T, g int }
	sweeps := []sweep{{12, 20, 2}, {16, 24, 3}, {24, 32, 4}, {32, 40, 6}}
	trials := 12
	if cfg.Quick {
		sweeps = sweeps[:2]
		trials = 4
	}
	tab := &Table{
		ID:    "E10",
		Title: "Preemptive busy time, bounded g (Theorem 7)",
		Claim: "cost <= OPT_inf + mass/g <= 2*OPT",
		Columns: []string{"n", "T", "g", "trials", "mean cost/LB", "max cost/LB",
			"charging bound ok"},
	}
	for _, s := range sweeps {
		var ratios []float64
		ok := true
		for trial := 0; trial < trials; trial++ {
			in := gen.RandomFlexible(gen.RandomConfig{
				N: s.n, Horizon: s.T, MaxLen: 6, Slack: 5, G: s.g,
				Seed: cfg.Seed + int64(trial*211+s.n),
			})
			sched, err := busytime.PreemptiveBounded(in)
			if err != nil {
				return nil, err
			}
			if err := core.VerifyPreemptive(in, sched); err != nil {
				return nil, err
			}
			optInf, err := busytime.PreemptiveUnboundedValue(in)
			if err != nil {
				return nil, err
			}
			cost := float64(sched.Cost())
			if cost > float64(optInf)+busytime.MassBound(in)+1e-9 {
				ok = false
			}
			// LB on the preemptive optimum: max(OPT_inf, mass/g).
			lb := float64(optInf)
			if mb := busytime.MassBound(in); mb > lb {
				lb = mb
			}
			ratios = append(ratios, cost/lb)
		}
		mean, max := meanMax(ratios)
		oks := "yes"
		if !ok {
			oks = "VIOLATED"
		}
		tab.AddRow(di(s.n), di(s.T), di(s.g), di(trials), f3(mean), f3(max), oks)
	}
	tab.Notes = append(tab.Notes,
		"LB = max(OPT_inf, mass/g); cost/LB <= 2 is implied by the charging bound column")
	return tab, nil
}
