package gen

import (
	"testing"

	"repro/internal/activetime"
)

// TestLargeHorizonTinyHorizon pins the degenerate-parameter behavior: the
// generator clamps requested horizons up to its minimum and must still
// produce valid instances, never panic (a clamp to exactly T=16 once made
// the nested-chain phase call rng.Intn(0)).
func TestLargeHorizonTinyHorizon(t *testing.T) {
	for _, h := range []int{0, 8, 16, 17, 32} {
		in := LargeHorizon(RandomConfig{N: 6, Horizon: h, G: 2, Seed: 1})
		if err := in.Validate(); err != nil {
			t.Fatalf("Horizon=%d: %v", h, err)
		}
	}
}

// TestLargeHorizonShape checks the scaling family's structural promises:
// valid instances, the requested horizon, a mix of laminar containers and
// nested chains, and feasibility with every slot open (the generator clamps
// lengths so the LP pipeline never sees an infeasible scaling instance).
// The 32768 and 65536 rows pin the invariants at the horizons the
// hypersparse-kernel scaling runs target (canonical n = T/8 density at
// 32768, light n = T/32 at 65536).
func TestLargeHorizonShape(t *testing.T) {
	for _, T := range []int{64, 256, 1024, 16384, 32768, 65536} {
		if testing.Short() && T > 16384 {
			continue // the feasibility probe alone costs seconds at these sizes
		}
		for seed := int64(0); seed < 3; seed++ {
			n := T / 8
			if T > 32768 {
				n = T / 32
			}
			in := LargeHorizon(RandomConfig{N: n, Horizon: T, MaxLen: 16, G: 4, Seed: seed})
			if err := in.Validate(); err != nil {
				t.Fatalf("T=%d seed=%d: %v", T, seed, err)
			}
			if got := int(in.Horizon()); got > T {
				t.Fatalf("T=%d seed=%d: horizon %d exceeds requested %d", T, seed, got, T)
			}
			if len(in.Jobs) < n/2 {
				t.Fatalf("T=%d seed=%d: only %d jobs generated, want >= %d", T, seed, len(in.Jobs), n/2)
			}
			nested := 0
			for i := 1; i < len(in.Jobs); i++ {
				a, b := in.Jobs[i-1], in.Jobs[i]
				if a.Release <= b.Release && b.Deadline <= a.Deadline {
					nested++
				}
			}
			if nested == 0 {
				t.Fatalf("T=%d seed=%d: no nested window pairs", T, seed)
			}
			if !activetime.CheckFeasible(in, activetime.AllSlots(in)) {
				t.Fatalf("T=%d seed=%d: infeasible with all slots open", T, seed)
			}
		}
	}
}
