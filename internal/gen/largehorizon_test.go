package gen

import (
	"testing"

	"repro/internal/activetime"
)

// TestLargeHorizonTinyHorizon pins the degenerate-parameter behavior: the
// generator clamps requested horizons up to its minimum and must still
// produce valid instances, never panic (a clamp to exactly T=16 once made
// the nested-chain phase call rng.Intn(0)).
func TestLargeHorizonTinyHorizon(t *testing.T) {
	for _, h := range []int{0, 8, 16, 17, 32} {
		in := LargeHorizon(RandomConfig{N: 6, Horizon: h, G: 2, Seed: 1})
		if err := in.Validate(); err != nil {
			t.Fatalf("Horizon=%d: %v", h, err)
		}
	}
}

// TestLargeHorizonShape checks the scaling family's structural promises:
// valid instances, the requested horizon, a mix of laminar containers and
// nested chains, and feasibility with every slot open (the generator clamps
// lengths so the LP pipeline never sees an infeasible scaling instance).
func TestLargeHorizonShape(t *testing.T) {
	for _, T := range []int{64, 256, 1024, 16384} {
		for seed := int64(0); seed < 3; seed++ {
			in := LargeHorizon(RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: seed})
			if err := in.Validate(); err != nil {
				t.Fatalf("T=%d seed=%d: %v", T, seed, err)
			}
			if got := int(in.Horizon()); got > T {
				t.Fatalf("T=%d seed=%d: horizon %d exceeds requested %d", T, seed, got, T)
			}
			if len(in.Jobs) < T/16 {
				t.Fatalf("T=%d seed=%d: only %d jobs generated", T, seed, len(in.Jobs))
			}
			nested := 0
			for i := 1; i < len(in.Jobs); i++ {
				a, b := in.Jobs[i-1], in.Jobs[i]
				if a.Release <= b.Release && b.Deadline <= a.Deadline {
					nested++
				}
			}
			if nested == 0 {
				t.Fatalf("T=%d seed=%d: no nested window pairs", T, seed)
			}
			if !activetime.CheckFeasible(in, activetime.AllSlots(in)) {
				t.Fatalf("T=%d seed=%d: infeasible with all slots open", T, seed)
			}
		}
	}
}
