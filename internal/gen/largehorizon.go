package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// LargeHorizon returns a structured instance on a horizon of up to ~65536
// slots, the scaling workload for the LP1 pipeline. Its shape follows the
// instances where large active-time horizons actually arise (cf. Nested
// Active-Time Scheduling, arXiv:2207.12507): a laminar binary split of the
// horizon provides container windows carrying one flexible job each, and
// nested chains of strictly shrinking windows are layered around random
// centers. Window supports are short relative to the horizon, so the Benders
// master's constraint rows are highly sparse — the regime the factorized
// (LU + eta file) revised-simplex core and its hypersparse FTRAN/BTRAN
// kernels are built for. The canonical density is N = T/8 jobs; at
// T = 16384–32768 that density is the endurance workload of E18 and the
// ROADMAP scaling record, while lighter densities (N = T/32) carry the same
// structure to T = 65536 and keep big horizons test-suite-affordable.
// TestLargeHorizonShape pins the structural invariants (validity, horizon,
// laminar/nested mix, all-slots-open feasibility) through T = 65536.
//
// Lengths are clamped well below window widths (and G should be >= 2), which
// keeps every generated instance feasible with all slots open; the property
// suite asserts this rather than assuming it.
func LargeHorizon(c RandomConfig) *core.Instance {
	rng := rand.New(rand.NewSource(c.Seed))
	T := core.Time(c.Horizon)
	if T < 16 {
		T = 16
	}
	maxLen := c.MaxLen
	if maxLen < 1 {
		maxLen = 8
	}
	var jobs []core.Job
	id := 0
	addJob := func(lo, hi core.Time) {
		if id >= c.N || hi-lo < 2 {
			return
		}
		width := int(hi - lo)
		l := 1 + rng.Intn(max(1, min(maxLen, width/8)))
		jobs = append(jobs, core.Job{ID: id, Release: lo, Deadline: hi, Length: core.Time(l)})
		id++
	}
	// Laminar half: binary splits of [0, T) down to short windows, one job
	// per container.
	var laminar func(lo, hi core.Time)
	laminar = func(lo, hi core.Time) {
		if id >= c.N/2 || hi-lo < 8 {
			return
		}
		addJob(lo, hi)
		mid := (lo + hi) / 2
		laminar(lo, mid)
		laminar(mid, hi)
	}
	laminar(0, T)
	// Nested half: chains of strictly shrinking windows around random
	// centers, the other structured source of long horizons.
	for id < c.N {
		center := core.Time(8 + rng.Intn(max(1, int(T)-16)))
		half := core.Time(4 + rng.Intn(int(T)/16+4))
		for half >= 2 && id < c.N {
			lo, hi := center-half, center+half
			if lo < 0 {
				lo = 0
			}
			if hi > T {
				hi = T
			}
			addJob(lo, hi)
			half = half * 2 / 3
		}
	}
	return &core.Instance{
		Name: fmt.Sprintf("large-horizon(n=%d,T=%d,g=%d,seed=%d)", len(jobs), c.Horizon, c.G, c.Seed),
		G:    c.G, Jobs: jobs,
	}
}
