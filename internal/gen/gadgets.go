package gen

import (
	"fmt"

	"repro/internal/core"
)

// Fig1 reproduces Figure 1 of the paper: seven interval jobs with unit
// demand and g = 3 whose optimal busy-time packing uses two machines. The
// returned schedule is the packing of Figure 1(B); its cost equals the
// demand-profile lower bound (10 time units with this layout), so it is
// provably optimal.
func Fig1() (*core.Instance, *core.BusySchedule) {
	in := &core.Instance{
		Name: "fig1",
		G:    3,
		Jobs: []core.Job{
			{ID: 1, Release: 3, Deadline: 6, Length: 3},
			{ID: 2, Release: 0, Deadline: 6, Length: 6},
			{ID: 3, Release: 1, Deadline: 4, Length: 3},
			{ID: 4, Release: 2, Deadline: 5, Length: 3},
			{ID: 5, Release: 4, Deadline: 6, Length: 2},
			{ID: 6, Release: 1, Deadline: 5, Length: 4},
			{ID: 7, Release: 0, Deadline: 2, Length: 2},
		},
	}
	opt := &core.BusySchedule{Bundles: []core.Bundle{
		{Placements: []core.Placement{{JobID: 2, Start: 0}, {JobID: 7, Start: 0}, {JobID: 1, Start: 3}, {JobID: 5, Start: 4}}},
		{Placements: []core.Placement{{JobID: 3, Start: 1}, {JobID: 6, Start: 1}, {JobID: 4, Start: 2}}},
	}}
	return in, opt
}

// Fig3Gadget is the tight example for Theorem 1 (Figure 3): a minimal
// feasible solution can cost 3g-2 while the optimum is g.
type Fig3Gadget struct {
	Instance *core.Instance
	// OptOpen is an optimal set of active slots (cost g); BadOpen is the
	// minimal feasible solution of cost 3g-2 drawn in the figure.
	OptOpen, BadOpen []core.Time
	// AdversarialFirst steers MinimalFeasible into BadOpen: closing slots
	// g+1 and 2g first traps the two long jobs outside the full middle.
	AdversarialFirst []core.Time
	OptValue         core.Time
	BadValue         core.Time
}

// Fig3 builds the Figure 3 gadget for a given g >= 3: two jobs of length g
// with windows [0,2g) and [g,3g), g-2 rigid jobs of length g-2 with window
// [g+1,2g-1), and two groups of g-2 unit jobs with windows [g+1,2g) and
// [g,2g-1).
func Fig3(g int) (*Fig3Gadget, error) {
	if g < 3 {
		return nil, fmt.Errorf("gen: Fig3 needs g >= 3, got %d", g)
	}
	G := core.Time(g)
	var jobs []core.Job
	id := 0
	add := func(r, d, p core.Time) {
		jobs = append(jobs, core.Job{ID: id, Release: r, Deadline: d, Length: p})
		id++
	}
	add(0, 2*G, G) // long job A
	add(G, 3*G, G) // long job B
	for i := 0; i < g-2; i++ {
		add(G+1, 2*G-1, G-2) // rigid middle jobs
	}
	for i := 0; i < g-2; i++ {
		add(G+1, 2*G, 1) // unit jobs, late window
	}
	for i := 0; i < g-2; i++ {
		add(G, 2*G-1, 1) // unit jobs, early window
	}
	in := &core.Instance{Name: fmt.Sprintf("fig3(g=%d)", g), G: g, Jobs: jobs}
	var opt, bad []core.Time
	for t := G + 1; t <= 2*G; t++ {
		opt = append(opt, t)
	}
	for t := core.Time(1); t <= G; t++ {
		bad = append(bad, t)
	}
	for t := G + 2; t <= 2*G-1; t++ {
		bad = append(bad, t)
	}
	for t := 2*G + 1; t <= 3*G; t++ {
		bad = append(bad, t)
	}
	return &Fig3Gadget{
		Instance:         in,
		OptOpen:          opt,
		BadOpen:          bad,
		AdversarialFirst: []core.Time{G + 1, 2 * G},
		OptValue:         G,
		BadValue:         3*G - 2,
	}, nil
}

// IntegralityGap builds the Section 3.5 construction showing the LP1
// integrality gap approaches 2: g pairs of adjacent slots, each with g+1
// unit jobs confined to the pair. The integral optimum is 2g while the LP
// optimum is g+1.
func IntegralityGap(g int) *core.Instance {
	var jobs []core.Job
	id := 0
	for k := 0; k < g; k++ {
		base := core.Time(2 * k)
		for c := 0; c <= g; c++ {
			jobs = append(jobs, core.Job{ID: id, Release: base, Deadline: base + 2, Length: 1})
			id++
		}
	}
	return &core.Instance{Name: fmt.Sprintf("lp-gap(g=%d)", g), G: g, Jobs: jobs}
}

// Fig6Gadget is the tight example for GreedyTracking (Figures 6-7).
type Fig6Gadget struct {
	// Flexible is the original instance: per gadget, g interval jobs A at
	// [O, O+U) and g interval jobs B at [O+U-eps, O+2U-eps), plus 2g
	// flexible jobs of length U-eps/2 spanning everything.
	Flexible *core.Instance
	// Converted fixes the flexible jobs the way Figure 7's adversarial
	// span-minimizing DP does: two per gadget, straddling the A/B overlap.
	Converted *core.Instance
	// Opt is the optimal packing: one bundle per identical group plus two
	// bundles of stacked flexible jobs; its cost equals the mass bound, so
	// it is provably optimal.
	Opt *core.BusySchedule
	// AdversarialGT is a legitimate GreedyTracking output on Converted
	// under worst-case tie-breaking: every track is a maximum-length track
	// at the time of its extraction, but consecutive tracks alternate
	// between A and B copies so every bundle spans both groups of every
	// gadget. Its cost approaches 3x optimal (the (6-o(eps))g of the
	// paper).
	AdversarialGT *core.BusySchedule
	OptValue      core.Time
}

// Fig6 builds the Figure 6 gadget: g disjoint "gadgets" each holding two
// groups of g identical unit jobs overlapping by eps, plus 2g flexible jobs.
// unit must be even and eps < unit/2; eps must be even (the flexible length
// is unit - eps/2).
func Fig6(g int, unit, eps core.Time) (*Fig6Gadget, error) {
	if g < 2 || eps <= 0 || eps%2 != 0 || eps >= unit/2 {
		return nil, fmt.Errorf("gen: Fig6 needs g>=2 and even 0<eps<unit/2")
	}
	stride := 2 * unit // gadget i occupies [i*stride, i*stride+2*unit-eps)
	flexLen := unit - eps/2
	var jobs []core.Job
	id := 0
	add := func(r, d, p core.Time) int {
		jobs = append(jobs, core.Job{ID: id, Release: r, Deadline: d, Length: p})
		id++
		return id - 1
	}
	// aIDs[i][k], bIDs[i][k]: the k-th copy of group A/B in gadget i.
	aIDs := make([][]int, g)
	bIDs := make([][]int, g)
	for i := 0; i < g; i++ {
		o := core.Time(i) * stride
		for k := 0; k < g; k++ {
			aIDs[i] = append(aIDs[i], add(o, o+unit, unit))
		}
		for k := 0; k < g; k++ {
			bIDs[i] = append(bIDs[i], add(o+unit-eps, o+2*unit-eps, unit))
		}
	}
	span := core.Time(g-1)*stride + 2*unit - eps
	var flexIDs []int
	for k := 0; k < 2*g; k++ {
		flexIDs = append(flexIDs, add(0, span, flexLen))
	}
	flexible := &core.Instance{Name: fmt.Sprintf("fig6(g=%d,eps=%d/%d)", g, eps, unit), G: g, Jobs: jobs}

	// Optimal packing: each identical group on its own machine; flexible
	// jobs stacked g per machine at the far left.
	opt := &core.BusySchedule{}
	for i := 0; i < g; i++ {
		o := core.Time(i) * stride
		var pa, pb []core.Placement
		for _, idp := range aIDs[i] {
			pa = append(pa, core.Placement{JobID: idp, Start: o})
		}
		for _, idp := range bIDs[i] {
			pb = append(pb, core.Placement{JobID: idp, Start: o + unit - eps})
		}
		opt.Bundles = append(opt.Bundles, core.Bundle{Placements: pa}, core.Bundle{Placements: pb})
	}
	for m := 0; m < 2; m++ {
		var pf []core.Placement
		for k := 0; k < g; k++ {
			pf = append(pf, core.Placement{JobID: flexIDs[m*g+k], Start: 0})
		}
		opt.Bundles = append(opt.Bundles, core.Bundle{Placements: pf})
	}
	optValue := core.Time(2*g)*unit + 2*flexLen

	// Adversarial conversion (Figure 7): flexible jobs fixed two per
	// gadget, straddling the overlap region so they intersect every job of
	// the gadget.
	converted := flexible.Clone()
	converted.Name = flexible.Name + "/dp-adversarial"
	flexStart := func(i int, which int) core.Time {
		o := core.Time(i) * stride
		if which == 0 {
			return o + unit - flexLen // ends exactly at o+unit
		}
		return o + unit - eps // starts at the B group start
	}
	for i := 0; i < g; i++ {
		for w := 0; w < 2; w++ {
			idp := flexIDs[2*i+w]
			s := flexStart(i, w)
			converted.Jobs[idp] = core.Job{ID: idp, Release: s, Deadline: s + flexLen, Length: flexLen}
		}
	}

	// Adversarial GreedyTracking run on Converted: 2g unit tracks that
	// alternate between A and B copies per gadget, then 2 flexible tracks.
	adv := &core.BusySchedule{}
	used := make([]int, 2*g) // per gadget: how many A (index 2i) / B (2i+1) copies consumed
	for b := 0; b < 2; b++ {
		var bundle core.Bundle
		for k := 0; k < g; k++ { // track index within bundle
			for i := 0; i < g; i++ {
				pickA := (b*g+k+i)%2 == 0
				var idp int
				if pickA && used[2*i] < g {
					idp = aIDs[i][used[2*i]]
					used[2*i]++
				} else if used[2*i+1] < g {
					idp = bIDs[i][used[2*i+1]]
					used[2*i+1]++
				} else {
					idp = aIDs[i][used[2*i]]
					used[2*i]++
				}
				j := converted.Jobs[idp]
				bundle.Placements = append(bundle.Placements, core.Placement{JobID: idp, Start: j.Release})
			}
		}
		adv.Bundles = append(adv.Bundles, bundle)
	}
	var fb core.Bundle
	for _, idp := range flexIDs {
		j := converted.Jobs[idp]
		fb.Placements = append(fb.Placements, core.Placement{JobID: idp, Start: j.Release})
	}
	adv.Bundles = append(adv.Bundles, fb)

	return &Fig6Gadget{
		Flexible:      flexible,
		Converted:     converted,
		Opt:           opt,
		AdversarialGT: adv,
		OptValue:      optValue,
	}, nil
}

// Fig8Gadget is the tight example for the interval-job 2-approximation
// (Figure 8, g = 2).
type Fig8Gadget struct {
	Instance *core.Instance
	// Opt packs the two long jobs together and the three epsilon jobs
	// together (cost unit+eps); Bad pairs each long job with epsilon jobs
	// (cost 2*unit+eps), the "possible output" of Figure 8(B).
	Opt, Bad *core.BusySchedule
	OptValue core.Time
	BadValue core.Time
}

// Fig8 builds Figure 8's five interval jobs with g=2: two of length unit at
// [0,unit), one of length eps at [unit, unit+eps), one of length epsp and
// one of length eps-epsp partitioning the same range. Requires
// 0 < epsp < eps.
func Fig8(unit, eps, epsp core.Time) (*Fig8Gadget, error) {
	if epsp <= 0 || epsp >= eps || unit <= eps {
		return nil, fmt.Errorf("gen: Fig8 needs 0 < epsp < eps < unit")
	}
	jobs := []core.Job{
		{ID: 0, Release: 0, Deadline: unit, Length: unit},
		{ID: 1, Release: 0, Deadline: unit, Length: unit},
		{ID: 2, Release: unit, Deadline: unit + eps, Length: eps},
		{ID: 3, Release: unit, Deadline: unit + epsp, Length: epsp},
		{ID: 4, Release: unit + epsp, Deadline: unit + eps, Length: eps - epsp},
	}
	in := &core.Instance{Name: fmt.Sprintf("fig8(eps=%d,epsp=%d/%d)", eps, epsp, unit), G: 2, Jobs: jobs}
	opt := &core.BusySchedule{Bundles: []core.Bundle{
		{Placements: []core.Placement{{JobID: 0, Start: 0}, {JobID: 1, Start: 0}}},
		{Placements: []core.Placement{{JobID: 2, Start: unit}, {JobID: 3, Start: unit}, {JobID: 4, Start: unit + epsp}}},
	}}
	bad := &core.BusySchedule{Bundles: []core.Bundle{
		{Placements: []core.Placement{{JobID: 0, Start: 0}}},
		{Placements: []core.Placement{{JobID: 1, Start: 0}, {JobID: 2, Start: unit},
			{JobID: 3, Start: unit}, {JobID: 4, Start: unit + epsp}}},
	}}
	return &Fig8Gadget{
		Instance: in,
		Opt:      opt,
		Bad:      bad,
		OptValue: unit + eps,
		BadValue: 2*unit + eps,
	}, nil
}

// Fig9Gadget is the factor-2 example for the demand profile of the
// unbounded-g dynamic program's output (Lemma 7, Figure 9).
type Fig9Gadget struct {
	// Flexible is the original instance; DPOutput fixes the flexible jobs
	// overlaying the interval sets (the span-minimizer's unique output per
	// the paper); OptLayout fixes them overlaying the first unit job (the
	// layout an optimal bounded-g solution uses).
	Flexible, DPOutput, OptLayout *core.Instance
}

// Fig9 builds the Figure 9 instance: one unit interval job; g-1 disjoint
// sets of g identical interval jobs where set i has per-job length
// unit+i*eps; and g-1 flexible jobs, the i-th of length unit+i*eps with a
// window spanning everything up to the end of set i.
func Fig9(g int, unit, eps core.Time) (*Fig9Gadget, error) {
	if g < 2 || eps <= 0 || eps*core.Time(g) >= unit {
		return nil, fmt.Errorf("gen: Fig9 needs g >= 2 and eps*g < unit")
	}
	var jobs []core.Job
	id := 0
	add := func(r, d, p core.Time) int {
		jobs = append(jobs, core.Job{ID: id, Release: r, Deadline: d, Length: p})
		id++
		return id - 1
	}
	add(0, unit, unit)               // the lone unit job
	setStart := make([]core.Time, g) // 1-based sets
	cursor := unit
	for i := 1; i < g; i++ {
		setStart[i] = cursor
		l := unit + core.Time(i)*eps
		for k := 0; k < g; k++ {
			add(cursor, cursor+l, l)
		}
		cursor += l
	}
	flexIDs := make([]int, g)
	for i := 1; i < g; i++ {
		l := unit + core.Time(i)*eps
		end := setStart[i] + l // end of set i
		flexIDs[i] = add(0, end, l)
	}
	flexible := &core.Instance{Name: fmt.Sprintf("fig9(g=%d,eps=%d/%d)", g, eps, unit), G: g, Jobs: jobs}

	dpOut := flexible.Clone()
	dpOut.Name += "/dp-output"
	for i := 1; i < g; i++ {
		idp := flexIDs[i]
		l := jobs[idp].Length
		dpOut.Jobs[idp] = core.Job{ID: idp, Release: setStart[i], Deadline: setStart[i] + l, Length: l}
	}
	optLayout := flexible.Clone()
	optLayout.Name += "/opt-layout"
	for i := 1; i < g; i++ {
		idp := flexIDs[i]
		l := jobs[idp].Length
		optLayout.Jobs[idp] = core.Job{ID: idp, Release: 0, Deadline: l, Length: l}
	}
	return &Fig9Gadget{Flexible: flexible, DPOutput: dpOut, OptLayout: optLayout}, nil
}

// Fig10Gadget is the factor-4 example for extending the interval 2-
// approximation to flexible jobs (Theorem 10, Figures 10-12).
type Fig10Gadget struct {
	Flexible *core.Instance
	// Converted places each flexible job over a distinct gadget, the
	// adversarial span-minimizer output of Figure 11.
	Converted *core.Instance
	// Opt packs the flexible jobs with the first unit job; its cost is
	// OptValue = g*unit + (g-1)*eps.
	Opt      *core.BusySchedule
	OptValue core.Time
}

// Fig10 builds the Figures 10-12 instance: one unit interval job, g-1
// disjoint copies of the gadget (g unit interval jobs, 2g-2 interval jobs
// of length eps, two of length epsp, two of length eps-epsp), and g-1 unit
// flexible jobs spanning everything.
func Fig10(g int, unit, eps, epsp core.Time) (*Fig10Gadget, error) {
	if g < 2 || epsp <= 0 || epsp >= eps || eps >= unit {
		return nil, fmt.Errorf("gen: Fig10 needs g >= 2 and 0 < epsp < eps < unit")
	}
	var jobs []core.Job
	id := 0
	add := func(r, d, p core.Time) int {
		jobs = append(jobs, core.Job{ID: id, Release: r, Deadline: d, Length: p})
		id++
		return id - 1
	}
	firstUnit := add(0, unit, unit)
	stride := 2*unit + eps + unit // gadget block plus a gap of unit
	gadgetStart := make([]core.Time, g)
	unitIDs := make([][]int, g)
	epsIDs := make([][]int, g)
	epspIDs := make([][]int, g)
	restIDs := make([][]int, g)
	for i := 1; i < g; i++ {
		o := unit + unit + core.Time(i-1)*stride // gap of unit after the first job
		gadgetStart[i] = o
		for k := 0; k < g; k++ {
			unitIDs[i] = append(unitIDs[i], add(o, o+unit, unit))
		}
		for k := 0; k < 2*g-2; k++ {
			epsIDs[i] = append(epsIDs[i], add(o+unit, o+unit+eps, eps))
		}
		for k := 0; k < 2; k++ {
			epspIDs[i] = append(epspIDs[i], add(o+unit, o+unit+epsp, epsp))
		}
		for k := 0; k < 2; k++ {
			restIDs[i] = append(restIDs[i], add(o+unit+epsp, o+unit+eps, eps-epsp))
		}
	}
	span := gadgetStart[g-1] + unit + eps
	flexIDs := make([]int, g)
	for i := 1; i < g; i++ {
		flexIDs[i] = add(0, span, unit)
	}
	flexible := &core.Instance{Name: fmt.Sprintf("fig10(g=%d,eps=%d,epsp=%d/%d)", g, eps, epsp, unit), G: g, Jobs: jobs}

	converted := flexible.Clone()
	converted.Name += "/dp-adversarial"
	for i := 1; i < g; i++ {
		idp := flexIDs[i]
		o := gadgetStart[i]
		converted.Jobs[idp] = core.Job{ID: idp, Release: o, Deadline: o + unit, Length: unit}
	}

	// Optimal packing: flexible jobs stacked on the first unit job; per
	// gadget, the g unit jobs on one machine and the 2g+2 small jobs split
	// into two machines of concurrency exactly g.
	opt := &core.BusySchedule{}
	first := core.Bundle{Placements: []core.Placement{{JobID: firstUnit, Start: 0}}}
	for i := 1; i < g; i++ {
		first.Placements = append(first.Placements, core.Placement{JobID: flexIDs[i], Start: 0})
	}
	opt.Bundles = append(opt.Bundles, first)
	place := func(b *core.Bundle, ids ...int) {
		for _, idp := range ids {
			b.Placements = append(b.Placements, core.Placement{JobID: idp, Start: flexible.Jobs[idp].Release})
		}
	}
	for i := 1; i < g; i++ {
		var units, s1, s2 core.Bundle
		place(&units, unitIDs[i]...)
		half := len(epsIDs[i]) / 2 // g-1 eps jobs per small bundle
		place(&s1, epsIDs[i][:half]...)
		place(&s1, epspIDs[i][0], restIDs[i][0])
		place(&s2, epsIDs[i][half:]...)
		place(&s2, epspIDs[i][1], restIDs[i][1])
		opt.Bundles = append(opt.Bundles, units, s1, s2)
	}
	optValue := core.Time(g)*unit + 2*core.Time(g-1)*eps
	return &Fig10Gadget{Flexible: flexible, Converted: converted, Opt: opt, OptValue: optValue}, nil
}

// Hardness builds a chain of k selector gadgets in the spirit of the
// NP-completeness construction for active time scheduling (Saha & Purohit,
// arXiv:2112.03255): their reduction forces binary open-this-block-or-that
// choices with jobs whose windows barely exceed their lengths, coupled by
// checker jobs across blocks. Gadget i here occupies slots [3i, 3i+3): a
// selector of length 2 whose 3-slot window admits exactly two tight
// placements, g-1 rigid unit jobs pinned to the middle slot (saturating it
// so the selector's placements compete for capacity), and a unit checker
// straddling this gadget's last slot and the next gadget's first, which
// couples consecutive gadgets and defeats any laminar decomposition. The
// LP relaxation splits the selectors fractionally, so the Benders master is
// maximally dual degenerate — the adversarial regime for pricing and for
// the hypersparse kernel equivalence suite. Requires k >= 1 and g >= 2;
// every instance is feasible with all slots open (the property suite
// asserts it).
func Hardness(k, g int) *core.Instance {
	if k < 1 {
		k = 1
	}
	if g < 2 {
		g = 2
	}
	var jobs []core.Job
	id := 0
	add := func(lo, hi, length core.Time) {
		jobs = append(jobs, core.Job{ID: id, Release: lo, Deadline: hi, Length: length})
		id++
	}
	for i := 0; i < k; i++ {
		base := core.Time(3 * i)
		add(base, base+3, 2) // selector: two tight placements
		for c := 0; c < g-1; c++ {
			add(base+1, base+2, 1) // pinned units saturate the middle slot
		}
		if i+1 < k {
			add(base+2, base+4, 1) // checker couples gadget i and i+1
		}
	}
	return &core.Instance{Name: fmt.Sprintf("hardness(k=%d,g=%d)", k, g), G: g, Jobs: jobs}
}
