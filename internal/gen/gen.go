// Package gen builds the workloads of the reproduction: the exact gadget
// families behind every tight example and figure in the paper (Figures 1,
// 3, 6-12 and the Section 3.5 integrality-gap construction) and seeded
// random instance families (flexible, interval, unit, proper, clique,
// laminar) for the empirical experiments.
//
// Gadgets with an ε parameter are expressed on an integer tick grid: Unit
// ticks play the role of length 1 and Eps ticks the role of ε, so all
// combinatorial arithmetic stays exact. Each gadget returns, alongside the
// instance, the paper-claimed optimal value and (where the paper draws one)
// an explicitly constructed optimal and/or adversarial schedule, so the
// experiments can verify claims with the core verifiers instead of trusting
// formulas.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// RandomConfig parameterizes the random families.
type RandomConfig struct {
	N       int   // number of jobs
	Horizon int   // time horizon T
	MaxLen  int   // maximum job length
	Slack   int   // maximum extra window beyond the length (0 = interval jobs)
	G       int   // parallelism bound
	Seed    int64 // RNG seed
}

// RandomFlexible returns a random active/busy-time instance with windows
// wider than lengths.
func RandomFlexible(c RandomConfig) *core.Instance {
	rng := rand.New(rand.NewSource(c.Seed))
	jobs := make([]core.Job, c.N)
	for i := range jobs {
		p := core.Time(1 + rng.Intn(c.MaxLen))
		slack := core.Time(rng.Intn(c.Slack + 1))
		r := core.Time(rng.Intn(max(1, c.Horizon-int(p+slack))))
		jobs[i] = core.Job{ID: i, Release: r, Deadline: r + p + slack, Length: p}
	}
	return &core.Instance{
		Name: fmt.Sprintf("random-flex(n=%d,T=%d,g=%d,seed=%d)", c.N, c.Horizon, c.G, c.Seed),
		G:    c.G, Jobs: jobs,
	}
}

// RandomInterval returns a random instance of rigid interval jobs.
func RandomInterval(c RandomConfig) *core.Instance {
	c.Slack = 0
	in := RandomFlexible(c)
	in.Name = fmt.Sprintf("random-interval(n=%d,T=%d,g=%d,seed=%d)", c.N, c.Horizon, c.G, c.Seed)
	return in
}

// RandomUnit returns a random instance of unit-length jobs (for the
// active-time unit-exact experiments).
func RandomUnit(c RandomConfig) *core.Instance {
	rng := rand.New(rand.NewSource(c.Seed))
	jobs := make([]core.Job, c.N)
	for i := range jobs {
		w := core.Time(1 + rng.Intn(max(1, c.Slack+1)))
		r := core.Time(rng.Intn(max(1, c.Horizon-int(w))))
		jobs[i] = core.Job{ID: i, Release: r, Deadline: r + w, Length: 1}
	}
	return &core.Instance{
		Name: fmt.Sprintf("random-unit(n=%d,T=%d,g=%d,seed=%d)", c.N, c.Horizon, c.G, c.Seed),
		G:    c.G, Jobs: jobs,
	}
}

// RandomClique returns interval jobs all sharing a common time point (a
// clique instance in the paper's terminology).
func RandomClique(c RandomConfig) *core.Instance {
	rng := rand.New(rand.NewSource(c.Seed))
	mid := core.Time(c.Horizon / 2)
	jobs := make([]core.Job, c.N)
	for i := range jobs {
		left := core.Time(rng.Intn(c.MaxLen)) + 1
		right := core.Time(rng.Intn(c.MaxLen)) + 1
		r := mid - left
		if r < 0 {
			r = 0
		}
		jobs[i] = core.Job{ID: i, Release: r, Deadline: mid + right, Length: mid + right - r}
	}
	return &core.Instance{
		Name: fmt.Sprintf("random-clique(n=%d,g=%d,seed=%d)", c.N, c.G, c.Seed),
		G:    c.G, Jobs: jobs,
	}
}

// RandomProper returns a proper interval instance: no job's window strictly
// contains another's (releases and deadlines are both increasing).
func RandomProper(c RandomConfig) *core.Instance {
	rng := rand.New(rand.NewSource(c.Seed))
	jobs := make([]core.Job, c.N)
	r, d := core.Time(0), core.Time(1+rng.Intn(c.MaxLen))
	for i := range jobs {
		jobs[i] = core.Job{ID: i, Release: r, Deadline: d, Length: d - r}
		r += core.Time(1 + rng.Intn(3))
		nd := d + core.Time(1+rng.Intn(3))
		d = nd
		if d <= r {
			d = r + 1
		}
	}
	return &core.Instance{
		Name: fmt.Sprintf("random-proper(n=%d,g=%d,seed=%d)", c.N, c.G, c.Seed),
		G:    c.G, Jobs: jobs,
	}
}

// RandomLaminar returns a laminar interval instance: two windows intersect
// only if one contains the other.
func RandomLaminar(c RandomConfig) *core.Instance {
	rng := rand.New(rand.NewSource(c.Seed))
	var jobs []core.Job
	id := 0
	var build func(lo, hi core.Time, depth int)
	build = func(lo, hi core.Time, depth int) {
		if id >= c.N || hi-lo < 1 {
			return
		}
		jobs = append(jobs, core.Job{ID: id, Release: lo, Deadline: hi, Length: hi - lo})
		id++
		if depth > 4 || hi-lo < 3 {
			return
		}
		mid := lo + 1 + core.Time(rng.Intn(int(hi-lo-1)))
		build(lo, mid, depth+1)
		build(mid, hi, depth+1)
	}
	for id < c.N {
		build(0, core.Time(c.Horizon), 0)
	}
	return &core.Instance{
		Name: fmt.Sprintf("random-laminar(n=%d,g=%d,seed=%d)", len(jobs), c.G, c.Seed),
		G:    c.G, Jobs: jobs[:min(len(jobs), c.N)],
	}
}
