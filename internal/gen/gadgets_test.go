package gen

import (
	"math"
	"testing"

	"repro/internal/activetime"
	"repro/internal/busytime"
	"repro/internal/core"
	"repro/internal/intervals"
)

func busyCost(t *testing.T, in *core.Instance, s *core.BusySchedule) core.Time {
	t.Helper()
	if err := core.VerifyBusy(in, s); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	c, err := s.Cost(in)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFig1OptimalPacking(t *testing.T) {
	in, opt := Fig1()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	cost := busyCost(t, in, opt)
	if dep := busytime.DemandProfileBound(in); cost != dep {
		t.Errorf("Fig1 packing cost %d != demand profile %d (not provably optimal)", cost, dep)
	}
	exact, err := busytime.SolveExactInterval(in, busytime.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ec := busyCost(t, in, exact); ec != cost {
		t.Errorf("exact OPT %d != Figure 1 packing %d", ec, cost)
	}
	if len(opt.Bundles) != 2 {
		t.Errorf("Figure 1 uses 2 machines, packing has %d", len(opt.Bundles))
	}
}

func TestFig3GadgetClaims(t *testing.T) {
	for _, g := range []int{3, 4, 5} {
		gd, err := Fig3(g)
		if err != nil {
			t.Fatal(err)
		}
		in := gd.Instance
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if !activetime.CheckFeasible(in, gd.OptOpen) {
			t.Errorf("g=%d: claimed optimal slot set infeasible", g)
		}
		if core.Time(len(gd.OptOpen)) != gd.OptValue {
			t.Errorf("g=%d: |OptOpen| = %d, want %d", g, len(gd.OptOpen), gd.OptValue)
		}
		if !activetime.IsMinimalFeasible(in, gd.BadOpen) {
			t.Errorf("g=%d: claimed bad solution not minimal feasible", g)
		}
		if core.Time(len(gd.BadOpen)) != gd.BadValue {
			t.Errorf("g=%d: |BadOpen| = %d, want %d", g, len(gd.BadOpen), gd.BadValue)
		}
		// The adversarial closing order reproduces the bad value
		// algorithmically.
		sched, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
			First:    gd.AdversarialFirst,
			Strategy: activetime.CloseLeftToRight,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sched.Cost() != gd.BadValue {
			t.Errorf("g=%d: adversarial MinimalFeasible cost %d, want %d",
				g, sched.Cost(), gd.BadValue)
		}
		// Optimality of OptValue for small g via exact search.
		if g == 3 {
			exact, err := activetime.SolveExact(in, activetime.ExactOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if exact.Cost() != gd.OptValue {
				t.Errorf("g=3: exact OPT %d, want %d", exact.Cost(), gd.OptValue)
			}
		}
	}
}

func TestIntegralityGapClaims(t *testing.T) {
	for _, g := range []int{2, 3, 4} {
		in := IntegralityGap(g)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		exact, err := activetime.SolveUnitExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Cost() != core.Time(2*g) {
			t.Errorf("g=%d: IP optimum %d, want %d", g, exact.Cost(), 2*g)
		}
		lpres, err := activetime.SolveLP(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lpres.Objective-float64(g+1)) > 1e-5 {
			t.Errorf("g=%d: LP optimum %v, want %d", g, lpres.Objective, g+1)
		}
	}
}

func TestFig6GadgetClaims(t *testing.T) {
	g, unit, eps := 3, core.Time(1000), core.Time(20)
	gd, err := Fig6(g, unit, eps)
	if err != nil {
		t.Fatal(err)
	}
	if err := gd.Flexible.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := gd.Converted.Validate(); err != nil {
		t.Fatal(err)
	}
	if !gd.Converted.AllInterval() {
		t.Error("converted instance is not all interval jobs")
	}
	optCost := busyCost(t, gd.Flexible, gd.Opt)
	if optCost != gd.OptValue {
		t.Errorf("opt packing cost %d, want %d", optCost, gd.OptValue)
	}
	// Optimality certificate: the packing meets the mass bound exactly.
	if mb := busytime.MassBound(gd.Flexible); math.Abs(float64(optCost)-mb) > 1e-9 {
		t.Errorf("opt packing %d does not meet mass bound %v", optCost, mb)
	}
	advCost := busyCost(t, gd.Flexible, gd.AdversarialGT)
	want := 6*core.Time(g)*unit - 4*core.Time(g)*eps
	if advCost != want {
		t.Errorf("adversarial GT cost %d, want %d", advCost, want)
	}
	// The ratio is (6g-o(eps))/(2g+2-o(eps)) and must approach 3 with g.
	prevRatio := 0.0
	for _, gg := range []int{3, 6, 12, 24} {
		gdg, err := Fig6(gg, unit, eps)
		if err != nil {
			t.Fatal(err)
		}
		oc := busyCost(t, gdg.Flexible, gdg.Opt)
		ac := busyCost(t, gdg.Flexible, gdg.AdversarialGT)
		ratio := float64(ac) / float64(oc)
		approx := 6 * float64(gg) / (2*float64(gg) + 2)
		if math.Abs(ratio-approx) > 0.1 {
			t.Errorf("g=%d: adversarial ratio %.3f, want about %.3f", gg, ratio, approx)
		}
		if ratio <= prevRatio {
			t.Errorf("g=%d: ratio %.3f did not increase toward 3", gg, ratio)
		}
		prevRatio = ratio
	}
	if prevRatio < 2.75 {
		t.Errorf("ratio at g=24 is %.3f, should be approaching 3", prevRatio)
	}
	// The converted instance's span must equal the flexible optimum span
	// achieved by stacking per gadget (sanity, not a paper claim).
	if sp := intervals.Span(gd.Converted.Jobs); sp != core.Time(g)*(2*unit-eps) {
		t.Errorf("converted span %d, want %d", sp, core.Time(g)*(2*unit-eps))
	}
}

func TestFig8GadgetClaims(t *testing.T) {
	unit, eps, epsp := core.Time(1000), core.Time(60), core.Time(25)
	gd, err := Fig8(unit, eps, epsp)
	if err != nil {
		t.Fatal(err)
	}
	optCost := busyCost(t, gd.Instance, gd.Opt)
	badCost := busyCost(t, gd.Instance, gd.Bad)
	if optCost != gd.OptValue || badCost != gd.BadValue {
		t.Errorf("costs (%d,%d), want (%d,%d)", optCost, badCost, gd.OptValue, gd.BadValue)
	}
	exact, err := busytime.SolveExactInterval(gd.Instance, busytime.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ec := busyCost(t, gd.Instance, exact); ec != optCost {
		t.Errorf("exact OPT %d != claimed opt %d", ec, optCost)
	}
	if r := float64(badCost) / float64(optCost); r < 1.8 {
		t.Errorf("bad/opt ratio %.3f, want near 2", r)
	}
}

func TestFig9GadgetClaims(t *testing.T) {
	g, unit, eps := 4, core.Time(1000), core.Time(10)
	gd, err := Fig9(g, unit, eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []*core.Instance{gd.Flexible, gd.DPOutput, gd.OptLayout} {
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !gd.DPOutput.AllInterval() || !gd.OptLayout.AllInterval() {
		t.Fatal("layouts must be interval instances")
	}
	dpDeP := busytime.DemandProfileBound(gd.DPOutput)
	wantDP := core.Time(2*g-1)*unit + core.Time(g)*core.Time(g-1)*eps
	if dpDeP != wantDP {
		t.Errorf("DeP(DP output) = %d, want %d (paper: 2g-1 + g(g-1)eps)", dpDeP, wantDP)
	}
	// The DP output's span is minimal: it equals the span lower bound of
	// the flexible instance (each flexible job hides entirely inside a
	// set), so no layout can have smaller span.
	if sp, want := busytime.SpanBound(gd.DPOutput), busytime.SpanBound(gd.OptLayout)-core.Time(g-1)*eps; sp > want+eps*core.Time(g)*core.Time(g) {
		t.Logf("DP span %d vs opt layout span %d", sp, want)
	}
	optDeP := busytime.DemandProfileBound(gd.OptLayout)
	ratio := float64(dpDeP) / float64(optDeP)
	if ratio < 1.6 || ratio > 2.0 {
		t.Errorf("DeP ratio %.3f, want in (1.6, 2.0] approaching 2", ratio)
	}
}

func TestFig10GadgetClaims(t *testing.T) {
	g, unit, eps, epsp := 3, core.Time(1000), core.Time(40), core.Time(15)
	gd, err := Fig10(g, unit, eps, epsp)
	if err != nil {
		t.Fatal(err)
	}
	if err := gd.Flexible.Validate(); err != nil {
		t.Fatal(err)
	}
	if !gd.Converted.AllInterval() {
		t.Fatal("converted instance must be all interval")
	}
	optCost := busyCost(t, gd.Flexible, gd.Opt)
	if optCost != gd.OptValue {
		t.Errorf("opt cost %d, want %d", optCost, gd.OptValue)
	}
	// Running the 2-approximation on the adversarial conversion must stay
	// within 4x the optimum (Theorem 10 upper bound)...
	pc, err := busytime.PairCover(gd.Converted)
	if err != nil {
		t.Fatal(err)
	}
	pcCost := busyCost(t, gd.Flexible, pc)
	if pcCost > 4*optCost {
		t.Errorf("PairCover on adversarial conversion: %d > 4*OPT = %d", pcCost, 4*optCost)
	}
	// ...and at least the conversion's own demand-profile floor, which
	// already exceeds the true optimum.
	if dep := busytime.DemandProfileBound(gd.Converted); pcCost < dep {
		t.Errorf("PairCover %d below conversion DeP %d", pcCost, dep)
	}
}

func TestRandomFamiliesShape(t *testing.T) {
	cfg := RandomConfig{N: 20, Horizon: 50, MaxLen: 6, Slack: 4, G: 3, Seed: 9}
	flex := RandomFlexible(cfg)
	if err := flex.Validate(); err != nil {
		t.Fatal(err)
	}
	iv := RandomInterval(cfg)
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	if !iv.AllInterval() {
		t.Error("RandomInterval produced flexible jobs")
	}
	unit := RandomUnit(cfg)
	if err := unit.Validate(); err != nil {
		t.Fatal(err)
	}
	if !unit.AllUnit() {
		t.Error("RandomUnit produced non-unit jobs")
	}
	clique := RandomClique(cfg)
	if err := clique.Validate(); err != nil {
		t.Fatal(err)
	}
	mid := core.Time(cfg.Horizon / 2)
	for _, j := range clique.Jobs {
		if !(j.Release < mid && j.Deadline > mid) && j.Release != mid {
			t.Errorf("clique job %v misses common point %d", j, mid)
		}
	}
	proper := RandomProper(cfg)
	if err := proper.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(proper.Jobs); i++ {
		a, b := proper.Jobs[i-1], proper.Jobs[i]
		if b.Release < a.Release || b.Deadline < a.Deadline {
			t.Errorf("proper violated: %v then %v", a, b)
		}
	}
	laminar := RandomLaminar(cfg)
	if err := laminar.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(laminar.Jobs); i++ {
		for k := i + 1; k < len(laminar.Jobs); k++ {
			a, b := laminar.Jobs[i].Window(), laminar.Jobs[k].Window()
			if a.Overlaps(b) {
				aInB := b.Start <= a.Start && a.End <= b.End
				bInA := a.Start <= b.Start && b.End <= a.End
				if !aInB && !bInA {
					t.Errorf("laminar violated: %v vs %v", a, b)
				}
			}
		}
	}
	// Determinism: same seed, same instance.
	again := RandomFlexible(cfg)
	for i := range flex.Jobs {
		if flex.Jobs[i] != again.Jobs[i] {
			t.Fatal("RandomFlexible not deterministic for fixed seed")
		}
	}
}
