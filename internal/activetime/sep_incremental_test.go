package activetime

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
)

// flowValue sums the flow on the separator's source edges — the max-flow
// value after a load.
func (s *separator) flowValue() float64 {
	v := 0.0
	for i := range s.srcEdges {
		v += s.net.Flow(s.srcEdges[i])
	}
	return v
}

// sameJobSets reports whether two harvested batches are equivalent: the
// leading entry — the source side of the minimum cut, which is canonical
// (residual reachability from the source is the same for every maximum
// flow) — must match positionally, and the per-deficient-job violators must
// match as an unordered collection. Their order is legitimately
// flow-dependent: the deficiency-gap sort keys on how the particular
// maximum flow distributed shortfall among jobs, and two equally maximal
// flows may tie-break it differently.
func sameJobSets(a, b [][]bool) bool {
	if len(a) != len(b) || len(a) == 0 {
		return len(a) == len(b)
	}
	keys := func(sets [][]bool) []string {
		out := make([]string, len(sets))
		for i, s := range sets {
			out[i] = jobSetKey(s)
		}
		return out
	}
	ka, kb := keys(a), keys(b)
	if ka[0] != kb[0] {
		return false
	}
	sort.Strings(ka[1:])
	sort.Strings(kb[1:])
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// compareSeparators drives one y through a persistent incremental separator
// and a persistent fresh-mode separator and asserts the flow-invariant
// facts: the max-flow value (the min-cut value is unique across maximum
// flows), the global min-cut source set (residual reachability from the
// source is the same for every maximum flow), and that every harvested set
// from either oracle is genuinely violated by y. With strict set it also
// asserts the harvested collections are identical (unordered beyond the
// canonical leading min cut): that holds along real Benders trajectories,
// while adversarial capacity collapses can leave two equally maximal flows
// distributing deficiency across jobs differently, changing which per-job
// violators surface.
func compareSeparators(t *testing.T, inc, fresh *separator, y []float64, cap int, strict bool, where string) {
	t.Helper()
	bInc := inc.separateAll(y, cap)
	bFresh := fresh.separateAll(y, cap)
	vInc, vFresh := inc.flowValue(), fresh.flowValue()
	if math.Abs(vInc-vFresh) > 1e-7 {
		t.Fatalf("%s: incremental max flow %.12f, fresh %.12f", where, vInc, vFresh)
	}
	if (len(bInc) == 0) != (len(bFresh) == 0) {
		t.Fatalf("%s: incremental violated=%v, fresh violated=%v", where, len(bInc) > 0, len(bFresh) > 0)
	}
	if len(bInc) > 0 && jobSetKey(bInc[0]) != jobSetKey(bFresh[0]) {
		t.Fatalf("%s: global min-cut source sets differ", where)
	}
	if strict && !sameJobSets(bInc, bFresh) {
		t.Fatalf("%s: incremental harvested %d sets, fresh %d sets, or sets differ", where, len(bInc), len(bFresh))
	}
	// Every harvested set must be genuinely violated by this y: the cut
	// inequality Σ_t min(g, cov_A(t))·y_t >= Σ_{j∈A} p_j must fail.
	for k, A := range append(append([][]bool{}, bInc...), bFresh...) {
		cols, vals, rhs := cutFor(inc.in, A)
		lhs := 0.0
		for i, c := range cols {
			lhs += vals[i] * y[c]
		}
		if lhs >= rhs-1e-9 {
			t.Fatalf("%s: harvested set %d not violated (lhs %.9f rhs %.9f)", where, k, lhs, rhs)
		}
	}
}

// TestSeparatorIncrementalEquivalence locks the incremental (flow-reusing)
// separation oracle against the fresh-per-round reference on every
// generator family: driven through the actual Benders y-trajectory of the
// default pipeline — re-played against both oracles round by round — the
// two must report identical min-cut values and identical violated-cut sets,
// including across rounds where slot capacities shrink and the incremental
// repair path has to cancel routed flow.
func TestSeparatorIncrementalEquivalence(t *testing.T) {
	const seedsPerFamily = 20
	rounds := 0
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			in := fam.make(seed)
			if !CheckFeasible(in, AllSlots(in)) {
				continue
			}
			// Re-run the default pipeline's master loop, but drive two
			// persistent separators with every round's optimum (the
			// incremental one steers the master, exactly like SolveLP).
			prob, err := newMaster(in)
			if err != nil {
				t.Fatalf("%s seed %d: %v", fam.name, seed, err)
			}
			inc := newSeparator(in)
			inc.incremental = true
			fresh := newSeparator(in)
			reg := newCutRegistry(prob.NumConstraints())
			var basis *lp.Basis
			cap := adaptiveBatchCap(in)
			for round := 0; round < 200; round++ {
				sol, nb, err := prob.ResolveFrom(basis)
				if err != nil || sol.Status != lp.Optimal {
					t.Fatalf("%s seed %d round %d: %v %v", fam.name, seed, round, err, sol)
				}
				basis = nb
				y := sol.X
				compareSeparators(t, inc, fresh, y, cap, true, fam.name)
				rounds++
				added := 0
				for _, A := range inc.separateAll(y, cap) {
					if reg.inMaster(A) {
						continue
					}
					cols, vals, rhs := cutFor(in, A)
					if err := prob.AddSparse(cols, vals, lp.GE, rhs); err != nil {
						t.Fatal(err)
					}
					reg.add(A, cols, vals, rhs)
					added++
				}
				if added == 0 {
					break
				}
			}
		}
	}
	if rounds < 120 {
		t.Fatalf("only %d separation rounds compared; want >= 120 (generator drift?)", rounds)
	}
}

// TestSeparatorIncrementalShrink targets the repair path directly: random
// y sequences that repeatedly collapse slots to zero force flow already
// routed through them to be cancelled, the case a monotone Benders
// trajectory rarely exercises hard.
func TestSeparatorIncrementalShrink(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := lpFamilies[int(seed)%len(lpFamilies)].make(seed)
		T := int(in.Horizon())
		inc := newSeparator(in)
		inc.incremental = true
		fresh := newSeparator(in)
		y := make([]float64, T)
		for step := 0; step < 25; step++ {
			switch step % 3 {
			case 0: // fresh random point
				for t2 := range y {
					y[t2] = rng.Float64()
				}
			case 1: // collapse a random window to zero (forces cancellation)
				lo := rng.Intn(T)
				hi := lo + 1 + rng.Intn(T-lo)
				for t2 := lo; t2 < hi; t2++ {
					y[t2] = 0
				}
			case 2: // perturb a few slots
				for k := 0; k < 3; k++ {
					y[rng.Intn(T)] = rng.Float64()
				}
			}
			compareSeparators(t, inc, fresh, y, maxBatchCuts, false, "shrink")
		}
	}
}

// TestSeparatorParallelWalkEquivalence locks the goroutine fan-out of the
// per-deficient-job residual walks: two persistent incremental separators
// driven through identical y sequences — one with the walks pinned serial —
// must harvest positionally identical batches. Equality is exact, not
// merely unordered: the parallel path precomputes the walks and replays
// them through the covered filter in the serial loop's order, so
// parallelism is required to be invisible in the output.
func TestSeparatorParallelWalkEquivalence(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		in := lpFamilies[int(seed)%len(lpFamilies)].make(seed)
		T := int(in.Horizon())
		par := newSeparator(in)
		par.incremental = true
		ser := newSeparator(in)
		ser.incremental = true
		ser.serialWalks = true
		y := make([]float64, T)
		for step := 0; step < 20; step++ {
			switch step % 3 {
			case 0:
				for t2 := range y {
					y[t2] = rng.Float64()
				}
			case 1:
				lo := rng.Intn(T)
				hi := lo + 1 + rng.Intn(T-lo)
				for t2 := lo; t2 < hi; t2++ {
					y[t2] = 0
				}
			case 2:
				for k := 0; k < 3; k++ {
					y[rng.Intn(T)] = rng.Float64()
				}
			}
			bPar := par.separateAll(y, maxBatchCuts)
			bSer := ser.separateAll(y, maxBatchCuts)
			if len(bPar) != len(bSer) {
				t.Fatalf("seed %d step %d: parallel harvested %d sets, serial %d",
					seed, step, len(bPar), len(bSer))
			}
			for k := range bPar {
				if jobSetKey(bPar[k]) != jobSetKey(bSer[k]) {
					t.Fatalf("seed %d step %d: set %d differs between parallel and serial walks",
						seed, step, k)
				}
			}
		}
	}
}

// FuzzSeparation fuzzes the incremental separation oracle against the
// fresh-per-load reference: any decodable instance plus any seed-derived
// sequence of y vectors must yield identical max-flow values, identical
// global min-cut source sets, and only genuinely violated harvested sets
// from a flow-reusing separator and a from-scratch one, at every step of
// the sequence (the per-job violator collections themselves are
// flow-dependent on adversarial sequences; see compareSeparators).
func FuzzSeparation(f *testing.F) {
	f.Add([]byte(`{"g":2,"jobs":[{"id":0,"release":0,"deadline":4,"length":2}]}`), int64(1))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":2,"length":2},{"id":1,"release":1,"deadline":3,"length":1}]}`), int64(7))
	f.Add([]byte(`{"g":3,"jobs":[{"id":0,"release":0,"deadline":6,"length":1},{"id":1,"release":2,"deadline":5,"length":3},{"id":2,"release":1,"deadline":4,"length":2}]}`), int64(42))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":1,"length":1},{"id":1,"release":0,"deadline":1,"length":1}]}`), int64(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		in, err := core.ReadInstance(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(in.Jobs) > 8 || in.Horizon() > 24 || in.G > 8 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		T := int(in.Horizon())
		inc := newSeparator(in)
		inc.incremental = true
		fresh := newSeparator(in)
		y := make([]float64, T)
		for step := 0; step < 8; step++ {
			for t2 := range y {
				switch rng.Intn(4) {
				case 0:
					y[t2] = 0
				case 1:
					y[t2] = 1
				default:
					y[t2] = rng.Float64()
				}
			}
			compareSeparators(t, inc, fresh, y, maxBatchCuts, false, "fuzz")
		}
	})
}
