// Package activetime implements the active-time scheduling algorithms of
// Chang, Khuller and Mukherjee (SPAA 2014), Sections 2-3: scheduling jobs
// with integral release times, deadlines and lengths on a single machine
// that can work on at most g jobs per slot, preemption allowed at integer
// boundaries, minimizing the number of active slots.
//
// The package provides:
//
//   - a max-flow feasibility oracle over the paper's network Gfeas (Fig. 2);
//   - MinimalFeasible, the 3-approximation of Theorem 1 (any minimal
//     feasible set of slots);
//   - SolveLP, the optimal value of the LP relaxation LP1, computed by
//     Benders-style cut generation with min-cut separation;
//   - RoundLP, the LP-rounding 2-approximation of Theorem 2 (right-shifted
//     solution, per-deadline rounding with proxy slots);
//   - SolveUnitExact, an exact polynomial algorithm for unit-length jobs
//     (the role played by Chang-Gabow-Khuller [2] in the paper), via
//     interval multicover solved as a difference-constraint system;
//   - SolveExact, an exact branch-and-bound baseline for small instances.
package activetime

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/flow"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ErrInfeasible is returned when the instance admits no feasible schedule
// even with every slot active.
var ErrInfeasible = errors.New("activetime: instance is infeasible")

// AllSlots returns every slot covered by at least one job window, sorted.
// Slots outside all windows can never be useful.
func AllSlots(in *core.Instance) []core.Time {
	seen := make(map[core.Time]bool)
	for _, j := range in.Jobs {
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			seen[t] = true
		}
	}
	out := make([]core.Time, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	core.SortSlots(out)
	return out
}

// feasibleFlow runs the Gfeas max-flow for the given jobs restricted to the
// given open slots. It returns the flow value and, if extract is true, the
// resulting integral assignment.
//
// The package deliberately keeps three builders of the Gfeas topology:
// feasibleFlow (one-shot, smallest network over just the open slots, and
// the only one that extracts assignments), feasChecker (persistent int64
// network over every window slot, re-capacitated per query), and the LP
// separator in lp.go (persistent float64 network with y-scaled
// capacities). Collapsing the one-shot path onto feasChecker was measured
// ~1.5x slower on BenchmarkDinicFeasibility — the full-universe build plus
// toggle pass costs more than constructing the trimmed network directly.
func feasibleFlow(g int, jobs []core.Job, open []core.Time, extract bool) (int64, map[int][]core.Time) {
	slotIdx := make(map[core.Time]int, len(open))
	// Nodes: 0 = source, 1..len(jobs) = jobs, then slots, then sink.
	n := flow.NewNetwork[int64](2+len(jobs)+len(open), 0)
	src := 0
	sink := 1 + len(jobs) + len(open)
	for i, t := range open {
		slotIdx[t] = 1 + len(jobs) + i
		n.AddEdge(slotIdx[t], sink, int64(g))
	}
	type jobEdge struct {
		job  int // index into jobs
		slot core.Time
		id   flow.EdgeID[int64]
	}
	var jes []jobEdge
	var total int64
	for i, j := range jobs {
		n.AddEdge(src, 1+i, j.Length)
		total += j.Length
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			if node, ok := slotIdx[t]; ok {
				id := n.AddEdge(1+i, node, 1)
				if extract {
					jes = append(jes, jobEdge{i, t, id})
				}
			}
		}
	}
	got := n.Max(src, sink)
	if !extract || got != total {
		return got, nil
	}
	assign := make(map[int][]core.Time, len(jobs))
	for _, je := range jes {
		if n.Flow(je.id) > 0 {
			assign[jobs[je.job].ID] = append(assign[jobs[je.job].ID], je.slot)
		}
	}
	for id := range assign {
		core.SortSlots(assign[id])
	}
	return got, assign
}

// CheckFeasible reports whether all jobs of the instance can be scheduled
// using only the given open slots. It builds a one-shot network; callers
// that probe many slot sets against the same jobs (the minimal-feasible
// closing loop, the rounding prefix checks) use the reusable feasChecker
// instead, which Resets and re-capacitates one persistent network.
func CheckFeasible(in *core.Instance, open []core.Time) bool {
	got, _ := feasibleFlow(in.G, in.Jobs, open, false)
	return got == in.TotalLength()
}

// feasChecker answers repeated "does this slot set carry these jobs?"
// max-flow queries over one persistent Gfeas network. The network spans
// every slot inside some job window; slots and jobs start switched off
// (capacity 0) and are toggled with setSlot/setJob, which only re-capacitate
// the affected edge.
//
// The checker is flow-carrying: the max flow routed by earlier queries
// survives every mutation. Capacity increases keep their flow verbatim
// (SetCapacityKeepFlow); capacity decreases clamp the flow and cancel the
// excess along the rest of each affected source→job→slot→sink path
// (PushBack) — cheap because every path in this bipartite network has
// length 3 — leaving a valid sub-maximal flow from which feasible() lets
// Dinic augment only the difference. The minimal-feasible closing loop, the
// rounding prefix checks and the exact search's DFS toggles therefore never
// recompute a flow from scratch: coldFlows counts the from-zero solves
// (exactly one, the first query) and is the counter the scaling gates pin.
type feasChecker struct {
	g         int
	jobs      []core.Job
	net       *flow.Network[int64]
	src, sink int
	jobEdges  []flow.EdgeID[int64]
	slotEdges map[core.Time]flow.EdgeID[int64]
	slotIn    map[core.Time][]jobSlotRef // per slot, incoming job→slot edges
	jobWins   [][]jobWinRef              // per job, its window edges with slot times
	total     int64                      // sum of lengths of switched-on jobs
	flow      int64                      // flow currently routed (always a valid flow)
	// Counters for the incremental-flow gates: augments is the number of
	// Dinic continuation calls, coldFlows how many of them started from zero
	// routed flow, freeCloses the trial closes answered without any solve.
	augments, coldFlows, freeCloses int
}

// jobSlotRef locates one job→slot edge from the slot side, with the job
// index needed to cancel excess on the job's supply edge.
type jobSlotRef struct {
	job int32
	id  flow.EdgeID[int64]
}

// jobWinRef locates one job→slot edge from the job side, with the slot time
// needed to cancel excess on the slot's sink edge.
type jobWinRef struct {
	t  core.Time
	id flow.EdgeID[int64]
}

// newFeasChecker builds the persistent network with all jobs and all slots
// switched off.
func newFeasChecker(g int, jobs []core.Job) *feasChecker {
	universe := make(map[core.Time]bool)
	for _, j := range jobs {
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			universe[t] = true
		}
	}
	fc := &feasChecker{
		g:         g,
		jobs:      jobs,
		net:       flow.NewNetwork[int64](2+len(jobs)+len(universe), 0),
		src:       0,
		sink:      1 + len(jobs) + len(universe),
		jobEdges:  make([]flow.EdgeID[int64], len(jobs)),
		slotEdges: make(map[core.Time]flow.EdgeID[int64], len(universe)),
		slotIn:    make(map[core.Time][]jobSlotRef, len(universe)),
		jobWins:   make([][]jobWinRef, len(jobs)),
	}
	node := 1 + len(jobs)
	slotNode := make(map[core.Time]int, len(universe))
	for t := range universe {
		slotNode[t] = node
		fc.slotEdges[t] = fc.net.AddEdge(node, fc.sink, 0)
		node++
	}
	for i, j := range jobs {
		fc.jobEdges[i] = fc.net.AddEdge(fc.src, 1+i, 0)
		wins := make([]jobWinRef, 0, int(j.LastSlot()-j.FirstSlot())+1)
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			id := fc.net.AddEdge(1+i, slotNode[t], 1)
			wins = append(wins, jobWinRef{t, id})
			fc.slotIn[t] = append(fc.slotIn[t], jobSlotRef{int32(i), id})
		}
		fc.jobWins[i] = wins
	}
	return fc
}

// setSlot opens or closes a slot (capacity g or 0 on its sink edge),
// preserving the routed flow; closing a slot that carries flow cancels the
// excess along the slot's incoming job edges and their supply edges. Slots
// outside every job window are ignored: they can never carry work, so their
// state cannot change feasibility.
func (fc *feasChecker) setSlot(t core.Time, open bool) {
	id, ok := fc.slotEdges[t]
	if !ok {
		return
	}
	var c int64
	if open {
		c = int64(fc.g)
	}
	if fc.net.Capacity(id) == c {
		return
	}
	ex := fc.net.SetCapacityKeepFlow(id, c)
	for _, ref := range fc.slotIn[t] {
		if ex == 0 {
			break
		}
		f := fc.net.Flow(ref.id)
		if f <= 0 {
			continue
		}
		if f > ex {
			f = ex
		}
		fc.net.PushBack(ref.id, f)
		fc.net.PushBack(fc.jobEdges[ref.job], f)
		fc.flow -= f
		ex -= f
	}
}

// setJob switches a job's demand on or off and keeps the demand total in
// step, preserving the routed flow (switching a flow-carrying job off
// cancels its flow along the window edges and their sink edges). Toggling an
// already-switched job is a no-op.
func (fc *feasChecker) setJob(i int, on bool) {
	var c int64
	if on {
		c = fc.jobs[i].Length
	}
	if fc.net.Capacity(fc.jobEdges[i]) == c {
		return
	}
	ex := fc.net.SetCapacityKeepFlow(fc.jobEdges[i], c)
	for _, ref := range fc.jobWins[i] {
		if ex == 0 {
			break
		}
		f := fc.net.Flow(ref.id)
		if f <= 0 {
			continue
		}
		if f > ex {
			f = ex
		}
		fc.net.PushBack(ref.id, f)
		fc.net.PushBack(fc.slotEdges[ref.t], f)
		fc.flow -= f
		ex -= f
	}
	if on {
		fc.total += fc.jobs[i].Length
	} else {
		fc.total -= fc.jobs[i].Length
	}
}

// feasible reports whether the switched-on jobs fit in the open slots. The
// routed flow can never exceed the switched-on demand, so a flow already at
// total is maximal and the query costs nothing; otherwise Dinic continues
// from the kept flow's residual state and augments only the difference.
func (fc *feasChecker) feasible() bool {
	if fc.flow == fc.total {
		return true
	}
	if fc.flow == 0 {
		fc.coldFlows++
	}
	fc.augments++
	fc.flow += fc.net.Max(fc.src, fc.sink)
	return fc.flow == fc.total
}

// trialCloseSlot attempts to close slot t, assuming the current flow is
// maximal and meets the demand (the closing loops' invariant). When the
// slot carries no flow the max flow survives verbatim and the close is free
// — no solve at all. Otherwise the close is repaired and Dinic reroutes
// just the cancelled units; if they cannot be rerouted the slot is reopened
// and the max flow restored before returning false, so the invariant holds
// on exit either way.
func (fc *feasChecker) trialCloseSlot(t core.Time) bool {
	id, ok := fc.slotEdges[t]
	if !ok {
		return true // outside every window: closing cannot affect feasibility
	}
	if fc.net.Flow(id) == 0 {
		fc.net.SetCapacityKeepFlow(id, 0)
		fc.freeCloses++
		return true
	}
	fc.setSlot(t, false)
	if fc.feasible() {
		return true
	}
	fc.setSlot(t, true)
	fc.feasible() // re-augment through the reopened slot; restores flow == total
	return false
}

// fullChecker builds a feasChecker with every job switched on and the given
// slots open — the starting state of the slot-closing loops.
func fullChecker(in *core.Instance, open []core.Time) *feasChecker {
	fc := newFeasChecker(in.G, in.Jobs)
	for i := range in.Jobs {
		fc.setJob(i, true)
	}
	for _, t := range open {
		fc.setSlot(t, true)
	}
	return fc
}

// Assign computes an integral assignment of all jobs to the given open
// slots, or ErrInfeasible.
func Assign(in *core.Instance, open []core.Time) (*core.ActiveSchedule, error) {
	got, assign := feasibleFlow(in.G, in.Jobs, open, true)
	if got != in.TotalLength() || assign == nil {
		return nil, ErrInfeasible
	}
	sorted := append([]core.Time(nil), open...)
	core.SortSlots(sorted)
	// Drop open slots that carry no work? No: the open set is the solution;
	// callers minimize it themselves. Keep as given.
	return &core.ActiveSchedule{Open: sorted, Assign: assign}, nil
}

// CloseStrategy determines the order in which MinimalFeasible attempts to
// close slots.
type CloseStrategy int

// Closing orders.
const (
	// CloseLeftToRight attempts earliest slots first.
	CloseLeftToRight CloseStrategy = iota
	// CloseRightToLeft attempts latest slots first; this tends to produce
	// right-shifted solutions.
	CloseRightToLeft
)

// MinimalOptions configures MinimalFeasible.
type MinimalOptions struct {
	Strategy CloseStrategy
	// First, if non-empty, lists slots to attempt closing before the rest;
	// gadget experiments use it to steer toward adversarial minimal
	// solutions (e.g. Figure 3).
	First []core.Time
	// Seed shuffles the order (after First) when Shuffle is true.
	Shuffle bool
	Seed    int64
}

// MinimalResult is a minimal feasible schedule plus the flow-effort
// counters of the closing loop. ColdFlows is the number of max-flow solves
// that started from zero routed flow — exactly 1 on any feasible instance,
// and the quantity the scaling gates pin (wall time is too noisy on the
// bench box; a from-scratch regression shows up here as O(T) cold flows).
type MinimalResult struct {
	Schedule *core.ActiveSchedule
	// Probes is the number of trial-closed slots (= |AllSlots|).
	Probes int
	// FreeCloses counts probes answered without any flow solve because the
	// slot carried no flow.
	FreeCloses int
	// FlowAugments counts Dinic continuation calls (incremental re-solves).
	FlowAugments int
	// ColdFlows counts flow solves that started from zero routed flow.
	ColdFlows int
}

// MinimalFeasible computes a minimal feasible solution (Definition 4):
// starting from every useful slot open, it closes slots in the configured
// order as long as the instance stays feasible. By Theorem 1, the result
// has at most 3*OPT active slots.
func MinimalFeasible(in *core.Instance, opts MinimalOptions) (*core.ActiveSchedule, error) {
	res, err := MinimalFeasibleStats(in, opts)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// MinimalFeasibleStats is MinimalFeasible plus the incremental-flow
// counters. The closing loop carries one max flow across all trial closes:
// each probe either closes a zero-flow slot for free, or cancels the
// closed slot's length-3 flow paths and asks Dinic to reroute just the
// cancelled units (reopening and re-augmenting on failure). The closing
// decisions are identical to recomputing a fresh max flow per probe — the
// max-flow value does not depend on which maximal flow is currently routed
// — so the produced schedule matches the historical from-scratch loop.
func MinimalFeasibleStats(in *core.Instance, opts MinimalOptions) (*MinimalResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	open := AllSlots(in)
	fc := fullChecker(in, open)
	if !fc.feasible() {
		return nil, ErrInfeasible
	}
	order := closeOrder(open, opts)
	isOpen := make(map[core.Time]bool, len(open))
	for _, t := range open {
		isOpen[t] = true
	}
	probes := 0
	for _, t := range order {
		if !isOpen[t] {
			continue
		}
		probes++
		if fc.trialCloseSlot(t) {
			isOpen[t] = false
		}
	}
	current := make([]core.Time, 0, len(open))
	for _, t := range open {
		if isOpen[t] {
			current = append(current, t)
		}
	}
	sched, err := Assign(in, current)
	if err != nil {
		return nil, fmt.Errorf("activetime: minimal solution lost feasibility: %w", err)
	}
	return &MinimalResult{
		Schedule:     sched,
		Probes:       probes,
		FreeCloses:   fc.freeCloses,
		FlowAugments: fc.augments,
		ColdFlows:    fc.coldFlows,
	}, nil
}

// IsMinimalFeasible reports whether the open set is feasible and no single
// slot can be closed while preserving feasibility. Like the closing loop it
// carries one max flow across the per-slot probes instead of recomputing.
func IsMinimalFeasible(in *core.Instance, open []core.Time) bool {
	fc := fullChecker(in, open)
	if !fc.feasible() {
		return false
	}
	for _, t := range open {
		if fc.trialCloseSlot(t) {
			return false
		}
	}
	return true
}

func closeOrder(open []core.Time, opts MinimalOptions) []core.Time {
	rest := make([]core.Time, 0, len(open))
	inFirst := make(map[core.Time]bool, len(opts.First))
	for _, t := range opts.First {
		inFirst[t] = true
	}
	for _, t := range open {
		if !inFirst[t] {
			rest = append(rest, t)
		}
	}
	switch {
	case opts.Shuffle:
		rng := newRand(opts.Seed)
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	case opts.Strategy == CloseRightToLeft:
		for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
			rest[i], rest[j] = rest[j], rest[i]
		}
	}
	return append(append([]core.Time(nil), opts.First...), rest...)
}
