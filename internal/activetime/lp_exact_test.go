package activetime

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// TestSolveLPExactMatchesFloat cross-checks the rational Benders engine
// against the float one on random instances.
func TestSolveLPExactMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	checked := 0
	for trial := 0; trial < 25; trial++ {
		in := randInstance(rng, 5, 7, 3)
		if !CheckFeasible(in, AllSlots(in)) {
			continue
		}
		exact, err := SolveLPExact(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		flt, err := SolveLP(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		obj, _ := exact.Objective.Float64()
		if math.Abs(obj-flt.Objective) > 1e-5 {
			t.Errorf("trial %d: exact %v != float %v (%+v)", trial, obj, flt.Objective, in)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestSolveLPExactGapGadget proves the gadget's LP optimum is EXACTLY g+1
// as a rational number, not merely up to float tolerance.
func TestSolveLPExactGapGadget(t *testing.T) {
	for _, g := range []int{2, 3, 4, 5} {
		in := gen.IntegralityGap(g)
		res, err := SolveLPExact(in)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Rat).SetInt64(int64(g + 1))
		if res.Objective.Cmp(want) != 0 {
			t.Errorf("g=%d: exact LP optimum %s, want exactly %d",
				g, res.Objective.RatString(), g+1)
		}
	}
}

// TestSolveLPExactInfeasible propagates infeasibility.
func TestSolveLPExactInfeasible(t *testing.T) {
	in := gen.IntegralityGap(2).Clone()
	in.G = 1 // 3 unit jobs per 2-slot pair with g=1 is infeasible
	if _, err := SolveLPExact(in); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}
