package activetime

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/lp"
)

// ExactLPResult is the outcome of the exact rational LP solve.
type ExactLPResult struct {
	// Objective is the exact optimal value of LP1.
	Objective *big.Rat
	// Y[t] is the exact fractional openness of slot t (index 0 unused).
	Y []*big.Rat
	// Cuts, Rounds and Pivots mirror LPResult: cut count, master solves,
	// and total rational simplex pivots.
	Cuts, Rounds, Pivots int
}

// SolveLPExact computes the optimal value of LP1 in exact rational
// arithmetic: the same batched Benders cut generation as SolveLP, but with
// the master solved by the big.Rat simplex. Separation still uses the float
// max-flow oracle (capacities are converted from the rational master
// solution), then the final master optimum is exact for the generated cut
// set; a last float separation confirms no cut is violated beyond
// tolerance. Batching matters doubly here: every saved round saves a cold
// rational solve of the whole master. Intended for small instances and for
// certifying SolveLP — e.g. it proves the integrality-gap gadget's LP
// optimum is exactly g+1.
func SolveLPExact(in *core.Instance) (*ExactLPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !CheckFeasible(in, AllSlots(in)) {
		return nil, ErrInfeasible
	}
	T := int(in.Horizon())
	prob, err := newMaster(in)
	if err != nil {
		return nil, err
	}
	sep := newSeparator(in)
	res := &ExactLPResult{Cuts: len(in.Jobs)}
	seen := make(map[string]bool)
	maxRounds := 20*T + 200
	for round := 0; round < maxRounds; round++ {
		res.Rounds++
		sol, err := lp.SolveExact(prob)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("activetime: exact LP master %v", sol.Status)
		}
		res.Pivots += sol.Iterations
		y := sol.Float64s()
		added := 0
		for _, A := range sep.separateAll(y) {
			key := jobSetKey(A)
			if seen[key] {
				continue
			}
			seen[key] = true
			cols, vals, rhs := cutFor(in, A)
			if err := prob.AddSparse(cols, vals, lp.GE, rhs); err != nil {
				return nil, err
			}
			added++
		}
		if added == 0 {
			res.Objective = sol.Objective
			res.Y = make([]*big.Rat, T+1)
			res.Y[0] = new(big.Rat)
			for t := 1; t <= T; t++ {
				res.Y[t] = new(big.Rat).Set(sol.X[t-1])
			}
			return res, nil
		}
		res.Cuts += added
	}
	return nil, fmt.Errorf("activetime: exact LP cut generation did not converge in %d rounds", maxRounds)
}
