package activetime

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/lp"
)

// ExactLPResult is the outcome of the exact rational LP solve.
type ExactLPResult struct {
	// Objective is the exact optimal value of LP1.
	Objective *big.Rat
	// Y[t] is the exact fractional openness of slot t (index 0 unused).
	Y []*big.Rat
	// Cuts, Rounds and Pivots mirror LPResult: cut count, master solves,
	// and total rational simplex pivots.
	Cuts, Rounds, Pivots int
}

// SolveLPExact computes the optimal value of LP1 in exact rational
// arithmetic: the same batched Benders cut generation as SolveLP, but with
// the master solved by the big.Rat simplex. Separation still uses the float
// max-flow oracle (capacities are converted from the rational master
// solution), then the final master optimum is exact for the generated cut
// set; a last float separation confirms no cut is violated beyond
// tolerance. Intended for small instances and for certifying SolveLP —
// e.g. it proves the integrality-gap gadget's LP optimum is exactly g+1.
//
// Each round after the first re-solves warm (lp.Problem.ResolveExactFrom):
// the previous round's rational dictionary is the starting basis and only
// the appended cuts are repaired by the exact dual simplex, instead of the
// cold from-scratch solve SolveLPExactCold performs. E17 reports the pivots
// both ways — warm re-solves cut them by an order of magnitude.
func SolveLPExact(in *core.Instance) (*ExactLPResult, error) {
	return solveLPExact(in, true)
}

// SolveLPExactCold is the pre-warm-start reference pipeline kept for
// ablation (E17's exact-pivot comparison): identical cuts and convergence,
// but every round solves the rational master from scratch.
func SolveLPExactCold(in *core.Instance) (*ExactLPResult, error) {
	return solveLPExact(in, false)
}

func solveLPExact(in *core.Instance, warm bool) (*ExactLPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !CheckFeasible(in, AllSlots(in)) {
		return nil, ErrInfeasible
	}
	T := int(in.Horizon())
	prob, err := newMaster(in)
	if err != nil {
		return nil, err
	}
	// The exact pipeline keeps the fresh-per-round separation oracle: its
	// cost is negligible next to the rational master solves, and it keeps
	// one pipeline of the cross-solver metamorphic suite independent of
	// the incremental-repair code path it cross-checks.
	sep := newSeparator(in)
	res := &ExactLPResult{Cuts: len(in.Jobs)}
	seen := make(map[string]bool)
	var basis *lp.RatBasis
	maxRounds := 20*T + 200
	for round := 0; round < maxRounds; round++ {
		res.Rounds++
		sol, nextBasis, err := prob.ResolveExactFrom(basis)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("activetime: exact LP master %v", sol.Status)
		}
		if warm {
			basis = nextBasis
		}
		res.Pivots += sol.Iterations
		y := sol.Float64s()
		added := 0
		for _, A := range sep.separateAll(y, maxBatchCuts) {
			key := jobSetKey(A)
			if seen[key] {
				continue
			}
			seen[key] = true
			cols, vals, rhs := cutFor(in, A)
			if err := prob.AddSparse(cols, vals, lp.GE, rhs); err != nil {
				return nil, err
			}
			added++
		}
		if added == 0 {
			res.Objective = sol.Objective
			res.Y = make([]*big.Rat, T+1)
			res.Y[0] = new(big.Rat)
			for t := 1; t <= T; t++ {
				res.Y[t] = new(big.Rat).Set(sol.X[t-1])
			}
			return res, nil
		}
		res.Cuts += added
	}
	return nil, fmt.Errorf("activetime: exact LP cut generation did not converge in %d rounds", maxRounds)
}
