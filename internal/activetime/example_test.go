package activetime_test

import (
	"fmt"

	"repro/internal/activetime"
	"repro/internal/core"
)

// ExampleMinimalFeasible computes a Theorem 1 minimal feasible schedule.
func ExampleMinimalFeasible() {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 2},
		{ID: 1, Release: 0, Deadline: 4, Length: 2},
	}}
	sched, err := activetime.MinimalFeasible(in, activetime.MinimalOptions{
		Strategy: activetime.CloseRightToLeft,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("active slots: %d\n", sched.Cost())
	// Output: active slots: 2
}

// ExampleRoundLP runs the Theorem 2 LP-rounding 2-approximation and prints
// its certificate.
func ExampleRoundLP() {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 3, Length: 2},
		{ID: 1, Release: 1, Deadline: 4, Length: 2},
	}}
	res, err := activetime.RoundLP(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("opened %d slots, within 2*LP: %v\n",
		res.Opened, float64(res.Opened) <= 2*res.LPValue+1e-9)
	// Output: opened 2 slots, within 2*LP: true
}

// ExampleSolveUnitExact solves a unit-job instance optimally.
func ExampleSolveUnitExact() {
	in := &core.Instance{G: 3, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 5, Length: 1},
		{ID: 1, Release: 0, Deadline: 5, Length: 1},
		{ID: 2, Release: 2, Deadline: 3, Length: 1},
	}}
	sched, err := activetime.SolveUnitExact(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("optimal active time: %d\n", sched.Cost())
	// Output: optimal active time: 1
}
