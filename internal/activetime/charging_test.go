package activetime

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// TestChargingLedgerRandom materializes the Section 3.2-3.4 charging for
// rounded solutions of random instances: every opened slot must find a
// charge (Lemma 6) and every charging group must stay within twice its LP
// mass.
func TestChargingLedgerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	built := 0
	kinds := map[ChargeKind]int{}
	for trial := 0; trial < 60; trial++ {
		in := randInstance(rng, 6, 9, 3)
		lpres, err := SolveLP(in)
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := roundWithLP(in, lpres)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		led, err := BuildChargingLedger(in, lpres, res.Schedule.Open)
		if err != nil {
			t.Fatalf("trial %d: %v (instance %+v)", trial, err, in)
		}
		if len(led.Charges) != res.Opened {
			t.Errorf("trial %d: ledger has %d charges for %d opened slots",
				trial, len(led.Charges), res.Opened)
		}
		for k, v := range led.Counts() {
			kinds[k] += v
		}
		built++
	}
	if built < 20 {
		t.Fatalf("only %d ledgers built", built)
	}
	t.Logf("charge kinds over %d instances: %v", built, kinds)
}

// TestChargingLedgerGapGadget exercises the ledger where the LP is
// maximally fractional (the integrality-gap construction).
func TestChargingLedgerGapGadget(t *testing.T) {
	for _, g := range []int{2, 3, 4} {
		in := gen.IntegralityGap(g)
		lpres, err := SolveLP(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := roundWithLP(in, lpres)
		if err != nil {
			t.Fatal(err)
		}
		led, err := BuildChargingLedger(in, lpres, res.Schedule.Open)
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		if len(led.Charges) != res.Opened {
			t.Errorf("g=%d: %d charges for %d opened", g, len(led.Charges), res.Opened)
		}
	}
}
