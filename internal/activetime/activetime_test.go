package activetime

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// randInstance produces a random feasible-looking active-time instance with
// horizon at most maxT.
func randInstance(rng *rand.Rand, maxN, maxT, maxG int) *core.Instance {
	n := 1 + rng.Intn(maxN)
	g := 1 + rng.Intn(maxG)
	jobs := make([]core.Job, n)
	for i := range jobs {
		r := core.Time(rng.Intn(maxT - 1))
		maxLen := core.Time(maxT) - r
		w := 1 + core.Time(rng.Intn(int(maxLen)))
		p := 1 + core.Time(rng.Intn(int(w)))
		jobs[i] = core.Job{ID: i, Release: r, Deadline: r + w, Length: p}
	}
	return &core.Instance{G: g, Jobs: jobs}
}

// bruteOPT enumerates all subsets of useful slots and returns the minimum
// feasible open count, or -1 if infeasible.
func bruteOPT(in *core.Instance) int {
	slots := AllSlots(in)
	if len(slots) > 18 {
		panic("bruteOPT: too many slots")
	}
	best := -1
	for mask := 0; mask < 1<<len(slots); mask++ {
		pc := bits.OnesCount(uint(mask))
		if best >= 0 && pc >= best {
			continue
		}
		open := make([]core.Time, 0, pc)
		for i, t := range slots {
			if mask&(1<<i) != 0 {
				open = append(open, t)
			}
		}
		if CheckFeasible(in, open) {
			best = pc
		}
	}
	return best
}

func TestCheckFeasibleBasic(t *testing.T) {
	in := &core.Instance{G: 1, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 2, Length: 2},
		{ID: 1, Release: 0, Deadline: 2, Length: 1},
	}}
	if CheckFeasible(in, []core.Time{1, 2}) {
		t.Error("g=1 cannot fit 3 units in 2 slots")
	}
	in.G = 2
	if !CheckFeasible(in, []core.Time{1, 2}) {
		t.Error("g=2 fits 3 units in 2 slots")
	}
	if CheckFeasible(in, []core.Time{1}) {
		t.Error("job 0 needs two distinct slots")
	}
}

func TestAssignProducesValidSchedule(t *testing.T) {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 3},
		{ID: 1, Release: 1, Deadline: 3, Length: 2},
		{ID: 2, Release: 0, Deadline: 2, Length: 1},
	}}
	sched, err := Assign(in, []core.Time{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyActive(in, sched); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
}

func TestMinimalFeasibleSmall(t *testing.T) {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 2},
		{ID: 1, Release: 0, Deadline: 4, Length: 2},
	}}
	sched, err := MinimalFeasible(in, MinimalOptions{Strategy: CloseRightToLeft})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyActive(in, sched); err != nil {
		t.Fatal(err)
	}
	if got := sched.Cost(); got != 2 {
		t.Errorf("minimal cost = %d, want 2 (two jobs of length 2, g=2)", got)
	}
	if !IsMinimalFeasible(in, sched.Open) {
		t.Error("result not minimal")
	}
}

func TestMinimalFeasibleInfeasible(t *testing.T) {
	in := &core.Instance{G: 1, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 2, Length: 2},
		{ID: 1, Release: 0, Deadline: 2, Length: 2},
	}}
	if _, err := MinimalFeasible(in, MinimalOptions{}); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinimalFeasibleWithin3OPT(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		in := randInstance(rng, 5, 8, 3)
		opt := bruteOPT(in)
		if opt < 0 {
			continue
		}
		for _, o := range []MinimalOptions{
			{Strategy: CloseLeftToRight},
			{Strategy: CloseRightToLeft},
			{Shuffle: true, Seed: int64(trial)},
		} {
			sched, err := MinimalFeasible(in, o)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := core.VerifyActive(in, sched); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if int(sched.Cost()) > 3*opt {
				t.Errorf("trial %d: minimal=%d > 3*OPT=%d (%+v)", trial, sched.Cost(), 3*opt, in)
			}
			if !IsMinimalFeasible(in, sched.Open) {
				t.Errorf("trial %d: non-minimal output", trial)
			}
		}
	}
}

func TestSolveExactMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(rng, 5, 7, 3)
		opt := bruteOPT(in)
		if opt < 0 {
			continue
		}
		sched, err := SolveExact(in, ExactOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.VerifyActive(in, sched); err != nil {
			t.Fatalf("trial %d: invalid exact schedule: %v", trial, err)
		}
		if int(sched.Cost()) != opt {
			t.Errorf("trial %d: exact=%d brute=%d for %+v", trial, sched.Cost(), opt, in)
		}
	}
}

func TestSolveUnitExactMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(8)
		g := 1 + rng.Intn(3)
		jobs := make([]core.Job, n)
		for i := range jobs {
			r := core.Time(rng.Intn(7))
			w := 1 + core.Time(rng.Intn(4))
			jobs[i] = core.Job{ID: i, Release: r, Deadline: r + w, Length: 1}
		}
		in := &core.Instance{G: g, Jobs: jobs}
		opt := bruteOPT(in)
		sched, err := SolveUnitExact(in)
		if opt < 0 {
			if err != ErrInfeasible {
				t.Errorf("trial %d: want ErrInfeasible, got %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v (instance %+v)", trial, err, in)
		}
		if err := core.VerifyActive(in, sched); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		if int(sched.Cost()) != opt {
			t.Errorf("trial %d: unit exact=%d brute=%d for %+v", trial, sched.Cost(), opt, in)
		}
	}
}

func TestSolveUnitExactRejectsNonUnit(t *testing.T) {
	in := &core.Instance{G: 1, Jobs: []core.Job{{ID: 0, Release: 0, Deadline: 3, Length: 2}}}
	if _, err := SolveUnitExact(in); err == nil {
		t.Error("non-unit instance accepted")
	}
}

func TestSolveLPLowerBoundsOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 5, 7, 3)
		opt := bruteOPT(in)
		if opt < 0 {
			continue
		}
		lpres, err := SolveLP(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lpres.Objective > float64(opt)+1e-6 {
			t.Errorf("trial %d: LP=%v > OPT=%d for %+v", trial, lpres.Objective, opt, in)
		}
		// The LP must also be at least the mass bound.
		mass := float64(in.TotalLength()) / float64(in.G)
		if lpres.Objective < mass-1e-6 {
			t.Errorf("trial %d: LP=%v < mass bound %v", trial, lpres.Objective, mass)
		}
	}
}

func TestRightShiftStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		in := randInstance(rng, 5, 8, 3)
		if !CheckFeasible(in, AllSlots(in)) {
			continue
		}
		lpres, err := SolveLP(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		shifted, err := RightShiftedY(in, lpres)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Lemma 3: the right-shifted solution is still LP-feasible.
		if _, violated := separate(in, shifted[1:]); violated {
			t.Errorf("trial %d: right-shifted solution violates a cut (instance %+v, y=%v)",
				trial, in, shifted)
		}
		// Mass is preserved.
		var a, b float64
		for _, v := range lpres.Y {
			a += v
		}
		for _, v := range shifted {
			b += v
		}
		if diff := a - b; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("trial %d: right shift changed mass %v -> %v", trial, a, b)
		}
	}
}

func TestRoundLPWithinTwiceLP(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	for trial := 0; trial < 50; trial++ {
		in := randInstance(rng, 6, 9, 3)
		if !CheckFeasible(in, AllSlots(in)) {
			continue
		}
		res, err := RoundLP(in)
		if err != nil {
			t.Fatalf("trial %d: %v (instance %+v)", trial, err, in)
		}
		if err := core.VerifyActive(in, res.Schedule); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		if float64(res.Opened) > 2*res.LPValue+1e-6 {
			t.Errorf("trial %d: opened %d > 2*LP %v (instance %+v)",
				trial, res.Opened, res.LPValue, in)
		}
		if res.Repairs != 0 {
			t.Errorf("trial %d: %d repairs needed (instance %+v)", trial, res.Repairs, in)
		}
		if res.InvariantViolated {
			t.Errorf("trial %d: 2*LP running invariant violated (instance %+v)", trial, in)
		}
	}
}

func TestRoundLPInfeasible(t *testing.T) {
	in := &core.Instance{G: 1, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 2, Length: 2},
		{ID: 1, Release: 0, Deadline: 2, Length: 2},
	}}
	if _, err := RoundLP(in); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}
