package activetime

import (
	"repro/internal/core"
	"repro/internal/lp"
)

// Cut lifecycle constants.
const (
	// purgeSlackTol is the slack beyond which a cut counts as inactive for
	// a round. It is far above the solver's 1e-6 feasibility tolerance, so
	// every purged row provably has its slack column basic — the
	// precondition of lp.Problem.RemoveRows (a nonbasic slack rests at
	// exactly zero).
	purgeSlackTol = 1e-5
	// purgeAfterRounds is how many consecutive inactive rounds a cut must
	// accumulate before it is purged. One slack round is routine (the
	// optimum wanders across alternative vertices); three in a row is the
	// registry's definition of "persistently slack".
	purgeAfterRounds = 3
	// purgeMinCuts keeps the registry from bothering with small masters:
	// below this many live cuts a purge saves less than the
	// refactorization it forces.
	purgeMinCuts = 24
)

// cutRecord is the lifecycle state of one Benders cut. slackRounds is the
// registry's age-in-inactivity counter: it measures how long the cut has
// been continuously slack, which by complementary slackness is exactly how
// long its dual price has been zero — one counter carries the age, slack
// and dual-activity views of the cut's life.
type cutRecord struct {
	key         string
	cols        []int
	vals        []float64
	rhs         float64
	inMaster    bool
	slackRounds int  // consecutive rounds with slack > purgeSlackTol
	everPurged  bool // purged once already; pinned forever if re-added
}

// cutRegistry tracks age, slack and dual activity for every Benders cut in
// the master and purges persistently slack cuts between separation rounds.
//
// Slack tracking doubles as dual-activity tracking: by complementary
// slackness a cut with positive slack has dual price zero, so
// "slack > tol for purgeAfterRounds consecutive rounds" is precisely "no
// dual activity for that long". Purging goes through
// lp.Problem.RemoveRows against the live basis — the slack columns of
// purged rows are basic, so the simplex state stays optimal and the next
// re-solve pays one refactorization instead of the reverted
// purge-and-rebuild's cold solve.
//
// Termination of cut generation survives purging: a purged cut may return
// (separation can rediscover it), but a record that was purged once is
// pinned for good on re-entry, so each cut key is added at most twice and
// the standard finite-cut-family argument goes through.
type cutRegistry struct {
	baseRows int          // seed covering rows, never purged
	records  []*cutRecord // live cuts in master-row order (row = baseRows + index)
	byKey    map[string]*cutRecord
	purged   int  // lifetime purge count
	disabled bool // set if a purge ever fails; purging is best-effort
}

func newCutRegistry(baseRows int) *cutRegistry {
	return &cutRegistry{baseRows: baseRows, byKey: make(map[string]*cutRecord)}
}

// inMaster reports whether the cut for this job-set key is currently a row
// of the master.
func (cr *cutRegistry) inMaster(key string) bool {
	rec := cr.byKey[key]
	return rec != nil && rec.inMaster
}

// add records the cut as appended to the master (the caller has just
// AddSparse'd it as the last row).
func (cr *cutRegistry) add(key string, cols []int, vals []float64, rhs float64) {
	rec := cr.byKey[key]
	if rec == nil {
		rec = &cutRecord{key: key, cols: cols, vals: vals, rhs: rhs}
		cr.byKey[key] = rec
	}
	rec.inMaster = true
	rec.slackRounds = 0
	cr.records = append(cr.records, rec)
}

// observeX updates every live cut's slack streak against the round's
// optimal point (solver variable order: x[t-1] is slot t).
func (cr *cutRegistry) observeX(x []float64) {
	for _, rec := range cr.records {
		slack := -rec.rhs
		for k, c := range rec.cols {
			slack += rec.vals[k] * x[c]
		}
		if slack > purgeSlackTol {
			rec.slackRounds++
		} else {
			rec.slackRounds = 0
		}
	}
}

// purge removes every persistently slack, not-yet-pinned cut from the
// master and the live basis, returning how many rows went. A failed
// removal (impossible while the slack-implies-basic invariant holds)
// disables purging for the rest of the solve rather than wedging it.
func (cr *cutRegistry) purge(prob *lp.Problem, basis *lp.Basis) int {
	if cr.disabled || len(cr.records) < purgeMinCuts {
		return 0
	}
	var drop []int
	for i, rec := range cr.records {
		if rec.slackRounds >= purgeAfterRounds && !rec.everPurged {
			drop = append(drop, cr.baseRows+i)
		}
	}
	if len(drop) == 0 {
		return 0
	}
	if err := prob.RemoveRows(drop, basis); err != nil {
		cr.disabled = true
		return 0
	}
	out := 0
	for _, rec := range cr.records {
		if rec.slackRounds >= purgeAfterRounds && !rec.everPurged {
			rec.inMaster = false
			rec.everPurged = true
			rec.slackRounds = 0
			continue
		}
		cr.records[out] = rec
		out++
	}
	cr.records = cr.records[:out]
	cr.purged += len(drop)
	return len(drop)
}

// maxBatchCutsHuge is the adaptive cap's ceiling past T ≈ 8192: at the
// canonical n = T/8 density a 16k-slot master needs thousands of cuts, and
// 32 per round forces hundreds of separation rounds each paying a master
// repair — 64 per round converges in roughly half the rounds for ~10%
// less wall time at T = 16384 (measured on the scaling family, seed 3).
// The classic maxBatchCuts ceiling stays in force through T = 4096, so
// every trajectory E17/E18 locked at those sizes is unchanged.
const maxBatchCutsHuge = 64

// maxBatchCutsGiant raises the ceiling once more past T ≈ 32768: with the
// hypersparse kernels a master repair no longer dominates a round, so the
// fixed per-round costs (separation probe, purge scan) become the axis and
// halving the round count pays directly. T <= 16384 keeps the 64-cap
// trajectory every earlier experiment locked.
const maxBatchCutsGiant = 128

// adaptiveBatchCap picks the per-round cut cap from the horizon: single-cut
// behavior below T ≈ 128 (small masters re-solve in microseconds, extra
// rows just pad them), ramping to the full batch of 32 by T ≈ 4096 where
// every saved separation round saves an expensive master repair, and on to
// 64 past T ≈ 8192 where round count itself becomes the scaling axis, and
// 128 from T = 32768 up where the hypersparse kernels have made the
// per-round fixed costs dominant. BenchmarkSolveLPSmall pins the small end
// of this policy; E17/E18 and the 16k–32k endurance tests the large end.
func adaptiveBatchCap(in *core.Instance) int {
	T := int(in.Horizon())
	c := T / 128
	if c < 1 {
		c = 1
	}
	ceil := maxBatchCutsHuge
	if T >= 32768 {
		ceil = maxBatchCutsGiant
	}
	if c > ceil {
		c = ceil
	}
	return c
}
