package activetime

import (
	"repro/internal/core"
	"repro/internal/lp"
)

// Cut lifecycle constants.
const (
	// purgeSlackTol is the slack beyond which a cut counts as inactive for
	// a round. It is far above the solver's 1e-6 feasibility tolerance, so
	// every purged row provably has its slack column basic — the
	// precondition of lp.Problem.RemoveRows (a nonbasic slack rests at
	// exactly zero).
	purgeSlackTol = 1e-5
	// purgeAfterRounds is how many consecutive inactive rounds a cut must
	// accumulate before it is purged. One slack round is routine (the
	// optimum wanders across alternative vertices); three in a row is the
	// registry's definition of "persistently slack".
	purgeAfterRounds = 3
	// purgeMinCuts keeps the registry from bothering with small masters:
	// below this many live cuts a purge saves less than the
	// refactorization it forces.
	purgeMinCuts = 24
)

// FNV-1a constants for the registry's job-set hashing.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashJobSet folds a job subset into a 64-bit FNV-1a hash of its packed
// bitmask, allocation-free. Trailing false positions are excluded (the hash
// runs only through the highest set bit), so the same position set hashes
// identically regardless of how many jobs the session has grown to — the
// canonical form that keeps dedup exact across AddJobs.
func hashJobSet(A []bool) uint64 {
	last := -1
	for i, a := range A {
		if a {
			last = i
		}
	}
	h := fnvOffset
	var cur byte
	for i := 0; i <= last; i++ {
		if A[i] {
			cur |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			h ^= uint64(cur)
			h *= fnvPrime
			cur = 0
		}
	}
	if last >= 0 && last&7 != 7 {
		h ^= uint64(cur)
		h *= fnvPrime
	}
	return h
}

// packJobSet packs a job subset into its canonical witness: the bitmask
// truncated after the highest set bit. Allocated once per *new* cut record;
// lookups never pack.
func packJobSet(A []bool) []byte {
	last := -1
	for i, a := range A {
		if a {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	w := make([]byte, last/8+1)
	for i := 0; i <= last; i++ {
		if A[i] {
			w[i/8] |= 1 << (uint(i) & 7)
		}
	}
	return w
}

// witnessMatches reports whether the stored witness encodes exactly the job
// set A — the collision check behind the 64-bit hash key: two distinct sets
// colliding on the hash are separated here, bit for bit, without allocating.
func witnessMatches(wit []byte, A []bool) bool {
	for i, a := range A {
		bit := false
		if i/8 < len(wit) {
			bit = wit[i/8]>>(uint(i)&7)&1 == 1
		}
		if bit != a {
			return false
		}
	}
	// No witness bit may survive beyond A's universe (possible only for
	// witnesses packed against a larger job count than the query's).
	for i := len(A); i < len(wit)*8; i++ {
		if wit[i/8]>>(uint(i)&7)&1 == 1 {
			return false
		}
	}
	return true
}

// cutRecord is the lifecycle state of one Benders cut. slackRounds is the
// registry's age-in-inactivity counter: it measures how long the cut has
// been continuously slack, which by complementary slackness is exactly how
// long its dual price has been zero — one counter carries the age, slack
// and dual-activity views of the cut's life. The cut's identity is the
// 64-bit hash of its job set plus the packed bitmask witness that separates
// hash collisions.
type cutRecord struct {
	hash        uint64
	wit         []byte // canonical packed job set (collision witness)
	cols        []int
	vals        []float64
	rhs         float64
	inMaster    bool
	slackRounds int  // consecutive rounds with slack > purgeSlackTol
	everPurged  bool // purged once already; pinned forever if re-added
}

// rowRef is one row of the live master, in master-row order: either a seed
// covering row for the job at position job, or a Benders cut record. The
// registry mirrors the master's full row order so that sessions can drop
// any mix of seed and cut rows through one RemoveRows call and keep every
// surviving index straight.
type rowRef struct {
	rec *cutRecord // nil for a seed covering row
	job int32      // seed rows: current position of the covered job
}

// cutRegistry tracks age, slack and dual activity for every Benders cut in
// the master and purges persistently slack cuts between separation rounds.
//
// Slack tracking doubles as dual-activity tracking: by complementary
// slackness a cut with positive slack has dual price zero, so
// "slack > tol for purgeAfterRounds consecutive rounds" is precisely "no
// dual activity for that long". Purging goes through
// lp.Problem.RemoveRows against the live basis — the slack columns of
// purged rows are basic, so the simplex state stays optimal and the next
// re-solve pays one refactorization instead of the reverted
// purge-and-rebuild's cold solve.
//
// Dedup is keyed by a 64-bit FNV-1a hash of the packed job set with a
// stored-witness collision check (the registry's previous string keys
// allocated O(n/8) bytes per candidate set per round; hashing is
// allocation-free and the witness is allocated once per distinct cut).
//
// Termination of cut generation survives purging: a purged cut may return
// (separation can rediscover it), but a record that was purged once is
// pinned for good on re-entry, so each cut key is added at most twice and
// the standard finite-cut-family argument goes through.
type cutRegistry struct {
	rows     []rowRef                // live master rows, in row order
	byHash   map[uint64][]*cutRecord // hash buckets; witnesses separate collisions
	hashFn   func(A []bool) uint64   // test hook; nil = hashJobSet
	purged   int                     // lifetime purge count
	disabled bool                    // set if a purge ever fails; purging is best-effort
}

// newCutRegistry mirrors a freshly built master whose first seedRows rows
// are the per-job seed covering cuts, in job-position order.
func newCutRegistry(seedRows int) *cutRegistry {
	cr := &cutRegistry{byHash: make(map[uint64][]*cutRecord)}
	for i := 0; i < seedRows; i++ {
		cr.rows = append(cr.rows, rowRef{job: int32(i)})
	}
	return cr
}

func (cr *cutRegistry) hashOf(A []bool) uint64 {
	if cr.hashFn != nil {
		return cr.hashFn(A)
	}
	return hashJobSet(A)
}

// lookup returns the record for exactly the job set A, or nil.
func (cr *cutRegistry) lookup(A []bool) *cutRecord {
	for _, rec := range cr.byHash[cr.hashOf(A)] {
		if witnessMatches(rec.wit, A) {
			return rec
		}
	}
	return nil
}

// inMaster reports whether the cut for this job set is currently a row of
// the master. Allocation-free: the hash walk plus witness compares never
// materialize a key.
func (cr *cutRegistry) inMaster(A []bool) bool {
	rec := cr.lookup(A)
	return rec != nil && rec.inMaster
}

// add records the cut for job set A as appended to the master (the caller
// has just AddSparse'd it as the last row).
func (cr *cutRegistry) add(A []bool, cols []int, vals []float64, rhs float64) {
	rec := cr.lookup(A)
	if rec == nil {
		h := cr.hashOf(A)
		rec = &cutRecord{hash: h, wit: packJobSet(A), cols: cols, vals: vals, rhs: rhs}
		cr.byHash[h] = append(cr.byHash[h], rec)
	}
	rec.inMaster = true
	rec.slackRounds = 0
	cr.rows = append(cr.rows, rowRef{rec: rec})
}

// addSeedRow records a fresh per-job seed covering row appended to the end
// of the master (session AddJobs; new jobs' seeds land after the cuts).
func (cr *cutRegistry) addSeedRow(jobPos int) {
	cr.rows = append(cr.rows, rowRef{job: int32(jobPos)})
}

// observeX updates every live cut's slack streak against the round's
// optimal point (solver variable order: x[t-1] is slot t).
func (cr *cutRegistry) observeX(x []float64) {
	for _, rr := range cr.rows {
		rec := rr.rec
		if rec == nil {
			continue
		}
		slack := -rec.rhs
		for k, c := range rec.cols {
			slack += rec.vals[k] * x[c]
		}
		if slack > purgeSlackTol {
			rec.slackRounds++
		} else {
			rec.slackRounds = 0
		}
	}
}

// liveCuts counts the cut rows currently in the master.
func (cr *cutRegistry) liveCuts() int {
	n := 0
	for _, rr := range cr.rows {
		if rr.rec != nil {
			n++
		}
	}
	return n
}

// rowsTouching returns the master-row mask of rows referencing any dead job
// position: the dead jobs' seed rows plus every cut whose witness includes a
// dead position. Those are exactly the rows a session removal must drop —
// every other row's coefficients mention only surviving jobs' slots.
func (cr *cutRegistry) rowsTouching(dead []bool) []bool {
	mask := make([]bool, len(cr.rows))
	for i, rr := range cr.rows {
		if rr.rec == nil {
			mask[i] = dead[rr.job]
			continue
		}
		for p := range dead {
			if dead[p] && p/8 < len(rr.rec.wit) && rr.rec.wit[p/8]>>(uint(p)&7)&1 == 1 {
				mask[i] = true
				break
			}
		}
	}
	return mask
}

// dropRows removes the given master-row indices from the mirror (the caller
// has just RemoveRows'd exactly those indices); surviving rows compact down
// preserving order, exactly as the master's do.
func (cr *cutRegistry) dropRows(dead []bool) {
	out := 0
	for i, rr := range cr.rows {
		if i < len(dead) && dead[i] {
			if rr.rec != nil {
				rr.rec.inMaster = false
			}
			continue
		}
		cr.rows[out] = rr
		out++
	}
	cr.rows = cr.rows[:out]
}

// purge removes every persistently slack, not-yet-pinned cut from the
// master and the live basis, returning how many rows went. A failed
// removal (impossible while the slack-implies-basic invariant holds)
// disables purging for the rest of the solve rather than wedging it.
func (cr *cutRegistry) purge(prob *lp.Problem, basis *lp.Basis) int {
	if cr.disabled || cr.liveCuts() < purgeMinCuts {
		return 0
	}
	var drop []int
	for i, rr := range cr.rows {
		if rr.rec != nil && rr.rec.slackRounds >= purgeAfterRounds && !rr.rec.everPurged {
			drop = append(drop, i)
		}
	}
	if len(drop) == 0 {
		return 0
	}
	if err := prob.RemoveRows(drop, basis); err != nil {
		cr.disabled = true
		return 0
	}
	dead := make([]bool, len(cr.rows))
	for _, i := range drop {
		dead[i] = true
		rec := cr.rows[i].rec
		rec.everPurged = true
		rec.slackRounds = 0
	}
	cr.dropRows(dead)
	cr.purged += len(drop)
	return len(drop)
}

// remapJobs rewrites every record and seed reference after the session
// compacted its job slice: posMap[old] is the new position of each
// surviving job (-1 for removed ones). Records whose witness touches a
// removed job are deleted outright — their job set can never recur over
// the surviving jobs — and every surviving witness/hash is rebuilt in the
// new position universe. The caller has already dropped the dead jobs'
// rows, so no deleted record is still in the master.
func (cr *cutRegistry) remapJobs(posMap []int32, newN int) {
	old := cr.byHash
	cr.byHash = make(map[uint64][]*cutRecord, len(old))
	newA := make([]bool, newN)
	for _, bucket := range old {
		for _, rec := range bucket {
			for i := range newA {
				newA[i] = false
			}
			alive := true
			for i := 0; i < len(posMap) && alive; i++ {
				if i/8 >= len(rec.wit) || rec.wit[i/8]>>(uint(i)&7)&1 == 0 {
					continue
				}
				if np := posMap[i]; np >= 0 {
					newA[np] = true
				} else {
					alive = false
				}
			}
			if !alive {
				continue
			}
			rec.wit = packJobSet(newA)
			rec.hash = cr.hashOf(newA)
			cr.byHash[rec.hash] = append(cr.byHash[rec.hash], rec)
		}
	}
	for i, rr := range cr.rows {
		if rr.rec == nil {
			cr.rows[i].job = posMap[rr.job]
		}
	}
}

// maxBatchCutsHuge is the adaptive cap's ceiling past T ≈ 8192: at the
// canonical n = T/8 density a 16k-slot master needs thousands of cuts, and
// 32 per round forces hundreds of separation rounds each paying a master
// repair — 64 per round converges in roughly half the rounds for ~10%
// less wall time at T = 16384 (measured on the scaling family, seed 3).
// The classic maxBatchCuts ceiling stays in force through T = 4096, so
// every trajectory E17/E18 locked at those sizes is unchanged.
const maxBatchCutsHuge = 64

// maxBatchCutsGiant raises the ceiling once more past T ≈ 32768: with the
// hypersparse kernels a master repair no longer dominates a round, so the
// fixed per-round costs (separation probe, purge scan) become the axis and
// halving the round count pays directly. T <= 16384 keeps the 64-cap
// trajectory every earlier experiment locked.
const maxBatchCutsGiant = 128

// adaptiveBatchCap picks the per-round cut cap from the horizon: single-cut
// behavior below T ≈ 128 (small masters re-solve in microseconds, extra
// rows just pad them), ramping to the full batch of 32 by T ≈ 4096 where
// every saved separation round saves an expensive master repair, and on to
// 64 past T ≈ 8192 where round count itself becomes the scaling axis, and
// 128 from T = 32768 up where the hypersparse kernels have made the
// per-round fixed costs dominant. BenchmarkSolveLPSmall pins the small end
// of this policy; E17/E18 and the 16k–32k endurance tests the large end.
func adaptiveBatchCap(in *core.Instance) int {
	T := int(in.Horizon())
	c := T / 128
	if c < 1 {
		c = 1
	}
	ceil := maxBatchCutsHuge
	if T >= 32768 {
		ceil = maxBatchCutsGiant
	}
	if c > ceil {
		c = ceil
	}
	return c
}
