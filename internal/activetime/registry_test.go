package activetime

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestCutPurgingMatchesReferences locks the lifecycle management end to end
// on the scaling family: the default pipeline (adaptive cap + purging) must
// agree with the never-purging single-cut reference to 1e-6 on every seed,
// and purging must actually fire on this workload — a policy that never
// triggers would vacuously "pass".
func TestCutPurgingMatchesReferences(t *testing.T) {
	totalPurged := 0
	for _, T := range []int{512, 1024} {
		for seed := int64(0); seed < 3; seed++ {
			in := gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: seed})
			def, err := SolveLP(in)
			if err != nil {
				t.Fatalf("T=%d seed=%d: SolveLP: %v", T, seed, err)
			}
			single, err := SolveLPSingleCut(in)
			if err != nil {
				t.Fatalf("T=%d seed=%d: SolveLPSingleCut: %v", T, seed, err)
			}
			if math.Abs(def.Objective-single.Objective) > 1e-6 {
				t.Errorf("T=%d seed=%d: purged pipeline LP %.9f != single-cut %.9f",
					T, seed, def.Objective, single.Objective)
			}
			if single.Purged != 0 {
				t.Errorf("T=%d seed=%d: single-cut reference purged %d cuts; must never purge",
					T, seed, single.Purged)
			}
			totalPurged += def.Purged
		}
	}
	if totalPurged == 0 {
		t.Error("cut purging never fired across the scaling workload; lifecycle policy is dead code")
	}
}

// TestAdaptiveBatchCapPolicy pins the horizon→cap curve the benchmarks
// justify: single-cut at tiny horizons, the classic full batch of 32 by
// T = 4096, the huge-horizon tier of 64 from T = 8192 up, where round
// count itself is the scaling axis, and the giant tier of 128 from
// T = 32768 where the hypersparse kernels leave per-round fixed costs
// dominant. T <= 16384 must keep the exact caps every locked experiment
// trajectory was measured under.
func TestAdaptiveBatchCapPolicy(t *testing.T) {
	for _, tc := range []struct{ T, want int }{
		{16, 1}, {64, 1}, {128, 1}, {256, 2}, {512, 4},
		{1024, 8}, {2048, 16}, {4096, 32}, {8192, 64}, {16384, 64},
		{32768, 128}, {65536, 128},
	} {
		in := &core.Instance{G: 1, Jobs: []core.Job{{
			Release: 0, Deadline: core.Time(tc.T), Length: 1,
		}}}
		if got := adaptiveBatchCap(in); got != tc.want {
			t.Errorf("adaptiveBatchCap(T=%d) = %d, want %d", tc.T, got, tc.want)
		}
	}
}

// TestRegistryPinsRepurgedCuts checks the termination guard: a cut key
// purged once and re-added is never purged again.
func TestRegistryPinsRepurgedCuts(t *testing.T) {
	reg := newCutRegistry(0)
	reg.add("k", []int{0}, []float64{1}, 1)
	rec := reg.byKey["k"]
	rec.everPurged = true // as if it had been purged and re-added
	rec.slackRounds = purgeAfterRounds + 5
	for i := 0; i < purgeMinCuts; i++ { // clear the small-master floor
		reg.add(string(rune('a'+i)), []int{0}, []float64{1}, 1)
	}
	if n := reg.purge(nil, nil); n != 0 {
		t.Fatalf("pinned cut purged (%d rows removed)", n)
	}
	if !rec.inMaster {
		t.Fatal("pinned cut lost its master row")
	}
}
