package activetime

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestCutPurgingMatchesReferences locks the lifecycle management end to end
// on the scaling family: the default pipeline (adaptive cap + purging) must
// agree with the never-purging single-cut reference to 1e-6 on every seed,
// and purging must actually fire on this workload — a policy that never
// triggers would vacuously "pass".
func TestCutPurgingMatchesReferences(t *testing.T) {
	totalPurged := 0
	for _, T := range []int{512, 1024} {
		for seed := int64(0); seed < 3; seed++ {
			in := gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: seed})
			def, err := SolveLP(in)
			if err != nil {
				t.Fatalf("T=%d seed=%d: SolveLP: %v", T, seed, err)
			}
			single, err := SolveLPSingleCut(in)
			if err != nil {
				t.Fatalf("T=%d seed=%d: SolveLPSingleCut: %v", T, seed, err)
			}
			if math.Abs(def.Objective-single.Objective) > 1e-6 {
				t.Errorf("T=%d seed=%d: purged pipeline LP %.9f != single-cut %.9f",
					T, seed, def.Objective, single.Objective)
			}
			if single.Purged != 0 {
				t.Errorf("T=%d seed=%d: single-cut reference purged %d cuts; must never purge",
					T, seed, single.Purged)
			}
			totalPurged += def.Purged
		}
	}
	if totalPurged == 0 {
		t.Error("cut purging never fired across the scaling workload; lifecycle policy is dead code")
	}
}

// TestAdaptiveBatchCapPolicy pins the horizon→cap curve the benchmarks
// justify: single-cut at tiny horizons, the classic full batch of 32 by
// T = 4096, the huge-horizon tier of 64 from T = 8192 up, where round
// count itself is the scaling axis, and the giant tier of 128 from
// T = 32768 where the hypersparse kernels leave per-round fixed costs
// dominant. T <= 16384 must keep the exact caps every locked experiment
// trajectory was measured under.
func TestAdaptiveBatchCapPolicy(t *testing.T) {
	for _, tc := range []struct{ T, want int }{
		{16, 1}, {64, 1}, {128, 1}, {256, 2}, {512, 4},
		{1024, 8}, {2048, 16}, {4096, 32}, {8192, 64}, {16384, 64},
		{32768, 128}, {65536, 128},
	} {
		in := &core.Instance{G: 1, Jobs: []core.Job{{
			Release: 0, Deadline: core.Time(tc.T), Length: 1,
		}}}
		if got := adaptiveBatchCap(in); got != tc.want {
			t.Errorf("adaptiveBatchCap(T=%d) = %d, want %d", tc.T, got, tc.want)
		}
	}
}

// setOf builds a job-set mask over n positions from the listed indices.
func setOf(n int, idx ...int) []bool {
	A := make([]bool, n)
	for _, i := range idx {
		A[i] = true
	}
	return A
}

// TestRegistryPinsRepurgedCuts checks the termination guard: a cut key
// purged once and re-added is never purged again.
func TestRegistryPinsRepurgedCuts(t *testing.T) {
	reg := newCutRegistry(0)
	n := purgeMinCuts + 2
	pinned := setOf(n, 0)
	reg.add(pinned, []int{0}, []float64{1}, 1)
	rec := reg.lookup(pinned)
	if rec == nil {
		t.Fatal("added cut not found by lookup")
	}
	rec.everPurged = true // as if it had been purged and re-added
	rec.slackRounds = purgeAfterRounds + 5
	for i := 1; i <= purgeMinCuts; i++ { // clear the small-master floor
		reg.add(setOf(n, i), []int{0}, []float64{1}, 1)
	}
	if n := reg.purge(nil, nil); n != 0 {
		t.Fatalf("pinned cut purged (%d rows removed)", n)
	}
	if !rec.inMaster {
		t.Fatal("pinned cut lost its master row")
	}
}

// refKey is the reference dedup key the registry's hash+witness scheme must
// agree with: the packed bitmask with trailing zero bytes stripped, so the
// same position set keys identically at every universe size (the property
// the canonical hash preserves across session AddJobs growth).
func refKey(A []bool) string {
	b := []byte(jobSetKey(A))
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

// TestRegistryKeyEquivalence locks the hash-key rework against the string
// reference: over randomized add/lookup sequences — including re-queries of
// the same set at a grown universe size — the registry's inMaster answers
// must match a reference map keyed by the canonical packed string.
func TestRegistryKeyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		reg := newCutRegistry(0)
		ref := make(map[string]bool)
		n := 1 + rng.Intn(40)
		for step := 0; step < 60; step++ {
			if rng.Intn(12) == 0 {
				n += rng.Intn(8) // the universe grows, as under Session.AddJobs
			}
			A := make([]bool, n)
			for i := range A {
				A[i] = rng.Intn(3) == 0
			}
			if got, want := reg.inMaster(A), ref[refKey(A)]; got != want {
				t.Fatalf("trial %d step %d: inMaster = %v, reference %v (set %v)", trial, step, got, want, A)
			}
			if !ref[refKey(A)] && rng.Intn(2) == 0 {
				reg.add(A, []int{0}, []float64{1}, 1)
				ref[refKey(A)] = true
			}
		}
	}
}

// TestRegistryHashCollisions forces every job set onto one hash bucket and
// checks the stored-witness compare still separates distinct sets exactly —
// the collision path a 64-bit key makes astronomically rare in production
// but which correctness must not depend on.
func TestRegistryHashCollisions(t *testing.T) {
	reg := newCutRegistry(0)
	reg.hashFn = func([]bool) uint64 { return 42 }
	sets := [][]bool{
		setOf(9, 0),
		setOf(9, 1),
		setOf(9, 0, 1),
		setOf(9, 8),
		setOf(9, 0, 8),
	}
	for i, A := range sets {
		for j, B := range sets[:i] {
			_ = j
			if !reg.inMaster(B) {
				t.Fatalf("set %d lost after later adds", j)
			}
		}
		if reg.inMaster(A) {
			t.Fatalf("set %d reported present before add", i)
		}
		reg.add(A, []int{0}, []float64{1}, 1)
		if !reg.inMaster(A) {
			t.Fatalf("set %d not found after add", i)
		}
	}
	if len(reg.byHash) != 1 {
		t.Fatalf("expected one collision bucket, got %d", len(reg.byHash))
	}
	if got := len(reg.byHash[42]); got != len(sets) {
		t.Fatalf("bucket holds %d records, want %d", got, len(sets))
	}
	// A grown-universe re-query of an existing set still matches its witness.
	grown := make([]bool, 40)
	grown[0] = true
	if !reg.inMaster(grown) {
		t.Fatal("canonical witness did not match the same set at a larger universe")
	}
}

// TestRegistryRemapJobs locks the session-compaction path: after jobs are
// removed and positions shift, records touching removed jobs vanish and
// surviving records answer under their remapped position sets.
func TestRegistryRemapJobs(t *testing.T) {
	reg := newCutRegistry(4) // seed rows for jobs 0..3
	reg.add(setOf(4, 0, 2), []int{0}, []float64{1}, 1)
	reg.add(setOf(4, 1, 3), []int{1}, []float64{1}, 1)
	reg.add(setOf(4, 3), []int{2}, []float64{1}, 1)
	// Remove job 1 (position 1): its seed row (row 1) and the cut {1,3}
	// (row 5) leave the master.
	dead := make([]bool, len(reg.rows))
	dead[1] = true
	dead[5] = true
	reg.dropRows(dead)
	posMap := []int32{0, -1, 1, 2}
	reg.remapJobs(posMap, 3)
	if !reg.inMaster(setOf(3, 0, 1)) { // was {0,2}
		t.Error("surviving cut {0,2} lost under remap")
	}
	if !reg.inMaster(setOf(3, 2)) { // was {3}
		t.Error("surviving cut {3} lost under remap")
	}
	if reg.lookup(setOf(3, 0, 2)) != nil && reg.lookup(setOf(3, 0, 2)).inMaster {
		t.Error("cut touching the removed job still reports in-master")
	}
	// Seed rows: jobs 0,2,3 survive at positions 0,1,2; rows are seed(0),
	// seed(2), seed(3), cut, cut after the drop+remap.
	wantJobs := []int32{0, 1, 2}
	seeds := 0
	for _, rr := range reg.rows {
		if rr.rec == nil {
			if rr.job != wantJobs[seeds] {
				t.Errorf("seed row %d maps to job %d, want %d", seeds, rr.job, wantJobs[seeds])
			}
			seeds++
		}
	}
	if seeds != 3 {
		t.Errorf("%d seed rows survive, want 3", seeds)
	}
}
