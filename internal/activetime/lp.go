package activetime

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/lp"
)

// LPResult holds the optimal solution of the active-time LP relaxation LP1
// of Section 3 of the paper.
type LPResult struct {
	// Y[t] is the fractional openness of slot t, for t in 1..T (Y[0] is
	// unused).
	Y []float64
	// Objective is sum_t Y[t], a lower bound on the optimal active time.
	Objective float64
	// Cuts is the number of Benders cuts generated; Rounds the number of
	// master solves; Pivots the total simplex pivots across all master
	// solves (cold plus warm), the solver-effort figure experiments report.
	Cuts, Rounds, Pivots int
	// Purged counts cuts removed by the registry's lifecycle management
	// (persistently slack rows excised from the live master); Refactors
	// the basis refactorizations across all master solves. Both are zero
	// for pipelines that disable the corresponding machinery.
	Purged, Refactors int
	// Kernel aggregates the simplex engine's triangular-solve kernel
	// activity across all master solves: hypersparse-vs-dense path counts,
	// hypersparse result supports, and dual working-set refills.
	Kernel lp.KernelStats
	// ColdFallbacks sums the master solves' warm-basis abandonments (see
	// lp.Solution.ColdFallbacks) and FallbackVerdicts collects their
	// triggering verdicts. Healthy trajectories keep the count at zero —
	// the scaling gates assert exactly that — so a warm-start regression
	// that silently degrades every re-solve to a cold solve is loud here,
	// never masked.
	ColdFallbacks    int
	FallbackVerdicts []string
}

// newMaster builds the Benders master over the y variables: unit objective,
// native 0 <= y_t <= 1 bounds (no constraint rows), and one seed covering
// cut per job (A = {j} gives Σ_{t∈win} y_t >= p_j).
func newMaster(in *core.Instance) (*lp.Problem, error) {
	T := int(in.Horizon())
	prob := lp.NewProblem(T) // variable t-1 is y_t
	for t := 1; t <= T; t++ {
		prob.SetObjective(t-1, 1)
		prob.SetUpper(t-1, 1)
	}
	for _, j := range in.Jobs {
		var cols []int
		var vals []float64
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			cols = append(cols, int(t)-1)
			vals = append(vals, 1)
		}
		if err := prob.AddSparse(cols, vals, lp.GE, float64(j.Length)); err != nil {
			return nil, err
		}
	}
	return prob, nil
}

// SolveLP computes an optimal solution of LP1:
//
//	min  Σ_t y_t
//	s.t. x_{t,j} <= y_t, Σ_j x_{t,j} <= g·y_t, Σ_t x_{t,j} >= p_j,
//	     0 <= y <= 1, x >= 0, x_{t,j} = 0 outside j's window.
//
// Rather than instantiating the T·n assignment variables, it projects the
// LP onto the y variables: for a fixed y, a feasible fractional x exists iff
// the max flow of the fractional feasibility network equals P = Σ p_j, and
// by max-flow/min-cut that holds iff for every job subset A
//
//	Σ_t min(g, cov_A(t))·y_t >= Σ_{j∈A} p_j ,
//
// where cov_A(t) is the number of jobs of A whose window contains t. SolveLP
// generates these cuts lazily from minimum cuts (Benders decomposition) and
// solves the growing master LP with the simplex engine. Each round either
// proves optimality or adds previously absent violated cuts, so the
// procedure terminates.
//
// Separation is batched: every round runs one max-flow probe and harvests
// every violated job set it surfaces — the source side of a minimum cut
// plus one Hall-style violator per uncovered deficient job (see
// separateAll) — deduplicated against the cuts already in the master. At
// large horizons this collapses the long single-cut tail (dozens of rounds
// re-solving the master for one cut each) into a handful of rounds.
//
// The whole pipeline is incremental: y upper bounds live inside the simplex
// (no constraint rows), each master re-solve warm-starts from the previous
// optimal basis via lp.Problem.ResolveFrom (dual simplex on the appended
// cuts), and the separation network is built once and only re-capacitated
// on its y-dependent edges each round. Two lifecycle policies ride on top:
// the per-round cut cap adapts to the horizon (single-cut at tiny T, the
// full batch of 32 at T >= 4096 — see adaptiveBatchCap), and a cut
// registry purges persistently slack cuts from the live master between
// rounds (see cutRegistry), which keeps the row count — the axis per-pivot
// cost scales on — near the working set the optimum actually binds.
func SolveLP(in *core.Instance) (*LPResult, error) {
	return solveLP(in, lpOptions{batchCap: 0, purge: true})
}

// SolveLPSingleCut is the PR 1 reference pipeline kept for metamorphic
// testing and ablation: identical master and separation oracle, but each
// round adds only the single cut induced by the global minimum cut, and no
// cut is ever purged. The optimum is the same as SolveLP's; only the effort
// differs (the property suite asserts the former, the scaling experiment
// reports the latter).
func SolveLPSingleCut(in *core.Instance) (*LPResult, error) {
	return solveLP(in, lpOptions{batchCap: 1})
}

// SolveLPFixedBatch is the ablation pipeline behind BenchmarkSolveLPSmall
// and E18: the batched separation of SolveLP with a fixed per-round cut cap
// instead of the adaptive policy, and no purging. cap is clamped to
// [1, 32].
func SolveLPFixedBatch(in *core.Instance, cap int) (*LPResult, error) {
	if cap < 1 {
		cap = 1
	}
	if cap > maxBatchCuts {
		cap = maxBatchCuts
	}
	return solveLP(in, lpOptions{batchCap: cap})
}

// SolveLPPricing is the pricing-rule ablation entry point mirroring
// SolveLPFixedBatch: the default pipeline (adaptive batch cap, purging,
// incremental separation) with the master's simplex pricing pinned to the
// given rule. SolveLP itself runs lp.PricingSteepestEdge; the Dantzig and
// devex rules exist for E18's pricing columns and the cross-solver
// property suite, which asserts all three reach the exact optimum.
func SolveLPPricing(in *core.Instance, rule lp.PricingRule) (*LPResult, error) {
	return solveLP(in, lpOptions{purge: true, pricing: rule})
}

// SolveLPFactorization is the factorization-rule ablation entry point
// mirroring SolveLPPricing: the default pipeline with the master's basis
// representation pinned to the given rule. SolveLP itself runs
// lp.FactorizationFT (Forrest–Tomlin updates); the product-form eta file
// (lp.FactorizationPFI) exists for E18's ablation columns, the CI endurance
// gate, and the cross-solver property suite, which asserts both rules reach
// the exact optimum.
func SolveLPFactorization(in *core.Instance, rule lp.FactorizationRule) (*LPResult, error) {
	return solveLP(in, lpOptions{purge: true, factorization: rule})
}

// lpOptions selects the cut lifecycle and pricing policy of one solveLP run.
type lpOptions struct {
	batchCap int            // cuts per separation round; 0 = adaptive in the horizon
	purge    bool           // purge persistently slack cuts between rounds
	pricing  lp.PricingRule // master pricing rule (zero value = steepest edge)
	// factorization selects the master's basis representation (zero value =
	// Forrest–Tomlin updates; lp.FactorizationPFI is the eta-file ablation).
	factorization lp.FactorizationRule
	// denseKernels pins the master's triangular solves to the dense path
	// (lp.Problem.SetDenseKernels); pivotHook observes every master basis
	// change (lp.Problem.SetPivotHook). Both exist for the kernel
	// equivalence suite, which replays identical pipelines under both
	// kernel paths and asserts identical pivot sequences.
	denseKernels bool
	pivotHook    func(row, col int)
}

// solveLP runs every one-shot pipeline through the session machinery: a
// fresh Session whose first Solve is exactly the cold Benders loop. Sessions
// kept alive after this call additionally accept AddJobs/RemoveJobs deltas
// (see Session); routing the one-shot entry points through the same code
// path is what keeps the delta-vs-cold metamorphic suite meaningful.
func solveLP(in *core.Instance, opts lpOptions) (*LPResult, error) {
	s, err := newSession(in, opts)
	if err != nil {
		return nil, err
	}
	return s.Solve()
}

// jobSetKey packs a job subset into a compact map key. The hot-path
// registry dedup no longer uses it (hashJobSet + witness compares are
// allocation-free; see cutRegistry); it remains for the exact engine's
// small-instance cut map and the separation tests' set comparisons.
func jobSetKey(A []bool) string {
	b := make([]byte, (len(A)+7)/8)
	for i, a := range A {
		if a {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// separator is the reusable Benders separation oracle: the fractional
// feasibility network of the paper is built once per SolveLP call, and each
// round only the y-dependent capacities (slot→sink g·y_t, job→slot y_t) are
// rewritten before re-running max-flow.
//
// In incremental mode (every solve pipeline; see loadIncremental) the
// previous round's flow survives re-capacitation: only edges whose capacity
// shrank below their flow are repaired — the excess cancelled along the
// rest of its source→job→slot→sink path, which is cheap because every path
// in this bipartite network has length 3 — and Max then augments from the
// repaired residual state, routing just the difference instead of the full
// demand P over a ~T-node network every round. Fresh mode (load) rebuilds
// the flow from zero and is kept as the equivalence-test reference.
//
// The network also survives instance deltas (Session): jobNode/slotNode map
// job positions and slots to their flow-network nodes, so growth appends
// nodes past the original sink (addSlots, addJob) and job removal
// (removeJobs) cancels the departed jobs' routed flow edge-locally with the
// same SetCapacityKeepFlow+PushBack repair the incremental loads use,
// leaving the surviving flow intact instead of rebuilding the network.
type separator struct {
	in          *core.Instance
	net         *flow.Network[float64]
	src, sink   int
	jobNode     []int                    // index i: flow node of job i
	slotNode    []int                    // index t-1: flow node of slot t
	srcEdges    []flow.EdgeID[float64]   // index i: source → job i
	slotEdges   []flow.EdgeID[float64]   // index t-1: slot t → sink
	jobEdges    [][]flow.EdgeID[float64] // per job, per window slot offset
	slotJobs    [][]slotRef              // transpose of jobEdges: per slot, incoming job edges
	total       float64
	incremental bool
	// serialWalks pins separateAll's residual walks to the sequential
	// path; the parallel-vs-serial equality test flips it to assert the
	// fan-out is a pure wall-time optimization.
	serialWalks bool
}

// slotRef locates one job→slot edge from the slot side: jobEdges[job][k].
type slotRef struct {
	job, k int32
}

func newSeparator(in *core.Instance) *separator {
	const eps = 1e-12
	T := int(in.Horizon())
	nJobs := len(in.Jobs)
	s := &separator{
		in:        in,
		net:       flow.NewNetwork[float64](2+nJobs+T, eps),
		src:       0,
		sink:      1 + nJobs + T,
		jobNode:   make([]int, nJobs),
		slotNode:  make([]int, T),
		srcEdges:  make([]flow.EdgeID[float64], nJobs),
		slotEdges: make([]flow.EdgeID[float64], T),
		jobEdges:  make([][]flow.EdgeID[float64], nJobs),
		slotJobs:  make([][]slotRef, T),
	}
	for t := 1; t <= T; t++ {
		s.slotNode[t-1] = 1 + nJobs + t - 1
		s.slotEdges[t-1] = s.net.AddEdge(s.slotNode[t-1], s.sink, 0)
	}
	for i, j := range in.Jobs {
		s.jobNode[i] = 1 + i
		s.srcEdges[i] = s.net.AddEdge(s.src, s.jobNode[i], float64(j.Length))
		s.total += float64(j.Length)
		ids := make([]flow.EdgeID[float64], 0, int(j.LastSlot()-j.FirstSlot())+1)
		for k, t := 0, j.FirstSlot(); t <= j.LastSlot(); k, t = k+1, t+1 {
			ids = append(ids, s.net.AddEdge(s.jobNode[i], s.slotNode[t-1], 0))
			s.slotJobs[t-1] = append(s.slotJobs[t-1], slotRef{int32(i), int32(k)})
		}
		s.jobEdges[i] = ids
	}
	return s
}

// addSlots grows the slot axis to newT slots: new slot nodes appended past
// the original sink, each with a zero-capacity slot→sink edge that the next
// load re-capacitates from y. Growth never renumbers an existing node, so
// all routed flow and every stored EdgeID stay valid.
func (s *separator) addSlots(newT int) {
	for t := len(s.slotNode); t < newT; t++ {
		node := s.net.AddNode()
		s.slotNode = append(s.slotNode, node)
		s.slotEdges = append(s.slotEdges, s.net.AddEdge(node, s.sink, 0))
		s.slotJobs = append(s.slotJobs, nil)
	}
}

// addJob splices a new job (at position len(jobNode)) into the live network:
// one node, a supply edge carrying its length, and zero-capacity window
// edges. The job's demand is routed by the next load's Max augmentation on
// top of the surviving flow. The slot axis must already cover the job's
// window (addSlots).
func (s *separator) addJob(j core.Job) {
	i := len(s.jobNode)
	node := s.net.AddNode()
	s.jobNode = append(s.jobNode, node)
	s.srcEdges = append(s.srcEdges, s.net.AddEdge(s.src, node, float64(j.Length)))
	s.total += float64(j.Length)
	ids := make([]flow.EdgeID[float64], 0, int(j.LastSlot()-j.FirstSlot())+1)
	for k, t := 0, j.FirstSlot(); t <= j.LastSlot(); k, t = k+1, t+1 {
		ids = append(ids, s.net.AddEdge(node, s.slotNode[t-1], 0))
		s.slotJobs[t-1] = append(s.slotJobs[t-1], slotRef{int32(i), int32(k)})
	}
	s.jobEdges = append(s.jobEdges, ids)
}

// removeJobs detaches the masked jobs from the live network without touching
// anyone else's flow: each dead job's window edges are clamped to zero
// capacity with the excess cancelled along the rest of its length-3 paths
// (the loadIncremental repair), its supply edge closed, and the per-job
// arrays compacted to the surviving positions. Must run before the caller
// compacts its job slice — the dead jobs' windows are still read here. The
// dead nodes stay in the network, unreachable behind zero capacities.
func (s *separator) removeJobs(dead []bool) {
	for i, j := range s.in.Jobs {
		if !dead[i] {
			continue
		}
		ids := s.jobEdges[i]
		for k, t := 0, j.FirstSlot(); t <= j.LastSlot(); k, t = k+1, t+1 {
			if ex := s.net.SetCapacityKeepFlow(ids[k], 0); ex > 0 {
				s.net.PushBack(s.srcEdges[i], ex)
				s.net.PushBack(s.slotEdges[t-1], ex)
			}
		}
		s.net.SetCapacityKeepFlow(s.srcEdges[i], 0)
		s.total -= float64(j.Length)
	}
	out := 0
	for i := range s.jobEdges {
		if dead[i] {
			continue
		}
		s.jobNode[out] = s.jobNode[i]
		s.srcEdges[out] = s.srcEdges[i]
		s.jobEdges[out] = s.jobEdges[i]
		out++
	}
	s.jobNode = s.jobNode[:out]
	s.srcEdges = s.srcEdges[:out]
	for i := out; i < len(s.jobEdges); i++ {
		s.jobEdges[i] = nil
	}
	s.jobEdges = s.jobEdges[:out]
	for t := range s.slotJobs {
		s.slotJobs[t] = s.slotJobs[t][:0]
	}
	np := 0
	for i, j := range s.in.Jobs {
		if dead[i] {
			continue
		}
		for k, t := 0, j.FirstSlot(); t <= j.LastSlot(); k, t = k+1, t+1 {
			s.slotJobs[t-1] = append(s.slotJobs[t-1], slotRef{int32(np), int32(k)})
		}
		np++
	}
}

// load solves the feasibility subproblem for y, reporting whether y is
// infeasible (max flow short of the total demand). Incremental mode reuses
// the previous round's flow; fresh mode rebuilds it from zero.
func (s *separator) load(y []float64) bool {
	if s.incremental {
		return s.loadIncremental(y)
	}
	s.net.Reset()
	g := float64(s.in.G)
	for t := range y {
		s.net.SetCapacity(s.slotEdges[t], g*y[t])
	}
	for i, j := range s.in.Jobs {
		ids := s.jobEdges[i]
		for k, t := 0, j.FirstSlot(); t <= j.LastSlot(); k, t = k+1, t+1 {
			s.net.SetCapacity(ids[k], y[t-1])
		}
	}
	got := s.net.Max(s.src, s.sink)
	return got < s.total-1e-6
}

// loadIncremental re-capacitates the y-dependent edges while keeping the
// flow routed in earlier rounds, repairs conservation where a capacity
// shrank below its flow, and lets Max augment only the difference.
//
// Every flow path here is source→job→slot→sink, so each repair is local:
// clamping a job→slot edge cancels the excess on that job's supply edge and
// that slot's sink edge; clamping a slot→sink edge cancels the excess
// across the slot's incoming job edges (and their supply edges) until the
// slot's inflow matches its new outflow. After the repair pass the flow is
// again a valid (sub-maximal) flow of the re-capacitated network, so
// continuing Dinic from the residual state yields a true maximum flow and
// the same unique min-cut value a fresh solve finds. Edges whose capacity
// is unchanged from the previous round — the common case, since successive
// master optima move few y_t — are skipped entirely.
func (s *separator) loadIncremental(y []float64) bool {
	g := float64(s.in.G)
	for i, j := range s.in.Jobs {
		ids := s.jobEdges[i]
		for k, t := 0, j.FirstSlot(); t <= j.LastSlot(); k, t = k+1, t+1 {
			c := y[t-1]
			if c == s.net.Capacity(ids[k]) {
				continue
			}
			if ex := s.net.SetCapacityKeepFlow(ids[k], c); ex > 0 {
				s.net.PushBack(s.srcEdges[i], ex)
				s.net.PushBack(s.slotEdges[t-1], ex)
			}
		}
	}
	for t := range y {
		c := g * y[t]
		if c == s.net.Capacity(s.slotEdges[t]) {
			continue
		}
		ex := s.net.SetCapacityKeepFlow(s.slotEdges[t], c)
		for _, ref := range s.slotJobs[t] {
			if ex <= 0 {
				break
			}
			eid := s.jobEdges[ref.job][ref.k]
			f := s.net.Flow(eid)
			if f <= 0 {
				continue
			}
			if f > ex {
				f = ex
			}
			s.net.PushBack(eid, f)
			s.net.PushBack(s.srcEdges[ref.job], f)
			ex -= f
		}
	}
	got := 0.0
	for i := range s.srcEdges {
		got += s.net.Flow(s.srcEdges[i])
	}
	got += s.net.Max(s.src, s.sink)
	return got < s.total-1e-6
}

// separate solves the fractional feasibility subproblem for y and, if the
// max flow falls short of P, returns the source-side job set A of a minimum
// cut.
func (s *separator) separate(y []float64) (A []bool, violated bool) {
	if !s.load(y) {
		return nil, false
	}
	side := s.net.MinCutSource(s.src)
	A = make([]bool, len(s.in.Jobs))
	for i := range s.in.Jobs {
		A[i] = side[s.jobNode[i]]
	}
	return A, true
}

// separateAll solves the feasibility subproblem once and, when y is
// infeasible, harvests every violated job set the single max-flow probe
// surfaces:
//
//   - the source side of a minimum cut (the most violated canonical cut,
//     by max-flow/min-cut), and
//   - for each job whose source edge the flow left unsaturated (a job short
//     of its demand) and that no earlier harvested set covers, the set of
//     jobs reachable from it in the residual graph with the source node
//     blocked (unblocked, every deficient job reaches the source over its
//     own unsaturated supply edge, and all sets collapse onto the global
//     minimum cut).
//
// Each harvested set is residual-closed away from the source, so the
// standard cut-accounting argument shows its canonical cut is violated by
// at least that job's deficiency — every returned set yields a valid
// violated cut, and the batch localizes the deficiency per job instead of
// aggregating it into one coarse cut per round.
//
// cap bounds the job sets harvested per probe (the global min cut plus up
// to cap−1 per-job violators). Uncapped batching floods the master — the
// deepest deficiencies are localized first and the rest surface in later
// rounds if the aggregate cut leaves them violated. maxBatchCuts is the
// hard ceiling; the default policy scales the cap with the horizon (see
// adaptiveBatchCap), down to single-cut behavior at tiny T where extra
// rows only pad an already-cheap master.
const maxBatchCuts = 32

// maxParallelWalks bounds the residual walks separateAll precomputes in
// parallel per probe: twice the cut cap, since covered-filter skips mean the
// replay can consume deficits beyond the first maxBatchCuts.
const maxParallelWalks = 2 * maxBatchCuts

func (s *separator) separateAll(y []float64, cap int) [][]bool {
	if !s.load(y) {
		return nil
	}
	nJobs := len(s.in.Jobs)
	var out [][]bool
	side := s.net.MinCutSource(s.src)
	A := make([]bool, nJobs)
	for i := range s.in.Jobs {
		A[i] = side[s.jobNode[i]]
	}
	out = append(out, A)
	// Deficient jobs, deepest deficiency first, so the cap keeps the most
	// violated localized cuts.
	type deficit struct {
		job int
		gap float64
	}
	var short []deficit
	for i := range s.in.Jobs {
		if gap := s.net.Residual(s.srcEdges[i]); gap > 1e-7 {
			short = append(short, deficit{i, gap})
		}
	}
	sort.Slice(short, func(a, b int) bool {
		if short[a].gap != short[b].gap {
			return short[a].gap > short[b].gap
		}
		return short[a].job < short[b].job
	})
	covered := make([]bool, nJobs)
	// Fan the residual walks out across goroutines: once the max flow has
	// settled, ReachableFrom only reads the residual adjacency and keeps
	// all visit state local, so the walks for distinct deficient jobs are
	// mutually independent. The covered-filter replay below stays
	// sequential and consumes the precomputed walks in exactly the order
	// the serial loop takes them, so the harvested sets are byte-identical
	// — the fan-out changes wall time, never output (the strict
	// set-equality incremental-vs-fresh harness and FuzzSeparation lock
	// this). Walks whose job an earlier set covers are discarded, so only
	// the maxParallelWalks deepest deficits are precomputed; in the rare
	// round that skips past the window, the replay falls back to computing
	// the remaining walks on demand.
	walks := len(short)
	if walks > maxParallelWalks {
		walks = maxParallelWalks
	}
	var reaches [][]bool
	if workers := runtime.GOMAXPROCS(0); walks >= 2 && workers > 1 && !s.serialWalks {
		if workers > walks {
			workers = walks
		}
		reaches = make([][]bool, walks)
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= walks {
						return
					}
					reaches[i] = s.net.ReachableFrom(s.jobNode[short[i].job], s.src)
				}
			}()
		}
		wg.Wait()
	}
	for di, d := range short {
		if len(out) >= cap {
			break
		}
		if covered[d.job] {
			continue
		}
		var reach []bool
		if di < len(reaches) {
			reach = reaches[di]
		} else {
			reach = s.net.ReachableFrom(s.jobNode[d.job], s.src)
		}
		B := make([]bool, nJobs)
		for k := 0; k < nJobs; k++ {
			if reach[s.jobNode[k]] {
				B[k] = true
				covered[k] = true
			}
		}
		out = append(out, B)
	}
	return out
}

// separate is the one-shot form kept for callers without a reusable
// separator.
func separate(in *core.Instance, y []float64) (A []bool, violated bool) {
	return newSeparator(in).separate(y)
}

// cutFor builds the canonical cut for job subset A:
// Σ_t min(g, cov_A(t))·y_t >= Σ_{j∈A} p_j.
func cutFor(in *core.Instance, A []bool) (cols []int, vals []float64, rhs float64) {
	T := int(in.Horizon())
	cov := make([]int, T+1)
	for i, j := range in.Jobs {
		if !A[i] {
			continue
		}
		rhs += float64(j.Length)
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			cov[t]++
		}
	}
	for t := 1; t <= T; t++ {
		c := cov[t]
		if c == 0 {
			continue
		}
		if c > in.G {
			c = in.G
		}
		cols = append(cols, t-1)
		vals = append(vals, float64(c))
	}
	return cols, vals, rhs
}
