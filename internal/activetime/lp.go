package activetime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/lp"
)

// LPResult holds the optimal solution of the active-time LP relaxation LP1
// of Section 3 of the paper.
type LPResult struct {
	// Y[t] is the fractional openness of slot t, for t in 1..T (Y[0] is
	// unused).
	Y []float64
	// Objective is sum_t Y[t], a lower bound on the optimal active time.
	Objective float64
	// Cuts is the number of Benders cuts generated; Rounds the number of
	// master solves.
	Cuts, Rounds int
}

// SolveLP computes an optimal solution of LP1:
//
//	min  Σ_t y_t
//	s.t. x_{t,j} <= y_t, Σ_j x_{t,j} <= g·y_t, Σ_t x_{t,j} >= p_j,
//	     0 <= y <= 1, x >= 0, x_{t,j} = 0 outside j's window.
//
// Rather than instantiating the T·n assignment variables, it projects the
// LP onto the y variables: for a fixed y, a feasible fractional x exists iff
// the max flow of the fractional feasibility network equals P = Σ p_j, and
// by max-flow/min-cut that holds iff for every job subset A
//
//	Σ_t min(g, cov_A(t))·y_t >= Σ_{j∈A} p_j ,
//
// where cov_A(t) is the number of jobs of A whose window contains t. SolveLP
// generates these cuts lazily from minimum cuts (Benders decomposition) and
// solves the growing master LP with the simplex engine. Each round either
// proves optimality or adds a previously absent violated cut, so the
// procedure terminates.
func SolveLP(in *core.Instance) (*LPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !CheckFeasible(in, AllSlots(in)) {
		return nil, ErrInfeasible
	}
	T := int(in.Horizon())
	prob := lp.NewProblem(T) // variable t-1 is y_t
	for t := 1; t <= T; t++ {
		prob.SetObjective(t-1, 1)
		if err := prob.AddSparse([]int{t - 1}, []float64{1}, lp.LE, 1); err != nil {
			return nil, err
		}
	}
	// Seed cuts: one per job (A = {j} gives Σ_{t∈win} y_t >= p_j).
	for _, j := range in.Jobs {
		var cols []int
		var vals []float64
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			cols = append(cols, int(t)-1)
			vals = append(vals, 1)
		}
		if err := prob.AddSparse(cols, vals, lp.GE, float64(j.Length)); err != nil {
			return nil, err
		}
	}
	res := &LPResult{Cuts: len(in.Jobs)}
	maxRounds := 20*T + 200
	for round := 0; round < maxRounds; round++ {
		res.Rounds++
		sol, err := lp.Solve(prob)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("activetime: LP master %v", sol.Status)
		}
		y := sol.X
		A, violated := separate(in, y)
		if !violated {
			res.Y = make([]float64, T+1)
			for t := 1; t <= T; t++ {
				v := y[t-1]
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				res.Y[t] = v
			}
			res.Objective = sol.Objective
			return res, nil
		}
		cols, vals, rhs := cutFor(in, A)
		if err := prob.AddSparse(cols, vals, lp.GE, rhs); err != nil {
			return nil, err
		}
		res.Cuts++
	}
	return nil, fmt.Errorf("activetime: LP cut generation did not converge in %d rounds", maxRounds)
}

// separate solves the fractional feasibility subproblem for y and, if the
// max flow falls short of P, returns the source-side job set A of a minimum
// cut.
func separate(in *core.Instance, y []float64) (A []bool, violated bool) {
	const eps = 1e-12
	T := len(y)
	nJobs := len(in.Jobs)
	n := flow.NewNetwork[float64](2+nJobs+T, eps)
	src := 0
	sink := 1 + nJobs + T
	slotNode := func(t core.Time) int { return 1 + nJobs + int(t) - 1 }
	var total float64
	for t := 1; t <= T; t++ {
		n.AddEdge(slotNode(core.Time(t)), sink, float64(in.G)*y[t-1])
	}
	for i, j := range in.Jobs {
		n.AddEdge(src, 1+i, float64(j.Length))
		total += float64(j.Length)
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			n.AddEdge(1+i, slotNode(t), y[t-1])
		}
	}
	got := n.Max(src, sink)
	if got >= total-1e-6 {
		return nil, false
	}
	side := n.MinCutSource(src)
	A = make([]bool, nJobs)
	for i := range in.Jobs {
		A[i] = side[1+i]
	}
	return A, true
}

// cutFor builds the canonical cut for job subset A:
// Σ_t min(g, cov_A(t))·y_t >= Σ_{j∈A} p_j.
func cutFor(in *core.Instance, A []bool) (cols []int, vals []float64, rhs float64) {
	T := int(in.Horizon())
	cov := make([]int, T+1)
	for i, j := range in.Jobs {
		if !A[i] {
			continue
		}
		rhs += float64(j.Length)
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			cov[t]++
		}
	}
	for t := 1; t <= T; t++ {
		c := cov[t]
		if c == 0 {
			continue
		}
		if c > in.G {
			c = in.G
		}
		cols = append(cols, t-1)
		vals = append(vals, float64(c))
	}
	return cols, vals, rhs
}
