package activetime

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// RoundingResult is the outcome of the LP-rounding 2-approximation.
type RoundingResult struct {
	Schedule *core.ActiveSchedule
	// LPValue is the optimal LP objective (a lower bound on OPT); Opened is
	// the number of integrally opened slots. Theorem 2 guarantees
	// Opened <= 2*LPValue; tests assert it.
	LPValue float64
	Opened  int
	// FlowChecks counts feasibility max-flows run while deciding whether
	// barely open slots could be closed; ProxyCarries counts proxy slots
	// passed between iterations; Repairs counts extra slots opened by the
	// defensive final repair loop (zero in every observed run; a nonzero
	// value would indicate floating-point trouble in the LP).
	FlowChecks   int
	ProxyCarries int
	Repairs      int
	// InvariantViolated records whether the running 2*LP charging invariant
	// ever failed (never expected; tests assert false).
	InvariantViolated bool
}

const (
	yEps = 1e-7 // snap tolerance for fractional slot mass
)

// RoundLP runs the full 2-approximation of Theorem 2: solve LP1 optimally,
// right-shift the solution per deadline segment (Lemma 3), then round
// deadline by deadline (Sections 3.2-3.4), maintaining at most one proxy
// slot; barely open slots are closed when a max-flow check shows all jobs
// with deadlines processed so far still fit, and opened (charging earlier
// fully/half-open slots) otherwise.
func RoundLP(in *core.Instance) (*RoundingResult, error) {
	lpres, err := SolveLP(in)
	if err != nil {
		return nil, err
	}
	return roundWithLP(in, lpres)
}

// roundWithLP rounds a precomputed LP solution (exposed for tests).
func roundWithLP(in *core.Instance, lpres *LPResult) (*RoundingResult, error) {
	res := &RoundingResult{LPValue: lpres.Objective}
	deadlines := in.Deadlines()
	segY, segStart, err := rightShiftSegments(in, lpres.Y, deadlines)
	if err != nil {
		return nil, err
	}
	// Jobs sorted by deadline for prefix feasibility checks.
	jobsByDeadline := make([]core.Job, len(in.Jobs))
	copy(jobsByDeadline, in.Jobs)
	sortJobsByDeadline(jobsByDeadline)

	// Persistent feasibility network: jobs switch on as the deadline prefix
	// grows, slots switch on as they are opened, and each "can this barely
	// open slot stay closed?" query is one Reset+max-flow with no graph
	// rebuilding.
	fc := newFeasChecker(in.G, jobsByDeadline)
	opened := make(map[core.Time]bool)
	var openList []core.Time
	openSlot := func(t core.Time) {
		if !opened[t] {
			opened[t] = true
			openList = append(openList, t)
			fc.setSlot(t, true)
		}
	}
	var cumY float64
	proxyVal := 0.0
	var proxyPtr core.Time
	prefix := 0 // jobsByDeadline[:prefix] have deadline <= current

	for i, d := range deadlines {
		cumY += segY[i]
		for prefix < len(jobsByDeadline) && jobsByDeadline[prefix].Deadline <= d {
			fc.setJob(prefix, true)
			prefix++
		}
		yi := segY[i] + proxyVal
		hadProxy := proxyVal > yEps
		oldPtr := proxyPtr
		proxyVal, proxyPtr = 0, 0
		if yi <= yEps {
			continue
		}
		segLen := int(d - segStart[i] + 1)
		ipart := int(math.Floor(yi + yEps))
		frac := yi - float64(ipart)
		if frac < yEps {
			frac = 0
		}
		if frac > 1-yEps {
			ipart++
			frac = 0
		}
		if ipart > segLen {
			// Proxy mass cannot push the integral part past the segment
			// (Y_i <= segLen and proxy < 1): defensive clamp.
			ipart = segLen
			frac = 0
		}
		for k := 0; k < ipart; k++ {
			openSlot(d - core.Time(k))
		}
		if frac > 0 {
			var fslot core.Time
			switch {
			case ipart < segLen:
				fslot = d - core.Time(ipart)
			case hadProxy && oldPtr > 0 && !opened[oldPtr]:
				fslot = oldPtr // segment exhausted: fall back to the proxy's slot
			default:
				// No slot available to host the remainder; open nothing and
				// let the feasibility logic below handle it as "closed".
				fslot = 0
			}
			switch {
			case fslot == 0:
				// Treat like a barely open slot we are forced to drop; the
				// flow check decides whether repair is needed at the end.
			case frac >= 0.5-yEps:
				// Half open: always open integrally (charged to itself, at
				// most doubling its LP mass).
				openSlot(fslot)
			default:
				// Barely open: try to close it, keeping a proxy.
				res.FlowChecks++
				if fc.feasible() {
					proxyVal = frac
					proxyPtr = fslot
					res.ProxyCarries++
				} else {
					openSlot(fslot)
				}
			}
		}
		if float64(len(openList)) > 2*cumY+1e-6 {
			res.InvariantViolated = true
		}
	}
	// Defensive repair if floating point left a gap: probe the persistent
	// checker (every job is switched on once the deadline sweep finishes),
	// opening slots until it reports feasible — each probe is one
	// Reset+max-flow on the network the rounding loop already owns. Only
	// then is the one-shot assignment network built, exactly once.
	for !fc.feasible() {
		t, rerr := repairSlot(in, opened)
		if rerr != nil {
			return nil, fmt.Errorf("activetime: rounding produced infeasible slot set: %w", rerr)
		}
		openSlot(t)
		res.Repairs++
	}
	sched, err := Assign(in, openList)
	if err != nil {
		return nil, fmt.Errorf("activetime: rounding produced infeasible slot set: %w", err)
	}
	res.Schedule = sched
	res.Opened = len(openList)
	return res, nil
}

// rightShiftSegments computes, per deadline segment, the LP mass Y_i and the
// first slot of the segment. Segment i covers slots
// (d_{i-1}, d_i], with d_0 one slot before the earliest fractionally open
// slot (the paper's dummy deadline t_{d0}).
func rightShiftSegments(in *core.Instance, y []float64, deadlines []core.Time) (segY []float64, segStart []core.Time, err error) {
	T := core.Time(len(y) - 1)
	first := core.Time(0)
	for t := core.Time(1); t <= T; t++ {
		if y[t] > yEps {
			first = t
			break
		}
	}
	if first == 0 {
		return nil, nil, fmt.Errorf("activetime: LP solution has no open slots")
	}
	if len(deadlines) == 0 {
		return nil, nil, fmt.Errorf("activetime: no deadlines")
	}
	if first > deadlines[0] {
		return nil, nil, fmt.Errorf("activetime: first fractional slot %d after earliest deadline %d", first, deadlines[0])
	}
	segY = make([]float64, len(deadlines))
	segStart = make([]core.Time, len(deadlines))
	prev := first - 1
	for i, d := range deadlines {
		segStart[i] = prev + 1
		var sum float64
		for t := prev + 1; t <= d; t++ {
			sum += y[t]
		}
		segY[i] = sum
		prev = d
	}
	return segY, segStart, nil
}

// RightShiftedY materializes the right-shifted LP solution of Lemma 3 (used
// by tests to confirm it remains LP-feasible): within each deadline segment
// the mass Y_i is packed into the rightmost slots.
func RightShiftedY(in *core.Instance, lpres *LPResult) ([]float64, error) {
	deadlines := in.Deadlines()
	segY, segStart, err := rightShiftSegments(in, lpres.Y, deadlines)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(lpres.Y))
	for i, d := range deadlines {
		yi := segY[i]
		for t := d; t >= segStart[i] && yi > 0; t-- {
			v := math.Min(1, yi)
			out[t] = v
			yi -= v
		}
	}
	return out, nil
}

// repairSlot picks a closed slot to open during defensive repair: the
// rightmost closed slot lying in some job's window.
func repairSlot(in *core.Instance, opened map[core.Time]bool) (core.Time, error) {
	var best core.Time
	for _, j := range in.Jobs {
		for t := j.LastSlot(); t >= j.FirstSlot(); t-- {
			if !opened[t] && t > best {
				best = t
			}
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("activetime: no closed slot available for repair")
	}
	return best, nil
}

func sortJobsByDeadline(jobs []core.Job) {
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Deadline != jobs[b].Deadline {
			return jobs[a].Deadline < jobs[b].Deadline
		}
		return jobs[a].ID < jobs[b].ID
	})
}
