package activetime

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
)

// RoundingResult is the outcome of the LP-rounding 2-approximation.
type RoundingResult struct {
	Schedule *core.ActiveSchedule
	// LPValue is the optimal LP objective (a lower bound on OPT); Opened is
	// the number of integrally opened slots. Theorem 2 guarantees
	// Opened <= 2*LPValue; tests assert it.
	LPValue float64
	Opened  int
	// FlowChecks counts hybrid-feasibility max-flows run while deciding
	// whether barely open slots could be closed; ProxyCarries counts proxy
	// slots passed between iterations; Repairs counts extra slots opened by
	// the defensive final repair loop (structurally zero: every close is
	// certified against the full hybrid solution, so the sweep's output is
	// integrally feasible by construction — tests and the E19 gate pin it).
	FlowChecks   int
	ProxyCarries int
	Repairs      int
	// ColdFlows counts feasibility solves that started from zero routed
	// flow. The rounding sweep's checker is flow-carrying, so this stays at
	// most 1 regardless of T; a from-scratch regression shows up here.
	ColdFlows int
	// DroppedMass is fractional proxy mass the sweep could not place in any
	// slot (segment exhausted and the carried proxy's slot already open) and
	// that was still unplaced when the sweep ended. It is charged nowhere,
	// so the Theorem 2 accounting is only exact up to this amount; tests
	// assert it stays below the snap tolerance.
	DroppedMass float64
	// InvariantViolated records whether the running 2*LP charging invariant
	// ever failed (never expected; tests assert false).
	InvariantViolated bool
	// Per-phase wall time in milliseconds: LP solve (zero when the caller
	// supplied a precomputed LP), right shift, rounding sweep, defensive
	// repair loop, and final assignment extraction.
	LPMillis, ShiftMillis, SweepMillis, RepairMillis, AssignMillis float64
}

const (
	yEps = 1e-7 // base snap tolerance for fractional slot mass at T ~ 1
)

// roundingTol is the scale-aware snap tolerance for slot mass over a
// horizon of T slots. The LP engine's per-entry noise accumulates over
// O(T)-length sums; even compensated summation leaves the comparison
// against solver output exposed to the solver's own per-entry error, which
// grows like sqrt(T) under random rounding. At T = 32768 the fixed yEps is
// the same order as that drift, so integral parts misround; scaling by
// sqrt(T) keeps the snap safely above the noise while staying far below the
// 0.5 rounding threshold (~1.8e-5 at T = 32768).
func roundingTol(T int) float64 {
	if T < 1 {
		T = 1
	}
	return yEps * math.Max(1, math.Sqrt(float64(T)))
}

// kahanAdd adds v into the compensated accumulator (sum, comp), returning
// the updated pair. Neumaier's variant is unnecessary here: the summands
// are slot masses in [0, 1], so the running sum dominates each term.
func kahanAdd(sum, comp, v float64) (float64, float64) {
	y := v - comp
	t := sum + y
	return t, (t - sum) - y
}

// RoundLP runs the full 2-approximation of Theorem 2: solve LP1 optimally,
// right-shift the solution per deadline segment (Lemma 3), then round
// deadline by deadline (Sections 3.2-3.4), maintaining at most one proxy
// slot; a barely open slot is closed only when a max-flow check certifies
// that the hybrid solution — every integral decision made so far plus the
// still-fractional right-shifted future — completes every job without that
// slot's mass, and opened (charging earlier fully/half-open slots)
// otherwise.
//
// Checking every job, not just the jobs already due, is what makes the
// sweep's output integrally feasible by construction. A due-jobs-only check
// admits closes whose carried proxy mass migrates past the deadlines of
// not-yet-due jobs that shared the closed slot's capacity: each individual
// check passes, but the jobs' joint Hall condition — tight at an optimal
// vertex — is broken by the time they come due, and no later decision can
// repair it (observed as a one-unit deficiency on LargeHorizon covering
// instances whose optimum sits on a mass-bound-tight vertex). Future
// fractional capacity is unusable by due jobs (their windows have closed),
// so the hybrid check is strictly stronger, and it preserves LP feasibility
// of the hybrid vector inductively: right-shift preserves it (Lemma 3),
// opens only add capacity, and every close re-certifies it. The final
// all-integral vector is then LP-feasible with integer capacities, hence
// schedulable by flow integrality.
func RoundLP(in *core.Instance) (*RoundingResult, error) {
	start := time.Now()
	lpres, err := SolveLP(in)
	if err != nil {
		return nil, err
	}
	lpMillis := float64(time.Since(start).Microseconds()) / 1000
	res, err := roundWithLP(in, lpres)
	if err != nil {
		return nil, err
	}
	res.LPMillis = lpMillis
	return res, nil
}

// roundWithLP rounds a precomputed LP solution (exposed for tests).
func roundWithLP(in *core.Instance, lpres *LPResult) (*RoundingResult, error) {
	res := &RoundingResult{LPValue: lpres.Objective}
	tol := roundingTol(len(lpres.Y) - 1)
	phase := time.Now()
	deadlines := in.Deadlines()
	segY, segStart, err := rightShiftSegments(in, lpres.Y, deadlines)
	if err != nil {
		return nil, err
	}
	shifted, err := RightShiftedY(in, lpres)
	if err != nil {
		return nil, err
	}
	res.ShiftMillis = float64(time.Since(phase).Microseconds()) / 1000
	phase = time.Now()
	// The hybrid vector: slot t ↔ hy[t-1] (the solver's variable order).
	// Starts as the right-shifted fractional solution; the sweep overwrites
	// each segment with its integral decisions as it passes. Feasibility of
	// this vector is the induction invariant that keeps the final slot set
	// schedulable, and mix is the incremental max-flow network that certifies
	// it — the same flow-carrying machinery as the Benders separation oracle,
	// re-capacitating only the slots a decision touched.
	hy := shifted[1:]
	mix := newSeparator(in)
	mix.incremental = true
	// Jobs sorted by deadline for prefix feasibility checks.
	jobsByDeadline := make([]core.Job, len(in.Jobs))
	copy(jobsByDeadline, in.Jobs)
	sortJobsByDeadline(jobsByDeadline)

	// Persistent integral feasibility network: jobs switch on as the
	// deadline prefix grows, slots switch on as they are opened. The sweep
	// itself never queries it (close decisions are certified against the
	// hybrid vector above) — it exists for the final verification and the
	// defensive repair loop, whose single query is the rounding pass's one
	// cold flow.
	fc := newFeasChecker(in.G, jobsByDeadline)
	opened := make(map[core.Time]bool)
	var openList []core.Time
	openSlot := func(t core.Time) {
		if !opened[t] {
			opened[t] = true
			openList = append(openList, t)
			fc.setSlot(t, true)
		}
	}
	var cumY, cumComp float64
	proxyVal := 0.0
	var proxyPtr core.Time
	haveProxyPtr := false
	prefix := 0 // jobsByDeadline[:prefix] have deadline <= current
	invSlack := math.Max(1e-6, tol)

	for i, d := range deadlines {
		cumY, cumComp = kahanAdd(cumY, cumComp, segY[i])
		for prefix < len(jobsByDeadline) && jobsByDeadline[prefix].Deadline <= d {
			fc.setJob(prefix, true)
			prefix++
		}
		yi := segY[i] + proxyVal
		hadProxy := proxyVal > tol
		oldPtr, hadPtr := proxyPtr, haveProxyPtr
		proxyVal, proxyPtr, haveProxyPtr = 0, 0, false
		if yi <= tol {
			continue
		}
		segLen := int(d - segStart[i] + 1)
		ipart := int(math.Floor(yi + tol))
		frac := yi - float64(ipart)
		if frac < tol {
			frac = 0
		}
		if frac > 1-tol {
			ipart++
			frac = 0
		}
		if ipart > segLen {
			// Proxy mass cannot push the integral part past the segment
			// (Y_i <= segLen and proxy < 1): defensive clamp.
			ipart = segLen
			frac = 0
		}
		for k := 0; k < ipart; k++ {
			s := d - core.Time(k)
			openSlot(s)
			hy[s-1] = 1
		}
		// The rest of the segment's right-shifted mass has been consumed
		// into ipart/frac: zero it in the hybrid vector so the close check
		// below cannot count it twice. After right-shifting, only the slot
		// at d-ipart can still hold mass here.
		for s := segStart[i]; s <= d-core.Time(ipart); s++ {
			hy[s-1] = 0
		}
		if frac > 0 {
			fslot, haveSlot := core.Time(0), false
			switch {
			case ipart < segLen:
				fslot, haveSlot = d-core.Time(ipart), true
			case hadProxy && hadPtr && !opened[oldPtr]:
				fslot, haveSlot = oldPtr, true // segment exhausted: fall back to the proxy's slot
			}
			switch {
			case !haveSlot:
				// No slot can host the remainder here. Carry the mass to the
				// next segment as a slotless proxy so the charging stays
				// auditable instead of silently discarding it; whatever is
				// still unplaced when the sweep ends is counted in
				// DroppedMass.
				proxyVal = frac
				res.ProxyCarries++
			case frac >= 0.5-tol:
				// Half open: always open integrally (charged to itself, at
				// most doubling its LP mass).
				openSlot(fslot)
				hy[fslot-1] = 1
			default:
				// Barely open: close it only if the hybrid solution still
				// completes every job without this slot's mass (hy[fslot-1]
				// is already zero — the segment zeroing above, or the slot's
				// own earlier certified close in the proxy-fallback case).
				// load reports violation, so feasible is its negation.
				res.FlowChecks++
				if !mix.load(hy) {
					proxyVal = frac
					proxyPtr = fslot
					haveProxyPtr = true
					res.ProxyCarries++
				} else {
					openSlot(fslot)
					hy[fslot-1] = 1
				}
			}
		}
		if float64(len(openList)) > 2*cumY+invSlack {
			res.InvariantViolated = true
		}
	}
	if proxyVal > tol && !haveProxyPtr {
		// Slotless proxy mass survived to the end of the sweep: it was never
		// placed and never flow-checked, so account for it explicitly.
		res.DroppedMass += proxyVal
	}
	res.SweepMillis = float64(time.Since(phase).Microseconds()) / 1000
	phase = time.Now()
	// Defensive repair if floating point left a gap: probe the persistent
	// checker (every job is switched on once the deadline sweep finishes),
	// opening slots until it reports feasible. The hybrid close certificates
	// make this loop unreachable in exact arithmetic — its survival is pure
	// defense in depth, and Repairs != 0 fails the scale tests and the E19
	// gate. Only then is the one-shot assignment network built, exactly once.
	rep := newSlotRepairer(in)
	for !fc.feasible() {
		t, rerr := rep.next(opened)
		if rerr != nil {
			return nil, fmt.Errorf("activetime: rounding produced infeasible slot set: %w", rerr)
		}
		openSlot(t)
		res.Repairs++
	}
	res.ColdFlows = fc.coldFlows
	res.RepairMillis = float64(time.Since(phase).Microseconds()) / 1000
	phase = time.Now()
	sched, err := Assign(in, openList)
	if err != nil {
		return nil, fmt.Errorf("activetime: rounding produced infeasible slot set: %w", err)
	}
	res.AssignMillis = float64(time.Since(phase).Microseconds()) / 1000
	res.Schedule = sched
	res.Opened = len(openList)
	return res, nil
}

// rightShiftSegments computes, per deadline segment, the LP mass Y_i and the
// first slot of the segment. Segment i covers slots
// (d_{i-1}, d_i], with d_0 one slot before the earliest fractionally open
// slot (the paper's dummy deadline t_{d0}). Per-segment sums are
// compensated so segment masses stay exact to the last bit even when a
// segment spans tens of thousands of slots.
func rightShiftSegments(in *core.Instance, y []float64, deadlines []core.Time) (segY []float64, segStart []core.Time, err error) {
	T := core.Time(len(y) - 1)
	tol := roundingTol(int(T))
	first := core.Time(0)
	for t := core.Time(1); t <= T; t++ {
		if y[t] > tol {
			first = t
			break
		}
	}
	if first == 0 {
		return nil, nil, fmt.Errorf("activetime: LP solution has no open slots")
	}
	if len(deadlines) == 0 {
		return nil, nil, fmt.Errorf("activetime: no deadlines")
	}
	if first > deadlines[0] {
		return nil, nil, fmt.Errorf("activetime: first fractional slot %d after earliest deadline %d", first, deadlines[0])
	}
	segY = make([]float64, len(deadlines))
	segStart = make([]core.Time, len(deadlines))
	prev := first - 1
	for i, d := range deadlines {
		segStart[i] = prev + 1
		var sum, comp float64
		for t := prev + 1; t <= d; t++ {
			sum, comp = kahanAdd(sum, comp, y[t])
		}
		segY[i] = sum
		prev = d
	}
	return segY, segStart, nil
}

// RightShiftedY materializes the right-shifted LP solution of Lemma 3 (used
// by tests to confirm it remains LP-feasible): within each deadline segment
// the mass Y_i is packed into the rightmost slots. Residues below the
// segment tolerance are snapped — a leftover of ~1e-16 from the repeated
// subtraction must not materialize as an "open" slot that downstream
// tolerance scans disagree about, and a slot within tolerance of 1 is
// emitted as exactly 1.
func RightShiftedY(in *core.Instance, lpres *LPResult) ([]float64, error) {
	deadlines := in.Deadlines()
	segY, segStart, err := rightShiftSegments(in, lpres.Y, deadlines)
	if err != nil {
		return nil, err
	}
	tol := roundingTol(len(lpres.Y) - 1)
	out := make([]float64, len(lpres.Y))
	for i, d := range deadlines {
		yi := segY[i]
		for t := d; t >= segStart[i] && yi > tol; t-- {
			v := math.Min(1, yi)
			if v > 1-tol {
				v = 1
			}
			out[t] = v
			yi -= v
		}
	}
	return out, nil
}

// slotRepairer hands out closed slots for the defensive repair loop,
// rightmost window-covered slot first. The candidate list is the window
// universe computed once up front (AllSlots), so each probe is amortized
// O(1) instead of rescanning every job window, and exhaustion is an
// explicit error rather than a zero sentinel (slot 0 is outside every
// window by validation, but the sentinel conflated "no slot found" with
// it).
type slotRepairer struct {
	slots []core.Time // window-covered slots, descending
	idx   int
}

func newSlotRepairer(in *core.Instance) *slotRepairer {
	slots := AllSlots(in)
	for i, j := 0, len(slots)-1; i < j; i, j = i+1, j-1 {
		slots[i], slots[j] = slots[j], slots[i]
	}
	return &slotRepairer{slots: slots}
}

// next returns the rightmost window-covered slot not yet opened, or an
// error when every candidate is open. Opened slots are skipped permanently:
// the repair loop only ever opens slots, so the cursor never needs to back
// up.
func (r *slotRepairer) next(opened map[core.Time]bool) (core.Time, error) {
	for ; r.idx < len(r.slots); r.idx++ {
		if t := r.slots[r.idx]; !opened[t] {
			r.idx++
			return t, nil
		}
	}
	return 0, fmt.Errorf("activetime: no closed slot available for repair")
}

func sortJobsByDeadline(jobs []core.Job) {
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Deadline != jobs[b].Deadline {
			return jobs[a].Deadline < jobs[b].Deadline
		}
		return jobs[a].ID < jobs[b].ID
	})
}
