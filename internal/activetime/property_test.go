package activetime

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// lpFamilies enumerates every seeded random family of package gen, plus the
// large-horizon scaling family, at sizes small enough for the exact
// rational engine. The cross-solver suite runs each family across enough
// seeds for ~150 instances total.
var lpFamilies = []struct {
	name string
	make func(seed int64) *core.Instance
}{
	{"flexible", func(seed int64) *core.Instance {
		return gen.RandomFlexible(gen.RandomConfig{N: 8, Horizon: 16, MaxLen: 3, Slack: 3, G: 3, Seed: seed})
	}},
	{"interval", func(seed int64) *core.Instance {
		return gen.RandomInterval(gen.RandomConfig{N: 8, Horizon: 16, MaxLen: 3, G: 4, Seed: seed})
	}},
	{"unit", func(seed int64) *core.Instance {
		return gen.RandomUnit(gen.RandomConfig{N: 10, Horizon: 12, Slack: 4, G: 3, Seed: seed})
	}},
	// Clique jobs are rigid intervals through one common point, so the
	// instance is feasible only when N <= G.
	{"clique", func(seed int64) *core.Instance {
		return gen.RandomClique(gen.RandomConfig{N: 4, Horizon: 12, MaxLen: 4, G: 4, Seed: seed})
	}},
	{"proper", func(seed int64) *core.Instance {
		return gen.RandomProper(gen.RandomConfig{N: 7, Horizon: 20, MaxLen: 4, G: 3, Seed: seed})
	}},
	// Laminar jobs fill their whole window, so g must cover the nesting
	// depth (the generator recurses to depth ~5).
	{"laminar", func(seed int64) *core.Instance {
		return gen.RandomLaminar(gen.RandomConfig{N: 8, Horizon: 14, G: 6, Seed: seed})
	}},
	{"large-horizon", func(seed int64) *core.Instance {
		return gen.LargeHorizon(gen.RandomConfig{N: 8, Horizon: 64, MaxLen: 8, G: 4, Seed: seed})
	}},
}

// TestLPCrossSolverMetamorphic is the cross-solver property suite of the
// LP1 pipeline: on every family, the batched float pipeline under every
// pricing rule (steepest-edge — the default —, devex, and the Dantzig
// baseline) and under both factorization rules (Forrest–Tomlin updates —
// the default — and the product-form eta-file ablation), the single-cut
// float pipeline, and the exact rational pipeline must agree on the LP
// optimum to 1e-6 — independently wrong solvers agreeing on ~150 instances
// × 6 pipelines is the strongest equivalence evidence the repo can buy
// without a reference LP library. Batching must also never need more
// separation rounds than single-cut generation.
func TestLPCrossSolverMetamorphic(t *testing.T) {
	const seedsPerFamily = 22 // 7 families × 22 = 154 instances
	pricingRules := []lp.PricingRule{lp.PricingDantzig, lp.PricingDevex}
	solved := 0
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			in := fam.make(seed)
			batched, err := SolveLP(in)
			if err == ErrInfeasible {
				continue
			}
			if err != nil {
				t.Fatalf("%s seed %d: SolveLP: %v", fam.name, seed, err)
			}
			single, err := SolveLPSingleCut(in)
			if err != nil {
				t.Fatalf("%s seed %d: SolveLPSingleCut: %v", fam.name, seed, err)
			}
			exact, err := SolveLPExact(in)
			if err != nil {
				t.Fatalf("%s seed %d: SolveLPExact: %v", fam.name, seed, err)
			}
			want, _ := exact.Objective.Float64()
			if math.Abs(batched.Objective-want) > 1e-6 {
				t.Errorf("%s seed %d: batched LP %.9f, exact %.9f", fam.name, seed, batched.Objective, want)
			}
			if math.Abs(single.Objective-want) > 1e-6 {
				t.Errorf("%s seed %d: single-cut LP %.9f, exact %.9f", fam.name, seed, single.Objective, want)
			}
			for _, rule := range pricingRules {
				ruled, err := SolveLPPricing(in, rule)
				if err != nil {
					t.Fatalf("%s seed %d: SolveLPPricing(%v): %v", fam.name, seed, rule, err)
				}
				if math.Abs(ruled.Objective-want) > 1e-6 {
					t.Errorf("%s seed %d: %v LP %.9f, exact %.9f", fam.name, seed, rule, ruled.Objective, want)
				}
			}
			pfi, err := SolveLPFactorization(in, lp.FactorizationPFI)
			if err != nil {
				t.Fatalf("%s seed %d: SolveLPFactorization(pfi): %v", fam.name, seed, err)
			}
			if math.Abs(pfi.Objective-want) > 1e-6 {
				t.Errorf("%s seed %d: pfi LP %.9f, exact %.9f", fam.name, seed, pfi.Objective, want)
			}
			if batched.Rounds > single.Rounds {
				t.Errorf("%s seed %d: batched took %d rounds, single-cut only %d",
					fam.name, seed, batched.Rounds, single.Rounds)
			}
			solved++
		}
	}
	if solved < 140 {
		t.Fatalf("only %d feasible instances exercised; want >= 140 (generator drift?)", solved)
	}
}

// TestRoundLPBoundsAcrossFamilies locks the paper's approximation bounds on
// every family: RoundLP's output must verify against core.VerifyActive and
// open at most 2·LP slots (Theorem 2) — and a fortiori at most 3·LP, the
// minimal-feasible guarantee of Theorem 1, asserted separately so a future
// relaxation of the rounding cannot silently degrade past the weaker paper
// bound either.
func TestRoundLPBoundsAcrossFamilies(t *testing.T) {
	const seedsPerFamily = 22
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			in := fam.make(seed)
			res, err := RoundLP(in)
			if err == ErrInfeasible {
				continue
			}
			if err != nil {
				t.Fatalf("%s seed %d: RoundLP: %v", fam.name, seed, err)
			}
			if verr := core.VerifyActive(in, res.Schedule); verr != nil {
				t.Errorf("%s seed %d: rounded schedule invalid: %v", fam.name, seed, verr)
			}
			opened := float64(res.Opened)
			if opened > 2*res.LPValue+1e-6 {
				t.Errorf("%s seed %d: opened %d > 2·LP = %.6f", fam.name, seed, res.Opened, 2*res.LPValue)
			}
			if opened > 3*res.LPValue+1e-6 {
				t.Errorf("%s seed %d: opened %d > 3·LP = %.6f", fam.name, seed, res.Opened, 3*res.LPValue)
			}
			if res.InvariantViolated {
				t.Errorf("%s seed %d: 2·LP charging invariant violated during rounding", fam.name, seed)
			}
		}
	}
}
