package activetime

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// ChargeKind classifies how an integrally opened slot pays for itself in
// the rounding analysis of Sections 3.2-3.4.
type ChargeKind int

// Charge kinds, in the priority order the paper tries them.
const (
	// ChargeSelf: a fully open slot (y = 1) or half-open slot (y >= 1/2)
	// pays for itself, at most doubling its own LP mass.
	ChargeSelf ChargeKind = iota
	// ChargeDependent: a barely open slot charges an earlier fully open
	// slot without a dependent.
	ChargeDependent
	// ChargeTrio: a barely open slot joins a fully open slot and its
	// existing dependent; the three together hold LP mass >= 3/2.
	ChargeTrio
	// ChargeFiller: a barely open slot fills an earlier half-open slot;
	// the two together hold LP mass >= 1.
	ChargeFiller
)

func (k ChargeKind) String() string {
	switch k {
	case ChargeSelf:
		return "self"
	case ChargeDependent:
		return "dependent"
	case ChargeTrio:
		return "trio"
	case ChargeFiller:
		return "filler"
	}
	return "?"
}

// Charge records how one opened slot is paid for.
type Charge struct {
	Slot   core.Time
	Y      float64 // the slot's right-shifted LP mass
	Kind   ChargeKind
	Target core.Time // the charged slot for dependent/trio/filler (0 for self)
}

// ChargingLedger is the explicit bookkeeping of the Theorem 2 analysis: an
// assignment of every integrally opened slot to a charging group such that
// every group's opened count is at most twice its LP mass. Lemma 6 proves
// such an assignment always exists; BuildChargingLedger constructs it
// greedily in the paper's priority order, and tests assert it succeeds on
// every rounded solution.
type ChargingLedger struct {
	Charges []Charge
	// Groups sums, per charged target, the LP mass and opened count, for
	// the 2x verification.
	Dependents map[core.Time]int // fully open slot -> #dependents (0..2; 2 = trio)
	Fillers    map[core.Time]int // half open slot -> #fillers (0..1)
}

// BuildChargingLedger reconstructs the paper's charging for a rounded
// solution: given the right-shifted LP masses y and the set of opened
// slots, it classifies each opened slot and charges barely open slots in
// the priority order dependent -> trio -> filler. It returns an error if
// some opened slot cannot be charged — which Lemma 6 rules out for
// solutions produced by RoundLP from an optimal LP solution.
func BuildChargingLedger(in *core.Instance, lpres *LPResult, opened []core.Time) (*ChargingLedger, error) {
	shifted, err := RightShiftedY(in, lpres)
	if err != nil {
		return nil, err
	}
	led := &ChargingLedger{
		Dependents: make(map[core.Time]int),
		Fillers:    make(map[core.Time]int),
	}
	slots := append([]core.Time(nil), opened...)
	sort.Slice(slots, func(a, b int) bool { return slots[a] < slots[b] })
	// Classify the right-shifted masses of all slots (not just opened) with
	// the same scale-aware tolerance RightShiftedY snapped them under, so
	// the ledger and the rounding sweep agree on every classification.
	tol := roundingTol(len(shifted) - 1)
	fullyOpen := func(t core.Time) bool { return shifted[t] >= 1-tol }
	halfOpen := func(t core.Time) bool { return shifted[t] >= 0.5-tol && shifted[t] < 1-tol }
	for _, t := range slots {
		y := shifted[t]
		switch {
		case y >= 0.5-tol:
			led.Charges = append(led.Charges, Charge{Slot: t, Y: y, Kind: ChargeSelf})
		default:
			// Barely open (possibly zero if a proxy pointed here): charge
			// per the paper's priority order among earlier opened slots.
			charged := false
			// 1. earliest fully open slot without a dependent. Unlike trio
			// and filler targets, a dependent's target may lie to the right
			// of the barely open slot: in the paper's iteration, a barely
			// open slot at t_d - floor(Y) charges the fully open slot next
			// to it (guaranteed to exist when Y > 1).
			for _, u := range slots {
				if u == t {
					continue
				}
				if fullyOpen(u) && led.Dependents[u] == 0 {
					led.Dependents[u] = 1
					led.Charges = append(led.Charges, Charge{Slot: t, Y: y, Kind: ChargeDependent, Target: u})
					charged = true
					break
				}
			}
			// 2. earliest fully open slot with one dependent, forming a trio
			// whose cumulative mass reaches 3/2.
			if !charged {
				for _, u := range slots {
					if u >= t {
						break
					}
					if fullyOpen(u) && led.Dependents[u] == 1 {
						depMass := trioPartnerMass(led, u)
						if shifted[u]+depMass+y >= 1.5-1e-7 {
							led.Dependents[u] = 2
							led.Charges = append(led.Charges, Charge{Slot: t, Y: y, Kind: ChargeTrio, Target: u})
							charged = true
							break
						}
					}
				}
			}
			// 3. earliest half-open slot without a filler whose combined
			// mass reaches 1.
			if !charged {
				for _, u := range slots {
					if u >= t {
						break
					}
					if halfOpen(u) && led.Fillers[u] == 0 && shifted[u]+y >= 1-1e-7 {
						led.Fillers[u] = 1
						led.Charges = append(led.Charges, Charge{Slot: t, Y: y, Kind: ChargeFiller, Target: u})
						charged = true
						break
					}
				}
			}
			if !charged {
				return nil, fmt.Errorf("activetime: opened slot %d (y=%.3f) cannot be charged", t, y)
			}
		}
	}
	return led, led.verify(shifted)
}

func trioPartnerMass(led *ChargingLedger, target core.Time) float64 {
	for _, c := range led.Charges {
		if c.Kind == ChargeDependent && c.Target == target {
			return c.Y
		}
	}
	return 0
}

// verify checks the global property the ledger exists to certify: within
// every charging group, the number of opened slots is at most twice the
// group's LP mass, which summed over groups gives opened <= 2*LP.
func (led *ChargingLedger) verify(shifted []float64) error {
	type group struct {
		mass   float64
		opened int
	}
	groups := make(map[core.Time]*group)
	ensure := func(t core.Time, y float64) *group {
		g, ok := groups[t]
		if !ok {
			g = &group{}
			groups[t] = g
		}
		return g
	}
	for _, c := range led.Charges {
		anchor := c.Slot
		if c.Kind != ChargeSelf {
			anchor = c.Target
		}
		g := ensure(anchor, 0)
		g.mass += c.Y
		g.opened++
		if c.Kind != ChargeSelf {
			// The anchor's own mass is added when its self charge appears;
			// nothing extra here.
			_ = shifted
		}
	}
	total := 0.0
	opened := 0
	for t, g := range groups {
		if float64(g.opened) > 2*g.mass+1e-6 {
			return fmt.Errorf("activetime: charging group at slot %d opens %d slots with LP mass %.4f",
				t, g.opened, g.mass)
		}
		total += g.mass
		opened += g.opened
	}
	if float64(opened) > 2*total+1e-6 {
		return fmt.Errorf("activetime: ledger total %d opened > 2*%.4f LP mass", opened, total)
	}
	if math.IsNaN(total) {
		return fmt.Errorf("activetime: ledger mass is NaN")
	}
	return nil
}

// Counts summarizes the ledger by charge kind.
func (led *ChargingLedger) Counts() map[ChargeKind]int {
	out := make(map[ChargeKind]int)
	for _, c := range led.Charges {
		out[c.Kind]++
	}
	return out
}
