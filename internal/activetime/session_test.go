package activetime

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// sessionFamilies is lpFamilies plus the hardness selector-chain gadget —
// all eight generator families the delta-vs-cold invariant is locked on.
var sessionFamilies = append(lpFamilies[:len(lpFamilies):len(lpFamilies)], struct {
	name string
	make func(seed int64) *core.Instance
}{"hardness", func(seed int64) *core.Instance {
	return gen.Hardness(3+int(seed%4), 2+int(seed%2))
}})

// maxJobID returns the largest job ID of the instance (-1 when empty), so
// tests can mint fresh IDs for arriving jobs.
func maxJobID(in *core.Instance) int {
	m := -1
	for _, j := range in.Jobs {
		if j.ID > m {
			m = j.ID
		}
	}
	return m
}

// donate renumbers the first k jobs of a donor instance above base so they
// can arrive in a session without ID collisions.
func donate(donor *core.Instance, k, base int) []core.Job {
	if k > len(donor.Jobs) {
		k = len(donor.Jobs)
	}
	jobs := make([]core.Job, k)
	for i := 0; i < k; i++ {
		jobs[i] = donor.Jobs[i]
		jobs[i].ID = base + i
	}
	return jobs
}

// mutateSession applies one random delta — a batch arrival drawn from a
// sibling instance of the same family, or the departure of one or two
// random jobs — and reports whether the session actually changed.
// Infeasible arrival batches must be rejected atomically, which the caller's
// delta-vs-cold check then re-verifies against the unchanged instance.
func mutateSession(t *testing.T, sess *Session, rng *rand.Rand, mk func(int64) *core.Instance, seed int64, step int) bool {
	t.Helper()
	if rng.Intn(2) == 0 && sess.NumJobs() > 1 {
		cur := sess.Instance()
		k := 1 + rng.Intn(2)
		if k >= len(cur.Jobs) {
			k = 1
		}
		perm := rng.Perm(len(cur.Jobs))
		ids := make([]int, 0, k)
		for _, p := range perm[:k] {
			ids = append(ids, cur.Jobs[p].ID)
		}
		if err := sess.RemoveJobs(ids); err != nil {
			t.Fatalf("RemoveJobs(%v): %v", ids, err)
		}
		return true
	}
	donor := mk(seed + 100 + int64(step))
	jobs := donate(donor, 1+rng.Intn(3), maxJobID(sess.Instance())+1)
	if err := sess.AddJobs(jobs); err != nil {
		if err == ErrInfeasible {
			return false // rejected atomically; session unchanged
		}
		t.Fatalf("AddJobs: %v", err)
	}
	return true
}

// TestSessionDeltaMatchesColdSolve is the correctness spine of the delta
// layer: on every generator family, after any mutation sequence of arrivals
// and departures, the patched session's optimum must equal a cold solve of
// the mutated instance to 1e-6 — and no delta re-solve may abandon its warm
// basis (ColdFallbacks stays zero; counted cold rebuilds on tight-row
// removals are allowed, silent fallbacks are not).
func TestSessionDeltaMatchesColdSolve(t *testing.T) {
	const seedsPerFamily = 6
	const steps = 4
	checked := 0
	for _, fam := range sessionFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			in := fam.make(seed)
			sess, err := NewSession(in)
			if err == ErrInfeasible {
				continue
			}
			if err != nil {
				t.Fatalf("%s seed %d: NewSession: %v", fam.name, seed, err)
			}
			rng := rand.New(rand.NewSource(seed*977 + int64(len(fam.name))))
			if _, err := sess.Solve(); err != nil {
				t.Fatalf("%s seed %d: initial Solve: %v", fam.name, seed, err)
			}
			for step := 0; step < steps; step++ {
				mutateSession(t, sess, rng, fam.make, seed, step)
				got, err := sess.Solve()
				if err != nil {
					t.Fatalf("%s seed %d step %d: Solve: %v", fam.name, seed, step, err)
				}
				cold, err := SolveLP(sess.Instance())
				if err != nil {
					t.Fatalf("%s seed %d step %d: cold SolveLP: %v", fam.name, seed, step, err)
				}
				if math.Abs(got.Objective-cold.Objective) > 1e-6 {
					t.Errorf("%s seed %d step %d: session LP %.9f, cold %.9f (stats %+v)",
						fam.name, seed, step, got.Objective, cold.Objective, sess.Stats())
				}
				if got.ColdFallbacks != 0 {
					t.Errorf("%s seed %d step %d: %d warm-basis fallbacks: %v",
						fam.name, seed, step, got.ColdFallbacks, got.FallbackVerdicts)
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d delta-vs-cold checks ran; want >= 100 (generator drift?)", checked)
	}
}

// TestSessionRejectsBadDeltas pins the mutation error contract: duplicate
// or unknown IDs, infeasible arrivals and emptying removals are rejected
// loudly and atomically — the session still solves to its previous optimum.
func TestSessionRejectsBadDeltas(t *testing.T) {
	in := gen.RandomFlexible(gen.RandomConfig{N: 6, Horizon: 12, MaxLen: 3, Slack: 3, G: 3, Seed: 1})
	sess, err := NewSession(in)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	before, err := sess.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := sess.AddJobs([]core.Job{{ID: in.Jobs[0].ID, Release: 0, Deadline: 2, Length: 1}}); err == nil {
		t.Error("duplicate job ID accepted")
	}
	// G+1 rigid unit jobs in one slot on top of the existing load: infeasible.
	base := maxJobID(in) + 1
	var crowd []core.Job
	for i := 0; i <= in.G; i++ {
		crowd = append(crowd, core.Job{ID: base + i, Release: 0, Deadline: 1, Length: 1})
	}
	if err := sess.AddJobs(crowd); err != ErrInfeasible {
		t.Errorf("infeasible arrival batch: got %v, want ErrInfeasible", err)
	}
	if err := sess.RemoveJobs([]int{base + 9999}); err == nil {
		t.Error("unknown job ID removal accepted")
	}
	all := make([]int, 0, sess.NumJobs())
	for _, j := range sess.Instance().Jobs {
		all = append(all, j.ID)
	}
	if err := sess.RemoveJobs(all); err == nil {
		t.Error("emptying removal accepted")
	}
	after, err := sess.Solve()
	if err != nil {
		t.Fatalf("Solve after rejected deltas: %v", err)
	}
	if math.Abs(after.Objective-before.Objective) > 1e-9 {
		t.Errorf("rejected deltas moved the optimum: %.9f -> %.9f", before.Objective, after.Objective)
	}
	if s := sess.Stats(); s.AddCalls != 0 || s.RemoveCalls != 0 {
		t.Errorf("rejected deltas counted as mutations: %+v", s)
	}
}

// TestSessionFingerprint locks the cache key's order independence: the same
// job multiset reached by different mutation orders fingerprints equal,
// and any content difference — one job's length, G — separates.
func TestSessionFingerprint(t *testing.T) {
	mk := func() *Session {
		in := gen.RandomFlexible(gen.RandomConfig{N: 6, Horizon: 16, MaxLen: 3, Slack: 3, G: 3, Seed: 5})
		s, err := NewSession(in)
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		return s
	}
	a, b := mk(), mk()
	base := maxJobID(a.Instance()) + 1
	j1 := core.Job{ID: base, Release: 0, Deadline: 6, Length: 2}
	j2 := core.Job{ID: base + 1, Release: 2, Deadline: 9, Length: 3}
	if err := a.AddJobs([]core.Job{j1, j2}); err != nil {
		t.Fatalf("AddJobs: %v", err)
	}
	if err := b.AddJobs([]core.Job{j2}); err != nil {
		t.Fatalf("AddJobs: %v", err)
	}
	if err := b.AddJobs([]core.Job{j1}); err != nil {
		t.Fatalf("AddJobs: %v", err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same multiset, different fingerprints across mutation orders")
	}
	if err := b.RemoveJobs([]int{j1.ID}); err != nil {
		t.Fatalf("RemoveJobs: %v", err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different job sets share a fingerprint")
	}
	c := mk()
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("mutated session fingerprints equal to its base")
	}
}

// TestSessionAddJobsPivotReduction is the delta-efficiency acceptance gate,
// counter-based so it cannot flake on wall clock: at the canonical T = 4096
// scaling instance, absorbing a small arrival batch into the live session
// must take at least 5x fewer simplex pivots than a cold solve of the
// mutated instance — and no warm-basis fallback may fire anywhere on the
// trajectory.
func TestSessionAddJobsPivotReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("T=4096 delta gate skipped in -short")
	}
	const T = 4096
	in := gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: 3})
	sess, err := NewSession(in)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	first, err := sess.Solve()
	if err != nil {
		t.Fatalf("initial Solve: %v", err)
	}
	if first.ColdFallbacks != 0 {
		t.Fatalf("cold session solve reported %d fallbacks: %v", first.ColdFallbacks, first.FallbackVerdicts)
	}
	donor := gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: 4})
	if err := sess.AddJobs(donate(donor, 8, maxJobID(in)+1)); err != nil {
		t.Fatalf("AddJobs: %v", err)
	}
	delta, err := sess.Solve()
	if err != nil {
		t.Fatalf("delta Solve: %v", err)
	}
	if delta.ColdFallbacks != 0 {
		t.Fatalf("delta re-solve fell back cold %d times: %v", delta.ColdFallbacks, delta.FallbackVerdicts)
	}
	cold, err := SolveLP(sess.Instance())
	if err != nil {
		t.Fatalf("cold SolveLP: %v", err)
	}
	if math.Abs(delta.Objective-cold.Objective) > 1e-6 {
		t.Fatalf("delta LP %.9f, cold %.9f", delta.Objective, cold.Objective)
	}
	if cold.Pivots < 5*delta.Pivots {
		t.Errorf("delta re-solve took %d pivots, cold solve %d; want a >= 5x reduction",
			delta.Pivots, cold.Pivots)
	}
}

// FuzzInstanceDelta fuzzes the delta layer end to end: any decodable base
// instance plus any seed-derived interleaving of AddJobs and RemoveJobs
// must keep the session's optimum equal to a cold solve of the mutated
// instance to 1e-6 at every step, with every warm-basis fallback loud. The
// checked-in corpus under testdata/fuzz seeds the interesting shapes; `go
// test -fuzz=FuzzInstanceDelta` explores from there.
func FuzzInstanceDelta(f *testing.F) {
	f.Add([]byte(`{"g":2,"jobs":[{"id":0,"release":0,"deadline":4,"length":2}]}`), int64(1))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":2,"length":2},{"id":1,"release":1,"deadline":3,"length":1}]}`), int64(7))
	f.Add([]byte(`{"g":3,"jobs":[{"id":0,"release":0,"deadline":6,"length":1},{"id":1,"release":2,"deadline":5,"length":3},{"id":2,"release":1,"deadline":4,"length":2}]}`), int64(42))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":1,"length":1},{"id":1,"release":0,"deadline":1,"length":1}]}`), int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		in, err := core.ReadInstance(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(in.Jobs) > 8 || in.Horizon() > 24 || in.G > 8 {
			return
		}
		sess, err := NewSession(in)
		if err != nil {
			return // invalid or infeasible base: nothing to delta
		}
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 4; step++ {
			if rng.Intn(2) == 0 && sess.NumJobs() > 1 {
				cur := sess.Instance()
				id := cur.Jobs[rng.Intn(len(cur.Jobs))].ID
				if err := sess.RemoveJobs([]int{id}); err != nil {
					t.Fatalf("step %d: RemoveJobs(%d): %v", step, id, err)
				}
			} else if sess.NumJobs() < 12 {
				T := int(sess.Instance().Horizon())
				if T < 1 {
					T = 1
				}
				rel := rng.Intn(T + 2)
				dl := rel + 1 + rng.Intn(4)
				if dl > 24 {
					continue // keep the mutated instance inside the tier
				}
				j := core.Job{
					ID:       maxJobID(sess.Instance()) + 1,
					Release:  core.Time(rel),
					Deadline: core.Time(dl),
					Length:   core.Time(1 + rng.Intn(dl-rel)),
				}
				if err := sess.AddJobs([]core.Job{j}); err != nil {
					if err == ErrInfeasible {
						continue
					}
					t.Fatalf("step %d: AddJobs(%v): %v", step, j, err)
				}
			}
			got, err := sess.Solve()
			if err != nil {
				t.Fatalf("step %d: session Solve: %v", step, err)
			}
			cold, err := SolveLP(sess.Instance())
			if err != nil {
				t.Fatalf("step %d: cold SolveLP of a live session instance: %v", step, err)
			}
			if math.Abs(got.Objective-cold.Objective) > 1e-6 {
				t.Fatalf("step %d: session LP %.9f, cold %.9f (stats %+v)",
					step, got.Objective, cold.Objective, sess.Stats())
			}
			if got.ColdFallbacks != 0 {
				t.Fatalf("step %d: %d warm-basis fallbacks: %v", step, got.ColdFallbacks, got.FallbackVerdicts)
			}
		}
	})
}
