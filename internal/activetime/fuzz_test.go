package activetime

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// fuzzHardnessChain serializes gen.Hardness(24, 2) — a 71-job selector
// chain over 72 slots whose master accumulates enough coupled cut rows to
// clear the hypersparse engagement threshold, so the fuzzer starts from an
// input whose triangular solves genuinely run the Gilbert–Peierls
// reach-DFS over a near-dense eta file rather than the small-dimension
// dense fallback.
func fuzzHardnessChain() []byte {
	var buf bytes.Buffer
	if err := gen.Hardness(24, 2).WriteJSON(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzSolveLP drives the whole LP1 pipeline from raw instance bytes: any
// input that decodes and validates must solve without panicking. Two
// oracle tiers bound the work. Small instances (≤ 8 jobs, horizon ≤ 24)
// are cross-checked against the exact rational engine to 1e-6, and both
// engines must agree on infeasibility. Mid-size instances (≤ 96 jobs,
// horizon ≤ 96) are beyond the rational engine's budget but instead must
// satisfy the kernel path-equivalence invariant: the hypersparse and
// forced-dense engines walk the identical pivot sequence to the identical
// objective — the tier exists so fuzzing exercises the reach-DFS on
// near-dense eta files, which small instances never engage. The seed
// corpus under testdata/fuzz covers the interesting decode shapes;
// `go test -fuzz=FuzzSolveLP` explores from there.
func FuzzSolveLP(f *testing.F) {
	f.Add([]byte(`{"g":2,"jobs":[{"id":0,"release":0,"deadline":4,"length":2}]}`))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":2,"length":2},{"id":1,"release":1,"deadline":3,"length":1}]}`))
	f.Add([]byte(`{"g":3,"jobs":[{"id":0,"release":0,"deadline":6,"length":1},{"id":1,"release":2,"deadline":5,"length":3},{"id":2,"release":1,"deadline":4,"length":2}]}`))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":1,"length":1},{"id":1,"release":0,"deadline":1,"length":1}]}`))
	f.Add(fuzzHardnessChain())
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := core.ReadInstance(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Tier bounds: the exact rational cross-check stays tractable only
		// on tiny instances, the float-vs-float kernel check on mid-size
		// ones, and hostile horizons cannot allocate per-slot state
		// unchecked.
		if len(in.Jobs) > 96 || in.Horizon() > 96 || in.G > 8 {
			return
		}
		small := len(in.Jobs) <= 8 && in.Horizon() <= 24
		res, trace, err := solveTraced(in, false)
		if err == ErrInfeasible {
			if small {
				if _, xerr := SolveLPExact(in); xerr != ErrInfeasible {
					t.Fatalf("float pipeline infeasible, exact pipeline: %v", xerr)
				}
			}
			if _, _, derr := solveTraced(in, true); derr != ErrInfeasible {
				t.Fatalf("hypersparse engine infeasible, dense engine: %v", derr)
			}
			return
		}
		if err != nil {
			t.Fatalf("SolveLP: %v", err)
		}
		if res.Objective < -1e-9 {
			t.Fatalf("negative LP objective %v", res.Objective)
		}
		if small {
			exact, err := SolveLPExact(in)
			if err != nil {
				t.Fatalf("SolveLP optimal but SolveLPExact: %v", err)
			}
			want, _ := exact.Objective.Float64()
			if math.Abs(res.Objective-want) > 1e-6 {
				t.Fatalf("LP objective %.9f, exact %.9f", res.Objective, want)
			}
		}
		dense, denseTrace, err := solveTraced(in, true)
		if err != nil {
			t.Fatalf("hypersparse engine optimal, dense engine: %v", err)
		}
		if dense.Objective != res.Objective {
			t.Fatalf("kernel paths diverged: hypersparse objective %.17g, dense %.17g",
				res.Objective, dense.Objective)
		}
		if len(trace) != len(denseTrace) {
			t.Fatalf("kernel paths diverged: hypersparse %d pivots, dense %d", len(trace), len(denseTrace))
		}
		for i := range trace {
			if trace[i] != denseTrace[i] {
				t.Fatalf("kernel paths diverged at pivot %d: hypersparse (%d,%d), dense (%d,%d)",
					i, trace[i].row, trace[i].col, denseTrace[i].row, denseTrace[i].col)
			}
		}
	})
}
