package activetime

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
)

// FuzzSolveLP drives the whole LP1 pipeline from raw instance bytes: any
// input that decodes and validates must solve without panicking, and on
// instances small enough for the rational engine the float pipeline's
// optimum must match the exact optimum to 1e-6 (and both engines must
// agree on infeasibility). The seed corpus under testdata/fuzz covers the
// interesting decode shapes; `go test -fuzz=FuzzSolveLP` explores from
// there.
func FuzzSolveLP(f *testing.F) {
	f.Add([]byte(`{"g":2,"jobs":[{"id":0,"release":0,"deadline":4,"length":2}]}`))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":2,"length":2},{"id":1,"release":1,"deadline":3,"length":1}]}`))
	f.Add([]byte(`{"g":3,"jobs":[{"id":0,"release":0,"deadline":6,"length":1},{"id":1,"release":2,"deadline":5,"length":3},{"id":2,"release":1,"deadline":4,"length":2}]}`))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":1,"length":1},{"id":1,"release":0,"deadline":1,"length":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := core.ReadInstance(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Bound the work so the exact rational cross-check stays tractable
		// and hostile horizons cannot allocate per-slot state unchecked.
		if len(in.Jobs) > 8 || in.Horizon() > 24 || in.G > 8 {
			return
		}
		res, err := SolveLP(in)
		if err == ErrInfeasible {
			if _, xerr := SolveLPExact(in); xerr != ErrInfeasible {
				t.Fatalf("float pipeline infeasible, exact pipeline: %v", xerr)
			}
			return
		}
		if err != nil {
			t.Fatalf("SolveLP: %v", err)
		}
		exact, err := SolveLPExact(in)
		if err != nil {
			t.Fatalf("SolveLP optimal but SolveLPExact: %v", err)
		}
		want, _ := exact.Objective.Float64()
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("LP objective %.9f, exact %.9f", res.Objective, want)
		}
		if res.Objective < -1e-9 {
			t.Fatalf("negative LP objective %v", res.Objective)
		}
	})
}
