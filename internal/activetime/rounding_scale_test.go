package activetime

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// TestTrialCloseMatchesFreshFlow is the equivalence property behind the
// flow-carrying rewrite of the closing loops: on every family, a closing
// sweep that carries one max flow across all trial closes must make exactly
// the same close/keep decision at every slot as the historical loop that
// recomputed a fresh max flow per probe. The decisions agree because the
// max-flow *value* does not depend on which maximal flow happens to be
// routed — this test is the executable form of that argument.
func TestTrialCloseMatchesFreshFlow(t *testing.T) {
	const seedsPerFamily = 8
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			in := fam.make(seed)
			open := AllSlots(in)
			if !CheckFeasible(in, open) {
				continue
			}
			fc := fullChecker(in, open)
			if !fc.feasible() {
				t.Fatalf("%s seed %d: checker disagrees with CheckFeasible on the full slot set", fam.name, seed)
			}
			isOpen := make(map[core.Time]bool, len(open))
			for _, s := range open {
				isOpen[s] = true
			}
			for _, s := range open {
				// Fresh-flow oracle: close s iff the remaining open set still
				// carries all jobs, computed on a brand-new one-shot network.
				rest := make([]core.Time, 0, len(open))
				for _, u := range open {
					if isOpen[u] && u != s {
						rest = append(rest, u)
					}
				}
				want := CheckFeasible(in, rest)
				if got := fc.trialCloseSlot(s); got != want {
					t.Fatalf("%s seed %d slot %d: incremental close=%v, fresh-flow close=%v",
						fam.name, seed, s, got, want)
				}
				if want {
					isOpen[s] = false
				}
			}
			if fc.coldFlows != 1 {
				t.Errorf("%s seed %d: %d cold flows across the sweep, want exactly 1", fam.name, seed, fc.coldFlows)
			}
		}
	}
}

// TestFeasCheckerToggleEquivalence drives the flow-carrying checker through
// adversarial slot and job toggle sequences — including reopening slots and
// switching jobs off and back on — and checks every feasibility verdict
// against a fresh one-shot max flow over the same configuration. This is
// the state-corruption net for SetCapacityKeepFlow/PushBack bookkeeping:
// any excess mis-cancelled on a capacity decrease shows up as a verdict
// mismatch within a few toggles.
func TestFeasCheckerToggleEquivalence(t *testing.T) {
	const seedsPerFamily = 6
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			in := fam.make(seed)
			slots := AllSlots(in)
			fc := fullChecker(in, slots)
			slotOpen := make(map[core.Time]bool, len(slots))
			for _, s := range slots {
				slotOpen[s] = true
			}
			jobOn := make([]bool, len(in.Jobs))
			for i := range jobOn {
				jobOn[i] = true
			}
			rng := newRand(seed * 7731)
			for step := 0; step < 60; step++ {
				if len(in.Jobs) > 0 && rng.Intn(4) == 0 {
					i := rng.Intn(len(in.Jobs))
					jobOn[i] = !jobOn[i]
					fc.setJob(i, jobOn[i])
				} else {
					s := slots[rng.Intn(len(slots))]
					slotOpen[s] = !slotOpen[s]
					fc.setSlot(s, slotOpen[s])
				}
				var jobs []core.Job
				for i, j := range in.Jobs {
					if jobOn[i] {
						jobs = append(jobs, j)
					}
				}
				var open []core.Time
				for _, s := range slots {
					if slotOpen[s] {
						open = append(open, s)
					}
				}
				var total int64
				for _, j := range jobs {
					total += j.Length
				}
				got, _ := feasibleFlow(in.G, jobs, open, false)
				if want, have := got == total, fc.feasible(); have != want {
					t.Fatalf("%s seed %d step %d: incremental feasible=%v, fresh flow says %v (%d jobs on, %d slots open)",
						fam.name, seed, step, have, want, len(jobs), len(open))
				}
			}
		}
	}
}

// TestMinimalFeasibleStatsCounters pins the incremental-flow contract of
// the closing loop on every family: exactly one cold (from-zero) max flow
// per feasible run no matter how many slots are probed, every window slot
// probed exactly once, and a result that is verified feasible and minimal.
func TestMinimalFeasibleStatsCounters(t *testing.T) {
	const seedsPerFamily = 6
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			in := fam.make(seed)
			res, err := MinimalFeasibleStats(in, MinimalOptions{Strategy: CloseRightToLeft})
			if err == ErrInfeasible {
				continue
			}
			if err != nil {
				t.Fatalf("%s seed %d: %v", fam.name, seed, err)
			}
			if res.ColdFlows != 1 {
				t.Errorf("%s seed %d: %d cold flows, want exactly 1", fam.name, seed, res.ColdFlows)
			}
			if want := len(AllSlots(in)); res.Probes != want {
				t.Errorf("%s seed %d: probed %d slots, want %d", fam.name, seed, res.Probes, want)
			}
			if res.FreeCloses > res.Probes {
				t.Errorf("%s seed %d: %d free closes exceed %d probes", fam.name, seed, res.FreeCloses, res.Probes)
			}
			if verr := core.VerifyActive(in, res.Schedule); verr != nil {
				t.Errorf("%s seed %d: minimal schedule invalid: %v", fam.name, seed, verr)
			}
			if !IsMinimalFeasible(in, res.Schedule.Open) {
				t.Errorf("%s seed %d: MinimalFeasibleStats output is not minimal", fam.name, seed)
			}
		}
	}
}

// TestSlotRepairerOrder pins the repair-candidate policy: rightmost
// window-covered slot first, already-open slots skipped, and exhaustion
// reported as an explicit error instead of the historical 0 sentinel
// (slot 0 is outside every window by validation, so the sentinel silently
// conflated "nothing to open" with a real slot).
func TestSlotRepairerOrder(t *testing.T) {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 2, Deadline: 5, Length: 1},
		{ID: 1, Release: 7, Deadline: 9, Length: 1},
	}}
	rep := newSlotRepairer(in)
	opened := map[core.Time]bool{8: true, 4: true}
	var got []core.Time
	for {
		s, err := rep.next(opened)
		if err != nil {
			break
		}
		got = append(got, s)
		opened[s] = true
	}
	want := []core.Time{9, 5, 3} // slots {3,4,5,8,9} descending, minus the pre-opened {8,4}
	if len(got) != len(want) {
		t.Fatalf("repairer handed out %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("repairer handed out %v, want %v", got, want)
		}
	}
	if _, err := rep.next(opened); err == nil {
		t.Error("exhausted repairer returned a slot instead of an error")
	}
}

// TestRoundingHybridCloseRepairFree pins the instances on which the
// historical due-jobs-only close rule produced integrally infeasible sweeps
// (hundreds of defensive repairs: the proxy mass of a certified close
// migrated past the deadlines of not-yet-due jobs sharing the closed slot,
// breaking their joint Hall condition on mass-bound-tight optimal
// vertices). The hybrid close rule — certify every close against the full
// hybrid solution — must round all of them repair-free under both
// factorization rules, whose different optimal vertices are what exposed
// the bug in the first place.
func TestRoundingHybridCloseRepairFree(t *testing.T) {
	cases := []struct {
		T    int
		seed int64
	}{{1024, 0}, {1024, 5}, {2048, 11}, {4096, 8}}
	for _, c := range cases {
		in := gen.LargeHorizon(gen.RandomConfig{N: c.T / 8, Horizon: c.T, MaxLen: 16, G: 4, Seed: c.seed})
		for _, rule := range []lp.FactorizationRule{lp.FactorizationFT, lp.FactorizationPFI} {
			lpres, err := SolveLPFactorization(in, rule)
			if err != nil {
				t.Fatalf("T=%d seed %d %v: SolveLP: %v", c.T, c.seed, rule, err)
			}
			res, err := roundWithLP(in, lpres)
			if err != nil {
				t.Fatalf("T=%d seed %d %v: round: %v", c.T, c.seed, rule, err)
			}
			if res.Repairs != 0 {
				t.Errorf("T=%d seed %d %v: %d defensive repairs, want 0", c.T, c.seed, rule, res.Repairs)
			}
			if verr := core.VerifyActive(in, res.Schedule); verr != nil {
				t.Errorf("T=%d seed %d %v: rounded schedule invalid: %v", c.T, c.seed, rule, verr)
			}
			if float64(res.Opened) > 2*res.LPValue+1e-6 {
				t.Errorf("T=%d seed %d %v: opened %d > 2·LP = %.6f", c.T, c.seed, rule, res.Opened, 2*res.LPValue)
			}
			if res.ColdFlows > 1 {
				t.Errorf("T=%d seed %d %v: %d cold flows, incremental contract allows 1", c.T, c.seed, rule, res.ColdFlows)
			}
		}
	}
}

// enduranceRoundingFamilies are the two stress families of the ISSUE 7
// scaling gates: the canonical large-horizon family (wide flexible windows,
// n = T/8) and a laminar tree whose rigid full-window jobs keep nearly every
// slot saturated — the worst case for the flow-carrying closing loop, since
// almost no trial close is free.
func enduranceRoundingFamilies(T int) []struct {
	name string
	in   *core.Instance
} {
	laminarN := T / 4
	if laminarN > 48 {
		laminarN = 48 // one depth-5 laminar tree ~saturates g·T; a second root job overflows
	}
	return []struct {
		name string
		in   *core.Instance
	}{
		{"scaling", gen.LargeHorizon(*scalingInstance(T, 8))},
		{"laminar", gen.RandomLaminar(gen.RandomConfig{N: laminarN, Horizon: T, G: 6, Seed: 5})},
	}
}

// runRoundingEndurance is the shared body of the rounding/minimal-feasible
// scaling gates (satellite 4 of ISSUE 7): at horizon T, on both endurance
// families, RoundLP must meet the Theorem 2 bound with zero defensive
// repairs, an intact charging invariant, no dropped proxy mass and at most
// one cold flow; MinimalFeasibleStats must likewise run on a single carried
// flow. All gated quantities are deterministic counters, not wall times.
func runRoundingEndurance(t *testing.T, T int) {
	for _, fam := range enduranceRoundingFamilies(T) {
		start := time.Now()
		res, err := RoundLP(fam.in)
		if err != nil {
			t.Fatalf("%s T=%d: RoundLP: %v", fam.name, T, err)
		}
		if verr := core.VerifyActive(fam.in, res.Schedule); verr != nil {
			t.Fatalf("%s T=%d: rounded schedule invalid: %v", fam.name, T, verr)
		}
		if float64(res.Opened) > 2*res.LPValue+1e-6 {
			t.Errorf("%s T=%d: opened %d > 2·LP = %.6f", fam.name, T, res.Opened, 2*res.LPValue)
		}
		if res.InvariantViolated {
			t.Errorf("%s T=%d: 2·LP charging invariant violated", fam.name, T)
		}
		if res.Repairs != 0 {
			t.Errorf("%s T=%d: %d defensive repairs, want 0 (tolerance drift?)", fam.name, T, res.Repairs)
		}
		if res.ColdFlows > 1 {
			t.Errorf("%s T=%d: rounding ran %d cold flows, incremental contract allows 1", fam.name, T, res.ColdFlows)
		}
		if res.DroppedMass > 1e-3 {
			t.Errorf("%s T=%d: %.6f proxy mass dropped uncharged", fam.name, T, res.DroppedMass)
		}
		minres, err := MinimalFeasibleStats(fam.in, MinimalOptions{Strategy: CloseRightToLeft})
		if err != nil {
			t.Fatalf("%s T=%d: MinimalFeasibleStats: %v", fam.name, T, err)
		}
		if minres.ColdFlows > 1 {
			t.Errorf("%s T=%d: minimal-feasible ran %d cold flows, incremental contract allows 1",
				fam.name, T, minres.ColdFlows)
		}
		if verr := core.VerifyActive(fam.in, minres.Schedule); verr != nil {
			t.Fatalf("%s T=%d: minimal schedule invalid: %v", fam.name, T, verr)
		}
		if lb := res.LPValue; float64(minres.Schedule.Cost()) > 3*lb+1e-6 {
			// Minimal feasible is 3·OPT >= 3·LP only when LP is tight; a trip
			// here means either bound broke, so it is worth failing loudly.
			t.Errorf("%s T=%d: minimal cost %d > 3·LP = %.6f", fam.name, T, minres.Schedule.Cost(), 3*lb)
		}
		t.Logf("%s T=%d: LP=%.3f opened=%d minimal=%d probes=%d free=%d augments=%d cold=%d+%d in %v",
			fam.name, T, res.LPValue, res.Opened, minres.Schedule.Cost(),
			minres.Probes, minres.FreeCloses, minres.FlowAugments, res.ColdFlows, minres.ColdFlows,
			time.Since(start).Round(time.Millisecond))
	}
}

// TestRoundingHorizon8k gates the rounding/minimal-feasible pipeline at
// T = 8192 on both endurance families. Skips in -short and under the
// default go test deadline like the LP endurance tests.
func TestRoundingHorizon8k(t *testing.T) {
	skipUnlessEndurance(t, 10*time.Minute)
	runRoundingEndurance(t, 8192)
}

// TestRoundingHorizon16k is the headline scaling gate of ISSUE 7: RoundLP
// and MinimalFeasible complete at T = 16384 canonical density inside the CI
// scaling budget with zero repairs, an intact invariant and single-digit
// flow effort — gated on the cold-flow counter, not wall time.
func TestRoundingHorizon16k(t *testing.T) {
	if raceEnabled {
		t.Skip("minutes-long run; the race build exercises the 8k gate instead")
	}
	skipUnlessEndurance(t, 20*time.Minute)
	runRoundingEndurance(t, 16384)
}

// TestTheorem1CertificateAtScale exercises the full certificate pipeline —
// Lemma 1 transform plus Lemma 2 witness extraction — on MinimalFeasible
// output at T = 4096, the scale at which the historical per-probe rescans
// made the transform quadratic. The certificate's own check() validates the
// structural properties; here we additionally pin the Theorem 1 arithmetic
// on the transformed schedule.
func TestTheorem1CertificateAtScale(t *testing.T) {
	skipUnlessEndurance(t, 8*time.Minute)
	const T = 4096
	in := gen.LargeHorizon(*scalingInstance(T, 8))
	sched, err := MinimalFeasible(in, MinimalOptions{Strategy: CloseRightToLeft})
	if err != nil {
		t.Fatalf("MinimalFeasible at T=%d: %v", T, err)
	}
	start := time.Now()
	cert, err := BuildTheorem1Certificate(in, sched)
	if err != nil {
		t.Fatalf("BuildTheorem1Certificate at T=%d: %v", T, err)
	}
	if got, want := len(cert.FullSlots)+len(cert.NonFullSlots), len(sched.Open); got != want {
		t.Errorf("certificate partitions %d slots, schedule opens %d", got, want)
	}
	if bound := cert.MassBound + cert.WitnessMass; core.Time(len(sched.Open)) > bound {
		t.Errorf("certificate bound broken: %d open slots > mass %d + witness %d",
			len(sched.Open), cert.MassBound, cert.WitnessMass)
	}
	j1, j2 := cert.TwoTrackSplit()
	if len(j1)+len(j2) != len(cert.Witness) {
		t.Errorf("two-track split loses witness jobs: %d + %d != %d", len(j1), len(j2), len(cert.Witness))
	}
	t.Logf("T=%d: |open|=%d full=%d nonfull=%d witness=%d massBound=%d witnessMass=%d in %v",
		T, len(sched.Open), len(cert.FullSlots), len(cert.NonFullSlots), len(cert.Witness),
		cert.MassBound, cert.WitnessMass, time.Since(start).Round(time.Millisecond))
}
