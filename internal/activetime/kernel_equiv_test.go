package activetime

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// pivotRec is one basis change observed through lp.Problem.SetPivotHook.
type pivotRec struct{ row, col int }

// solveTraced runs the default purging pipeline with a pivot-sequence
// recorder, optionally pinning the simplex engine to the dense
// triangular-solve path. solveTracedRule additionally selects the basis
// factorization rule (solveTraced keeps the Forrest–Tomlin default).
func solveTraced(in *core.Instance, dense bool) (*LPResult, []pivotRec, error) {
	return solveTracedRule(in, dense, lp.FactorizationFT)
}

func solveTracedRule(in *core.Instance, dense bool, rule lp.FactorizationRule) (*LPResult, []pivotRec, error) {
	var trace []pivotRec
	res, err := solveLP(in, lpOptions{
		purge:         true,
		denseKernels:  dense,
		factorization: rule,
		pivotHook:     func(row, col int) { trace = append(trace, pivotRec{row, col}) },
	})
	return res, trace, err
}

// TestKernelPathEquivalence is the hypersparse-kernel property suite: on
// every seeded family of package gen, on the adversarial Hardness gadget
// chains (arXiv:2112.03255 — maximally dual-degenerate masters), and on
// large-horizon instances big enough for the hypersparse path to engage,
// the default engine and the forced-dense engine must walk the *identical
// pivot sequence* — every (row, col) basis change, in order — and land on
// the identical objective, not merely objectives within a tolerance.
//
// This is the strongest statement the kernel refactor admits: the
// Gilbert–Peierls reach is processed in sorted elimination-step order, so
// the hypersparse solves perform the same float operations in the same
// order as the dense solves and the path choice is a pure cost knob that
// cannot perturb the trajectory. A tolerance-only comparison would accept
// a kernel that silently reorders accumulation — exactly the bug class
// the Harris-style magnitude tie-breaks amplify into doubled pivot counts.
//
// The suite also asserts non-vacuity in both directions: forced-dense runs
// must never report hypersparse kernel activity, and the default runs must
// report some in aggregate (otherwise the equivalence is dense-vs-dense).
func TestKernelPathEquivalence(t *testing.T) {
	type instCase struct {
		name string
		in   *core.Instance
	}
	var cases []instCase
	const seedsPerFamily = 22
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			cases = append(cases, instCase{fam.name, fam.make(seed)})
		}
	}
	for _, kg := range []struct{ k, g int }{{1, 2}, {3, 2}, {5, 3}, {8, 4}, {12, 2}} {
		cases = append(cases, instCase{"hardness", gen.Hardness(kg.k, kg.g)})
	}
	// Horizons where the basis dimension clears the hypersparse engagement
	// threshold, so the two engines genuinely take different code paths.
	horizons := []int{512, 1024}
	if !testing.Short() {
		horizons = append(horizons, 2048)
	}
	for _, T := range horizons {
		for _, seed := range []int64{3, 7} {
			cases = append(cases, instCase{"large-horizon",
				gen.LargeHorizon(gen.RandomConfig{N: T / 8, Horizon: T, MaxLen: 16, G: 4, Seed: seed})})
		}
	}

	hyperSeen := 0
	for _, tc := range cases {
		def, defTrace, err := solveTraced(tc.in, false)
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatalf("%s (%s): default engine: %v", tc.name, tc.in.Name, err)
		}
		den, denTrace, err := solveTraced(tc.in, true)
		if err != nil {
			t.Fatalf("%s (%s): dense engine: %v", tc.name, tc.in.Name, err)
		}
		if def.Objective != den.Objective {
			t.Errorf("%s (%s): objective diverged: hypersparse %.17g, dense %.17g",
				tc.name, tc.in.Name, def.Objective, den.Objective)
		}
		if len(defTrace) != len(denTrace) {
			t.Errorf("%s (%s): pivot count diverged: hypersparse %d, dense %d",
				tc.name, tc.in.Name, len(defTrace), len(denTrace))
		} else {
			for i := range defTrace {
				if defTrace[i] != denTrace[i] {
					t.Errorf("%s (%s): pivot %d diverged: hypersparse (%d,%d), dense (%d,%d)",
						tc.name, tc.in.Name, i,
						defTrace[i].row, defTrace[i].col, denTrace[i].row, denTrace[i].col)
					break
				}
			}
		}
		if h := den.Kernel.FtranHyper + den.Kernel.BtranHyper; h != 0 {
			t.Errorf("%s (%s): forced-dense run reported %d hypersparse kernel solves", tc.name, tc.in.Name, h)
		}
		hyperSeen += def.Kernel.FtranHyper + def.Kernel.BtranHyper
	}
	if hyperSeen == 0 {
		t.Fatal("no case engaged the hypersparse kernels; the equivalence suite is vacuous")
	}
	t.Logf("%d cases, %d hypersparse kernel solves on the default path", len(cases), hyperSeen)
}

// TestKernelPathEquivalencePFI re-asserts the dense-vs-hypersparse
// pivot-identity invariant under the product-form-eta ablation on a reduced
// corpus. The invariant is per-rule: within one factorization rule the
// kernel path choice must not perturb the trajectory, but the two rules
// legitimately walk different trajectories (their folds round the basis at
// different pivots), so FT-vs-PFI traces are not compared here — the
// cross-solver metamorphic suite pins both to the exact optimum instead.
func TestKernelPathEquivalencePFI(t *testing.T) {
	type instCase struct {
		name string
		in   *core.Instance
	}
	var cases []instCase
	for _, fam := range lpFamilies {
		for seed := int64(0); seed < 6; seed++ {
			cases = append(cases, instCase{fam.name, fam.make(seed)})
		}
	}
	cases = append(cases,
		instCase{"hardness", gen.Hardness(5, 3)},
		instCase{"large-horizon",
			gen.LargeHorizon(gen.RandomConfig{N: 128, Horizon: 1024, MaxLen: 16, G: 4, Seed: 3})})

	hyperSeen := 0
	for _, tc := range cases {
		def, defTrace, err := solveTracedRule(tc.in, false, lp.FactorizationPFI)
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatalf("%s (%s): default engine: %v", tc.name, tc.in.Name, err)
		}
		den, denTrace, err := solveTracedRule(tc.in, true, lp.FactorizationPFI)
		if err != nil {
			t.Fatalf("%s (%s): dense engine: %v", tc.name, tc.in.Name, err)
		}
		if def.Objective != den.Objective {
			t.Errorf("%s (%s): objective diverged: hypersparse %.17g, dense %.17g",
				tc.name, tc.in.Name, def.Objective, den.Objective)
		}
		if len(defTrace) != len(denTrace) {
			t.Errorf("%s (%s): pivot count diverged: hypersparse %d, dense %d",
				tc.name, tc.in.Name, len(defTrace), len(denTrace))
		} else {
			for i := range defTrace {
				if defTrace[i] != denTrace[i] {
					t.Errorf("%s (%s): pivot %d diverged: hypersparse (%d,%d), dense (%d,%d)",
						tc.name, tc.in.Name, i,
						defTrace[i].row, defTrace[i].col, denTrace[i].row, denTrace[i].col)
					break
				}
			}
		}
		if u := def.Kernel.FTUpdates + den.Kernel.FTUpdates; u != 0 {
			t.Errorf("%s (%s): PFI runs reported %d Forrest–Tomlin updates", tc.name, tc.in.Name, u)
		}
		hyperSeen += def.Kernel.FtranHyper + def.Kernel.BtranHyper
	}
	if hyperSeen == 0 {
		t.Fatal("no case engaged the hypersparse kernels under PFI; the ablation suite is vacuous")
	}
	t.Logf("%d cases, %d hypersparse kernel solves on the PFI default path", len(cases), hyperSeen)
}
