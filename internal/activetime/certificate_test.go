package activetime

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/intervals"
)

// TestTheorem1CertificateRandom turns the proof of Theorem 1 into an
// invariant suite: for random minimal feasible solutions, the Lemma 1
// transformation succeeds, the Lemma 2 witness has all claimed properties,
// and the resulting charging bounds the cost by 3*OPT.
func TestTheorem1CertificateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	built := 0
	for trial := 0; trial < 80; trial++ {
		in := randInstance(rng, 6, 9, 3)
		sched, err := MinimalFeasible(in, MinimalOptions{Shuffle: true, Seed: int64(trial)})
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cert, err := BuildTheorem1Certificate(in, sched)
		if err != nil {
			t.Fatalf("trial %d: %v (instance %+v)", trial, err, in)
		}
		built++
		// The transformed schedule must still be valid and same cost.
		if err := core.VerifyActive(in, sched); err != nil {
			t.Fatalf("trial %d: sigma' invalid: %v", trial, err)
		}
		// Charging: cost = full + nonfull <= massBound + witnessMass.
		cost := core.Time(len(cert.FullSlots) + len(cert.NonFullSlots))
		if cost != sched.Cost() {
			t.Errorf("trial %d: slot partition %d != cost %d", trial, cost, sched.Cost())
		}
		if cost > cert.MassBound+cert.WitnessMass {
			t.Errorf("trial %d: certificate bound broken: %d > %d+%d",
				trial, cost, cert.MassBound, cert.WitnessMass)
		}
		// The two-track split has disjoint windows per side, so each side's
		// mass lower-bounds OPT.
		j1, j2 := cert.TwoTrackSplit()
		for name, side := range map[string][]core.Job{"J1": j1, "J2": j2} {
			if intervals.MaxLiveOverlap(side) > 1 {
				t.Errorf("trial %d: %s windows overlap", trial, name)
			}
		}
		// End-to-end: the full Theorem 1 inequality against exact OPT.
		exact, err := SolveExact(in, ExactOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sched.Cost() > 3*exact.Cost() {
			t.Errorf("trial %d: minimal %d > 3*OPT %d", trial, sched.Cost(), exact.Cost())
		}
		if m := intervals.Mass(j1); m > exact.Cost() && len(j1) > 0 {
			// Each disjoint side individually lower-bounds OPT.
			t.Errorf("trial %d: J1 mass %d exceeds OPT %d", trial, m, exact.Cost())
		}
	}
	if built < 20 {
		t.Fatalf("only %d certificates built; generator too infeasible", built)
	}
}

// TestTheorem1CertificateFig3 checks the certificate on the paper's own
// tight example, where the witness mass is what forces the factor 3.
func TestTheorem1CertificateFig3(t *testing.T) {
	for _, g := range []int{3, 5} {
		gd, err := gen.Fig3(g)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Assign(gd.Instance, gd.BadOpen)
		if err != nil {
			t.Fatal(err)
		}
		cert, err := BuildTheorem1Certificate(gd.Instance, sched)
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		if core.Time(len(cert.NonFullSlots)) > cert.WitnessMass {
			t.Errorf("g=%d: witness mass %d < non-full slots %d",
				g, cert.WitnessMass, len(cert.NonFullSlots))
		}
		// The two long jobs dominate the witness on this gadget.
		if cert.WitnessMass < core.Time(g) {
			t.Errorf("g=%d: witness mass %d suspiciously small", g, cert.WitnessMass)
		}
	}
}

// TestTheorem1CertificateRejectsNonMinimal documents that the certificate
// construction detects (some) non-minimal inputs: a schedule with a closable
// slot can empty it during the Lemma 1 moves.
func TestTheorem1CertificateRejectsInvalid(t *testing.T) {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 1},
	}}
	bad := &core.ActiveSchedule{Open: []core.Time{1, 2}, Assign: map[int][]core.Time{0: {1, 2}}}
	if _, err := BuildTheorem1Certificate(in, bad); err == nil {
		t.Error("schedule over-assigning a unit job was accepted")
	}
}
