package activetime

import (
	"fmt"

	"repro/internal/core"
)

// SolveUnitExact computes an optimal active-time schedule for instances in
// which every job has unit length. It plays the role of the exact algorithm
// of Chang, Gabow and Khuller [2] that the paper builds on.
//
// Method (documented as substitution #1 in DESIGN.md): with unit jobs the
// job-slot bipartite graph is convex, so by Hall's theorem a set of open
// slots is feasible iff for every slot interval [a,b] the number of jobs
// whose window lies inside [a,b] is at most g times the number of open
// slots in [a,b]. Minimizing the number of open slots subject to these
// covering constraints is an interval multicover problem; writing
// S_t = #open slots among 1..t it becomes the difference-constraint system
//
//	S_b - S_{a-1} >= ceil(demand(a,b)/g),  0 <= S_t - S_{t-1} <= 1,  S_0 = 0,
//
// whose pointwise-minimal solution (hence minimal S_T) is given by longest
// paths from node 0, computed with Bellman-Ford. The solution is integral
// because the constraint graph has integer weights.
func SolveUnitExact(in *core.Instance) (*core.ActiveSchedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.AllUnit() {
		return nil, fmt.Errorf("activetime: SolveUnitExact requires unit jobs")
	}
	T := int(in.Horizon())
	// Distinct window boundaries.
	firstSet := make(map[core.Time]bool)
	lastSet := make(map[core.Time]bool)
	for _, j := range in.Jobs {
		firstSet[j.FirstSlot()] = true
		lastSet[j.LastSlot()] = true
	}
	type cons struct {
		a, b core.Time
		req  int
	}
	var cs []cons
	for a := range firstSet {
		for b := range lastSet {
			if b < a {
				continue
			}
			count := 0
			for _, j := range in.Jobs {
				if j.FirstSlot() >= a && j.LastSlot() <= b {
					count++
				}
			}
			if count == 0 {
				continue
			}
			req := (count + in.G - 1) / in.G
			if int(b-a)+1 < req {
				return nil, ErrInfeasible
			}
			cs = append(cs, cons{a, b, req})
		}
	}
	// Longest path via Bellman-Ford on nodes 0..T.
	const negInf = int64(-1) << 60
	dist := make([]int64, T+1)
	for t := 1; t <= T; t++ {
		dist[t] = negInf
	}
	relax := func() bool {
		changed := false
		for t := 1; t <= T; t++ {
			if dist[t-1] != negInf && dist[t-1] > dist[t] {
				dist[t] = dist[t-1] // S_t >= S_{t-1}
				changed = true
			}
		}
		for t := T; t >= 1; t-- {
			if dist[t] != negInf && dist[t]-1 > dist[t-1] {
				dist[t-1] = dist[t] - 1 // S_{t-1} >= S_t - 1
				changed = true
			}
		}
		for _, c := range cs {
			if dist[c.a-1] != negInf && dist[c.a-1]+int64(c.req) > dist[c.b] {
				dist[c.b] = dist[c.a-1] + int64(c.req)
				changed = true
			}
		}
		return changed
	}
	for iter := 0; ; iter++ {
		if !relax() {
			break
		}
		if iter > T+len(cs)+2 {
			// A positive cycle would mean an interval requires more open
			// slots than it has; we pre-checked that, so this is defensive.
			return nil, ErrInfeasible
		}
	}
	open := make([]core.Time, 0, dist[T])
	for t := 1; t <= T; t++ {
		if dist[t] > dist[t-1] {
			open = append(open, core.Time(t))
		}
	}
	sched, err := Assign(in, open)
	if err != nil {
		return nil, fmt.Errorf("activetime: unit-exact slot set infeasible (bug): %w", err)
	}
	return sched, nil
}
