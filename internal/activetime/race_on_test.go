//go:build race

package activetime

// raceEnabled reports whether this test binary was built with the race
// detector. The canonical-density 16k endurance test skips under race
// (its minutes-long run would dominate the race job); the n = T/32 light
// variant is the race-mode endurance run.
const raceEnabled = true
