package activetime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lp"
)

// SessionStats counts a session's lifetime delta activity. Every escape
// hatch the delta machinery can take is a counter here — a session that
// quietly re-solved everything from scratch would defeat its purpose, so
// the fallbacks are loud and the scaling gates pin the warm ones at zero.
type SessionStats struct {
	// Solves counts Solve calls that ran the cut loop (cache hits on an
	// already-solved session are not counted); AddCalls and RemoveCalls the
	// successful instance mutations.
	Solves, AddCalls, RemoveCalls int
	// DeltaPivots is the simplex pivot total across every re-solve after
	// the first — the effort figure the delta-vs-cold experiments compare
	// against a cold solve of the same mutated instance.
	DeltaPivots int
	// ColdRebuilds counts RemoveJobs calls that could not excise the dead
	// rows from the live basis (a departed job's row was tight, or the
	// basis was out of sync with unsolved structural edits) and rebuilt the
	// master instead, surrendering the warm start.
	ColdRebuilds int
	// ColdFallbacks sums the lp-level warm-basis abandonments
	// (lp.Solution.ColdFallbacks) across all of the session's solves.
	ColdFallbacks int
}

// Session is a live active-time LP instance that absorbs job arrivals and
// departures between solves without rebuilding its state. It owns a master
// problem whose basis survives mutations, an incremental separation network
// patched via SetCapacityKeepFlow instead of reconstruction, and the cut
// registry that mirrors the master's rows — so a re-solve after a delta
// pays for the delta, not for the instance.
//
// AddJobs appends slot columns (priced into the live basis by the engine's
// column splice) and seed covering rows; RemoveJobs drops the departed
// jobs' rows from the live basis when they are slack and takes a counted
// cold rebuild when one is tight. The column space is monotone: slots a
// removal strands beyond the current horizon keep their columns, which no
// surviving row references, so they rest at zero and the objective equals a
// cold solve of the mutated instance — the delta-vs-cold metamorphic suite
// asserts exactly that, to 1e-6, on every generator family.
//
// Sessions are not safe for concurrent use; the solve server serializes
// access per tenant.
type Session struct {
	in      *core.Instance // owned deep copy; mutated by deltas
	cols    int            // master column count: the max horizon ever seen
	prob    *lp.Problem
	basis   *lp.Basis
	sep     *separator
	reg     *cutRegistry
	opts    lpOptions
	posByID map[int]int // job ID → current position in in.Jobs
	solved  bool        // last is current for the present instance
	last    *LPResult
	stats   SessionStats
}

// NewSession validates the instance and builds a live session around a deep
// copy of it (later mutations never touch the caller's value). No solve is
// performed; the first Solve runs the cold Benders loop. Returns
// ErrInfeasible if some job cannot meet its deadline even with every slot
// open.
func NewSession(in *core.Instance) (*Session, error) {
	return newSession(in, lpOptions{purge: true})
}

func newSession(in *core.Instance, opts lpOptions) (*Session, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !CheckFeasible(in, AllSlots(in)) {
		return nil, ErrInfeasible
	}
	own := in.Clone()
	prob, err := newMaster(own)
	if err != nil {
		return nil, err
	}
	s := &Session{
		in:      own,
		cols:    int(own.Horizon()),
		prob:    prob,
		opts:    opts,
		posByID: make(map[int]int, len(own.Jobs)),
	}
	s.applyOpts()
	s.sep = newSeparator(own)
	s.sep.incremental = true
	s.reg = newCutRegistry(prob.NumConstraints())
	for i, j := range own.Jobs {
		s.posByID[j.ID] = i
	}
	return s, nil
}

func (s *Session) applyOpts() {
	s.prob.SetPricing(s.opts.pricing)
	s.prob.SetFactorization(s.opts.factorization)
	s.prob.SetDenseKernels(s.opts.denseKernels)
	s.prob.SetPivotHook(s.opts.pivotHook)
}

// Stats returns the session's lifetime delta counters.
func (s *Session) Stats() SessionStats { return s.stats }

// NumJobs returns the current job count.
func (s *Session) NumJobs() int { return len(s.in.Jobs) }

// Instance returns a deep copy of the session's current instance.
func (s *Session) Instance() *core.Instance { return s.in.Clone() }

// Fingerprint digests the session's current instance — G plus every job's
// ID, window and length — into 128 bits, order-independently: two sessions
// holding the same job multiset fingerprint equal no matter which mutation
// sequences produced them. The solve server keys its result cache on it.
func (s *Session) Fingerprint() [2]uint64 {
	const phi = 0x9e3779b97f4a7c15
	jobHash := func(j core.Job, seed uint64) uint64 {
		h := seed
		for _, v := range [...]uint64{uint64(j.ID), uint64(j.Release), uint64(j.Deadline), uint64(j.Length)} {
			for b := 0; b < 64; b += 8 {
				h ^= (v >> b) & 0xff
				h *= fnvPrime
			}
		}
		return h
	}
	var sum, xor uint64
	for _, j := range s.in.Jobs {
		sum += jobHash(j, fnvOffset)
		xor ^= jobHash(j, phi)
	}
	g := uint64(s.in.G)
	return [2]uint64{sum ^ (g * fnvPrime), xor + g*phi}
}

// Solve runs the Benders cut loop to optimality from the session's current
// state. The first call on a fresh session is the cold solve (identical to
// SolveLP); calls after AddJobs/RemoveJobs warm-start from the surviving
// basis and cuts, typically paying a small fraction of the cold pivot
// count. Calling Solve again without an intervening mutation returns the
// cached result.
func (s *Session) Solve() (*LPResult, error) {
	if s.solved {
		return s.last, nil
	}
	T := int(s.in.Horizon())
	batchCap := s.opts.batchCap
	if batchCap == 0 {
		batchCap = adaptiveBatchCap(s.in)
	}
	delta := s.stats.Solves > 0
	s.stats.Solves++
	res := &LPResult{Cuts: len(s.reg.rows)}
	maxRounds := 20*T + 200
	for round := 0; round < maxRounds; round++ {
		res.Rounds++
		sol, nextBasis, err := s.prob.ResolveFrom(s.basis)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("activetime: LP master %v", sol.Status)
		}
		s.basis = nextBasis
		res.Pivots += sol.Iterations
		res.Refactors += sol.Refactors
		res.Kernel.Accumulate(sol.Kernel)
		if sol.ColdFallbacks > 0 {
			res.ColdFallbacks += sol.ColdFallbacks
			res.FallbackVerdicts = append(res.FallbackVerdicts, sol.FallbackVerdict)
		}
		y := sol.X
		if s.opts.purge {
			s.reg.observeX(y)
			res.Purged += s.reg.purge(s.prob, s.basis)
		}
		added := 0
		for _, A := range s.sep.separateAll(y, batchCap) {
			if s.reg.inMaster(A) {
				continue
			}
			cols, vals, rhs := cutFor(s.in, A)
			if err := s.prob.AddSparse(cols, vals, lp.GE, rhs); err != nil {
				return nil, err
			}
			s.reg.add(A, cols, vals, rhs)
			added++
		}
		if added == 0 {
			// Converged: either the probe found no violated set, or every
			// set it surfaced is already in the master and satisfied within
			// the solver's tolerance (the probe's 1e-6 flow slack and the
			// master's 1e-6 row tolerance meet here). Columns the monotone
			// width keeps beyond the current horizon appear in no row and
			// rest at zero, so the objective is the mutated instance's own.
			res.Y = make([]float64, T+1)
			for t := 1; t <= T; t++ {
				v := y[t-1]
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				res.Y[t] = v
			}
			res.Objective = sol.Objective
			if delta {
				s.stats.DeltaPivots += res.Pivots
			}
			s.stats.ColdFallbacks += res.ColdFallbacks
			s.solved = true
			s.last = res
			return res, nil
		}
		res.Cuts += added
	}
	return nil, fmt.Errorf("activetime: LP cut generation did not converge in %d rounds", maxRounds)
}

// AddJobs splices new jobs into the live session: the master gains any new
// slot columns (shaped with the y cost and bound, priced into the live
// basis at the next re-solve) and one seed covering row per job, the
// separation network gains the new slot and job nodes with all routed flow
// preserved, and the registry mirrors the appended rows. On a validation or
// feasibility error the session is unchanged: the prospective instance is
// checked before anything mutates, so an infeasible batch (ErrInfeasible)
// is rejected atomically.
func (s *Session) AddJobs(jobs []core.Job) error {
	if len(jobs) == 0 {
		return nil
	}
	prosp := s.in.Clone()
	prosp.Jobs = append(prosp.Jobs, jobs...)
	if err := prosp.Validate(); err != nil {
		return err
	}
	if !CheckFeasible(prosp, AllSlots(prosp)) {
		return ErrInfeasible
	}
	if newT := int(prosp.Horizon()); newT > s.cols {
		j0 := s.prob.AddColumns(newT - s.cols)
		for j := j0; j < newT; j++ {
			s.prob.SetObjective(j, 1)
			s.prob.SetUpper(j, 1)
		}
		s.sep.addSlots(newT)
		s.cols = newT
	}
	for _, j := range jobs {
		pos := len(s.in.Jobs)
		s.in.Jobs = append(s.in.Jobs, j)
		s.posByID[j.ID] = pos
		s.sep.addJob(j)
		var cols []int
		var vals []float64
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			cols = append(cols, int(t)-1)
			vals = append(vals, 1)
		}
		if err := s.prob.AddSparse(cols, vals, lp.GE, float64(j.Length)); err != nil {
			return fmt.Errorf("activetime: AddJobs seed row: %w", err)
		}
		s.reg.addSeedRow(pos)
	}
	s.stats.AddCalls++
	s.solved = false
	return nil
}

// RemoveJobs removes the jobs with the given IDs (duplicates tolerated,
// unknown IDs an error before anything mutates; emptying the instance is
// rejected). The departed jobs' seed rows and every cut whose job set
// touches them leave the master: excised from the live basis in place when
// all of them are slack, or — the counted escape hatch, never silent — by
// rebuilding the master from the registry mirror when one is tight
// (ColdRebuilds), surrendering the warm basis for the next Solve. The
// separation network cancels only the departed jobs' flow; the registry
// remaps every surviving cut into the compacted job positions.
func (s *Session) RemoveJobs(ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	dead := make([]bool, len(s.in.Jobs))
	nDead := 0
	for _, id := range ids {
		pos, ok := s.posByID[id]
		if !ok {
			return fmt.Errorf("activetime: RemoveJobs: no job with ID %d", id)
		}
		if !dead[pos] {
			dead[pos] = true
			nDead++
		}
	}
	if nDead == len(s.in.Jobs) {
		return fmt.Errorf("activetime: RemoveJobs would empty the instance")
	}
	mask := s.reg.rowsTouching(dead)
	var drop []int
	for i, d := range mask {
		if d {
			drop = append(drop, i)
		}
	}
	rebuilt := false
	if err := s.prob.RemoveRows(drop, s.basis); err != nil {
		// A dead row is tight in the live basis (or the basis is out of
		// sync): removal cannot stay warm. Nothing was mutated; fall back
		// to rebuilding the master below, after the mirrors compact.
		rebuilt = true
	}
	s.reg.dropRows(mask)
	s.sep.removeJobs(dead)
	posMap := make([]int32, len(s.in.Jobs))
	out := 0
	for i, j := range s.in.Jobs {
		if dead[i] {
			posMap[i] = -1
			delete(s.posByID, j.ID)
			continue
		}
		posMap[i] = int32(out)
		s.in.Jobs[out] = j
		s.posByID[j.ID] = out
		out++
	}
	s.in.Jobs = s.in.Jobs[:out]
	s.reg.remapJobs(posMap, out)
	if rebuilt {
		if err := s.rebuildMaster(); err != nil {
			return err
		}
		s.basis = nil
		s.stats.ColdRebuilds++
	}
	s.stats.RemoveCalls++
	s.solved = false
	return nil
}

// rebuildMaster reconstructs the master from the registry's row mirror at
// the session's monotone column width, preserving the surviving row order,
// after an in-place row removal was refused.
func (s *Session) rebuildMaster() error {
	prob := lp.NewProblem(s.cols)
	for t := 0; t < s.cols; t++ {
		prob.SetObjective(t, 1)
		prob.SetUpper(t, 1)
	}
	for _, rr := range s.reg.rows {
		if rr.rec == nil {
			j := s.in.Jobs[rr.job]
			var cols []int
			var vals []float64
			for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
				cols = append(cols, int(t)-1)
				vals = append(vals, 1)
			}
			if err := prob.AddSparse(cols, vals, lp.GE, float64(j.Length)); err != nil {
				return fmt.Errorf("activetime: rebuildMaster: %w", err)
			}
		} else if err := prob.AddSparse(rr.rec.cols, rr.rec.vals, lp.GE, rr.rec.rhs); err != nil {
			return fmt.Errorf("activetime: rebuildMaster: %w", err)
		}
	}
	s.prob = prob
	s.applyOpts()
	return nil
}
