package activetime

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrSearchBudget is wrapped by SolveExact when the branch-and-bound node
// budget is exhausted before optimality is proven; callers that only want
// the optimum "where reachable" (the approximation-gap experiment) detect
// it with errors.Is and fall back to bound-only reporting.
var ErrSearchBudget = errors.New("activetime: exact search node budget exhausted")

// ExactOptions bounds the exact search.
type ExactOptions struct {
	// MaxNodes caps the number of branch-and-bound nodes explored
	// (default 5e6). The search returns an error wrapping ErrSearchBudget
	// when exceeded.
	MaxNodes int64
}

// SolveExact computes an optimal active-time schedule by branch and bound
// over slot open/close decisions. It is an exact baseline intended for small
// instances (the experiments use it to measure approximation ratios); the
// paper conjectures the problem is NP-hard, so exponential worst-case time
// is expected.
//
// Search design: slots are decided right to left, trying "closed" before
// "open" so cheap solutions surface early; a state is pruned when the jobs
// no longer fit even with every undecided slot open (max-flow check), or
// when the committed open count cannot beat the incumbent. The incumbent is
// warm-started with a minimal feasible solution (Theorem 1), and the LP
// optimum rounded up provides a global lower bound for early exit.
//
// All pruning max-flows run on one persistent feasibility checker whose
// slot set is toggled incrementally along the DFS (closing a slot before
// the "closed" branch, restoring it after), so no search node builds a
// network.
func SolveExact(in *core.Instance, opts ExactOptions) (*core.ActiveSchedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 5_000_000
	}
	slots := AllSlots(in)
	fc := fullChecker(in, slots)
	if !fc.feasible() {
		return nil, ErrInfeasible
	}
	// Warm start.
	warm, err := MinimalFeasible(in, MinimalOptions{Strategy: CloseRightToLeft})
	if err != nil {
		return nil, err
	}
	best := warm.Open
	// Global lower bounds: mass bound and LP bound.
	massLB := int((in.TotalLength() + int64(in.G) - 1) / int64(in.G))
	lb := massLB
	if lpres, lperr := SolveLP(in); lperr == nil {
		if l := int(lpres.Objective - 1e-6 + 0.999999); l > lb {
			lb = l
		}
	}
	if len(best) <= lb {
		return Assign(in, best)
	}
	s := &exactSearch{in: in, slots: slots, fc: fc, best: append([]core.Time(nil), best...), lb: lb, maxNodes: maxNodes}
	// Decide from the rightmost slot down.
	s.dfs(len(slots)-1, nil)
	if s.nodesExceeded {
		return nil, fmt.Errorf("%w (%d nodes)", ErrSearchBudget, maxNodes)
	}
	return Assign(in, s.best)
}

type exactSearch struct {
	in            *core.Instance
	slots         []core.Time
	fc            *feasChecker // open set == committedOpen ∪ slots[:idx+1]
	best          []core.Time
	lb            int
	nodes         int64
	maxNodes      int64
	nodesExceeded bool
}

// dfs decides slots[idx]; committedOpen holds slots already opened among
// indices greater than idx. The persistent checker's open set mirrors
// committedOpen ∪ slots[:idx+1] on entry: the "closed" branch toggles one
// slot off for its subtree and restores it, and the "open" branch inherits
// the state unchanged, so each node's pruning max-flow is one Reset+solve
// with no network construction.
func (s *exactSearch) dfs(idx int, committedOpen []core.Time) {
	if s.nodesExceeded || len(s.best) <= s.lb {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.nodesExceeded = true
		return
	}
	if len(committedOpen) >= len(s.best) {
		return // cannot improve
	}
	// Feasibility with all undecided slots open.
	if !s.fc.feasible() {
		return
	}
	if idx < 0 {
		// All decided and feasible: committedOpen is a full solution.
		if len(committedOpen) < len(s.best) {
			s.best = append([]core.Time(nil), committedOpen...)
		}
		return
	}
	// Try closing slots[idx] first.
	s.fc.setSlot(s.slots[idx], false)
	s.dfs(idx-1, committedOpen)
	s.fc.setSlot(s.slots[idx], true)
	// Then opening it.
	s.dfs(idx-1, append(committedOpen, s.slots[idx]))
}
