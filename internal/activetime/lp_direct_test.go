package activetime

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// buildFullLP1 instantiates the paper's LP1 verbatim, with all T·n
// assignment variables x_{t,j} alongside the slot variables y_t:
//
//	min Σ y_t  s.t.  x_{t,j} <= y_t,  Σ_j x_{t,j} <= g·y_t,
//	                 Σ_t x_{t,j} >= p_j,  0 <= y <= 1, x >= 0,
//	                 x_{t,j} = 0 outside windows.
//
// It exists only to cross-validate the Benders decomposition in SolveLP,
// which never materializes the x variables.
func buildFullLP1(in *core.Instance) *lp.Problem {
	T := int(in.Horizon())
	n := len(in.Jobs)
	// Variable layout: y_t at t-1 (T vars), x_{t,j} at T + (t-1)*n + j.
	p := lp.NewProblem(T + T*n)
	xv := func(t, j int) int { return T + (t-1)*n + j }
	for t := 1; t <= T; t++ {
		p.SetObjective(t-1, 1)
		if err := p.AddSparse([]int{t - 1}, []float64{1}, lp.LE, 1); err != nil {
			panic(err)
		}
	}
	for jIdx, j := range in.Jobs {
		var cols []int
		var vals []float64
		for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
			// x_{t,j} - y_t <= 0
			if err := p.AddSparse(
				[]int{xv(int(t), jIdx), int(t) - 1},
				[]float64{1, -1}, lp.LE, 0); err != nil {
				panic(err)
			}
			cols = append(cols, xv(int(t), jIdx))
			vals = append(vals, 1)
		}
		// Σ_t x_{t,j} >= p_j
		if err := p.AddSparse(cols, vals, lp.GE, float64(j.Length)); err != nil {
			panic(err)
		}
	}
	for t := 1; t <= T; t++ {
		var cols []int
		var vals []float64
		for jIdx, j := range in.Jobs {
			if t >= int(j.FirstSlot()) && t <= int(j.LastSlot()) {
				cols = append(cols, xv(t, jIdx))
				vals = append(vals, 1)
			}
		}
		if len(cols) == 0 {
			continue
		}
		// Σ_j x_{t,j} - g·y_t <= 0
		cols = append(cols, t-1)
		vals = append(vals, -float64(in.G))
		if err := p.AddSparse(cols, vals, lp.LE, 0); err != nil {
			panic(err)
		}
	}
	return p
}

// TestSolveLPMatchesDirectFormulation is the strongest check of the Benders
// construction: for random instances the projected cut-generation optimum
// must equal the full LP1 optimum solved by plain simplex.
func TestSolveLPMatchesDirectFormulation(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 5, 7, 3)
		if !CheckFeasible(in, AllSlots(in)) {
			continue
		}
		benders, err := SolveLP(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		direct, err := lp.Solve(buildFullLP1(in))
		if err != nil {
			t.Fatalf("trial %d: direct LP: %v", trial, err)
		}
		if direct.Status != lp.Optimal {
			t.Fatalf("trial %d: direct LP status %v", trial, direct.Status)
		}
		if math.Abs(direct.Objective-benders.Objective) > 1e-5 {
			t.Errorf("trial %d: Benders %v != direct LP1 %v (instance %+v)",
				trial, benders.Objective, direct.Objective, in)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestSolveLPGapGadgetDirectExact solves the full LP1 of the integrality-
// gap gadget with the exact rational simplex: the optimum must be exactly
// g+1, certifying both LP engines and the Benders projection at once.
func TestSolveLPGapGadgetDirectExact(t *testing.T) {
	for _, g := range []int{2, 3} {
		in := gen.IntegralityGap(g)
		prob := buildFullLP1(in)
		exact, err := lp.SolveExact(prob)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Status != lp.Optimal {
			t.Fatalf("g=%d: exact status %v", g, exact.Status)
		}
		want := int64(g + 1)
		if exact.Objective.Cmp(new(big.Rat).SetInt64(want)) != 0 {
			t.Errorf("g=%d: exact LP1 optimum %s, want %d", g, exact.Objective.RatString(), want)
		}
		benders, err := SolveLP(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(benders.Objective-float64(want)) > 1e-6 {
			t.Errorf("g=%d: Benders %v, want exactly %d", g, benders.Objective, want)
		}
	}
}
