package activetime

import (
	"math"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/lp"
)

// scaling16kInstance is the pinned endurance instance of the ROADMAP
// record: the laminar/nested scaling family at T = 16384, seed 3, with the
// job density chosen by the caller (n = T/8 canonical, n = T/32 light).
func scaling16kInstance(density int) *gen.RandomConfig {
	return &gen.RandomConfig{N: 16384 / density, Horizon: 16384, MaxLen: 16, G: 4, Seed: 3}
}

// TestSolveLPHorizon16k is the horizon-scale endurance test at the paper's
// canonical job density: a genuine T = 16384, n = T/8 instance of the
// scaling family must solve — the workload that PR 4 left beyond a
// 50-minute budget (its pricing sweep over thousands of wide cut rows
// dominated) and that dual steepest-edge pricing, the dual-feasible cold
// start, and incremental separation bring into the CI scaling-job budget.
// It skips in -short runs, under the race detector — where the
// instruction-level slowdown would turn minutes into the better part of an
// hour; TestSolveLPHorizon16kLight is the race-mode endurance run — and
// under go test's default 10-minute deadline, so plain `go test ./...`
// stays fast and timeout-safe: the CI scaling job opts in by raising
// -timeout (its hard ceiling doubles as this test's budget).
func TestSolveLPHorizon16k(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-slot canonical-density endurance test")
	}
	if raceEnabled {
		t.Skip("minutes-long run; the race build exercises TestSolveLPHorizon16kLight instead")
	}
	if d, ok := t.Deadline(); ok && time.Until(d) < 15*time.Minute {
		t.Skip("needs a raised -timeout (the CI scaling job passes -timeout 40m)")
	}
	cfg := scaling16kInstance(8)
	in := gen.LargeHorizon(*cfg)
	def, err := SolveLP(in)
	if err != nil {
		t.Fatalf("SolveLP at T=16384 n=T/8: %v", err)
	}
	if def.Objective <= 0 {
		t.Fatalf("degenerate LP optimum %v", def.Objective)
	}
	// Independent lower bound: opening fewer than P/g slots cannot host
	// the total demand P, so any valid LP optimum is at least P/g.
	demand := 0.0
	for _, j := range in.Jobs {
		demand += float64(j.Length)
	}
	if lb := demand / float64(in.G); def.Objective < lb-1e-6 {
		t.Fatalf("LP optimum %.6f below the demand bound P/g = %.6f", def.Objective, lb)
	}
	if def.Purged == 0 {
		t.Error("cut purging never fired at T=16384; lifecycle policy is dead at scale")
	}
	t.Logf("T=16384 n=%d: obj=%.3f rounds=%d cuts=%d purged=%d pivots=%d refactors=%d",
		len(in.Jobs), def.Objective, def.Rounds, def.Cuts, def.Purged, def.Pivots, def.Refactors)
}

// TestSolveLPHorizon16kLight keeps the n = T/32 density of the PR 4
// endurance test: the full 16k horizon, master width and cut lifecycle
// machinery at a density affordable under the race detector, where the
// canonical-density test skips. The purging pipeline must agree with the
// never-purging fixed-batch reference.
func TestSolveLPHorizon16kLight(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-slot endurance test")
	}
	cfg := scaling16kInstance(32)
	in := gen.LargeHorizon(*cfg)
	def, err := SolveLP(in)
	if err != nil {
		t.Fatalf("SolveLP at T=16384: %v", err)
	}
	fixed, err := SolveLPFixedBatch(in, 32)
	if err != nil {
		t.Fatalf("SolveLPFixedBatch at T=16384: %v", err)
	}
	if math.Abs(def.Objective-fixed.Objective) > 1e-6 {
		t.Fatalf("purged LP %.9f != fixed-batch LP %.9f", def.Objective, fixed.Objective)
	}
	if def.Objective <= 0 {
		t.Fatalf("degenerate LP optimum %v", def.Objective)
	}
	if def.Purged == 0 {
		t.Error("cut purging never fired at T=16384; lifecycle policy is dead at scale")
	}
	t.Logf("T=16384 n=%d: obj=%.3f rounds=%d cuts=%d purged=%d pivots=%d refactors=%d",
		len(in.Jobs), def.Objective, def.Rounds, def.Cuts, def.Purged, def.Pivots, def.Refactors)
}

// TestPricingPivotReduction locks the tentpole claim of the pricing work
// against the E18 instance (seed 7, the BENCH_PR4/PR5 baseline family):
// at T = 4096 the default steepest-edge pipeline must spend at most half
// the simplex pivots of the Dantzig-baseline pipeline (most-infeasible
// dual rows, full primal scans, two-phase cold starts — the PR 4
// behavior), and at T = 2048 it must still spend strictly fewer. Pivot
// counts are deterministic for a pinned instance, so this is a hard gate,
// not a flaky timing assertion; BENCH_PR5.json records the wall-clock win
// alongside.
func TestPricingPivotReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pricing comparison")
	}
	for _, tc := range []struct {
		T      int
		factor int // required pivot ratio dantzig/steepest-edge
	}{
		{2048, 1},
		{4096, 2},
	} {
		in := gen.LargeHorizon(gen.RandomConfig{N: tc.T / 8, Horizon: tc.T, MaxLen: 16, G: 4, Seed: 7})
		se, err := SolveLP(in)
		if err != nil {
			t.Fatalf("T=%d steepest-edge: %v", tc.T, err)
		}
		dz, err := SolveLPPricing(in, lp.PricingDantzig)
		if err != nil {
			t.Fatalf("T=%d dantzig: %v", tc.T, err)
		}
		if math.Abs(se.Objective-dz.Objective) > 1e-6 {
			t.Fatalf("T=%d: steepest-edge LP %.9f != dantzig LP %.9f", tc.T, se.Objective, dz.Objective)
		}
		if se.Pivots*tc.factor >= dz.Pivots {
			t.Errorf("T=%d: steepest-edge spent %d pivots, dantzig %d; want ≥%d× reduction",
				tc.T, se.Pivots, dz.Pivots, tc.factor)
		}
		t.Logf("T=%d: steepest-edge %d pivots, dantzig %d (%.1fx)",
			tc.T, se.Pivots, dz.Pivots, float64(dz.Pivots)/float64(se.Pivots))
	}
}
