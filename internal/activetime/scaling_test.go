package activetime

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/lp"
)

// scalingInstance is the pinned endurance family of the ROADMAP record:
// the large-horizon scaling family at seed 3, with the horizon and job
// density chosen by the caller (n = T/8 canonical, n = T/32 light).
func scalingInstance(T, density int) *gen.RandomConfig {
	return &gen.RandomConfig{N: T / density, Horizon: T, MaxLen: 16, G: 4, Seed: 3}
}

// skipUnlessEndurance is the shared gate of the minutes-long scaling
// tests: they skip in -short runs and under go test's default 10-minute
// deadline, so plain `go test ./...` stays fast and timeout-safe — the CI
// scaling job opts in by raising -timeout, and its hard ceiling doubles as
// each test's budget. budget is the head-room the test wants on the
// deadline clock (generous: the same gate must hold on slow runners and
// under the race detector's instruction-level slowdown).
func skipUnlessEndurance(t *testing.T, budget time.Duration) {
	t.Helper()
	if testing.Short() {
		t.Skip("minutes-long endurance test")
	}
	if d, ok := t.Deadline(); ok && time.Until(d) < budget {
		t.Skipf("needs a raised -timeout with ≥ %v head-room (the CI scaling job passes -timeout 40m)", budget)
	}
}

// checkKernelRegime asserts the tentpole property of the hypersparse
// kernel work on an endurance solve: per-pivot triangular-solve cost
// tracking result nonzeros, not the basis dimension m. All gates are
// deterministic counters — pivot counts and kernel nonzero averages are
// exactly reproducible for a pinned instance — except the final µs-per-
// pivot ceiling, which is a catastrophe backstop (dense-everywhere
// fallback, trajectory explosion) padded far above any plausible runner
// jitter rather than a tight wall-clock gate.
//
// maxPivots is calibrated against the known-good trajectory with head-room
// below the nearest observed bad basin: trajectory-perturbing changes
// (refactorization cadence, float accumulation order) land in basins that
// at least double the pivot count, so a ~5% ceiling separates cleanly.
func checkKernelRegime(t *testing.T, res *LPResult, maxPivots, maxUsPerPivot int, elapsed time.Duration) {
	t.Helper()
	if res.Pivots > maxPivots {
		t.Errorf("pivot trajectory regressed: %d pivots > %d ceiling (bad pricing/ordering basins double the count)",
			res.Pivots, maxPivots)
	}
	if share := res.Kernel.HyperShare(); share < 0.2 {
		t.Errorf("hypersparse kernels carried only %.1f%% of triangular solves; want ≥ 20%% at this scale", 100*share)
	}
	// The surviving cut rows bound the final basis dimension m; a dense
	// pivot-row BTRAN would average m nonzeros, so the hypersparse results
	// staying under m/4 certifies the kernels exploit genuine sparsity.
	if m := res.Cuts - res.Purged; res.Kernel.BtranHyper > 0 {
		if avg := res.Kernel.BtranAvgNNZ(); avg > float64(m)/4 {
			t.Errorf("hypersparse BTRAN results average %.0f nonzeros, above m/4 = %d: kernel cost no longer tracks sparsity",
				avg, m/4)
		}
	}
	usPerPivot := float64(elapsed.Microseconds()) / float64(res.Pivots)
	if usPerPivot > float64(maxUsPerPivot) {
		t.Errorf("%.0f µs/pivot exceeds the %d µs catastrophe ceiling", usPerPivot, maxUsPerPivot)
	}
	t.Logf("kernel regime: %.0f µs/pivot, hyperShare=%.3f ftranAvgNNZ=%.1f btranAvgNNZ=%.1f refills=%d",
		usPerPivot, res.Kernel.HyperShare(), res.Kernel.FtranAvgNNZ(), res.Kernel.BtranAvgNNZ(), res.Kernel.RowRefills)
}

// runCanonicalEndurance is the shared body of the canonical-density
// (n = T/8) endurance tests: solve the pinned scaling instance under the
// given factorization rule, check the LP optimum against the demand lower
// bound, require the cut lifecycle to be live, and gate the hypersparse
// kernel regime (pivot trajectory, kernel counters, catastrophe µs/pivot
// ceiling).
func runCanonicalEndurance(t *testing.T, T, maxPivots, maxUsPerPivot int, rule lp.FactorizationRule) {
	in := gen.LargeHorizon(*scalingInstance(T, 8))
	start := time.Now()
	def, err := SolveLPFactorization(in, rule)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("SolveLP at T=%d n=T/8: %v", T, err)
	}
	if def.Objective <= 0 {
		t.Fatalf("degenerate LP optimum %v", def.Objective)
	}
	// Independent lower bound: opening fewer than P/g slots cannot host
	// the total demand P, so any valid LP optimum is at least P/g.
	demand := 0.0
	for _, j := range in.Jobs {
		demand += float64(j.Length)
	}
	if lb := demand / float64(in.G); def.Objective < lb-1e-6 {
		t.Fatalf("LP optimum %.6f below the demand bound P/g = %.6f", def.Objective, lb)
	}
	if def.Purged == 0 {
		t.Errorf("cut purging never fired at T=%d; lifecycle policy is dead at scale", T)
	}
	// The warm-start escape hatch must never fire on the canonical
	// trajectory: every round's basis must resolve from where the last
	// round left it. A nonzero count means a cut round handed the simplex
	// a basis it silently abandoned — the exact failure mode the counter
	// exists to surface.
	if def.ColdFallbacks != 0 {
		t.Errorf("warm-start fallback fired %d times at T=%d; verdicts:\n  %s",
			def.ColdFallbacks, T, strings.Join(def.FallbackVerdicts, "\n  "))
	}
	checkKernelRegime(t, def, maxPivots, maxUsPerPivot, elapsed)
	writeScalingRecord(t, T, len(in.Jobs), rule, def, elapsed)
	t.Logf("T=%d n=%d: obj=%.3f rounds=%d cuts=%d purged=%d pivots=%d refactors=%d in %v",
		T, len(in.Jobs), def.Objective, def.Rounds, def.Cuts, def.Purged, def.Pivots, def.Refactors,
		elapsed.Round(time.Millisecond))
}

// writeScalingRecord appends the endurance run's machine-readable digest to
// the JSON array file named by SCALING_BENCH_JSON, when set — the CI
// scaling job points it at its benchmark artifact so the T = 16384 and
// T = 32768 records ship alongside the paperbench tables. A no-op
// otherwise, so local runs stay artifact-free.
func writeScalingRecord(t *testing.T, T, n int, rule lp.FactorizationRule, res *LPResult, elapsed time.Duration) {
	path := os.Getenv("SCALING_BENCH_JSON")
	if path == "" {
		return
	}
	ruleName := "ft"
	if rule == lp.FactorizationPFI {
		ruleName = "pfi"
	}
	type record struct {
		T          int     `json:"t"`
		N          int     `json:"n"`
		Rule       string  `json:"rule"`
		Millis     float64 `json:"millis"`
		Pivots     int     `json:"pivots"`
		UsPerPivot float64 `json:"usPerPivot"`
		Rounds     int     `json:"rounds"`
		Cuts       int     `json:"cuts"`
		Purged     int     `json:"purged"`
		Refactors  int     `json:"refactors"`
		HyperShare float64 `json:"hyperShare"`
		FtranNNZ   float64 `json:"ftranAvgNnz"`
		BtranNNZ   float64 `json:"btranAvgNnz"`
		Refills    int     `json:"rowRefills"`
	}
	var recs []record
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &recs); err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
	}
	recs = append(recs, record{
		T: T, N: n, Rule: ruleName,
		Millis:     float64(elapsed.Microseconds()) / 1000,
		Pivots:     res.Pivots,
		UsPerPivot: float64(elapsed.Microseconds()) / float64(res.Pivots),
		Rounds:     res.Rounds, Cuts: res.Cuts, Purged: res.Purged, Refactors: res.Refactors,
		HyperShare: res.Kernel.HyperShare(),
		FtranNNZ:   res.Kernel.FtranAvgNNZ(),
		BtranNNZ:   res.Kernel.BtranAvgNNZ(),
		Refills:    res.Kernel.RowRefills,
	})
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// TestSolveLPHorizon16k is the horizon-scale endurance test at the paper's
// canonical job density: a genuine T = 16384, n = T/8 instance of the
// scaling family must solve — the workload that PR 4 left beyond a
// 50-minute budget and that steepest-edge pricing (PR 5), the hypersparse
// FTRAN/BTRAN kernels and cut-row working-set pricing (PR 6), and the
// Forrest–Tomlin update factorization bring into the CI scaling-job
// budget. The known-good FT trajectory spends 10719 pivots; the ceiling is
// kept at the eta-file era's 45000 (its trajectory spent 39147) so the FT
// default must beat the representation it replaced, with the bad basins —
// which at least double the count — still separated cleanly.
// It skips under the race detector, where the instruction-level slowdown
// would turn minutes into the better part of an hour —
// TestSolveLPHorizon16kLight is the race-mode endurance run.
func TestSolveLPHorizon16k(t *testing.T) {
	if raceEnabled {
		t.Skip("minutes-long run; the race build exercises TestSolveLPHorizon16kLight instead")
	}
	skipUnlessEndurance(t, 15*time.Minute)
	// Calibration on the reference box: ~1.2 ms/pivot; the ceiling pads
	// ~6× for slower runners while still catching a dense-everywhere or
	// quadratic-pricing catastrophe.
	runCanonicalEndurance(t, 16384, 45000, 8000, lp.FactorizationFT)
}

// TestSolveLPHorizon16kPFI runs the same canonical 16k endurance workload
// under the product-form-eta ablation — the PR 6 representation kept as a
// live fallback. Same ceilings as the FT default: the known-good PFI
// trajectory spends 39147 pivots (the PR 6 record, bit-faithful since the
// ablation preserves the old eta-file fold policy), and the µs/pivot
// backstop catches the ablation quietly losing its hypersparse paths.
func TestSolveLPHorizon16kPFI(t *testing.T) {
	if raceEnabled {
		t.Skip("minutes-long run; the race build exercises TestSolveLPHorizon16kLight instead")
	}
	skipUnlessEndurance(t, 15*time.Minute)
	runCanonicalEndurance(t, 16384, 45000, 8000, lp.FactorizationPFI)
}

// TestSolveLPHorizon32k doubles the endurance horizon to T = 32768 at the
// same canonical n = T/8 density — 4096 jobs over 32768 slots — the scale
// the hypersparse kernels and the giant-tier batch cap exist for. Gated
// like the 16k run: deterministic pivot/kernel assertions plus a padded
// catastrophe ceiling, inside the CI scaling job's 40-minute budget.
func TestSolveLPHorizon32k(t *testing.T) {
	if raceEnabled {
		t.Skip("minutes-long run; the race build exercises TestSolveLPHorizon16kLight instead")
	}
	skipUnlessEndurance(t, 30*time.Minute)
	// Ceilings calibrated in the eta-file era (94849 pivots at ~3.1
	// ms/pivot; the per-pivot cost grew with the eta file and basis
	// dimension) and kept for the FT default, padded as in the 16k run.
	runCanonicalEndurance(t, 32768, 110000, 15000, lp.FactorizationFT)
}

// TestSolveLPHorizon16kLight keeps the n = T/32 density of the PR 4
// endurance test: the full 16k horizon, master width and cut lifecycle
// machinery at a density affordable under the race detector, where the
// canonical-density test skips. The purging pipeline must agree with the
// never-purging fixed-batch reference. It shares the -short/deadline gate
// of the other endurance tests (rather than a hard-coded build-mode skip):
// the race build's slowdown is exactly what the deadline budget absorbs.
func TestSolveLPHorizon16kLight(t *testing.T) {
	skipUnlessEndurance(t, 8*time.Minute)
	in := gen.LargeHorizon(*scalingInstance(16384, 32))
	def, err := SolveLP(in)
	if err != nil {
		t.Fatalf("SolveLP at T=16384: %v", err)
	}
	fixed, err := SolveLPFixedBatch(in, 32)
	if err != nil {
		t.Fatalf("SolveLPFixedBatch at T=16384: %v", err)
	}
	if math.Abs(def.Objective-fixed.Objective) > 1e-6 {
		t.Fatalf("purged LP %.9f != fixed-batch LP %.9f", def.Objective, fixed.Objective)
	}
	if def.Objective <= 0 {
		t.Fatalf("degenerate LP optimum %v", def.Objective)
	}
	if def.Purged == 0 {
		t.Error("cut purging never fired at T=16384; lifecycle policy is dead at scale")
	}
	if def.ColdFallbacks+fixed.ColdFallbacks != 0 {
		t.Errorf("warm-start fallback fired (purged %d, fixed-batch %d); verdicts:\n  %s",
			def.ColdFallbacks, fixed.ColdFallbacks,
			strings.Join(append(def.FallbackVerdicts, fixed.FallbackVerdicts...), "\n  "))
	}
	t.Logf("T=16384 n=%d: obj=%.3f rounds=%d cuts=%d purged=%d pivots=%d refactors=%d",
		len(in.Jobs), def.Objective, def.Rounds, def.Cuts, def.Purged, def.Pivots, def.Refactors)
}

// TestPricingPivotReduction locks the tentpole claim of the pricing work
// against the E18 instance (seed 7, the BENCH_PR4/PR5 baseline family):
// at T = 4096 the steepest-edge pipeline must spend at most half the
// simplex pivots of the Dantzig-baseline pipeline (most-infeasible dual
// rows, full primal scans, two-phase cold starts — the PR 4 behavior), and
// at T = 2048 it must still spend strictly fewer. Pivot counts are
// deterministic for a pinned instance, so this is a hard gate, not a flaky
// timing assertion; BENCH_PR5.json records the wall-clock win alongside.
//
// Both runs pin the factorization to the PFI ablation: the comparison
// isolates the pricing rule, and the eta-file representation is the
// substrate the PR 5 basin was locked on (Forrest–Tomlin rounding shifts
// the degenerate tie-breaks of this pinned instance into a different —
// sometimes better, sometimes worse — basin per cadence). The FT default's
// own trajectory quality is gated by the canonical endurance ceilings at
// T = 16384/32768, which it passes with room the eta file never had.
func TestPricingPivotReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pricing comparison")
	}
	for _, tc := range []struct {
		T      int
		factor int // required pivot ratio dantzig/steepest-edge
	}{
		{2048, 1},
		{4096, 2},
	} {
		in := gen.LargeHorizon(gen.RandomConfig{N: tc.T / 8, Horizon: tc.T, MaxLen: 16, G: 4, Seed: 7})
		se, err := solveLP(in, lpOptions{purge: true, factorization: lp.FactorizationPFI})
		if err != nil {
			t.Fatalf("T=%d steepest-edge: %v", tc.T, err)
		}
		dz, err := solveLP(in, lpOptions{purge: true, pricing: lp.PricingDantzig, factorization: lp.FactorizationPFI})
		if err != nil {
			t.Fatalf("T=%d dantzig: %v", tc.T, err)
		}
		if math.Abs(se.Objective-dz.Objective) > 1e-6 {
			t.Fatalf("T=%d: steepest-edge LP %.9f != dantzig LP %.9f", tc.T, se.Objective, dz.Objective)
		}
		if se.Pivots*tc.factor >= dz.Pivots {
			t.Errorf("T=%d: steepest-edge spent %d pivots, dantzig %d; want ≥%d× reduction",
				tc.T, se.Pivots, dz.Pivots, tc.factor)
		}
		t.Logf("T=%d: steepest-edge %d pivots, dantzig %d (%.1fx)",
			tc.T, se.Pivots, dz.Pivots, float64(dz.Pivots)/float64(se.Pivots))
	}
}
