package activetime

import (
	"math"
	"testing"

	"repro/internal/gen"
)

// TestSolveLPHorizon16k is the horizon-scale endurance test of the
// factorized pipeline: a genuine T = 16384 instance of the scaling family
// must solve — including under the race detector, where the dense-inverse
// engine's minutes-long O(m²) pivots made the size unreachable. Job
// density is N = T/32 to keep the suite affordable (the canonical N = T/8
// density at this horizon still exceeds practical budgets — the pricing
// sweep is the next wall, see ROADMAP); the horizon, master width and cut
// lifecycle machinery are exercised at full 16k scale. The purging
// pipeline must agree with the never-purging fixed-batch reference.
func TestSolveLPHorizon16k(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-slot endurance test")
	}
	const T = 16384
	in := gen.LargeHorizon(gen.RandomConfig{N: T / 32, Horizon: T, MaxLen: 16, G: 4, Seed: 3})
	def, err := SolveLP(in)
	if err != nil {
		t.Fatalf("SolveLP at T=16384: %v", err)
	}
	fixed, err := SolveLPFixedBatch(in, 32)
	if err != nil {
		t.Fatalf("SolveLPFixedBatch at T=16384: %v", err)
	}
	if math.Abs(def.Objective-fixed.Objective) > 1e-6 {
		t.Fatalf("purged LP %.9f != fixed-batch LP %.9f", def.Objective, fixed.Objective)
	}
	if def.Objective <= 0 {
		t.Fatalf("degenerate LP optimum %v", def.Objective)
	}
	if def.Purged == 0 {
		t.Error("cut purging never fired at T=16384; lifecycle policy is dead at scale")
	}
	t.Logf("T=16384 n=%d: obj=%.3f rounds=%d cuts=%d purged=%d pivots=%d refactors=%d",
		len(in.Jobs), def.Objective, def.Rounds, def.Cuts, def.Purged, def.Pivots, def.Refactors)
}
