package activetime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/intervals"
)

// Theorem1Certificate is an executable version of the proof of Theorem 1:
// given a minimal feasible solution it materializes the σ' transformation
// of Lemma 1 (every non-full slot hosts a non-full-rigid job) and the
// witness set J* of Lemma 2, yielding the charging
//
//	cost = |A_full| + |A_nonfull| <= ceil(mass/g) + Σ_{j∈J*} p_j <= 3·OPT,
//
// where J* splits into two sets of pairwise-disjoint windows, each of mass
// at most OPT. Tests check every structural property on random minimal
// solutions, turning the paper's proof into an invariant suite.
type Theorem1Certificate struct {
	// FullSlots and NonFullSlots partition the active slots of σ'.
	FullSlots, NonFullSlots []core.Time
	// Witness is the minimal set J* of non-full-rigid jobs: it covers every
	// non-full slot, no window contains another, and at most two windows
	// overlap anywhere.
	Witness []core.Job
	// MassBound = ceil(mass/g) bounds |FullSlots|; WitnessMass = Σ p_j over
	// J* bounds |NonFullSlots|.
	MassBound   core.Time
	WitnessMass core.Time
}

// BuildTheorem1Certificate transforms a minimal feasible schedule per
// Lemma 1 (moving units out of non-full slots until each hosts a
// non-full-rigid job; if a slot empties the solution was not minimal and an
// error is returned) and extracts the Lemma 2 witness set. The schedule is
// modified in place to σ'.
func BuildTheorem1Certificate(in *core.Instance, sched *core.ActiveSchedule) (*Theorem1Certificate, error) {
	if err := core.VerifyActive(in, sched); err != nil {
		return nil, err
	}
	if err := lemma1Transform(in, sched); err != nil {
		return nil, err
	}
	full, nonFull := splitByLoad(in, sched)
	witness := lemma2Witness(in, sched, nonFull)
	cert := &Theorem1Certificate{
		FullSlots:    full,
		NonFullSlots: nonFull,
		Witness:      witness,
		MassBound:    (in.TotalLength() + core.Time(in.G) - 1) / core.Time(in.G),
	}
	for _, j := range witness {
		cert.WitnessMass += j.Length
	}
	return cert, cert.check(in, sched)
}

// check validates every property the proof relies on.
func (c *Theorem1Certificate) check(in *core.Instance, sched *core.ActiveSchedule) error {
	if got := core.Time(len(c.FullSlots)); got > c.MassBound {
		return fmt.Errorf("activetime: %d full slots exceed mass bound %d", got, c.MassBound)
	}
	if got := core.Time(len(c.NonFullSlots)); got > c.WitnessMass {
		return fmt.Errorf("activetime: %d non-full slots exceed witness mass %d", got, c.WitnessMass)
	}
	if overlap := intervals.MaxLiveOverlap(c.Witness); overlap > 2 {
		return fmt.Errorf("activetime: %d witness windows overlap (Lemma 2 allows 2)", overlap)
	}
	// Every non-full slot is covered by a witness job scheduled in it.
	bySlot := make(map[core.Time]bool)
	for _, j := range c.Witness {
		for _, t := range sched.Assign[j.ID] {
			bySlot[t] = true
		}
	}
	for _, t := range c.NonFullSlots {
		if !bySlot[t] {
			return fmt.Errorf("activetime: non-full slot %d not covered by witness", t)
		}
	}
	return nil
}

// TwoTrackSplit partitions the witness into the two disjoint-window job
// sets J1, J2 of the Theorem 1 charging (possible because at most two
// witness windows overlap anywhere and no window contains another).
func (c *Theorem1Certificate) TwoTrackSplit() (j1, j2 []core.Job) {
	for i, j := range c.Witness {
		if i%2 == 0 {
			j1 = append(j1, j)
		} else {
			j2 = append(j2, j)
		}
	}
	return j1, j2
}

// lemma1Transform implements the movement process of Lemma 1: while some
// non-full slot hosts no non-full-rigid job, move a unit out of it to
// another live, active, non-full slot. Minimality guarantees the slot never
// empties; a budget guards against implementation bugs.
func lemma1Transform(in *core.Instance, sched *core.ActiveSchedule) error {
	budget := len(in.Jobs)*len(sched.Open)*4 + 64
	for {
		_, nonFull := splitByLoad(in, sched)
		slot := firstUnanchoredSlot(in, sched, nonFull)
		if slot == 0 {
			return nil
		}
		if budget == 0 {
			return fmt.Errorf("activetime: Lemma 1 transform did not converge")
		}
		budget--
		if !moveUnitOut(in, sched, slot) {
			// No job in the slot can move, yet none is non-full-rigid:
			// impossible for a feasible schedule (every stuck job is by
			// definition non-full-rigid).
			return fmt.Errorf("activetime: slot %d stuck without a non-full-rigid job (bug)", slot)
		}
		if len(jobsInSlot(sched, slot)) == 0 {
			return fmt.Errorf("activetime: slot %d emptied; input was not minimal feasible", slot)
		}
	}
}

// splitByLoad partitions open slots into full (load == g) and non-full.
func splitByLoad(in *core.Instance, sched *core.ActiveSchedule) (full, nonFull []core.Time) {
	load := sched.Load()
	for _, t := range sched.Open {
		if load[t] >= in.G {
			full = append(full, t)
		} else {
			nonFull = append(nonFull, t)
		}
	}
	return full, nonFull
}

// isNonFullRigid reports whether job j occupies every non-full open slot of
// its window (Definition 5).
func isNonFullRigid(in *core.Instance, sched *core.ActiveSchedule, j core.Job, nonFullSet map[core.Time]bool) bool {
	assigned := make(map[core.Time]bool, len(sched.Assign[j.ID]))
	for _, t := range sched.Assign[j.ID] {
		assigned[t] = true
	}
	for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
		if nonFullSet[t] && !assigned[t] {
			return false
		}
	}
	return true
}

// firstUnanchoredSlot returns the earliest non-full slot hosting no
// non-full-rigid job, or 0 if none.
func firstUnanchoredSlot(in *core.Instance, sched *core.ActiveSchedule, nonFull []core.Time) core.Time {
	nonFullSet := make(map[core.Time]bool, len(nonFull))
	for _, t := range nonFull {
		nonFullSet[t] = true
	}
	for _, t := range nonFull {
		anchored := false
		for _, id := range jobsInSlot(sched, t) {
			j, _ := in.JobByID(id)
			if isNonFullRigid(in, sched, j, nonFullSet) {
				anchored = true
				break
			}
		}
		if !anchored {
			return t
		}
	}
	return 0
}

func jobsInSlot(sched *core.ActiveSchedule, t core.Time) []int {
	var out []int
	for id, slots := range sched.Assign {
		for _, u := range slots {
			if u == t {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// moveUnitOut moves one unit out of slot s to another live, open, non-full
// slot where the job is not already scheduled. Returns false if no job in s
// can move.
func moveUnitOut(in *core.Instance, sched *core.ActiveSchedule, s core.Time) bool {
	load := sched.Load()
	open := sched.OpenSet()
	for _, id := range jobsInSlot(sched, s) {
		j, _ := in.JobByID(id)
		assigned := make(map[core.Time]bool)
		for _, u := range sched.Assign[id] {
			assigned[u] = true
		}
		for u := j.FirstSlot(); u <= j.LastSlot(); u++ {
			if u == s || !open[u] || assigned[u] || load[u] >= in.G {
				continue
			}
			// Move the unit from s to u.
			slots := sched.Assign[id]
			for k, v := range slots {
				if v == s {
					slots[k] = u
					break
				}
			}
			core.SortSlots(slots)
			return true
		}
	}
	return false
}

// lemma2Witness extracts J*: one non-full-rigid job per non-full slot,
// pruned so that no window contains another and at most two windows overlap
// anywhere (via the same frontier selection as the Theorem 5 proof, which
// preserves coverage of the union of windows).
func lemma2Witness(in *core.Instance, sched *core.ActiveSchedule, nonFull []core.Time) []core.Job {
	nonFullSet := make(map[core.Time]bool, len(nonFull))
	for _, t := range nonFull {
		nonFullSet[t] = true
	}
	seen := make(map[int]bool)
	var rigid []core.Job
	for _, t := range nonFull {
		for _, id := range jobsInSlot(sched, t) {
			if seen[id] {
				continue
			}
			j, _ := in.JobByID(id)
			if isNonFullRigid(in, sched, j, nonFullSet) {
				seen[id] = true
				rigid = append(rigid, j)
			}
		}
	}
	return intervals.ProperSubset(rigid)
}
