package activetime

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/intervals"
)

// Theorem1Certificate is an executable version of the proof of Theorem 1:
// given a minimal feasible solution it materializes the σ' transformation
// of Lemma 1 (every non-full slot hosts a non-full-rigid job) and the
// witness set J* of Lemma 2, yielding the charging
//
//	cost = |A_full| + |A_nonfull| <= ceil(mass/g) + Σ_{j∈J*} p_j <= 3·OPT,
//
// where J* splits into two sets of pairwise-disjoint windows, each of mass
// at most OPT. Tests check every structural property on random minimal
// solutions, turning the paper's proof into an invariant suite.
type Theorem1Certificate struct {
	// FullSlots and NonFullSlots partition the active slots of σ'.
	FullSlots, NonFullSlots []core.Time
	// Witness is the minimal set J* of non-full-rigid jobs: it covers every
	// non-full slot, no window contains another, and at most two windows
	// overlap anywhere.
	Witness []core.Job
	// MassBound = ceil(mass/g) bounds |FullSlots|; WitnessMass = Σ p_j over
	// J* bounds |NonFullSlots|.
	MassBound   core.Time
	WitnessMass core.Time
}

// BuildTheorem1Certificate transforms a minimal feasible schedule per
// Lemma 1 (moving units out of non-full slots until each hosts a
// non-full-rigid job; if a slot empties the solution was not minimal and an
// error is returned) and extracts the Lemma 2 witness set. The schedule is
// modified in place to σ'.
func BuildTheorem1Certificate(in *core.Instance, sched *core.ActiveSchedule) (*Theorem1Certificate, error) {
	if err := core.VerifyActive(in, sched); err != nil {
		return nil, err
	}
	if err := lemma1Transform(in, sched); err != nil {
		return nil, err
	}
	full, nonFull := splitByLoad(in, sched)
	witness := lemma2Witness(in, sched, nonFull)
	cert := &Theorem1Certificate{
		FullSlots:    full,
		NonFullSlots: nonFull,
		Witness:      witness,
		MassBound:    (in.TotalLength() + core.Time(in.G) - 1) / core.Time(in.G),
	}
	for _, j := range witness {
		cert.WitnessMass += j.Length
	}
	return cert, cert.check(in, sched)
}

// check validates every property the proof relies on.
func (c *Theorem1Certificate) check(in *core.Instance, sched *core.ActiveSchedule) error {
	if got := core.Time(len(c.FullSlots)); got > c.MassBound {
		return fmt.Errorf("activetime: %d full slots exceed mass bound %d", got, c.MassBound)
	}
	if got := core.Time(len(c.NonFullSlots)); got > c.WitnessMass {
		return fmt.Errorf("activetime: %d non-full slots exceed witness mass %d", got, c.WitnessMass)
	}
	if overlap := intervals.MaxLiveOverlap(c.Witness); overlap > 2 {
		return fmt.Errorf("activetime: %d witness windows overlap (Lemma 2 allows 2)", overlap)
	}
	// Every non-full slot is covered by a witness job scheduled in it.
	bySlot := make(map[core.Time]bool)
	for _, j := range c.Witness {
		for _, t := range sched.Assign[j.ID] {
			bySlot[t] = true
		}
	}
	for _, t := range c.NonFullSlots {
		if !bySlot[t] {
			return fmt.Errorf("activetime: non-full slot %d not covered by witness", t)
		}
	}
	return nil
}

// TwoTrackSplit partitions the witness into the two disjoint-window job
// sets J1, J2 of the Theorem 1 charging (possible because at most two
// witness windows overlap anywhere and no window contains another).
func (c *Theorem1Certificate) TwoTrackSplit() (j1, j2 []core.Job) {
	for i, j := range c.Witness {
		if i%2 == 0 {
			j1 = append(j1, j)
		} else {
			j2 = append(j2, j)
		}
	}
	return j1, j2
}

// schedIndex is a mutable view of an active schedule maintained
// incrementally by the Lemma 1 movement process. The historical
// implementation recomputed Load(), the slot occupancy and each job's
// assigned set from sched.Assign on every probe — O(total units) map work
// per query, quadratic over a transform run and a hard wall at T >= 4096.
// The index pays that cost once and each unit move updates it in O(1) map
// operations (plus a degree-bounded occupancy edit).
type schedIndex struct {
	in       *core.Instance
	sched    *core.ActiveSchedule
	load     map[core.Time]int
	slotJobs map[core.Time][]int // hosted job IDs per slot, ascending
	assigned map[int]map[core.Time]bool
	open     map[core.Time]bool
}

func newSchedIndex(in *core.Instance, sched *core.ActiveSchedule) *schedIndex {
	idx := &schedIndex{
		in:       in,
		sched:    sched,
		load:     sched.Load(),
		slotJobs: make(map[core.Time][]int, len(sched.Open)),
		assigned: make(map[int]map[core.Time]bool, len(sched.Assign)),
		open:     sched.OpenSet(),
	}
	ids := make([]int, 0, len(sched.Assign))
	for id := range sched.Assign {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		set := make(map[core.Time]bool, len(sched.Assign[id]))
		for _, t := range sched.Assign[id] {
			set[t] = true
			idx.slotJobs[t] = append(idx.slotJobs[t], id)
		}
		idx.assigned[id] = set
	}
	return idx
}

// nonFull reports whether t is an open slot with spare capacity.
func (idx *schedIndex) nonFull(t core.Time) bool {
	return idx.open[t] && idx.load[t] < idx.in.G
}

// isNonFullRigid reports whether job j occupies every non-full open slot of
// its window (Definition 5).
func (idx *schedIndex) isNonFullRigid(j core.Job) bool {
	set := idx.assigned[j.ID]
	for t := j.FirstSlot(); t <= j.LastSlot(); t++ {
		if idx.nonFull(t) && !set[t] {
			return false
		}
	}
	return true
}

// move relocates one unit of job id from slot s to slot u, updating the
// schedule and every index.
func (idx *schedIndex) move(id int, s, u core.Time) {
	slots := idx.sched.Assign[id]
	for k, v := range slots {
		if v == s {
			slots[k] = u
			break
		}
	}
	core.SortSlots(slots)
	idx.assigned[id][u] = true
	delete(idx.assigned[id], s)
	idx.load[s]--
	idx.load[u]++
	hosted := idx.slotJobs[s]
	for k, v := range hosted {
		if v == id {
			idx.slotJobs[s] = append(hosted[:k], hosted[k+1:]...)
			break
		}
	}
	at := sort.SearchInts(idx.slotJobs[u], id)
	idx.slotJobs[u] = append(idx.slotJobs[u], 0)
	copy(idx.slotJobs[u][at+1:], idx.slotJobs[u][at:])
	idx.slotJobs[u][at] = id
}

// moveUnitOut moves one unit out of slot s to another live, open, non-full
// slot where the job is not already scheduled, trying hosted jobs in
// ascending ID order (the historical map-ordered scan was nondeterministic).
// It returns the moved job's ID, or ok=false if no job in s can move.
func (idx *schedIndex) moveUnitOut(s core.Time) (moved int, ok bool) {
	for _, id := range idx.slotJobs[s] {
		j, _ := idx.in.JobByID(id)
		for u := j.FirstSlot(); u <= j.LastSlot(); u++ {
			if u == s || !idx.nonFull(u) || idx.assigned[id][u] {
				continue
			}
			idx.move(id, s, u)
			return id, true
		}
	}
	return 0, false
}

// lemma1Transform implements the movement process of Lemma 1: while some
// non-full slot hosts no non-full-rigid job, move a unit out of it to
// another live, active, non-full slot. Minimality guarantees the slot never
// empties; a budget guards against implementation bugs.
//
// The scan memoizes anchors: once slot t is seen to host a non-full-rigid
// job a, the pair stays valid until a itself moves a unit — moves never add
// slots to the non-full set (only the move target can change fullness, by
// filling up), so every other job's rigidity is monotone under the
// transform. Each round therefore skips previously anchored slots in O(1)
// and re-derives only what the last move could have changed, instead of
// re-deriving every slot's anchor from scratch.
func lemma1Transform(in *core.Instance, sched *core.ActiveSchedule) error {
	budget := len(in.Jobs)*len(sched.Open)*4 + 64
	idx := newSchedIndex(in, sched)
	nonFull := make([]core.Time, 0, len(sched.Open))
	for _, t := range sched.Open { // sched.Open is sorted
		if idx.nonFull(t) {
			nonFull = append(nonFull, t)
		}
	}
	anchor := make(map[core.Time]int, len(nonFull))
	for {
		slot, found := core.Time(0), false
	scan:
		for _, t := range nonFull {
			if !idx.nonFull(t) { // filled up by an earlier move target
				continue
			}
			if _, ok := anchor[t]; ok {
				continue
			}
			for _, id := range idx.slotJobs[t] {
				j, _ := in.JobByID(id)
				if idx.isNonFullRigid(j) {
					anchor[t] = id
					continue scan
				}
			}
			slot, found = t, true
			break
		}
		if !found {
			return nil
		}
		if budget == 0 {
			return fmt.Errorf("activetime: Lemma 1 transform did not converge")
		}
		budget--
		moved, ok := idx.moveUnitOut(slot)
		if !ok {
			// No job in the slot can move, yet none is non-full-rigid:
			// impossible for a feasible schedule (every stuck job is by
			// definition non-full-rigid).
			return fmt.Errorf("activetime: slot %d stuck without a non-full-rigid job (bug)", slot)
		}
		if len(idx.slotJobs[slot]) == 0 {
			return fmt.Errorf("activetime: slot %d emptied; input was not minimal feasible", slot)
		}
		for t, a := range anchor {
			if a == moved {
				delete(anchor, t)
			}
		}
	}
}

// splitByLoad partitions open slots into full (load == g) and non-full.
func splitByLoad(in *core.Instance, sched *core.ActiveSchedule) (full, nonFull []core.Time) {
	load := sched.Load()
	for _, t := range sched.Open {
		if load[t] >= in.G {
			full = append(full, t)
		} else {
			nonFull = append(nonFull, t)
		}
	}
	return full, nonFull
}

// lemma2Witness extracts J*: one non-full-rigid job per non-full slot,
// pruned so that no window contains another and at most two windows overlap
// anywhere (via the same frontier selection as the Theorem 5 proof, which
// preserves coverage of the union of windows).
func lemma2Witness(in *core.Instance, sched *core.ActiveSchedule, nonFull []core.Time) []core.Job {
	idx := newSchedIndex(in, sched)
	seen := make(map[int]bool)
	var rigid []core.Job
	for _, t := range nonFull {
		for _, id := range idx.slotJobs[t] {
			if seen[id] {
				continue
			}
			j, _ := in.JobByID(id)
			if idx.isNonFullRigid(j) {
				seen[id] = true
				rigid = append(rigid, j)
			}
		}
	}
	return intervals.ProperSubset(rigid)
}
