package activetime

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestShiftInvarianceActive checks that the active-time algorithms depend
// only on relative time: shifting all windows by a constant leaves the
// minimal-feasible cost, the LP optimum, and the rounded cost unchanged.
func TestShiftInvarianceActive(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	const delta = core.Time(19)
	for trial := 0; trial < 25; trial++ {
		in := randInstance(rng, 6, 9, 3)
		if !CheckFeasible(in, AllSlots(in)) {
			continue
		}
		shifted := in.Clone().Shift(delta)
		ma, err := MinimalFeasible(in, MinimalOptions{Strategy: CloseRightToLeft})
		if err != nil {
			t.Fatal(err)
		}
		mb, err := MinimalFeasible(shifted, MinimalOptions{Strategy: CloseRightToLeft})
		if err != nil {
			t.Fatal(err)
		}
		if ma.Cost() != mb.Cost() {
			t.Errorf("trial %d: minimal feasible not shift-invariant: %d vs %d",
				trial, ma.Cost(), mb.Cost())
		}
		la, err := SolveLP(in)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := SolveLP(shifted)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(la.Objective-lb.Objective) > 1e-6 {
			t.Errorf("trial %d: LP not shift-invariant: %v vs %v",
				trial, la.Objective, lb.Objective)
		}
		ra, err := roundWithLP(in, la)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := roundWithLP(shifted, lb)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Opened != rb.Opened {
			t.Errorf("trial %d: rounding not shift-invariant: %d vs %d",
				trial, ra.Opened, rb.Opened)
		}
	}
}
