package activetime

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// quickInstance derives a deterministic random instance from a seed.
func quickInstance(seed int64, maxN, maxT, maxG int) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	return randInstance(rng, maxN, maxT, maxG)
}

// The LP optimum always sits between the mass bound and the number of
// useful slots, and rounding up never exceeds a minimal feasible cost.
func TestQuickLPBracketing(t *testing.T) {
	f := func(seed int64) bool {
		in := quickInstance(seed, 6, 9, 3)
		lpres, err := SolveLP(in)
		if err == ErrInfeasible {
			return true
		}
		if err != nil {
			return false
		}
		mass := float64(in.TotalLength()) / float64(in.G)
		if lpres.Objective < mass-1e-6 {
			return false
		}
		if lpres.Objective > float64(len(AllSlots(in)))+1e-6 {
			return false
		}
		minimal, err := MinimalFeasible(in, MinimalOptions{Strategy: CloseRightToLeft})
		if err != nil {
			return false
		}
		return float64(minimal.Cost()) >= math.Ceil(lpres.Objective-1e-6)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Rounding always stays within twice the LP and never needs repairs.
func TestQuickRoundingInvariant(t *testing.T) {
	f := func(seed int64) bool {
		in := quickInstance(seed, 6, 9, 3)
		res, err := RoundLP(in)
		if err == ErrInfeasible {
			return true
		}
		if err != nil {
			return false
		}
		if core.VerifyActive(in, res.Schedule) != nil {
			return false
		}
		return float64(res.Opened) <= 2*res.LPValue+1e-6 &&
			res.Repairs == 0 && !res.InvariantViolated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Minimality is order-independent as a property: whatever order slots are
// closed in, the result is minimal and verifies.
func TestQuickMinimalAlwaysMinimal(t *testing.T) {
	f := func(seed int64) bool {
		in := quickInstance(seed, 5, 8, 3)
		sched, err := MinimalFeasible(in, MinimalOptions{Shuffle: true, Seed: seed})
		if err == ErrInfeasible {
			return true
		}
		if err != nil {
			return false
		}
		return core.VerifyActive(in, sched) == nil && IsMinimalFeasible(in, sched.Open)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Feasibility is monotone in the open set: opening extra slots never breaks
// feasibility.
func TestQuickFeasibilityMonotone(t *testing.T) {
	f := func(seed int64) bool {
		in := quickInstance(seed, 6, 9, 3)
		all := AllSlots(in)
		if !CheckFeasible(in, all) {
			return true
		}
		sched, err := MinimalFeasible(in, MinimalOptions{})
		if err != nil {
			return false
		}
		// Superset of a feasible set stays feasible.
		return CheckFeasible(in, all) && CheckFeasible(in, sched.Open) &&
			len(sched.Open) <= len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The unit-exact solver agrees with the LP lower bound direction: its cost
// is at least ceil(LP) and at most the minimal feasible cost.
func TestQuickUnitExactBracketing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		jobs := make([]core.Job, n)
		for i := range jobs {
			r := core.Time(rng.Intn(8))
			jobs[i] = core.Job{ID: i, Release: r, Deadline: r + 1 + core.Time(rng.Intn(4)), Length: 1}
		}
		in := &core.Instance{G: 1 + rng.Intn(3), Jobs: jobs}
		exact, err := SolveUnitExact(in)
		if err == ErrInfeasible {
			return true
		}
		if err != nil {
			return false
		}
		minimal, err := MinimalFeasible(in, MinimalOptions{Strategy: CloseLeftToRight})
		if err != nil {
			return false
		}
		lpres, err := SolveLP(in)
		if err != nil {
			return false
		}
		return float64(exact.Cost()) >= lpres.Objective-1e-6 &&
			exact.Cost() <= minimal.Cost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
