package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzVerifyActive throws arbitrary instance/schedule byte pairs at the
// active-time verifier: it must never panic, and whenever it accepts a
// schedule, removing one unit of assigned work must make it reject — a
// verifier that accepts short schedules would silently void every
// approximation bound the experiments assert. Seed corpus under
// testdata/fuzz.
func FuzzVerifyActive(f *testing.F) {
	f.Add(
		[]byte(`{"g":2,"jobs":[{"id":0,"release":0,"deadline":4,"length":2}]}`),
		[]byte(`{"Open":[1,2],"Assign":{"0":[1,2]}}`),
	)
	f.Add(
		[]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":2,"length":1}]}`),
		[]byte(`{"Open":[2],"Assign":{"0":[2]}}`),
	)
	f.Add(
		[]byte(`{"g":1,"jobs":[{"id":0,"release":0,"deadline":2,"length":2}]}`),
		[]byte(`{"Open":[1],"Assign":{"0":[1,1]}}`),
	)
	f.Add(
		[]byte(`{"g":2,"jobs":[{"id":7,"release":3,"deadline":9,"length":3}]}`),
		[]byte(`not json`),
	)
	f.Fuzz(func(t *testing.T, instData, schedData []byte) {
		in, err := ReadInstance(bytes.NewReader(instData))
		if err != nil {
			return
		}
		var s ActiveSchedule
		if err := json.Unmarshal(schedData, &s); err != nil {
			return
		}
		if VerifyActive(in, &s) != nil {
			return
		}
		// Accepted: drop one unit of some job's work and demand rejection.
		for id, slots := range s.Assign {
			if len(slots) == 0 {
				continue
			}
			s.Assign[id] = slots[:len(slots)-1]
			if VerifyActive(in, &s) == nil {
				t.Fatalf("verifier accepted a schedule missing one unit of job %d", id)
			}
			return
		}
	})
}
