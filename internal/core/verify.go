package core

import (
	"fmt"
	"sort"
)

// VerifyActive checks that the schedule is a feasible solution of the
// slotted active-time instance: every job receives exactly Length units in
// distinct open slots of its window, and no slot holds more than G units.
func VerifyActive(in *Instance, s *ActiveSchedule) error {
	if s == nil {
		return fmt.Errorf("core: nil active schedule")
	}
	open := s.OpenSet()
	if len(open) != len(s.Open) {
		return fmt.Errorf("core: duplicate open slots in schedule")
	}
	load := make(map[Time]int)
	for _, j := range in.Jobs {
		slots, ok := s.Assign[j.ID]
		if !ok {
			return fmt.Errorf("core: %v has no assignment", j)
		}
		if Time(len(slots)) != j.Length {
			return fmt.Errorf("core: %v assigned %d units, want %d", j, len(slots), j.Length)
		}
		seen := make(map[Time]bool, len(slots))
		for _, t := range slots {
			if seen[t] {
				return fmt.Errorf("core: %v scheduled twice in slot %d", j, t)
			}
			seen[t] = true
			if t < j.FirstSlot() || t > j.LastSlot() {
				return fmt.Errorf("core: %v scheduled in slot %d outside window slots [%d,%d]",
					j, t, j.FirstSlot(), j.LastSlot())
			}
			if !open[t] {
				return fmt.Errorf("core: %v scheduled in closed slot %d", j, t)
			}
			load[t]++
		}
	}
	for t, n := range load {
		if n > in.G {
			return fmt.Errorf("core: slot %d holds %d units, capacity g=%d", t, n, in.G)
		}
	}
	return nil
}

// VerifyBusy checks that the schedule is a feasible solution of the
// non-preemptive busy-time instance: every job is placed exactly once inside
// its window, and every bundle runs at most G jobs concurrently.
func VerifyBusy(in *Instance, s *BusySchedule) error {
	if s == nil {
		return fmt.Errorf("core: nil busy schedule")
	}
	placed := make(map[int]bool, len(in.Jobs))
	for bi := range s.Bundles {
		b := &s.Bundles[bi]
		ivs := make([]Interval, 0, len(b.Placements))
		for _, pl := range b.Placements {
			j, ok := in.JobByID(pl.JobID)
			if !ok {
				return fmt.Errorf("core: bundle %d references unknown job %d", bi, pl.JobID)
			}
			if placed[pl.JobID] {
				return fmt.Errorf("core: job %d placed more than once", pl.JobID)
			}
			placed[pl.JobID] = true
			if pl.Start < j.Release || pl.Start+j.Length > j.Deadline {
				return fmt.Errorf("core: %v placed at %d, outside window", j, pl.Start)
			}
			ivs = append(ivs, Interval{pl.Start, pl.Start + j.Length})
		}
		if max := MaxConcurrency(ivs); max > in.G {
			return fmt.Errorf("core: bundle %d runs %d jobs concurrently, capacity g=%d",
				bi, max, in.G)
		}
	}
	for _, j := range in.Jobs {
		if !placed[j.ID] {
			return fmt.Errorf("core: %v not placed", j)
		}
	}
	return nil
}

// VerifyPreemptive checks a preemptive busy-time schedule: every job
// accumulates exactly Length units inside its window, no job runs on two
// machines at once, and every machine runs at most G jobs concurrently.
func VerifyPreemptive(in *Instance, s *PreemptiveSchedule) error {
	if s == nil {
		return fmt.Errorf("core: nil preemptive schedule")
	}
	for mi := range s.Machines {
		m := &s.Machines[mi]
		ivs := make([]Interval, 0, len(m.Pieces))
		for _, p := range m.Pieces {
			if p.Span.Empty() {
				return fmt.Errorf("core: machine %d has empty piece for job %d", mi, p.JobID)
			}
			ivs = append(ivs, p.Span)
		}
		if max := MaxConcurrency(ivs); max > in.G {
			return fmt.Errorf("core: machine %d runs %d jobs concurrently, capacity g=%d",
				mi, max, in.G)
		}
	}
	byJob := s.JobPieces()
	for _, j := range in.Jobs {
		ivs := byJob[j.ID]
		var total Time
		for i, iv := range ivs {
			if iv.Start < j.Release || iv.End > j.Deadline {
				return fmt.Errorf("core: %v piece %v outside window", j, iv)
			}
			if i > 0 && ivs[i-1].End > iv.Start {
				return fmt.Errorf("core: %v runs on two machines at once around %d", j, iv.Start)
			}
			total += iv.Len()
		}
		if total != j.Length {
			return fmt.Errorf("core: %v accumulates %d units, want %d", j, total, j.Length)
		}
	}
	for id := range byJob {
		if _, ok := in.JobByID(id); !ok {
			return fmt.Errorf("core: schedule references unknown job %d", id)
		}
	}
	return nil
}

// MaxConcurrency returns the maximum number of the given intervals that
// share a common point.
func MaxConcurrency(ivs []Interval) int {
	type event struct {
		t     Time
		delta int
	}
	evs := make([]event, 0, 2*len(ivs))
	for _, iv := range ivs {
		if iv.Empty() {
			continue
		}
		evs = append(evs, event{iv.Start, +1}, event{iv.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // process ends before starts at ties
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}
