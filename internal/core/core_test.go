package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 3 || iv.Empty() {
		t.Errorf("Len/Empty wrong for %v", iv)
	}
	if !iv.Contains(2) || iv.Contains(5) || !iv.Contains(4) {
		t.Errorf("Contains wrong for half-open %v", iv)
	}
	if !iv.Overlaps(Interval{4, 9}) || iv.Overlaps(Interval{5, 9}) {
		t.Errorf("Overlaps wrong for %v", iv)
	}
	got := iv.Intersect(Interval{3, 9})
	if got != (Interval{3, 5}) {
		t.Errorf("Intersect = %v, want [3,5)", got)
	}
}

func TestUnionMeasure(t *testing.T) {
	cases := []struct {
		ivs  []Interval
		want Time
	}{
		{nil, 0},
		{[]Interval{{0, 5}}, 5},
		{[]Interval{{0, 5}, {5, 8}}, 8},
		{[]Interval{{0, 5}, {3, 8}}, 8},
		{[]Interval{{0, 5}, {6, 8}}, 7},
		{[]Interval{{0, 5}, {1, 2}, {7, 7}}, 5},
		{[]Interval{{3, 1}}, 0}, // empty interval ignored
	}
	for _, c := range cases {
		if got := UnionMeasure(c.ivs); got != c.want {
			t.Errorf("UnionMeasure(%v) = %d, want %d", c.ivs, got, c.want)
		}
	}
}

func TestSubtractIntervals(t *testing.T) {
	base := []Interval{{0, 10}}
	cuts := []Interval{{2, 4}, {6, 7}}
	got := SubtractIntervals(base, cuts)
	want := []Interval{{0, 2}, {4, 6}, {7, 10}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSubtractAndUnionAgree(t *testing.T) {
	// measure(base) == measure(base minus cuts) + measure(base ∩ cuts).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randIvs := func(n int) []Interval {
			out := make([]Interval, n)
			for i := range out {
				s := Time(rng.Intn(30))
				out[i] = Interval{s, s + Time(rng.Intn(10))}
			}
			return out
		}
		base := randIvs(1 + rng.Intn(5))
		cuts := randIvs(rng.Intn(5))
		lhs := UnionMeasure(base)
		rhs := UnionMeasure(SubtractIntervals(base, cuts)) + IntersectUnions(base, cuts)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxConcurrency(t *testing.T) {
	ivs := []Interval{{0, 3}, {1, 4}, {2, 5}, {4, 6}}
	if got := MaxConcurrency(ivs); got != 3 {
		t.Errorf("MaxConcurrency = %d, want 3", got)
	}
	// Touching intervals do not overlap.
	if got := MaxConcurrency([]Interval{{0, 2}, {2, 4}}); got != 1 {
		t.Errorf("touching intervals concurrency = %d, want 1", got)
	}
}

func TestInstanceValidate(t *testing.T) {
	good := &Instance{G: 2, Jobs: []Job{{ID: 0, Release: 0, Deadline: 3, Length: 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []*Instance{
		{G: 0, Jobs: []Job{{ID: 0, Deadline: 3, Length: 2}}},
		{G: 1, Jobs: nil},
		{G: 1, Jobs: []Job{{ID: 0, Deadline: 3, Length: 0}}},
		{G: 1, Jobs: []Job{{ID: 0, Deadline: 1, Length: 2}}},
		{G: 1, Jobs: []Job{{ID: 0, Release: -1, Deadline: 1, Length: 1}}},
		{G: 1, Jobs: []Job{{ID: 0, Deadline: 2, Length: 1}, {ID: 0, Deadline: 2, Length: 1}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestInstanceAccessors(t *testing.T) {
	in := &Instance{G: 3, Jobs: []Job{
		{ID: 1, Release: 2, Deadline: 10, Length: 4},
		{ID: 2, Release: 0, Deadline: 6, Length: 6},
	}}
	if in.TotalLength() != 10 {
		t.Errorf("TotalLength = %d, want 10", in.TotalLength())
	}
	if in.Horizon() != 10 {
		t.Errorf("Horizon = %d, want 10", in.Horizon())
	}
	if in.MinRelease() != 0 {
		t.Errorf("MinRelease = %d, want 0", in.MinRelease())
	}
	if !in.Jobs[1].IsInterval() || in.Jobs[0].IsInterval() {
		t.Error("IsInterval misclassifies")
	}
	if in.AllUnit() {
		t.Error("AllUnit true for non-unit jobs")
	}
	ds := in.Deadlines()
	if len(ds) != 2 || ds[0] != 6 || ds[1] != 10 {
		t.Errorf("Deadlines = %v", ds)
	}
	if _, ok := in.JobByID(2); !ok {
		t.Error("JobByID(2) missing")
	}
	if _, ok := in.JobByID(9); ok {
		t.Error("JobByID(9) found")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := &Instance{Name: "rt", G: 2, Jobs: []Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 2},
		{ID: 1, Release: 1, Deadline: 3, Length: 2},
	}}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != in.Name || got.G != in.G || len(got.Jobs) != 2 || got.Jobs[1] != in.Jobs[1] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadInstanceRejectsInvalid(t *testing.T) {
	_, err := ReadInstance(strings.NewReader(`{"g":0,"jobs":[]}`))
	if err == nil {
		t.Error("invalid instance accepted")
	}
	_, err = ReadInstance(strings.NewReader(`{not json`))
	if err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestVerifyActive(t *testing.T) {
	in := &Instance{G: 2, Jobs: []Job{
		{ID: 0, Release: 0, Deadline: 2, Length: 2},
		{ID: 1, Release: 0, Deadline: 2, Length: 1},
	}}
	ok := &ActiveSchedule{
		Open:   []Time{1, 2},
		Assign: map[int][]Time{0: {1, 2}, 1: {1}},
	}
	if err := VerifyActive(in, ok); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	cases := map[string]*ActiveSchedule{
		"missing job":   {Open: []Time{1, 2}, Assign: map[int][]Time{0: {1, 2}}},
		"short":         {Open: []Time{1, 2}, Assign: map[int][]Time{0: {1}, 1: {1}}},
		"dup slot":      {Open: []Time{1, 2}, Assign: map[int][]Time{0: {1, 1}, 1: {2}}},
		"closed slot":   {Open: []Time{1}, Assign: map[int][]Time{0: {1, 2}, 1: {1}}},
		"out of window": {Open: []Time{1, 2, 3}, Assign: map[int][]Time{0: {2, 3}, 1: {1}}},
	}
	for name, s := range cases {
		if err := VerifyActive(in, s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	over := &Instance{G: 1, Jobs: in.Jobs}
	if err := VerifyActive(over, ok); err == nil {
		t.Error("over-capacity schedule accepted")
	}
}

func TestVerifyBusy(t *testing.T) {
	in := &Instance{G: 2, Jobs: []Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 4},
		{ID: 1, Release: 1, Deadline: 3, Length: 2},
		{ID: 2, Release: 0, Deadline: 9, Length: 3},
	}}
	ok := &BusySchedule{Bundles: []Bundle{
		{Placements: []Placement{{0, 0}, {1, 1}}},
		{Placements: []Placement{{2, 5}}},
	}}
	if err := VerifyBusy(in, ok); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	cost, err := ok.Cost(in)
	if err != nil || cost != 7 {
		t.Errorf("cost = %d (%v), want 7", cost, err)
	}
	bad := &BusySchedule{Bundles: []Bundle{
		{Placements: []Placement{{0, 0}, {1, 1}, {2, 0}}},
	}}
	if err := VerifyBusy(&Instance{G: 2, Jobs: in.Jobs}, bad); err == nil {
		t.Error("3-concurrent bundle accepted with g=2")
	}
	late := &BusySchedule{Bundles: []Bundle{
		{Placements: []Placement{{0, 1}, {1, 1}, {2, 5}}},
	}}
	if err := VerifyBusy(in, late); err == nil {
		t.Error("placement past deadline accepted")
	}
}

func TestVerifyPreemptive(t *testing.T) {
	in := &Instance{G: 1, Jobs: []Job{
		{ID: 0, Release: 0, Deadline: 10, Length: 4},
	}}
	ok := &PreemptiveSchedule{Machines: []PreemptiveMachine{
		{Pieces: []Piece{{0, Interval{0, 2}}}},
		{Pieces: []Piece{{0, Interval{5, 7}}}},
	}}
	if err := VerifyPreemptive(in, ok); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if ok.Cost() != 4 {
		t.Errorf("cost = %d, want 4", ok.Cost())
	}
	overlap := &PreemptiveSchedule{Machines: []PreemptiveMachine{
		{Pieces: []Piece{{0, Interval{0, 2}}}},
		{Pieces: []Piece{{0, Interval{1, 3}}}},
	}}
	if err := VerifyPreemptive(in, overlap); err == nil {
		t.Error("job on two machines at once accepted")
	}
	short := &PreemptiveSchedule{Machines: []PreemptiveMachine{
		{Pieces: []Piece{{0, Interval{0, 2}}}},
	}}
	if err := VerifyPreemptive(in, short); err == nil {
		t.Error("under-scheduled job accepted")
	}
}
