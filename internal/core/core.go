// Package core defines the shared domain model for the active-time and
// busy-time scheduling problems of Chang, Khuller and Mukherjee (SPAA 2014):
// jobs with release times, deadlines and lengths; problem instances with a
// parallelism bound g; schedule representations for the three models studied
// by the paper (slotted preemptive active time, non-preemptive busy time on
// unbounded machines, and preemptive busy time); and verifiers that check a
// schedule against an instance.
//
// All times are int64 ticks. The active-time model is slotted: slot t is the
// unit interval [t-1, t), so a job with release r and deadline d may use
// slots {r+1, ..., d}. The busy-time model is continuous; real-valued inputs
// are represented by scaling ticks. Keeping every time integral keeps the
// combinatorial algorithms exact; floating point is confined to the LP
// substrate.
package core

import (
	"fmt"
	"sort"
)

// Time is a point on the (scaled, integral) time axis.
type Time = int64

// Interval is the half-open interval [Start, End).
type Interval struct {
	Start Time `json:"start"`
	End   Time `json:"end"`
}

// Len returns End - Start. An interval with End <= Start has length <= 0 and
// is treated as empty by the geometric helpers.
func (iv Interval) Len() Time { return iv.End - iv.Start }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether t lies in [Start, End).
func (iv Interval) Contains(t Time) bool { return iv.Start <= t && t < iv.End }

// Overlaps reports whether the two half-open intervals share a point.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Intersect returns the intersection of the two intervals; the result may be
// empty (Len() <= 0).
func (iv Interval) Intersect(o Interval) Interval {
	s, e := iv.Start, iv.End
	if o.Start > s {
		s = o.Start
	}
	if o.End < e {
		e = o.End
	}
	return Interval{s, e}
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Start, iv.End) }

// SortIntervals sorts intervals by start, then end, in place.
func SortIntervals(ivs []Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
}

// UnionMeasure returns the measure (total length) of the union of the given
// intervals. Empty intervals are ignored. The input is not modified.
func UnionMeasure(ivs []Interval) Time {
	merged := MergeIntervals(ivs)
	var total Time
	for _, iv := range merged {
		total += iv.Len()
	}
	return total
}

// MergeIntervals returns the union of the given intervals as a sorted slice
// of disjoint, non-empty, non-touching intervals. The input is not modified.
func MergeIntervals(ivs []Interval) []Interval {
	sorted := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			sorted = append(sorted, iv)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	SortIntervals(sorted)
	out := make([]Interval, 0, len(sorted))
	cur := sorted[0]
	for _, iv := range sorted[1:] {
		if iv.Start > cur.End {
			out = append(out, cur)
			cur = iv
			continue
		}
		if iv.End > cur.End {
			cur.End = iv.End
		}
	}
	return append(out, cur)
}

// SubtractIntervals returns base minus the union of cuts, as a sorted slice
// of disjoint non-empty intervals.
func SubtractIntervals(base, cuts []Interval) []Interval {
	b := MergeIntervals(base)
	c := MergeIntervals(cuts)
	var out []Interval
	j := 0
	for _, iv := range b {
		s := iv.Start
		for j < len(c) && c[j].End <= s {
			j++
		}
		for k := j; k < len(c) && c[k].Start < iv.End; k++ {
			if c[k].Start > s {
				out = append(out, Interval{s, c[k].Start})
			}
			if c[k].End > s {
				s = c[k].End
			}
		}
		if s < iv.End {
			out = append(out, Interval{s, iv.End})
		}
	}
	return out
}

// IntersectUnions returns the measure of (union of a) ∩ (union of b).
func IntersectUnions(a, b []Interval) Time {
	ma, mb := MergeIntervals(a), MergeIntervals(b)
	var total Time
	i, j := 0, 0
	for i < len(ma) && j < len(mb) {
		iv := ma[i].Intersect(mb[j])
		if !iv.Empty() {
			total += iv.Len()
		}
		if ma[i].End < mb[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}
