package core

import (
	"bytes"
	"testing"
)

// FuzzIntervalAlgebra checks the interval-set identities on arbitrary
// inputs: union measure is monotone and subadditive, merge is idempotent,
// and subtract/intersect partition the base measure.
func FuzzIntervalAlgebra(f *testing.F) {
	f.Add(int64(0), int64(5), int64(3), int64(8), int64(1), int64(2))
	f.Add(int64(-4), int64(-4), int64(0), int64(0), int64(7), int64(3))
	f.Add(int64(10), int64(2), int64(5), int64(5), int64(-1), int64(4))
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2, c1, c2 int64) {
		base := []Interval{{a1, a2}, {b1, b2}}
		cuts := []Interval{{c1, c2}}
		um := UnionMeasure(base)
		if um < 0 {
			t.Fatalf("negative union measure %d", um)
		}
		var sum Time
		for _, iv := range base {
			if !iv.Empty() {
				sum += iv.Len()
			}
		}
		if um > sum {
			t.Fatalf("union %d exceeds sum of lengths %d", um, sum)
		}
		merged := MergeIntervals(base)
		if UnionMeasure(merged) != um {
			t.Fatalf("merge changed measure")
		}
		for i := 1; i < len(merged); i++ {
			if merged[i-1].End > merged[i].Start {
				t.Fatalf("merge output overlaps: %v", merged)
			}
		}
		rest := UnionMeasure(SubtractIntervals(base, cuts))
		inter := IntersectUnions(base, cuts)
		if rest+inter != um {
			t.Fatalf("subtract(%d) + intersect(%d) != union(%d)", rest, inter, um)
		}
	})
}

// FuzzReadInstance ensures arbitrary bytes never panic the decoder and
// anything accepted passes validation.
func FuzzReadInstance(f *testing.F) {
	f.Add([]byte(`{"g":2,"jobs":[{"id":0,"release":0,"deadline":4,"length":2}]}`))
	f.Add([]byte(`{"g":0,"jobs":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"g":1,"jobs":[{"id":0,"release":-5,"deadline":1,"length":9}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadInstance(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("ReadInstance accepted an instance that fails Validate: %v", verr)
		}
	})
}

// FuzzMaxConcurrency checks the sweep against a quadratic oracle.
func FuzzMaxConcurrency(f *testing.F) {
	f.Add(int64(0), int64(3), int64(1), int64(4), int64(2), int64(5))
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2, c1, c2 int64) {
		ivs := []Interval{{a1, a2}, {b1, b2}, {c1, c2}}
		got := MaxConcurrency(ivs)
		// Oracle: check concurrency at every interval start point.
		want := 0
		for _, p := range ivs {
			if p.Empty() {
				continue
			}
			cnt := 0
			for _, q := range ivs {
				if !q.Empty() && q.Contains(p.Start) {
					cnt++
				}
			}
			if cnt > want {
				want = cnt
			}
		}
		if got != want {
			t.Fatalf("MaxConcurrency(%v) = %d, oracle %d", ivs, got, want)
		}
	})
}
