package core

import (
	"fmt"
	"sort"
	"strings"
)

// ActiveSchedule is a solution to the slotted active-time problem: a set of
// open (active) slots and an assignment of every job to slots of its window.
// Slot t denotes the time interval [t-1, t).
type ActiveSchedule struct {
	// Open lists the active slots in increasing order.
	Open []Time
	// Assign maps each job ID to the (sorted) slots in which one unit of the
	// job is scheduled; len(Assign[id]) must equal the job's length.
	Assign map[int][]Time
}

// Cost returns the active time, the number of open slots.
func (s *ActiveSchedule) Cost() Time { return Time(len(s.Open)) }

// OpenSet returns the open slots as a set.
func (s *ActiveSchedule) OpenSet() map[Time]bool {
	set := make(map[Time]bool, len(s.Open))
	for _, t := range s.Open {
		set[t] = true
	}
	return set
}

// Load returns, for every open slot, the number of job units assigned to it.
func (s *ActiveSchedule) Load() map[Time]int {
	load := make(map[Time]int, len(s.Open))
	for _, slots := range s.Assign {
		for _, t := range slots {
			load[t]++
		}
	}
	return load
}

func (s *ActiveSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "active slots (%d):", len(s.Open))
	for _, t := range s.Open {
		fmt.Fprintf(&b, " %d", t)
	}
	return b.String()
}

// Placement fixes a non-preemptive start time for a job.
type Placement struct {
	JobID int  `json:"job"`
	Start Time `json:"start"`
}

// Bundle is the set of jobs assigned to one (virtual) machine in the
// busy-time model, with their start times.
type Bundle struct {
	Placements []Placement `json:"placements"`
}

// BusySchedule is a solution to the busy-time problem: a partition of the
// jobs into bundles, one machine per bundle.
type BusySchedule struct {
	Bundles []Bundle `json:"bundles"`
}

// Intervals returns the execution intervals of the bundle's placements,
// resolving lengths against the instance.
func (b *Bundle) Intervals(in *Instance) ([]Interval, error) {
	out := make([]Interval, 0, len(b.Placements))
	for _, pl := range b.Placements {
		j, ok := in.JobByID(pl.JobID)
		if !ok {
			return nil, fmt.Errorf("core: bundle references unknown job %d", pl.JobID)
		}
		out = append(out, Interval{pl.Start, pl.Start + j.Length})
	}
	return out, nil
}

// BusyTime returns the busy time of the bundle: the measure of the union of
// its jobs' execution intervals.
func (b *Bundle) BusyTime(in *Instance) (Time, error) {
	ivs, err := b.Intervals(in)
	if err != nil {
		return 0, err
	}
	return UnionMeasure(ivs), nil
}

// Cost returns the total busy time over all bundles.
func (s *BusySchedule) Cost(in *Instance) (Time, error) {
	var total Time
	for i := range s.Bundles {
		bt, err := s.Bundles[i].BusyTime(in)
		if err != nil {
			return 0, err
		}
		total += bt
	}
	return total, nil
}

// NumJobs returns the number of placements across all bundles.
func (s *BusySchedule) NumJobs() int {
	n := 0
	for i := range s.Bundles {
		n += len(s.Bundles[i].Placements)
	}
	return n
}

// Piece is a maximal contiguous stretch of processing of one job on one
// machine in the preemptive busy-time model.
type Piece struct {
	JobID int      `json:"job"`
	Span  Interval `json:"span"`
}

// PreemptiveMachine is one machine's worth of preemptive pieces.
type PreemptiveMachine struct {
	Pieces []Piece `json:"pieces"`
}

// BusyTime returns the machine's busy time (union measure of its pieces).
func (m *PreemptiveMachine) BusyTime() Time {
	ivs := make([]Interval, 0, len(m.Pieces))
	for _, p := range m.Pieces {
		ivs = append(ivs, p.Span)
	}
	return UnionMeasure(ivs)
}

// PreemptiveSchedule is a solution to the preemptive busy-time problem.
type PreemptiveSchedule struct {
	Machines []PreemptiveMachine `json:"machines"`
}

// Cost returns the total busy time over all machines.
func (s *PreemptiveSchedule) Cost() Time {
	var total Time
	for i := range s.Machines {
		total += s.Machines[i].BusyTime()
	}
	return total
}

// JobPieces gathers the pieces of every job across machines.
func (s *PreemptiveSchedule) JobPieces() map[int][]Interval {
	out := make(map[int][]Interval)
	for i := range s.Machines {
		for _, p := range s.Machines[i].Pieces {
			out[p.JobID] = append(out[p.JobID], p.Span)
		}
	}
	for _, ivs := range out {
		SortIntervals(ivs)
	}
	return out
}

// SortSlots sorts a slice of slot indices in increasing order.
func SortSlots(ts []Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}
