package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Job is a unit of work with a feasible window [Release, Deadline) and a
// processing requirement of Length time units.
//
// In the active-time model the job must receive Length units spread over
// distinct slots of its window {Release+1, ..., Deadline}. In the busy-time
// model the job must run non-preemptively for Length contiguous time inside
// its window; in the preemptive busy-time model it must accumulate Length
// units of processing inside its window on at most one machine at a time.
type Job struct {
	ID       int  `json:"id"`
	Release  Time `json:"release"`
	Deadline Time `json:"deadline"`
	Length   Time `json:"length"`
}

// Window returns the job's feasible window [Release, Deadline).
func (j Job) Window() Interval { return Interval{j.Release, j.Deadline} }

// WindowLen returns Deadline - Release.
func (j Job) WindowLen() Time { return j.Deadline - j.Release }

// LatestStart returns the latest feasible non-preemptive start time.
func (j Job) LatestStart() Time { return j.Deadline - j.Length }

// IsInterval reports whether the job is rigid (an "interval job" in the
// paper's terminology): its length equals its window, so its placement is
// forced.
func (j Job) IsInterval() bool { return j.Length == j.WindowLen() }

// FirstSlot and LastSlot delimit the slots usable by the job in the slotted
// active-time model: slots {Release+1, ..., Deadline}.
func (j Job) FirstSlot() Time { return j.Release + 1 }

// LastSlot returns the last usable slot index in the active-time model.
func (j Job) LastSlot() Time { return j.Deadline }

func (j Job) String() string {
	return fmt.Sprintf("J%d(r=%d,d=%d,p=%d)", j.ID, j.Release, j.Deadline, j.Length)
}

// Instance is a scheduling instance: a set of jobs and the parallelism bound
// G (at most G jobs may be simultaneously active on a machine / in a slot).
type Instance struct {
	Name string `json:"name,omitempty"`
	G    int    `json:"g"`
	Jobs []Job  `json:"jobs"`
}

// Validate checks structural sanity: G >= 1, job lengths >= 1, windows long
// enough to hold the job, non-negative releases, and unique job IDs. It does
// not check capacity feasibility (that is a solver question).
func (in *Instance) Validate() error {
	if in.G < 1 {
		return fmt.Errorf("core: instance %q: g = %d, want >= 1", in.Name, in.G)
	}
	if len(in.Jobs) == 0 {
		return errors.New("core: instance has no jobs")
	}
	seen := make(map[int]bool, len(in.Jobs))
	for _, j := range in.Jobs {
		if seen[j.ID] {
			return fmt.Errorf("core: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.Length < 1 {
			return fmt.Errorf("core: %v: length %d, want >= 1", j, j.Length)
		}
		if j.Release < 0 {
			return fmt.Errorf("core: %v: negative release time", j)
		}
		if j.WindowLen() < j.Length {
			return fmt.Errorf("core: %v: window [%d,%d) shorter than length %d",
				j, j.Release, j.Deadline, j.Length)
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Name: in.Name, G: in.G, Jobs: make([]Job, len(in.Jobs))}
	copy(out.Jobs, in.Jobs)
	return out
}

// TotalLength returns the mass of the instance, the sum of job lengths
// (written P or ℓ(J) in the paper).
func (in *Instance) TotalLength() Time {
	var p Time
	for _, j := range in.Jobs {
		p += j.Length
	}
	return p
}

// Horizon returns the latest deadline T (0 for an empty instance).
func (in *Instance) Horizon() Time {
	var t Time
	for _, j := range in.Jobs {
		if j.Deadline > t {
			t = j.Deadline
		}
	}
	return t
}

// MinRelease returns the earliest release time (0 for an empty instance).
func (in *Instance) MinRelease() Time {
	if len(in.Jobs) == 0 {
		return 0
	}
	r := in.Jobs[0].Release
	for _, j := range in.Jobs[1:] {
		if j.Release < r {
			r = j.Release
		}
	}
	return r
}

// JobByID returns the job with the given ID, or ok=false.
func (in *Instance) JobByID(id int) (Job, bool) {
	for _, j := range in.Jobs {
		if j.ID == id {
			return j, true
		}
	}
	return Job{}, false
}

// AllInterval reports whether every job is an interval (rigid) job.
func (in *Instance) AllInterval() bool {
	for _, j := range in.Jobs {
		if !j.IsInterval() {
			return false
		}
	}
	return true
}

// AllUnit reports whether every job has unit length.
func (in *Instance) AllUnit() bool {
	for _, j := range in.Jobs {
		if j.Length != 1 {
			return false
		}
	}
	return true
}

// Deadlines returns the sorted distinct deadlines of the instance.
func (in *Instance) Deadlines() []Time {
	set := make(map[Time]bool, len(in.Jobs))
	for _, j := range in.Jobs {
		set[j.Deadline] = true
	}
	out := make([]Time, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// RenumberJobs assigns sequential IDs 0..n-1 in the current job order and
// returns the instance for chaining.
func (in *Instance) RenumberJobs() *Instance {
	for i := range in.Jobs {
		in.Jobs[i].ID = i
	}
	return in
}

// WriteJSON writes the instance as indented JSON.
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadInstance decodes an instance from JSON and validates it.
func ReadInstance(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// LoadInstance reads an instance from a JSON file.
func LoadInstance(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInstance(f)
}

// Shift translates every job window by delta ticks (delta may be negative
// as long as no release becomes negative) and returns the instance for
// chaining. Every algorithm in this repository is shift-invariant; the
// test suite uses Shift to check that no hidden absolute-time assumption
// creeps in.
func (in *Instance) Shift(delta Time) *Instance {
	for i := range in.Jobs {
		in.Jobs[i].Release += delta
		in.Jobs[i].Deadline += delta
	}
	return in
}
