package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The float64 engine must agree with the int64 engine on integer-capacity
// graphs (same graphs, capacities cast).
func TestQuickFloatMatchesInt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		gi := NewNetwork[int64](n, 0)
		gf := NewNetwork[float64](n, 1e-12)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(12))
			gi.AddEdge(u, v, c)
			gf.AddEdge(u, v, float64(c))
		}
		wi := gi.Max(0, n-1)
		wf := gf.Max(0, n-1)
		return math.Abs(float64(wi)-wf) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Scaling every capacity by a constant scales the max flow by the same
// constant (float engine).
func TestQuickFlowScales(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		type e struct {
			u, v int
			c    float64
		}
		var edges []e
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, e{u, v, float64(rng.Intn(9))})
		}
		build := func(scale float64) float64 {
			g := NewNetwork[float64](n, 1e-12)
			for _, ed := range edges {
				g.AddEdge(ed.u, ed.v, scale*ed.c)
			}
			return g.Max(0, n-1)
		}
		a, b := build(1), build(2.5)
		return math.Abs(2.5*a-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Max flow is bounded by the total capacity leaving the source and entering
// the sink, and is reported consistently with per-edge flows at the source.
func TestQuickFlowConservationAtSource(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := NewNetwork[int64](n, 0)
		var srcEdges []EdgeID[int64]
		var srcCap int64
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(10))
			id := g.AddEdge(u, v, c)
			if u == 0 {
				srcEdges = append(srcEdges, id)
				srcCap += c
			}
		}
		total := g.Max(0, n-1)
		if total > srcCap {
			return false
		}
		var out int64
		for _, id := range srcEdges {
			fl := g.Flow(id)
			if fl < 0 || fl > g.Capacity(id) {
				return false
			}
			out += fl
		}
		// Flow leaving the source through tracked edges equals the value
		// unless there are edges INTO the source carrying return flow;
		// since we only tracked outgoing edges, allow out >= total.
		return out >= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
