package flow

import (
	"math"
	"math/rand"
	"testing"
)

// TestGrowAfterMax locks the mid-life growth contract the live-session
// separator depends on: nodes and edges added to an already-solved network
// join with zero flow, existing EdgeIDs and routed flow stay valid, and
// continuing Max from the residual state reaches the same maximum a fresh
// network of the final topology finds.
func TestGrowAfterMax(t *testing.T) {
	// Bipartite: src(0) → a(1),b(2) → sink(3).
	g := NewNetwork[float64](4, 1e-12)
	sa := g.AddEdge(0, 1, 2)
	sb := g.AddEdge(0, 2, 3)
	at := g.AddEdge(1, 3, 2)
	bt := g.AddEdge(2, 3, 1)
	if got := g.Max(0, 3); math.Abs(got-3) > 1e-9 {
		t.Fatalf("initial max flow %v, want 3", got)
	}
	// Splice in a new middle node c with fresh capacity, plus extra capacity
	// from b through c.
	c := g.AddNode()
	sc := g.AddEdge(0, c, 4)
	ct := g.AddEdge(c, 3, 4)
	bc := g.AddEdge(2, c, 0)
	if f := g.Flow(sc) + g.Flow(ct) + g.Flow(bc); f != 0 {
		t.Fatalf("fresh edges carry flow %v before any solve", f)
	}
	if got := g.Max(0, 3); math.Abs(got-4) > 1e-9 {
		t.Fatalf("augmentation after growth pushed %v, want 4", got)
	}
	for _, e := range []EdgeID[float64]{sa, sb, at, bt, sc, ct} {
		if g.Flow(e) < -1e-12 || g.Flow(e) > g.Capacity(e)+1e-12 {
			t.Fatalf("edge flow %v outside [0, %v] after growth", g.Flow(e), g.Capacity(e))
		}
	}
}

// TestGrowAfterMaxRandomized compares grow-then-augment against a fresh
// build of the final topology on random bipartite networks: the max-flow
// value (unique across maximum flows) must agree whether the second half
// of the left nodes arrives before the first solve or after it.
func TestGrowAfterMaxRandomized(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nLeft := 3 + rng.Intn(5)
		nRight := 2 + rng.Intn(4)
		supply := make([]float64, nLeft)
		demand := make([]float64, nRight)
		edges := make([][]float64, nLeft) // capacity left→right, 0 = absent
		for i := range supply {
			supply[i] = 1 + 3*rng.Float64()
			edges[i] = make([]float64, nRight)
			for r := range edges[i] {
				if rng.Intn(2) == 0 {
					edges[i][r] = 2 * rng.Float64()
				}
			}
		}
		for r := range demand {
			demand[r] = 1 + 2*rng.Float64()
		}
		// grown: build with the first half of the left nodes, solve, then
		// splice in the rest and continue.
		firstHalf := nLeft / 2
		build := func(g *Network[float64], sink int, i int, left int) {
			g.AddEdge(0, left, supply[i])
			for r := 0; r < nRight; r++ {
				if edges[i][r] > 0 {
					g.AddEdge(left, 1+nLeft+r, edges[i][r])
				}
			}
			_ = sink
		}
		grown := NewNetwork[float64](2+nLeft+nRight, 1e-12)
		sink := 1 + nLeft + nRight
		for r := 0; r < nRight; r++ {
			grown.AddEdge(1+nLeft+r, sink, demand[r])
		}
		for i := 0; i < firstHalf; i++ {
			build(grown, sink, i, 1+i)
		}
		total := grown.Max(0, sink)
		for i := firstHalf; i < nLeft; i++ {
			build(grown, sink, i, 1+i)
		}
		total += grown.Max(0, sink)
		// fresh: the full final topology from scratch.
		fresh := NewNetwork[float64](2+nLeft+nRight, 1e-12)
		for r := 0; r < nRight; r++ {
			fresh.AddEdge(1+nLeft+r, sink, demand[r])
		}
		for i := 0; i < nLeft; i++ {
			build(fresh, sink, i, 1+i)
		}
		if want := fresh.Max(0, sink); math.Abs(total-want) > 1e-9 {
			t.Fatalf("seed %d: grown network max flow %v, fresh %v", seed, total, want)
		}
	}
}
