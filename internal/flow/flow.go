// Package flow implements Dinic's maximum-flow algorithm on directed graphs,
// generic over integer and floating-point capacities.
//
// The active-time algorithms use it in two ways: with int64 capacities for
// the feasibility network Gfeas of the paper (Figure 2), where integrality
// of maximum flow turns a fractional assignment question into an integral
// schedule; and with float64 capacities as the separation oracle of the
// Benders-style cut-generation procedure that solves the active-time LP
// (capacities y_t and g·y_t are fractional there). The busy-time flow-cover
// 2-approximation also routes integral 2-unit flows through a job DAG.
package flow

// Capacity is the constraint satisfied by capacity types. It is restricted
// to the exact types int64 and float64 (not named variants) so that internal
// type switches are exhaustive.
type Capacity interface {
	int64 | float64
}

// edge is a directed arc with residual capacity cap; rev indexes the reverse
// arc in adj[to].
type edge[C Capacity] struct {
	to, rev int
	cap     C
}

// EdgeID identifies an edge added with AddEdge and remembers its original
// capacity so the flow through it can be recovered after Max.
type EdgeID[C Capacity] struct {
	from, idx int
	orig      C
}

// Network is a flow network. Create networks with NewNetwork; the zero value
// has no nodes.
type Network[C Capacity] struct {
	adj   [][]edge[C]
	eps   C // capacities <= eps are treated as exhausted (0 for int64)
	level []int
	iter  []int
}

// NewNetwork returns an empty network with n nodes. For float64 capacities,
// eps should be a small positive tolerance (e.g. 1e-12); for int64 pass 0.
func NewNetwork[C Capacity](n int, eps C) *Network[C] {
	return &Network[C]{adj: make([][]edge[C], n), eps: eps}
}

// NumNodes returns the number of nodes in the network.
func (g *Network[C]) NumNodes() int { return len(g.adj) }

// AddNode appends a node and returns its index.
func (g *Network[C]) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds a directed edge from u to v with the given capacity (clamped
// at zero) and returns an identifier usable with Flow after running Max.
func (g *Network[C]) AddEdge(u, v int, cap C) EdgeID[C] {
	if cap < 0 {
		cap = 0
	}
	a := edge[C]{to: v, rev: len(g.adj[v]), cap: cap}
	b := edge[C]{to: u, rev: len(g.adj[u]), cap: 0}
	g.adj[u] = append(g.adj[u], a)
	g.adj[v] = append(g.adj[v], b)
	return EdgeID[C]{from: u, idx: len(g.adj[u]) - 1, orig: cap}
}

// Flow returns the amount of flow currently routed through the edge.
func (g *Network[C]) Flow(id EdgeID[C]) C {
	return id.orig - g.adj[id.from][id.idx].cap
}

// Residual returns the remaining capacity of the edge.
func (g *Network[C]) Residual(id EdgeID[C]) C {
	return g.adj[id.from][id.idx].cap
}

func (g *Network[C]) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int, 0, len(g.adj))
	queue = append(queue, s)
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if e.cap > g.eps && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Network[C]) dfs(u, t int, f C) C {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		e := &g.adj[u][g.iter[u]]
		if e.cap <= g.eps || g.level[e.to] != g.level[u]+1 {
			continue
		}
		d := f
		if e.cap < d {
			d = e.cap
		}
		got := g.dfs(e.to, t, d)
		if got > g.eps {
			e.cap -= got
			g.adj[e.to][e.rev].cap += got
			return got
		}
	}
	g.level[u] = -2 // dead end; skip on subsequent dfs calls in this phase
	return 0
}

// Max computes the maximum flow from s to t, mutating the residual network.
// It may be called once per network.
func (g *Network[C]) Max(s, t int) C {
	if s == t {
		return 0
	}
	g.level = make([]int, len(g.adj))
	g.iter = make([]int, len(g.adj))
	var total C
	var inf C
	// A capacity larger than any finite path bottleneck.
	switch p := any(&inf).(type) {
	case *int64:
		*p = 1 << 62
	case *float64:
		*p = 1e300
	}
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, inf)
			if f <= g.eps {
				break
			}
			total += f
		}
	}
	return total
}

// MinCutSource returns the set of nodes reachable from s in the residual
// network after Max has been run; this is the source side of a minimum cut.
func (g *Network[C]) MinCutSource(s int) []bool {
	seen := make([]bool, len(g.adj))
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if e.cap > g.eps && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// PathEdge labels an edge for path decomposition.
type PathEdge[C Capacity] struct {
	ID    EdgeID[C]
	Label int // caller-defined payload (e.g. job index, or -1 for skip arcs)
}

// DecomposePaths decomposes the flow currently carried by the given edges
// into unit paths from s to t on a DAG and returns, per path, the labels of
// the edges used (in path order). It requires integral per-edge flow values
// (the int64 instantiation, or float flows that are near-integral) and a
// graph in which the tracked edges form a DAG from s to t; both hold for the
// busy-time flow-cover construction that uses it.
func (g *Network[C]) DecomposePaths(s, t int, edges []PathEdge[C]) [][]int {
	type arc struct {
		to    int
		label int
		left  int64
	}
	out := make(map[int][]*arc)
	var units int64
	for _, pe := range edges {
		f := g.Flow(pe.ID)
		n := int64(float64(f) + 0.5) // exact for int64; rounds float flow
		if n <= 0 {
			continue
		}
		a := &arc{to: g.adj[pe.ID.from][pe.ID.idx].to, label: pe.Label, left: n}
		out[pe.ID.from] = append(out[pe.ID.from], a)
		if pe.ID.from == s {
			units += n
		}
	}
	var paths [][]int
	for u := 0; int64(u) < units; u++ {
		var labels []int
		cur := s
		for cur != t {
			var next *arc
			for _, a := range out[cur] {
				if a.left > 0 {
					next = a
					break
				}
			}
			if next == nil {
				// Flow conservation violated (should not happen): abandon path.
				labels = nil
				break
			}
			next.left--
			labels = append(labels, next.label)
			cur = next.to
		}
		if labels != nil {
			paths = append(paths, labels)
		}
	}
	return paths
}
