// Package flow implements Dinic's maximum-flow algorithm on directed graphs,
// generic over integer and floating-point capacities.
//
// The active-time algorithms use it in two ways: with int64 capacities for
// the feasibility network Gfeas of the paper (Figure 2), where integrality
// of maximum flow turns a fractional assignment question into an integral
// schedule; and with float64 capacities as the separation oracle of the
// Benders-style cut-generation procedure that solves the active-time LP
// (capacities y_t and g·y_t are fractional there). The busy-time flow-cover
// 2-approximation also routes integral 2-unit flows through a job DAG.
//
// # Reuse contract
//
// Networks are built once and re-solved many times. Max mutates residual
// capacities, so between solves the caller restores state with Reset (every
// edge back to its reference capacity, all flow discarded) and/or
// SetCapacity (one edge re-capacitated with its flow cleared, becoming the
// new reference that later Resets restore). The common pattern — the
// cut-generation separation oracle and the minimal-feasible closing loop —
// builds the network once per call and only touches the y-dependent
// capacities each round. Topology may also grow between solves:
// AddNode/AddEdge never renumber existing nodes or invalidate EdgeIDs, a
// new edge joins carrying zero flow with its given reference capacity, and
// the traversal scratch resizes on the next Max — the live-session
// separation network splices arriving jobs and slots into a solved network
// this way and lets Max route just the new demand. Nodes and edges cannot
// be removed; detaching a node means re-capacitating its edges to zero
// (with SetCapacityKeepFlow + PushBack repairs when flow is routed through
// it). All traversal scratch (BFS queue, DFS path stack, level and iterator
// arrays) is owned by the Network and reused, so a Reset+Max cycle performs
// no allocations.
package flow

// Capacity is the constraint satisfied by capacity types. It is restricted
// to the exact types int64 and float64 (not named variants) so that internal
// type switches are exhaustive.
type Capacity interface {
	int64 | float64
}

// edge is a directed arc with residual capacity cap; rev indexes the reverse
// arc in adj[to]. orig is the reference capacity restored by Reset (zero for
// the implicit reverse arcs, so Reset also discards flow).
type edge[C Capacity] struct {
	to, rev   int
	cap, orig C
}

// EdgeID identifies an edge added with AddEdge so its capacity can be
// updated with SetCapacity and the flow through it recovered after Max.
type EdgeID[C Capacity] struct {
	from, idx int
}

// Network is a flow network. Create networks with NewNetwork; the zero value
// has no nodes.
type Network[C Capacity] struct {
	adj   [][]edge[C]
	eps   C // capacities <= eps are treated as exhausted (0 for int64)
	level []int
	iter  []int
	queue []int
	path  []int // DFS stack of nodes on the current augmenting path
}

// NewNetwork returns an empty network with n nodes. For float64 capacities,
// eps should be a small positive tolerance (e.g. 1e-12); for int64 pass 0.
func NewNetwork[C Capacity](n int, eps C) *Network[C] {
	return &Network[C]{adj: make([][]edge[C], n), eps: eps}
}

// NumNodes returns the number of nodes in the network.
func (g *Network[C]) NumNodes() int { return len(g.adj) }

// AddNode appends a node and returns its index.
func (g *Network[C]) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds a directed edge from u to v with the given capacity (clamped
// at zero) and returns an identifier usable with SetCapacity and, after
// running Max, with Flow and Residual.
func (g *Network[C]) AddEdge(u, v int, cap C) EdgeID[C] {
	if cap < 0 {
		cap = 0
	}
	a := edge[C]{to: v, rev: len(g.adj[v]), cap: cap, orig: cap}
	b := edge[C]{to: u, rev: len(g.adj[u]), cap: 0, orig: 0}
	g.adj[u] = append(g.adj[u], a)
	g.adj[v] = append(g.adj[v], b)
	return EdgeID[C]{from: u, idx: len(g.adj[u]) - 1}
}

// Reset restores every edge to its reference capacity, discarding all flow
// routed by previous Max calls. Reference capacities are those given to
// AddEdge, as later amended by SetCapacity.
func (g *Network[C]) Reset() {
	for u := range g.adj {
		for i := range g.adj[u] {
			e := &g.adj[u][i]
			e.cap = e.orig
		}
	}
}

// SetCapacity sets the edge's reference capacity to c (clamped at zero) and
// clears any flow through it: the forward residual becomes c and the paired
// reverse residual returns to its own reference (zero for reverse arcs
// created by AddEdge). Subsequent Resets restore the edge to c.
func (g *Network[C]) SetCapacity(id EdgeID[C], c C) {
	if c < 0 {
		c = 0
	}
	e := &g.adj[id.from][id.idx]
	e.cap, e.orig = c, c
	r := &g.adj[e.to][e.rev]
	r.cap = r.orig
}

// Capacity returns the edge's current reference capacity.
func (g *Network[C]) Capacity(id EdgeID[C]) C {
	return g.adj[id.from][id.idx].orig
}

// SetCapacityKeepFlow sets the edge's reference capacity to c (clamped at
// zero) while preserving the flow currently routed through it, unlike
// SetCapacity, which discards that flow. When the current flow exceeds c it
// is clamped down to c, and the excess — returned to the caller — leaves
// the network momentarily violating flow conservation at the edge's
// endpoints: the caller must cancel the same amount along the rest of each
// affected path (PushBack) before running Max again. This is the primitive
// behind incremental re-capacitation: a separation oracle that keeps its
// max flow across rounds only repairs the edges whose capacity shrank below
// their flow and lets Max augment the difference, instead of rebuilding the
// whole flow from zero.
func (g *Network[C]) SetCapacityKeepFlow(id EdgeID[C], c C) (excess C) {
	if c < 0 {
		c = 0
	}
	e := &g.adj[id.from][id.idx]
	flow := e.orig - e.cap
	if flow > c {
		excess = flow - c
		flow = c
	}
	e.orig = c
	e.cap = c - flow
	g.adj[e.to][e.rev].cap = g.adj[e.to][e.rev].orig + flow
	return excess
}

// PushBack removes d units of flow from the edge (its forward residual
// grows by d, the paired reverse residual shrinks by d), without touching
// reference capacities. Like SetCapacityKeepFlow's clamping it breaks flow
// conservation locally; the caller is responsible for cancelling the same d
// along the rest of the path, which is cheap when it knows the path
// structure (the bipartite separation network's paths all have length 3).
func (g *Network[C]) PushBack(id EdgeID[C], d C) {
	e := &g.adj[id.from][id.idx]
	e.cap += d
	r := &g.adj[e.to][e.rev]
	r.cap -= d
	if r.cap < 0 {
		r.cap = 0
	}
}

// Flow returns the amount of flow currently routed through the edge.
func (g *Network[C]) Flow(id EdgeID[C]) C {
	e := &g.adj[id.from][id.idx]
	return e.orig - e.cap
}

// Residual returns the remaining capacity of the edge.
func (g *Network[C]) Residual(id EdgeID[C]) C {
	return g.adj[id.from][id.idx].cap
}

// ensureScratch sizes the reusable traversal buffers to the node count.
func (g *Network[C]) ensureScratch() {
	if n := len(g.adj); len(g.level) < n {
		g.level = make([]int, n)
		g.iter = make([]int, n)
		g.queue = make([]int, 0, n)
		g.path = make([]int, 0, n)
	}
}

func (g *Network[C]) bfs(s, t int) bool {
	level := g.level
	for i := range g.adj {
		level[i] = -1
	}
	queue := g.queue[:0]
	queue = append(queue, s)
	level[s] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, e := range g.adj[u] {
			if e.cap > g.eps && level[e.to] < 0 {
				level[e.to] = level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	g.queue = queue
	return level[t] >= 0
}

// augment finds one augmenting path from s to t in the current level graph
// and pushes its bottleneck flow, using an explicit stack instead of
// recursion. It returns the amount pushed (0 when the level graph admits no
// further path). Per-node edge iterators (g.iter) persist across calls
// within a phase, giving the standard O(VE) blocking-flow bound.
func (g *Network[C]) augment(s, t int) C {
	path := g.path[:0]
	u := s
	for {
		if u == t {
			// Bottleneck along the path, then push.
			var bottle C
			for k, v := range path {
				c := g.adj[v][g.iter[v]].cap
				if k == 0 || c < bottle {
					bottle = c
				}
			}
			for _, v := range path {
				e := &g.adj[v][g.iter[v]]
				e.cap -= bottle
				g.adj[e.to][e.rev].cap += bottle
			}
			g.path = path
			return bottle
		}
		advanced := false
		for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
			e := &g.adj[u][g.iter[u]]
			if e.cap > g.eps && g.level[e.to] == g.level[u]+1 {
				path = append(path, u)
				u = e.to
				advanced = true
				break
			}
		}
		if !advanced {
			g.level[u] = -2 // dead end; skip for the rest of this phase
			if u == s {
				g.path = path
				return 0
			}
			u = path[len(path)-1]
			path = path[:len(path)-1]
			g.iter[u]++ // move past the dead edge
		}
	}
}

// Max computes the maximum flow from s to t, mutating the residual network.
// It may be called repeatedly: each call continues from the current residual
// state, so callers wanting a fresh solve use Reset (and/or SetCapacity)
// first.
func (g *Network[C]) Max(s, t int) C {
	if s == t {
		return 0
	}
	g.ensureScratch()
	var total C
	for g.bfs(s, t) {
		for i := range g.adj {
			g.iter[i] = 0
		}
		for {
			f := g.augment(s, t)
			if f <= g.eps {
				break
			}
			total += f
		}
	}
	return total
}

// MinCutSource returns the set of nodes reachable from s in the residual
// network after Max has been run; this is the source side of a minimum cut.
func (g *Network[C]) MinCutSource(s int) []bool {
	return g.ReachableFrom(s, -1)
}

// ReachableFrom returns the set of nodes reachable from start along
// residual edges after Max has been run, never expanding through blocked
// (pass -1 to disable blocking). The blocked node is reported as true so
// the walk skips it, but none of its outgoing edges are followed. The
// batched Benders separation uses this to harvest one Hall-style violator
// per deficient job: reachability from the job's node with the source
// blocked, since every deficient job reaches the source over its
// unsaturated supply edge and unrestricted reachability would collapse
// every per-job set onto the global minimum cut.
func (g *Network[C]) ReachableFrom(start, blocked int) []bool {
	seen := make([]bool, len(g.adj))
	if blocked >= 0 {
		seen[blocked] = true
	}
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if e.cap > g.eps && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// PathEdge labels an edge for path decomposition.
type PathEdge[C Capacity] struct {
	ID    EdgeID[C]
	Label int // caller-defined payload (e.g. job index, or -1 for skip arcs)
}

// DecomposePaths decomposes the flow currently carried by the given edges
// into unit paths from s to t on a DAG and returns, per path, the labels of
// the edges used (in path order). It requires integral per-edge flow values
// (the int64 instantiation, or float flows that are near-integral) and a
// graph in which the tracked edges form a DAG from s to t; both hold for the
// busy-time flow-cover construction that uses it.
func (g *Network[C]) DecomposePaths(s, t int, edges []PathEdge[C]) [][]int {
	type arc struct {
		to    int
		label int
		left  int64
	}
	out := make(map[int][]*arc)
	var units int64
	for _, pe := range edges {
		f := g.Flow(pe.ID)
		n := int64(float64(f) + 0.5) // exact for int64; rounds float flow
		if n <= 0 {
			continue
		}
		a := &arc{to: g.adj[pe.ID.from][pe.ID.idx].to, label: pe.Label, left: n}
		out[pe.ID.from] = append(out[pe.ID.from], a)
		if pe.ID.from == s {
			units += n
		}
	}
	var paths [][]int
	for u := 0; int64(u) < units; u++ {
		var labels []int
		cur := s
		for cur != t {
			var next *arc
			for _, a := range out[cur] {
				if a.left > 0 {
					next = a
					break
				}
			}
			if next == nil {
				// Flow conservation violated (should not happen): abandon path.
				labels = nil
				break
			}
			next.left--
			labels = append(labels, next.label)
			cur = next.to
		}
		if labels != nil {
			paths = append(paths, labels)
		}
	}
	return paths
}
