package flow

import (
	"math"
	"testing"
)

// buildTriple builds the 3-layer path shape of the separation network:
// src → a → b → sink with unit-ish capacities.
func buildTriple() (*Network[float64], EdgeID[float64], EdgeID[float64], EdgeID[float64]) {
	g := NewNetwork[float64](4, 1e-12)
	e1 := g.AddEdge(0, 1, 2)
	e2 := g.AddEdge(1, 2, 2)
	e3 := g.AddEdge(2, 3, 2)
	return g, e1, e2, e3
}

// TestSetCapacityKeepFlowGrow checks that raising capacity preserves the
// routed flow and only the residual grows, so a follow-up Max augments the
// difference instead of re-routing everything.
func TestSetCapacityKeepFlowGrow(t *testing.T) {
	g, e1, e2, e3 := buildTriple()
	if got := g.Max(0, 3); got != 2 {
		t.Fatalf("initial max flow %v, want 2", got)
	}
	for _, e := range []EdgeID[float64]{e1, e2, e3} {
		if ex := g.SetCapacityKeepFlow(e, 5); ex != 0 {
			t.Fatalf("raising capacity reported excess %v", ex)
		}
		if f := g.Flow(e); f != 2 {
			t.Fatalf("flow not preserved: %v", f)
		}
		if r := g.Residual(e); r != 3 {
			t.Fatalf("residual %v, want 3", r)
		}
	}
	if got := g.Max(0, 3); got != 3 {
		t.Fatalf("incremental augment pushed %v, want 3", got)
	}
	for _, e := range []EdgeID[float64]{e1, e2, e3} {
		if f := g.Flow(e); f != 5 {
			t.Fatalf("final flow %v, want 5", f)
		}
	}
}

// TestSetCapacityKeepFlowShrink checks the clamp-and-repair path: shrinking
// below the routed flow reports the excess, and cancelling it along the
// rest of the path (PushBack) restores a valid flow that Max can extend.
func TestSetCapacityKeepFlowShrink(t *testing.T) {
	g, e1, e2, e3 := buildTriple()
	if got := g.Max(0, 3); got != 2 {
		t.Fatalf("initial max flow %v, want 2", got)
	}
	ex := g.SetCapacityKeepFlow(e2, 0.5)
	if math.Abs(ex-1.5) > 1e-12 {
		t.Fatalf("excess %v, want 1.5", ex)
	}
	if f := g.Flow(e2); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("clamped flow %v, want 0.5", f)
	}
	// Repair conservation along the length-3 path.
	g.PushBack(e1, ex)
	g.PushBack(e3, ex)
	if f := g.Flow(e1); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("pushed-back supply flow %v, want 0.5", f)
	}
	// No augmenting path can beat the 0.5 bottleneck now.
	if got := g.Max(0, 3); got > 1e-12 {
		t.Fatalf("Max augmented %v through a saturated bottleneck", got)
	}
	// Restore the bottleneck: only the 1.5 difference should be pushed.
	if ex := g.SetCapacityKeepFlow(e2, 2); ex != 0 {
		t.Fatalf("raising capacity reported excess %v", ex)
	}
	if got := g.Max(0, 3); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("incremental augment pushed %v, want 1.5", got)
	}
}

// TestSetCapacityKeepFlowVersusReset cross-checks the incremental
// re-capacitation against SetCapacity+Reset semantics on a diamond graph:
// after arbitrary capacity changes and repairs, total max flow must match
// a from-scratch solve.
func TestSetCapacityKeepFlowVersusReset(t *testing.T) {
	build := func() (*Network[float64], []EdgeID[float64]) {
		g := NewNetwork[float64](6, 1e-12)
		ids := []EdgeID[float64]{
			g.AddEdge(0, 1, 3), g.AddEdge(0, 2, 2),
			g.AddEdge(1, 3, 2), g.AddEdge(1, 4, 2), g.AddEdge(2, 4, 2),
			g.AddEdge(3, 5, 3), g.AddEdge(4, 5, 3),
		}
		return g, ids
	}
	caps := [][]float64{
		{3, 2, 2, 2, 2, 3, 3},
		{1, 2, 2, 0.5, 2, 3, 3},
		{4, 4, 0.25, 2, 2, 3, 3},
		{3, 2, 2, 2, 2, 0.1, 3},
	}
	inc, incIDs := build()
	incFlow := 0.0
	for step, cs := range caps {
		// Fresh reference.
		ref, refIDs := build()
		for k, c := range cs {
			ref.SetCapacity(refIDs[k], c)
		}
		want := ref.Max(0, 5)
		// Incremental: keep flow, cancel any excess by brute residual
		// bookkeeping — this graph is not 3-layered, so just rebuild the
		// flow when an edge clamps (the caller contract), else augment.
		clamped := false
		for k, c := range cs {
			if inc.SetCapacityKeepFlow(incIDs[k], c) > 0 {
				clamped = true
			}
		}
		if clamped {
			inc.Reset()
			incFlow = 0
		}
		incFlow += inc.Max(0, 5)
		if math.Abs(incFlow-want) > 1e-9 {
			t.Fatalf("step %d: incremental total %v, fresh %v", step, incFlow, want)
		}
	}
}
