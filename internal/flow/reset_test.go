package flow

import (
	"math"
	"math/rand"
	"testing"
)

type edgeSpec struct {
	u, v int
	c    int64
}

func randGraph(rng *rand.Rand) (n int, specs []edgeSpec) {
	n = 3 + rng.Intn(8)
	edges := 1 + rng.Intn(4*n)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		specs = append(specs, edgeSpec{u, v, int64(rng.Intn(12))})
	}
	return n, specs
}

// TestResetMatchesFreshNetwork: after Max has consumed residuals, Reset
// must restore the network so a second Max matches a freshly built copy.
func TestResetMatchesFreshNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n, specs := randGraph(rng)
		g := NewNetwork[int64](n, 0)
		for _, s := range specs {
			g.AddEdge(s.u, s.v, s.c)
		}
		first := g.Max(0, n-1)
		g.Reset()
		second := g.Max(0, n-1)
		if first != second {
			t.Fatalf("trial %d: reset re-solve %d != first solve %d", trial, second, first)
		}
		fresh := NewNetwork[int64](n, 0)
		for _, s := range specs {
			fresh.AddEdge(s.u, s.v, s.c)
		}
		if want := fresh.Max(0, n-1); second != want {
			t.Fatalf("trial %d: reset re-solve %d != fresh network %d", trial, second, want)
		}
	}
}

// TestSetCapacityMatchesFreshNetwork: re-capacitating a random subset of
// edges and re-solving on the Reset network must equal building the updated
// network from scratch — the contract the Benders separation oracle and the
// minimal-feasible closing loop rely on.
func TestSetCapacityMatchesFreshNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n, specs := randGraph(rng)
		g := NewNetwork[int64](n, 0)
		ids := make([]EdgeID[int64], len(specs))
		for i, s := range specs {
			ids[i] = g.AddEdge(s.u, s.v, s.c)
		}
		g.Max(0, n-1) // dirty the residuals
		// Mutate a random subset (including down to zero and up past the
		// original), then Reset+Max.
		for rounds := 0; rounds < 3; rounds++ {
			for i := range specs {
				if rng.Intn(3) == 0 {
					specs[i].c = int64(rng.Intn(15))
					g.SetCapacity(ids[i], specs[i].c)
				}
			}
			g.Reset()
			got := g.Max(0, n-1)
			fresh := NewNetwork[int64](n, 0)
			for _, s := range specs {
				fresh.AddEdge(s.u, s.v, s.c)
			}
			if want := fresh.Max(0, n-1); got != want {
				t.Fatalf("trial %d round %d: reuse %d != fresh %d", trial, rounds, got, want)
			}
		}
	}
}

// TestSetCapacityFloatMatchesFresh runs the same reuse-vs-fresh equivalence
// on the float64 instantiation the LP separation oracle uses.
func TestSetCapacityFloatMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n, specs := randGraph(rng)
		g := NewNetwork[float64](n, 1e-12)
		ids := make([]EdgeID[float64], len(specs))
		caps := make([]float64, len(specs))
		for i, s := range specs {
			caps[i] = float64(s.c) / 4
			ids[i] = g.AddEdge(s.u, s.v, caps[i])
		}
		g.Max(0, n-1)
		for i := range specs {
			if rng.Intn(2) == 0 {
				caps[i] = float64(rng.Intn(15)) / 4
				g.SetCapacity(ids[i], caps[i])
			}
		}
		g.Reset()
		got := g.Max(0, n-1)
		fresh := NewNetwork[float64](n, 1e-12)
		for i, s := range specs {
			fresh.AddEdge(s.u, s.v, caps[i])
		}
		want := fresh.Max(0, n-1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: reuse %v != fresh %v", trial, got, want)
		}
	}
}

// TestSetCapacityClearsFlow: setting a capacity mid-stream zeroes the
// edge's recorded flow and restores the reverse residual.
func TestSetCapacityClearsFlow(t *testing.T) {
	g := NewNetwork[int64](3, 0)
	a := g.AddEdge(0, 1, 5)
	b := g.AddEdge(1, 2, 5)
	if got := g.Max(0, 2); got != 5 {
		t.Fatalf("max flow %d, want 5", got)
	}
	if g.Flow(a) != 5 || g.Flow(b) != 5 {
		t.Fatalf("flows (%d,%d), want (5,5)", g.Flow(a), g.Flow(b))
	}
	g.SetCapacity(a, 2)
	if g.Flow(a) != 0 || g.Residual(a) != 2 || g.Capacity(a) != 2 {
		t.Fatalf("after SetCapacity: flow %d residual %d cap %d, want 0/2/2",
			g.Flow(a), g.Residual(a), g.Capacity(a))
	}
	g.Reset()
	if got := g.Max(0, 2); got != 2 {
		t.Fatalf("re-solve %d, want 2", got)
	}
}
