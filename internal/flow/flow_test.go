package flow

import (
	"math/rand"
	"testing"
)

func TestMaxFlowSmall(t *testing.T) {
	// Classic 6-node example with max flow 23.
	g := NewNetwork[int64](6, 0)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v2, 10)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, tt, 4)
	if got := g.Max(s, tt); got != 23 {
		t.Errorf("max flow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewNetwork[int64](3, 0)
	g.AddEdge(0, 1, 5)
	if got := g.Max(0, 2); got != 0 {
		t.Errorf("max flow = %d, want 0", got)
	}
}

func TestEdgeFlowAccounting(t *testing.T) {
	g := NewNetwork[int64](4, 0)
	a := g.AddEdge(0, 1, 3)
	b := g.AddEdge(0, 2, 2)
	c := g.AddEdge(1, 3, 2)
	d := g.AddEdge(2, 3, 5)
	got := g.Max(0, 3)
	if got != 4 {
		t.Fatalf("max flow = %d, want 4", got)
	}
	if g.Flow(a) != 2 || g.Flow(c) != 2 {
		t.Errorf("path 0-1-3 carries (%d,%d), want (2,2)", g.Flow(a), g.Flow(c))
	}
	if g.Flow(b) != 2 || g.Flow(d) != 2 {
		t.Errorf("path 0-2-3 carries (%d,%d), want (2,2)", g.Flow(b), g.Flow(d))
	}
}

func TestMinCutSource(t *testing.T) {
	g := NewNetwork[int64](4, 0)
	g.AddEdge(0, 1, 1) // bottleneck
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 10)
	g.Max(0, 3)
	cut := g.MinCutSource(0)
	if !cut[0] || cut[1] || cut[2] || cut[3] {
		t.Errorf("cut = %v, want only source side {0}", cut)
	}
}

func TestFloatCapacities(t *testing.T) {
	g := NewNetwork[float64](4, 1e-12)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.25)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	got := g.Max(0, 3)
	if diff := got - 0.75; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("max flow = %v, want 0.75", got)
	}
}

// bruteMaxFlow computes max flow by Ford-Fulkerson with DFS on an adjacency
// matrix, as an independent oracle.
func bruteMaxFlow(n int, cap [][]int64, s, t int) int64 {
	res := make([][]int64, n)
	for i := range res {
		res[i] = append([]int64(nil), cap[i]...)
	}
	var total int64
	for {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if parent[v] < 0 && res[u][v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] < 0 {
			return total
		}
		aug := int64(1 << 62)
		for v := t; v != s; v = parent[v] {
			if res[parent[v]][v] < aug {
				aug = res[parent[v]][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			res[parent[v]][v] -= aug
			res[v][parent[v]] += aug
		}
		total += aug
	}
}

func TestMaxFlowRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		capm := make([][]int64, n)
		for i := range capm {
			capm[i] = make([]int64, n)
		}
		g := NewNetwork[int64](n, 0)
		edges := rng.Intn(3 * n)
		for e := 0; e < edges; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(10))
			capm[u][v] += c
			g.AddEdge(u, v, c)
		}
		want := bruteMaxFlow(n, capm, 0, n-1)
		if got := g.Max(0, n-1); got != want {
			t.Fatalf("trial %d: dinic = %d, brute = %d", trial, got, want)
		}
	}
}

func TestDecomposePaths(t *testing.T) {
	// DAG: two disjoint s-t paths via labeled job arcs.
	g := NewNetwork[int64](4, 0)
	var pes []PathEdge[int64]
	pes = append(pes, PathEdge[int64]{g.AddEdge(0, 1, 1), 100})
	pes = append(pes, PathEdge[int64]{g.AddEdge(1, 3, 1), 101})
	pes = append(pes, PathEdge[int64]{g.AddEdge(0, 2, 1), 200})
	pes = append(pes, PathEdge[int64]{g.AddEdge(2, 3, 1), 201})
	if got := g.Max(0, 3); got != 2 {
		t.Fatalf("max flow = %d, want 2", got)
	}
	paths := g.DecomposePaths(0, 3, pes)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	seen := map[int]bool{}
	for _, p := range paths {
		if len(p) != 2 {
			t.Fatalf("path %v, want 2 arcs", p)
		}
		for _, l := range p {
			seen[l] = true
		}
		if p[0]/100 != p[1]/100 {
			t.Errorf("path %v mixes branches", p)
		}
	}
	if len(seen) != 4 {
		t.Errorf("labels seen %v, want all 4", seen)
	}
}
