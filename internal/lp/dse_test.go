package lp

import (
	"math"
	"math/rand"
	"testing"
)

// exactWeights recomputes every basis position's dual steepest-edge
// reference weight from scratch: one BTRAN of the position unit vector per
// position, then the squared norm of the resulting inverse row. This is the
// definitional value the incrementally maintained t.dseW must track.
func exactWeights(t *revised) []float64 {
	out := make([]float64, t.m)
	for p := 0; p < t.m; p++ {
		t.btranRho(p)
		s := 0.0
		for _, v := range t.rho[:t.m] {
			s += v * v
		}
		out[p] = s
	}
	return out
}

// checkWeights asserts the incrementally maintained weights agree with the
// from-scratch BTRAN recomputation to 1e-8 relative, unless the engine has
// (legitimately) declared them stale and fallen back to devex updates.
func checkWeights(t *testing.T, st *revised, where string) {
	t.Helper()
	if st.rule != PricingSteepestEdge || st.dseStale || st.broken {
		return
	}
	want := exactWeights(st)
	for p := range want {
		got := st.dseW[p]
		if got < 0 {
			continue // appended position not yet priced; initialized lazily
		}
		if math.Abs(got-want[p]) > 1e-8*(1+want[p]) {
			t.Fatalf("%s: weight[%d] = %.12g, exact %.12g (m=%d)", where, p, got, want[p], st.m)
		}
	}
}

// coveringProblem builds a random covering master in the texture of the
// active-time LP: bounded variables, unit objective, wide GE rows.
func coveringProblem(rng *rand.Rand, n, rows int) *Problem {
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjective(j, 1)
		p.SetUpper(j, 1)
	}
	for r := 0; r < rows; r++ {
		addCoverRow(p, rng, n)
	}
	return p
}

func addCoverRow(p *Problem, rng *rand.Rand, n int) {
	w := 2 + rng.Intn(n/2)
	lo := rng.Intn(n - w + 1)
	cols := make([]int, 0, w)
	vals := make([]float64, 0, w)
	for j := lo; j < lo+w; j++ {
		cols = append(cols, j)
		vals = append(vals, float64(1+rng.Intn(3)))
	}
	if err := p.AddSparse(cols, vals, GE, float64(1+w/3)); err != nil {
		panic(err)
	}
}

// TestDSEWeightsExactAcrossPivots drives cold solves, warm appends (dual
// repair pivots), RemoveRows, and the refactorizations they trigger, and
// after every re-solve recomputes each position's reference weight from
// scratch via BTRAN, asserting the incrementally maintained weights match
// to 1e-8 — the same style of ground-truth check factor_test.go applies to
// FTRAN/BTRAN themselves. The engine may not simply mark the weights stale
// to dodge the comparison: these benign sequences must keep exact
// maintenance alive, which the test asserts too.
func TestDSEWeightsExactAcrossPivots(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		p := coveringProblem(rng, n, 6+rng.Intn(10))
		sol, basis, err := p.ResolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("seed %d: cold status %v", seed, sol.Status)
		}
		checkWeights(t, basis.t, "after cold solve")
		for round := 0; round < 12; round++ {
			// Append a few violated rows, repair warm.
			for k := 0; k < 1+rng.Intn(4); k++ {
				addCoverRow(p, rng, n)
			}
			sol, basis, err = p.ResolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if sol.Status != Optimal {
				t.Fatalf("seed %d round %d: status %v", seed, round, sol.Status)
			}
			checkWeights(t, basis.t, "after warm re-solve")
			// Periodically remove a strictly slack row, exercising the
			// weight compaction path.
			if round%3 == 2 {
				x := sol.X
				for i := 0; i < p.NumConstraints(); i++ {
					slack := 0.0
					for _, e := range p.rows[i] {
						slack += e.val * x[e.col]
					}
					if p.rel[i] == GE && slack > p.b[i]+1e-4 {
						if err := p.RemoveRows([]int{i}, basis); err != nil {
							t.Fatalf("seed %d round %d: remove: %v", seed, round, err)
						}
						break
					}
				}
				sol, basis, err = p.ResolveFrom(basis)
				if err != nil || sol.Status != Optimal {
					t.Fatalf("seed %d round %d: after remove: %v %v", seed, round, err, sol)
				}
				checkWeights(t, basis.t, "after RemoveRows re-solve")
			}
			if basis.t.dseStale {
				t.Fatalf("seed %d round %d: weights went stale on a benign sequence", seed, round)
			}
		}
	}
}

// TestDSEWeightsSurviveRefactorization forces eta-file folds by driving
// enough pivots through one state that maxEtas trips repeatedly: the
// weights live in basis-position space and must come through every
// refactorization bit-compatible with the from-scratch recomputation.
func TestDSEWeightsSurviveRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 80
	p := coveringProblem(rng, n, 30)
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v %v", err, sol)
	}
	refactorsBefore := basis.t.refactors
	for round := 0; round < 30; round++ {
		for k := 0; k < 3; k++ {
			addCoverRow(p, rng, n)
		}
		sol, basis, err = p.ResolveFrom(basis)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("round %d: %v %v", round, err, sol)
		}
		checkWeights(t, basis.t, "across refactorizations")
	}
	if basis.t.refactors == refactorsBefore {
		t.Fatal("sequence never refactorized; the test is not exercising the fold path")
	}
}
