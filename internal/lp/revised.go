package lp

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// revised is the sparse revised-simplex working state of the float engine.
//
// Unlike the dense tableau it replaced, the constraint matrix is never
// transformed: rows are stored once in sign-normalized compressed sparse
// form (plus a per-column view for FTRAN), and all pivoting state lives in
// the factorized basis representation f — a sparse LU of the basis as of
// the last refactorization plus a product-form eta file, one eta per basis
// change (see factor.go). Logical columns (slacks, surpluses, artificials)
// are signed unit vectors and are never materialized. xB holds the actual
// value of each basic variable — not a transformed right-hand side — which
// keeps the bookkeeping correct when nonbasic variables rest at nonzero
// upper bounds.
//
// Per pivot the engine performs:
//
//   - an FTRAN (w = B⁻¹·A_q): the entering column's sparse entries solved
//     through L, the row etas, and the updated U (through L, the frozen U
//     and the eta file under the PFI ablation), O(m + nnz(factors));
//   - a BTRAN (rho = e_rᵀ·B⁻¹) for the leaving row when the dual ratio test
//     or the reduced-cost update needs the pivot row;
//   - a pivot-row sweep alpha = rho·A over the sparse rows touching rho,
//     accumulating into a touched-column list, O(Σ nnz of touched rows) —
//     this is what prices cuts without ever scanning a dense row of
//     length n;
//   - a Forrest–Tomlin update of U in place — spike column in, bump row
//     eliminated into one short row eta, O(nnz(spike) + bump closure)
//     written (an eta-file append of nnz(w) entries under the PFI
//     ablation) — plus an O(|touched|) in-place reduced-cost update:
//     nothing of size m² is ever written.
//
// The updated factors are folded into a fresh LU on the fold policy of the
// active factorization rule (update count / fill growth for Forrest–Tomlin,
// maxEtas operations or etaBloat times the factor size for the PFI
// ablation), when rows are appended or removed (factorStale), on every
// resync, and — forced, counted in KernelStats.ForcedRefactors — when a
// spike fails the update's stability tolerance. Numerical drift is controlled
// exactly as documented in the package comment: the reduced-cost row is
// refreshed periodically and before any optimality claim, and a conclusion
// of dual infeasibility is only accepted after a full refactorization plus
// a basic-value resync confirms it.
type revised struct {
	n         int // structural variables
	m         int // materialized rows
	rowsBuilt int // Problem rows incorporated (including presolved-away ones)
	epoch     int // Problem.removeEpoch this state last synchronized with

	// Constraint matrix, sign-normalized per row (rows with negative rhs
	// are flipped at build time; warm-appended GE rows are negated so their
	// slack keeps a +1 coefficient).
	rowCols [][]int32
	rowVals [][]float64
	rowRun  [][]alphaRun // run-compressed mirror of rowCols/rowVals
	rowLogs [][]int32    // logical columns belonging to each row (1 or 2)
	rhs     []float64    // normalized right-hand sides
	colRows [][]int32    // per structural column: rows with a nonzero entry
	colVals [][]float64

	logRow  []int32   // per logical column (index col-n): owning row
	logSign []float64 // +1 slack/artificial, -1 surplus

	f           factor  // factorized basis: LU + FT updates or eta file (see factor.go)
	factorStale bool    // basis structure changed; refactorize before solving
	broken      bool    // refactorization failed; only IterLimit may be reported
	probRow     []int32 // per Problem row: engine row, or -1 if presolved away

	basis []int     // basic column of each basis position
	xB    []float64 // value of the basic variable at each position

	// Per-column state, structural columns first, then logical columns in
	// materialization order.
	cost       []float64
	upper      []float64
	atUpper    []bool
	isArt      []bool
	inBasis    []bool
	whereBasic []int // basis row of the column, -1 when nonbasic

	probUpper []float64 // the Problem's structural bounds as of construction
	//                     (upper may be tighter after singleton presolve)

	curCost []float64 // cost vector of the current phase
	red     []float64 // persistent reduced-cost row for curCost

	// Scratch reused across pivots so steady-state pivoting is
	// allocation-free.
	w       []float64  // FTRAN result, length m
	rho     []float64  // pivot row of binv, length m
	y       []float64  // dual scratch for refreshes, length m
	flipAcc []float64  // row-space accumulator for batched bound flips, length m
	flipSol []float64  // FTRAN scratch for applyFlips, length m, kept zeroed
	tau     []float64  // steepest-edge update scratch (B⁻¹·rho), length m
	alpha   []float64  // pivot row of the tableau, length ncols, kept zeroed
	touched []int32    // columns with nonzero alpha this pivot
	cands   []dualCand // dual ratio-test candidates, reused across pivots

	// Sparse-support bookkeeping for the kernel scratch above: each Ind
	// slice holds the sorted support of the matching vector's last solve
	// when its Sparse flag is set (the vector is then zeroed through the
	// support instead of a full sweep); a cleared flag means the last solve
	// fell back to the dense path. invalidateKernel drops all of it when
	// the row dimension changes.
	wInd       []int32
	wSparse    bool
	rhoInd     []int32
	rhoSparse  bool
	tauInd     []int32
	tauSparse  bool
	flipInd    []int32 // support of flipAcc (engine rows; dups tolerated)
	flipSolInd []int32
	oneInd     [1]int32 // unit-vector support scratch for ftran/btranRho

	// Dual working-set pricing (see pickDualRow): the candidate leaving
	// rows and membership flags keyed by basis position. rowListOK means
	// the invariant "every violated position is listed" holds — refills
	// establish it, noteDualRow maintains it across basic-value updates,
	// and anything that re-derives basic values wholesale clears it.
	rowList   []int32
	inRowList []bool
	rowListOK bool

	kstats       KernelStats // lifetime kernel counters
	kstatsAtCall KernelStats // snapshot when the current ResolveFrom began

	// Pricing state (see the pricing section of the package comment).
	rule PricingRule
	// dseW[i] is the dual pricing weight of basis position i: the exact
	// Forrest–Goldfarb reference weight ‖e_iᵀB⁻¹‖² while dseStale is
	// false, a devex-style approximation after. A negative entry marks a
	// position appended since the last dual pass, initialized lazily by
	// ensureWeights. Weights live in basis-position space, so they
	// survive refactorization unchanged (B does not change) and survive
	// RemoveRows by compaction (the surviving rows of the reduced inverse
	// are exactly the surviving rows of the old one).
	dseW     []float64
	dseStale bool // exact FG maintenance lost; devex max-form updates from here on
	// Partial primal pricing: a managed candidate list plus the cyclic
	// rotor position the next refill scan starts from.
	candList  []int32
	candRotor int

	pivots          int // lifetime pivot count
	pivotsAtCall    int // pivot count when the current ResolveFrom began
	refactors       int // lifetime successful refactorizations
	refactorsAtCall int // refactorization count when the current call began
	sinceRefresh    int

	pivotHook func(row, col int) // observes basis changes; nil outside tests
}

// Refactorization policy of the PFI ablation: fold the eta file into a
// fresh LU when it holds maxEtas operations (bounding both solve cost and
// accumulated update error), or earlier when its nonzeros dwarf the factors
// themselves (etaBloat × (nnz(LU) + m)) — dense-ish pivot columns on
// covering masters can bloat the file long before the operation count
// trips. The default Forrest–Tomlin rule folds on its own update-count and
// fill-growth policy (maxFTUpdates/ftFillBloat in factor.go): its solve
// cost does not grow per pivot, so only fill and roundoff need bounding.
const (
	maxEtas  = 96
	etaBloat = 8
)

// Pricing constants.
const (
	// candListMax bounds the partial-pricing candidate list: a refill
	// scan stops as soon as this many attractive columns are collected,
	// so steady-state primal pricing touches a managed window of columns
	// instead of all of them. A full cyclic wrap that collects nothing is
	// the (only) way partial pricing concludes no attractive column
	// exists, which keeps its optimality claims identical to full
	// Dantzig's.
	candListMax = 64
	// dseWeightFloor keeps incrementally updated weights positive when
	// cancellation in the FG update rounds a tiny weight below zero.
	dseWeightFloor = 1e-10
	// dseStaleFactor is the staleness trigger: when the incrementally
	// maintained weight of the pivot row disagrees with the exact
	// ‖e_rᵀB⁻¹‖² (computed anyway for the ratio test) by more than this
	// factor either way, the whole weight set is declared stale and the
	// engine falls back to devex max-form updates.
	dseStaleFactor = 16.0
	// devexResetAbove restarts the devex reference framework (all
	// weights back to 1) when a weight outgrows it; unbounded devex
	// weights degenerate into pure most-infeasible selection.
	devexResetAbove = 1e10
)

// newRevised builds the initial state. Singleton "a*x_j <= b" rows with
// a > 0, b >= 0 are presolved into the variable's upper bound (and vacuous
// singleton <= rows dropped) rather than materialized, so box constraints
// cost nothing regardless of how the caller expressed them.
func newRevised(p *Problem) *revised {
	m, n := len(p.rows), p.numVars
	bound := make([]float64, n)
	if p.upper != nil {
		copy(bound, p.upper)
	} else {
		for j := range bound {
			bound[j] = math.Inf(1)
		}
	}
	type rowKind struct {
		rel  Relation
		flip bool
		skip bool
	}
	kinds := make([]rowKind, m)
	nRows, nLog := 0, 0
	for i := range p.rows {
		rel, b := p.rel[i], p.b[i]
		if rel == LE && b >= 0 {
			if col, coef, single := singleton(p.rows[i]); single {
				if coef > 0 {
					if u := b / coef; u < bound[col] {
						bound[col] = u
					}
				}
				// coef <= 0 (or empty row): vacuous given x >= 0, b >= 0.
				kinds[i].skip = true
				continue
			}
		}
		flip := b < 0
		if flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel: rel, flip: flip}
		nRows++
		switch rel {
		case LE, EQ:
			nLog++
		case GE:
			nLog += 2 // surplus + artificial
		}
	}
	nTotal := n + nLog
	colCap := nTotal + nTotal/4 + 16 // headroom for appended cut columns
	rowCap := nRows + nRows/4 + 16
	t := &revised{
		n:          n,
		rowsBuilt:  m,
		epoch:      p.removeEpoch,
		rowCols:    make([][]int32, 0, rowCap),
		rowVals:    make([][]float64, 0, rowCap),
		rowRun:     make([][]alphaRun, 0, rowCap),
		rowLogs:    make([][]int32, 0, rowCap),
		rhs:        make([]float64, 0, rowCap),
		colRows:    make([][]int32, n),
		colVals:    make([][]float64, n),
		logRow:     make([]int32, 0, colCap-n),
		logSign:    make([]float64, 0, colCap-n),
		probRow:    make([]int32, 0, rowCap),
		basis:      make([]int, 0, rowCap),
		xB:         make([]float64, 0, rowCap),
		cost:       make([]float64, nTotal, colCap),
		upper:      make([]float64, nTotal, colCap),
		atUpper:    make([]bool, nTotal, colCap),
		isArt:      make([]bool, nTotal, colCap),
		inBasis:    make([]bool, nTotal, colCap),
		whereBasic: make([]int, nTotal, colCap),
		curCost:    make([]float64, nTotal, colCap),
		red:        make([]float64, nTotal, colCap),
		alpha:      make([]float64, nTotal, colCap),
		w:          make([]float64, nRows, rowCap),
		rho:        make([]float64, nRows, rowCap),
		y:          make([]float64, nRows, rowCap),
		flipAcc:    make([]float64, nRows, rowCap),
		flipSol:    make([]float64, nRows, rowCap),
		tau:        make([]float64, nRows, rowCap),
		touched:    make([]int32, 0, colCap),
		rule:       p.pricing,
		dseW:       make([]float64, nRows, rowCap),
		inRowList:  make([]bool, nRows, rowCap),
		pivotHook:  p.pivotHook,
	}
	t.f.forceDense = p.denseKernels
	t.f.rule = p.factorization
	t.f.stats = &t.kstats
	// The initial all-logical basis is a signed permutation, so every row
	// of its inverse has norm exactly 1: the weight set starts exact.
	for i := range t.dseW {
		t.dseW[i] = 1
	}
	copy(t.cost, p.c)
	copy(t.upper, bound)
	for j := n; j < nTotal; j++ {
		t.upper[j] = math.Inf(1)
	}
	for j := range t.whereBasic {
		t.whereBasic[j] = -1
	}
	t.probUpper = make([]float64, n)
	if p.upper != nil {
		copy(t.probUpper, p.upper)
	} else {
		for j := range t.probUpper {
			t.probUpper[j] = math.Inf(1)
		}
	}
	logCol := n
	for i := range p.rows {
		if kinds[i].skip {
			t.probRow = append(t.probRow, -1)
			continue
		}
		sign := 1.0
		if kinds[i].flip {
			sign = -1.0
		}
		cols, vals := normalizeEntries(p.rows[i], sign)
		r := t.m
		for k, c := range cols {
			t.colRows[c] = append(t.colRows[c], int32(r))
			t.colVals[c] = append(t.colVals[c], vals[k])
		}
		t.rowCols = append(t.rowCols, cols)
		t.rowVals = append(t.rowVals, vals)
		t.rowRun = append(t.rowRun, compressRuns(cols, vals))
		t.rhs = append(t.rhs, sign*p.b[i])
		var logs []int32
		var bas int
		addLog := func(s float64, art bool) int {
			c := logCol
			logCol++
			t.logRow = append(t.logRow, int32(r))
			t.logSign = append(t.logSign, s)
			t.isArt[c] = art
			logs = append(logs, int32(c))
			return c
		}
		switch kinds[i].rel {
		case LE:
			bas = addLog(1, false)
		case GE:
			addLog(-1, false)
			bas = addLog(1, true)
		case EQ:
			bas = addLog(1, true)
		}
		t.rowLogs = append(t.rowLogs, logs)
		t.probRow = append(t.probRow, int32(r))
		t.basis = append(t.basis, bas)
		t.xB = append(t.xB, sign*p.b[i])
		t.inBasis[bas] = true
		t.whereBasic[bas] = r
		t.m++
	}
	// The initial all-logical basis factorizes trivially; do it lazily at
	// the first solve entry like any other structural change.
	t.factorStale = true
	return t
}

// basisColNNZ reports the nonzero count of the basic column at position p
// (the refactorization's static Markowitz-style ordering key).
func (t *revised) basisColNNZ(p int) int {
	if c := t.basis[p]; c < t.n {
		return len(t.colRows[c])
	}
	return 1
}

// scatterBasisColumn adds the sparse entries of the basic column at
// position p into the engine-row-indexed accumulator x, implementing the
// factorization's basisMatrix source without per-column closures.
func (t *revised) scatterBasisColumn(p int, x []float64, patt []int32) []int32 {
	c := t.basis[p]
	if c < t.n {
		rows, vals := t.colRows[c], t.colVals[c]
		for k, r := range rows {
			if x[r] == 0 && vals[k] != 0 {
				patt = append(patt, r)
			}
			x[r] += vals[k]
		}
		return patt
	}
	r := t.logRow[c-t.n]
	if x[r] == 0 {
		patt = append(patt, r)
	}
	x[r] += t.logSign[c-t.n]
	return patt
}

// factorizeNow rebuilds the LU factorization from the current basis columns,
// dropping the eta file. On numerical singularity the representation is lost
// and the state is marked broken: every iterate loop then reports IterLimit,
// which the caller turns into a cold re-solve (or a loud non-optimum) — a
// broken state never certifies optimality or infeasibility.
func (t *revised) factorizeNow() bool {
	if t.f.refactorize(t.m, t) {
		t.factorStale = false
		t.broken = false
		t.refactors++
		return true
	}
	t.broken = true
	return false
}

// ensureFactor makes the factorization match the current basis structure,
// refactorizing if rows were appended or removed since the last solve.
func (t *revised) ensureFactor() bool {
	if !t.factorStale {
		return !t.broken
	}
	return t.factorizeNow()
}

// dualCand is one eligible entering column of the bounded dual ratio test.
type dualCand struct {
	col   int32
	ratio float64
	mag   float64 // |pivot element|, the tie-breaking key
}

// dualCandBefore is the bound-flipping walk's consumption order: ratio
// ascending with ratios below tieTol collapsed into one degenerate bucket,
// ties by descending pivot magnitude (Harris-style), final ties by a hashed
// (still deterministic) column order that decorrelates the flip walk from
// the master's column layout — plain index order re-correlates it into
// coherent flip storms on integer-data masters.
func dualCandBefore(a, b dualCand) bool {
	const tieTol = 1e-9 // ratios below this are the degenerate bucket
	ra, rb := a.ratio, b.ratio
	if ra <= tieTol {
		ra = 0
	}
	if rb <= tieTol {
		rb = 0
	}
	if ra != rb {
		return ra < rb
	}
	if a.mag != b.mag {
		return a.mag > b.mag
	}
	ha := uint32(a.col) * 2654435761
	hb := uint32(b.col) * 2654435761
	if ha != hb {
		return ha < hb
	}
	return a.col < b.col
}

// heapifyDualCands builds a binary min-heap under dualCandBefore in place.
func heapifyDualCands(c []dualCand) {
	for i := len(c)/2 - 1; i >= 0; i-- {
		siftDualCand(c, i)
	}
}

// siftDualCand restores the heap property below index i.
func siftDualCand(c []dualCand, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(c) && dualCandBefore(c[l], c[min]) {
			min = l
		}
		if r < len(c) && dualCandBefore(c[r], c[min]) {
			min = r
		}
		if min == i {
			return
		}
		c[i], c[min] = c[min], c[i]
		i = min
	}
}

// pivTol is the minimum magnitude accepted for a dual pivot element.
// Pivoting on elements near the eps noise floor multiplies the basis
// inverse by huge factors and destroys it within a few iterations; the
// verification loop in ResolveFrom would catch the damage, but refusing
// such pivots keeps the inverse healthy in the first place.
const pivTol = 1e-7

// singleton reports whether the row references a single variable (after
// summing duplicate columns and ignoring zero coefficients); col is -1 for
// an empty row.
func singleton(row []entry) (col int, coef float64, ok bool) {
	col = -1
	for _, e := range row {
		if e.val == 0 {
			continue
		}
		if col >= 0 && e.col != col {
			return 0, 0, false
		}
		col = e.col
		coef += e.val
	}
	return col, coef, true
}

// normalizeEntries returns the row's structural entries scaled by sign, with
// duplicate columns summed and zero coefficients dropped, sorted by column.
func normalizeEntries(row []entry, sign float64) ([]int32, []float64) {
	cols := make([]int32, 0, len(row))
	vals := make([]float64, 0, len(row))
	sorted := true
	for _, e := range row {
		if e.val == 0 {
			continue
		}
		if len(cols) > 0 && int32(e.col) <= cols[len(cols)-1] {
			sorted = false
		}
		cols = append(cols, int32(e.col))
		vals = append(vals, sign*e.val)
	}
	if !sorted && len(cols) > 1 {
		order := make([]int, len(cols))
		for k := range order {
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return cols[order[a]] < cols[order[b]] })
		oc := make([]int32, 0, len(cols))
		ov := make([]float64, 0, len(vals))
		for _, k := range order {
			if len(oc) > 0 && oc[len(oc)-1] == cols[k] {
				ov[len(ov)-1] += vals[k]
			} else {
				oc = append(oc, cols[k])
				ov = append(ov, vals[k])
			}
		}
		cols, vals = oc, ov
	}
	// Drop entries that cancelled to zero.
	out := 0
	for k := range cols {
		if vals[k] != 0 {
			cols[out], vals[out] = cols[k], vals[k]
			out++
		}
	}
	return cols[:out], vals[:out]
}

// setPhaseCost loads the working cost vector: artificial costs for phase 1,
// the problem objective for phase 2.
func (t *revised) setPhaseCost(phase1 bool) {
	nTotal := len(t.cost)
	t.curCost = t.curCost[:nTotal]
	if phase1 {
		for j := range t.curCost {
			if t.isArt[j] {
				t.curCost[j] = 1
			} else {
				t.curCost[j] = 0
			}
		}
	} else {
		copy(t.curCost, t.cost)
	}
}

// refreshRed recomputes the basic values and the reduced-cost row from the
// factorized basis: xB = B⁻¹(b − N·x_N) by FTRAN, then the duals
// y = c_B·B⁻¹ by BTRAN, then red_j = c_j - y·A_j via one sweep over the
// sparse rows. Re-deriving xB together with red keeps the incremental
// per-pivot updates from drifting apart between refreshes.
func (t *revised) refreshRed() {
	if !t.ensureFactor() {
		t.sinceRefresh = 0
		return
	}
	t.refreshXB()
	nTotal := len(t.curCost)
	t.red = t.red[:nTotal]
	copy(t.red, t.curCost)
	y := t.y[:t.m]
	for i := 0; i < t.m; i++ {
		y[i] = t.curCost[t.basis[i]]
	}
	t.f.btran(y) // dense by design: c_B is a dense right-hand side
	t.kstats.noteBtran(false, 0)
	for i := 0; i < t.m; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		cols, vals := t.rowCols[i], t.rowVals[i]
		red := t.red
		for k, c := range cols {
			red[c] -= yi * vals[k]
		}
		for _, lc := range t.rowLogs[i] {
			red[lc] -= yi * t.logSign[lc-int32(t.n)]
		}
	}
	t.sinceRefresh = 0
}

// invalidateKernel forgets the sparse-support bookkeeping of the solve
// scratch — after any change to the row dimension the stale supports may
// index out of range — and schedules a dual working-set rebuild.
func (t *revised) invalidateKernel() {
	t.wSparse, t.rhoSparse, t.tauSparse = false, false, false
	t.rowListOK = false
}

// ftran computes w = B⁻¹·A_col into t.w: the column's sparse entries are
// scattered into the row-space right-hand side and solved through the
// hypersparse kernels, leaving the result's support in t.wInd (wSparse is
// cleared when the solve fell back to the dense path; t.w is a valid dense
// result either way).
func (t *revised) ftran(col int) {
	w := t.w[:t.m]
	if t.wSparse {
		for _, i := range t.wInd {
			w[i] = 0
		}
	} else {
		for i := range w {
			w[i] = 0
		}
	}
	var ind []int32
	if col < t.n {
		rows, vals := t.colRows[col], t.colVals[col]
		for k, r := range rows {
			w[r] = vals[k]
		}
		ind = rows
	} else {
		r := t.logRow[col-t.n]
		w[r] = t.logSign[col-t.n]
		t.oneInd[0] = r
		ind = t.oneInd[:]
	}
	t.wInd, t.wSparse = t.f.ftranSparse(w, ind, t.wInd[:0], ftranEnter)
	t.kstats.noteFtran(t.wSparse, len(t.wInd))
}

// btranRho computes rho = e_rowᵀ·B⁻¹ (the pivot row of the inverse) into
// t.rho by a BTRAN of the position-space unit vector, leaving the row's
// support in t.rhoInd (rhoSparse cleared on dense fallback).
func (t *revised) btranRho(row int) {
	rho := t.rho[:t.m]
	if t.rhoSparse {
		for _, i := range t.rhoInd {
			rho[i] = 0
		}
	} else {
		for i := range rho {
			rho[i] = 0
		}
	}
	rho[row] = 1
	t.oneInd[0] = int32(row)
	t.rhoInd, t.rhoSparse = t.f.btranSparse(rho, t.oneInd[:], t.rhoInd[:0])
	t.kstats.noteBtran(t.rhoSparse, len(t.rhoInd))
}

// ensureWeights initializes pricing weights for basis positions appended
// since the last pricing pass (marked -1 by appendRow). While the weight
// set is exactly maintained, a new position's reference weight is computed
// exactly with one BTRAN of the position unit vector — ‖e_pᵀB⁻¹‖², the
// Forrest–Goldfarb definition; in devex mode the reference value 1 is used.
// Existing positions are never touched here: applyPivot maintains them
// incrementally across every basis change.
func (t *revised) ensureWeights() {
	if t.rule == PricingDantzig {
		return
	}
	exact := t.rule == PricingSteepestEdge && !t.dseStale && !t.broken && !t.factorStale
	for p := 0; p < t.m; p++ {
		if t.dseW[p] >= 0 {
			continue
		}
		if !exact {
			t.dseW[p] = 1
			continue
		}
		t.btranRho(p)
		rho := t.rho[:t.m]
		s := 0.0
		if t.rhoSparse {
			for _, i := range t.rhoInd {
				v := rho[i]
				s += v * v
			}
		} else {
			for _, v := range rho {
				s += v * v
			}
		}
		if s < dseWeightFloor {
			s = dseWeightFloor
		}
		t.dseW[p] = s
	}
}

// updateWeights maintains the dual pricing weights across the basis change
// at position row: t.w must hold the pivot column B⁻¹·A_q and t.rho the
// pivot row e_rowᵀ·B⁻¹, both for the pre-pivot basis (which is why
// applyPivot calls this before pushing the pivot's eta). The exact norm of
// the pivot row — free, since the row was computed for the ratio test
// anyway — always anchors the leaving position's new weight, and doubles as
// the staleness detector: when the incrementally carried weight disagrees
// with the exact norm by more than dseStaleFactor, accumulated update error
// has detached the weight set from the basis and the engine degrades to
// devex max-form updates (robust to approximate weights) for the rest of
// this state's life.
//
// Exact (Forrest–Goldfarb) mode updates every position touched by the
// pivot column with
//
//	β'_i = β_i − 2·(w_i/w_r)·τ_i + (w_i/w_r)²·β_r ,  τ = B⁻¹·rho_row ,
//
// costing one extra FTRAN per pivot (τ_i is the inner product of inverse
// rows i and row); devex mode uses β'_i = max(β_i, (w_i/w_r)²·β_r) with no
// extra solve.
func (t *revised) updateWeights(row int) {
	w := t.w[:t.m]
	wr := w[row]
	if wr == 0 {
		return
	}
	rho := t.rho[:t.m]
	br := 0.0
	if t.rhoSparse {
		for _, i := range t.rhoInd {
			v := rho[i]
			br += v * v
		}
	} else {
		for _, v := range rho {
			br += v * v
		}
	}
	inv := 1 / wr
	if t.rule == PricingSteepestEdge && !t.dseStale {
		if incw := t.dseW[row]; incw > 0 && (incw*dseStaleFactor < br || incw > br*dseStaleFactor) {
			t.dseStale = true
			for i := range t.dseW {
				t.dseW[i] = 1
			}
		}
	}
	if t.rule == PricingSteepestEdge && !t.dseStale {
		// FG correction term τ = B⁻¹·rho, solved through the hypersparse
		// kernels with rho's support as the right-hand-side pattern.
		tau := t.tau[:t.m]
		if t.tauSparse {
			for _, i := range t.tauInd {
				tau[i] = 0
			}
		} else {
			for i := range tau {
				tau[i] = 0
			}
		}
		if t.rhoSparse {
			for _, i := range t.rhoInd {
				tau[i] = rho[i]
			}
			t.tauInd, t.tauSparse = t.f.ftranSparse(tau, t.rhoInd, t.tauInd[:0], ftranTau)
		} else {
			copy(tau, rho)
			t.f.ftran(tau)
			t.tauInd, t.tauSparse = t.tauInd[:0], false
		}
		t.kstats.noteFtran(t.tauSparse, len(t.tauInd))
		if t.wSparse {
			for _, i32 := range t.wInd {
				i := int(i32)
				wi := w[i]
				if wi == 0 || i == row {
					continue
				}
				s := wi * inv
				nb := t.dseW[i] - 2*s*tau[i] + s*s*br
				if nb < dseWeightFloor {
					nb = dseWeightFloor
				}
				t.dseW[i] = nb
			}
		} else {
			for i := 0; i < t.m; i++ {
				wi := w[i]
				if wi == 0 || i == row {
					continue
				}
				s := wi * inv
				nb := t.dseW[i] - 2*s*tau[i] + s*s*br
				if nb < dseWeightFloor {
					nb = dseWeightFloor
				}
				t.dseW[i] = nb
			}
		}
		nb := br * inv * inv
		if nb < dseWeightFloor {
			nb = dseWeightFloor
		}
		t.dseW[row] = nb
		return
	}
	// Devex max-form updates, anchored at the exact pivot-row norm.
	reset := false
	if t.wSparse {
		for _, i32 := range t.wInd {
			i := int(i32)
			wi := w[i]
			if wi == 0 || i == row {
				continue
			}
			if cand := wi * wi * inv * inv * br; cand > t.dseW[i] {
				t.dseW[i] = cand
				if cand > devexResetAbove {
					reset = true
				}
			}
		}
	} else {
		for i := 0; i < t.m; i++ {
			wi := w[i]
			if wi == 0 || i == row {
				continue
			}
			if cand := wi * wi * inv * inv * br; cand > t.dseW[i] {
				t.dseW[i] = cand
				if cand > devexResetAbove {
					reset = true
				}
			}
		}
	}
	brr := br * inv * inv
	if brr < 1 {
		brr = 1
	}
	t.dseW[row] = brr
	if reset || brr > devexResetAbove {
		for i := range t.dseW {
			t.dseW[i] = 1
		}
	}
}

// pivotRowAlpha accumulates alpha_j = rho·A_j for every column with a
// nonzero result into t.alpha, recording them in t.touched; t.rho must hold
// the pivot row (btranRho leaves its support in t.rhoInd, which this sweep
// walks instead of scanning all m positions when available). The cost is
// the sparse support of the pivot row, never n or m. Callers must drain
// t.alpha back to zero (the reduced-cost update in applyPivot does, as does
// clearAlpha).
func (t *revised) pivotRowAlpha() {
	t.touched = t.touched[:0]
	rho := t.rho[:t.m]
	// Estimate the scatter volume (Σ stored entries over rho's support)
	// first: wide covering cuts make pivot rows column-dense at scale, and
	// once the volume passes the column count it is cheaper to scatter with
	// no per-entry support tracking and recover touched in one sequential
	// sweep. The two modes are interchangeable: per-column accumulation
	// order is identical, and the only touched-list differences — columns
	// whose alpha cancelled to exact zero, or duplicate listings — are
	// no-ops for every consumer (zero alphas fail the pivot-tolerance
	// checks and contribute nothing to the reduced-cost update, and the
	// ratio-test heap pops a strict total order regardless of insertion
	// order), so the pivot sequence does not depend on the mode switch.
	nc := len(t.alpha)
	vol := 0
	if t.rhoSparse {
		for _, i32 := range t.rhoInd {
			i := int(i32)
			if rho[i] != 0 {
				vol += len(t.rowCols[i]) + len(t.rowLogs[i])
			}
		}
		if vol >= nc {
			for _, i32 := range t.rhoInd {
				i := int(i32)
				if ri := rho[i]; ri != 0 {
					t.scatterRowAlphaRaw(i, ri)
				}
			}
			t.collectTouched()
			return
		}
		for _, i32 := range t.rhoInd {
			i := int(i32)
			if ri := rho[i]; ri != 0 {
				t.scatterRowAlpha(i, ri)
			}
		}
		return
	}
	for i := 0; i < t.m; i++ {
		if rho[i] != 0 {
			vol += len(t.rowCols[i]) + len(t.rowLogs[i])
		}
	}
	if vol >= nc {
		for i := 0; i < t.m; i++ {
			if ri := rho[i]; ri != 0 {
				t.scatterRowAlphaRaw(i, ri)
			}
		}
		t.collectTouched()
		return
	}
	for i := 0; i < t.m; i++ {
		if ri := rho[i]; ri != 0 {
			t.scatterRowAlpha(i, ri)
		}
	}
}

// alphaRun is one maximal run of consecutive columns sharing a coefficient
// within a row. Covering cuts are unions of job windows with small integer
// coverage levels, so a row's coefficient profile changes only at window
// boundaries: a cut spanning hundreds of slots compresses to a handful of
// runs, and the pivot-row scatter walks runs — one multiply plus a
// sequential block add — instead of streaming per-entry column indices and
// values from memory. Rows without consecutive structure degrade to
// length-1 runs, which costs the same entry walk as the uncompressed form.
type alphaRun struct {
	lo, ln int32
	val    float64
}

// compressRuns builds the run form of a normalized (strictly ascending,
// zero-free) row. Walking runs left to right reproduces the entry walk in
// the exact same column order, so the two forms are arithmetically
// interchangeable anywhere a row is accumulated.
func compressRuns(cols []int32, vals []float64) []alphaRun {
	runs := make([]alphaRun, 0, 8)
	for k := 0; k < len(cols); {
		j := k + 1
		for j < len(cols) && cols[j] == cols[j-1]+1 && vals[j] == vals[k] {
			j++
		}
		runs = append(runs, alphaRun{lo: cols[k], ln: int32(j - k), val: vals[k]})
		k = j
	}
	return runs
}

// scatterRowAlpha adds ri times row i's entries into the alpha accumulator.
func (t *revised) scatterRowAlpha(i int, ri float64) {
	alpha := t.alpha
	for _, rn := range t.rowRun[i] {
		x := ri * rn.val
		seg := alpha[rn.lo : rn.lo+rn.ln]
		base := rn.lo
		for k := range seg {
			if seg[k] == 0 {
				t.touched = append(t.touched, base+int32(k))
			}
			seg[k] += x
		}
	}
	for _, lc := range t.rowLogs[i] {
		if alpha[lc] == 0 {
			t.touched = append(t.touched, lc)
		}
		alpha[lc] += ri * t.logSign[lc-int32(t.n)]
	}
}

// scatterRowAlphaRaw is scatterRowAlpha without support tracking — a block
// add per run — for the column-dense mode; callers recover the support
// with collectTouched after the last row. (A run-boundary difference
// accumulator folded by one prefix sum would be asymptotically cheaper
// still, but reassociating the per-column additions perturbs alpha in
// final ulps, and the flip walk's magnitude tie-breaks are sensitive
// enough that the jitter measurably doubles pivot counts at T = 16384 —
// the entry-order block add is the fastest form that keeps the pivot
// sequence exactly.)
func (t *revised) scatterRowAlphaRaw(i int, ri float64) {
	alpha := t.alpha
	for _, rn := range t.rowRun[i] {
		x := ri * rn.val
		seg := alpha[rn.lo : rn.lo+rn.ln]
		for k := range seg {
			seg[k] += x
		}
	}
	ls, n := t.logSign, int32(t.n)
	for _, lc := range t.rowLogs[i] {
		alpha[lc] += ri * ls[lc-n]
	}
}

// collectTouched rebuilds t.touched as the ascending support of t.alpha.
func (t *revised) collectTouched() {
	for c, a := range t.alpha {
		if a != 0 {
			t.touched = append(t.touched, int32(c))
		}
	}
}

// clearAlpha zeroes the accumulator without applying it.
func (t *revised) clearAlpha() {
	for _, c := range t.touched {
		t.alpha[c] = 0
	}
	t.touched = t.touched[:0]
}

// applyPivot performs the basis change on (row, col): the entering column
// moves by delta in direction dir (+1 from its lower bound, -1 from its
// upper bound), every basic value is stepped, the eta file receives the
// pivot column, the persistent reduced-cost row is updated from the
// pre-pivot pivot row, and the leaving variable settles at its upper bound
// when toUpper is true, else at zero.
//
// t.w must hold the FTRAN of the entering column. When alphaReady is true
// the caller has already filled t.alpha/t.touched from the pivot row (the
// dual path computes it for the ratio test); otherwise applyPivot computes
// it with a BTRAN. Either way the accumulator is drained before returning.
func (t *revised) applyPivot(row, col int, dir, delta float64, toUpper bool, alphaReady bool) {
	if t.pivotHook != nil {
		t.pivotHook(row, col)
	}
	w := t.w[:t.m]
	if delta != 0 {
		if t.wSparse {
			for _, i32 := range t.wInd {
				i := int(i32)
				if i == row {
					continue
				}
				if wi := w[i]; wi != 0 {
					t.xB[i] -= dir * wi * delta
					t.noteDualRow(i)
				}
			}
		} else {
			for i := range w {
				if i == row {
					continue
				}
				if wi := w[i]; wi != 0 {
					t.xB[i] -= dir * wi * delta
					t.noteDualRow(i)
				}
			}
		}
	}
	enterVal := dir * delta
	if t.atUpper[col] {
		enterVal += t.upper[col]
	}

	if !alphaReady {
		t.btranRho(row)
		t.pivotRowAlpha()
	}
	if f := t.red[col]; f != 0 {
		scale := f / w[row]
		red := t.red
		for _, c := range t.touched {
			a := t.alpha[c]
			t.alpha[c] = 0
			red[c] -= scale * a
		}
		t.touched = t.touched[:0]
		red[col] = 0
	} else {
		t.clearAlpha()
	}

	// Maintain the dual pricing weights against the pre-pivot basis (t.w
	// and t.rho are both still pre-pivot here; the FG correction term
	// needs the old factors, so this must precede the eta push).
	if t.rule != PricingDantzig {
		t.updateWeights(row)
	}

	// Record the basis change instead of a dense rank-one inverse update: a
	// Forrest–Tomlin in-place update of U by default (consuming the spike
	// the entering FTRAN stashed), an eta-file append under the PFI
	// ablation — O(nnz(spike)) written either way, nothing of size m².
	forcedRefactor := false
	if t.f.rule == FactorizationFT {
		if !t.f.ftUpdate(row) {
			// The spike's eliminated diagonal failed the stability
			// tolerance, so the update refused and the factors still
			// describe the pre-pivot basis. Finish the basis bookkeeping,
			// then refactorize from the post-pivot basis below.
			t.kstats.ForcedRefactors++
			forcedRefactor = true
		}
	} else if t.wSparse {
		t.f.pushEtaSparse(row, w, t.wInd)
	} else {
		t.f.pushEta(row, w)
	}

	leave := t.basis[row]
	t.inBasis[leave] = false
	t.whereBasic[leave] = -1
	t.atUpper[leave] = toUpper
	t.basis[row] = col
	t.inBasis[col] = true
	t.whereBasic[col] = row
	t.atUpper[col] = false
	if enterVal < 0 && enterVal > -1e-7 {
		enterVal = 0
	}
	t.xB[row] = enterVal
	t.noteDualRow(row)
	t.pivots++
	t.sinceRefresh++
	// Fold the updated factors into a fresh LU before they accumulate fill
	// or drift (or immediately, when a stability-forced refactorization is
	// pending). The basis bookkeeping above is already final, so the
	// refactorization sees exactly the post-pivot basis. The basic values
	// and reduced costs are re-derived immediately: they carry the
	// update-era incremental state, and letting them disagree with the
	// fresh factors makes the dual ratio test chase phantom violations.
	fold := forcedRefactor
	if !fold {
		if t.f.rule == FactorizationFT {
			fold = t.f.ftShouldFold()
		} else {
			fold = t.f.etas() >= maxEtas || t.f.etaNNZ() > etaBloat*(t.f.luNNZ+t.m)
		}
	}
	if fold {
		if t.factorizeNow() {
			t.refreshRed()
		}
	}
}

// accumulateFlip records a bound flip of column col (moving by u in
// direction dir) in the row-space accumulator; applyFlips folds every
// recorded flip into the basic values with a single B⁻¹ application.
func (t *revised) accumulateFlip(col int, dir, u float64) {
	d := dir * u
	if col < t.n {
		rows, vals := t.colRows[col], t.colVals[col]
		for k, r := range rows {
			if t.flipAcc[r] == 0 {
				t.flipInd = append(t.flipInd, r)
			}
			t.flipAcc[r] += d * vals[k]
		}
		return
	}
	r := t.logRow[col-t.n]
	if t.flipAcc[r] == 0 {
		t.flipInd = append(t.flipInd, r)
	}
	t.flipAcc[r] += d * t.logSign[col-t.n]
}

// applyFlips applies xB -= B⁻¹·flipAcc with one FTRAN and clears the
// accumulator. The accumulated support rides along as the solve's
// right-hand-side pattern (flipSol keeps the all-zero invariant the sparse
// scatter needs; duplicate support entries from mid-walk cancellations are
// harmless everywhere they flow).
func (t *revised) applyFlips() {
	acc := t.flipAcc[:t.m]
	s := t.flipSol[:t.m]
	for _, r := range t.flipInd {
		// flipInd can list r twice when the accumulator passed through exact
		// zero mid-walk; the guard keeps a second visit from wiping the value
		// the first one already moved into s.
		if acc[r] != 0 {
			s[r] = acc[r]
			acc[r] = 0
		}
	}
	var sparse bool
	t.flipSolInd, sparse = t.f.ftranSparse(s, t.flipInd, t.flipSolInd[:0], ftranFlip)
	t.kstats.noteFtran(sparse, len(t.flipSolInd))
	if sparse {
		for _, i32 := range t.flipSolInd {
			i := int(i32)
			if si := s[i]; si != 0 {
				t.xB[i] -= si
				t.noteDualRow(i)
			}
			s[i] = 0
		}
	} else {
		for i := 0; i < t.m; i++ {
			if si := s[i]; si != 0 {
				t.xB[i] -= si
				t.noteDualRow(i)
			}
			s[i] = 0
		}
	}
	t.flipInd = t.flipInd[:0]
}

// boundFlip moves nonbasic column col across its (finite) range to the
// opposite bound without a basis change. t.w must hold the column's FTRAN.
func (t *revised) boundFlip(col int, dir float64) {
	if u := t.upper[col]; u > 0 {
		w := t.w[:t.m]
		if t.wSparse {
			for _, i32 := range t.wInd {
				if wi := w[i32]; wi != 0 {
					t.xB[i32] -= dir * wi * u
				}
			}
		} else {
			for i := range w {
				if wi := w[i]; wi != 0 {
					t.xB[i] -= dir * wi * u
				}
			}
		}
	}
	t.atUpper[col] = !t.atUpper[col]
}

// primalScore is a column's attractiveness under the current reduced
// costs: the rate of objective decrease per unit of movement off its bound.
// Zero (or negative) means the column may not enter.
func (t *revised) primalScore(j int, phase1 bool) float64 {
	if t.inBasis[j] || (!phase1 && t.isArt[j]) {
		return 0
	}
	if t.atUpper[j] {
		return t.red[j]
	}
	return -t.red[j]
}

// pickPartial is the partial-pricing entering-column choice: it first
// drains the managed candidate list — re-scoring each member against the
// live reduced costs, dropping the no-longer-attractive, and returning the
// best — and only when the list yields nothing does it refill by scanning
// columns cyclically from the rotor until candListMax fresh candidates are
// collected or the scan wraps. Steady-state pricing therefore touches a
// bounded window of columns per pivot instead of all of them, while the
// full-wrap-empty case is exactly full pricing's "no attractive column"
// conclusion, so optimality claims are unchanged (and are still confirmed
// against a fresh reduced-cost row by the caller).
func (t *revised) pickPartial(phase1 bool) int {
	best, col := eps, -1
	out := 0
	for _, j32 := range t.candList {
		j := int(j32)
		s := t.primalScore(j, phase1)
		if s <= eps {
			continue
		}
		t.candList[out] = j32
		out++
		if s > best {
			best, col = s, j
		}
	}
	t.candList = t.candList[:out]
	if col >= 0 {
		return col
	}
	t.candList = t.candList[:0]
	ncols := len(t.red)
	j := t.candRotor
	if j >= ncols {
		j = 0
	}
	for scanned := 0; scanned < ncols && len(t.candList) < candListMax; scanned++ {
		if s := t.primalScore(j, phase1); s > eps {
			t.candList = append(t.candList, int32(j))
			if s > best {
				best, col = s, j
			}
		}
		j++
		if j == ncols {
			j = 0
		}
	}
	t.candRotor = j
	return col
}

// primalIterate runs bounded-variable primal simplex iterations with the
// current phase's cost vector until optimal, unbounded, or the pivot budget
// is exhausted. Outside phase 1, artificial columns may not enter.
func (t *revised) primalIterate(phase1 bool, budget *int) Status {
	t.setPhaseCost(phase1)
	t.refreshRed()
	t.ensureWeights()
	blandFrom := *budget / 2 // switch to Bland's rule for the second half
	for iter := 0; ; iter++ {
		if *budget <= 0 || t.broken {
			return IterLimit
		}
		*budget--
		if t.sinceRefresh >= refreshEvery {
			t.refreshRed()
		}
		red := t.red
		col := -1
		if iter >= blandFrom {
			for j := range red {
				if t.inBasis[j] || (!phase1 && t.isArt[j]) {
					continue
				}
				if t.atUpper[j] {
					if red[j] > eps {
						col = j
						break
					}
				} else if red[j] < -eps {
					col = j
					break
				}
			}
		} else if t.rule == PricingDantzig {
			best := eps
			for j := range red {
				if t.inBasis[j] || (!phase1 && t.isArt[j]) {
					continue
				}
				score := -red[j]
				if t.atUpper[j] {
					score = red[j]
				}
				if score > best {
					best = score
					col = j
				}
			}
		} else {
			col = t.pickPartial(phase1)
		}
		if col < 0 {
			// Never certify optimality against a stale reduced-cost row:
			// refresh and re-price once if any pivots happened since the
			// last full recompute (refreshRed zeroes sinceRefresh, so this
			// retries at most once per pivot).
			if t.sinceRefresh > 0 {
				t.refreshRed()
				continue
			}
			return Optimal
		}
		dir := 1.0
		if t.atUpper[col] {
			dir = -1.0
		}
		t.ftran(col)
		w := t.w[:t.m]
		// Ratio test over basic bounds, capped by the entering variable's
		// own range (a bound flip).
		row := -1
		toUpper := false
		bestRatio := t.upper[col]
		for i := range w {
			wi := dir * w[i]
			if wi > eps {
				ratio := t.xB[i] / wi
				if ratio < 0 {
					ratio = 0
				}
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row]) {
					row, bestRatio, toUpper = i, ratio, false
				}
			} else if wi < -eps {
				ub := t.upper[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ratio := (ub - t.xB[i]) / -wi
				if ratio < 0 {
					ratio = 0
				}
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row]) {
					row, bestRatio, toUpper = i, ratio, true
				}
			}
		}
		if row < 0 {
			if math.IsInf(bestRatio, 1) {
				return Unbounded
			}
			t.boundFlip(col, dir)
			continue
		}
		t.applyPivot(row, col, dir, bestRatio, toUpper, false)
	}
}

// dualViolation reports position i's bound violation magnitude (zero when
// within bounds) and whether the violation is above the upper bound.
func (t *revised) dualViolation(i int) (float64, bool) {
	v := t.xB[i]
	if v < -1e-7 {
		return -v, false
	}
	if ub := t.upper[t.basis[i]]; !math.IsInf(ub, 1) && v-ub > 1e-7 {
		return v - ub, true
	}
	return 0, false
}

// noteDualRow adds basis position i to the dual working set when its basic
// value violates a bound and it is not already listed. Every code path that
// changes an xB entry during dual iteration calls it, which preserves the
// working-set invariant behind rowListOK. Both kernel paths visit changed
// positions in ascending order and gate on the same numeric nonzero tests,
// so the list contents — and therefore the pivot sequence — are identical
// whichever path produced the update.
func (t *revised) noteDualRow(i int) {
	if !t.rowListOK || t.inRowList[i] {
		return
	}
	if viol, _ := t.dualViolation(i); viol == 0 {
		return
	}
	t.inRowList[i] = true
	t.rowList = append(t.rowList, int32(i))
}

// refillDualRows rebuilds the working set with one full ascending sweep,
// listing every violated position. An empty refill is the "no violated row"
// conclusion, identical to the full sweep it replaces.
func (t *revised) refillDualRows() int {
	for _, i32 := range t.rowList {
		t.inRowList[i32] = false
	}
	t.rowList = t.rowList[:0]
	for i := 0; i < t.m; i++ {
		if viol, _ := t.dualViolation(i); viol != 0 {
			t.inRowList[i] = true
			t.rowList = append(t.rowList, int32(i))
		}
	}
	t.rowListOK = true
	t.kstats.RowRefills++
	return len(t.rowList)
}

// pickDualRow is the working-set leaving-row choice for the steepest-edge
// and devex regimes: it drains the listed candidates — re-checking each
// against the live basic values, dropping the repaired — and returns the
// one maximizing violation²/weight (the dual steepest-edge score, ties to
// the lowest position). Because refills list every violated position and
// noteDualRow keeps the list complete across basic-value updates, the
// choice — and hence the whole pivot sequence — is exactly the full
// sweep's, while steady-state selection cost is O(|violated positions|),
// not O(m): on the covering masters a pivot repairs most of what it
// touches, so the drained list collapses to a handful of live cut rows
// between refills.
func (t *revised) pickDualRow() (int, bool) {
	for {
		if !t.rowListOK {
			if t.refillDualRows() == 0 {
				return -1, false
			}
		}
		best, row, above := 0.0, -1, false
		out := 0
		for _, i32 := range t.rowList {
			i := int(i32)
			viol, ab := t.dualViolation(i)
			if viol == 0 {
				t.inRowList[i] = false
				continue
			}
			t.rowList[out] = i32
			out++
			if score := viol * viol / t.dseW[i]; score > best || (score == best && row >= 0 && i < row) {
				best, row, above = score, i, ab
			}
		}
		t.rowList = t.rowList[:out]
		if row >= 0 {
			return row, above
		}
		// Every member was repaired since it was listed; refill from the
		// rotor (a refill that finds nothing ends the loop above).
		t.rowListOK = false
	}
}

// dualIterate restores primal feasibility (basic values pushed outside
// their bounds by newly appended rows) while maintaining dual feasibility,
// using the bounded-variable dual simplex. It assumes the state was optimal
// before the rows were appended. A pivot may land the entering variable
// beyond its own finite bound; that surfaces as a fresh infeasibility
// repaired by a later iteration. Like the primal loop, it falls back from
// most-infeasible-row selection to lowest-index selection for the second
// half of the pivot budget as an anti-cycling safeguard.
//
// A conclusion of Infeasible is never accepted from drifted state: the
// engine refactorizes the basis inverse, resyncs basic values and reduced
// costs, and re-tries once before reporting it.
func (t *revised) dualIterate(budget *int) Status {
	t.setPhaseCost(false)
	t.refreshRed()
	t.ensureWeights()
	blandFrom := *budget / 2
	resynced := false
	for iter := 0; ; iter++ {
		if *budget <= 0 || t.broken {
			return IterLimit
		}
		*budget--
		if t.sinceRefresh >= refreshEvery {
			t.refreshRed()
		}
		// Leaving row. Steepest-edge/devex regimes pick the basic variable
		// maximizing violation²/weight — the dual steepest-edge criterion,
		// which measures each violation in the geometry of the dual edge
		// the pivot would traverse instead of raw units; on dual-degenerate
		// covering masters that takes far fewer (and better-conditioned)
		// pivots than most-infeasible selection. The Dantzig rule keeps
		// most-infeasible selection, and every rule falls back to
		// lowest-index selection in the Bland regime.
		row := -1
		above := false
		if t.rule != PricingDantzig && iter < blandFrom {
			row, above = t.pickDualRow()
		} else {
			worst := 1e-7
			for i := 0; i < t.m; i++ {
				v := t.xB[i]
				if -v > worst {
					worst, row, above = -v, i, false
					if iter >= blandFrom {
						break
					}
				}
				if ub := t.upper[t.basis[i]]; !math.IsInf(ub, 1) && v-ub > worst {
					worst, row, above = v-ub, i, true
					if iter >= blandFrom {
						break
					}
				}
			}
		}
		if row < 0 {
			return Optimal
		}
		sign := 1.0
		if above {
			sign = -1.0
		}
		t.btranRho(row)
		t.pivotRowAlpha()
		// Entering: bounded dual ratio test with bound flips. Candidates
		// are visited in increasing dual-ratio order (ties by column index,
		// for determinism and Bland-style safety); a candidate whose own
		// finite range cannot absorb the remaining violation is flipped
		// across its bounds — no basis change, its dual price has crossed
		// its ratio so the opposite bound is the dual-feasible one — and
		// the first candidate that can absorb the rest becomes the pivot.
		// Without the flips, an entering variable overrunning its bound
		// lands infeasible, leaves again next iteration, and the pair
		// ping-pongs for the rest of the budget on degenerate covering
		// masters.
		red := t.red
		cands := t.cands[:0]
		for _, j32 := range t.touched {
			j := int(j32)
			if t.inBasis[j] || t.isArt[j] {
				continue
			}
			a := sign * t.alpha[j]
			var ratio float64
			if t.atUpper[j] {
				if a <= pivTol {
					continue
				}
				ratio = -red[j] / a
			} else {
				if a >= -pivTol {
					continue
				}
				ratio = red[j] / -a
			}
			if ratio < 0 {
				ratio = 0
			}
			cands = append(cands, dualCand{col: int32(j), ratio: ratio, mag: math.Abs(a)})
		}
		t.cands = cands
		// Candidates are consumed in increasing dual-ratio order. Covering
		// masters are massively dual degenerate — at an integral optimum
		// most reduced costs are exactly zero, so whole swathes of
		// candidates tie at ratio zero. Within a ratio tie the walk prefers
		// the largest pivot magnitude (Harris-style): each flipped
		// candidate then absorbs the most violation per flip and the
		// eventual pivot element is large. Breaking ties by column index
		// instead sends the walk through long chains of dual-progress-free
		// flips that reshuffle every overlapping cut row — measured on the
		// T=4096 scaling family, that turned warm dual repairs of ~10²
		// pivots into 10⁴-pivot infeasibility storms.
		//
		// The order is realized lazily through a binary heap rather than a
		// full sort: the walk usually consumes a handful of the thousands
		// of candidates a wide pivot row yields, so heapify-plus-pops costs
		// O(k + consumed·log k) where the former full sort paid O(k·log k)
		// on every pivot — at T = 8192 that sort alone was ~a fifth of the
		// whole solve. Pop order is identical to the sorted order, so the
		// pivot sequence is unchanged.
		heapifyDualCands(cands)
		target := 0.0
		if above {
			target = t.upper[t.basis[row]]
		}
		col := -1
		var colDir float64
		flips := 0
		xrow := t.xB[row] // tracked analytically across flips via alpha
		for len(cands) > 0 {
			cd := cands[0]
			last := len(cands) - 1
			cands[0] = cands[last]
			cands = cands[:last]
			siftDualCand(cands, 0)
			j := int(cd.col)
			// Re-check eligibility against live bound state: t.touched can
			// list a column twice (its alpha cancelled to zero mid-sweep and
			// was re-added), and a candidate flipped earlier in this walk
			// must not be processed again — its reversed direction would
			// produce a degenerate pivot that snaps the still-violated
			// leaving variable to its bound without the compensating step.
			a := sign * t.alpha[j]
			var dir float64
			if t.atUpper[j] {
				if a <= pivTol {
					continue
				}
				dir = -1.0
			} else {
				if a >= -pivTol {
					continue
				}
				dir = 1.0
			}
			// Step the entering variable would need for a full repair; its
			// alpha is unchanged by earlier flips, only xB[row] moves.
			need := (xrow - target) / (dir * t.alpha[j])
			if u := t.upper[j]; u > 0 && !math.IsInf(u, 1) && need > u {
				// Flip: record the bound change and its row-space effect;
				// the combined basic-value update is applied once after the
				// walk, so a walk of k flips costs O(Σ nnz(A_j)) + one
				// O(m²) pass instead of k FTRANs.
				t.accumulateFlip(j, dir, u)
				t.atUpper[j] = !t.atUpper[j]
				xrow -= dir * u * t.alpha[j]
				flips++
				continue
			}
			col, colDir = j, dir
			break
		}
		if flips > 0 {
			t.applyFlips()
		}
		if col < 0 {
			t.clearAlpha()
			// Refactorize and resync before believing drifted state; the
			// retry re-enters the loop with clean numbers. A failed
			// refactorization leaves nothing to certify infeasibility with.
			if !resynced && t.resync() {
				resynced = true
				continue
			}
			if t.broken {
				return IterLimit
			}
			return Infeasible
		}
		delta := (t.xB[row] - target) / (colDir * t.alpha[col])
		if delta < 0 {
			delta = 0
		}
		t.ftran(col)
		t.applyPivot(row, col, colDir, delta, above, true)
	}
}

// coldSolve builds a fresh engine state for p and solves from scratch.
// Under the steepest-edge and devex rules it first tries the dual-feasible
// cold start: when every negative-cost structural column has a finite
// upper bound, resting each structural on the bound its cost sign prefers
// makes the all-logical basis (slack for LE, surplus for GE, the
// artificial pinned to [0,0] as an exact equality slack for EQ) dual
// feasible outright, and the bounded dual simplex drives the primal
// violations out with no phase 1, no artificial costs, and — the
// all-logical basis being a signed permutation — an exactly initialized
// steepest-edge weight set. Covering masters are the textbook case:
// minimize Σy over y ≤ 1 with a·y ≥ b rows is dual feasible at y = 0.
//
// Only a verified-able Optimal is accepted from that start: any other
// verdict — in particular an Infeasible claim, which from the float dual
// simplex can be a pivot-tolerance artifact — is re-derived on a fresh
// state by the classic two-phase solve, whose phase-1 verdict remains the
// engine's only cold infeasibility certificate. The discarded attempt's
// pivots still count toward the returned state's per-call totals. Under
// the Dantzig rule (pinned to the PR 4 baseline behavior) or when some
// column needs its infinite bound, two-phase runs directly.
func coldSolve(p *Problem, budget *int) (*revised, Status) {
	t := newRevised(p)
	if t.rule != PricingDantzig && t.dualColdStart() {
		st := t.dualIterate(budget)
		if st == Optimal {
			st = t.primalIterate(false, budget)
		}
		if st == Optimal {
			return t, st
		}
		spentPivots, spentRefactors := t.pivots, t.refactors
		spentKernel := t.kstats
		t = newRevised(p)
		t.pivotsAtCall = -spentPivots
		t.refactorsAtCall = -spentRefactors
		t.kstatsAtCall = KernelStats{}.minus(spentKernel)
	}
	return t, t.runTwoPhase(budget)
}

// dualColdStart installs the dual-feasible all-logical starting basis
// described at runCold, reporting false (with the state untouched) when a
// negative-cost column's infinite upper bound makes it inapplicable.
func (t *revised) dualColdStart() bool {
	for j := 0; j < t.n; j++ {
		if t.cost[j] < 0 && math.IsInf(t.upper[j], 1) {
			return false
		}
	}
	for r := 0; r < t.m; r++ {
		logs := t.rowLogs[r]
		bas := int(logs[0])
		for _, lc := range logs {
			if !t.isArt[lc] {
				bas = int(lc)
				break
			}
		}
		if t.isArt[bas] {
			// An EQ row's artificial is its pinned slack: forcing it back
			// into [0,0] is exactly the equality.
			t.upper[bas] = 0
		}
		old := t.basis[r]
		if old != bas {
			t.inBasis[old] = false
			t.whereBasic[old] = -1
			t.atUpper[old] = false
			t.basis[r] = bas
			t.inBasis[bas] = true
			t.whereBasic[bas] = r
		}
	}
	for j := 0; j < t.n; j++ {
		t.atUpper[j] = t.cost[j] < 0
	}
	// The installed basis is a signed permutation: every inverse row has
	// norm exactly 1, so the weight set starts exact.
	for i := range t.dseW {
		t.dseW[i] = 1
	}
	t.dseStale = false
	t.factorStale = true
	return true
}

// runTwoPhase executes the cold two-phase solve.
func (t *revised) runTwoPhase(budget *int) Status {
	hasArt := false
	for j := range t.isArt {
		if t.isArt[j] {
			hasArt = true
			break
		}
	}
	if hasArt {
		st := t.primalIterate(true, budget)
		if st != Optimal {
			return st
		}
		// Infeasible if any artificial remains basic at positive value.
		var artSum float64
		for i := 0; i < t.m; i++ {
			if t.isArt[t.basis[i]] {
				artSum += t.xB[i]
			}
		}
		if artSum > 1e-7 {
			return Infeasible
		}
		t.driveOutArtificials()
	}
	return t.primalIterate(false, budget)
}

// driveOutArtificials removes zero-valued artificials from the basis after
// phase 1 via degenerate swaps (the point does not move: the entering
// column keeps its current bound value). A row with no eligible entering
// column is linearly dependent on the others; its artificial stays basic
// with its bound pinned to [0,0], which keeps the basis square while
// enforcing the redundant constraint exactly.
func (t *revised) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if !t.isArt[t.basis[i]] {
			continue
		}
		t.btranRho(i)
		t.pivotRowAlpha()
		slices.Sort(t.touched)
		col := -1
		for _, j32 := range t.touched {
			j := int(j32)
			if t.isArt[j] || t.inBasis[j] {
				continue
			}
			if a := t.alpha[j]; a > eps || a < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			t.clearAlpha()
			t.upper[t.basis[i]] = 0 // redundant row
			continue
		}
		t.ftran(col)
		t.applyPivot(i, col, 1, 0, false, true)
	}
}

// resync refactorizes the basis from scratch — the eta file, the carrier of
// all accumulated update error, is dropped and the LU rebuilt from the basis
// columns — then recomputes every basic value and the reduced-cost row from
// the fresh factors. It reports false when the basis matrix is numerically
// singular (the state is then broken and only IterLimit may be reported).
func (t *revised) resync() bool {
	if !t.factorizeNow() {
		return false
	}
	t.refreshRed() // also re-derives xB from the fresh factors
	return true
}

// verifyOptimal confirms a claimed optimum against the problem data itself:
// the structural point must satisfy every constraint row of p within an
// absolute 1e-6 and every basic value its bounds. The check is ground
// truth — it reads the caller's rows, not any engine state derived from
// the (possibly drifted) inverse. On violation the engine refactorizes the
// basis, resyncs, and re-optimizes, a bounded number of times; persistent
// failure is reported as IterLimit so no caller ever consumes an
// infeasible "optimum" (the warm path then falls back to a cold solve).
func (t *revised) verifyOptimal(p *Problem, budget *int) Status {
	for tries := 0; ; tries++ {
		if t.consistent(p, 1e-6) {
			return Optimal
		}
		if tries == 2 || !t.resync() {
			return IterLimit
		}
		st := t.dualIterate(budget)
		if st == Optimal {
			st = t.primalIterate(false, budget)
		}
		if st != Optimal {
			return st
		}
	}
}

// consistent reports whether the current point satisfies the problem's
// rows and the basic variables their bounds, all within tol.
func (t *revised) consistent(p *Problem, tol float64) bool {
	for i := 0; i < t.m; i++ {
		v := t.xB[i]
		if v < -tol {
			return false
		}
		if ub := t.upper[t.basis[i]]; v > ub+tol {
			return false
		}
	}
	x := t.structuralX()
	for i, row := range p.rows {
		ax := 0.0
		for _, e := range row {
			ax += e.val * x[e.col]
		}
		switch p.rel[i] {
		case LE:
			if ax > p.b[i]+tol {
				return false
			}
		case GE:
			if ax < p.b[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(ax-p.b[i]) > tol {
				return false
			}
		}
	}
	return true
}

// refreshXB recomputes every basic value from the inverse:
// x_B = B⁻¹·(rhs − Σ_{j nonbasic at upper} A_j·u_j).
func (t *revised) refreshXB() {
	m := t.m
	r := t.y[:m] // scratch; refreshRed reloads it before use
	copy(r, t.rhs)
	for j, up := range t.atUpper {
		if !up || t.inBasis[j] {
			continue
		}
		u := t.upper[j]
		if u == 0 {
			continue
		}
		if j < t.n {
			rows, vals := t.colRows[j], t.colVals[j]
			for k, ri := range rows {
				r[ri] -= vals[k] * u
			}
		} else {
			r[t.logRow[j-t.n]] -= t.logSign[j-t.n] * u
		}
	}
	t.f.ftran(r) // dense by design: the bound-adjusted rhs is dense
	t.kstats.noteFtran(false, 0)
	for i := 0; i < m; i++ {
		s := r[i]
		if s < 0 && s > -1e-9 {
			s = 0
		}
		t.xB[i] = s
	}
	// Basic values were re-derived wholesale; the dual working set must be
	// rebuilt before its invariant can be trusted again.
	t.rowListOK = false
}

// growCols appends k fresh logical column slots (zero cost, +Inf bound,
// nonbasic at lower) to the per-column state, reusing slice capacity when
// available so repeated cut appends amortize.
func (t *revised) growCols(k int) {
	old := len(t.cost)
	nt := old + k
	growF := func(s []float64, fill float64) []float64 {
		if cap(s) < nt {
			s2 := make([]float64, len(s), nt+nt/4+16)
			copy(s2, s)
			s = s2
		}
		s = s[:nt]
		for j := old; j < nt; j++ {
			s[j] = fill
		}
		return s
	}
	growB := func(s []bool) []bool {
		if cap(s) < nt {
			s2 := make([]bool, len(s), nt+nt/4+16)
			copy(s2, s)
			s = s2
		}
		s = s[:nt]
		for j := old; j < nt; j++ {
			s[j] = false
		}
		return s
	}
	t.cost = growF(t.cost, 0)
	t.upper = growF(t.upper, math.Inf(1))
	t.curCost = growF(t.curCost, 0)
	t.red = growF(t.red, 0)
	t.alpha = growF(t.alpha, 0)
	t.atUpper = growB(t.atUpper)
	t.isArt = growB(t.isArt)
	t.inBasis = growB(t.inBasis)
	if cap(t.whereBasic) < nt {
		s2 := make([]int, len(t.whereBasic), nt+nt/4+16)
		copy(s2, t.whereBasic)
		t.whereBasic = s2
	}
	t.whereBasic = t.whereBasic[:nt]
	for j := old; j < nt; j++ {
		t.whereBasic[j] = -1
	}
}

// growRows makes room for one more row: the row-sized scratch vectors are
// extended (the factorization is rebuilt at the new dimension separately).
func (t *revised) growRows() {
	nm := t.m + 1
	growF := func(s []float64) []float64 {
		if cap(s) < nm {
			s2 := make([]float64, len(s), nm+nm/4+16)
			copy(s2, s)
			s = s2
		}
		return s[:nm]
	}
	t.w = growF(t.w)
	t.rho = growF(t.rho)
	t.y = growF(t.y)
	t.flipAcc = growF(t.flipAcc)
	t.flipSol = growF(t.flipSol)
	t.tau = growF(t.tau)
	if cap(t.inRowList) < nm {
		s2 := make([]bool, len(t.inRowList), nm+nm/4+16)
		copy(s2, t.inRowList)
		t.inRowList = s2
	}
	t.inRowList = t.inRowList[:nm]
	t.inRowList[nm-1] = false
	t.invalidateKernel()
}

// appendProblemCols incorporates structural columns added to the problem
// since the state was last solved (Problem.AddColumns). The per-column
// arrays keep structural columns first, so the whole logical block shifts
// up by k and every absolute logical column index (basis entries, per-row
// rowLogs) is remapped; logRow/logSign are indexed relative to n and need
// no rewrite. The new columns enter nonbasic at their lower bound with the
// bounds and costs the caller shaped after AddColumns; their reduced costs
// are derived from the persistent dual row at the refactorization this
// splice schedules (factorStale), so the next dual/primal pass prices them
// exactly — a new column appearing in no tight row simply keeps red = c_j,
// and one that prices attractively is entered by the primal clean-up.
// Nothing in row space moves: basic values, pricing weights and the dual
// working set stay valid; only the column-indexed pricing scratch restarts.
func (t *revised) appendProblemCols(p *Problem) {
	k := p.numVars - t.n
	if k <= 0 {
		return
	}
	oldN := t.n
	oldTotal := len(t.cost)
	t.growCols(k)
	// Shift the logical block [oldN, oldTotal) up by k, highest first so the
	// ranges may overlap. alpha is invariantly zero between pivots, so the
	// shifted region needs no copy there.
	for j := oldTotal - 1; j >= oldN; j-- {
		d := j + k
		t.cost[d] = t.cost[j]
		t.upper[d] = t.upper[j]
		t.curCost[d] = t.curCost[j]
		t.red[d] = t.red[j]
		t.atUpper[d] = t.atUpper[j]
		t.isArt[d] = t.isArt[j]
		t.inBasis[d] = t.inBasis[j]
		t.whereBasic[d] = t.whereBasic[j]
	}
	for j := oldN; j < oldN+k; j++ {
		t.cost[j] = p.c[j]
		u := math.Inf(1)
		if p.upper != nil {
			u = p.upper[j]
		}
		t.upper[j] = u
		t.curCost[j] = 0
		t.red[j] = 0
		t.atUpper[j] = false
		t.isArt[j] = false
		t.inBasis[j] = false
		t.whereBasic[j] = -1
		t.probUpper = append(t.probUpper, u)
	}
	t.colRows = append(t.colRows, make([][]int32, k)...)
	t.colVals = append(t.colVals, make([][]float64, k)...)
	for i := range t.basis {
		if t.basis[i] >= oldN {
			t.basis[i] += k
		}
	}
	for _, logs := range t.rowLogs {
		for idx := range logs {
			logs[idx] += int32(k) // every rowLogs entry is a logical column
		}
	}
	t.n = p.numVars
	// Column indices shifted: the partial-pricing candidate list and the
	// touched-column scratch may hold stale indices.
	t.candList = t.candList[:0]
	t.candRotor = 0
	t.touched = t.touched[:0]
	t.factorStale = true
}

// appendProblemRows incorporates rows added to the problem since the state
// was last solved. Each row gets a fresh slack column that enters the basis
// immediately, with its value computed from the current structural point,
// so a violated cut simply surfaces as a bound-infeasible basic slack for
// the dual simplex to repair. Appended rows are stored verbatim and the
// factorization is rebuilt once at the new dimension before the next solve
// — appends introduce no compounding transformation error.
func (t *revised) appendProblemRows(p *Problem) {
	if t.rowsBuilt == len(p.rows) {
		return
	}
	xs := t.structuralX()
	for r := t.rowsBuilt; r < len(p.rows); r++ {
		t.appendRow(p.rows[r], p.rel[r], p.b[r], xs)
	}
	t.rowsBuilt = len(p.rows)
	t.factorStale = true
}

func (t *revised) appendRow(row []entry, rel Relation, b float64, xs []float64) {
	sign := 1.0
	if rel == GE {
		sign = -1.0 // negate so the slack keeps a +1 coefficient
	}
	cols, vals := normalizeEntries(row, sign)
	i := t.m
	s := len(t.cost)
	t.growCols(1)
	t.logRow = append(t.logRow, int32(i))
	t.logSign = append(t.logSign, 1)
	if rel == EQ {
		t.upper[s] = 0
	}
	t.rowCols = append(t.rowCols, cols)
	t.rowVals = append(t.rowVals, vals)
	t.rowRun = append(t.rowRun, compressRuns(cols, vals))
	t.rowLogs = append(t.rowLogs, []int32{int32(s)})
	t.rhs = append(t.rhs, sign*b)
	for k, c := range cols {
		// Grow column slices with explicit headroom: repeated cut appends
		// touch the same columns round after round, and Go's small-slice
		// doubling would reallocate on nearly every early append.
		if len(t.colRows[c]) == cap(t.colRows[c]) {
			nc := make([]int32, len(t.colRows[c]), 2*cap(t.colRows[c])+8)
			copy(nc, t.colRows[c])
			t.colRows[c] = nc
			nv := make([]float64, len(t.colVals[c]), cap(nc))
			copy(nv, t.colVals[c])
			t.colVals[c] = nv
		}
		t.colRows[c] = append(t.colRows[c], int32(i))
		t.colVals[c] = append(t.colVals[c], vals[k])
	}
	t.growRows()
	ax := 0.0
	for k, c := range cols {
		ax += vals[k] * xs[c]
	}
	t.xB = append(t.xB, sign*b-ax)
	t.basis = append(t.basis, s)
	t.probRow = append(t.probRow, int32(i))
	t.inBasis[s] = true
	t.whereBasic[s] = i
	t.dseW = append(t.dseW, -1) // priced lazily by ensureWeights
	t.m++
}

// removeRows excises the given problem rows from the live simplex state in
// place. Legal only for rows whose slack/surplus/artificial column is
// currently basic — for a zero-cost unit column e_r to be basic its dual
// price must be zero (red = 0 − y_r), so dropping constraint row r together
// with that basis member changes neither the remaining duals nor any
// remaining basic value, and the cofactor expansion of det(B) along the
// unit column shows the reduced basis stays nonsingular. The state is
// therefore still optimal for the reduced problem; only the factorization
// must be rebuilt, which the next solve does once.
//
// A row that is strictly slack at the current optimum always qualifies: a
// nonbasic logical rests at a bound (zero, or a pinned upper of zero), so a
// positive slack value forces the logical into the basis.
func (t *revised) removeRows(drop []int) error {
	// Validate every drop before mutating anything.
	deadProb := make([]bool, len(t.probRow))
	deadRow := make([]bool, t.m)
	deadPos := make([]bool, t.m)
	deadCol := make([]bool, len(t.cost))
	for _, pr := range drop {
		if pr < 0 || pr >= len(t.probRow) {
			return fmt.Errorf("lp: RemoveRows index %d out of range [0,%d)", pr, len(t.probRow))
		}
		if deadProb[pr] {
			continue
		}
		deadProb[pr] = true
		er := t.probRow[pr]
		if er < 0 {
			continue // presolved away: nothing materialized to excise
		}
		basicLog := -1
		for _, lc := range t.rowLogs[er] {
			if t.inBasis[int(lc)] {
				basicLog = int(lc)
				break
			}
		}
		if basicLog < 0 {
			return fmt.Errorf("lp: row %d is tight at the current basis; only slack rows can be removed", pr)
		}
		deadRow[er] = true
		deadPos[t.whereBasic[basicLog]] = true
		for _, lc := range t.rowLogs[er] {
			deadCol[int(lc)] = true
		}
	}

	m := t.m
	rowMap := make([]int32, m)
	nr := 0
	for r := 0; r < m; r++ {
		if deadRow[r] {
			rowMap[r] = -1
		} else {
			rowMap[r] = int32(nr)
			nr++
		}
	}
	nCols := len(t.cost)
	colMap := make([]int32, nCols)
	for j := 0; j < t.n; j++ {
		colMap[j] = int32(j)
	}
	nc := t.n
	for j := t.n; j < nCols; j++ {
		if deadCol[j] {
			colMap[j] = -1
		} else {
			colMap[j] = int32(nc)
			nc++
		}
	}

	// Row-indexed state (logical references remapped in place).
	nr = 0
	for r := 0; r < m; r++ {
		if deadRow[r] {
			continue
		}
		logs := t.rowLogs[r]
		for k, lc := range logs {
			logs[k] = colMap[lc]
		}
		t.rowCols[nr] = t.rowCols[r]
		t.rowVals[nr] = t.rowVals[r]
		t.rowRun[nr] = t.rowRun[r]
		t.rowLogs[nr] = logs
		t.rhs[nr] = t.rhs[r]
		nr++
	}
	t.rowCols = t.rowCols[:nr]
	t.rowVals = t.rowVals[:nr]
	t.rowRun = t.rowRun[:nr]
	t.rowLogs = t.rowLogs[:nr]
	t.rhs = t.rhs[:nr]

	// Per-structural-column row lists.
	for j := 0; j < t.n; j++ {
		rows, vals := t.colRows[j], t.colVals[j]
		out := 0
		for k, r := range rows {
			if nrr := rowMap[r]; nrr >= 0 {
				rows[out], vals[out] = nrr, vals[k]
				out++
			}
		}
		t.colRows[j] = rows[:out]
		t.colVals[j] = vals[:out]
	}

	// Logical-column state and every per-column array.
	nc = t.n
	for j := t.n; j < nCols; j++ {
		if deadCol[j] {
			continue
		}
		t.logRow[nc-t.n] = rowMap[t.logRow[j-t.n]]
		t.logSign[nc-t.n] = t.logSign[j-t.n]
		t.cost[nc] = t.cost[j]
		t.upper[nc] = t.upper[j]
		t.curCost[nc] = t.curCost[j]
		t.red[nc] = t.red[j]
		t.alpha[nc] = t.alpha[j]
		t.atUpper[nc] = t.atUpper[j]
		t.isArt[nc] = t.isArt[j]
		t.inBasis[nc] = t.inBasis[j]
		nc++
	}
	t.logRow = t.logRow[:nc-t.n]
	t.logSign = t.logSign[:nc-t.n]
	t.cost = t.cost[:nc]
	t.upper = t.upper[:nc]
	t.curCost = t.curCost[:nc]
	t.red = t.red[:nc]
	t.alpha = t.alpha[:nc]
	t.atUpper = t.atUpper[:nc]
	t.isArt = t.isArt[:nc]
	t.inBasis = t.inBasis[:nc]

	// Basis positions: drop the removed rows' basic logicals, keep every
	// surviving basic value bit-for-bit. Pricing weights compact the same
	// way and stay exact: with the dead position holding a unit column,
	// the inverse is block triangular and each surviving row of the
	// reduced inverse is the old row restricted to surviving columns,
	// whose extra entries were all zero — the norms do not change.
	np := 0
	for p := 0; p < m; p++ {
		if deadPos[p] {
			continue
		}
		t.basis[np] = int(colMap[t.basis[p]])
		t.xB[np] = t.xB[p]
		t.dseW[np] = t.dseW[p]
		np++
	}
	t.basis = t.basis[:np]
	t.xB = t.xB[:np]
	t.dseW = t.dseW[:np]
	// Logical column indices shifted; the candidate list may hold stale
	// ones, so partial pricing restarts from an empty list. Basis positions
	// shifted too, so the dual working set and the kernel scratch supports
	// restart likewise.
	t.candList = t.candList[:0]
	t.candRotor = 0
	t.rowList = t.rowList[:0]
	for i := range t.inRowList {
		t.inRowList[i] = false
	}
	t.invalidateKernel()
	t.m = np
	t.whereBasic = t.whereBasic[:nc]
	for j := range t.whereBasic {
		t.whereBasic[j] = -1
	}
	for p, c := range t.basis {
		t.whereBasic[c] = p
	}

	// Problem-row mapping.
	npr := 0
	for pr := range t.probRow {
		if deadProb[pr] {
			continue
		}
		er := t.probRow[pr]
		if er >= 0 {
			er = rowMap[er]
		}
		t.probRow[npr] = er
		npr++
	}
	t.probRow = t.probRow[:npr]
	t.rowsBuilt = npr
	t.factorStale = true
	return nil
}

// newCrashRevised builds a fresh engine state for p whose starting basis is
// seeded ("crashed") from the surviving columns of a failed warm state:
// every structural column basic in the warm basis is installed as the basic
// column of its problem row's fresh engine row, warm rows resting on one of
// their logicals keep a non-artificial logical basic (surplus/slack role is
// preserved across the differing materializations — a warm-appended GE cut
// carries one slack on the negated row, the fresh build a surplus on the
// original, and both measure a·x − b), and nonbasic structural columns
// inherit their bound status. The fresh state shares none of the warm
// state's numerical history — the basis is factorized from verbatim rows —
// so it escapes whatever drift or budget exhaustion broke the warm solve
// while skipping the all-logical two-phase restart that would re-derive a
// near-identical basis one pivot at a time. Returns nil when the seeded
// basis is numerically singular; the caller then falls back to the plain
// two-phase cold solve.
func newCrashRevised(p *Problem, warm *revised) *revised {
	if warm == nil || warm.n != p.numVars || warm.rowsBuilt != len(p.rows) {
		return nil
	}
	t := newRevised(p)
	// Warm engine row -> problem row (warm rows can be a permuted subset
	// after earlier appends and removals; problem-row indices are the
	// shared coordinate system).
	rowOf := make([]int32, warm.m)
	for i := range rowOf {
		rowOf[i] = -1
	}
	for pr, er := range warm.probRow {
		if er >= 0 {
			rowOf[er] = int32(pr)
		}
	}
	for i := 0; i < warm.m; i++ {
		pr := rowOf[i]
		if pr < 0 {
			continue
		}
		er := int(t.probRow[pr])
		if er < 0 {
			continue // presolved away in the fresh build
		}
		wc := warm.basis[i]
		nc := wc
		if wc >= warm.n {
			// The warm row rested on one of its logicals; adopt the fresh
			// row's non-artificial logical (the artificial only for EQ
			// rows, whose sole logical it is).
			logs := t.rowLogs[er]
			nc = int(logs[0])
			for _, lc := range logs {
				if !t.isArt[lc] {
					nc = int(lc)
					break
				}
			}
		}
		old := t.basis[er]
		if nc == old || t.inBasis[nc] {
			continue
		}
		t.inBasis[old] = false
		t.whereBasic[old] = -1
		t.atUpper[old] = false
		t.basis[er] = nc
		t.inBasis[nc] = true
		t.whereBasic[nc] = er
	}
	for j := 0; j < t.n; j++ {
		if !t.inBasis[j] && !math.IsInf(t.upper[j], 1) {
			t.atUpper[j] = warm.atUpper[j] && !warm.inBasis[j]
		}
	}
	if !t.factorizeNow() {
		return nil
	}
	// A crash basis is not all-logical, so the steepest-edge weight set
	// cannot start exact; devex carries the pricing for this state.
	if t.rule == PricingSteepestEdge {
		t.dseStale = true
	}
	return t
}

// crashPrep readies a crash state for the dual simplex: with the phase-2
// reduced costs freshly derived, every nonbasic column with a finite upper
// bound is rested on its dual-feasible bound (red < 0 ⟹ upper, red > 0 ⟹
// lower — bound flips are free in bounded simplex), and the basic values
// are re-derived against the flipped bound states. Columns with infinite
// upper bounds and negative reduced costs remain dual infeasible; the
// primal clean-up pass after the dual repair absorbs them, and the verify
// layer guards the result like every other solve.
func (t *revised) crashPrep() {
	t.setPhaseCost(false)
	t.refreshRed()
	if t.broken {
		return
	}
	for j := range t.red {
		if t.inBasis[j] || t.isArt[j] || math.IsInf(t.upper[j], 1) {
			continue
		}
		if t.red[j] < -eps {
			t.atUpper[j] = true
		} else if t.red[j] > eps {
			t.atUpper[j] = false
		}
	}
	t.refreshXB()
}

// structuralX extracts the structural variable values from the basis and
// bound states.
func (t *revised) structuralX() []float64 {
	x := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		if t.atUpper[j] && !t.inBasis[j] {
			x[j] = t.upper[j]
		}
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			x[t.basis[i]] = t.xB[i]
		}
	}
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	return x
}
