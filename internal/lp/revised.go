package lp

import (
	"math"
	"slices"
	"sort"
)

// revised is the sparse revised-simplex working state of the float engine.
//
// Unlike the dense tableau it replaced, the constraint matrix is never
// transformed: rows are stored once in sign-normalized compressed sparse
// form (plus a per-column view for FTRAN), and all pivoting state lives in
// an explicit basis inverse binv updated in place at each basis change.
// Logical columns (slacks, surpluses, artificials) are signed unit vectors
// and are never materialized. As in the dense engine, xB holds the actual
// value of each row's basic variable — not a transformed right-hand side —
// which keeps the bookkeeping correct when nonbasic variables rest at
// nonzero upper bounds.
//
// Per pivot the engine performs:
//
//   - an FTRAN (w = B⁻¹·A_q) against the entering column's sparse entries,
//     O(m·nnz(A_q));
//   - a pivot-row sweep alpha = rho·A over the sparse rows touching the
//     leaving row's inverse row rho, accumulating into a touched-column
//     list, O(Σ nnz of touched rows) — this is what prices cuts without
//     ever scanning a dense row of length n;
//   - a rank-one update of binv and the persistent reduced-cost row,
//     O(m²) + O(|touched|), allocation-free in steady state.
//
// Numerical drift is controlled exactly as documented in the package
// comment: the reduced-cost row is refreshed periodically and before any
// optimality claim, and a conclusion of dual infeasibility is only accepted
// after a full refactorization (binv rebuilt from the basis columns by
// Gauss-Jordan elimination) plus a basic-value resync confirms it.
type revised struct {
	n         int // structural variables
	m         int // materialized rows
	rowsBuilt int // Problem rows incorporated (including presolved-away ones)

	// Constraint matrix, sign-normalized per row (rows with negative rhs
	// are flipped at build time; warm-appended GE rows are negated so their
	// slack keeps a +1 coefficient).
	rowCols [][]int32
	rowVals [][]float64
	rowLogs [][]int32 // logical columns belonging to each row (1 or 2)
	rhs     []float64 // normalized right-hand sides
	colRows [][]int32 // per structural column: rows with a nonzero entry
	colVals [][]float64

	logRow  []int32   // per logical column (index col-n): owning row
	logSign []float64 // +1 slack/artificial, -1 surplus

	binv  [][]float64 // dense m×m basis inverse, row-major
	basis []int       // basic column of each row
	xB    []float64   // value of the basic variable of each row

	// Per-column state, structural columns first, then logical columns in
	// materialization order.
	cost       []float64
	upper      []float64
	atUpper    []bool
	isArt      []bool
	inBasis    []bool
	whereBasic []int // basis row of the column, -1 when nonbasic

	probUpper []float64 // the Problem's structural bounds as of construction
	//                     (upper may be tighter after singleton presolve)

	curCost []float64 // cost vector of the current phase
	red     []float64 // persistent reduced-cost row for curCost

	// Scratch reused across pivots so steady-state pivoting is
	// allocation-free.
	w       []float64 // FTRAN result, length m
	rho     []float64 // pivot row of binv, length m
	y       []float64 // dual scratch for refreshes, length m
	flipAcc []float64 // row-space accumulator for batched bound flips, length m
	alpha   []float64  // pivot row of the tableau, length ncols, kept zeroed
	touched []int32    // columns with nonzero alpha this pivot
	cands   []dualCand // dual ratio-test candidates, reused across pivots

	pivots       int // lifetime pivot count
	pivotsAtCall int // pivot count when the current ResolveFrom began
	sinceRefresh int
}

// newRevised builds the initial state. Singleton "a*x_j <= b" rows with
// a > 0, b >= 0 are presolved into the variable's upper bound (and vacuous
// singleton <= rows dropped) rather than materialized, so box constraints
// cost nothing regardless of how the caller expressed them.
func newRevised(p *Problem) *revised {
	m, n := len(p.rows), p.numVars
	bound := make([]float64, n)
	if p.upper != nil {
		copy(bound, p.upper)
	} else {
		for j := range bound {
			bound[j] = math.Inf(1)
		}
	}
	type rowKind struct {
		rel  Relation
		flip bool
		skip bool
	}
	kinds := make([]rowKind, m)
	nRows, nLog := 0, 0
	for i := range p.rows {
		rel, b := p.rel[i], p.b[i]
		if rel == LE && b >= 0 {
			if col, coef, single := singleton(p.rows[i]); single {
				if coef > 0 {
					if u := b / coef; u < bound[col] {
						bound[col] = u
					}
				}
				// coef <= 0 (or empty row): vacuous given x >= 0, b >= 0.
				kinds[i].skip = true
				continue
			}
		}
		flip := b < 0
		if flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel: rel, flip: flip}
		nRows++
		switch rel {
		case LE, EQ:
			nLog++
		case GE:
			nLog += 2 // surplus + artificial
		}
	}
	nTotal := n + nLog
	colCap := nTotal + nTotal/4 + 16 // headroom for appended cut columns
	rowCap := nRows + nRows/4 + 16
	t := &revised{
		n:          n,
		rowsBuilt:  m,
		rowCols:    make([][]int32, 0, rowCap),
		rowVals:    make([][]float64, 0, rowCap),
		rowLogs:    make([][]int32, 0, rowCap),
		rhs:        make([]float64, 0, rowCap),
		colRows:    make([][]int32, n),
		colVals:    make([][]float64, n),
		logRow:     make([]int32, 0, colCap-n),
		logSign:    make([]float64, 0, colCap-n),
		binv:       make([][]float64, 0, rowCap),
		basis:      make([]int, 0, rowCap),
		xB:         make([]float64, 0, rowCap),
		cost:       make([]float64, nTotal, colCap),
		upper:      make([]float64, nTotal, colCap),
		atUpper:    make([]bool, nTotal, colCap),
		isArt:      make([]bool, nTotal, colCap),
		inBasis:    make([]bool, nTotal, colCap),
		whereBasic: make([]int, nTotal, colCap),
		curCost:    make([]float64, nTotal, colCap),
		red:        make([]float64, nTotal, colCap),
		alpha:      make([]float64, nTotal, colCap),
		w:          make([]float64, nRows, rowCap),
		rho:        make([]float64, nRows, rowCap),
		y:          make([]float64, nRows, rowCap),
		flipAcc:    make([]float64, nRows, rowCap),
		touched:    make([]int32, 0, colCap),
	}
	copy(t.cost, p.c)
	copy(t.upper, bound)
	for j := n; j < nTotal; j++ {
		t.upper[j] = math.Inf(1)
	}
	for j := range t.whereBasic {
		t.whereBasic[j] = -1
	}
	t.probUpper = make([]float64, n)
	if p.upper != nil {
		copy(t.probUpper, p.upper)
	} else {
		for j := range t.probUpper {
			t.probUpper[j] = math.Inf(1)
		}
	}
	logCol := n
	for i := range p.rows {
		if kinds[i].skip {
			continue
		}
		sign := 1.0
		if kinds[i].flip {
			sign = -1.0
		}
		cols, vals := normalizeEntries(p.rows[i], sign)
		r := t.m
		for k, c := range cols {
			t.colRows[c] = append(t.colRows[c], int32(r))
			t.colVals[c] = append(t.colVals[c], vals[k])
		}
		t.rowCols = append(t.rowCols, cols)
		t.rowVals = append(t.rowVals, vals)
		t.rhs = append(t.rhs, sign*p.b[i])
		var logs []int32
		var bas int
		addLog := func(s float64, art bool) int {
			c := logCol
			logCol++
			t.logRow = append(t.logRow, int32(r))
			t.logSign = append(t.logSign, s)
			t.isArt[c] = art
			logs = append(logs, int32(c))
			return c
		}
		switch kinds[i].rel {
		case LE:
			bas = addLog(1, false)
		case GE:
			addLog(-1, false)
			bas = addLog(1, true)
		case EQ:
			bas = addLog(1, true)
		}
		t.rowLogs = append(t.rowLogs, logs)
		row := make([]float64, r+1, rowCap)
		row[r] = 1
		// binv rows must all have length m; grow previous rows below once m
		// is known, so build identity incrementally instead.
		t.binv = append(t.binv, row)
		t.basis = append(t.basis, bas)
		t.xB = append(t.xB, sign*p.b[i])
		t.inBasis[bas] = true
		t.whereBasic[bas] = r
		t.m++
	}
	// Square up the identity: every binv row gets length m.
	for i := range t.binv {
		row := t.binv[i]
		for len(row) < t.m {
			row = append(row, 0)
		}
		t.binv[i] = row
	}
	return t
}

// dualCand is one eligible entering column of the bounded dual ratio test.
type dualCand struct {
	col   int32
	ratio float64
}

// pivTol is the minimum magnitude accepted for a dual pivot element.
// Pivoting on elements near the eps noise floor multiplies the basis
// inverse by huge factors and destroys it within a few iterations; the
// verification loop in ResolveFrom would catch the damage, but refusing
// such pivots keeps the inverse healthy in the first place.
const pivTol = 1e-7

// singleton reports whether the row references a single variable (after
// summing duplicate columns and ignoring zero coefficients); col is -1 for
// an empty row.
func singleton(row []entry) (col int, coef float64, ok bool) {
	col = -1
	for _, e := range row {
		if e.val == 0 {
			continue
		}
		if col >= 0 && e.col != col {
			return 0, 0, false
		}
		col = e.col
		coef += e.val
	}
	return col, coef, true
}

// normalizeEntries returns the row's structural entries scaled by sign, with
// duplicate columns summed and zero coefficients dropped, sorted by column.
func normalizeEntries(row []entry, sign float64) ([]int32, []float64) {
	cols := make([]int32, 0, len(row))
	vals := make([]float64, 0, len(row))
	sorted := true
	for _, e := range row {
		if e.val == 0 {
			continue
		}
		if len(cols) > 0 && int32(e.col) <= cols[len(cols)-1] {
			sorted = false
		}
		cols = append(cols, int32(e.col))
		vals = append(vals, sign*e.val)
	}
	if !sorted && len(cols) > 1 {
		order := make([]int, len(cols))
		for k := range order {
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return cols[order[a]] < cols[order[b]] })
		oc := make([]int32, 0, len(cols))
		ov := make([]float64, 0, len(vals))
		for _, k := range order {
			if len(oc) > 0 && oc[len(oc)-1] == cols[k] {
				ov[len(ov)-1] += vals[k]
			} else {
				oc = append(oc, cols[k])
				ov = append(ov, vals[k])
			}
		}
		cols, vals = oc, ov
	}
	// Drop entries that cancelled to zero.
	out := 0
	for k := range cols {
		if vals[k] != 0 {
			cols[out], vals[out] = cols[k], vals[k]
			out++
		}
	}
	return cols[:out], vals[:out]
}

// setPhaseCost loads the working cost vector: artificial costs for phase 1,
// the problem objective for phase 2.
func (t *revised) setPhaseCost(phase1 bool) {
	nTotal := len(t.cost)
	t.curCost = t.curCost[:nTotal]
	if phase1 {
		for j := range t.curCost {
			if t.isArt[j] {
				t.curCost[j] = 1
			} else {
				t.curCost[j] = 0
			}
		}
	} else {
		copy(t.curCost, t.cost)
	}
}

// refreshRed recomputes the basic values and the reduced-cost row from the
// basis inverse: xB = B⁻¹(b − N·x_N), then the duals y = c_B·B⁻¹, then
// red_j = c_j - y·A_j via one sweep over the sparse rows. Re-deriving xB
// together with red keeps the incremental per-pivot updates from drifting
// apart between refreshes.
func (t *revised) refreshRed() {
	t.refreshXB()
	nTotal := len(t.curCost)
	t.red = t.red[:nTotal]
	copy(t.red, t.curCost)
	y := t.y[:t.m]
	for k := range y {
		y[k] = 0
	}
	for i := 0; i < t.m; i++ {
		cb := t.curCost[t.basis[i]]
		if cb == 0 {
			continue
		}
		bi := t.binv[i]
		for k := 0; k < t.m; k++ {
			y[k] += cb * bi[k]
		}
	}
	for i := 0; i < t.m; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		cols, vals := t.rowCols[i], t.rowVals[i]
		red := t.red
		for k, c := range cols {
			red[c] -= yi * vals[k]
		}
		for _, lc := range t.rowLogs[i] {
			red[lc] -= yi * t.logSign[lc-int32(t.n)]
		}
	}
	t.sinceRefresh = 0
}

// ftran computes w = B⁻¹·A_col into t.w using the column's sparse entries.
func (t *revised) ftran(col int) {
	w := t.w[:t.m]
	if col < t.n {
		rows, vals := t.colRows[col], t.colVals[col]
		for i := 0; i < t.m; i++ {
			bi := t.binv[i]
			var s float64
			for k, r := range rows {
				s += bi[r] * vals[k]
			}
			w[i] = s
		}
		return
	}
	r, s := t.logRow[col-t.n], t.logSign[col-t.n]
	for i := 0; i < t.m; i++ {
		w[i] = t.binv[i][r] * s
	}
}

// pivotRowAlpha accumulates alpha_j = rho·A_j for every column with a
// nonzero result into t.alpha, recording them in t.touched. The sweep walks
// only rows with a nonzero rho entry, so its cost is the sparse support of
// the pivot row, never n. Callers must drain t.alpha back to zero (the
// reduced-cost update in applyPivot does, as does clearAlpha).
func (t *revised) pivotRowAlpha(rho []float64) {
	t.touched = t.touched[:0]
	alpha := t.alpha
	for i := 0; i < t.m; i++ {
		ri := rho[i]
		if ri == 0 {
			continue
		}
		cols, vals := t.rowCols[i], t.rowVals[i]
		for k, c := range cols {
			if alpha[c] == 0 {
				t.touched = append(t.touched, c)
			}
			alpha[c] += ri * vals[k]
		}
		for _, lc := range t.rowLogs[i] {
			if alpha[lc] == 0 {
				t.touched = append(t.touched, lc)
			}
			alpha[lc] += ri * t.logSign[lc-int32(t.n)]
		}
	}
}

// clearAlpha zeroes the accumulator without applying it.
func (t *revised) clearAlpha() {
	for _, c := range t.touched {
		t.alpha[c] = 0
	}
	t.touched = t.touched[:0]
}

// applyPivot performs the basis change on (row, col): the entering column
// moves by delta in direction dir (+1 from its lower bound, -1 from its
// upper bound), every basic value is stepped, binv receives its rank-one
// update, the persistent reduced-cost row is updated from the pre-pivot
// pivot row, and the leaving variable settles at its upper bound when
// toUpper is true, else at zero.
//
// t.w must hold the FTRAN of the entering column. When alphaReady is true
// the caller has already filled t.alpha/t.touched from binv[row] (the dual
// path computes it for the ratio test); otherwise applyPivot computes it.
// Either way the accumulator is drained before returning.
func (t *revised) applyPivot(row, col int, dir, delta float64, toUpper bool, alphaReady bool) {
	w := t.w[:t.m]
	if delta != 0 {
		for i := range w {
			if i == row {
				continue
			}
			if wi := w[i]; wi != 0 {
				t.xB[i] -= dir * wi * delta
			}
		}
	}
	enterVal := dir * delta
	if t.atUpper[col] {
		enterVal += t.upper[col]
	}

	if !alphaReady {
		copy(t.rho[:t.m], t.binv[row])
		t.pivotRowAlpha(t.rho[:t.m])
	}
	if f := t.red[col]; f != 0 {
		scale := f / w[row]
		red := t.red
		for _, c := range t.touched {
			a := t.alpha[c]
			t.alpha[c] = 0
			red[c] -= scale * a
		}
		t.touched = t.touched[:0]
		red[col] = 0
	} else {
		t.clearAlpha()
	}

	// Rank-one update of the inverse.
	pr := t.binv[row]
	inv := 1 / w[row]
	for k := 0; k < t.m; k++ {
		pr[k] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		bi := t.binv[i]
		for k := 0; k < t.m; k++ {
			bi[k] -= f * pr[k]
		}
	}

	leave := t.basis[row]
	t.inBasis[leave] = false
	t.whereBasic[leave] = -1
	t.atUpper[leave] = toUpper
	t.basis[row] = col
	t.inBasis[col] = true
	t.whereBasic[col] = row
	t.atUpper[col] = false
	if enterVal < 0 && enterVal > -1e-7 {
		enterVal = 0
	}
	t.xB[row] = enterVal
	t.pivots++
	t.sinceRefresh++
}

// accumulateFlip records a bound flip of column col (moving by u in
// direction dir) in the row-space accumulator; applyFlips folds every
// recorded flip into the basic values with a single B⁻¹ application.
func (t *revised) accumulateFlip(col int, dir, u float64) {
	d := dir * u
	if col < t.n {
		rows, vals := t.colRows[col], t.colVals[col]
		for k, r := range rows {
			t.flipAcc[r] += d * vals[k]
		}
		return
	}
	t.flipAcc[t.logRow[col-t.n]] += d * t.logSign[col-t.n]
}

// applyFlips applies xB -= B⁻¹·flipAcc and clears the accumulator.
func (t *revised) applyFlips() {
	acc := t.flipAcc[:t.m]
	for i := 0; i < t.m; i++ {
		bi := t.binv[i]
		var s float64
		for k, a := range acc {
			if a != 0 {
				s += bi[k] * a
			}
		}
		t.xB[i] -= s
	}
	for k := range acc {
		acc[k] = 0
	}
}

// boundFlip moves nonbasic column col across its (finite) range to the
// opposite bound without a basis change. t.w must hold the column's FTRAN.
func (t *revised) boundFlip(col int, dir float64) {
	if u := t.upper[col]; u > 0 {
		w := t.w[:t.m]
		for i := range w {
			if wi := w[i]; wi != 0 {
				t.xB[i] -= dir * wi * u
			}
		}
	}
	t.atUpper[col] = !t.atUpper[col]
}

// primalIterate runs bounded-variable primal simplex iterations with the
// current phase's cost vector until optimal, unbounded, or the pivot budget
// is exhausted. Outside phase 1, artificial columns may not enter.
func (t *revised) primalIterate(phase1 bool, budget *int) Status {
	t.setPhaseCost(phase1)
	t.refreshRed()
	blandFrom := *budget / 2 // switch to Bland's rule for the second half
	for iter := 0; ; iter++ {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		if t.sinceRefresh >= refreshEvery {
			t.refreshRed()
		}
		red := t.red
		col := -1
		if iter < blandFrom {
			best := eps
			for j := range red {
				if t.inBasis[j] || (!phase1 && t.isArt[j]) {
					continue
				}
				score := -red[j]
				if t.atUpper[j] {
					score = red[j]
				}
				if score > best {
					best = score
					col = j
				}
			}
		} else {
			for j := range red {
				if t.inBasis[j] || (!phase1 && t.isArt[j]) {
					continue
				}
				if t.atUpper[j] {
					if red[j] > eps {
						col = j
						break
					}
				} else if red[j] < -eps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			// Never certify optimality against a stale reduced-cost row:
			// refresh and re-price once if any pivots happened since the
			// last full recompute (refreshRed zeroes sinceRefresh, so this
			// retries at most once per pivot).
			if t.sinceRefresh > 0 {
				t.refreshRed()
				continue
			}
			return Optimal
		}
		dir := 1.0
		if t.atUpper[col] {
			dir = -1.0
		}
		t.ftran(col)
		w := t.w[:t.m]
		// Ratio test over basic bounds, capped by the entering variable's
		// own range (a bound flip).
		row := -1
		toUpper := false
		bestRatio := t.upper[col]
		for i := range w {
			wi := dir * w[i]
			if wi > eps {
				ratio := t.xB[i] / wi
				if ratio < 0 {
					ratio = 0
				}
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row]) {
					row, bestRatio, toUpper = i, ratio, false
				}
			} else if wi < -eps {
				ub := t.upper[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ratio := (ub - t.xB[i]) / -wi
				if ratio < 0 {
					ratio = 0
				}
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row]) {
					row, bestRatio, toUpper = i, ratio, true
				}
			}
		}
		if row < 0 {
			if math.IsInf(bestRatio, 1) {
				return Unbounded
			}
			t.boundFlip(col, dir)
			continue
		}
		t.applyPivot(row, col, dir, bestRatio, toUpper, false)
	}
}

// dualIterate restores primal feasibility (basic values pushed outside
// their bounds by newly appended rows) while maintaining dual feasibility,
// using the bounded-variable dual simplex. It assumes the state was optimal
// before the rows were appended. A pivot may land the entering variable
// beyond its own finite bound; that surfaces as a fresh infeasibility
// repaired by a later iteration. Like the primal loop, it falls back from
// most-infeasible-row selection to lowest-index selection for the second
// half of the pivot budget as an anti-cycling safeguard.
//
// A conclusion of Infeasible is never accepted from drifted state: the
// engine refactorizes the basis inverse, resyncs basic values and reduced
// costs, and re-tries once before reporting it.
func (t *revised) dualIterate(budget *int) Status {
	t.setPhaseCost(false)
	t.refreshRed()
	blandFrom := *budget / 2
	resynced := false
	for iter := 0; ; iter++ {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		if t.sinceRefresh >= refreshEvery {
			t.refreshRed()
		}
		// Leaving: most infeasible basic variable (lowest-index infeasible
		// once in the Bland regime).
		row := -1
		worst := 1e-7
		above := false
		for i := 0; i < t.m; i++ {
			v := t.xB[i]
			if -v > worst {
				worst, row, above = -v, i, false
				if iter >= blandFrom {
					break
				}
			}
			if ub := t.upper[t.basis[i]]; !math.IsInf(ub, 1) && v-ub > worst {
				worst, row, above = v-ub, i, true
				if iter >= blandFrom {
					break
				}
			}
		}
		if row < 0 {
			return Optimal
		}
		sign := 1.0
		if above {
			sign = -1.0
		}
		copy(t.rho[:t.m], t.binv[row])
		t.pivotRowAlpha(t.rho[:t.m])
		// Entering: bounded dual ratio test with bound flips. Candidates
		// are visited in increasing dual-ratio order (ties by column index,
		// for determinism and Bland-style safety); a candidate whose own
		// finite range cannot absorb the remaining violation is flipped
		// across its bounds — no basis change, its dual price has crossed
		// its ratio so the opposite bound is the dual-feasible one — and
		// the first candidate that can absorb the rest becomes the pivot.
		// Without the flips, an entering variable overrunning its bound
		// lands infeasible, leaves again next iteration, and the pair
		// ping-pongs for the rest of the budget on degenerate covering
		// masters.
		red := t.red
		cands := t.cands[:0]
		for _, j32 := range t.touched {
			j := int(j32)
			if t.inBasis[j] || t.isArt[j] {
				continue
			}
			a := sign * t.alpha[j]
			var ratio float64
			if t.atUpper[j] {
				if a <= pivTol {
					continue
				}
				ratio = -red[j] / a
			} else {
				if a >= -pivTol {
					continue
				}
				ratio = red[j] / -a
			}
			if ratio < 0 {
				ratio = 0
			}
			cands = append(cands, dualCand{col: int32(j), ratio: ratio})
		}
		t.cands = cands
		slices.SortFunc(cands, func(a, b dualCand) int {
			switch {
			case a.ratio < b.ratio:
				return -1
			case a.ratio > b.ratio:
				return 1
			default:
				return int(a.col) - int(b.col)
			}
		})
		target := 0.0
		if above {
			target = t.upper[t.basis[row]]
		}
		col := -1
		var colDir float64
		flips := 0
		xrow := t.xB[row] // tracked analytically across flips via alpha
		for _, cd := range cands {
			j := int(cd.col)
			// Re-check eligibility against live bound state: t.touched can
			// list a column twice (its alpha cancelled to zero mid-sweep and
			// was re-added), and a candidate flipped earlier in this walk
			// must not be processed again — its reversed direction would
			// produce a degenerate pivot that snaps the still-violated
			// leaving variable to its bound without the compensating step.
			a := sign * t.alpha[j]
			var dir float64
			if t.atUpper[j] {
				if a <= pivTol {
					continue
				}
				dir = -1.0
			} else {
				if a >= -pivTol {
					continue
				}
				dir = 1.0
			}
			// Step the entering variable would need for a full repair; its
			// alpha is unchanged by earlier flips, only xB[row] moves.
			need := (xrow - target) / (dir * t.alpha[j])
			if u := t.upper[j]; u > 0 && !math.IsInf(u, 1) && need > u {
				// Flip: record the bound change and its row-space effect;
				// the combined basic-value update is applied once after the
				// walk, so a walk of k flips costs O(Σ nnz(A_j)) + one
				// O(m²) pass instead of k FTRANs.
				t.accumulateFlip(j, dir, u)
				t.atUpper[j] = !t.atUpper[j]
				xrow -= dir * u * t.alpha[j]
				flips++
				continue
			}
			col, colDir = j, dir
			break
		}
		if flips > 0 {
			t.applyFlips()
		}
		if col < 0 {
			t.clearAlpha()
			// Rebuild the inverse and resync before believing drifted state;
			// the retry re-enters the loop with clean numbers.
			if !resynced && t.resync() {
				resynced = true
				continue
			}
			return Infeasible
		}
		delta := (t.xB[row] - target) / (colDir * t.alpha[col])
		if delta < 0 {
			delta = 0
		}
		t.ftran(col)
		t.applyPivot(row, col, colDir, delta, above, true)
	}
}

// runTwoPhase executes the cold two-phase solve.
func (t *revised) runTwoPhase(budget *int) Status {
	hasArt := false
	for j := range t.isArt {
		if t.isArt[j] {
			hasArt = true
			break
		}
	}
	if hasArt {
		st := t.primalIterate(true, budget)
		if st != Optimal {
			return st
		}
		// Infeasible if any artificial remains basic at positive value.
		var artSum float64
		for i := 0; i < t.m; i++ {
			if t.isArt[t.basis[i]] {
				artSum += t.xB[i]
			}
		}
		if artSum > 1e-7 {
			return Infeasible
		}
		t.driveOutArtificials()
	}
	return t.primalIterate(false, budget)
}

// driveOutArtificials removes zero-valued artificials from the basis after
// phase 1 via degenerate swaps (the point does not move: the entering
// column keeps its current bound value). A row with no eligible entering
// column is linearly dependent on the others; its artificial stays basic
// with its bound pinned to [0,0], which keeps the basis square while
// enforcing the redundant constraint exactly.
func (t *revised) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if !t.isArt[t.basis[i]] {
			continue
		}
		copy(t.rho[:t.m], t.binv[i])
		t.pivotRowAlpha(t.rho[:t.m])
		slices.Sort(t.touched)
		col := -1
		for _, j32 := range t.touched {
			j := int(j32)
			if t.isArt[j] || t.inBasis[j] {
				continue
			}
			if a := t.alpha[j]; a > eps || a < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			t.clearAlpha()
			t.upper[t.basis[i]] = 0 // redundant row
			continue
		}
		t.ftran(col)
		t.applyPivot(i, col, 1, 0, false, true)
	}
}

// resync rebuilds binv from the basis columns by Gauss-Jordan elimination
// with partial pivoting, then recomputes every basic value and the
// reduced-cost row from the fresh inverse. It reports false when the basis
// matrix is numerically singular (the caller then has to trust the drifted
// state). It allocates; it runs only on the rare
// about-to-declare-infeasible path, never per pivot.
func (t *revised) resync() bool {
	m := t.m
	// Dense B: column k is the constraint column of basis[k].
	b := make([][]float64, m)
	inv := make([][]float64, m)
	for i := range b {
		b[i] = make([]float64, m)
		inv[i] = make([]float64, m)
		inv[i][i] = 1
	}
	for k := 0; k < m; k++ {
		col := t.basis[k]
		if col < t.n {
			rows, vals := t.colRows[col], t.colVals[col]
			for q, r := range rows {
				b[r][k] = vals[q]
			}
		} else {
			b[t.logRow[col-t.n]][k] = t.logSign[col-t.n]
		}
	}
	for k := 0; k < m; k++ {
		piv, best := -1, 1e-11
		for i := k; i < m; i++ {
			if a := math.Abs(b[i][k]); a > best {
				piv, best = i, a
			}
		}
		if piv < 0 {
			return false
		}
		b[k], b[piv] = b[piv], b[k]
		inv[k], inv[piv] = inv[piv], inv[k]
		f := 1 / b[k][k]
		for j := 0; j < m; j++ {
			b[k][j] *= f
			inv[k][j] *= f
		}
		for i := 0; i < m; i++ {
			if i == k {
				continue
			}
			g := b[i][k]
			if g == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				b[i][j] -= g * b[k][j]
				inv[i][j] -= g * inv[k][j]
			}
		}
	}
	// inv now maps row space to basis coordinates: B·X = I row-wise, i.e.
	// X = B⁻¹ — exactly the shape binv stores (row i of binv is the i-th
	// basis coordinate functional).
	for i := 0; i < m; i++ {
		copy(t.binv[i][:m], inv[i])
	}
	t.refreshRed() // also re-derives xB from the fresh inverse
	return true
}

// verifyOptimal confirms a claimed optimum against the problem data itself:
// the structural point must satisfy every constraint row of p within an
// absolute 1e-6 and every basic value its bounds. The check is ground
// truth — it reads the caller's rows, not any engine state derived from
// the (possibly drifted) inverse. On violation the engine refactorizes the
// basis, resyncs, and re-optimizes, a bounded number of times; persistent
// failure is reported as IterLimit so no caller ever consumes an
// infeasible "optimum" (the warm path then falls back to a cold solve).
func (t *revised) verifyOptimal(p *Problem, budget *int) Status {
	for tries := 0; ; tries++ {
		if t.consistent(p, 1e-6) {
			return Optimal
		}
		if tries == 2 || !t.resync() {
			return IterLimit
		}
		st := t.dualIterate(budget)
		if st == Optimal {
			st = t.primalIterate(false, budget)
		}
		if st != Optimal {
			return st
		}
	}
}

// consistent reports whether the current point satisfies the problem's
// rows and the basic variables their bounds, all within tol.
func (t *revised) consistent(p *Problem, tol float64) bool {
	for i := 0; i < t.m; i++ {
		v := t.xB[i]
		if v < -tol {
			return false
		}
		if ub := t.upper[t.basis[i]]; v > ub+tol {
			return false
		}
	}
	x := t.structuralX()
	for i, row := range p.rows {
		ax := 0.0
		for _, e := range row {
			ax += e.val * x[e.col]
		}
		switch p.rel[i] {
		case LE:
			if ax > p.b[i]+tol {
				return false
			}
		case GE:
			if ax < p.b[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(ax-p.b[i]) > tol {
				return false
			}
		}
	}
	return true
}

// refreshXB recomputes every basic value from the inverse:
// x_B = B⁻¹·(rhs − Σ_{j nonbasic at upper} A_j·u_j).
func (t *revised) refreshXB() {
	m := t.m
	r := t.y[:m] // scratch; refreshRed reloads it before use
	copy(r, t.rhs)
	for j, up := range t.atUpper {
		if !up || t.inBasis[j] {
			continue
		}
		u := t.upper[j]
		if u == 0 {
			continue
		}
		if j < t.n {
			rows, vals := t.colRows[j], t.colVals[j]
			for k, ri := range rows {
				r[ri] -= vals[k] * u
			}
		} else {
			r[t.logRow[j-t.n]] -= t.logSign[j-t.n] * u
		}
	}
	for i := 0; i < m; i++ {
		bi := t.binv[i]
		var s float64
		for k := 0; k < m; k++ {
			s += bi[k] * r[k]
		}
		if s < 0 && s > -1e-9 {
			s = 0
		}
		t.xB[i] = s
	}
}

// growCols appends k fresh logical column slots (zero cost, +Inf bound,
// nonbasic at lower) to the per-column state, reusing slice capacity when
// available so repeated cut appends amortize.
func (t *revised) growCols(k int) {
	old := len(t.cost)
	nt := old + k
	growF := func(s []float64, fill float64) []float64 {
		if cap(s) < nt {
			s2 := make([]float64, len(s), nt+nt/4+16)
			copy(s2, s)
			s = s2
		}
		s = s[:nt]
		for j := old; j < nt; j++ {
			s[j] = fill
		}
		return s
	}
	growB := func(s []bool) []bool {
		if cap(s) < nt {
			s2 := make([]bool, len(s), nt+nt/4+16)
			copy(s2, s)
			s = s2
		}
		s = s[:nt]
		for j := old; j < nt; j++ {
			s[j] = false
		}
		return s
	}
	t.cost = growF(t.cost, 0)
	t.upper = growF(t.upper, math.Inf(1))
	t.curCost = growF(t.curCost, 0)
	t.red = growF(t.red, 0)
	t.alpha = growF(t.alpha, 0)
	t.atUpper = growB(t.atUpper)
	t.isArt = growB(t.isArt)
	t.inBasis = growB(t.inBasis)
	if cap(t.whereBasic) < nt {
		s2 := make([]int, len(t.whereBasic), nt+nt/4+16)
		copy(s2, t.whereBasic)
		t.whereBasic = s2
	}
	t.whereBasic = t.whereBasic[:nt]
	for j := old; j < nt; j++ {
		t.whereBasic[j] = -1
	}
}

// growRows makes room for one more row: every binv row gets one more
// (zero) column and the row-sized scratch vectors are extended.
func (t *revised) growRows() {
	nm := t.m + 1
	for i := range t.binv {
		row := t.binv[i]
		if cap(row) < nm {
			r2 := make([]float64, len(row), nm+nm/4+16)
			copy(r2, row)
			row = r2
		}
		row = row[:nm]
		row[nm-1] = 0
		t.binv[i] = row
	}
	growF := func(s []float64) []float64 {
		if cap(s) < nm {
			s2 := make([]float64, len(s), nm+nm/4+16)
			copy(s2, s)
			s = s2
		}
		return s[:nm]
	}
	t.w = growF(t.w)
	t.rho = growF(t.rho)
	t.y = growF(t.y)
	t.flipAcc = growF(t.flipAcc)
}

// appendProblemRows incorporates rows added to the problem since the state
// was last solved. Each row gets a fresh slack column that enters the basis
// immediately, with its value computed from the current structural point,
// so a violated cut simply surfaces as a bound-infeasible basic slack for
// the dual simplex to repair. Unlike the dense engine, appended rows are
// stored verbatim — the basis inverse is extended by one bordered row
// instead of eliminating the new row against the dictionary, so appends
// introduce no compounding transformation error.
func (t *revised) appendProblemRows(p *Problem) {
	if t.rowsBuilt == len(p.rows) {
		return
	}
	xs := t.structuralX()
	for r := t.rowsBuilt; r < len(p.rows); r++ {
		t.appendRow(p.rows[r], p.rel[r], p.b[r], xs)
	}
	t.rowsBuilt = len(p.rows)
}

func (t *revised) appendRow(row []entry, rel Relation, b float64, xs []float64) {
	sign := 1.0
	if rel == GE {
		sign = -1.0 // negate so the slack keeps a +1 coefficient
	}
	cols, vals := normalizeEntries(row, sign)
	i := t.m
	s := len(t.cost)
	t.growCols(1)
	t.logRow = append(t.logRow, int32(i))
	t.logSign = append(t.logSign, 1)
	if rel == EQ {
		t.upper[s] = 0
	}
	t.rowCols = append(t.rowCols, cols)
	t.rowVals = append(t.rowVals, vals)
	t.rowLogs = append(t.rowLogs, []int32{int32(s)})
	t.rhs = append(t.rhs, sign*b)
	for k, c := range cols {
		// Grow column slices with explicit headroom: repeated cut appends
		// touch the same columns round after round, and Go's small-slice
		// doubling would reallocate on nearly every early append.
		if len(t.colRows[c]) == cap(t.colRows[c]) {
			nc := make([]int32, len(t.colRows[c]), 2*cap(t.colRows[c])+8)
			copy(nc, t.colRows[c])
			t.colRows[c] = nc
			nv := make([]float64, len(t.colVals[c]), cap(nc))
			copy(nv, t.colVals[c])
			t.colVals[c] = nv
		}
		t.colRows[c] = append(t.colRows[c], int32(i))
		t.colVals[c] = append(t.colVals[c], vals[k])
	}
	// Bordered extension of the inverse: the new basis is
	// [[B, 0], [a_B, 1]], whose inverse is [[B⁻¹, 0], [−a_B·B⁻¹, 1]],
	// where a_B holds the new row's coefficients on the current basic
	// columns (structural only — the row references no other row's
	// logicals).
	t.growRows()
	newRow := make([]float64, i+1, i+1+i/4+16)
	for k, c := range cols {
		if r := t.whereBasic[int(c)]; r >= 0 {
			f := vals[k]
			br := t.binv[r]
			for q := 0; q < i; q++ {
				newRow[q] -= f * br[q]
			}
		}
	}
	newRow[i] = 1
	t.binv = append(t.binv, newRow)
	ax := 0.0
	for k, c := range cols {
		ax += vals[k] * xs[c]
	}
	t.xB = append(t.xB, sign*b-ax)
	t.basis = append(t.basis, s)
	t.inBasis[s] = true
	t.whereBasic[s] = i
	t.m++
}

// structuralX extracts the structural variable values from the basis and
// bound states.
func (t *revised) structuralX() []float64 {
	x := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		if t.atUpper[j] && !t.inBasis[j] {
			x[j] = t.upper[j]
		}
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			x[t.basis[i]] = t.xB[i]
		}
	}
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	return x
}
