package lp

import (
	"math/rand"
	"testing"
)

// TestResolveExactFromMatchesCold drives random cut sequences through the
// warm rational engine and checks every re-solve against a from-scratch
// exact solve: identical status and bit-identical rational objective.
func TestResolveExactFromMatchesCold(t *testing.T) {
	for seed := 0; seed < 80; seed++ {
		rng := rand.New(rand.NewSource(int64(5000 + seed)))
		n := 2 + rng.Intn(5)
		p := randCoverProblem(rng, n)
		var basis *RatBasis
		for c := 0; c < 6; c++ {
			cols, vals, rhs := randCut(rng, p)
			if err := p.AddSparse(cols, vals, GE, rhs); err != nil {
				t.Fatal(err)
			}
			warm, nextBasis, err := p.ResolveExactFrom(basis)
			if err != nil {
				t.Fatalf("seed %d cut %d: ResolveExactFrom: %v", seed, c, err)
			}
			basis = nextBasis
			cold, err := SolveExact(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("seed %d cut %d: warm %v, cold %v", seed, c, warm.Status, cold.Status)
			}
			if warm.Status != Optimal {
				basis = nil
				continue
			}
			if warm.Objective.Cmp(cold.Objective) != 0 {
				t.Fatalf("seed %d cut %d: warm objective %v, cold %v",
					seed, c, warm.Objective, cold.Objective)
			}
		}
	}
}

// TestResolveExactFromSavesPivots locks the point of the warm start: across
// a cut sequence the warm engine must spend strictly fewer total pivots
// than cold re-solves of the same masters.
func TestResolveExactFromSavesPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmTotal, coldTotal := 0, 0
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		p := randCoverProblem(rng, n)
		var basis *RatBasis
		for c := 0; c < 6; c++ {
			cols, vals, rhs := randCut(rng, p)
			if err := p.AddSparse(cols, vals, GE, rhs); err != nil {
				t.Fatal(err)
			}
			warm, nb, err := p.ResolveExactFrom(basis)
			if err != nil {
				t.Fatal(err)
			}
			basis = nb
			warmTotal += warm.Iterations
			cold, err := SolveExact(p)
			if err != nil {
				t.Fatal(err)
			}
			coldTotal += cold.Iterations
			if warm.Status != Optimal {
				basis = nil
			}
		}
	}
	if warmTotal >= coldTotal {
		t.Fatalf("warm exact re-solves spent %d pivots, cold %d; warm start saves nothing", warmTotal, coldTotal)
	}
	t.Logf("exact pivots: warm %d vs cold %d (%.1fx)", warmTotal, coldTotal, float64(coldTotal)/float64(warmTotal))
}

// TestResolveExactFromRejectsBoundChange mirrors the float contract: bound
// changes invalidate the rational basis loudly.
func TestResolveExactFromRejectsBoundChange(t *testing.T) {
	p := NewProblem(2)
	for j := 0; j < 2; j++ {
		p.SetObjective(j, 1)
		p.SetUpper(j, 1)
	}
	if err := p.AddDense([]float64{1, 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol, basis, err := p.ResolveExactFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v %v", err, sol.Status)
	}
	p.SetUpper(0, 3)
	if _, _, err := p.ResolveExactFrom(basis); err == nil {
		t.Fatal("bound change accepted by warm exact re-solve")
	}
}
