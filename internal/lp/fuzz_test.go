package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzFactorUpdate drives the Forrest–Tomlin update machinery through
// byte-scripted sequences of admissible pivots, scheduled refactorizations,
// and basis resizes (the RemoveRows shape: a dimension change followed by a
// from-scratch factorization), asserting after every mutation that the
// FT-updated factors agree with a from-scratch LU of the same basis on both
// FTRAN and BTRAN results to 1e-9. The script chooses operations; all
// numeric content is derived from the seeded rng, so the fuzzer explores
// update/refactor interleavings rather than adversarial matrix entries.
func FuzzFactorUpdate(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(int64(7), []byte{0, 0, 0, 12, 0, 0, 14, 0, 0})
	f.Add(int64(42), []byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 13, 9, 9})
	f.Add(int64(3), []byte{15, 0, 15, 0, 15, 0})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 48 {
			script = script[:48]
		}
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(120)
		d := randBasis(rng, m, m)
		var ft, fresh factor
		if !ft.refactorize(m, d) {
			return
		}
		check := func(op int) {
			if !fresh.refactorize(m, d) {
				t.Fatalf("op %d: from-scratch LU reports the basis singular", op)
			}
			b := make([]float64, m)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			gotF := append([]float64{}, b...)
			wantF := append([]float64{}, b...)
			ft.ftran(gotF)
			fresh.ftran(wantF)
			scale := 1.0
			for _, v := range wantF {
				if a := math.Abs(v); a > scale {
					scale = a
				}
			}
			for i := range gotF {
				if math.Abs(gotF[i]-wantF[i]) > 1e-9*scale {
					t.Fatalf("op %d: FTRAN[%d] = %g, from-scratch LU %g (scale %g)",
						op, i, gotF[i], wantF[i], scale)
				}
			}
			gotB := append([]float64{}, b...)
			wantB := append([]float64{}, b...)
			ft.btran(gotB)
			fresh.btran(wantB)
			scale = 1.0
			for _, v := range wantB {
				if a := math.Abs(v); a > scale {
					scale = a
				}
			}
			for i := range gotB {
				if math.Abs(gotB[i]-wantB[i]) > 1e-9*scale {
					t.Fatalf("op %d: BTRAN[%d] = %g, from-scratch LU %g (scale %g)",
						op, i, gotB[i], wantB[i], scale)
				}
			}
		}
		for op, b := range script {
			switch {
			case b%16 < 12: // admissible pivot
				col := make([]float64, m)
				var ind []int32
				for i := range col {
					if rng.Intn(4) == 0 {
						col[i] = rng.NormFloat64()
						ind = append(ind, int32(i))
					}
				}
				r := rng.Intn(m)
				if col[r] == 0 {
					ind = append(ind, int32(r))
				}
				col[r] += 1 + rng.Float64()
				w := make([]float64, m)
				for _, i := range ind {
					w[i] = col[i]
				}
				ft.ftranSparse(w, ind, nil, ftranEnter)
				pos := rng.Intn(m)
				if math.Abs(w[pos]) < 1e-2 {
					ft.spikeOK = false // inadmissible: discard the spike
					continue
				}
				for rr := 0; rr < m; rr++ {
					d.a[rr][pos] = col[rr]
				}
				if !ft.ftUpdate(pos) {
					// Stability refusal: the engine refactorizes from the
					// post-pivot basis, so the agreement must still hold.
					if !ft.refactorize(m, d) {
						return
					}
				}
			case b%16 < 14: // scheduled fold
				if !ft.refactorize(m, d) {
					return
				}
			default: // resize: the RemoveRows/warm-start shape
				m = 5 + rng.Intn(120)
				d = randBasis(rng, m, m)
				if !ft.refactorize(m, d) {
					return
				}
			}
			check(op)
		}
	})
}
