// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {<=,>=,=} b_i   for each constraint i
//	            x >= 0
//
// Two interchangeable engines are provided: a float64 engine (Solve) tuned
// with a Dantzig pivot rule falling back to Bland's rule for anti-cycling,
// and an exact rational engine over math/big.Rat (SolveExact) used by tests
// to validate the float engine and by callers that need exact optima on
// small programs.
//
// Go has no mature linear-programming library, so this package is built as
// a first-class substrate: the active-time LP of the paper (Section 3) is
// solved through it via Benders-style cut generation in package activetime.
package lp

import (
	"errors"
	"fmt"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x <= b
	GE                 // a·x >= b
	EQ                 // a·x == b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return "?"
}

// Problem is a linear program under construction. Variables are indexed
// 0..NumVars-1 and implicitly bounded below by zero; upper bounds are
// expressed as explicit constraints.
type Problem struct {
	numVars int
	c       []float64
	rows    [][]entry
	rel     []Relation
	b       []float64
}

type entry struct {
	col int
	val float64
}

// NewProblem returns a problem with n variables and zero objective.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, c: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the cost coefficient of variable j.
func (p *Problem) SetObjective(j int, cost float64) {
	p.c[j] = cost
}

// AddSparse adds the constraint sum_k coeffs[k].val * x[coeffs[k].col] rel rhs.
// Coefficient columns must be valid variable indices; duplicate columns are
// summed.
func (p *Problem) AddSparse(cols []int, vals []float64, rel Relation, rhs float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("lp: %d columns but %d values", len(cols), len(vals))
	}
	row := make([]entry, 0, len(cols))
	for k, c := range cols {
		if c < 0 || c >= p.numVars {
			return fmt.Errorf("lp: column %d out of range [0,%d)", c, p.numVars)
		}
		row = append(row, entry{c, vals[k]})
	}
	p.rows = append(p.rows, row)
	p.rel = append(p.rel, rel)
	p.b = append(p.b, rhs)
	return nil
}

// AddDense adds the constraint coeffs·x rel rhs, where len(coeffs) ==
// NumVars.
func (p *Problem) AddDense(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: dense row has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	var cols []int
	var vals []float64
	for j, v := range coeffs {
		if v != 0 {
			cols = append(cols, j)
			vals = append(vals, v)
		}
	}
	return p.AddSparse(cols, vals, rel, rhs)
}

// Solution is the result of a float64 solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

const (
	eps       = 1e-9
	maxPivots = 200000
)

// Solve optimizes the problem with the float64 simplex engine. A non-nil
// error indicates malformed input only; infeasibility and unboundedness are
// reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	if p.numVars == 0 {
		return nil, errors.New("lp: problem has no variables")
	}
	t := newTableau(p)
	status, iters := t.run()
	sol := &Solution{Status: status, Iterations: iters}
	if status == Optimal {
		sol.X = t.primal()
		obj := 0.0
		for j, cj := range p.c {
			obj += cj * sol.X[j]
		}
		sol.Objective = obj
	}
	return sol, nil
}

// tableau is the dense simplex working state for the float engine.
type tableau struct {
	m, n     int // constraints, structural vars
	nTotal   int // structural + slack + artificial
	firstArt int // index of first artificial column (nTotal if none)
	a        [][]float64
	rhs      []float64
	basis    []int
	cost     []float64 // phase-2 costs per column
	active   []bool    // rows still in play (redundant rows get disabled)
}

func newTableau(p *Problem) *tableau {
	m, n := len(p.rows), p.numVars
	// Count slacks and artificials after normalizing b >= 0.
	type rowKind struct {
		rel  Relation
		flip bool
	}
	kinds := make([]rowKind, m)
	nSlack := 0
	nArt := 0
	for i := range p.rows {
		rel, b := p.rel[i], p.b[i]
		flip := b < 0
		if flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel, flip}
		switch rel {
		case LE:
			nSlack++ // slack enters the basis directly
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &tableau{
		m: m, n: n,
		nTotal:   n + nSlack + nArt,
		firstArt: n + nSlack,
		a:        make([][]float64, m),
		rhs:      make([]float64, m),
		basis:    make([]int, m),
		cost:     make([]float64, n+nSlack+nArt),
		active:   make([]bool, m),
	}
	copy(t.cost, p.c)
	slack := n
	art := t.firstArt
	for i := range p.rows {
		row := make([]float64, t.nTotal)
		sign := 1.0
		if kinds[i].flip {
			sign = -1.0
		}
		for _, e := range p.rows[i] {
			row[e.col] += sign * e.val
		}
		t.rhs[i] = sign * p.b[i]
		t.active[i] = true
		switch kinds[i].rel {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}
	return t
}

// reducedCosts computes the reduced-cost row for the given column costs.
func (t *tableau) reducedCosts(cost []float64, barred func(int) bool) []float64 {
	red := make([]float64, t.nTotal)
	copy(red, cost)
	for i := 0; i < t.m; i++ {
		if !t.active[i] {
			continue
		}
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.nTotal; j++ {
			red[j] -= cb * t.a[i][j]
		}
	}
	if barred != nil {
		for j := 0; j < t.nTotal; j++ {
			if barred(j) {
				red[j] = 0 // never re-enter
			}
		}
	}
	return red
}

// pivot performs a standard pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	inv := 1 / piv
	arow := t.a[row]
	for j := range arow {
		arow[j] *= inv
	}
	t.rhs[row] *= inv
	arow[col] = 1 // fight rounding
	for i := 0; i < t.m; i++ {
		if i == row || !t.active[i] {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			ai[j] -= f * arow[j]
		}
		ai[col] = 0
		t.rhs[i] -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// iterate runs simplex iterations with the given cost vector until optimal,
// unbounded, or the pivot budget is exhausted. barred marks columns that may
// not enter (artificials in phase 2).
func (t *tableau) iterate(cost []float64, barred func(int) bool, budget *int) Status {
	blandFrom := *budget / 2 // switch to Bland's rule for the second half
	for iter := 0; ; iter++ {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		red := t.reducedCosts(cost, barred)
		col := -1
		if iter < blandFrom {
			best := -eps
			for j := 0; j < t.nTotal; j++ {
				if red[j] < best {
					best = red[j]
					col = j
				}
			}
		} else {
			for j := 0; j < t.nTotal; j++ {
				if red[j] < -eps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return Optimal
		}
		row := -1
		var bestRatio float64
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.a[i][col] <= eps {
				continue
			}
			ratio := t.rhs[i] / t.a[i][col]
			if row < 0 || ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && t.basis[i] < t.basis[row]) {
				row = i
				bestRatio = ratio
			}
		}
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
}

// run executes the two phases and returns the final status and pivot count.
func (t *tableau) run() (Status, int) {
	budget := maxPivots
	// Phase 1: minimize the sum of artificials.
	if t.firstArt < t.nTotal {
		phase1 := make([]float64, t.nTotal)
		for j := t.firstArt; j < t.nTotal; j++ {
			phase1[j] = 1
		}
		st := t.iterate(phase1, nil, &budget)
		if st == IterLimit {
			return IterLimit, maxPivots - budget
		}
		// Infeasible if any artificial remains basic at positive value.
		var artSum float64
		for i := 0; i < t.m; i++ {
			if t.active[i] && t.basis[i] >= t.firstArt {
				artSum += t.rhs[i]
			}
		}
		if artSum > 1e-7 {
			return Infeasible, maxPivots - budget
		}
		// Drive remaining zero-valued artificials out of the basis.
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.basis[i] < t.firstArt {
				continue
			}
			pivoted := false
			for j := 0; j < t.firstArt; j++ {
				if t.a[i][j] > eps || t.a[i][j] < -eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				t.active[i] = false // redundant row
			}
		}
	}
	// Phase 2.
	barred := func(j int) bool { return j >= t.firstArt }
	st := t.iterate(t.cost, barred, &budget)
	return st, maxPivots - budget
}

// primal extracts the structural variable values from the basis.
func (t *tableau) primal() []float64 {
	x := make([]float64, t.n)
	for i := 0; i < t.m; i++ {
		if t.active[i] && t.basis[i] < t.n {
			x[t.basis[i]] = t.rhs[i]
		}
	}
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	return x
}
