// Package lp implements a sparse revised-simplex solver for bounded-variable
// linear programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {<=,>=,=} b_i   for each constraint i
//	            0 <= x_j <= u_j       (u_j = +Inf unless SetUpper is called)
//
// Two interchangeable engines are provided: a float64 engine (Solve) with
// selectable pricing (dual steepest-edge by default; see SetPricing)
// falling back to Bland's rule for anti-cycling, and an exact rational
// engine over math/big.Rat (SolveExact) used by tests to validate the
// float engine and by callers that need exact optima on small programs.
//
// # Sparse representation and factorized basis
//
// The float engine is a revised simplex: constraint rows are kept verbatim
// in compressed sparse form (a per-row column/value list, mirrored by a
// per-column view), and logical columns are signed unit vectors that are
// never materialized. All pivoting state lives in a factorized basis
// representation (factor.go): a sparse LU of the basis — refactorized with
// a static Markowitz-style column ordering and threshold partial pivoting —
// kept current across basis changes by Forrest–Tomlin updates: each pivot
// replaces the leaving column of U in place with the entering column's
// spike (its partial FTRAN through L and the accumulated row etas) and
// eliminates the resulting row bump into one short row-eta operation plus
// a rotation of U's triangular order. Every former B⁻¹·v product is an
// FTRAN (a triangular solve through L, the row-eta list, and the updated
// U) and every vᵀ·B⁻¹ product a BTRAN (the same chain transposed, in
// reverse), so per-pivot work is O(m + nnz(L+U) + nnz(row etas) + nnz of
// the priced rows) — nothing of size m² or n×m is ever stored, written or
// scanned, and no pass over a growing product-form eta file is ever paid.
// The product-form (PFI) eta-file representation is retained for ablation
// behind SetFactorization, and the dense-inverse predecessor's O(m²)
// rank-one updates capped the Benders master near a thousand rows; the
// factorized core carries the same pipeline to tens of thousands.
//
// The updated factors are folded into a fresh LU when the update count
// reaches maxFTUpdates or the updated U (plus its row etas) grows past
// ftFillBloat times the refactorization-time fill, after every append or
// removal of rows, on every resync, and — counted separately in
// KernelStats.ForcedRefactors — whenever a spike's eliminated diagonal
// falls below the stability tolerance, in which case the pre-update
// factors are discarded untouched and rebuilt from the post-pivot basis.
// (The PFI ablation folds at maxEtas operations or etaBloat times the
// factor size, its original policy.) Each refactorization immediately
// re-derives the basic values and reduced costs so the incremental state
// never disagrees with the factors. The dual ratio test orders its
// candidates by ratio with Harris-style tie-breaking (largest pivot
// magnitude within a tie): covering masters are massively dual degenerate,
// and index-order tie-breaking measurably sent the bound-flipping walk
// into dual-progress-free flip storms at large horizons.
//
// # Hypersparse FTRAN/BTRAN kernels
//
// Above a small dimension threshold the triangular solves run hypersparse
// (Gilbert–Peierls): a symbolic pass computes the reach of the right-hand
// side's support through the triangular factor's dependency graph by DFS,
// and the numeric pass then touches only the reached positions — per-solve
// cost proportional to the nonzeros involved, not to m. The reach is
// emitted through a bitset sweep (set bits during discovery, scan words
// ascending) so the numeric pass consumes elimination steps in the same
// sorted order the dense kernels use: both paths perform the identical
// float operations in the identical order, which makes the path choice a
// pure cost knob that can never perturb the pivot trajectory (the
// equivalence suite in package activetime asserts identical pivot
// sequences within each factorization rule, and SetDenseKernels pins the
// dense path for that ablation).
// When an expanding reach crosses a capped fraction of m the solve aborts
// to the dense kernel — near-dense intermediates make symbolic bookkeeping
// pure overhead — and a per-caller-class run counter then skips the doomed
// symbolic expansion while a class stays in its dense regime, re-probing
// periodically and resetting at each refactorization. The result support
// lists the hypersparse solves hand back let consumers (eta appends, FG
// weight updates, pivot-row scatter) iterate nonzeros directly instead of
// scanning dense vectors.
//
// # Pricing
//
// Pricing is rule-selectable per Problem (SetPricing). The default,
// PricingSteepestEdge, prices dual pivots with Forrest–Goldfarb dual
// steepest-edge reference weights w_i = ‖e_iᵀB⁻¹‖²: the leaving row
// maximizes violation²/weight, which measures each violation in the
// geometry of the dual edge the pivot traverses and takes far fewer (and
// better-conditioned) pivots than most-infeasible selection on the
// dual-degenerate covering masters this package exists for. The weights
// live in basis-position space and are maintained incrementally across
// every basis change by the exact FG update (one extra FTRAN per pivot,
// hooked into the same FTRAN/BTRAN products the pivot already computes);
// they survive refactorization unchanged (the basis does not change),
// survive RemoveRows by compaction, and appended rows price their new
// positions exactly with one BTRAN each. The exact norm of each pivot row
// — computed anyway for the ratio test — anchors the leaving weight every
// pivot and doubles as a staleness detector: on disagreement beyond a
// guard factor the engine falls back to devex max-form updates (robust to
// approximate weights) for the rest of the state's life. PricingDevex
// runs those max-form updates exclusively (no extra FTRAN); PricingDantzig
// keeps the pre-steepest-edge baseline for ablation. Under the non-Dantzig
// rules the primal phase prices from a managed partial candidate list
// (refilled by a cyclic rotor scan) instead of scanning every column, the
// dual phase prices leaving rows from a working set of infeasible cut rows
// — maintained incrementally by the same sparse updates that change basic
// values, rebuilt by one complete sweep (counted in KernelStats.RowRefills)
// only when it runs dry, so steady-state pivots never scan all m rows —
// and
// the bound-flipping dual ratio test consumes its candidates through a
// binary heap — the walk usually wants a handful of the thousands a wide
// pivot row yields, so nothing pays a full sort per pivot.
//
// The engine handles variable upper bounds natively (nonbasic variables may
// sit at either bound, and the ratio test admits bound flips), so callers
// never pay a constraint row for a box constraint; single-variable
// "x_j <= u" rows are also presolved into bounds. Cold solves under the
// non-Dantzig rules start directly dual feasible whenever every
// negative-cost column has a finite upper bound (always true for covering
// masters): each structural rests on the bound its cost sign prefers, the
// all-logical basis prices exactly (weight 1 everywhere), and the dual
// simplex replaces the whole two-phase artificial apparatus. It supports
// incremental re-solves: ResolveFrom keeps the factorized state alive
// between calls, incorporates rows appended to the Problem since the
// previous solve (one refactorization at the new dimension), and recovers
// optimality with the dual simplex instead of re-running a cold solve from
// scratch; a warm re-solve that fails re-enters through a crash basis
// seeded from the warm basis's surviving columns (fresh factors, no
// numerical history) before the full cold solve is attempted. The pricing
// loop maintains a persistent reduced-cost row updated in place at each
// pivot (refreshed periodically against drift), and the factor arenas are
// reused across refactorizations, so steady-state pivoting performs no
// allocations.
//
// # Warm-start contract
//
// A *Basis returned by ResolveFrom stays valid for the same Problem as long
// as only new constraint rows are appended (AddSparse/AddDense), new
// structural columns are appended (AddColumns — the column-space dual of
// row appends: the live state splices them in nonbasic at their lower
// bound, reprices them against the persistent dual row at the
// refactorization the splice schedules, and the usual dual+primal repair
// absorbs any that price attractively), or rows strictly slack at the last
// optimum are removed (RemoveRows, which excises
// them from both the problem and the live state — the primitive behind
// Benders cut purging) between calls: appended rows enter with their own
// basic slack, and removing a slack row disturbs neither the remaining
// duals nor any remaining basic value. Changing the objective between
// re-solves is also permitted (the final primal clean-up phase
// re-optimizes). A warm re-solve falls back to a cold two-phase solve only
// when the caller passes a nil Basis — which is also what callers must do
// after any solve that did not end Optimal, since non-optimal solves return
// no Basis. Changing the bound of a column the basis has already seen
// still invalidates it (shaping a freshly appended column before its first
// re-solve is part of the splice, not a change): ResolveFrom rejects such
// calls loudly instead of silently solving against stale state, and the
// caller re-solves cold. A warm re-solve that abandons its basis mid-call
// (crash/cold recovery) reports it in Solution.ColdFallbacks — counted,
// never silent.
//
// The exact rational engine mirrors the contract on a smaller surface:
// ResolveExactFrom keeps the big.Rat dictionary alive between calls,
// repairs appended LE/GE rows with an exact Bland dual simplex, and falls
// back to a cold rational solve for anything else.
//
// # Numerical safeguards
//
// Optimality is never certified against a stale reduced-cost row (a full
// refresh precedes the claim), and dual infeasibility is never certified
// from drifted state: before reporting it, the engine refactorizes the
// basis from scratch, resyncs every basic value, and re-tries. Every
// returned optimum is verified against the caller's own rows to 1e-6 as
// the last line of defense — a warm solve that fails any of this falls
// back to a verified cold solve. The dense predecessor lacked these
// safeguards and mis-reported feasible masters as infeasible past
// T ≈ 1000 slots.
//
// Go has no mature linear-programming library, so this package is built as
// a first-class substrate: the active-time LP of the paper (Section 3) is
// solved through it via Benders-style cut generation in package activetime.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x <= b
	GE                 // a·x >= b
	EQ                 // a·x == b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// PricingRule selects the float engine's simplex pricing strategy: how the
// dual simplex chooses its leaving row and how the primal simplex chooses
// its entering column. Every rule reaches the same optima (the cross-solver
// property suites assert it); they differ only in how many pivots they
// spend getting there and what each pivot's pricing pass costs.
type PricingRule int

const (
	// PricingSteepestEdge is the default: dual pivots are priced with
	// Forrest–Goldfarb dual steepest-edge reference weights
	// (w_i = ‖e_iᵀB⁻¹‖²), maintained incrementally across every basis
	// change with the exact update formula (one extra FTRAN per pivot),
	// and the primal phase prices from a managed partial candidate list
	// instead of scanning every column. When the incrementally maintained
	// weights go stale — detected against the exact row norm the dual
	// ratio test computes anyway — the engine falls back to devex-style
	// max-form updates for the remainder of the state's life.
	PricingSteepestEdge PricingRule = iota
	// PricingDevex maintains approximate reference weights with devex
	// max-form updates only (no extra FTRAN per pivot), anchored at the
	// exact norm of each pivot row as it is computed. Primal pricing is
	// the same partial candidate list as steepest edge.
	PricingDevex
	// PricingDantzig is the pre-steepest-edge baseline kept for ablation:
	// most-infeasible dual row selection and full most-negative-reduced-
	// cost primal scans.
	PricingDantzig
)

func (r PricingRule) String() string {
	switch r {
	case PricingSteepestEdge:
		return "steepest-edge"
	case PricingDevex:
		return "devex"
	case PricingDantzig:
		return "dantzig"
	}
	return "?"
}

// FactorizationRule selects how the float engine keeps its factorized
// basis current across pivots. Both rules reach the same optima (the
// cross-solver property suites assert it for each); they differ in the
// per-pivot solve cost and — because their floating-point rounding
// differs — possibly in the pivot trajectory taken.
type FactorizationRule int

const (
	// FactorizationFT is the default: Forrest–Tomlin updates that rewrite
	// U in place at every basis change (spike column in, eliminated row
	// bump out as one short row eta), so FTRAN/BTRAN traverse only L, the
	// updated U, and the row-eta list — no pass over a growing eta file.
	FactorizationFT FactorizationRule = iota
	// FactorizationPFI is the product-form ablation baseline: the factors
	// stay frozen at the last refactorization and every basis change
	// appends one column eta to a product-form eta file that both solve
	// directions must traverse in full (the pre-FT behavior).
	FactorizationPFI
)

func (r FactorizationRule) String() string {
	switch r {
	case FactorizationFT:
		return "forrest-tomlin"
	case FactorizationPFI:
		return "pfi"
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return "?"
}

// Problem is a linear program under construction. Variables are indexed
// 0..NumVars-1, bounded below by zero and above by per-variable upper
// bounds (+Inf by default; see SetUpper).
type Problem struct {
	numVars int
	c       []float64
	upper   []float64 // nil means all +Inf
	rows    [][]entry
	rel     []Relation
	b       []float64
	// removeEpoch counts RemoveRows calls. Engine states snapshot it so a
	// warm re-solve can reject a basis that missed a removal — a pure
	// row-count comparison cannot tell remove-k-then-append-k from
	// append-only.
	removeEpoch   int
	pricing       PricingRule
	factorization FactorizationRule
	// denseKernels forces every FTRAN/BTRAN through the dense triangular
	// solves, disabling the hypersparse reach path (ablation hook; see
	// SetDenseKernels). pivotHook, when set, observes every basis change
	// (see SetPivotHook). Both are read when an engine state is created and
	// ride with it for its life, like the pricing rule.
	denseKernels bool
	pivotHook    func(row, col int)
}

type entry struct {
	col int
	val float64
}

// NewProblem returns a problem with n variables and zero objective.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, c: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the cost coefficient of variable j.
func (p *Problem) SetObjective(j int, cost float64) {
	p.c[j] = cost
}

// SetUpper sets the upper bound of variable j. The float engine enforces it
// natively (no constraint row); the exact engine materializes it as an
// explicit row. A negative bound makes the problem infeasible.
func (p *Problem) SetUpper(j int, u float64) {
	if p.upper == nil {
		p.upper = make([]float64, p.numVars)
		for k := range p.upper {
			p.upper[k] = math.Inf(1)
		}
	}
	p.upper[j] = u
}

// SetPricing selects the float engine's pricing rule (PricingSteepestEdge
// by default). The rule is read when an engine state is created — a cold
// Solve/ResolveFrom(nil) call — and rides with that state for its life, so
// changing it between warm re-solves has no effect until the next cold
// start. The exact rational engine is unaffected.
func (p *Problem) SetPricing(r PricingRule) {
	p.pricing = r
}

// Pricing returns the pricing rule new engine states will use.
func (p *Problem) Pricing() PricingRule { return p.pricing }

// SetFactorization selects how the float engine maintains its factorized
// basis across pivots (FactorizationFT by default; FactorizationPFI keeps
// the product-form eta file for ablation, exactly as PricingDantzig keeps
// the pre-steepest-edge pricing). Like SetPricing, the rule is read when
// an engine state is created and rides with that state for its life, so
// changing it between warm re-solves has no effect until the next cold
// start. The exact rational engine is unaffected.
func (p *Problem) SetFactorization(r FactorizationRule) {
	p.factorization = r
}

// Factorization returns the factorization rule new engine states will use.
func (p *Problem) Factorization() FactorizationRule { return p.factorization }

// SetDenseKernels forces the float engine's triangular solves onto the
// dense path, bypassing the hypersparse symbolic-reach kernels. The two
// paths compute bit-for-bit identical results by construction (the
// equivalence suites assert identical pivot sequences); the flag exists as
// an ablation hook for tests and benchmarks. Like SetPricing, it is read
// when an engine state is created and rides with that state for its life.
func (p *Problem) SetDenseKernels(dense bool) {
	p.denseKernels = dense
}

// SetPivotHook installs an observer invoked at every basis change with the
// leaving row's basis position and the entering column. It is read when an
// engine state is created; tests use it to record and compare pivot
// sequences across kernel paths. The hook must not mutate the problem or
// re-enter the solver. Pass nil to clear.
func (p *Problem) SetPivotHook(hook func(row, col int)) {
	p.pivotHook = hook
}

// Upper returns the upper bound of variable j (+Inf if never set).
func (p *Problem) Upper(j int) float64 {
	if p.upper == nil {
		return math.Inf(1)
	}
	return p.upper[j]
}

// upperChanged compares the problem's current bounds against a snapshot
// taken when an engine state was captured, reporting the first variable
// whose bound differs. Both the float and the exact warm-start contracts
// reject bound changes through this single check.
func (p *Problem) upperChanged(snap []float64) (j int, changed bool) {
	for j := range snap {
		want := math.Inf(1)
		if p.upper != nil {
			want = p.upper[j]
		}
		if snap[j] != want {
			return j, true
		}
	}
	return 0, false
}

// AddColumns appends k new structural variables with zero objective and
// infinite upper bound, returning the index of the first one. The caller
// then shapes them with SetObjective/SetUpper and references them from
// newly added rows.
//
// AddColumns is the column-space dual of appending rows: a basis captured
// before the call stays warm-startable. ResolveFrom splices the new columns
// into the live engine state nonbasic at their lower bound, reprices them
// against the persistent dual row at the refactorization the splice
// schedules, and lets the usual dual+primal repair absorb them — setting an
// upper bound on a new column before the next re-solve is part of the
// splice, not a bound change on a snapshotted column, so it does not trip
// the warm-start contract's bound check. Columns can never be removed.
func (p *Problem) AddColumns(k int) int {
	j0 := p.numVars
	if k <= 0 {
		return j0
	}
	p.numVars += k
	p.c = append(p.c, make([]float64, k)...)
	if p.upper != nil {
		for i := 0; i < k; i++ {
			p.upper = append(p.upper, math.Inf(1))
		}
	}
	return j0
}

// AddSparse adds the constraint sum_k coeffs[k].val * x[coeffs[k].col] rel rhs.
// Coefficient columns must be valid variable indices; duplicate columns are
// summed.
func (p *Problem) AddSparse(cols []int, vals []float64, rel Relation, rhs float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("lp: %d columns but %d values", len(cols), len(vals))
	}
	row := make([]entry, 0, len(cols))
	for k, c := range cols {
		if c < 0 || c >= p.numVars {
			return fmt.Errorf("lp: column %d out of range [0,%d)", c, p.numVars)
		}
		row = append(row, entry{c, vals[k]})
	}
	p.rows = append(p.rows, row)
	p.rel = append(p.rel, rel)
	p.b = append(p.b, rhs)
	return nil
}

// AddDense adds the constraint coeffs·x rel rhs, where len(coeffs) ==
// NumVars.
func (p *Problem) AddDense(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: dense row has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	var cols []int
	var vals []float64
	for j, v := range coeffs {
		if v != 0 {
			cols = append(cols, j)
			vals = append(vals, v)
		}
	}
	return p.AddSparse(cols, vals, rel, rhs)
}

// RemoveRows deletes the constraint rows at the given indices (indices into
// the problem's current row order; duplicates are tolerated). Row indices
// above the removed ones shift down, exactly like deleting from a slice.
//
// With a nil basis only the problem is edited and any previously captured
// basis becomes invalid (ResolveFrom rejects it as out of sync, via a
// removal epoch the basis snapshots — row counts alone cannot tell
// remove-then-append from append-only). With the
// basis of this problem's latest Optimal (re)solve, the rows are also
// excised from the live simplex state in place: this is legal only for rows
// that are strictly slack at that optimum (their slack column is basic), in
// which case the remaining state is still optimal for the reduced problem
// and the next ResolveFrom only pays one refactorization. Attempting to
// remove a tight row fails with an error before anything is mutated.
//
// This is the primitive behind Benders cut purging: a persistently slack
// cut has a basic slack by definition, so purging between rounds never
// pays the purge-and-rebuild cost of a cold re-solve.
func (p *Problem) RemoveRows(drop []int, basis *Basis) error {
	if len(drop) == 0 {
		return nil
	}
	for _, i := range drop {
		if i < 0 || i >= len(p.rows) {
			return fmt.Errorf("lp: RemoveRows index %d out of range [0,%d)", i, len(p.rows))
		}
	}
	if basis != nil && basis.t != nil {
		if basis.t.rowsBuilt != len(p.rows) {
			return errors.New("lp: basis is out of sync with the problem; re-solve before removing rows")
		}
		if err := basis.t.removeRows(drop); err != nil {
			return err // nothing mutated; the basis stays valid
		}
	}
	p.removeEpoch++
	if basis != nil && basis.t != nil {
		basis.t.epoch = p.removeEpoch // this basis saw the removal
	}
	dead := make([]bool, len(p.rows))
	for _, i := range drop {
		dead[i] = true
	}
	out := 0
	for i := range p.rows {
		if dead[i] {
			continue
		}
		p.rows[out], p.rel[out], p.b[out] = p.rows[i], p.rel[i], p.b[i]
		out++
	}
	p.rows = p.rows[:out]
	p.rel = p.rel[:out]
	p.b = p.b[:out]
	return nil
}

// Solution is the result of a float64 solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations counts simplex basis changes (pivots) performed during the
	// call that produced this solution — two-phase pivots for a cold solve,
	// dual plus clean-up pivots for a warm re-solve. Bound flips and pricing
	// rounds that end without a pivot are not counted, so summing Iterations
	// across a cut-generation loop never double-counts work.
	Iterations int
	// Refactors counts every basis refactorization performed during the
	// call. Most are scheduled folds: sparse-LU rebuilds triggered by
	// appended or removed rows, by the updated factors reaching their
	// update-count or fill limit (the eta file's length/fill limit under
	// the PFI ablation), and by drift resyncs. The remainder are
	// stability-forced: a Forrest–Tomlin spike whose eliminated diagonal
	// fell below the pivot tolerance, counted separately in
	// Kernel.ForcedRefactors (always a subset of this total). Together
	// with Iterations it is the solver-effort figure the scaling
	// experiments report.
	Refactors int
	// Kernel reports the triangular-solve kernel activity of the call:
	// hypersparse-vs-dense path counts, result-support sizes on the
	// hypersparse paths, and dual working-set refills. Like Iterations it
	// covers exactly the work of the call that produced this solution.
	Kernel KernelStats
	// ColdFallbacks is 1 when a warm ResolveFrom abandoned its inherited
	// basis — the warm dual+primal repair (or its verification) did not end
	// Optimal and the call recovered through a crash basis or a full cold
	// solve — and 0 otherwise (cold calls included: a requested cold solve
	// is not a fallback). The recovery itself is correct and verified; the
	// counter exists because a warm-path regression that silently degrades
	// every re-solve to a cold solve costs an order of magnitude and would
	// otherwise be invisible. FallbackVerdict carries the triggering
	// verdict (the warm status and the recovery path) for logging.
	ColdFallbacks   int
	FallbackVerdict string
}

// KernelStats counts FTRAN/BTRAN kernel activity. The hypersparse counters
// cover solves that completed on the symbolic-reach path; the dense
// counters cover forced-dense solves, small bases, and solves whose reach
// closure crossed the density fallback threshold mid-flight. RowRefills
// counts dual working-set rebuild scans (pricing fell through the cut-row
// working set to a cyclic sweep).
type KernelStats struct {
	FtranHyper    int // entering-column/FG/flip FTRANs solved hypersparse
	FtranDense    int // FTRANs solved dense (forced, small, or fallback)
	BtranHyper    int // pivot-row BTRANs solved hypersparse
	BtranDense    int // BTRANs solved dense
	FtranHyperNNZ int // total result nonzeros over hypersparse FTRANs
	BtranHyperNNZ int // total result nonzeros over hypersparse BTRANs
	RowRefills    int // dual working-set refill sweeps
	// FTUpdates counts Forrest–Tomlin in-place basis updates applied, and
	// FTSpikeNNZ the total spike-column nonzeros those updates absorbed
	// into U (the per-update fill pressure). Both are zero under the PFI
	// ablation.
	FTUpdates  int
	FTSpikeNNZ int
	// ForcedRefactors counts refactorizations forced by a Forrest–Tomlin
	// spike whose eliminated diagonal fell below the stability tolerance
	// (the update is abandoned with the old factors untouched and the
	// post-pivot basis refactorized from scratch). Always a subset of
	// Solution.Refactors.
	ForcedRefactors int
	// EtaDotOps counts product-form eta-file entries traversed by the
	// solve kernels — the per-pivot-growing pass the Forrest–Tomlin
	// representation exists to eliminate. Structurally zero on the FT
	// path; under the PFI ablation it grows with etas × their fill.
	EtaDotOps int
	// UFillMaxPct is the peak size of the updated U plus its row etas as a
	// percentage of the refactorization-time factor fill — the gauge the
	// fold policy caps. It is a high-water mark, not a flow: minus carries
	// the current peak through and Accumulate takes the max.
	UFillMaxPct int
}

func (k *KernelStats) noteFtran(hyper bool, nnz int) {
	if hyper {
		k.FtranHyper++
		k.FtranHyperNNZ += nnz
	} else {
		k.FtranDense++
	}
}

func (k *KernelStats) noteBtran(hyper bool, nnz int) {
	if hyper {
		k.BtranHyper++
		k.BtranHyperNNZ += nnz
	} else {
		k.BtranDense++
	}
}

// minus returns the fieldwise difference k - o; the engine uses it to carve
// per-call figures out of lifetime counters.
func (k KernelStats) minus(o KernelStats) KernelStats {
	return KernelStats{
		FtranHyper:      k.FtranHyper - o.FtranHyper,
		FtranDense:      k.FtranDense - o.FtranDense,
		BtranHyper:      k.BtranHyper - o.BtranHyper,
		BtranDense:      k.BtranDense - o.BtranDense,
		FtranHyperNNZ:   k.FtranHyperNNZ - o.FtranHyperNNZ,
		BtranHyperNNZ:   k.BtranHyperNNZ - o.BtranHyperNNZ,
		RowRefills:      k.RowRefills - o.RowRefills,
		FTUpdates:       k.FTUpdates - o.FTUpdates,
		FTSpikeNNZ:      k.FTSpikeNNZ - o.FTSpikeNNZ,
		ForcedRefactors: k.ForcedRefactors - o.ForcedRefactors,
		EtaDotOps:       k.EtaDotOps - o.EtaDotOps,
		UFillMaxPct:     k.UFillMaxPct, // high-water mark: the peak to date stands
	}
}

// Accumulate adds o into k fieldwise; callers driving many solves (the
// Benders loop) use it to aggregate per-call stats into a run total.
func (k *KernelStats) Accumulate(o KernelStats) {
	k.FtranHyper += o.FtranHyper
	k.FtranDense += o.FtranDense
	k.BtranHyper += o.BtranHyper
	k.BtranDense += o.BtranDense
	k.FtranHyperNNZ += o.FtranHyperNNZ
	k.BtranHyperNNZ += o.BtranHyperNNZ
	k.RowRefills += o.RowRefills
	k.FTUpdates += o.FTUpdates
	k.FTSpikeNNZ += o.FTSpikeNNZ
	k.ForcedRefactors += o.ForcedRefactors
	k.EtaDotOps += o.EtaDotOps
	if o.UFillMaxPct > k.UFillMaxPct {
		k.UFillMaxPct = o.UFillMaxPct
	}
}

// FtranAvgNNZ returns the mean result support of the hypersparse FTRANs
// (0 when none ran).
func (k KernelStats) FtranAvgNNZ() float64 {
	if k.FtranHyper == 0 {
		return 0
	}
	return float64(k.FtranHyperNNZ) / float64(k.FtranHyper)
}

// BtranAvgNNZ returns the mean result support of the hypersparse BTRANs
// (0 when none ran).
func (k KernelStats) BtranAvgNNZ() float64 {
	if k.BtranHyper == 0 {
		return 0
	}
	return float64(k.BtranHyperNNZ) / float64(k.BtranHyper)
}

// HyperShare returns the fraction of all triangular solves that completed
// on the hypersparse path (0 when no solves ran).
func (k KernelStats) HyperShare() float64 {
	total := k.FtranHyper + k.FtranDense + k.BtranHyper + k.BtranDense
	if total == 0 {
		return 0
	}
	return float64(k.FtranHyper+k.BtranHyper) / float64(total)
}

const (
	eps          = 1e-9
	maxPivots    = 200000
	refreshEvery = 128 // pivots between full reduced-cost refreshes
)

// Basis is an opaque snapshot of the simplex working state, enabling warm
// re-solves via ResolveFrom. A Basis is tied to the Problem that produced
// it and is consumed (mutated in place) by the next ResolveFrom call.
type Basis struct {
	t *revised
}

// Solve optimizes the problem with the float64 simplex engine from a cold
// start. A non-nil error indicates malformed input only; infeasibility and
// unboundedness are reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	sol, _, err := p.ResolveFrom(nil)
	return sol, err
}

// ResolveFrom optimizes the problem, warm-starting from prev when non-nil.
// With prev == nil it performs a cold two-phase bounded simplex solve. With
// a prev obtained from an earlier optimal solve of the same problem, rows
// appended since are incorporated into the live tableau and re-optimized
// with the dual simplex (each new row enters with its own basic slack, so
// the old basis stays dual feasible), followed by a primal clean-up pass
// that also absorbs objective changes. The returned Basis supports the next
// incremental call; it is nil when the solve did not end Optimal. See the
// package comment for the exact warm-start contract.
func (p *Problem) ResolveFrom(prev *Basis) (*Solution, *Basis, error) {
	if p.numVars == 0 {
		return nil, nil, errors.New("lp: problem has no variables")
	}
	if p.upper != nil {
		for _, u := range p.upper {
			if u < 0 {
				return &Solution{Status: Infeasible}, nil, nil
			}
		}
	}
	var t *revised
	var status Status
	coldFallbacks := 0
	fallbackVerdict := ""
	budget := maxPivots
	if prev == nil || prev.t == nil {
		t, status = coldSolve(p, &budget)
		if status == Optimal {
			status = t.verifyOptimal(p, &budget)
		}
	} else {
		t = prev.t
		if t.n > p.numVars {
			return nil, nil, fmt.Errorf("lp: basis has %d variables, problem has %d (columns cannot be removed)", t.n, p.numVars)
		}
		if t.rowsBuilt > len(p.rows) {
			return nil, nil, errors.New("lp: problem has fewer rows than the basis (rows were removed)")
		}
		if t.epoch != p.removeEpoch {
			return nil, nil, errors.New("lp: rows were removed without this basis (RemoveRows with a nil or different basis); re-solve cold")
		}
		// Changed bounds invalidate the basis (see the warm-start contract);
		// catch the misuse instead of returning a silently wrong optimum.
		if j, changed := p.upperChanged(t.probUpper); changed {
			return nil, nil, fmt.Errorf("lp: upper bound of variable %d changed since the basis was captured; re-solve cold", j)
		}
		t.pivotsAtCall = t.pivots
		t.refactorsAtCall = t.refactors
		t.kstatsAtCall = t.kstats
		newCols := p.numVars - t.n
		t.appendProblemCols(p)
		copy(t.cost[:t.n], p.c) // pick up objective changes since the snapshot
		t.appendProblemRows(p)
		// A warm repair of freshly appended rows needs tens of pivots; give
		// it a budget proportional to the row count rather than the global
		// ceiling, so a degenerate stall falls back to the (verified) cold
		// solve quickly instead of grinding the dual for the full budget.
		// Appended columns each cost at most one primal entering pivot.
		if wb := 4*len(p.rows) + 4*newCols + 400; wb < budget {
			budget = wb
		}
		status = t.dualIterate(&budget)
		if status == Optimal {
			status = t.primalIterate(false, &budget)
		}
		if status == Optimal {
			status = t.verifyOptimal(p, &budget)
		}
		if status != Optimal {
			// The warm path certifies only optima: a warm claim of
			// infeasibility (or an exhausted pivot budget, or an optimum
			// that failed verification) may be an artifact of the inherited
			// basis, so it is re-derived cold. The cold entry is a crash
			// basis seeded from the warm basis's surviving columns — a
			// fresh state with no numerical history whose dual repair
			// typically needs a handful of pivots where the all-logical
			// two-phase restart pays thousands re-deriving a near-identical
			// basis. Only a verified optimum is accepted from the crash;
			// anything else (including any infeasibility claim, which a
			// seeded basis cannot certify) falls through to coldSolve,
			// which likewise only trusts its fast dual-start for optima
			// and ends every other verdict at the two-phase solve, whose
			// phase-1 result is independent of any prior state.
			// Iterations still reports every pivot spent in this call —
			// warm, crash and cold. The abandonment is counted, never
			// silent: Solution.ColdFallbacks flags it and FallbackVerdict
			// names the warm status that triggered it, so callers gating a
			// warm trajectory (the canonical scaling tests, the delta
			// sessions) see a warm-path regression as a counter, not as a
			// quiet 10× slowdown.
			coldFallbacks = 1
			warmStatus := status
			prevPivots := t.pivots - t.pivotsAtCall
			prevRefactors := t.refactors - t.refactorsAtCall
			prevKernel := t.kstats.minus(t.kstatsAtCall)
			prev := t
			t = nil
			if tc := newCrashRevised(p, prev); tc != nil {
				budget = maxPivots / 4
				tc.crashPrep()
				st := tc.dualIterate(&budget)
				if st == Optimal {
					st = tc.primalIterate(false, &budget)
				}
				if st == Optimal {
					st = tc.verifyOptimal(p, &budget)
				}
				if st == Optimal {
					t = tc
					status = Optimal
					fallbackVerdict = fmt.Sprintf("warm re-solve ended %v; recovered via crash basis", warmStatus)
				} else {
					prevPivots += tc.pivots
					prevRefactors += tc.refactors
					prevKernel.Accumulate(tc.kstats)
				}
			}
			if t == nil {
				budget = maxPivots
				t, status = coldSolve(p, &budget)
				if status == Optimal {
					status = t.verifyOptimal(p, &budget)
				}
				fallbackVerdict = fmt.Sprintf("warm re-solve ended %v; recovered via cold solve (status %v)", warmStatus, status)
			}
			// Accumulate rather than overwrite: coldSolve may itself have
			// discarded a dual-start attempt into pivotsAtCall already.
			t.pivotsAtCall -= prevPivots
			t.refactorsAtCall -= prevRefactors
			t.kstatsAtCall = t.kstatsAtCall.minus(prevKernel)
		}
	}
	sol := &Solution{
		Status:          status,
		Iterations:      t.pivots - t.pivotsAtCall,
		Refactors:       t.refactors - t.refactorsAtCall,
		Kernel:          t.kstats.minus(t.kstatsAtCall),
		ColdFallbacks:   coldFallbacks,
		FallbackVerdict: fallbackVerdict,
	}
	if status != Optimal {
		return sol, nil, nil
	}
	sol.X = t.structuralX()
	obj := 0.0
	for j, cj := range p.c {
		obj += cj * sol.X[j]
	}
	sol.Objective = obj
	return sol, &Basis{t: t}, nil
}
