// Package lp implements a dense bounded-variable simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {<=,>=,=} b_i   for each constraint i
//	            0 <= x_j <= u_j       (u_j = +Inf unless SetUpper is called)
//
// Two interchangeable engines are provided: a float64 engine (Solve) tuned
// with a Dantzig pivot rule falling back to Bland's rule for anti-cycling,
// and an exact rational engine over math/big.Rat (SolveExact) used by tests
// to validate the float engine and by callers that need exact optima on
// small programs.
//
// The float engine handles variable upper bounds natively (nonbasic
// variables may sit at either bound, and the ratio test admits bound
// flips), so callers never pay a constraint row for a box constraint;
// single-variable "x_j <= u" rows are also presolved into bounds. It further
// supports incremental re-solves: ResolveFrom keeps the pivoted tableau
// alive between calls, incorporates rows appended to the Problem since the
// previous solve, and recovers optimality with the dual simplex instead of
// re-running two-phase simplex from scratch. The pricing loop maintains a
// persistent reduced-cost row updated in place at each pivot (refreshed
// periodically against drift), so steady-state pivoting performs no
// allocations.
//
// # Warm-start contract
//
// A *Basis returned by ResolveFrom stays valid for the same Problem as long
// as only new constraint rows are appended (AddSparse/AddDense) between
// calls: the previous optimal basis remains dual feasible, and each new row
// enters with its own basic slack. Changing the objective between re-solves
// is also permitted (the final primal clean-up phase re-optimizes); adding
// variables or changing bounds invalidates the basis and must start cold.
//
// Go has no mature linear-programming library, so this package is built as
// a first-class substrate: the active-time LP of the paper (Section 3) is
// solved through it via Benders-style cut generation in package activetime.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x <= b
	GE                 // a·x >= b
	EQ                 // a·x == b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return "?"
}

// Problem is a linear program under construction. Variables are indexed
// 0..NumVars-1, bounded below by zero and above by per-variable upper
// bounds (+Inf by default; see SetUpper).
type Problem struct {
	numVars int
	c       []float64
	upper   []float64 // nil means all +Inf
	rows    [][]entry
	rel     []Relation
	b       []float64
}

type entry struct {
	col int
	val float64
}

// NewProblem returns a problem with n variables and zero objective.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, c: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the cost coefficient of variable j.
func (p *Problem) SetObjective(j int, cost float64) {
	p.c[j] = cost
}

// SetUpper sets the upper bound of variable j. The float engine enforces it
// natively (no constraint row); the exact engine materializes it as an
// explicit row. A negative bound makes the problem infeasible.
func (p *Problem) SetUpper(j int, u float64) {
	if p.upper == nil {
		p.upper = make([]float64, p.numVars)
		for k := range p.upper {
			p.upper[k] = math.Inf(1)
		}
	}
	p.upper[j] = u
}

// Upper returns the upper bound of variable j (+Inf if never set).
func (p *Problem) Upper(j int) float64 {
	if p.upper == nil {
		return math.Inf(1)
	}
	return p.upper[j]
}

// AddSparse adds the constraint sum_k coeffs[k].val * x[coeffs[k].col] rel rhs.
// Coefficient columns must be valid variable indices; duplicate columns are
// summed.
func (p *Problem) AddSparse(cols []int, vals []float64, rel Relation, rhs float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("lp: %d columns but %d values", len(cols), len(vals))
	}
	row := make([]entry, 0, len(cols))
	for k, c := range cols {
		if c < 0 || c >= p.numVars {
			return fmt.Errorf("lp: column %d out of range [0,%d)", c, p.numVars)
		}
		row = append(row, entry{c, vals[k]})
	}
	p.rows = append(p.rows, row)
	p.rel = append(p.rel, rel)
	p.b = append(p.b, rhs)
	return nil
}

// AddDense adds the constraint coeffs·x rel rhs, where len(coeffs) ==
// NumVars.
func (p *Problem) AddDense(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: dense row has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	var cols []int
	var vals []float64
	for j, v := range coeffs {
		if v != 0 {
			cols = append(cols, j)
			vals = append(vals, v)
		}
	}
	return p.AddSparse(cols, vals, rel, rhs)
}

// Solution is the result of a float64 solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations counts simplex basis changes (pivots) performed during the
	// call that produced this solution — two-phase pivots for a cold solve,
	// dual plus clean-up pivots for a warm re-solve. Bound flips and pricing
	// rounds that end without a pivot are not counted, so summing Iterations
	// across a cut-generation loop never double-counts work.
	Iterations int
}

const (
	eps          = 1e-9
	maxPivots    = 200000
	refreshEvery = 128 // pivots between full reduced-cost refreshes
)

// Basis is an opaque snapshot of the simplex working state, enabling warm
// re-solves via ResolveFrom. A Basis is tied to the Problem that produced
// it and is consumed (mutated in place) by the next ResolveFrom call.
type Basis struct {
	t *tableau
}

// Solve optimizes the problem with the float64 simplex engine from a cold
// start. A non-nil error indicates malformed input only; infeasibility and
// unboundedness are reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	sol, _, err := p.ResolveFrom(nil)
	return sol, err
}

// ResolveFrom optimizes the problem, warm-starting from prev when non-nil.
// With prev == nil it performs a cold two-phase bounded simplex solve. With
// a prev obtained from an earlier optimal solve of the same problem, rows
// appended since are incorporated into the live tableau and re-optimized
// with the dual simplex (each new row enters with its own basic slack, so
// the old basis stays dual feasible), followed by a primal clean-up pass
// that also absorbs objective changes. The returned Basis supports the next
// incremental call; it is nil when the solve did not end Optimal. See the
// package comment for the exact warm-start contract.
func (p *Problem) ResolveFrom(prev *Basis) (*Solution, *Basis, error) {
	if p.numVars == 0 {
		return nil, nil, errors.New("lp: problem has no variables")
	}
	if p.upper != nil {
		for _, u := range p.upper {
			if u < 0 {
				return &Solution{Status: Infeasible}, nil, nil
			}
		}
	}
	var t *tableau
	var status Status
	budget := maxPivots
	if prev == nil || prev.t == nil {
		t = newTableau(p)
		status = t.runTwoPhase(&budget)
	} else {
		t = prev.t
		if t.n != p.numVars {
			return nil, nil, fmt.Errorf("lp: basis has %d variables, problem has %d", t.n, p.numVars)
		}
		if t.rowsBuilt > len(p.rows) {
			return nil, nil, errors.New("lp: problem has fewer rows than the basis (rows were removed)")
		}
		// Changed bounds invalidate the basis (see the warm-start contract);
		// catch the misuse instead of returning a silently wrong optimum.
		for j := 0; j < t.n; j++ {
			want := math.Inf(1)
			if p.upper != nil {
				want = p.upper[j]
			}
			if t.probUpper[j] != want {
				return nil, nil, fmt.Errorf("lp: upper bound of variable %d changed since the basis was captured; re-solve cold", j)
			}
		}
		t.pivotsAtCall = t.pivots
		copy(t.cost[:t.n], p.c) // pick up objective changes since the snapshot
		t.appendProblemRows(p)
		status = t.dualIterate(&budget)
		if status == Optimal {
			status = t.primalIterate(false, &budget)
		}
	}
	sol := &Solution{Status: status, Iterations: t.pivots - t.pivotsAtCall}
	if status != Optimal {
		return sol, nil, nil
	}
	sol.X = t.structuralX()
	obj := 0.0
	for j, cj := range p.c {
		obj += cj * sol.X[j]
	}
	sol.Objective = obj
	return sol, &Basis{t: t}, nil
}

// tableau is the dense bounded-variable simplex working state for the float
// engine. Unlike a textbook tableau it carries no transformed RHS column:
// val holds the actual value of each row's basic variable and is updated
// directly at every pivot and bound flip, which keeps the bookkeeping
// correct when nonbasic variables rest at nonzero upper bounds.
type tableau struct {
	n         int // structural variables
	rowsBuilt int // Problem rows incorporated (including presolved-away ones)
	a         [][]float64
	val       []float64 // value of the basic variable of each row
	basis     []int
	active    []bool // rows still in play (redundant rows get disabled)

	cost      []float64 // phase-2 cost per column
	upper     []float64 // per-column upper bound (+Inf where unbounded)
	probUpper []float64 // the Problem's structural bounds as of construction
	//                     (upper may be tighter after singleton presolve)
	atUpper []bool // nonbasic column currently at its upper bound
	isArt   []bool // artificial columns (barred outside phase 1)
	inBasis []bool

	curCost []float64 // cost vector of the current phase
	red     []float64 // persistent reduced-cost row for curCost

	pivots       int // lifetime pivot count
	pivotsAtCall int // pivot count when the current ResolveFrom began
	sinceRefresh int
}

// newTableau builds the initial tableau. Singleton "a*x_j <= b" rows with
// a > 0, b >= 0 are presolved into the variable's upper bound (and vacuous
// singleton <= rows dropped) rather than materialized, so box constraints
// cost nothing regardless of how the caller expressed them.
func newTableau(p *Problem) *tableau {
	m, n := len(p.rows), p.numVars
	bound := make([]float64, n)
	if p.upper != nil {
		copy(bound, p.upper)
	} else {
		for j := range bound {
			bound[j] = math.Inf(1)
		}
	}
	type rowKind struct {
		rel  Relation
		flip bool
		skip bool
	}
	kinds := make([]rowKind, m)
	nSlack, nArt, nRows := 0, 0, 0
	for i := range p.rows {
		rel, b := p.rel[i], p.b[i]
		if rel == LE && b >= 0 {
			if col, coef, single := singleton(p.rows[i]); single {
				if coef > 0 {
					if u := b / coef; u < bound[col] {
						bound[col] = u
					}
				}
				// coef <= 0 (or empty row): vacuous given x >= 0, b >= 0.
				kinds[i].skip = true
				continue
			}
		}
		flip := b < 0
		if flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel: rel, flip: flip}
		nRows++
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	nTotal := n + nSlack + nArt
	colCap := nTotal + nTotal/4 + 16 // headroom for appended cut columns
	t := &tableau{
		n:         n,
		rowsBuilt: m,
		a:         make([][]float64, 0, nRows+16),
		val:       make([]float64, 0, nRows+16),
		basis:     make([]int, 0, nRows+16),
		active:    make([]bool, 0, nRows+16),
		cost:      make([]float64, nTotal, colCap),
		upper:     make([]float64, nTotal, colCap),
		atUpper:   make([]bool, nTotal, colCap),
		isArt:     make([]bool, nTotal, colCap),
		inBasis:   make([]bool, nTotal, colCap),
		curCost:   make([]float64, nTotal, colCap),
		red:       make([]float64, nTotal, colCap),
	}
	copy(t.cost, p.c)
	copy(t.upper, bound)
	for j := n; j < nTotal; j++ {
		t.upper[j] = math.Inf(1)
	}
	t.probUpper = make([]float64, n)
	if p.upper != nil {
		copy(t.probUpper, p.upper)
	} else {
		for j := range t.probUpper {
			t.probUpper[j] = math.Inf(1)
		}
	}
	slack, art := n, n+nSlack
	for i := range p.rows {
		if kinds[i].skip {
			continue
		}
		row := make([]float64, nTotal, colCap)
		sign := 1.0
		if kinds[i].flip {
			sign = -1.0
		}
		for _, e := range p.rows[i] {
			row[e.col] += sign * e.val
		}
		var bas int
		switch kinds[i].rel {
		case LE:
			row[slack] = 1
			bas = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.isArt[art] = true
			bas = art
			art++
		case EQ:
			row[art] = 1
			t.isArt[art] = true
			bas = art
			art++
		}
		t.a = append(t.a, row)
		t.val = append(t.val, sign*p.b[i])
		t.basis = append(t.basis, bas)
		t.active = append(t.active, true)
		t.inBasis[bas] = true
	}
	return t
}

// singleton reports whether the row references a single variable (after
// summing duplicate columns and ignoring zero coefficients); col is -1 for
// an empty row.
func singleton(row []entry) (col int, coef float64, ok bool) {
	col = -1
	for _, e := range row {
		if e.val == 0 {
			continue
		}
		if col >= 0 && e.col != col {
			return 0, 0, false
		}
		col = e.col
		coef += e.val
	}
	return col, coef, true
}

// setPhaseCost loads the working cost vector: artificial costs for phase 1,
// the problem objective for phase 2.
func (t *tableau) setPhaseCost(phase1 bool) {
	nTotal := len(t.cost)
	t.curCost = t.curCost[:nTotal]
	if phase1 {
		for j := range t.curCost {
			if t.isArt[j] {
				t.curCost[j] = 1
			} else {
				t.curCost[j] = 0
			}
		}
	} else {
		copy(t.curCost, t.cost)
	}
}

// refreshRed recomputes the reduced-cost row in place for curCost.
func (t *tableau) refreshRed() {
	t.red = t.red[:len(t.curCost)]
	copy(t.red, t.curCost)
	for i, arow := range t.a {
		if !t.active[i] {
			continue
		}
		cb := t.curCost[t.basis[i]]
		if cb == 0 {
			continue
		}
		red := t.red
		for j := range arow {
			red[j] -= cb * arow[j]
		}
	}
	t.sinceRefresh = 0
}

// pivotMatrix performs the elimination of a pivot on (row, col) over the
// coefficient matrix and the persistent reduced-cost row. Values (t.val) and
// basis bookkeeping are handled by the callers, which know the step length.
func (t *tableau) pivotMatrix(row, col int) {
	arow := t.a[row]
	inv := 1 / arow[col]
	for j := range arow {
		arow[j] *= inv
	}
	arow[col] = 1 // fight rounding
	for i, ai := range t.a {
		if i == row || !t.active[i] {
			continue
		}
		f := ai[col]
		if f == 0 {
			continue
		}
		for j := range ai {
			ai[j] -= f * arow[j]
		}
		ai[col] = 0
	}
	if f := t.red[col]; f != 0 {
		red := t.red
		for j := range arow {
			red[j] -= f * arow[j]
		}
		red[col] = 0
	}
	t.pivots++
	t.sinceRefresh++
}

// stepAndPivot moves the entering column col by delta in direction dir
// (+1 from its lower bound, -1 from its upper bound), updates all basic
// values, and swaps it into the basis at row; the leaving variable settles
// at its upper bound when toUpper is true, else at zero.
func (t *tableau) stepAndPivot(row, col int, dir, delta float64, toUpper bool) {
	if delta != 0 {
		for i := range t.a {
			if !t.active[i] || i == row {
				continue
			}
			if w := t.a[i][col]; w != 0 {
				t.val[i] -= dir * w * delta
			}
		}
	}
	enterVal := dir * delta
	if t.atUpper[col] {
		enterVal += t.upper[col]
	}
	leave := t.basis[row]
	t.inBasis[leave] = false
	t.atUpper[leave] = toUpper
	t.pivotMatrix(row, col)
	t.basis[row] = col
	t.inBasis[col] = true
	t.atUpper[col] = false
	if enterVal < 0 && enterVal > -1e-7 {
		enterVal = 0
	}
	t.val[row] = enterVal
}

// boundFlip moves nonbasic column col across its (finite) range to the
// opposite bound without a basis change.
func (t *tableau) boundFlip(col int, dir float64) {
	if u := t.upper[col]; u > 0 {
		for i := range t.a {
			if !t.active[i] {
				continue
			}
			if w := t.a[i][col]; w != 0 {
				t.val[i] -= dir * w * u
			}
		}
	}
	t.atUpper[col] = !t.atUpper[col]
}

// primalIterate runs bounded-variable primal simplex iterations with the
// current phase's cost vector until optimal, unbounded, or the pivot budget
// is exhausted. Outside phase 1, artificial columns may not enter.
func (t *tableau) primalIterate(phase1 bool, budget *int) Status {
	t.setPhaseCost(phase1)
	t.refreshRed()
	blandFrom := *budget / 2 // switch to Bland's rule for the second half
	for iter := 0; ; iter++ {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		if t.sinceRefresh >= refreshEvery {
			t.refreshRed()
		}
		red := t.red
		col := -1
		if iter < blandFrom {
			best := eps
			for j := range red {
				if t.inBasis[j] || (!phase1 && t.isArt[j]) {
					continue
				}
				score := -red[j]
				if t.atUpper[j] {
					score = red[j]
				}
				if score > best {
					best = score
					col = j
				}
			}
		} else {
			for j := range red {
				if t.inBasis[j] || (!phase1 && t.isArt[j]) {
					continue
				}
				if t.atUpper[j] {
					if red[j] > eps {
						col = j
						break
					}
				} else if red[j] < -eps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			// Never certify optimality against a stale reduced-cost row:
			// refresh and re-price once if any pivots happened since the
			// last full recompute (refreshRed zeroes sinceRefresh, so this
			// retries at most once per pivot).
			if t.sinceRefresh > 0 {
				t.refreshRed()
				continue
			}
			return Optimal
		}
		dir := 1.0
		if t.atUpper[col] {
			dir = -1.0
		}
		// Ratio test over basic bounds, capped by the entering variable's
		// own range (a bound flip).
		row := -1
		toUpper := false
		bestRatio := t.upper[col]
		for i := range t.a {
			if !t.active[i] {
				continue
			}
			w := dir * t.a[i][col]
			if w > eps {
				ratio := t.val[i] / w
				if ratio < 0 {
					ratio = 0
				}
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row]) {
					row, bestRatio, toUpper = i, ratio, false
				}
			} else if w < -eps {
				ub := t.upper[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ratio := (ub - t.val[i]) / -w
				if ratio < 0 {
					ratio = 0
				}
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row]) {
					row, bestRatio, toUpper = i, ratio, true
				}
			}
		}
		if row < 0 {
			if math.IsInf(bestRatio, 1) {
				return Unbounded
			}
			t.boundFlip(col, dir)
			continue
		}
		t.stepAndPivot(row, col, dir, bestRatio, toUpper)
	}
}

// dualIterate restores primal feasibility (basic values pushed outside
// their bounds by newly appended rows) while maintaining dual feasibility,
// using the bounded-variable dual simplex. It assumes the tableau was
// optimal before the rows were appended. A pivot may land the entering
// variable beyond its own finite bound; that surfaces as a fresh
// infeasibility repaired by a later iteration, which keeps each step's
// algebra simple at the cost of occasionally one extra pivot. Like the
// primal loop, it falls back from most-infeasible-row selection to
// lowest-index selection for the second half of the pivot budget as an
// anti-cycling safeguard on degenerate (delta = 0) sequences.
func (t *tableau) dualIterate(budget *int) Status {
	t.setPhaseCost(false)
	t.refreshRed()
	blandFrom := *budget / 2
	for iter := 0; ; iter++ {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		if t.sinceRefresh >= refreshEvery {
			t.refreshRed()
		}
		// Leaving: most infeasible basic variable (lowest-index infeasible
		// once in the Bland regime).
		row := -1
		worst := 1e-7
		above := false
		for i := range t.a {
			if !t.active[i] {
				continue
			}
			v := t.val[i]
			if -v > worst {
				worst, row, above = -v, i, false
				if iter >= blandFrom {
					break
				}
			}
			if ub := t.upper[t.basis[i]]; !math.IsInf(ub, 1) && v-ub > worst {
				worst, row, above = v-ub, i, true
				if iter >= blandFrom {
					break
				}
			}
		}
		if row < 0 {
			return Optimal
		}
		sign := 1.0
		if above {
			sign = -1.0
		}
		arow := t.a[row]
		red := t.red
		col := -1
		var colDir float64
		bestRatio := math.Inf(1)
		// Entering: minimum dual ratio; ties resolve to the lowest index
		// because only a strict improvement replaces the incumbent.
		for j := range arow {
			if t.inBasis[j] || t.isArt[j] {
				continue
			}
			w := sign * arow[j]
			if t.atUpper[j] {
				if w > eps {
					ratio := -red[j] / w
					if ratio < 0 {
						ratio = 0
					}
					if ratio < bestRatio-eps {
						col, bestRatio, colDir = j, ratio, -1
					}
				}
			} else if w < -eps {
				ratio := red[j] / -w
				if ratio < 0 {
					ratio = 0
				}
				if ratio < bestRatio-eps {
					col, bestRatio, colDir = j, ratio, 1
				}
			}
		}
		if col < 0 {
			return Infeasible
		}
		target := 0.0
		if above {
			target = t.upper[t.basis[row]]
		}
		delta := (t.val[row] - target) / (colDir * arow[col])
		if delta < 0 {
			delta = 0
		}
		t.stepAndPivot(row, col, colDir, delta, above)
	}
}

// runTwoPhase executes the cold two-phase solve.
func (t *tableau) runTwoPhase(budget *int) Status {
	hasArt := false
	for j := range t.isArt {
		if t.isArt[j] {
			hasArt = true
			break
		}
	}
	if hasArt {
		st := t.primalIterate(true, budget)
		if st != Optimal {
			return st
		}
		// Infeasible if any artificial remains basic at positive value.
		var artSum float64
		for i := range t.a {
			if t.active[i] && t.isArt[t.basis[i]] {
				artSum += t.val[i]
			}
		}
		if artSum > 1e-7 {
			return Infeasible
		}
		t.driveOutArtificials()
	}
	return t.primalIterate(false, budget)
}

// driveOutArtificials removes zero-valued artificials from the basis after
// phase 1 via degenerate swaps (the point does not move: the entering
// column keeps its current bound value); rows with no eligible entering
// column are redundant and get deactivated.
func (t *tableau) driveOutArtificials() {
	for i := range t.a {
		if !t.active[i] || !t.isArt[t.basis[i]] {
			continue
		}
		pivoted := false
		for j := range t.a[i] {
			if t.isArt[j] || t.inBasis[j] {
				continue
			}
			if w := t.a[i][j]; w > eps || w < -eps {
				leave := t.basis[i]
				t.inBasis[leave] = false
				t.atUpper[leave] = false
				enterVal := 0.0
				if t.atUpper[j] {
					enterVal = t.upper[j]
				}
				t.pivotMatrix(i, j)
				t.basis[i] = j
				t.inBasis[j] = true
				t.atUpper[j] = false
				t.val[i] = enterVal
				pivoted = true
				break
			}
		}
		if !pivoted {
			t.active[i] = false // redundant row
		}
	}
}

// growCols appends k fresh columns (zero coefficients everywhere, zero
// cost, +Inf bound, nonbasic at lower) to the live tableau, reusing slice
// capacity when available so repeated cut appends amortize.
func (t *tableau) growCols(k int) {
	old := len(t.cost)
	nt := old + k
	growF := func(s []float64, fill float64) []float64 {
		if cap(s) < nt {
			s2 := make([]float64, len(s), nt+nt/4+16)
			copy(s2, s)
			s = s2
		}
		s = s[:nt]
		for j := old; j < nt; j++ {
			s[j] = fill
		}
		return s
	}
	growB := func(s []bool) []bool {
		if cap(s) < nt {
			s2 := make([]bool, len(s), nt+nt/4+16)
			copy(s2, s)
			s = s2
		}
		s = s[:nt]
		for j := old; j < nt; j++ {
			s[j] = false
		}
		return s
	}
	for i := range t.a {
		t.a[i] = growF(t.a[i], 0)
	}
	t.cost = growF(t.cost, 0)
	t.upper = growF(t.upper, math.Inf(1))
	t.curCost = growF(t.curCost, 0)
	t.red = growF(t.red, 0)
	t.atUpper = growB(t.atUpper)
	t.isArt = growB(t.isArt)
	t.inBasis = growB(t.inBasis)
}

// appendProblemRows incorporates rows added to the problem since the
// tableau was last solved. Each row gets a fresh slack column that enters
// the basis immediately: LE rows as a·x + s = b, GE rows negated so the
// surplus keeps a +1 coefficient, EQ rows with a slack fixed to [0,0]. The
// new basic values are computed from the current structural point, so a
// violated cut simply surfaces as a bound-infeasible basic slack for the
// dual simplex to repair.
func (t *tableau) appendProblemRows(p *Problem) {
	if t.rowsBuilt == len(p.rows) {
		return
	}
	xs := t.structuralX()
	for r := t.rowsBuilt; r < len(p.rows); r++ {
		t.appendRow(p.rows[r], p.rel[r], p.b[r], xs)
	}
	t.rowsBuilt = len(p.rows)
}

func (t *tableau) appendRow(row []entry, rel Relation, b float64, xs []float64) {
	s := len(t.cost) // the new slack column
	t.growCols(1)
	if rel == EQ {
		t.upper[s] = 0
	}
	nt := len(t.cost)
	dense := make([]float64, nt, nt+nt/4+16)
	sign := 1.0
	if rel == GE {
		sign = -1.0
	}
	ax := 0.0
	for _, e := range row {
		dense[e.col] += sign * e.val
		ax += e.val * xs[e.col]
	}
	dense[s] = 1
	var sval float64
	if rel == GE {
		sval = ax - b
	} else {
		sval = b - ax
	}
	// Express the row in the current dictionary: eliminate basic columns.
	for i, ai := range t.a {
		if !t.active[i] {
			continue
		}
		f := dense[t.basis[i]]
		if f == 0 {
			continue
		}
		for j := range ai {
			dense[j] -= f * ai[j]
		}
		dense[t.basis[i]] = 0
	}
	dense[s] = 1 // untouched by elimination; restate against drift
	t.a = append(t.a, dense)
	t.val = append(t.val, sval)
	t.basis = append(t.basis, s)
	t.active = append(t.active, true)
	t.inBasis[s] = true
}

// structuralX extracts the structural variable values from the basis and
// bound states.
func (t *tableau) structuralX() []float64 {
	x := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		if t.atUpper[j] && !t.inBasis[j] {
			x[j] = t.upper[j]
		}
	}
	for i := range t.a {
		if t.active[i] && t.basis[i] < t.n {
			x[t.basis[i]] = t.val[i]
		}
	}
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	return x
}
