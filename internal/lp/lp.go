// Package lp implements a sparse revised-simplex solver for bounded-variable
// linear programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {<=,>=,=} b_i   for each constraint i
//	            0 <= x_j <= u_j       (u_j = +Inf unless SetUpper is called)
//
// Two interchangeable engines are provided: a float64 engine (Solve) tuned
// with a Dantzig pivot rule falling back to Bland's rule for anti-cycling,
// and an exact rational engine over math/big.Rat (SolveExact) used by tests
// to validate the float engine and by callers that need exact optima on
// small programs.
//
// # Sparse representation
//
// The float engine is a revised simplex: constraint rows are kept verbatim
// in compressed sparse form (a per-row column/value list, mirrored by a
// per-column view for FTRAN), logical columns are signed unit vectors that
// are never materialized, and all pivoting state lives in an explicit basis
// inverse of size m×m (m = constraint rows). Nothing of size n×m is ever
// stored or scanned: entering columns are formed by FTRAN against the
// column's sparse entries, and the pivot row is priced by sweeping only the
// sparse rows that meet the leaving row's inverse row. For cut-generation
// masters — few dense-ish rows over very many variables, the shape of the
// active-time LP1 at large horizons — per-pivot work is O(m² + nnz) instead
// of the dense engine's O(m·n).
//
// The engine handles variable upper bounds natively (nonbasic variables may
// sit at either bound, and the ratio test admits bound flips), so callers
// never pay a constraint row for a box constraint; single-variable
// "x_j <= u" rows are also presolved into bounds. It supports incremental
// re-solves: ResolveFrom keeps the factorized state alive between calls,
// incorporates rows appended to the Problem since the previous solve by a
// bordered extension of the basis inverse, and recovers optimality with the
// dual simplex instead of re-running two-phase simplex from scratch. The
// pricing loop maintains a persistent reduced-cost row updated in place at
// each pivot (refreshed periodically against drift), so steady-state
// pivoting performs no allocations.
//
// # Warm-start contract
//
// A *Basis returned by ResolveFrom stays valid for the same Problem as long
// as only new constraint rows are appended (AddSparse/AddDense) between
// calls: the previous optimal basis remains dual feasible, and each new row
// enters with its own basic slack. Changing the objective between re-solves
// is also permitted (the final primal clean-up phase re-optimizes). A warm
// re-solve falls back to a cold two-phase solve only when the caller passes
// a nil Basis — which is also what callers must do after any solve that did
// not end Optimal, since non-optimal solves return no Basis. Adding
// variables or changing bounds invalidates the basis: ResolveFrom rejects
// such calls loudly instead of silently solving against stale state, and
// the caller re-solves cold.
//
// # Numerical safeguards
//
// Optimality is never certified against a stale reduced-cost row (a full
// refresh precedes the claim), and dual infeasibility is never certified
// from drifted state: before reporting it, the engine refactorizes the
// basis inverse from scratch (Gauss-Jordan with partial pivoting), resyncs
// every basic value, and re-tries. The dense predecessor lacked that
// safeguard and mis-reported feasible masters as infeasible past
// T ≈ 1000 slots.
//
// Go has no mature linear-programming library, so this package is built as
// a first-class substrate: the active-time LP of the paper (Section 3) is
// solved through it via Benders-style cut generation in package activetime.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x <= b
	GE                 // a·x >= b
	EQ                 // a·x == b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return "?"
}

// Problem is a linear program under construction. Variables are indexed
// 0..NumVars-1, bounded below by zero and above by per-variable upper
// bounds (+Inf by default; see SetUpper).
type Problem struct {
	numVars int
	c       []float64
	upper   []float64 // nil means all +Inf
	rows    [][]entry
	rel     []Relation
	b       []float64
}

type entry struct {
	col int
	val float64
}

// NewProblem returns a problem with n variables and zero objective.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, c: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the cost coefficient of variable j.
func (p *Problem) SetObjective(j int, cost float64) {
	p.c[j] = cost
}

// SetUpper sets the upper bound of variable j. The float engine enforces it
// natively (no constraint row); the exact engine materializes it as an
// explicit row. A negative bound makes the problem infeasible.
func (p *Problem) SetUpper(j int, u float64) {
	if p.upper == nil {
		p.upper = make([]float64, p.numVars)
		for k := range p.upper {
			p.upper[k] = math.Inf(1)
		}
	}
	p.upper[j] = u
}

// Upper returns the upper bound of variable j (+Inf if never set).
func (p *Problem) Upper(j int) float64 {
	if p.upper == nil {
		return math.Inf(1)
	}
	return p.upper[j]
}

// AddSparse adds the constraint sum_k coeffs[k].val * x[coeffs[k].col] rel rhs.
// Coefficient columns must be valid variable indices; duplicate columns are
// summed.
func (p *Problem) AddSparse(cols []int, vals []float64, rel Relation, rhs float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("lp: %d columns but %d values", len(cols), len(vals))
	}
	row := make([]entry, 0, len(cols))
	for k, c := range cols {
		if c < 0 || c >= p.numVars {
			return fmt.Errorf("lp: column %d out of range [0,%d)", c, p.numVars)
		}
		row = append(row, entry{c, vals[k]})
	}
	p.rows = append(p.rows, row)
	p.rel = append(p.rel, rel)
	p.b = append(p.b, rhs)
	return nil
}

// AddDense adds the constraint coeffs·x rel rhs, where len(coeffs) ==
// NumVars.
func (p *Problem) AddDense(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: dense row has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	var cols []int
	var vals []float64
	for j, v := range coeffs {
		if v != 0 {
			cols = append(cols, j)
			vals = append(vals, v)
		}
	}
	return p.AddSparse(cols, vals, rel, rhs)
}

// Solution is the result of a float64 solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations counts simplex basis changes (pivots) performed during the
	// call that produced this solution — two-phase pivots for a cold solve,
	// dual plus clean-up pivots for a warm re-solve. Bound flips and pricing
	// rounds that end without a pivot are not counted, so summing Iterations
	// across a cut-generation loop never double-counts work.
	Iterations int
}

const (
	eps          = 1e-9
	maxPivots    = 200000
	refreshEvery = 128 // pivots between full reduced-cost refreshes
)

// Basis is an opaque snapshot of the simplex working state, enabling warm
// re-solves via ResolveFrom. A Basis is tied to the Problem that produced
// it and is consumed (mutated in place) by the next ResolveFrom call.
type Basis struct {
	t *revised
}

// Solve optimizes the problem with the float64 simplex engine from a cold
// start. A non-nil error indicates malformed input only; infeasibility and
// unboundedness are reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	sol, _, err := p.ResolveFrom(nil)
	return sol, err
}

// ResolveFrom optimizes the problem, warm-starting from prev when non-nil.
// With prev == nil it performs a cold two-phase bounded simplex solve. With
// a prev obtained from an earlier optimal solve of the same problem, rows
// appended since are incorporated into the live tableau and re-optimized
// with the dual simplex (each new row enters with its own basic slack, so
// the old basis stays dual feasible), followed by a primal clean-up pass
// that also absorbs objective changes. The returned Basis supports the next
// incremental call; it is nil when the solve did not end Optimal. See the
// package comment for the exact warm-start contract.
func (p *Problem) ResolveFrom(prev *Basis) (*Solution, *Basis, error) {
	if p.numVars == 0 {
		return nil, nil, errors.New("lp: problem has no variables")
	}
	if p.upper != nil {
		for _, u := range p.upper {
			if u < 0 {
				return &Solution{Status: Infeasible}, nil, nil
			}
		}
	}
	var t *revised
	var status Status
	budget := maxPivots
	if prev == nil || prev.t == nil {
		t = newRevised(p)
		status = t.runTwoPhase(&budget)
		if status == Optimal {
			status = t.verifyOptimal(p, &budget)
		}
	} else {
		t = prev.t
		if t.n != p.numVars {
			return nil, nil, fmt.Errorf("lp: basis has %d variables, problem has %d", t.n, p.numVars)
		}
		if t.rowsBuilt > len(p.rows) {
			return nil, nil, errors.New("lp: problem has fewer rows than the basis (rows were removed)")
		}
		// Changed bounds invalidate the basis (see the warm-start contract);
		// catch the misuse instead of returning a silently wrong optimum.
		for j := 0; j < t.n; j++ {
			want := math.Inf(1)
			if p.upper != nil {
				want = p.upper[j]
			}
			if t.probUpper[j] != want {
				return nil, nil, fmt.Errorf("lp: upper bound of variable %d changed since the basis was captured; re-solve cold", j)
			}
		}
		t.pivotsAtCall = t.pivots
		copy(t.cost[:t.n], p.c) // pick up objective changes since the snapshot
		t.appendProblemRows(p)
		// A warm repair of freshly appended rows needs tens of pivots; give
		// it a budget proportional to the row count rather than the global
		// ceiling, so a degenerate stall falls back to the (verified) cold
		// solve quickly instead of grinding the dual for the full budget.
		if wb := 4*len(p.rows) + 400; wb < budget {
			budget = wb
		}
		status = t.dualIterate(&budget)
		if status == Optimal {
			status = t.primalIterate(false, &budget)
		}
		if status == Optimal {
			status = t.verifyOptimal(p, &budget)
		}
		if status != Optimal {
			// The warm path certifies only optima: a warm claim of
			// infeasibility (or an exhausted pivot budget, or an optimum
			// that failed verification) may be an artifact of the inherited
			// basis, so it is re-derived by a cold two-phase solve of the
			// full problem, whose phase-1 verdict is independent of any
			// prior state. Iterations still reports every pivot spent in
			// this call, warm and cold.
			warmPivots := t.pivots - t.pivotsAtCall
			t = newRevised(p)
			budget = maxPivots
			status = t.runTwoPhase(&budget)
			if status == Optimal {
				status = t.verifyOptimal(p, &budget)
			}
			t.pivotsAtCall = -warmPivots
		}
	}
	sol := &Solution{Status: status, Iterations: t.pivots - t.pivotsAtCall}
	if status != Optimal {
		return sol, nil, nil
	}
	sol.X = t.structuralX()
	obj := 0.0
	for j, cj := range p.c {
		obj += cj * sol.X[j]
	}
	sol.Objective = obj
	return sol, &Basis{t: t}, nil
}

