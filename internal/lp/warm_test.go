package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randCoverProblem builds a random bounded covering LP of the shape the
// active-time Benders master takes: n variables with unit-ish costs and
// upper bounds, no initial rows beyond a few seed covers.
func randCoverProblem(rng *rand.Rand, n int) *Problem {
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjective(j, float64(1+rng.Intn(4)))
		p.SetUpper(j, float64(1+rng.Intn(3)))
	}
	return p
}

// randCut returns a feasible covering cut: nonnegative integer
// coefficients with a right-hand side below the maximum attainable value,
// quantized to quarters so the exact engine sees dyadic data.
func randCut(rng *rand.Rand, p *Problem) (cols []int, vals []float64, rhs float64) {
	n := p.NumVars()
	attainable := 0.0
	for j := 0; j < n; j++ {
		v := float64(rng.Intn(4))
		if v == 0 {
			continue
		}
		cols = append(cols, j)
		vals = append(vals, v)
		attainable += v * p.Upper(j)
	}
	if len(cols) == 0 {
		cols = append(cols, rng.Intn(n))
		vals = append(vals, 1)
		attainable = p.Upper(cols[0])
	}
	rhs = math.Floor(rng.Float64()*attainable*4) / 4
	if rhs > attainable {
		rhs = attainable
	}
	return cols, vals, rhs
}

// TestWarmResolveMatchesExactOnCutSequences is the property suite required
// by the warm-start contract: over randomized cut sequences, after every
// AddSparse the warm-started float engine (ResolveFrom with the previous
// basis) must agree with a from-scratch exact rational solve to 1e-6. It
// exercises >= 100 seeded instances.
func TestWarmResolveMatchesExactOnCutSequences(t *testing.T) {
	instances := 120
	for seed := 0; seed < instances; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		n := 2 + rng.Intn(5)
		p := randCoverProblem(rng, n)
		var basis *Basis
		cuts := 3 + rng.Intn(6)
		for c := 0; c < cuts; c++ {
			cols, vals, rhs := randCut(rng, p)
			if err := p.AddSparse(cols, vals, GE, rhs); err != nil {
				t.Fatalf("seed %d: AddSparse: %v", seed, err)
			}
			warm, nextBasis, err := p.ResolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d cut %d: ResolveFrom: %v", seed, c, err)
			}
			basis = nextBasis
			exact, err := SolveExact(p)
			if err != nil {
				t.Fatalf("seed %d cut %d: SolveExact: %v", seed, c, err)
			}
			if warm.Status != exact.Status {
				t.Fatalf("seed %d cut %d: warm status %v, exact %v",
					seed, c, warm.Status, exact.Status)
			}
			if warm.Status != Optimal {
				// Infeasible cut set: both engines agree; nothing to warm-start
				// from next round.
				basis = nil
				continue
			}
			want, _ := exact.Objective.Float64()
			if math.Abs(warm.Objective-want) > 1e-6 {
				t.Fatalf("seed %d cut %d: warm objective %v, exact %v",
					seed, c, warm.Objective, want)
			}
		}
	}
}

// TestWarmResolveMatchesColdSolve checks that the warm path lands on the
// same optimum as a cold Solve of the identical problem, including after an
// objective change between re-solves (allowed by the contract).
func TestWarmResolveMatchesColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		p := randCoverProblem(rng, n)
		var basis *Basis
		for c := 0; c < 5; c++ {
			cols, vals, rhs := randCut(rng, p)
			if err := p.AddSparse(cols, vals, GE, rhs); err != nil {
				t.Fatal(err)
			}
			if c == 3 {
				// Objective change mid-sequence.
				p.SetObjective(rng.Intn(n), float64(1+rng.Intn(6)))
			}
			warm, nextBasis, err := p.ResolveFrom(basis)
			if err != nil {
				t.Fatal(err)
			}
			basis = nextBasis
			cold, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d cut %d: warm %v cold %v", trial, c, warm.Status, cold.Status)
			}
			if warm.Status != Optimal {
				basis = nil
				continue
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
				t.Fatalf("trial %d cut %d: warm obj %v cold %v",
					trial, c, warm.Objective, cold.Objective)
			}
		}
	}
}

// TestWarmResolveEquality exercises the EQ append path (slack fixed to
// [0,0]) through the dual simplex.
func TestWarmResolveEquality(t *testing.T) {
	// min x0 + x1, x0 + x1 >= 2 -> obj 2; then force x0 - x1 == 1.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetUpper(0, 5)
	p.SetUpper(1, 5)
	if err := p.AddDense([]float64{1, 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v %v", err, sol.Status)
	}
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("cold objective %v, want 2", sol.Objective)
	}
	if err := p.AddDense([]float64{1, -1}, EQ, 1); err != nil {
		t.Fatal(err)
	}
	sol, _, err = p.ResolveFrom(basis)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("warm: %v %v", err, sol.Status)
	}
	// Optimum now x = (1.5, 0.5).
	if math.Abs(sol.Objective-2) > 1e-9 ||
		math.Abs(sol.X[0]-1.5) > 1e-9 || math.Abs(sol.X[1]-0.5) > 1e-9 {
		t.Fatalf("warm solution %v obj %v, want (1.5,0.5) obj 2", sol.X, sol.Objective)
	}
}

// TestWarmResolveInfeasibleCut checks that a cut no point satisfies turns
// the master infeasible through the dual simplex rather than wedging it.
func TestWarmResolveInfeasibleCut(t *testing.T) {
	p := NewProblem(2)
	for j := 0; j < 2; j++ {
		p.SetObjective(j, 1)
		p.SetUpper(j, 1)
	}
	if err := p.AddDense([]float64{1, 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v %v", err, sol.Status)
	}
	if err := p.AddDense([]float64{1, 1}, GE, 3); err != nil { // max attainable is 2
		t.Fatal(err)
	}
	sol, next, err := p.ResolveFrom(basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	if next != nil {
		t.Fatal("non-optimal solve returned a reusable basis")
	}
}

// TestSetUpperBoundsEnforced checks native bounds against the equivalent
// explicit-row formulation.
func TestSetUpperBoundsEnforced(t *testing.T) {
	// max x (min -x) with x <= 2.5 expressed as a native bound.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.SetUpper(0, 2.5)
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", err, sol.Status)
	}
	if math.Abs(sol.X[0]-2.5) > 1e-9 {
		t.Fatalf("x = %v, want 2.5", sol.X[0])
	}
	// Negative upper bound: infeasible.
	q := NewProblem(1)
	q.SetObjective(0, 1)
	q.SetUpper(0, -1)
	sol, err = Solve(q)
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("negative bound: %v %v, want infeasible", err, sol.Status)
	}
}

// TestSingletonRowPresolve checks that "a*x <= b" rows become bounds (same
// optimum, fewer tableau rows is unobservable here, but the vacuous-row and
// duplicate-column paths must stay correct).
func TestSingletonRowPresolve(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -2)
	check(t, p.AddSparse([]int{0, 0}, []float64{1, 1}, LE, 4)) // 2*x0 <= 4
	check(t, p.AddSparse([]int{1}, []float64{-1}, LE, 7))      // vacuous
	check(t, p.AddSparse([]int{0, 1}, []float64{1, 1}, LE, 3)) // real row
	check(t, p.AddSparse([]int{1}, []float64{2}, LE, 5))       // x1 <= 2.5
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Opt: x0 = 2 (bound), x1 = 1 (row): obj -8.
	if math.Abs(sol.Objective-(-8)) > 1e-6 {
		t.Fatalf("objective %v, want -8 (x=%v)", sol.Objective, sol.X)
	}
}

// TestIterationsCountsPivotsOnly guards the Iterations contract: a solve
// that prices once and finds the origin optimal reports zero pivots, and
// warm re-solves report only their own incremental pivots.
func TestIterationsCountsPivotsOnly(t *testing.T) {
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetObjective(j, 1)
		p.SetUpper(j, 1)
	}
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", err, sol.Status)
	}
	if sol.Iterations != 0 {
		t.Fatalf("origin-optimal solve reports %d pivots, want 0", sol.Iterations)
	}
	if err := p.AddDense([]float64{1, 1, 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol2, _, err := p.ResolveFrom(basis)
	if err != nil || sol2.Status != Optimal {
		t.Fatalf("%v %v", err, sol2.Status)
	}
	if sol2.Iterations <= 0 || sol2.Iterations > 3 {
		t.Fatalf("warm resolve reports %d pivots, want a small positive count", sol2.Iterations)
	}
}

// TestWarmResolveAllocBound locks in the zero-allocation pricing loop: a
// warm re-solve allocates only the appended row, the grown columns, and the
// Solution — never per pivot. The bound is deliberately loose against
// runtime noise but far below any per-pivot regime.
func TestWarmResolveAllocBound(t *testing.T) {
	const T = 90
	p := NewProblem(T)
	for j := 0; j < T; j++ {
		p.SetObjective(j, 1)
		p.SetUpper(j, 1)
	}
	var cols []int
	var vals []float64
	for j := 0; j < T; j += 2 {
		cols = append(cols, j)
		vals = append(vals, float64(1+j%3))
	}
	if err := p.AddSparse(cols, vals, GE, 20); err != nil {
		t.Fatal(err)
	}
	_, basis, err := p.ResolveFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := 0
	allocs := testing.AllocsPerRun(20, func() {
		var cs []int
		var vs []float64
		for j := r % 3; j < T; j += 3 {
			cs = append(cs, j)
			vs = append(vs, float64(1+j%2))
		}
		r++
		if err := p.AddSparse(cs, vs, GE, float64(10+r%5)); err != nil {
			t.Fatal(err)
		}
		sol, nb, err := p.ResolveFrom(basis)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("%v %v", err, sol.Status)
		}
		basis = nb
	})
	// Each run: cut slices (~12 from append growth + AddSparse row), one
	// appended tableau row, occasional growCols reallocation, Solution + X.
	// Dozens of dual/primal pivots happen per run; a per-pivot allocation
	// would blow far past this bound.
	if allocs > 40 {
		t.Errorf("warm re-solve allocates %.0f objects per cut round; pricing loop is supposed to be allocation-free", allocs)
	}
}

// TestWarmResolveRejectsBoundChange: changing a bound between re-solves is
// outside the warm-start contract and must fail loudly, not return a
// solution against the stale bound.
func TestWarmResolveRejectsBoundChange(t *testing.T) {
	p := NewProblem(2)
	for j := 0; j < 2; j++ {
		p.SetObjective(j, 1)
		p.SetUpper(j, 1)
	}
	if err := p.AddDense([]float64{1, 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v %v", err, sol.Status)
	}
	p.SetUpper(0, 3)
	if _, _, err := p.ResolveFrom(basis); err == nil {
		t.Fatal("bound change accepted by warm re-solve")
	}
	// A cold solve picks up the new bound.
	sol, _, err = p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold after bound change: %v %v", err, sol.Status)
	}
}
