package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestRemoveRowsPreservesOptimum drives randomized cut sequences with
// interleaved removals of slack rows and checks every warm re-solve against
// a from-scratch exact rational solve of the reduced problem.
func TestRemoveRowsPreservesOptimum(t *testing.T) {
	for seed := 0; seed < 120; seed++ {
		rng := rand.New(rand.NewSource(int64(9000 + seed)))
		n := 2 + rng.Intn(5)
		p := randCoverProblem(rng, n)
		var basis *Basis
		var lastX []float64
		for c := 0; c < 8; c++ {
			cols, vals, rhs := randCut(rng, p)
			if err := p.AddSparse(cols, vals, GE, rhs); err != nil {
				t.Fatal(err)
			}
			warm, nextBasis, err := p.ResolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d cut %d: ResolveFrom: %v", seed, c, err)
			}
			basis = nextBasis
			if warm.Status != Optimal {
				basis = nil
				lastX = nil
				continue
			}
			lastX = warm.X
			// Drop every strictly slack row with probability 1/2.
			if c >= 2 && rng.Intn(2) == 0 && basis != nil {
				var drop []int
				for i := 0; i < p.NumConstraints(); i++ {
					if rowSlack(p, i, lastX) > 1e-7 && rng.Intn(2) == 0 {
						drop = append(drop, i)
					}
				}
				if len(drop) > 0 {
					if err := p.RemoveRows(drop, basis); err != nil {
						t.Fatalf("seed %d cut %d: RemoveRows(%v): %v", seed, c, drop, err)
					}
				}
			}
			// The reduced problem re-solves warm to the exact optimum.
			warm2, nb2, err := p.ResolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d cut %d: post-remove ResolveFrom: %v", seed, c, err)
			}
			basis = nb2
			exact, err := SolveExact(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm2.Status != exact.Status {
				t.Fatalf("seed %d cut %d: warm status %v, exact %v", seed, c, warm2.Status, exact.Status)
			}
			if warm2.Status != Optimal {
				basis = nil
				continue
			}
			want, _ := exact.Objective.Float64()
			if math.Abs(warm2.Objective-want) > 1e-6 {
				t.Fatalf("seed %d cut %d: warm objective %v after removal, exact %v",
					seed, c, warm2.Objective, want)
			}
		}
	}
}

// TestRemoveRowsNilBasisInvalidates pins the epoch guard: removing rows
// with a nil basis then appending the same number of rows leaves the row
// COUNT unchanged, so only the removal epoch can tell the old basis is
// stale — warm re-solves (float and exact) must reject it loudly instead
// of solving against the wrong row set.
func TestRemoveRowsNilBasisInvalidates(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(2)
		for j := 0; j < 2; j++ {
			p.SetObjective(j, 1)
			p.SetUpper(j, 2)
		}
		if err := p.AddDense([]float64{1, 1}, GE, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.AddDense([]float64{2, 1}, GE, 1); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := build()
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v %v", err, sol.Status)
	}
	if err := p.RemoveRows([]int{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDense([]float64{1, 2}, GE, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.ResolveFrom(basis); err == nil {
		t.Fatal("stale basis accepted after nil-basis removal (row counts match)")
	}
	// Same contract for the exact engine.
	q := build()
	esol, ebasis, err := q.ResolveExactFrom(nil)
	if err != nil || esol.Status != Optimal {
		t.Fatalf("exact cold: %v %v", err, esol.Status)
	}
	if err := q.RemoveRows([]int{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDense([]float64{1, 2}, GE, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.ResolveExactFrom(ebasis); err == nil {
		t.Fatal("stale exact basis accepted after nil-basis removal")
	}
}

// rowSlack computes a·x − b for a GE row (the amount by which the point
// over-satisfies it).
func rowSlack(p *Problem, i int, x []float64) float64 {
	ax := 0.0
	for _, e := range p.rows[i] {
		ax += e.val * x[e.col]
	}
	return ax - p.b[i]
}

// TestRemoveRowsRejectsTightRow pins the contract: removing a binding row
// through the basis fails loudly and mutates nothing.
func TestRemoveRowsRejectsTightRow(t *testing.T) {
	p := NewProblem(2)
	for j := 0; j < 2; j++ {
		p.SetObjective(j, 1)
		p.SetUpper(j, 1)
	}
	if err := p.AddDense([]float64{1, 1}, GE, 1); err != nil { // will be tight
		t.Fatal(err)
	}
	if err := p.AddDense([]float64{2, 1}, GE, 1); err != nil { // slack at opt
		t.Fatal(err)
	}
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", err, sol.Status)
	}
	if err := p.RemoveRows([]int{0}, basis); err == nil {
		t.Fatal("tight row removed without error")
	}
	if p.NumConstraints() != 2 {
		t.Fatalf("failed removal mutated the problem: %d rows", p.NumConstraints())
	}
	// The refused removal left the state solvable.
	sol2, _, err := p.ResolveFrom(basis)
	if err != nil || sol2.Status != Optimal || math.Abs(sol2.Objective-sol.Objective) > 1e-9 {
		t.Fatalf("state damaged by refused removal: %v %v obj %v", err, sol2.Status, sol2.Objective)
	}
}

// TestRemoveRowsThenAppend exercises the registry's real cycle: remove slack
// cuts, append new ones, re-solve warm, repeatedly.
func TestRemoveRowsThenAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4)
		p := randCoverProblem(rng, n)
		var basis *Basis
		live := 0
		for c := 0; c < 10; c++ {
			cols, vals, rhs := randCut(rng, p)
			if err := p.AddSparse(cols, vals, GE, rhs); err != nil {
				t.Fatal(err)
			}
			live++
			sol, nb, err := p.ResolveFrom(basis)
			if err != nil {
				t.Fatal(err)
			}
			basis = nb
			if sol.Status != Optimal {
				basis = nil
				continue
			}
			var drop []int
			for i := 0; i < p.NumConstraints(); i++ {
				if rowSlack(p, i, sol.X) > 1e-6 {
					drop = append(drop, i)
					break // one per round, like a conservative purge
				}
			}
			if len(drop) > 0 {
				if err := p.RemoveRows(drop, basis); err != nil {
					t.Fatalf("trial %d cut %d: %v", trial, c, err)
				}
				live--
			}
			cold, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			warm, nb2, err := p.ResolveFrom(basis)
			if err != nil {
				t.Fatal(err)
			}
			basis = nb2
			if warm.Status != cold.Status {
				t.Fatalf("trial %d cut %d: warm %v cold %v", trial, c, warm.Status, cold.Status)
			}
			if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
				t.Fatalf("trial %d cut %d: warm obj %v cold %v", trial, c, warm.Objective, cold.Objective)
			}
			if warm.Status != Optimal {
				basis = nil
			}
		}
		if live != p.NumConstraints() {
			t.Fatalf("trial %d: row bookkeeping drifted: %d live vs %d rows", trial, live, p.NumConstraints())
		}
	}
}
