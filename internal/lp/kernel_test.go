package lp

import (
	"math/rand"
	"slices"
	"testing"
)

// expandRuns is the test-side inverse of compressRuns.
func expandRuns(runs []alphaRun) (cols []int32, vals []float64) {
	for _, rn := range runs {
		for k := int32(0); k < rn.ln; k++ {
			cols = append(cols, rn.lo+k)
			vals = append(vals, rn.val)
		}
	}
	return
}

// TestCompressRunsRoundTrip: the run-compressed mirror of a cut row must
// expand back to exactly the original (cols, vals) pattern — the scatter
// kernels accumulate in run order, so any drift here would silently change
// the float operations the pivot-row kernel performs.
func TestCompressRunsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// Build a sorted, duplicate-free column pattern with plateaus of
		// repeated values — the shape cutFor emits (few distinct levels
		// over long index ranges), plus random gaps and value changes.
		var cols []int32
		var vals []float64
		c := int32(rng.Intn(3))
		v := float64(1 + rng.Intn(4))
		for len(cols) < 1+rng.Intn(64) {
			cols = append(cols, c)
			vals = append(vals, v)
			c += int32(1 + rng.Intn(3)) // gap of 0..2 missing columns
			if rng.Intn(3) == 0 {
				v = float64(1 + rng.Intn(4))
			}
		}
		runs := compressRuns(cols, vals)
		gotCols, gotVals := expandRuns(runs)
		if !slices.Equal(gotCols, cols) || !slices.Equal(gotVals, vals) {
			t.Fatalf("trial %d: round trip mismatch\ncols %v -> %v\nvals %v -> %v",
				trial, cols, gotCols, vals, gotVals)
		}
		// Runs must be maximal: adjacent runs either leave an index gap or
		// change value, otherwise the compression wastes scatter dispatch.
		for i := 1; i < len(runs); i++ {
			prev, cur := runs[i-1], runs[i]
			if prev.lo+prev.ln == cur.lo && prev.val == cur.val {
				t.Fatalf("trial %d: runs %d,%d not maximal: %+v %+v", trial, i-1, i, prev, cur)
			}
		}
	}
	if got := compressRuns(nil, nil); len(got) != 0 {
		t.Fatalf("compressRuns(nil) = %v, want empty", got)
	}
}

// TestSweepBitsSortedEmission: sweepBits must emit exactly the set bits in
// ascending order and leave the bitset all-zero — the invariant the
// hypersparse kernels rely on to reuse the arrays across solves without
// clearing them, and the reason bit emission can replace comparison sorts.
func TestSweepBitsSortedEmission(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(500)
		bs := make([]uint64, (m+63)/64)
		want := map[int32]bool{}
		var list []int32
		for i := 0; i < rng.Intn(64); i++ {
			s := int32(rng.Intn(m))
			if !want[s] {
				want[s] = true
				list = append(list, s)
			}
			bs[s>>6] |= 1 << (uint32(s) & 63)
		}
		out := sweepBits(bs, make([]int32, 0, len(want)))
		if len(out) != len(want) {
			t.Fatalf("trial %d: %d bits emitted, want %d", trial, len(out), len(want))
		}
		for i, s := range out {
			if !want[s] {
				t.Fatalf("trial %d: emitted %d never set", trial, s)
			}
			if i > 0 && out[i-1] >= s {
				t.Fatalf("trial %d: emission not strictly ascending at %d: %v", trial, i, out)
			}
		}
		for w, word := range bs {
			if word != 0 {
				t.Fatalf("trial %d: word %d left nonzero after sweep", trial, w)
			}
		}
		// setBitList re-marks after an intermediate sweep; clearBitList
		// restores all-zero on the fallback paths. Round-trip both.
		setBitList(bs, out)
		clearBitList(bs, list)
		for w, word := range bs {
			if word != 0 {
				t.Fatalf("trial %d: word %d nonzero after set+clear round trip", trial, w)
			}
		}
	}
}
