package lp

import (
	"math"
	"math/rand"
	"testing"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSolveBasic(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0. Opt at (1,3): -7.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -2)
	check(t, p.AddDense([]float64{1, 1}, LE, 4))
	check(t, p.AddDense([]float64{1, 0}, LE, 2))
	check(t, p.AddDense([]float64{0, 1}, LE, 3))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-7)) > 1e-6 {
		t.Errorf("objective = %v, want -7", sol.Objective)
	}
	if math.Abs(sol.X[0]-1) > 1e-6 || math.Abs(sol.X[1]-3) > 1e-6 {
		t.Errorf("x = %v, want (1,3)", sol.X)
	}
}

func TestSolveGEAndEQ(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x - y == 2. Opt at (6,4): 24.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	check(t, p.AddDense([]float64{1, 1}, GE, 10))
	check(t, p.AddDense([]float64{1, -1}, EQ, 2))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-24) > 1e-6 {
		t.Errorf("objective = %v, want 24", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	check(t, p.AddDense([]float64{1}, GE, 5))
	check(t, p.AddDense([]float64{1}, LE, 3))
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -1)
	check(t, p.AddDense([]float64{0, 1}, LE, 1))
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(1)
	p.SetObjective(0, 1)
	check(t, p.AddDense([]float64{-1}, LE, -3))
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate LP; must terminate and find the optimum.
	p := NewProblem(4)
	for j, c := range []float64{-0.75, 150, -0.02, 6} {
		p.SetObjective(j, c)
	}
	check(t, p.AddDense([]float64{0.25, -60, -0.04, 9}, LE, 0))
	check(t, p.AddDense([]float64{0.5, -90, -0.02, 3}, LE, 0))
	check(t, p.AddDense([]float64{0, 0, 1, 0}, LE, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Errorf("objective = %v, want -0.05 (Beale's example)", sol.Objective)
	}
}

func TestExactMatchesFloatBasic(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -2)
	check(t, p.AddDense([]float64{1, 1}, LE, 4))
	check(t, p.AddDense([]float64{1, 0}, LE, 2))
	check(t, p.AddDense([]float64{0, 1}, LE, 3))
	fs := mustSolve(t, p)
	es, err := SolveExact(p)
	if err != nil {
		t.Fatalf("SolveExact: %v", err)
	}
	if es.Status != Optimal {
		t.Fatalf("exact status = %v", es.Status)
	}
	obj, _ := es.Objective.Float64()
	if math.Abs(obj-fs.Objective) > 1e-7 {
		t.Errorf("exact obj %v != float obj %v", obj, fs.Objective)
	}
}

// TestExactMatchesFloatRandom cross-validates the two engines on random
// feasible covering LPs (the shape the active-time Benders master takes).
func TestExactMatchesFloatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, float64(1+rng.Intn(5)))
			check(t, p.AddDense(unitRow(n, j), LE, 1)) // x_j <= 1
		}
		rows := 1 + rng.Intn(4)
		for r := 0; r < rows; r++ {
			coeffs := make([]float64, n)
			tot := 0.0
			for j := range coeffs {
				coeffs[j] = float64(rng.Intn(4))
				tot += coeffs[j]
			}
			if tot == 0 {
				coeffs[0] = 1
				tot = 1
			}
			rhs := 1 + rng.Float64()*(tot-1)*0.9
			if rhs > tot {
				rhs = tot
			}
			check(t, p.AddDense(coeffs, GE, math.Floor(rhs*4)/4))
		}
		fs := mustSolve(t, p)
		es, err := SolveExact(p)
		if err != nil {
			t.Fatalf("SolveExact: %v", err)
		}
		if fs.Status != es.Status {
			t.Fatalf("trial %d: status float=%v exact=%v", trial, fs.Status, es.Status)
		}
		if fs.Status != Optimal {
			continue
		}
		obj, _ := es.Objective.Float64()
		if math.Abs(obj-fs.Objective) > 1e-6 {
			t.Errorf("trial %d: exact obj %v != float obj %v", trial, obj, fs.Objective)
		}
	}
}

func unitRow(n, j int) []float64 {
	row := make([]float64, n)
	row[j] = 1
	return row
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddSparseValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.AddSparse([]int{5}, []float64{1}, LE, 1); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := p.AddSparse([]int{0}, []float64{1, 2}, LE, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := p.AddSparse([]int{0, 0}, []float64{1, 2}, LE, 5); err != nil {
		t.Errorf("duplicate columns rejected: %v", err)
	}
	// Duplicates must sum: min x0 s.t. 3*x0 >= 6 -> 2.
	p2 := NewProblem(1)
	p2.SetObjective(0, 1)
	check(t, p2.AddSparse([]int{0, 0}, []float64{1, 2}, GE, 6))
	sol := mustSolve(t, p2)
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestSolveTrivialAtOrigin(t *testing.T) {
	// All-positive costs and only <= constraints: optimum is x = 0.
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetObjective(j, float64(j+1))
	}
	check(t, p.AddDense([]float64{1, 1, 1}, LE, 10))
	sol := mustSolve(t, p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Errorf("got %v obj=%v, want optimal 0", sol.Status, sol.Objective)
	}
}

func TestSolveEqualityOnlySystem(t *testing.T) {
	// x + y == 4, x - y == 2 has the unique solution (3,1).
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	check(t, p.AddDense([]float64{1, 1}, EQ, 4))
	check(t, p.AddDense([]float64{1, -1}, EQ, 2))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[0]-3) > 1e-7 || math.Abs(sol.X[1]-1) > 1e-7 {
		t.Errorf("x = %v, want (3,1)", sol.X)
	}
}

func TestSolveRedundantRows(t *testing.T) {
	// The same equality twice: phase 1 must discard the redundant row
	// rather than declare infeasibility.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	check(t, p.AddDense([]float64{1, 1}, EQ, 3))
	check(t, p.AddDense([]float64{1, 1}, EQ, 3))
	check(t, p.AddDense([]float64{2, 2}, EQ, 6))
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective) > 1e-9 {
		t.Errorf("got %v obj=%v, want optimal 0 (x=(0,3))", sol.Status, sol.Objective)
	}
}

func TestExactRejectsNonFinite(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, math.Inf(1))
	check(t, p.AddDense([]float64{1}, GE, 1))
	if _, err := SolveExact(p); err == nil {
		t.Error("infinite coefficient accepted by exact engine")
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Relation strings wrong")
	}
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration limit",
	} {
		if s.String() != want {
			t.Errorf("Status %d = %q, want %q", s, s.String(), want)
		}
	}
}
