package lp

import (
	"math"
	"math/rand"
	"testing"
)

// denseMatrix is a test-only basisMatrix over an explicit dense matrix
// (column p of the basis = column p of the matrix).
type denseMatrix struct {
	a [][]float64 // a[r][p]
}

func (d *denseMatrix) basisColNNZ(p int) int {
	n := 0
	for r := range d.a {
		if d.a[r][p] != 0 {
			n++
		}
	}
	return n
}

func (d *denseMatrix) scatterBasisColumn(p int, x []float64, patt []int32) []int32 {
	for r := range d.a {
		if v := d.a[r][p]; v != 0 {
			if x[r] == 0 {
				patt = append(patt, int32(r))
			}
			x[r] += v
		}
	}
	return patt
}

// randBasis builds a random sparse nonsingular-ish matrix: a signed
// permutation diagonal (guaranteeing nonsingularity) plus random sparse
// noise entries, the texture of a covering-master basis.
func randBasis(rng *rand.Rand, m int, extra int) *denseMatrix {
	a := make([][]float64, m)
	for r := range a {
		a[r] = make([]float64, m)
	}
	perm := rng.Perm(m)
	for p, r := range perm {
		s := 1.0
		if rng.Intn(2) == 0 {
			s = -1.0
		}
		a[r][p] = s * (0.5 + rng.Float64())
	}
	for k := 0; k < extra; k++ {
		a[rng.Intn(m)][rng.Intn(m)] += float64(rng.Intn(5)) - 2
	}
	return &denseMatrix{a: a}
}

// solveDense solves a·x = b by Gauss-Jordan with partial pivoting (the
// reference the factorization is checked against). Returns false if
// numerically singular.
func solveDense(a [][]float64, b []float64) ([]float64, bool) {
	m := len(a)
	w := make([][]float64, m)
	for i := range w {
		w[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for k := 0; k < m; k++ {
		piv, best := -1, 1e-12
		for i := k; i < m; i++ {
			if v := math.Abs(w[i][k]); v > best {
				piv, best = i, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		w[k], w[piv] = w[piv], w[k]
		f := 1 / w[k][k]
		for j := k; j <= m; j++ {
			w[k][j] *= f
		}
		for i := 0; i < m; i++ {
			if i == k || w[i][k] == 0 {
				continue
			}
			g := w[i][k]
			for j := k; j <= m; j++ {
				w[i][j] -= g * w[k][j]
			}
		}
	}
	x := make([]float64, m)
	for i := 0; i < m; i++ {
		x[i] = w[i][m]
	}
	return x, true
}

func matVec(a [][]float64, x []float64) []float64 {
	m := len(a)
	out := make([]float64, m)
	for r := 0; r < m; r++ {
		for p := 0; p < m; p++ {
			out[r] += a[r][p] * x[p]
		}
	}
	return out
}

func matTVec(a [][]float64, x []float64) []float64 {
	m := len(a)
	out := make([]float64, m)
	for p := 0; p < m; p++ {
		for r := 0; r < m; r++ {
			out[p] += a[r][p] * x[r]
		}
	}
	return out
}

// TestFactorSolvesMatchDense checks FTRAN and BTRAN against dense
// Gauss-Jordan solves on random sparse bases across sizes and densities.
func TestFactorSolvesMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var f factor
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(60)
		d := randBasis(rng, m, rng.Intn(3*m))
		if !f.refactorize(m, d) {
			// Extra noise may genuinely cancel the matrix singular; the
			// dense reference must agree.
			if _, ok := solveDense(d.a, make([]float64, m)); ok {
				t.Fatalf("trial %d: refactorize reported singular on a solvable basis", trial)
			}
			continue
		}
		for probe := 0; probe < 3; probe++ {
			b := make([]float64, m)
			for i := range b {
				if rng.Intn(3) == 0 {
					b[i] = rng.NormFloat64()
				}
			}
			// FTRAN: solve B·x = b.
			got := append([]float64{}, b...)
			f.ftran(got)
			back := matVec(d.a, got)
			for i := range back {
				if math.Abs(back[i]-b[i]) > 1e-8 {
					t.Fatalf("trial %d m=%d: FTRAN residual %g at row %d", trial, m, back[i]-b[i], i)
				}
			}
			// BTRAN: solve Bᵀ·y = b.
			got = append(got[:0], b...)
			f.btran(got)
			back = matTVec(d.a, got)
			for i := range back {
				if math.Abs(back[i]-b[i]) > 1e-8 {
					t.Fatalf("trial %d m=%d: BTRAN residual %g at position %d", trial, m, back[i]-b[i], i)
				}
			}
		}
	}
}

// TestFactorEtaUpdates drives a sequence of simulated basis changes through
// pushEta and checks FTRAN/BTRAN against dense solves of the mutated basis
// after every change. This exercises the PFI ablation representation; the
// default Forrest–Tomlin update path is covered by TestFactorFTUpdates.
func TestFactorEtaUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var f factor
	f.rule = FactorizationPFI
	for trial := 0; trial < 25; trial++ {
		m := 5 + rng.Intn(40)
		d := randBasis(rng, m, m)
		if !f.refactorize(m, d) {
			continue
		}
		for step := 0; step < 30; step++ {
			// A random entering column replaces a random basis position.
			col := make([]float64, m)
			for i := range col {
				if rng.Intn(4) == 0 {
					col[i] = rng.NormFloat64()
				}
			}
			col[rng.Intn(m)] += 1 + rng.Float64() // keep it nontrivial
			w := append([]float64{}, col...)
			f.ftran(w)
			pos := rng.Intn(m)
			if math.Abs(w[pos]) < 1e-6 {
				continue // would be an illegal simplex pivot; skip
			}
			f.pushEta(pos, w)
			for r := 0; r < m; r++ {
				d.a[r][pos] = col[r]
			}
			b := make([]float64, m)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want, ok := solveDense(d.a, b)
			if !ok {
				t.Fatalf("trial %d step %d: dense reference singular", trial, step)
			}
			got := append([]float64{}, b...)
			f.ftran(got)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
					t.Fatalf("trial %d step %d: FTRAN[%d] = %g, dense %g", trial, step, i, got[i], want[i])
				}
			}
			// BTRAN against the transposed dense system.
			at := make([][]float64, m)
			for r := range at {
				at[r] = make([]float64, m)
				for p := 0; p < m; p++ {
					at[r][p] = d.a[p][r]
				}
			}
			wantT, ok := solveDense(at, b)
			if !ok {
				t.Fatalf("trial %d step %d: transposed dense reference singular", trial, step)
			}
			got = append(got[:0], b...)
			f.btran(got)
			for i := range got {
				if math.Abs(got[i]-wantT[i]) > 1e-6*(1+math.Abs(wantT[i])) {
					t.Fatalf("trial %d step %d: BTRAN[%d] = %g, dense %g", trial, step, i, got[i], wantT[i])
				}
			}
		}
	}
}

// TestFactorFTUpdates is TestFactorEtaUpdates against the default
// Forrest–Tomlin representation: each basis change goes through the
// entering-class FTRAN (which stashes the spike) and ftUpdate, with a
// stability-refused update falling back to a from-scratch refactorization
// exactly as the engine does. Sizes straddle hyperMinDim so both the dense
// and hypersparse capture/solve paths run.
func TestFactorFTUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var f factor
	forced := 0
	for trial := 0; trial < 25; trial++ {
		m := 5 + rng.Intn(140)
		d := randBasis(rng, m, m)
		if !f.refactorize(m, d) {
			continue
		}
		for step := 0; step < 30; step++ {
			// A random entering column replaces a random basis position.
			col := make([]float64, m)
			var ind []int32
			for i := range col {
				if rng.Intn(4) == 0 {
					col[i] = rng.NormFloat64()
					ind = append(ind, int32(i))
				}
			}
			r := rng.Intn(m)
			if col[r] == 0 {
				ind = append(ind, int32(r))
			}
			col[r] += 1 + rng.Float64() // keep it nontrivial
			w := make([]float64, m)
			for _, i := range ind {
				w[i] = col[i]
			}
			wInd, sparse := f.ftranSparse(w, ind, nil, ftranEnter)
			_ = sparse
			_ = wInd
			pos := rng.Intn(m)
			if math.Abs(w[pos]) < 1e-6 {
				f.spikeOK = false // discard the unconsumed spike
				continue          // would be an illegal simplex pivot; skip
			}
			for r := 0; r < m; r++ {
				d.a[r][pos] = col[r]
			}
			if !f.ftUpdate(pos) {
				forced++
				if !f.refactorize(m, d) {
					t.Fatalf("trial %d step %d: post-pivot refactorize singular", trial, step)
				}
			}
			b := make([]float64, m)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want, ok := solveDense(d.a, b)
			if !ok {
				t.Fatalf("trial %d step %d: dense reference singular", trial, step)
			}
			got := append([]float64{}, b...)
			f.ftran(got)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
					t.Fatalf("trial %d step %d m=%d: FTRAN[%d] = %g, dense %g", trial, step, m, i, got[i], want[i])
				}
			}
			// BTRAN against the transposed dense system.
			at := make([][]float64, m)
			for r := range at {
				at[r] = make([]float64, m)
				for p := 0; p < m; p++ {
					at[r][p] = d.a[p][r]
				}
			}
			wantT, ok := solveDense(at, b)
			if !ok {
				t.Fatalf("trial %d step %d: transposed dense reference singular", trial, step)
			}
			got = append(got[:0], b...)
			f.btran(got)
			for i := range got {
				if math.Abs(got[i]-wantT[i]) > 1e-6*(1+math.Abs(wantT[i])) {
					t.Fatalf("trial %d step %d m=%d: BTRAN[%d] = %g, dense %g", trial, step, m, i, got[i], wantT[i])
				}
			}
		}
	}
	// The tolerance trips occasionally on this corpus, but an update path
	// that refuses every pivot would silently degrade to per-pivot
	// refactorization and hide real update bugs.
	if forced > 100 {
		t.Fatalf("forced refactorizations dominate: %d updates refused", forced)
	}
}

// TestFactorizationRuleEngine exercises the factorization switch through the
// full engine: random covering LPs solved under the Forrest–Tomlin default
// and the PFI ablation must reach the same optimum, and the kernel counters
// must show each rule doing the work its representation implies — FT solves
// traverse zero eta-file entries (the pass the representation eliminates)
// while accumulating in-place updates, and PFI solves do the opposite.
func TestFactorizationRuleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var ftUpdates, ftEtaOps, pfiUpdates, pfiEtaOps int
	for trial := 0; trial < 25; trial++ {
		n := 12 + rng.Intn(10)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, float64(1+rng.Intn(9)))
			check(t, p.AddDense(unitRow(n, j), LE, 1))
		}
		rows := 8 + rng.Intn(8)
		for r := 0; r < rows; r++ {
			coeffs := make([]float64, n)
			tot := 0.0
			for j := range coeffs {
				if rng.Intn(3) > 0 {
					coeffs[j] = float64(1 + rng.Intn(4))
					tot += coeffs[j]
				}
			}
			if tot == 0 {
				coeffs[0] = 1
				tot = 1
			}
			check(t, p.AddDense(coeffs, GE, math.Floor(1+rng.Float64()*(tot-1)*0.8)))
		}
		p.SetFactorization(FactorizationFT)
		ft := mustSolve(t, p)
		p.SetFactorization(FactorizationPFI)
		pfi := mustSolve(t, p)
		if ft.Status != pfi.Status {
			t.Fatalf("trial %d: status FT=%v PFI=%v", trial, ft.Status, pfi.Status)
		}
		if ft.Status != Optimal {
			continue
		}
		if math.Abs(ft.Objective-pfi.Objective) > 1e-7 {
			t.Errorf("trial %d: FT obj %.12f, PFI obj %.12f", trial, ft.Objective, pfi.Objective)
		}
		if ft.Kernel.EtaDotOps != 0 {
			t.Errorf("trial %d: FT solve traversed %d eta-file entries; want 0", trial, ft.Kernel.EtaDotOps)
		}
		if pfi.Kernel.FTUpdates != 0 || pfi.Kernel.FTSpikeNNZ != 0 {
			t.Errorf("trial %d: PFI solve reports %d FT updates (%d spike nnz); want 0",
				trial, pfi.Kernel.FTUpdates, pfi.Kernel.FTSpikeNNZ)
		}
		ftUpdates += ft.Kernel.FTUpdates
		ftEtaOps += ft.Kernel.EtaDotOps
		pfiUpdates += pfi.Kernel.FTUpdates
		pfiEtaOps += pfi.Kernel.EtaDotOps
	}
	if ftUpdates == 0 {
		t.Error("FT rule applied zero in-place updates across the corpus")
	}
	if pfiEtaOps == 0 {
		t.Error("PFI rule traversed zero eta-file entries across the corpus")
	}
	t.Logf("FT: %d updates, %d eta ops; PFI: %d updates, %d eta ops",
		ftUpdates, ftEtaOps, pfiUpdates, pfiEtaOps)
}
