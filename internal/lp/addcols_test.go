package lp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestAddColumnsWarmMatchesExact is the property suite for the column-append
// half of the warm-start contract: over randomized interleavings of
// AddColumns (shaped with costs, bounds) and covering cuts that reference
// both old and new columns, every warm ResolveFrom must agree with a
// from-scratch exact rational solve to 1e-6.
func TestAddColumnsWarmMatchesExact(t *testing.T) {
	instances := 120
	for seed := 0; seed < instances; seed++ {
		rng := rand.New(rand.NewSource(int64(7000 + seed)))
		n := 2 + rng.Intn(4)
		p := randCoverProblem(rng, n)
		var basis *Basis
		steps := 3 + rng.Intn(6)
		for c := 0; c < steps; c++ {
			if rng.Intn(2) == 0 {
				k := 1 + rng.Intn(2)
				j0 := p.AddColumns(k)
				for j := j0; j < j0+k; j++ {
					p.SetObjective(j, float64(1+rng.Intn(4)))
					p.SetUpper(j, float64(1+rng.Intn(3)))
				}
			}
			cols, vals, rhs := randCut(rng, p)
			if err := p.AddSparse(cols, vals, GE, rhs); err != nil {
				t.Fatalf("seed %d: AddSparse: %v", seed, err)
			}
			warm, nextBasis, err := p.ResolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d step %d: ResolveFrom: %v", seed, c, err)
			}
			basis = nextBasis
			exact, err := SolveExact(p)
			if err != nil {
				t.Fatalf("seed %d step %d: SolveExact: %v", seed, c, err)
			}
			if warm.Status != exact.Status {
				t.Fatalf("seed %d step %d: warm status %v, exact %v",
					seed, c, warm.Status, exact.Status)
			}
			if warm.Status != Optimal {
				basis = nil
				continue
			}
			exObj, _ := exact.Objective.Float64()
			if math.Abs(warm.Objective-exObj) > 1e-6 {
				t.Fatalf("seed %d step %d: warm objective %.9f, exact %.9f",
					seed, c, warm.Objective, exObj)
			}
		}
	}
}

// TestAddColumnsPricedIntoLiveBasis checks the splice stays warm: appending
// columns that the optimum wants (negative cost, finite bound) must be
// absorbed by the warm repair without abandoning the basis, and a column
// the optimum does not want must stay at zero.
func TestAddColumnsPricedIntoLiveBasis(t *testing.T) {
	// min x0 s.t. x0 >= 2. Opt 2.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	check(t, p.AddSparse([]int{0}, []float64{1}, GE, 2))
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold solve: %v status %v", err, sol.Status)
	}
	// A cheaper substitute column in the same covering row: the re-solve
	// must move the cover onto it. New cut row ties them: x0 + x1 >= 2 with
	// c1 = 0.25 bounded by 1 -> opt = 1*0.25 + 1*1... the original row only
	// covers x0, so opt stays 2 on row 0; add the new column into a fresh
	// row system instead: x1 enters only the new row x0 + 4*x1 >= 6.
	j1 := p.AddColumns(1)
	if j1 != 1 {
		t.Fatalf("AddColumns returned %d, want 1", j1)
	}
	p.SetObjective(j1, 0.5)
	p.SetUpper(j1, 3)
	check(t, p.AddSparse([]int{0, j1}, []float64{1, 4}, GE, 6))
	sol2, basis2, err := p.ResolveFrom(basis)
	if err != nil {
		t.Fatalf("warm ResolveFrom after AddColumns: %v", err)
	}
	if sol2.Status != Optimal {
		t.Fatalf("warm status %v, want optimal", sol2.Status)
	}
	// x0 = 2 satisfies row 0; row 1 needs x0 + 4 x1 >= 6 -> x1 = 1 at cost
	// 0.5 beats raising x0 by 4 at cost 4. Opt = 2 + 0.5.
	if math.Abs(sol2.Objective-2.5) > 1e-6 {
		t.Errorf("objective after splice = %.9f, want 2.5", sol2.Objective)
	}
	if math.Abs(sol2.X[0]-2) > 1e-6 || math.Abs(sol2.X[1]-1) > 1e-6 {
		t.Errorf("x after splice = %v, want (2, 1)", sol2.X)
	}
	if sol2.ColdFallbacks != 0 {
		t.Errorf("warm splice fell back cold: %s", sol2.FallbackVerdict)
	}
	if basis2 == nil {
		t.Fatal("warm splice returned no basis")
	}
}

// TestAddColumnsBoundChangeStillRejected pins the contract boundary:
// shaping a new column before its first re-solve is part of the splice,
// but changing a bound the basis has already seen stays a loud error.
func TestAddColumnsBoundChangeStillRejected(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	check(t, p.AddSparse([]int{0}, []float64{1}, GE, 1))
	_, basis, err := p.ResolveFrom(nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	j1 := p.AddColumns(1)
	p.SetUpper(j1, 2) // shaping the fresh column: allowed
	if _, basis, err = p.ResolveFrom(basis); err != nil {
		t.Fatalf("resolve after shaping new column: %v", err)
	}
	p.SetUpper(j1, 3) // now the basis has seen j1's bound: rejected
	if _, _, err = p.ResolveFrom(basis); err == nil {
		t.Fatal("bound change on a seen column was not rejected")
	}
}

// TestColdFallbackCountedAndVerdictLogged forces the warm path to abandon
// its basis — a warm dual repair can never certify infeasibility, so a
// contradictory appended cut always ends in the verified cold fallback —
// and checks the abandonment is counted with a verdict, not silent.
func TestColdFallbackCountedAndVerdictLogged(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetUpper(0, 1)
	p.SetUpper(1, 1)
	check(t, p.AddSparse([]int{0, 1}, []float64{1, 1}, GE, 1))
	sol, basis, err := p.ResolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold solve: %v status %v", err, sol.Status)
	}
	if sol.ColdFallbacks != 0 || sol.FallbackVerdict != "" {
		t.Fatalf("cold solve reported a fallback: %d %q", sol.ColdFallbacks, sol.FallbackVerdict)
	}
	// x0 + x1 >= 3 with both bounded by 1: infeasible.
	check(t, p.AddSparse([]int{0, 1}, []float64{1, 1}, GE, 3))
	sol2, _, err := p.ResolveFrom(basis)
	if err != nil {
		t.Fatalf("warm ResolveFrom: %v", err)
	}
	if sol2.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol2.Status)
	}
	if sol2.ColdFallbacks != 1 {
		t.Fatalf("ColdFallbacks = %d, want 1 (warm infeasibility claims must recover cold)", sol2.ColdFallbacks)
	}
	if !strings.Contains(sol2.FallbackVerdict, "infeasible") {
		t.Errorf("FallbackVerdict %q does not name the triggering verdict", sol2.FallbackVerdict)
	}
}
