package lp

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

// RatSolution is the result of an exact rational solve.
type RatSolution struct {
	Status     Status
	X          []*big.Rat
	Objective  *big.Rat
	Iterations int
}

// Float64s returns the solution vector converted to float64.
func (s *RatSolution) Float64s() []float64 {
	out := make([]float64, len(s.X))
	for i, x := range s.X {
		out[i], _ = x.Float64()
	}
	return out
}

// SolveExact optimizes the problem in exact rational arithmetic using
// Bland's rule (guaranteed termination). Input float64 coefficients are
// converted exactly via big.Rat.SetFloat64, so integral and dyadic data stay
// exact. Variable upper bounds set with SetUpper are materialized as
// explicit "x_j <= u" rows (the rational engine has no bounded-variable
// pivoting; it exists for validation, not speed). Intended for small
// problems and for validating Solve.
func SolveExact(p *Problem) (*RatSolution, error) {
	sol, _, err := p.ResolveExactFrom(nil)
	return sol, err
}

// RatBasis is the persistent working state of the exact rational engine,
// enabling warm re-solves via ResolveExactFrom. Like the float engine's
// Basis it is tied to the Problem that produced it and is consumed by the
// next call.
type RatBasis struct {
	t         *ratTableau
	rowsBuilt int       // Problem rows incorporated into the tableau
	epoch     int       // Problem.removeEpoch at capture; removals invalidate
	upper     []float64 // bound snapshot; bound changes invalidate the basis
}

// ResolveExactFrom optimizes the problem exactly, warm-starting from prev
// when non-nil: the previous round's optimal rational dictionary is reused
// as the starting basis, rows appended since (LE or GE — the shapes Benders
// cut generation produces) are eliminated against it and repaired with the
// exact dual simplex under Bland's rule, and a final barred primal pass
// certifies optimality. The warm-start contract is narrower than
// ResolveFrom's: only row appends between calls — no bound changes and,
// unlike the float engine, no objective changes. A warm solve that cannot
// finish (EQ append, pivot budget) falls back to a cold run of the full
// problem. The returned RatBasis is nil when the solve did not end Optimal.
func (p *Problem) ResolveExactFrom(prev *RatBasis) (*RatSolution, *RatBasis, error) {
	if p.numVars == 0 {
		return nil, nil, errors.New("lp: problem has no variables")
	}
	warmSpent := 0
	if prev != nil && prev.t != nil {
		if prev.t.n != p.numVars {
			return nil, nil, fmt.Errorf("lp: exact basis has %d variables, problem has %d", prev.t.n, p.numVars)
		}
		if prev.rowsBuilt > len(p.rows) {
			return nil, nil, errors.New("lp: problem has fewer rows than the exact basis (rows were removed)")
		}
		if prev.epoch != p.removeEpoch {
			return nil, nil, errors.New("lp: rows were removed since the exact basis was captured; re-solve cold")
		}
		if j, changed := p.upperChanged(prev.upper); changed {
			return nil, nil, fmt.Errorf("lp: upper bound of variable %d changed since the exact basis was captured; re-solve cold", j)
		}
		sol, ok, spent, err := p.resolveExactWarm(prev)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			if sol.Status != Optimal {
				return sol, nil, nil
			}
			prev.rowsBuilt = len(p.rows)
			return sol, prev, nil
		}
		// Fall through to a cold solve; the wasted warm pivots are carried
		// into its Iterations so effort reports never hide a failed warm
		// attempt.
		warmSpent = spent
	}
	q := boundsAsRows(p)
	t, err := newRatTableau(q)
	if err != nil {
		return nil, nil, err
	}
	status, iters := t.run()
	sol := &RatSolution{Status: status, Iterations: warmSpent + iters}
	if status != Optimal {
		return sol, nil, nil
	}
	if err := t.fillSolution(p, sol); err != nil {
		return nil, nil, err
	}
	upper := make([]float64, p.numVars)
	for j := range upper {
		upper[j] = math.Inf(1)
	}
	if p.upper != nil {
		copy(upper, p.upper)
	}
	return sol, &RatBasis{t: t, rowsBuilt: len(p.rows), epoch: p.removeEpoch, upper: upper}, nil
}

// resolveExactWarm incorporates the rows appended since prev was captured
// and re-optimizes with the exact dual simplex. ok is false when the warm
// path cannot finish (unsupported append shape, pivot budget); spent then
// reports the pivots it wasted so the caller's cold fallback can account
// for them.
func (p *Problem) resolveExactWarm(prev *RatBasis) (sol *RatSolution, ok bool, spent int, err error) {
	t := prev.t
	for r := prev.rowsBuilt; r < len(p.rows); r++ {
		if p.rel[r] == EQ {
			return nil, false, 0, nil // only the covering shapes warm-start
		}
		if err := t.appendRow(p.rows[r], p.rel[r], p.b[r]); err != nil {
			return nil, false, 0, nil
		}
	}
	budget := maxPivots
	status := t.dualIterate(t.cost, t.isBarred, &budget)
	if status == Optimal {
		status = t.iterate(t.cost, t.isBarred, &budget)
	}
	iters := maxPivots - budget
	if status == IterLimit {
		return nil, false, iters, nil
	}
	sol = &RatSolution{Status: status, Iterations: iters}
	if status != Optimal {
		return sol, true, iters, nil
	}
	if err := t.fillSolution(p, sol); err != nil {
		return nil, false, iters, err
	}
	return sol, true, iters, nil
}

// fillSolution extracts the primal point and objective for the original
// problem p from the tableau.
func (t *ratTableau) fillSolution(p *Problem, sol *RatSolution) error {
	sol.X = t.primal()
	obj := new(big.Rat)
	for j := range p.c {
		if p.c[j] == 0 {
			continue
		}
		cj, ok := new(big.Rat).SetString(floatRat(p.c[j]))
		if !ok {
			return errors.New("lp: bad objective coefficient")
		}
		obj.Add(obj, new(big.Rat).Mul(cj, sol.X[j]))
	}
	sol.Objective = obj
	return nil
}

// boundsAsRows returns a shallow copy of p with every finite upper bound
// appended as an explicit LE row, leaving p untouched. Problems without
// finite bounds are returned as-is.
func boundsAsRows(p *Problem) *Problem {
	finite := 0
	for _, u := range p.upper {
		if !math.IsInf(u, 1) {
			finite++
		}
	}
	if finite == 0 {
		return p
	}
	q := &Problem{
		numVars: p.numVars,
		c:       p.c,
		rows:    make([][]entry, len(p.rows), len(p.rows)+finite),
		rel:     make([]Relation, len(p.rel), len(p.rel)+finite),
		b:       make([]float64, len(p.b), len(p.b)+finite),
	}
	copy(q.rows, p.rows)
	copy(q.rel, p.rel)
	copy(q.b, p.b)
	for j, u := range p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		q.rows = append(q.rows, []entry{{j, 1}})
		q.rel = append(q.rel, LE)
		q.b = append(q.b, u)
	}
	return q
}

func floatRat(f float64) string {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		return "0"
	}
	return r.RatString()
}

func rat(f float64) (*big.Rat, error) {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		return nil, errors.New("lp: non-finite coefficient")
	}
	return r, nil
}

type ratTableau struct {
	m, n     int
	nTotal   int
	firstArt int // first artificial column of the initial build
	artEnd   int // one past the last artificial; appended logicals follow
	a        [][]*big.Rat
	rhs      []*big.Rat
	basis    []int
	cost     []*big.Rat
	active   []bool
}

// isBarred reports whether column j is a phase-1 artificial, which may
// never re-enter the basis in phase 2. Logical columns appended by warm
// re-solves land beyond artEnd and stay pivotable.
func (t *ratTableau) isBarred(j int) bool {
	return j >= t.firstArt && j < t.artEnd
}

func newRatTableau(p *Problem) (*ratTableau, error) {
	m, n := len(p.rows), p.numVars
	type rowKind struct {
		rel  Relation
		flip bool
	}
	kinds := make([]rowKind, m)
	nSlack, nArt := 0, 0
	for i := range p.rows {
		rel, b := p.rel[i], p.b[i]
		flip := b < 0
		if flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel, flip}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &ratTableau{
		m: m, n: n,
		nTotal:   n + nSlack + nArt,
		firstArt: n + nSlack,
		artEnd:   n + nSlack + nArt,
		a:        make([][]*big.Rat, m),
		rhs:      make([]*big.Rat, m),
		basis:    make([]int, m),
		cost:     make([]*big.Rat, n+nSlack+nArt),
		active:   make([]bool, m),
	}
	for j := range t.cost {
		t.cost[j] = new(big.Rat)
	}
	for j := 0; j < n; j++ {
		cj, err := rat(p.c[j])
		if err != nil {
			return nil, err
		}
		t.cost[j] = cj
	}
	slack, art := n, t.firstArt
	for i := range p.rows {
		row := make([]*big.Rat, t.nTotal)
		for j := range row {
			row[j] = new(big.Rat)
		}
		sign := int64(1)
		if kinds[i].flip {
			sign = -1
		}
		signRat := new(big.Rat).SetInt64(sign)
		for _, e := range p.rows[i] {
			v, err := rat(e.val)
			if err != nil {
				return nil, err
			}
			row[e.col].Add(row[e.col], new(big.Rat).Mul(signRat, v))
		}
		bi, err := rat(p.b[i])
		if err != nil {
			return nil, err
		}
		t.rhs[i] = new(big.Rat).Mul(signRat, bi)
		t.active[i] = true
		switch kinds[i].rel {
		case LE:
			row[slack].SetInt64(1)
			t.basis[i] = slack
			slack++
		case GE:
			row[slack].SetInt64(-1)
			slack++
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		case EQ:
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}
	return t, nil
}

// appendRow adds one LE or GE constraint to a solved tableau: the row is
// normalized so its fresh logical column can serve as the basic variable,
// every currently basic column is eliminated from it against the active
// dictionary rows, and the logical enters the basis — at a negative value
// exactly when the current point violates the row, which is what the dual
// simplex then repairs. The new logical is a plain slack/surplus, never an
// artificial, so it stays eligible for pivoting in later rounds.
func (t *ratTableau) appendRow(row []entry, rel Relation, b float64) error {
	// Grow every existing row by the new logical column. The column block
	// layout ([structural | slack | artificial]) is not preserved for
	// appended logicals — they land after the artificials, which is safe
	// because barred() bars by index range and the new column must NOT be
	// barred.
	col := t.nTotal
	t.nTotal++
	for i := range t.a {
		t.a[i] = append(t.a[i], new(big.Rat))
	}
	t.cost = append(t.cost, new(big.Rat))
	newRow := make([]*big.Rat, t.nTotal)
	for j := range newRow {
		newRow[j] = new(big.Rat)
	}
	sign := int64(1)
	if rel == GE {
		sign = -1 // -a·x + s = -b: the slack keeps a +1 coefficient
	}
	signRat := new(big.Rat).SetInt64(sign)
	for _, e := range row {
		v, err := rat(e.val)
		if err != nil {
			return err
		}
		newRow[e.col].Add(newRow[e.col], new(big.Rat).Mul(signRat, v))
	}
	newRow[col].SetInt64(1)
	bi, err := rat(b)
	if err != nil {
		return err
	}
	rhs := new(big.Rat).Mul(signRat, bi)
	// Eliminate the basic variables of the active dictionary rows.
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if !t.active[i] {
			continue
		}
		f := new(big.Rat).Set(newRow[t.basis[i]])
		if f.Sign() == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			if ai[j].Sign() == 0 {
				continue
			}
			tmp.Mul(f, ai[j])
			newRow[j].Sub(newRow[j], tmp)
		}
		tmp.Mul(f, t.rhs[i])
		rhs.Sub(rhs, tmp)
	}
	t.a = append(t.a, newRow)
	t.rhs = append(t.rhs, rhs)
	t.basis = append(t.basis, col)
	t.active = append(t.active, true)
	t.m++
	return nil
}

// dualIterate restores primal feasibility after appended rows while
// maintaining dual feasibility, using Bland's rule throughout (first
// negative right-hand side leaves; among minimum-ratio columns the lowest
// index enters), which guarantees termination in exact arithmetic.
func (t *ratTableau) dualIterate(cost []*big.Rat, barred func(int) bool, budget *int) Status {
	ratio := new(big.Rat)
	for {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		row := -1
		for i := 0; i < t.m; i++ {
			if t.active[i] && t.rhs[i].Sign() < 0 {
				row = i
				break
			}
		}
		if row < 0 {
			return Optimal
		}
		red := t.reducedCosts(cost, barred)
		col := -1
		var bestRatio *big.Rat
		for j := 0; j < t.nTotal; j++ {
			if t.a[row][j].Sign() >= 0 || (barred != nil && barred(j)) {
				continue
			}
			ratio.Quo(red[j], new(big.Rat).Neg(t.a[row][j]))
			if col < 0 || ratio.Cmp(bestRatio) < 0 {
				col = j
				bestRatio = new(big.Rat).Set(ratio)
			}
		}
		if col < 0 {
			return Infeasible
		}
		t.pivot(row, col)
	}
}

func (t *ratTableau) reducedCosts(cost []*big.Rat, barred func(int) bool) []*big.Rat {
	red := make([]*big.Rat, t.nTotal)
	for j := range red {
		red[j] = new(big.Rat).Set(cost[j])
	}
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if !t.active[i] {
			continue
		}
		cb := cost[t.basis[i]]
		if cb.Sign() == 0 {
			continue
		}
		for j := 0; j < t.nTotal; j++ {
			if t.a[i][j].Sign() == 0 {
				continue
			}
			tmp.Mul(cb, t.a[i][j])
			red[j].Sub(red[j], tmp)
		}
	}
	if barred != nil {
		for j := range red {
			if barred(j) {
				red[j].SetInt64(0)
			}
		}
	}
	return red
}

func (t *ratTableau) pivot(row, col int) {
	inv := new(big.Rat).Inv(t.a[row][col])
	arow := t.a[row]
	for j := range arow {
		if arow[j].Sign() != 0 {
			arow[j].Mul(arow[j], inv)
		}
	}
	t.rhs[row].Mul(t.rhs[row], inv)
	arow[col].SetInt64(1)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == row || !t.active[i] {
			continue
		}
		f := new(big.Rat).Set(t.a[i][col])
		if f.Sign() == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			if arow[j].Sign() == 0 {
				continue
			}
			tmp.Mul(f, arow[j])
			ai[j].Sub(ai[j], tmp)
		}
		ai[col].SetInt64(0)
		tmp.Mul(f, t.rhs[row])
		t.rhs[i].Sub(t.rhs[i], tmp)
	}
	t.basis[row] = col
}

func (t *ratTableau) iterate(cost []*big.Rat, barred func(int) bool, budget *int) Status {
	for {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		red := t.reducedCosts(cost, barred)
		col := -1
		for j := 0; j < t.nTotal; j++ { // Bland: first negative
			if red[j].Sign() < 0 {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal
		}
		row := -1
		var bestRatio *big.Rat
		ratio := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.a[i][col].Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rhs[i], t.a[i][col])
			if row < 0 || ratio.Cmp(bestRatio) < 0 ||
				(ratio.Cmp(bestRatio) == 0 && t.basis[i] < t.basis[row]) {
				row = i
				bestRatio = new(big.Rat).Set(ratio)
			}
		}
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
}

func (t *ratTableau) run() (Status, int) {
	budget := maxPivots
	if t.firstArt < t.nTotal {
		phase1 := make([]*big.Rat, t.nTotal)
		for j := range phase1 {
			phase1[j] = new(big.Rat)
			if j >= t.firstArt {
				phase1[j].SetInt64(1)
			}
		}
		st := t.iterate(phase1, nil, &budget)
		if st == IterLimit {
			return IterLimit, maxPivots - budget
		}
		artSum := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if t.active[i] && t.basis[i] >= t.firstArt {
				artSum.Add(artSum, t.rhs[i])
			}
		}
		if artSum.Sign() > 0 {
			return Infeasible, maxPivots - budget
		}
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.basis[i] < t.firstArt {
				continue
			}
			pivoted := false
			for j := 0; j < t.firstArt; j++ {
				if t.a[i][j].Sign() != 0 {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				t.active[i] = false
			}
		}
	}
	st := t.iterate(t.cost, t.isBarred, &budget)
	return st, maxPivots - budget
}

func (t *ratTableau) primal() []*big.Rat {
	x := make([]*big.Rat, t.n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i := 0; i < t.m; i++ {
		if t.active[i] && t.basis[i] < t.n {
			x[t.basis[i]].Set(t.rhs[i])
		}
	}
	return x
}
