package lp

import (
	"errors"
	"math"
	"math/big"
)

// RatSolution is the result of an exact rational solve.
type RatSolution struct {
	Status     Status
	X          []*big.Rat
	Objective  *big.Rat
	Iterations int
}

// Float64s returns the solution vector converted to float64.
func (s *RatSolution) Float64s() []float64 {
	out := make([]float64, len(s.X))
	for i, x := range s.X {
		out[i], _ = x.Float64()
	}
	return out
}

// SolveExact optimizes the problem in exact rational arithmetic using
// Bland's rule (guaranteed termination). Input float64 coefficients are
// converted exactly via big.Rat.SetFloat64, so integral and dyadic data stay
// exact. Variable upper bounds set with SetUpper are materialized as
// explicit "x_j <= u" rows (the rational engine has no bounded-variable
// pivoting; it exists for validation, not speed). Intended for small
// problems and for validating Solve.
func SolveExact(p *Problem) (*RatSolution, error) {
	if p.numVars == 0 {
		return nil, errors.New("lp: problem has no variables")
	}
	p = boundsAsRows(p)
	t, err := newRatTableau(p)
	if err != nil {
		return nil, err
	}
	status, iters := t.run()
	sol := &RatSolution{Status: status, Iterations: iters}
	if status == Optimal {
		sol.X = t.primal()
		obj := new(big.Rat)
		for j := range p.c {
			if p.c[j] == 0 {
				continue
			}
			cj, ok := new(big.Rat).SetString(floatRat(p.c[j]))
			if !ok {
				return nil, errors.New("lp: bad objective coefficient")
			}
			obj.Add(obj, new(big.Rat).Mul(cj, sol.X[j]))
		}
		sol.Objective = obj
	}
	return sol, nil
}

// boundsAsRows returns a shallow copy of p with every finite upper bound
// appended as an explicit LE row, leaving p untouched. Problems without
// finite bounds are returned as-is.
func boundsAsRows(p *Problem) *Problem {
	finite := 0
	for _, u := range p.upper {
		if !math.IsInf(u, 1) {
			finite++
		}
	}
	if finite == 0 {
		return p
	}
	q := &Problem{
		numVars: p.numVars,
		c:       p.c,
		rows:    make([][]entry, len(p.rows), len(p.rows)+finite),
		rel:     make([]Relation, len(p.rel), len(p.rel)+finite),
		b:       make([]float64, len(p.b), len(p.b)+finite),
	}
	copy(q.rows, p.rows)
	copy(q.rel, p.rel)
	copy(q.b, p.b)
	for j, u := range p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		q.rows = append(q.rows, []entry{{j, 1}})
		q.rel = append(q.rel, LE)
		q.b = append(q.b, u)
	}
	return q
}

func floatRat(f float64) string {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		return "0"
	}
	return r.RatString()
}

func rat(f float64) (*big.Rat, error) {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		return nil, errors.New("lp: non-finite coefficient")
	}
	return r, nil
}

type ratTableau struct {
	m, n     int
	nTotal   int
	firstArt int
	a        [][]*big.Rat
	rhs      []*big.Rat
	basis    []int
	cost     []*big.Rat
	active   []bool
}

func newRatTableau(p *Problem) (*ratTableau, error) {
	m, n := len(p.rows), p.numVars
	type rowKind struct {
		rel  Relation
		flip bool
	}
	kinds := make([]rowKind, m)
	nSlack, nArt := 0, 0
	for i := range p.rows {
		rel, b := p.rel[i], p.b[i]
		flip := b < 0
		if flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel, flip}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &ratTableau{
		m: m, n: n,
		nTotal:   n + nSlack + nArt,
		firstArt: n + nSlack,
		a:        make([][]*big.Rat, m),
		rhs:      make([]*big.Rat, m),
		basis:    make([]int, m),
		cost:     make([]*big.Rat, n+nSlack+nArt),
		active:   make([]bool, m),
	}
	for j := range t.cost {
		t.cost[j] = new(big.Rat)
	}
	for j := 0; j < n; j++ {
		cj, err := rat(p.c[j])
		if err != nil {
			return nil, err
		}
		t.cost[j] = cj
	}
	slack, art := n, t.firstArt
	for i := range p.rows {
		row := make([]*big.Rat, t.nTotal)
		for j := range row {
			row[j] = new(big.Rat)
		}
		sign := int64(1)
		if kinds[i].flip {
			sign = -1
		}
		signRat := new(big.Rat).SetInt64(sign)
		for _, e := range p.rows[i] {
			v, err := rat(e.val)
			if err != nil {
				return nil, err
			}
			row[e.col].Add(row[e.col], new(big.Rat).Mul(signRat, v))
		}
		bi, err := rat(p.b[i])
		if err != nil {
			return nil, err
		}
		t.rhs[i] = new(big.Rat).Mul(signRat, bi)
		t.active[i] = true
		switch kinds[i].rel {
		case LE:
			row[slack].SetInt64(1)
			t.basis[i] = slack
			slack++
		case GE:
			row[slack].SetInt64(-1)
			slack++
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		case EQ:
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}
	return t, nil
}

func (t *ratTableau) reducedCosts(cost []*big.Rat, barred func(int) bool) []*big.Rat {
	red := make([]*big.Rat, t.nTotal)
	for j := range red {
		red[j] = new(big.Rat).Set(cost[j])
	}
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if !t.active[i] {
			continue
		}
		cb := cost[t.basis[i]]
		if cb.Sign() == 0 {
			continue
		}
		for j := 0; j < t.nTotal; j++ {
			if t.a[i][j].Sign() == 0 {
				continue
			}
			tmp.Mul(cb, t.a[i][j])
			red[j].Sub(red[j], tmp)
		}
	}
	if barred != nil {
		for j := range red {
			if barred(j) {
				red[j].SetInt64(0)
			}
		}
	}
	return red
}

func (t *ratTableau) pivot(row, col int) {
	inv := new(big.Rat).Inv(t.a[row][col])
	arow := t.a[row]
	for j := range arow {
		if arow[j].Sign() != 0 {
			arow[j].Mul(arow[j], inv)
		}
	}
	t.rhs[row].Mul(t.rhs[row], inv)
	arow[col].SetInt64(1)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == row || !t.active[i] {
			continue
		}
		f := new(big.Rat).Set(t.a[i][col])
		if f.Sign() == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			if arow[j].Sign() == 0 {
				continue
			}
			tmp.Mul(f, arow[j])
			ai[j].Sub(ai[j], tmp)
		}
		ai[col].SetInt64(0)
		tmp.Mul(f, t.rhs[row])
		t.rhs[i].Sub(t.rhs[i], tmp)
	}
	t.basis[row] = col
}

func (t *ratTableau) iterate(cost []*big.Rat, barred func(int) bool, budget *int) Status {
	for {
		if *budget <= 0 {
			return IterLimit
		}
		*budget--
		red := t.reducedCosts(cost, barred)
		col := -1
		for j := 0; j < t.nTotal; j++ { // Bland: first negative
			if red[j].Sign() < 0 {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal
		}
		row := -1
		var bestRatio *big.Rat
		ratio := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.a[i][col].Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rhs[i], t.a[i][col])
			if row < 0 || ratio.Cmp(bestRatio) < 0 ||
				(ratio.Cmp(bestRatio) == 0 && t.basis[i] < t.basis[row]) {
				row = i
				bestRatio = new(big.Rat).Set(ratio)
			}
		}
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
}

func (t *ratTableau) run() (Status, int) {
	budget := maxPivots
	if t.firstArt < t.nTotal {
		phase1 := make([]*big.Rat, t.nTotal)
		for j := range phase1 {
			phase1[j] = new(big.Rat)
			if j >= t.firstArt {
				phase1[j].SetInt64(1)
			}
		}
		st := t.iterate(phase1, nil, &budget)
		if st == IterLimit {
			return IterLimit, maxPivots - budget
		}
		artSum := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if t.active[i] && t.basis[i] >= t.firstArt {
				artSum.Add(artSum, t.rhs[i])
			}
		}
		if artSum.Sign() > 0 {
			return Infeasible, maxPivots - budget
		}
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.basis[i] < t.firstArt {
				continue
			}
			pivoted := false
			for j := 0; j < t.firstArt; j++ {
				if t.a[i][j].Sign() != 0 {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				t.active[i] = false
			}
		}
	}
	barred := func(j int) bool { return j >= t.firstArt }
	st := t.iterate(t.cost, barred, &budget)
	return st, maxPivots - budget
}

func (t *ratTableau) primal() []*big.Rat {
	x := make([]*big.Rat, t.n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i := 0; i < t.m; i++ {
		if t.active[i] && t.basis[i] < t.n {
			x[t.basis[i]].Set(t.rhs[i])
		}
	}
	return x
}
