package lp

import "math"

// factor is the factorized representation of the basis: a sparse LU
// factorization of the basis matrix as of the last refactorization, plus a
// product-form eta file with one eta operation per basis change since. It
// replaces the explicit dense m×m inverse the engine carried before — every
// former B⁻¹·v product is now an FTRAN (forward solve through L, U and the
// eta file) and every vᵀ·B⁻¹ product a BTRAN (the same chain transposed, in
// reverse), so per-pivot work tracks the sparsity of the factors instead of
// m².
//
// # Factorization
//
// refactorize performs a left-looking sparse LU with a static Markowitz-style
// column ordering (basis columns processed in ascending nonzero count, which
// claims the unit logical columns first — on covering masters they are the
// bulk of the basis and generate no fill) and partial pivoting by largest
// residual magnitude within the column. Two index spaces meet here: basis
// *positions* (which slot of the basis a column occupies — the space xB and
// FTRAN results live in) and engine *rows* (the constraint-row space BTRAN
// results and right-hand sides live in). perm maps elimination step to the
// pivot's engine row, cperm to its basis position; the triangular solves
// translate between the spaces so callers never see elimination order.
//
// # Eta file
//
// When column q enters the basis at position r with pivot column
// w = B⁻¹·A_q, the new inverse is E⁻¹·B⁻¹ with E the identity whose r-th
// column is w. pushEta records (r, w) sparsely; FTRAN applies the recorded
// operations oldest-first after the triangular solves, BTRAN applies their
// transposes newest-first before them. The eta file is the only state that
// grows per pivot, and it grows by nnz(w), not m².
//
// # Storage
//
// All factor content lives in shared arenas (offset-indexed backing slices)
// owned by the struct and reset, not reallocated, at each refactorization —
// steady-state pivoting and periodic refactorization are allocation-free
// once the arenas have warmed up.
type factor struct {
	m int

	// LU of the refactorization-time basis B0.
	perm    []int32   // elimination step -> engine row of the pivot
	cperm   []int32   // elimination step -> basis position eliminated
	rowStep []int32   // engine row -> elimination step (inverse of perm)
	uDiag   []float64 // pivot values, by step

	// L (unit lower triangular) multipliers, column-major by step: column k
	// holds the rows still unclaimed at step k, arena range lOff[k]..lOff[k+1].
	lOff []int32
	lRow []int32 // engine rows
	lVal []float64

	// U above-diagonal entries, column-major by step: column k holds its
	// entries at earlier steps, arena range uOff[k]..uOff[k+1].
	uOff  []int32
	uStep []int32 // earlier elimination steps
	uVal  []float64

	// Eta file, oldest first: eta e pivots position etaPos[e] with pivot
	// value etaPiv[e]; its off-pivot nonzeros occupy etaOff[e]..etaOff[e+1].
	etaPos []int32
	etaPiv []float64
	etaOff []int32
	etaIdx []int32 // basis positions
	etaVal []float64

	luNNZ int // nonzeros in L+U at the last refactorization

	// Scratch for the solves and the factorization, length m, plus the
	// column-pattern worklist. xwork must be all-zero between uses.
	xwork  []float64
	swork  []float64
	patt   []int32
	order  []int32 // column processing order scratch
	counts []int32 // counting-sort scratch for the column ordering
}

// basisMatrix is what refactorize needs from the engine: the sparse columns
// of the current basis, one per basis position. It is an interface rather
// than a pair of callbacks so that refactorization allocates no closures.
type basisMatrix interface {
	// basisColNNZ reports the nonzero count of the column at position p.
	basisColNNZ(p int) int
	// scatterBasisColumn adds the column at position p into the dense
	// engine-row-indexed accumulator x, appending each row whose value was
	// zero before the add to patt, and returns the extended pattern.
	scatterBasisColumn(p int, x []float64, patt []int32) []int32
}

// singularTol is the smallest pivot magnitude refactorize accepts. A basis
// whose best remaining pivot falls below it is reported as numerically
// singular and the previous representation is kept (the engine's verify /
// cold-fallback layers take it from there).
const singularTol = 1e-11

// reset prepares the factor for a refactorization at dimension m, reusing
// arena capacity.
func (f *factor) reset(m int) {
	grow32 := func(s []int32, n int) []int32 {
		if cap(s) < n {
			return make([]int32, n, n+n/4+16)
		}
		return s[:n]
	}
	growF := func(s []float64, n int) []float64 {
		if cap(s) < n {
			return make([]float64, n, n+n/4+16)
		}
		return s[:n]
	}
	f.m = m
	f.perm = grow32(f.perm, 0)
	f.cperm = grow32(f.cperm, 0)
	f.rowStep = grow32(f.rowStep, m)
	for i := range f.rowStep {
		f.rowStep[i] = -1
	}
	f.uDiag = growF(f.uDiag, 0)
	f.lOff = grow32(f.lOff, 1)
	f.lOff[0] = 0
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uOff = grow32(f.uOff, 1)
	f.uOff[0] = 0
	f.uStep = f.uStep[:0]
	f.uVal = f.uVal[:0]
	f.clearEtas()
	if cap(f.xwork) < m {
		f.xwork = make([]float64, m, m+m/4+16)
		f.swork = make([]float64, m, m+m/4+16)
	} else {
		f.xwork = f.xwork[:m]
		f.swork = f.swork[:m]
		for i := range f.xwork {
			f.xwork[i] = 0
		}
	}
	f.patt = f.patt[:0]
}

// clearEtas drops the eta file (the basis it encodes has just been folded
// into a fresh LU).
func (f *factor) clearEtas() {
	f.etaPos = f.etaPos[:0]
	f.etaPiv = f.etaPiv[:0]
	if f.etaOff == nil {
		f.etaOff = make([]int32, 1, 64)
	}
	f.etaOff = f.etaOff[:1]
	f.etaOff[0] = 0
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
}

// etas reports the current eta-file length.
func (f *factor) etas() int { return len(f.etaPos) }

// etaNNZ reports the total off-pivot nonzeros recorded in the eta file.
func (f *factor) etaNNZ() int { return len(f.etaIdx) }

// refactorize builds a fresh LU of the basis described by src. It reports
// false when the basis is numerically singular, leaving the factor unusable
// (callers must not solve with it until a refactorization succeeds).
func (f *factor) refactorize(m int, src basisMatrix) bool {
	f.reset(m)
	// Static Markowitz-style ordering: columns by ascending nonzero count,
	// ties by position for determinism. Counting sort — counts are tiny.
	if cap(f.order) < m {
		f.order = make([]int32, m, m+m/4+16)
	}
	order := f.order[:m]
	maxN := 0
	for p := 0; p < m; p++ {
		if c := src.basisColNNZ(p); c > maxN {
			maxN = c
		}
	}
	if cap(f.counts) < maxN+2 {
		f.counts = make([]int32, maxN+2, maxN+maxN/4+18)
	}
	counts := f.counts[:maxN+2]
	for c := range counts {
		counts[c] = 0
	}
	for p := 0; p < m; p++ {
		counts[src.basisColNNZ(p)+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	for p := 0; p < m; p++ {
		c := src.basisColNNZ(p)
		order[counts[c]] = int32(p)
		counts[c]++
	}

	x := f.xwork
	for _, p32 := range order {
		p := int(p32)
		k := len(f.perm)
		// Scatter the column, engine-row indexed.
		f.patt = src.scatterBasisColumn(p, x, f.patt[:0])
		// Apply the completed elimination steps in order. Updates can only
		// introduce nonzeros at rows claimed by later steps, which this
		// forward sweep has yet to read, so a single ordered pass suffices.
		for q := 0; q < k; q++ {
			zq := x[f.perm[q]]
			if zq == 0 {
				continue
			}
			f.uStep = append(f.uStep, int32(q))
			f.uVal = append(f.uVal, zq)
			for e := f.lOff[q]; e < f.lOff[q+1]; e++ {
				r := f.lRow[e]
				if x[r] == 0 {
					f.patt = append(f.patt, r)
				}
				x[r] -= f.lVal[e] * zq
			}
		}
		f.uOff = append(f.uOff, int32(len(f.uStep)))
		// Partial pivoting over the unclaimed rows.
		piv, best := int32(-1), singularTol
		for _, r := range f.patt {
			if f.rowStep[r] >= 0 {
				continue
			}
			if a := math.Abs(x[r]); a > best {
				piv, best = r, a
			}
		}
		if piv < 0 {
			// Singular: clear scratch and bail.
			for _, r := range f.patt {
				x[r] = 0
			}
			return false
		}
		d := x[piv]
		f.perm = append(f.perm, piv)
		f.cperm = append(f.cperm, int32(p))
		f.rowStep[piv] = int32(k)
		f.uDiag = append(f.uDiag, d)
		// Build the L column and zero the scratch in one pass. Zeroing on
		// first visit also neutralizes duplicate pattern entries (a value
		// that cancelled to exactly zero mid-sweep and was re-added).
		for _, r := range f.patt {
			xr := x[r]
			x[r] = 0
			if xr == 0 || f.rowStep[r] >= 0 {
				continue
			}
			f.lRow = append(f.lRow, r)
			f.lVal = append(f.lVal, xr/d)
		}
		f.lOff = append(f.lOff, int32(len(f.lRow)))
	}
	f.luNNZ = len(f.lRow) + len(f.uStep) + m
	return true
}

// pushEta records the basis change "column entering at position pos with
// pivot column w" (w = B⁻¹·A_entering, dense, length m).
func (f *factor) pushEta(pos int, w []float64) {
	f.etaPos = append(f.etaPos, int32(pos))
	f.etaPiv = append(f.etaPiv, w[pos])
	for i, wi := range w {
		if wi != 0 && i != pos {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaOff = append(f.etaOff, int32(len(f.etaIdx)))
}

// ftran solves B·x = v in place: on entry v holds a right-hand side indexed
// by engine row; on return it holds the solution indexed by basis position.
func (f *factor) ftran(v []float64) {
	m := f.m
	// Forward solve through L (engine-row space).
	for k := 0; k < m; k++ {
		zk := v[f.perm[k]]
		if zk == 0 {
			continue
		}
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			v[f.lRow[e]] -= f.lVal[e] * zk
		}
	}
	// Backward solve through U (elimination-step space), result gathered
	// into scratch then scattered to basis positions.
	y := f.swork
	for k := m - 1; k >= 0; k-- {
		yk := v[f.perm[k]] / f.uDiag[k]
		y[k] = yk
		if yk == 0 {
			continue
		}
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			v[f.perm[f.uStep[e]]] -= f.uVal[e] * yk
		}
	}
	for k := 0; k < m; k++ {
		v[f.cperm[k]] = y[k]
	}
	// Eta file, oldest first (position space).
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		vr := v[r]
		if vr == 0 {
			continue
		}
		vr /= f.etaPiv[e]
		v[r] = vr
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			v[f.etaIdx[q]] -= f.etaVal[q] * vr
		}
	}
}

// btran solves Bᵀ·y = v in place: on entry v is indexed by basis position;
// on return it holds the solution indexed by engine row.
func (f *factor) btran(v []float64) {
	m := f.m
	// Eta transposes, newest first (position space).
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		s := 0.0
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			s += f.etaVal[q] * v[f.etaIdx[q]]
		}
		v[r] = (v[r] - s) / f.etaPiv[e]
	}
	// Forward solve through Uᵀ (elimination-step space).
	z := f.swork
	for k := 0; k < m; k++ {
		zk := v[f.cperm[k]]
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			zk -= f.uVal[e] * z[f.uStep[e]]
		}
		z[k] = zk / f.uDiag[k]
	}
	// Backward solve through Lᵀ, then scatter to engine rows.
	for k := m - 1; k >= 0; k-- {
		yk := z[k]
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			yk -= f.lVal[e] * z[f.rowStep[f.lRow[e]]]
		}
		z[k] = yk
	}
	for k := 0; k < m; k++ {
		v[f.perm[k]] = z[k]
	}
}
