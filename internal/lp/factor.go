package lp

import (
	"math"
	"math/bits"
)

// factor is the factorized representation of the basis: a sparse LU
// factorization of the basis matrix as of the last refactorization, plus a
// product-form eta file with one eta operation per basis change since. It
// replaces the explicit dense m×m inverse the engine carried before — every
// former B⁻¹·v product is now an FTRAN (forward solve through L, U and the
// eta file) and every vᵀ·B⁻¹ product a BTRAN (the same chain transposed, in
// reverse), so per-pivot work tracks the sparsity of the factors instead of
// m².
//
// # Factorization
//
// refactorize performs a left-looking sparse LU with a static Markowitz-style
// column ordering (basis columns processed in ascending nonzero count, which
// claims the unit logical columns first — on covering masters they are the
// bulk of the basis and generate no fill) and partial pivoting by largest
// residual magnitude within the column. Two index spaces meet here: basis
// *positions* (which slot of the basis a column occupies — the space xB and
// FTRAN results live in) and engine *rows* (the constraint-row space BTRAN
// results and right-hand sides live in). perm maps elimination step to the
// pivot's engine row, cperm to its basis position; the triangular solves
// translate between the spaces so callers never see elimination order.
//
// # Eta file
//
// When column q enters the basis at position r with pivot column
// w = B⁻¹·A_q, the new inverse is E⁻¹·B⁻¹ with E the identity whose r-th
// column is w. pushEta records (r, w) sparsely; FTRAN applies the recorded
// operations oldest-first after the triangular solves, BTRAN applies their
// transposes newest-first before them. The eta file is the only state that
// grows per pivot, and it grows by nnz(w), not m².
//
// # Storage
//
// All factor content lives in shared arenas (offset-indexed backing slices)
// owned by the struct and reset, not reallocated, at each refactorization —
// steady-state pivoting and periodic refactorization are allocation-free
// once the arenas have warmed up.
type factor struct {
	m int

	// LU of the refactorization-time basis B0.
	perm    []int32   // elimination step -> engine row of the pivot
	cperm   []int32   // elimination step -> basis position eliminated
	rowStep []int32   // engine row -> elimination step (inverse of perm)
	uDiag   []float64 // pivot values, by step

	// L (unit lower triangular) multipliers, column-major by step: column k
	// holds the rows still unclaimed at step k, arena range lOff[k]..lOff[k+1].
	lOff []int32
	lRow []int32 // engine rows
	lVal []float64

	// U above-diagonal entries, column-major by step: column k holds its
	// entries at earlier steps, arena range uOff[k]..uOff[k+1].
	uOff  []int32
	uStep []int32 // earlier elimination steps
	uVal  []float64

	// Eta file, oldest first: eta e pivots position etaPos[e] with pivot
	// value etaPiv[e]; its off-pivot nonzeros occupy etaOff[e]..etaOff[e+1].
	etaPos []int32
	etaPiv []float64
	etaOff []int32
	etaIdx []int32 // basis positions
	etaVal []float64

	luNNZ int // nonzeros in L+U at the last refactorization

	// Scratch for the solves and the factorization, length m, plus the
	// column-pattern worklist. xwork and swork must be all-zero between
	// uses (every solve path, dense included, restores swork on exit).
	xwork  []float64
	swork  []float64
	patt   []int32
	order  []int32 // column processing order scratch
	counts []int32 // counting-sort scratch for the column ordering

	// Hypersparse solve support (see the kernel section of the package
	// comment). The derived adjacency below is rebuilt by refactorize;
	// the mark arrays are stamp-versioned so solves never re-zero them.
	posStep []int32 // basis position -> elimination step (inverse of cperm)
	lStep   []int32 // lRow mapped through rowStep: L column adjacency in step space
	urOff   []int32 // row-major U pattern: step j -> later columns holding j
	urAdj   []int32
	lrOff   []int32 // row-major L pattern: step j -> earlier columns holding j's pivot row
	lrAdj   []int32
	mark    []int32 // step-space visit stamps for the reach traversal
	stamp   int32
	pmark   []int32 // position/row-space stamps for result-pattern dedup
	pstamp  int32
	reach   []int32 // reach worklist scratch, elimination steps

	// Bit mirrors of the reach and result-support memberships, kept
	// all-zero between solves. They exist purely for sorted emission:
	// sweeping ⌈m/64⌉ words ascending replaces the comparison sorts the
	// bit-identity contract demands (reaches must be processed in
	// elimination-step order, supports returned ascending) at O(m/64 + k)
	// instead of O(k log k). Every exit path restores the all-zero state —
	// sweepBits clears as it emits, fallbacks clear through the list.
	bitReach []uint64 // step-space mirror of f.reach membership
	bitOut   []uint64 // position/row-space mirror of a result support

	// denseRun counts consecutive dense-outcome FTRANs per caller class.
	// Aborting a reach traversal costs real work (the L reach may be fully
	// expanded and solved before the U closure blows the cap), so once a
	// class is in a dense regime the solver stops attempting reaches and
	// only probes periodically; a hyper success resets the run. Pure cost
	// control: either path yields bit-identical results.
	denseRun [ftranClasses]int

	// forceDense routes every solve down the dense kernels — the ablation
	// hook behind Problem.SetDenseKernels. Both paths are bit-identical by
	// construction (the equivalence suite asserts identical pivot
	// sequences), so flipping this changes cost, never results.
	forceDense bool
}

// FTRAN caller classes for the dense-regime predictor: the entering
// column, the steepest-edge tau solve, and the batched bound-flip solve
// have very different right-hand-side sparsity, so each class tracks its
// own regime (a shared run would flap between a sparse entering stream
// and a dense tau stream and predict neither).
const (
	ftranEnter = iota
	ftranTau
	ftranFlip
	ftranClasses
)

// Dense-regime predictor tuning: a class enters the dense regime after
// hyperRunMin consecutive dense outcomes and then attempts a reach only
// every hyperProbeEvery calls.
const (
	hyperRunMin     = 4
	hyperProbeEvery = 16
)

// Hypersparse path tuning.
const (
	// hyperMinDim: below this dimension the dense kernels win outright and
	// every solve takes the dense path.
	hyperMinDim = 64
	// hyperDenseDiv: a reach traversal aborts to the dense path once the
	// tracked closure exceeds m/hyperDenseDiv (~25% of m), so worst-case
	// right-hand sides never pay index overhead on top of dense work.
	hyperDenseDiv = 4
)

// basisMatrix is what refactorize needs from the engine: the sparse columns
// of the current basis, one per basis position. It is an interface rather
// than a pair of callbacks so that refactorization allocates no closures.
type basisMatrix interface {
	// basisColNNZ reports the nonzero count of the column at position p.
	basisColNNZ(p int) int
	// scatterBasisColumn adds the column at position p into the dense
	// engine-row-indexed accumulator x, appending each row whose value was
	// zero before the add to patt, and returns the extended pattern.
	scatterBasisColumn(p int, x []float64, patt []int32) []int32
}

// singularTol is the smallest pivot magnitude refactorize accepts. A basis
// whose best remaining pivot falls below it is reported as numerically
// singular and the previous representation is kept (the engine's verify /
// cold-fallback layers take it from there).
const singularTol = 1e-11

// reset prepares the factor for a refactorization at dimension m, reusing
// arena capacity.
func (f *factor) reset(m int) {
	grow32 := func(s []int32, n int) []int32 {
		if cap(s) < n {
			return make([]int32, n, n+n/4+16)
		}
		return s[:n]
	}
	growF := func(s []float64, n int) []float64 {
		if cap(s) < n {
			return make([]float64, n, n+n/4+16)
		}
		return s[:n]
	}
	f.m = m
	f.perm = grow32(f.perm, 0)
	f.cperm = grow32(f.cperm, 0)
	f.rowStep = grow32(f.rowStep, m)
	for i := range f.rowStep {
		f.rowStep[i] = -1
	}
	f.uDiag = growF(f.uDiag, 0)
	f.lOff = grow32(f.lOff, 1)
	f.lOff[0] = 0
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uOff = grow32(f.uOff, 1)
	f.uOff[0] = 0
	f.uStep = f.uStep[:0]
	f.uVal = f.uVal[:0]
	f.clearEtas()
	if cap(f.xwork) < m {
		f.xwork = make([]float64, m, m+m/4+16)
		f.swork = make([]float64, m, m+m/4+16)
	} else {
		f.xwork = f.xwork[:m]
		f.swork = f.swork[:m]
		for i := range f.xwork {
			f.xwork[i] = 0
		}
		for i := range f.swork {
			f.swork[i] = 0
		}
	}
	f.patt = f.patt[:0]
}

// growI32 resizes an int32 arena slice to n, reusing capacity.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n+n/4+16)
	}
	return s[:n]
}

// clearEtas drops the eta file (the basis it encodes has just been folded
// into a fresh LU).
func (f *factor) clearEtas() {
	f.etaPos = f.etaPos[:0]
	f.etaPiv = f.etaPiv[:0]
	if f.etaOff == nil {
		f.etaOff = make([]int32, 1, 64)
	}
	f.etaOff = f.etaOff[:1]
	f.etaOff[0] = 0
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
}

// etas reports the current eta-file length.
func (f *factor) etas() int { return len(f.etaPos) }

// etaNNZ reports the total off-pivot nonzeros recorded in the eta file.
func (f *factor) etaNNZ() int { return len(f.etaIdx) }

// refactorize builds a fresh LU of the basis described by src. It reports
// false when the basis is numerically singular, leaving the factor unusable
// (callers must not solve with it until a refactorization succeeds).
func (f *factor) refactorize(m int, src basisMatrix) bool {
	f.reset(m)
	// Static Markowitz-style ordering: columns by ascending nonzero count,
	// ties by position for determinism. Counting sort — counts are tiny.
	if cap(f.order) < m {
		f.order = make([]int32, m, m+m/4+16)
	}
	order := f.order[:m]
	maxN := 0
	for p := 0; p < m; p++ {
		if c := src.basisColNNZ(p); c > maxN {
			maxN = c
		}
	}
	if cap(f.counts) < maxN+2 {
		f.counts = make([]int32, maxN+2, maxN+maxN/4+18)
	}
	counts := f.counts[:maxN+2]
	for c := range counts {
		counts[c] = 0
	}
	for p := 0; p < m; p++ {
		counts[src.basisColNNZ(p)+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	for p := 0; p < m; p++ {
		c := src.basisColNNZ(p)
		order[counts[c]] = int32(p)
		counts[c]++
	}

	x := f.xwork
	for _, p32 := range order {
		p := int(p32)
		k := len(f.perm)
		// Scatter the column, engine-row indexed.
		f.patt = src.scatterBasisColumn(p, x, f.patt[:0])
		// Apply the completed elimination steps in order. Updates can only
		// introduce nonzeros at rows claimed by later steps, which this
		// forward sweep has yet to read, so a single ordered pass suffices.
		for q := 0; q < k; q++ {
			zq := x[f.perm[q]]
			if zq == 0 {
				continue
			}
			f.uStep = append(f.uStep, int32(q))
			f.uVal = append(f.uVal, zq)
			for e := f.lOff[q]; e < f.lOff[q+1]; e++ {
				r := f.lRow[e]
				if x[r] == 0 {
					f.patt = append(f.patt, r)
				}
				x[r] -= f.lVal[e] * zq
			}
		}
		f.uOff = append(f.uOff, int32(len(f.uStep)))
		// Partial pivoting over the unclaimed rows.
		piv, best := int32(-1), singularTol
		for _, r := range f.patt {
			if f.rowStep[r] >= 0 {
				continue
			}
			if a := math.Abs(x[r]); a > best {
				piv, best = r, a
			}
		}
		if piv < 0 {
			// Singular: clear scratch and bail.
			for _, r := range f.patt {
				x[r] = 0
			}
			return false
		}
		d := x[piv]
		f.perm = append(f.perm, piv)
		f.cperm = append(f.cperm, int32(p))
		f.rowStep[piv] = int32(k)
		f.uDiag = append(f.uDiag, d)
		// Build the L column and zero the scratch in one pass. Zeroing on
		// first visit also neutralizes duplicate pattern entries (a value
		// that cancelled to exactly zero mid-sweep and was re-added).
		for _, r := range f.patt {
			xr := x[r]
			x[r] = 0
			if xr == 0 || f.rowStep[r] >= 0 {
				continue
			}
			f.lRow = append(f.lRow, r)
			f.lVal = append(f.lVal, xr/d)
		}
		f.lOff = append(f.lOff, int32(len(f.lRow)))
	}
	f.luNNZ = len(f.lRow) + len(f.uStep) + m
	f.buildReachAdjacency()
	return true
}

// buildReachAdjacency derives the pattern structures the hypersparse reach
// traversals need from a fresh LU: the cperm inverse, the L column patterns
// mapped to step space, and row-major (transposed, pattern-only) views of L
// and U for the BTRAN-side closures. Runs once per refactorization, O(m +
// nnz(L+U)).
func (f *factor) buildReachAdjacency() {
	m := f.m
	f.posStep = growI32(f.posStep, m)
	for k := 0; k < m; k++ {
		f.posStep[f.cperm[k]] = int32(k)
	}
	f.lStep = growI32(f.lStep, len(f.lRow))
	for e, r := range f.lRow {
		f.lStep[e] = f.rowStep[r]
	}
	f.urOff, f.urAdj = transposePattern(m, f.uOff, f.uStep, f.urOff, f.urAdj)
	f.lrOff, f.lrAdj = transposePattern(m, f.lOff, f.lStep, f.lrOff, f.lrAdj)
	// Mark arrays track visits by stamp: slots freshly zeroed by growth can
	// never match a bumped stamp, so no per-solve clearing is needed.
	f.mark = growI32(f.mark, m)
	f.pmark = growI32(f.pmark, m)
	// A fresh factorization drops the eta file, so every class gets a
	// fresh shot at the hyper path.
	f.denseRun = [ftranClasses]int{}
	// Bit mirrors hold the all-zero invariant between solves, so growth
	// can reallocate without copying the old words.
	if nw := (m + 63) / 64; len(f.bitReach) < nw {
		f.bitReach = make([]uint64, nw+nw/4+8)
		f.bitOut = make([]uint64, len(f.bitReach))
	}
}

// sweepBits rebuilds list as the ascending set bits of bs, clearing bs as
// it sweeps. bs must mirror list's membership exactly; the sweep is the
// sorted-emission replacement for sorting the unordered list.
func sweepBits(bs []uint64, list []int32) []int32 {
	list = list[:0]
	for w, word := range bs {
		if word == 0 {
			continue
		}
		bs[w] = 0
		base := int32(w << 6)
		for word != 0 {
			list = append(list, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return list
}

// setBitList re-marks list's members after an intermediate sweep consumed
// them (the reach is sorted once mid-solve and swept again after closure).
func setBitList(bs []uint64, list []int32) {
	for _, k := range list {
		bs[k>>6] |= 1 << (uint32(k) & 63)
	}
}

// clearBitList restores the all-zero invariant on a fallback path, where
// the accumulated list is abandoned before any clearing sweep runs.
func clearBitList(bs []uint64, list []int32) {
	for _, k := range list {
		bs[k>>6] &^= 1 << (uint32(k) & 63)
	}
}

// transposePattern builds the pattern-only CSR transpose of (off, adj) over
// m nodes into the reusable arenas (tOff, tAdj).
func transposePattern(m int, off, adj []int32, tOff, tAdj []int32) ([]int32, []int32) {
	tOff = growI32(tOff, m+1)
	for j := 0; j <= m; j++ {
		tOff[j] = 0
	}
	for _, j := range adj {
		tOff[j+1]++
	}
	for j := 0; j < m; j++ {
		tOff[j+1] += tOff[j]
	}
	tAdj = growI32(tAdj, len(adj))
	for k := 0; k < m; k++ {
		for e := off[k]; e < off[k+1]; e++ {
			j := adj[e]
			tAdj[tOff[j]] = int32(k)
			tOff[j]++
		}
	}
	for j := m; j > 0; j-- {
		tOff[j] = tOff[j-1]
	}
	tOff[0] = 0
	return tOff, tAdj
}

// newStamp advances the step-space visit stamp, clearing the mark array on
// the (effectively unreachable) int32 wraparound.
func (f *factor) newStamp() {
	if f.stamp == math.MaxInt32 {
		for i := range f.mark {
			f.mark[i] = 0
		}
		f.stamp = 0
	}
	f.stamp++
}

// newPStamp is newStamp for the position/row-space pattern marks.
func (f *factor) newPStamp() {
	if f.pstamp == math.MaxInt32 {
		for i := range f.pmark {
			f.pmark[i] = 0
		}
		f.pstamp = 0
	}
	f.pstamp++
}

// expandReach closes the pre-seeded, pre-marked worklist f.reach over the
// CSR pattern (off, adj), appending newly reached steps. It reports false —
// the dense-fallback signal — once the closure would exceed capN steps.
func (f *factor) expandReach(off, adj []int32, capN int) bool {
	reach, mark, stamp := f.reach, f.mark, f.stamp
	bs := f.bitReach
	for head := 0; head < len(reach); head++ {
		k := reach[head]
		for e := off[k]; e < off[k+1]; e++ {
			s := adj[e]
			if mark[s] != stamp {
				mark[s] = stamp
				if len(reach) >= capN {
					f.reach = reach
					return false
				}
				bs[s>>6] |= 1 << (uint32(s) & 63)
				reach = append(reach, s)
			}
		}
	}
	f.reach = reach
	return true
}

// pushEta records the basis change "column entering at position pos with
// pivot column w" (w = B⁻¹·A_entering, dense, length m).
func (f *factor) pushEta(pos int, w []float64) {
	f.etaPos = append(f.etaPos, int32(pos))
	f.etaPiv = append(f.etaPiv, w[pos])
	for i, wi := range w {
		if wi != 0 && i != pos {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaOff = append(f.etaOff, int32(len(f.etaIdx)))
}

// pushEtaSparse is pushEta for a pivot column whose support is listed in
// wind (sorted ascending, so the recorded eta entries match the dense
// scan's order bit for bit; a superset with exact zeros is fine — zeros are
// skipped exactly as the dense scan skips them).
func (f *factor) pushEtaSparse(pos int, w []float64, wind []int32) {
	f.etaPos = append(f.etaPos, int32(pos))
	f.etaPiv = append(f.etaPiv, w[pos])
	for _, i := range wind {
		if wi := w[i]; wi != 0 && int(i) != pos {
			f.etaIdx = append(f.etaIdx, i)
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaOff = append(f.etaOff, int32(len(f.etaIdx)))
}

// ftran solves B·x = v in place through the dense kernels: on entry v holds
// a right-hand side indexed by engine row; on return it holds the solution
// indexed by basis position. The hypersparse entry point is ftranSparse;
// this dense chain doubles as its fallback, phase by phase.
func (f *factor) ftran(v []float64) {
	f.ftranLDense(v)
	f.ftranUDense(v)
	f.ftranEtasDense(v)
}

// ftranLDense is the dense forward solve through L (engine-row space).
func (f *factor) ftranLDense(v []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		zk := v[f.perm[k]]
		if zk == 0 {
			continue
		}
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			v[f.lRow[e]] -= f.lVal[e] * zk
		}
	}
}

// ftranUDense is the dense backward solve through U (elimination-step
// space), result gathered into scratch then scattered to basis positions.
// It restores the swork all-zero invariant on exit.
func (f *factor) ftranUDense(v []float64) {
	m := f.m
	y := f.swork
	for k := m - 1; k >= 0; k-- {
		pv := v[f.perm[k]]
		if pv == 0 {
			y[k] = 0
			continue
		}
		yk := pv / f.uDiag[k]
		y[k] = yk
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			v[f.perm[f.uStep[e]]] -= f.uVal[e] * yk
		}
	}
	for k := 0; k < m; k++ {
		v[f.cperm[k]] = y[k]
		y[k] = 0
	}
}

// ftranEtasDense applies the eta file, oldest first (position space).
func (f *factor) ftranEtasDense(v []float64) {
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		vr := v[r]
		if vr == 0 {
			continue
		}
		vr /= f.etaPiv[e]
		v[r] = vr
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			v[f.etaIdx[q]] -= f.etaVal[q] * vr
		}
	}
}

// btran solves Bᵀ·y = v in place through the dense kernels: on entry v is
// indexed by basis position; on return it holds the solution indexed by
// engine row. btranSparse is the hypersparse entry point; these phases
// double as its fallback.
func (f *factor) btran(v []float64) {
	f.btranEtasDense(v)
	f.btranUTDense(v)
	f.btranLTDense(v)
}

// btranEtasDense applies the eta transposes, newest first (position space).
func (f *factor) btranEtasDense(v []float64) {
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		s := 0.0
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			s += f.etaVal[q] * v[f.etaIdx[q]]
		}
		v[r] = (v[r] - s) / f.etaPiv[e]
	}
}

// btranUTDense is the dense forward solve through Uᵀ (elimination-step
// space), gathered into swork.
func (f *factor) btranUTDense(v []float64) {
	m := f.m
	z := f.swork
	for k := 0; k < m; k++ {
		zk := v[f.cperm[k]]
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			zk -= f.uVal[e] * z[f.uStep[e]]
		}
		z[k] = zk / f.uDiag[k]
	}
}

// btranLTDense is the dense backward solve through Lᵀ plus the scatter to
// engine rows. It restores the swork all-zero invariant on exit.
func (f *factor) btranLTDense(v []float64) {
	m := f.m
	z := f.swork
	for k := m - 1; k >= 0; k-- {
		yk := z[k]
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			yk -= f.lVal[e] * z[f.rowStep[f.lRow[e]]]
		}
		z[k] = yk
	}
	for k := 0; k < m; k++ {
		v[f.perm[k]] = z[k]
		z[k] = 0
	}
}

// ftranSparse solves B·x = v like ftran, exploiting a sparse right-hand
// side: vind lists the engine rows where v may be nonzero (order and
// duplicates are irrelevant; a superset of the true support is fine). On
// the hypersparse path the triangular solves visit only the symbolic
// nonzero closure — the Gilbert–Peierls reach of the RHS support over the
// factor column patterns — and the result's support comes back as sorted,
// duplicate-free basis positions appended to out, with sparse = true. When
// a closure exceeds the density threshold (or the dimension is tiny, or
// forceDense is set) the solve completes through the dense phase kernels
// from wherever it is and returns sparse = false with out empty. v is a
// valid dense result either way.
//
// Both paths are arithmetically bit-identical: the reach is processed in
// elimination-step order — ascending through L, descending through U —
// which is exactly the dense loop order with its guaranteed-zero
// contributions elided, so no accumulation is ever reordered. That
// equivalence is what lets the pricing layers switch paths per solve
// without perturbing a single pivot.
func (f *factor) ftranSparse(v []float64, vind []int32, out []int32, class int) ([]int32, bool) {
	out = out[:0]
	m := f.m
	if f.forceDense || m < hyperMinDim {
		f.ftran(v)
		return out, false
	}
	capN := m / hyperDenseDiv
	// Symbolic reach through L: close the RHS support (mapped to
	// elimination steps) over the L column patterns.
	f.newStamp()
	reach := f.reach[:0]
	mark, stamp := f.mark, f.stamp
	for _, r := range vind {
		k := f.rowStep[r]
		if mark[k] != stamp {
			mark[k] = stamp
			f.bitReach[k>>6] |= 1 << (uint32(k) & 63)
			reach = append(reach, k)
		}
	}
	f.reach = reach
	if len(f.reach) > capN || !f.expandReach(f.lOff, f.lStep, capN) {
		clearBitList(f.bitReach, f.reach)
		f.ftran(v)
		return out, false
	}
	f.reach = sweepBits(f.bitReach, f.reach)
	setBitList(f.bitReach, f.reach)
	// Forward solve through L over the reach, ascending step order.
	for _, k := range f.reach {
		zk := v[f.perm[k]]
		if zk == 0 {
			continue
		}
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			v[f.lRow[e]] -= f.lVal[e] * zk
		}
	}
	// Close the post-L support over the U column patterns, in place: the L
	// reach seeds the U reach. In a dense-U regime, skip the expansion
	// between probes: the attempt is capN-bounded wasted work whenever it
	// aborts, and by this point the cheap sparse L phase is already banked.
	if f.denseRun[class] >= hyperRunMin && f.denseRun[class]%hyperProbeEvery != 0 {
		f.denseRun[class]++
		clearBitList(f.bitReach, f.reach)
		f.ftranUDense(v)
		f.ftranEtasDense(v)
		return out, false
	}
	if !f.expandReach(f.uOff, f.uStep, capN) {
		f.denseRun[class]++
		clearBitList(f.bitReach, f.reach)
		f.ftranUDense(v)
		f.ftranEtasDense(v)
		return out, false
	}
	f.denseRun[class] = 0
	f.reach = sweepBits(f.bitReach, f.reach)
	reach = f.reach
	// Backward solve through U over the reach, descending step order,
	// gathered into swork.
	y := f.swork
	for i := len(reach) - 1; i >= 0; i-- {
		k := reach[i]
		yk := v[f.perm[k]] / f.uDiag[k]
		y[k] = yk
		if yk == 0 {
			continue
		}
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			v[f.perm[f.uStep[e]]] -= f.uVal[e] * yk
		}
	}
	// Consume the engine-row entries, then scatter the result to basis
	// positions — two passes, since a position slot may alias a still-
	// unconsumed row slot.
	for _, k := range reach {
		v[f.perm[k]] = 0
	}
	f.newPStamp()
	pmark, pstamp := f.pmark, f.pstamp
	bs := f.bitOut
	for _, k := range reach {
		p := f.cperm[k]
		v[p] = y[k]
		y[k] = 0
		pmark[p] = pstamp
		bs[p>>6] |= 1 << (uint32(p) & 63)
		out = append(out, p)
	}
	// Eta file, oldest first, tracking new support as it appears.
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		vr := v[r]
		if vr == 0 {
			continue
		}
		vr /= f.etaPiv[e]
		v[r] = vr
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			idx := f.etaIdx[q]
			v[idx] -= f.etaVal[q] * vr
			if pmark[idx] != pstamp {
				pmark[idx] = pstamp
				bs[idx>>6] |= 1 << (uint32(idx) & 63)
				out = append(out, idx)
			}
		}
	}
	if len(out) > capN {
		clearBitList(bs, out)
		return out[:0], false
	}
	return sweepBits(bs, out), true
}

// btranSparse solves Bᵀ·y = v like btran for a right-hand side with support
// vind (basis positions; superset and duplicates fine), mirroring
// ftranSparse's contract and fallback: the result's support comes back as
// sorted engine rows with sparse = true, or the solve completes densely
// with sparse = false. The eta pass always walks the whole file — each eta
// reads its full recorded row, so there is nothing to elide — which keeps
// it O(nnz(etas)) on every path, exactly the dense cost.
func (f *factor) btranSparse(v []float64, vind []int32, out []int32) ([]int32, bool) {
	out = out[:0]
	m := f.m
	if f.forceDense || m < hyperMinDim {
		f.btran(v)
		return out, false
	}
	capN := m / hyperDenseDiv
	// Eta transposes, newest first, tracking where support appears (the
	// position-space pattern borrows out; it is consumed by the seeding
	// below and reset before rows are collected).
	f.newPStamp()
	pmark, pstamp := f.pmark, f.pstamp
	for _, p := range vind {
		if pmark[p] != pstamp {
			pmark[p] = pstamp
			out = append(out, p)
		}
	}
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		s := 0.0
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			s += f.etaVal[q] * v[f.etaIdx[q]]
		}
		vr := (v[r] - s) / f.etaPiv[e]
		v[r] = vr
		if vr != 0 && pmark[r] != pstamp {
			pmark[r] = pstamp
			out = append(out, r)
		}
	}
	// Seed the Uᵀ reach from the post-eta support (numerically zero
	// entries contribute nothing and stay out).
	f.newStamp()
	reach := f.reach[:0]
	mark, stamp := f.mark, f.stamp
	for _, p := range out {
		if v[p] == 0 {
			continue
		}
		k := f.posStep[p]
		if mark[k] != stamp {
			mark[k] = stamp
			f.bitReach[k>>6] |= 1 << (uint32(k) & 63)
			reach = append(reach, k)
		}
	}
	f.reach = reach
	if len(f.reach) > capN || !f.expandReach(f.urOff, f.urAdj, capN) {
		clearBitList(f.bitReach, f.reach)
		f.btranUTDense(v)
		f.btranLTDense(v)
		return out[:0], false
	}
	out = out[:0]
	f.reach = sweepBits(f.bitReach, f.reach)
	setBitList(f.bitReach, f.reach)
	// Forward solve through Uᵀ over the reach, ascending step order,
	// consuming the position-space entries as they are read.
	z := f.swork
	for _, k := range f.reach {
		p := f.cperm[k]
		zk := v[p]
		v[p] = 0
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			zk -= f.uVal[e] * z[f.uStep[e]]
		}
		z[k] = zk / f.uDiag[k]
	}
	// Close over the Lᵀ pattern and solve descending.
	if !f.expandReach(f.lrOff, f.lrAdj, capN) {
		clearBitList(f.bitReach, f.reach)
		f.btranLTDense(v)
		return out, false
	}
	f.reach = sweepBits(f.bitReach, f.reach)
	reach = f.reach
	for i := len(reach) - 1; i >= 0; i-- {
		k := reach[i]
		yk := z[k]
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			yk -= f.lVal[e] * z[f.rowStep[f.lRow[e]]]
		}
		z[k] = yk
	}
	bs := f.bitOut
	for _, k := range reach {
		r := f.perm[k]
		v[r] = z[k]
		z[k] = 0
		bs[r>>6] |= 1 << (uint32(r) & 63)
		out = append(out, r)
	}
	return sweepBits(bs, out), true
}
