package lp

import (
	"math"
	"math/bits"
)

// factor is the factorized representation of the basis: a sparse LU
// factorization of the basis matrix as of the last refactorization, kept
// current across basis changes by Forrest–Tomlin updates that rewrite U in
// place (the product-form eta file is retained behind FactorizationPFI for
// ablation). It replaces the explicit dense m×m inverse the engine carried
// before — every former B⁻¹·v product is now an FTRAN (forward solve
// through L, the row-eta list, and the updated U) and every vᵀ·B⁻¹ product
// a BTRAN (the same chain transposed, in reverse), so per-pivot work tracks
// the sparsity of the factors instead of m².
//
// # Factorization
//
// refactorize performs a left-looking sparse LU with a static Markowitz-style
// column ordering (basis columns processed in ascending nonzero count, which
// claims the unit logical columns first — on covering masters they are the
// bulk of the basis and generate no fill) and partial pivoting by largest
// residual magnitude within the column. Two index spaces meet here: basis
// *positions* (which slot of the basis a column occupies — the space xB and
// FTRAN results live in) and engine *rows* (the constraint-row space BTRAN
// results and right-hand sides live in). perm maps elimination step to the
// pivot's engine row, cperm to its basis position; the triangular solves
// translate between the spaces so callers never see elimination order.
//
// # Forrest–Tomlin update
//
// Under the default rule, elimination steps become permanent *slots*: perm,
// cperm, rowStep and posStep never change between refactorizations, and a
// separate cyclic triangular order (ordSlot/slotOrd, the identity at
// refactorization) records where each slot currently stands in U's
// triangle. When column q enters the basis at position p, the slot
// kp = posStep[p] has its U column replaced by the entering column's
// *spike* — L̄⁻¹·A_q, the entering FTRAN's intermediate after the L solve
// and the accumulated row etas, stashed by ftranSparse before its U phase —
// and kp rotates to the end of the order. The replacement leaves row kp's
// old entries as a bump below the new diagonal; ftUpdate eliminates the
// bump by solving μᵀ·U_sub = (row kp)ᵀ over the columns ordered after kp
// and records the multipliers as one short row-eta transform
// M = I − e_kp·μᵀ, so B = L̄·U stays factored with
// L̄⁻¹ = M_k·…·M_1·L⁻¹. FTRAN applies the row etas oldest-first between L
// and U; BTRAN applies their transposes newest-first between Uᵀ and Lᵀ.
// Unlike the product-form eta file, the per-pivot state is one row eta
// whose support is the *eliminated row remainder* — typically a handful of
// entries — and neither solve direction ever pays a pass over every pivot
// since the refactorization.
//
// U's mutable columns live in per-slot slice headers (ucRows/ucVals) into
// the refactorization arena or, once replaced, the spike arena; the
// row-major pattern (rcOff/rcLen/rcCap into rcArena) tracks, per row slot,
// the columns that may contain it. Row lists are *stale-tolerated*: a
// deleted or replaced entry's back-reference is dropped lazily, because a
// symbolic overestimate only costs work, never correctness — the reach
// closures treat them as pattern supersets, and the update filters
// candidates to the live triangle by order. When a spike's eliminated
// diagonal falls below ftPivotTol (relative to the spike's magnitude),
// ftUpdate refuses before mutating anything and the engine refactorizes
// from the post-pivot basis instead, counted in KernelStats.ForcedRefactors.
//
// # Eta file (PFI ablation)
//
// Under FactorizationPFI the factors stay frozen and pushEta records one
// product-form eta (r, w = B⁻¹·A_q) per basis change; FTRAN applies the
// recorded operations oldest-first after the triangular solves, BTRAN
// applies their transposes newest-first before them — the pass whose
// O(etas × nnz) growth the Forrest–Tomlin representation eliminates,
// measured by KernelStats.EtaDotOps.
//
// # Storage
//
// All factor content lives in shared arenas (offset-indexed backing slices)
// owned by the struct and reset, not reallocated, at each refactorization —
// steady-state pivoting and periodic refactorization are allocation-free
// once the arenas have warmed up. (The Forrest–Tomlin spike and row-list
// arenas may grow between refactorizations when updates out-fill their
// headroom; relocated regions leak until the next fold, which is the same
// transient profile the eta file had.)
type factor struct {
	m int

	// LU of the refactorization-time basis B0.
	perm    []int32   // elimination step -> engine row of the pivot
	cperm   []int32   // elimination step -> basis position eliminated
	rowStep []int32   // engine row -> elimination step (inverse of perm)
	uDiag   []float64 // pivot values, by step

	// L (unit lower triangular) multipliers, column-major by step: column k
	// holds the rows still unclaimed at step k, arena range lOff[k]..lOff[k+1].
	lOff []int32
	lRow []int32 // engine rows
	lVal []float64

	// U above-diagonal entries, column-major by step: column k holds its
	// entries at earlier steps, arena range uOff[k]..uOff[k+1].
	uOff  []int32
	uStep []int32 // earlier elimination steps
	uVal  []float64

	// Eta file, oldest first: eta e pivots position etaPos[e] with pivot
	// value etaPiv[e]; its off-pivot nonzeros occupy etaOff[e]..etaOff[e+1].
	etaPos []int32
	etaPiv []float64
	etaOff []int32
	etaIdx []int32 // basis positions
	etaVal []float64

	luNNZ int // nonzeros in L+U at the last refactorization

	// Scratch for the solves and the factorization, length m, plus the
	// column-pattern worklist. xwork and swork must be all-zero between
	// uses (every solve path, dense included, restores swork on exit).
	xwork  []float64
	swork  []float64
	patt   []int32
	order  []int32 // column processing order scratch
	counts []int32 // counting-sort scratch for the column ordering

	// Hypersparse solve support (see the kernel section of the package
	// comment). The derived adjacency below is rebuilt by refactorize;
	// the mark arrays are stamp-versioned so solves never re-zero them.
	posStep []int32 // basis position -> elimination step (inverse of cperm)
	lStep   []int32 // lRow mapped through rowStep: L column adjacency in step space
	urOff   []int32 // row-major U pattern: step j -> later columns holding j
	urAdj   []int32
	lrOff   []int32 // row-major L pattern: step j -> earlier columns holding j's pivot row
	lrAdj   []int32
	mark    []int32 // step-space visit stamps for the reach traversal
	stamp   int32
	pmark   []int32 // position/row-space stamps for result-pattern dedup
	pstamp  int32
	reach   []int32 // reach worklist scratch, elimination steps

	// Bit mirrors of the reach and result-support memberships, kept
	// all-zero between solves. They exist purely for sorted emission:
	// sweeping ⌈m/64⌉ words ascending replaces the comparison sorts the
	// bit-identity contract demands (reaches must be processed in
	// elimination-step order, supports returned ascending) at O(m/64 + k)
	// instead of O(k log k). Every exit path restores the all-zero state —
	// sweepBits clears as it emits, fallbacks clear through the list.
	bitReach []uint64 // step-space mirror of f.reach membership
	bitOut   []uint64 // position/row-space mirror of a result support

	// denseRun counts consecutive dense-outcome FTRANs per caller class.
	// Aborting a reach traversal costs real work (the L reach may be fully
	// expanded and solved before the U closure blows the cap), so once a
	// class is in a dense regime the solver stops attempting reaches and
	// only probes periodically; a hyper success resets the run. Pure cost
	// control: either path yields bit-identical results.
	denseRun [ftranClasses]int

	// forceDense routes every solve down the dense kernels — the ablation
	// hook behind Problem.SetDenseKernels. Both paths are bit-identical by
	// construction (the equivalence suite asserts identical pivot
	// sequences), so flipping this changes cost, never results.
	forceDense bool

	// rule selects the update representation (Forrest–Tomlin by default,
	// product-form eta file for ablation); stats, when set, receives the
	// kernel counters the factor maintains itself (FT updates, spike fill,
	// eta-dot traversals). Both are fixed for the life of the owning engine
	// state.
	rule  FactorizationRule
	stats *KernelStats

	// Forrest–Tomlin state, valid only under FactorizationFT.
	ordSlot []int32 // triangular order -> slot (identity at refactorization)
	slotOrd []int32 // slot -> triangular order
	// U's mutable columns, one header per slot: the off-diagonal entries
	// (row slots + values) of the column currently owned by the slot,
	// pointing into the refactorization arena (uStep/uVal) until the column
	// is replaced by a spike, then into the spike arena.
	ucRows  [][]int32
	ucVals  [][]float64
	spkRows []int32
	spkVals []float64
	// Row-major U pattern, per row slot: the columns that may contain the
	// row (stale-tolerated superset; see the package comment). Offset/len/
	// cap per slot into rcArena, with slack so appends rarely relocate.
	rcOff   []int32
	rcLen   []int32
	rcCap   []int32
	rcArena []int32
	// Row etas, oldest first: eta e eliminates row slot retaRow[e] with
	// multipliers retaVal over support slots retaIdx, range
	// retaOff[e]..retaOff[e+1]. Identity etas (empty bumps) are not stored.
	retaRow []int32
	retaOff []int32
	retaIdx []int32
	retaVal []float64
	// The stashed spike of the last entering-column FTRAN: L̄⁻¹·A_q as
	// (slot, value) pairs ascending slot, identical no matter which kernel
	// path captured it. spikeOK arms ftUpdate and is consumed by it.
	spikeInd []int32
	spikeVal []float64
	spikeOK  bool
	// Update-side scratch and fold-policy gauges.
	upCols    []int32 // seed columns of the current bump elimination
	upIdx     []int32 // index of the eliminated row's entry within each
	upProc    []int32 // candidate slots processed (for scratch restore)
	ftUpdates int     // updates applied since the last refactorization
	uNNZ      int     // current off-diagonal U nonzeros (maintained by updates)
}

// FTRAN caller classes for the dense-regime predictor: the entering
// column, the steepest-edge tau solve, and the batched bound-flip solve
// have very different right-hand-side sparsity, so each class tracks its
// own regime (a shared run would flap between a sparse entering stream
// and a dense tau stream and predict neither).
const (
	ftranEnter = iota
	ftranTau
	ftranFlip
	ftranClasses
)

// Dense-regime predictor tuning: a class enters the dense regime after
// hyperRunMin consecutive dense outcomes and then attempts a reach only
// every hyperProbeEvery calls.
const (
	hyperRunMin     = 4
	hyperProbeEvery = 16
)

// Hypersparse path tuning.
const (
	// hyperMinDim: below this dimension the dense kernels win outright and
	// every solve takes the dense path.
	hyperMinDim = 64
	// hyperDenseDiv: a reach traversal aborts to the dense path once the
	// tracked closure exceeds m/hyperDenseDiv (~25% of m), so worst-case
	// right-hand sides never pay index overhead on top of dense work.
	hyperDenseDiv = 4
)

// basisMatrix is what refactorize needs from the engine: the sparse columns
// of the current basis, one per basis position. It is an interface rather
// than a pair of callbacks so that refactorization allocates no closures.
type basisMatrix interface {
	// basisColNNZ reports the nonzero count of the column at position p.
	basisColNNZ(p int) int
	// scatterBasisColumn adds the column at position p into the dense
	// engine-row-indexed accumulator x, appending each row whose value was
	// zero before the add to patt, and returns the extended pattern.
	scatterBasisColumn(p int, x []float64, patt []int32) []int32
}

// singularTol is the smallest pivot magnitude refactorize accepts. A basis
// whose best remaining pivot falls below it is reported as numerically
// singular and the previous representation is kept (the engine's verify /
// cold-fallback layers take it from there).
const singularTol = 1e-11

// Forrest–Tomlin tuning.
const (
	// ftPivotTol is the stability floor of the update: a spike whose
	// eliminated diagonal has magnitude below ftPivotTol·(1 + max|spike|)
	// would poison every later solve, so ftUpdate refuses (mutating
	// nothing) and the engine refactorizes instead.
	ftPivotTol = 1e-10
	// Fold policy: refactorize after maxFTUpdates in-place updates, or
	// when the updated U plus its row etas outgrow ftFillBloat times the
	// refactorization-time factor fill. Replaces the PFI maxEtas/etaBloat
	// heuristic, which was tuned for a representation whose *solve* cost
	// grew with every pivot; here only fill and accumulated roundoff do —
	// so the update count doubles as the trajectory lever on the massively
	// degenerate covering masters, where FT-vs-PFI rounding differences
	// steer tie-breaks into different pivot-count basins. A short cadence
	// bounds the update-era drift and empirically lands the canonical
	// endurance instances in basins at or below the eta-file era's
	// (T = 16384: 10719 pivots vs 39147; T = 32768: 96339 vs 94849);
	// longer cadences (32–192) were swept and land up to 6× worse at
	// T = 32768 despite lower per-pivot overhead.
	maxFTUpdates = 16
	ftFillBloat  = 8
)

// reset prepares the factor for a refactorization at dimension m, reusing
// arena capacity.
func (f *factor) reset(m int) {
	grow32 := func(s []int32, n int) []int32 {
		if cap(s) < n {
			return make([]int32, n, n+n/4+16)
		}
		return s[:n]
	}
	growF := func(s []float64, n int) []float64 {
		if cap(s) < n {
			return make([]float64, n, n+n/4+16)
		}
		return s[:n]
	}
	f.m = m
	f.perm = grow32(f.perm, 0)
	f.cperm = grow32(f.cperm, 0)
	f.rowStep = grow32(f.rowStep, m)
	for i := range f.rowStep {
		f.rowStep[i] = -1
	}
	f.uDiag = growF(f.uDiag, 0)
	f.lOff = grow32(f.lOff, 1)
	f.lOff[0] = 0
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uOff = grow32(f.uOff, 1)
	f.uOff[0] = 0
	f.uStep = f.uStep[:0]
	f.uVal = f.uVal[:0]
	f.clearEtas()
	if cap(f.xwork) < m {
		f.xwork = make([]float64, m, m+m/4+16)
		f.swork = make([]float64, m, m+m/4+16)
	} else {
		f.xwork = f.xwork[:m]
		f.swork = f.swork[:m]
		for i := range f.xwork {
			f.xwork[i] = 0
		}
		for i := range f.swork {
			f.swork[i] = 0
		}
	}
	f.patt = f.patt[:0]
}

// growI32 resizes an int32 arena slice to n, reusing capacity.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n+n/4+16)
	}
	return s[:n]
}

// clearEtas drops the eta file (the basis it encodes has just been folded
// into a fresh LU).
func (f *factor) clearEtas() {
	f.etaPos = f.etaPos[:0]
	f.etaPiv = f.etaPiv[:0]
	if f.etaOff == nil {
		f.etaOff = make([]int32, 1, 64)
	}
	f.etaOff = f.etaOff[:1]
	f.etaOff[0] = 0
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
}

// etas reports the current eta-file length.
func (f *factor) etas() int { return len(f.etaPos) }

// etaNNZ reports the total off-pivot nonzeros recorded in the eta file.
func (f *factor) etaNNZ() int { return len(f.etaIdx) }

// refactorize builds a fresh LU of the basis described by src. It reports
// false when the basis is numerically singular, leaving the factor unusable
// (callers must not solve with it until a refactorization succeeds).
func (f *factor) refactorize(m int, src basisMatrix) bool {
	f.reset(m)
	// Static Markowitz-style ordering: columns by ascending nonzero count,
	// ties by position for determinism. Counting sort — counts are tiny.
	if cap(f.order) < m {
		f.order = make([]int32, m, m+m/4+16)
	}
	order := f.order[:m]
	maxN := 0
	for p := 0; p < m; p++ {
		if c := src.basisColNNZ(p); c > maxN {
			maxN = c
		}
	}
	if cap(f.counts) < maxN+2 {
		f.counts = make([]int32, maxN+2, maxN+maxN/4+18)
	}
	counts := f.counts[:maxN+2]
	for c := range counts {
		counts[c] = 0
	}
	for p := 0; p < m; p++ {
		counts[src.basisColNNZ(p)+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	for p := 0; p < m; p++ {
		c := src.basisColNNZ(p)
		order[counts[c]] = int32(p)
		counts[c]++
	}

	x := f.xwork
	for _, p32 := range order {
		p := int(p32)
		k := len(f.perm)
		// Scatter the column, engine-row indexed.
		f.patt = src.scatterBasisColumn(p, x, f.patt[:0])
		// Apply the completed elimination steps in order. Updates can only
		// introduce nonzeros at rows claimed by later steps, which this
		// forward sweep has yet to read, so a single ordered pass suffices.
		for q := 0; q < k; q++ {
			zq := x[f.perm[q]]
			if zq == 0 {
				continue
			}
			f.uStep = append(f.uStep, int32(q))
			f.uVal = append(f.uVal, zq)
			for e := f.lOff[q]; e < f.lOff[q+1]; e++ {
				r := f.lRow[e]
				if x[r] == 0 {
					f.patt = append(f.patt, r)
				}
				x[r] -= f.lVal[e] * zq
			}
		}
		f.uOff = append(f.uOff, int32(len(f.uStep)))
		// Partial pivoting over the unclaimed rows.
		piv, best := int32(-1), singularTol
		for _, r := range f.patt {
			if f.rowStep[r] >= 0 {
				continue
			}
			if a := math.Abs(x[r]); a > best {
				piv, best = r, a
			}
		}
		if piv < 0 {
			// Singular: clear scratch and bail.
			for _, r := range f.patt {
				x[r] = 0
			}
			return false
		}
		d := x[piv]
		f.perm = append(f.perm, piv)
		f.cperm = append(f.cperm, int32(p))
		f.rowStep[piv] = int32(k)
		f.uDiag = append(f.uDiag, d)
		// Build the L column and zero the scratch in one pass. Zeroing on
		// first visit also neutralizes duplicate pattern entries (a value
		// that cancelled to exactly zero mid-sweep and was re-added).
		for _, r := range f.patt {
			xr := x[r]
			x[r] = 0
			if xr == 0 || f.rowStep[r] >= 0 {
				continue
			}
			f.lRow = append(f.lRow, r)
			f.lVal = append(f.lVal, xr/d)
		}
		f.lOff = append(f.lOff, int32(len(f.lRow)))
	}
	f.luNNZ = len(f.lRow) + len(f.uStep) + m
	f.buildReachAdjacency()
	if f.rule == FactorizationFT {
		f.initFT()
	}
	return true
}

// initFT derives the Forrest–Tomlin working state from a fresh LU: identity
// triangular order, per-slot U column headers into the refactorization
// arena, and the growable row lists seeded from the transposed U pattern.
// Runs once per refactorization, O(m + nnz(U)).
func (f *factor) initFT() {
	m := f.m
	f.ordSlot = growI32(f.ordSlot, m)
	f.slotOrd = growI32(f.slotOrd, m)
	for k := 0; k < m; k++ {
		f.ordSlot[k] = int32(k)
		f.slotOrd[k] = int32(k)
	}
	if cap(f.ucRows) < m {
		f.ucRows = make([][]int32, m, m+m/4+16)
		f.ucVals = make([][]float64, m, m+m/4+16)
	} else {
		f.ucRows = f.ucRows[:m]
		f.ucVals = f.ucVals[:m]
	}
	for k := 0; k < m; k++ {
		lo, hi := f.uOff[k], f.uOff[k+1]
		f.ucRows[k] = f.uStep[lo:hi:hi]
		f.ucVals[k] = f.uVal[lo:hi:hi]
	}
	// Row lists: the transposed pattern built by buildReachAdjacency, copied
	// with a little per-row slack so the first spike appends stay in place.
	f.rcOff = growI32(f.rcOff, m)
	f.rcLen = growI32(f.rcLen, m)
	f.rcCap = growI32(f.rcCap, m)
	const rcSlack = 2
	need := len(f.urAdj) + rcSlack*m
	if cap(f.rcArena) < need {
		f.rcArena = make([]int32, 0, need+need/4+16)
	}
	f.rcArena = f.rcArena[:0]
	for r := 0; r < m; r++ {
		lo, hi := f.urOff[r], f.urOff[r+1]
		f.rcOff[r] = int32(len(f.rcArena))
		f.rcLen[r] = hi - lo
		f.rcCap[r] = hi - lo + rcSlack
		f.rcArena = append(f.rcArena, f.urAdj[lo:hi]...)
		for s := 0; s < rcSlack; s++ {
			f.rcArena = append(f.rcArena, 0)
		}
	}
	f.retaRow = f.retaRow[:0]
	if f.retaOff == nil {
		f.retaOff = make([]int32, 1, 64)
	}
	f.retaOff = f.retaOff[:1]
	f.retaOff[0] = 0
	f.retaIdx = f.retaIdx[:0]
	f.retaVal = f.retaVal[:0]
	f.spkRows = f.spkRows[:0]
	f.spkVals = f.spkVals[:0]
	f.uNNZ = len(f.uStep)
	f.ftUpdates = 0
	f.spikeOK = false
}

// rcAppend records that column c (now) contains row slot r, relocating the
// row's list to the arena tail with doubled capacity when it is full (the
// abandoned region leaks until the next refactorization resets the arena).
func (f *factor) rcAppend(r, c int32) {
	if f.rcLen[r] == f.rcCap[r] {
		n := f.rcLen[r]
		newCap := n*2 + 4
		start := int32(len(f.rcArena))
		f.rcArena = append(f.rcArena, f.rcArena[f.rcOff[r]:f.rcOff[r]+n]...)
		for i := n; i < newCap; i++ {
			f.rcArena = append(f.rcArena, 0)
		}
		f.rcOff[r] = start
		f.rcCap[r] = newCap
	}
	f.rcArena[f.rcOff[r]+f.rcLen[r]] = c
	f.rcLen[r]++
}

// buildReachAdjacency derives the pattern structures the hypersparse reach
// traversals need from a fresh LU: the cperm inverse, the L column patterns
// mapped to step space, and row-major (transposed, pattern-only) views of L
// and U for the BTRAN-side closures. Runs once per refactorization, O(m +
// nnz(L+U)).
func (f *factor) buildReachAdjacency() {
	m := f.m
	f.posStep = growI32(f.posStep, m)
	for k := 0; k < m; k++ {
		f.posStep[f.cperm[k]] = int32(k)
	}
	f.lStep = growI32(f.lStep, len(f.lRow))
	for e, r := range f.lRow {
		f.lStep[e] = f.rowStep[r]
	}
	f.urOff, f.urAdj = transposePattern(m, f.uOff, f.uStep, f.urOff, f.urAdj)
	f.lrOff, f.lrAdj = transposePattern(m, f.lOff, f.lStep, f.lrOff, f.lrAdj)
	// Mark arrays track visits by stamp: slots freshly zeroed by growth can
	// never match a bumped stamp, so no per-solve clearing is needed.
	f.mark = growI32(f.mark, m)
	f.pmark = growI32(f.pmark, m)
	// A fresh factorization drops the eta file, so every class gets a
	// fresh shot at the hyper path.
	f.denseRun = [ftranClasses]int{}
	// Bit mirrors hold the all-zero invariant between solves, so growth
	// can reallocate without copying the old words.
	if nw := (m + 63) / 64; len(f.bitReach) < nw {
		f.bitReach = make([]uint64, nw+nw/4+8)
		f.bitOut = make([]uint64, len(f.bitReach))
	}
}

// sweepBits rebuilds list as the ascending set bits of bs, clearing bs as
// it sweeps. bs must mirror list's membership exactly; the sweep is the
// sorted-emission replacement for sorting the unordered list.
func sweepBits(bs []uint64, list []int32) []int32 {
	list = list[:0]
	for w, word := range bs {
		if word == 0 {
			continue
		}
		bs[w] = 0
		base := int32(w << 6)
		for word != 0 {
			list = append(list, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return list
}

// setBitList re-marks list's members after an intermediate sweep consumed
// them (the reach is sorted once mid-solve and swept again after closure).
func setBitList(bs []uint64, list []int32) {
	for _, k := range list {
		bs[k>>6] |= 1 << (uint32(k) & 63)
	}
}

// clearBitList restores the all-zero invariant on a fallback path, where
// the accumulated list is abandoned before any clearing sweep runs.
func clearBitList(bs []uint64, list []int32) {
	for _, k := range list {
		bs[k>>6] &^= 1 << (uint32(k) & 63)
	}
}

// transposePattern builds the pattern-only CSR transpose of (off, adj) over
// m nodes into the reusable arenas (tOff, tAdj).
func transposePattern(m int, off, adj []int32, tOff, tAdj []int32) ([]int32, []int32) {
	tOff = growI32(tOff, m+1)
	for j := 0; j <= m; j++ {
		tOff[j] = 0
	}
	for _, j := range adj {
		tOff[j+1]++
	}
	for j := 0; j < m; j++ {
		tOff[j+1] += tOff[j]
	}
	tAdj = growI32(tAdj, len(adj))
	for k := 0; k < m; k++ {
		for e := off[k]; e < off[k+1]; e++ {
			j := adj[e]
			tAdj[tOff[j]] = int32(k)
			tOff[j]++
		}
	}
	for j := m; j > 0; j-- {
		tOff[j] = tOff[j-1]
	}
	tOff[0] = 0
	return tOff, tAdj
}

// newStamp advances the step-space visit stamp, clearing the mark array on
// the (effectively unreachable) int32 wraparound.
func (f *factor) newStamp() {
	if f.stamp == math.MaxInt32 {
		for i := range f.mark {
			f.mark[i] = 0
		}
		f.stamp = 0
	}
	f.stamp++
}

// newPStamp is newStamp for the position/row-space pattern marks.
func (f *factor) newPStamp() {
	if f.pstamp == math.MaxInt32 {
		for i := range f.pmark {
			f.pmark[i] = 0
		}
		f.pstamp = 0
	}
	f.pstamp++
}

// expandReach closes the pre-seeded, pre-marked worklist f.reach over the
// CSR pattern (off, adj), appending newly reached steps. It reports false —
// the dense-fallback signal — once the closure would exceed capN steps.
func (f *factor) expandReach(off, adj []int32, capN int) bool {
	reach, mark, stamp := f.reach, f.mark, f.stamp
	bs := f.bitReach
	for head := 0; head < len(reach); head++ {
		k := reach[head]
		for e := off[k]; e < off[k+1]; e++ {
			s := adj[e]
			if mark[s] != stamp {
				mark[s] = stamp
				if len(reach) >= capN {
					f.reach = reach
					return false
				}
				bs[s>>6] |= 1 << (uint32(s) & 63)
				reach = append(reach, s)
			}
		}
	}
	f.reach = reach
	return true
}

// pushEta records the basis change "column entering at position pos with
// pivot column w" (w = B⁻¹·A_entering, dense, length m).
func (f *factor) pushEta(pos int, w []float64) {
	f.etaPos = append(f.etaPos, int32(pos))
	f.etaPiv = append(f.etaPiv, w[pos])
	for i, wi := range w {
		if wi != 0 && i != pos {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaOff = append(f.etaOff, int32(len(f.etaIdx)))
}

// pushEtaSparse is pushEta for a pivot column whose support is listed in
// wind (sorted ascending, so the recorded eta entries match the dense
// scan's order bit for bit; a superset with exact zeros is fine — zeros are
// skipped exactly as the dense scan skips them).
func (f *factor) pushEtaSparse(pos int, w []float64, wind []int32) {
	f.etaPos = append(f.etaPos, int32(pos))
	f.etaPiv = append(f.etaPiv, w[pos])
	for _, i := range wind {
		if wi := w[i]; wi != 0 && int(i) != pos {
			f.etaIdx = append(f.etaIdx, i)
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaOff = append(f.etaOff, int32(len(f.etaIdx)))
}

// ftran solves B·x = v in place through the dense kernels: on entry v holds
// a right-hand side indexed by engine row; on return it holds the solution
// indexed by basis position. The hypersparse entry point is ftranSparse;
// this dense chain doubles as its fallback, phase by phase.
func (f *factor) ftran(v []float64) {
	if f.rule == FactorizationFT {
		f.ftranDenseFT(v, false)
		return
	}
	f.ftranLDense(v)
	f.ftranUDense(v)
	f.ftranEtasDense(v)
}

// ftranDenseFT is the dense Forrest–Tomlin FTRAN chain: L, then the row
// etas, then the updated U. With capture set (an entering-column solve) it
// stashes the spike — the intermediate between the row etas and the U solve
// — for the ftUpdate that pivot will request.
func (f *factor) ftranDenseFT(v []float64, capture bool) {
	f.ftranLDense(v)
	f.ftranRetasDense(v)
	if capture {
		f.spikeInd = f.spikeInd[:0]
		f.spikeVal = f.spikeVal[:0]
		for k := 0; k < f.m; k++ {
			if sv := v[f.perm[k]]; sv != 0 {
				f.spikeInd = append(f.spikeInd, int32(k))
				f.spikeVal = append(f.spikeVal, sv)
			}
		}
		f.spikeOK = true
	}
	f.ftranUDenseFT(v)
}

// ftranRetasDense applies the row etas, oldest first: each transform
// M = I − e_r·μᵀ acts on the engine-row-indexed intermediate through perm.
func (f *factor) ftranRetasDense(v []float64) {
	for e := 0; e < len(f.retaRow); e++ {
		s := 0.0
		for q := f.retaOff[e]; q < f.retaOff[e+1]; q++ {
			s += f.retaVal[q] * v[f.perm[f.retaIdx[q]]]
		}
		v[f.perm[f.retaRow[e]]] -= s
	}
}

// ftranUDenseFT is ftranUDense against the updated U: the same backward
// solve walked in the mutable triangular order through the per-slot column
// headers. It restores the swork all-zero invariant on exit.
func (f *factor) ftranUDenseFT(v []float64) {
	m := f.m
	y := f.swork
	for oi := m - 1; oi >= 0; oi-- {
		k := f.ordSlot[oi]
		pv := v[f.perm[k]]
		if pv == 0 {
			y[k] = 0
			continue
		}
		yk := pv / f.uDiag[k]
		y[k] = yk
		rows, vals := f.ucRows[k], f.ucVals[k]
		for e, r := range rows {
			v[f.perm[r]] -= vals[e] * yk
		}
	}
	for k := 0; k < m; k++ {
		v[f.cperm[k]] = y[k]
		y[k] = 0
	}
}

// ftranLDense is the dense forward solve through L (engine-row space).
func (f *factor) ftranLDense(v []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		zk := v[f.perm[k]]
		if zk == 0 {
			continue
		}
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			v[f.lRow[e]] -= f.lVal[e] * zk
		}
	}
}

// ftranUDense is the dense backward solve through U (elimination-step
// space), result gathered into scratch then scattered to basis positions.
// It restores the swork all-zero invariant on exit.
func (f *factor) ftranUDense(v []float64) {
	m := f.m
	y := f.swork
	for k := m - 1; k >= 0; k-- {
		pv := v[f.perm[k]]
		if pv == 0 {
			y[k] = 0
			continue
		}
		yk := pv / f.uDiag[k]
		y[k] = yk
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			v[f.perm[f.uStep[e]]] -= f.uVal[e] * yk
		}
	}
	for k := 0; k < m; k++ {
		v[f.cperm[k]] = y[k]
		y[k] = 0
	}
}

// ftranEtasDense applies the eta file, oldest first (position space).
func (f *factor) ftranEtasDense(v []float64) {
	ops := 0
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		vr := v[r]
		if vr == 0 {
			continue
		}
		vr /= f.etaPiv[e]
		v[r] = vr
		ops += int(f.etaOff[e+1] - f.etaOff[e])
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			v[f.etaIdx[q]] -= f.etaVal[q] * vr
		}
	}
	if f.stats != nil {
		f.stats.EtaDotOps += ops
	}
}

// btran solves Bᵀ·y = v in place through the dense kernels: on entry v is
// indexed by basis position; on return it holds the solution indexed by
// engine row. btranSparse is the hypersparse entry point; these phases
// double as its fallback.
func (f *factor) btran(v []float64) {
	if f.rule == FactorizationFT {
		f.btranUTDenseFT(v)
		f.btranRetasOnZ()
		f.btranLTDense(v)
		return
	}
	f.btranEtasDense(v)
	f.btranUTDense(v)
	f.btranLTDense(v)
}

// btranUTDenseFT is btranUTDense against the updated U, walked in the
// mutable triangular order through the per-slot column headers, gathered
// into swork (slot space).
func (f *factor) btranUTDenseFT(v []float64) {
	m := f.m
	z := f.swork
	for oi := 0; oi < m; oi++ {
		k := f.ordSlot[oi]
		zk := v[f.cperm[k]]
		rows, vals := f.ucRows[k], f.ucVals[k]
		for e, r := range rows {
			zk -= vals[e] * z[r]
		}
		z[k] = zk / f.uDiag[k]
	}
}

// btranRetasOnZ applies the row-eta transposes, newest first, on the
// slot-space intermediate in swork (between the Uᵀ and Lᵀ phases).
func (f *factor) btranRetasOnZ() {
	z := f.swork
	for e := len(f.retaRow) - 1; e >= 0; e-- {
		zr := z[f.retaRow[e]]
		if zr == 0 {
			continue
		}
		for q := f.retaOff[e]; q < f.retaOff[e+1]; q++ {
			z[f.retaIdx[q]] -= f.retaVal[q] * zr
		}
	}
}

// btranEtasDense applies the eta transposes, newest first (position space).
// Every eta reads its full recorded row regardless of the intermediate's
// sparsity — the inherent per-pivot-growing cost EtaDotOps measures and the
// Forrest–Tomlin representation exists to eliminate.
func (f *factor) btranEtasDense(v []float64) {
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		s := 0.0
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			s += f.etaVal[q] * v[f.etaIdx[q]]
		}
		v[r] = (v[r] - s) / f.etaPiv[e]
	}
	if f.stats != nil {
		f.stats.EtaDotOps += len(f.etaIdx)
	}
}

// btranUTDense is the dense forward solve through Uᵀ (elimination-step
// space), gathered into swork.
func (f *factor) btranUTDense(v []float64) {
	m := f.m
	z := f.swork
	for k := 0; k < m; k++ {
		zk := v[f.cperm[k]]
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			zk -= f.uVal[e] * z[f.uStep[e]]
		}
		z[k] = zk / f.uDiag[k]
	}
}

// btranLTDense is the dense backward solve through Lᵀ plus the scatter to
// engine rows. It restores the swork all-zero invariant on exit.
func (f *factor) btranLTDense(v []float64) {
	m := f.m
	z := f.swork
	for k := m - 1; k >= 0; k-- {
		yk := z[k]
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			yk -= f.lVal[e] * z[f.rowStep[f.lRow[e]]]
		}
		z[k] = yk
	}
	for k := 0; k < m; k++ {
		v[f.perm[k]] = z[k]
		z[k] = 0
	}
}

// ftranSparse solves B·x = v like ftran, exploiting a sparse right-hand
// side: vind lists the engine rows where v may be nonzero (order and
// duplicates are irrelevant; a superset of the true support is fine). On
// the hypersparse path the triangular solves visit only the symbolic
// nonzero closure — the Gilbert–Peierls reach of the RHS support over the
// factor column patterns — and the result's support comes back as sorted,
// duplicate-free basis positions appended to out, with sparse = true. When
// a closure exceeds the density threshold (or the dimension is tiny, or
// forceDense is set) the solve completes through the dense phase kernels
// from wherever it is and returns sparse = false with out empty. v is a
// valid dense result either way.
//
// Both paths are arithmetically bit-identical: the reach is processed in
// elimination-step order — ascending through L, descending through U —
// which is exactly the dense loop order with its guaranteed-zero
// contributions elided, so no accumulation is ever reordered. That
// equivalence is what lets the pricing layers switch paths per solve
// without perturbing a single pivot.
func (f *factor) ftranSparse(v []float64, vind []int32, out []int32, class int) ([]int32, bool) {
	if f.rule == FactorizationFT {
		return f.ftranSparseFT(v, vind, out, class)
	}
	out = out[:0]
	m := f.m
	if f.forceDense || m < hyperMinDim {
		f.ftran(v)
		return out, false
	}
	capN := m / hyperDenseDiv
	// Symbolic reach through L: close the RHS support (mapped to
	// elimination steps) over the L column patterns.
	f.newStamp()
	reach := f.reach[:0]
	mark, stamp := f.mark, f.stamp
	for _, r := range vind {
		k := f.rowStep[r]
		if mark[k] != stamp {
			mark[k] = stamp
			f.bitReach[k>>6] |= 1 << (uint32(k) & 63)
			reach = append(reach, k)
		}
	}
	f.reach = reach
	if len(f.reach) > capN || !f.expandReach(f.lOff, f.lStep, capN) {
		clearBitList(f.bitReach, f.reach)
		f.ftran(v)
		return out, false
	}
	f.reach = sweepBits(f.bitReach, f.reach)
	setBitList(f.bitReach, f.reach)
	// Forward solve through L over the reach, ascending step order.
	for _, k := range f.reach {
		zk := v[f.perm[k]]
		if zk == 0 {
			continue
		}
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			v[f.lRow[e]] -= f.lVal[e] * zk
		}
	}
	// Close the post-L support over the U column patterns, in place: the L
	// reach seeds the U reach. In a dense-U regime, skip the expansion
	// between probes: the attempt is capN-bounded wasted work whenever it
	// aborts, and by this point the cheap sparse L phase is already banked.
	if f.denseRun[class] >= hyperRunMin && f.denseRun[class]%hyperProbeEvery != 0 {
		f.denseRun[class]++
		clearBitList(f.bitReach, f.reach)
		f.ftranUDense(v)
		f.ftranEtasDense(v)
		return out, false
	}
	if !f.expandReach(f.uOff, f.uStep, capN) {
		f.denseRun[class]++
		clearBitList(f.bitReach, f.reach)
		f.ftranUDense(v)
		f.ftranEtasDense(v)
		return out, false
	}
	f.denseRun[class] = 0
	f.reach = sweepBits(f.bitReach, f.reach)
	reach = f.reach
	// Backward solve through U over the reach, descending step order,
	// gathered into swork.
	y := f.swork
	for i := len(reach) - 1; i >= 0; i-- {
		k := reach[i]
		yk := v[f.perm[k]] / f.uDiag[k]
		y[k] = yk
		if yk == 0 {
			continue
		}
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			v[f.perm[f.uStep[e]]] -= f.uVal[e] * yk
		}
	}
	// Consume the engine-row entries, then scatter the result to basis
	// positions — two passes, since a position slot may alias a still-
	// unconsumed row slot.
	for _, k := range reach {
		v[f.perm[k]] = 0
	}
	f.newPStamp()
	pmark, pstamp := f.pmark, f.pstamp
	bs := f.bitOut
	for _, k := range reach {
		p := f.cperm[k]
		v[p] = y[k]
		y[k] = 0
		pmark[p] = pstamp
		bs[p>>6] |= 1 << (uint32(p) & 63)
		out = append(out, p)
	}
	// Eta file, oldest first, tracking new support as it appears.
	ops := 0
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		vr := v[r]
		if vr == 0 {
			continue
		}
		vr /= f.etaPiv[e]
		v[r] = vr
		ops += int(f.etaOff[e+1] - f.etaOff[e])
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			idx := f.etaIdx[q]
			v[idx] -= f.etaVal[q] * vr
			if pmark[idx] != pstamp {
				pmark[idx] = pstamp
				bs[idx>>6] |= 1 << (uint32(idx) & 63)
				out = append(out, idx)
			}
		}
	}
	if f.stats != nil {
		f.stats.EtaDotOps += ops
	}
	if len(out) > capN {
		clearBitList(bs, out)
		return out[:0], false
	}
	return sweepBits(bs, out), true
}

// btranSparse solves Bᵀ·y = v like btran for a right-hand side with support
// vind (basis positions; superset and duplicates fine), mirroring
// ftranSparse's contract and fallback: the result's support comes back as
// sorted engine rows with sparse = true, or the solve completes densely
// with sparse = false. The eta pass always walks the whole file — each eta
// reads its full recorded row, so there is nothing to elide — which keeps
// it O(nnz(etas)) on every path, exactly the dense cost.
func (f *factor) btranSparse(v []float64, vind []int32, out []int32) ([]int32, bool) {
	if f.rule == FactorizationFT {
		return f.btranSparseFT(v, vind, out)
	}
	out = out[:0]
	m := f.m
	if f.forceDense || m < hyperMinDim {
		f.btran(v)
		return out, false
	}
	capN := m / hyperDenseDiv
	// Eta transposes, newest first, tracking where support appears (the
	// position-space pattern borrows out; it is consumed by the seeding
	// below and reset before rows are collected).
	f.newPStamp()
	pmark, pstamp := f.pmark, f.pstamp
	for _, p := range vind {
		if pmark[p] != pstamp {
			pmark[p] = pstamp
			out = append(out, p)
		}
	}
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		s := 0.0
		for q := f.etaOff[e]; q < f.etaOff[e+1]; q++ {
			s += f.etaVal[q] * v[f.etaIdx[q]]
		}
		vr := (v[r] - s) / f.etaPiv[e]
		v[r] = vr
		if vr != 0 && pmark[r] != pstamp {
			pmark[r] = pstamp
			out = append(out, r)
		}
	}
	if f.stats != nil {
		f.stats.EtaDotOps += len(f.etaIdx)
	}
	// Seed the Uᵀ reach from the post-eta support (numerically zero
	// entries contribute nothing and stay out).
	f.newStamp()
	reach := f.reach[:0]
	mark, stamp := f.mark, f.stamp
	for _, p := range out {
		if v[p] == 0 {
			continue
		}
		k := f.posStep[p]
		if mark[k] != stamp {
			mark[k] = stamp
			f.bitReach[k>>6] |= 1 << (uint32(k) & 63)
			reach = append(reach, k)
		}
	}
	f.reach = reach
	if len(f.reach) > capN || !f.expandReach(f.urOff, f.urAdj, capN) {
		clearBitList(f.bitReach, f.reach)
		f.btranUTDense(v)
		f.btranLTDense(v)
		return out[:0], false
	}
	out = out[:0]
	f.reach = sweepBits(f.bitReach, f.reach)
	setBitList(f.bitReach, f.reach)
	// Forward solve through Uᵀ over the reach, ascending step order,
	// consuming the position-space entries as they are read.
	z := f.swork
	for _, k := range f.reach {
		p := f.cperm[k]
		zk := v[p]
		v[p] = 0
		for e := f.uOff[k]; e < f.uOff[k+1]; e++ {
			zk -= f.uVal[e] * z[f.uStep[e]]
		}
		z[k] = zk / f.uDiag[k]
	}
	// Close over the Lᵀ pattern and solve descending.
	if !f.expandReach(f.lrOff, f.lrAdj, capN) {
		clearBitList(f.bitReach, f.reach)
		f.btranLTDense(v)
		return out, false
	}
	f.reach = sweepBits(f.bitReach, f.reach)
	reach = f.reach
	for i := len(reach) - 1; i >= 0; i-- {
		k := reach[i]
		yk := z[k]
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			yk -= f.lVal[e] * z[f.rowStep[f.lRow[e]]]
		}
		z[k] = yk
	}
	bs := f.bitOut
	for _, k := range reach {
		r := f.perm[k]
		v[r] = z[k]
		z[k] = 0
		bs[r>>6] |= 1 << (uint32(r) & 63)
		out = append(out, r)
	}
	return sweepBits(bs, out), true
}

// expandReachUColsFT closes the pre-seeded, pre-marked worklist f.reach
// over the updated U's per-slot column patterns (the Forrest–Tomlin
// counterpart of expandReach over the frozen uOff/uStep CSR), setting bits
// as it appends. It reports false once the closure would exceed capN.
func (f *factor) expandReachUColsFT(capN int) bool {
	reach, mark, stamp := f.reach, f.mark, f.stamp
	bs := f.bitReach
	for head := 0; head < len(reach); head++ {
		for _, s := range f.ucRows[reach[head]] {
			if mark[s] != stamp {
				mark[s] = stamp
				if len(reach) >= capN {
					f.reach = reach
					return false
				}
				bs[s>>6] |= 1 << (uint32(s) & 63)
				reach = append(reach, s)
			}
		}
	}
	f.reach = reach
	return true
}

// expandReachRowsFT closes f.reach over the stale-tolerated row lists — the
// influence direction of Uᵀ (a nonzero at row slot k feeds every column
// that contains k). Stale entries only overestimate the pattern, which the
// numeric pass resolves to exact zeros. Mark-only (no bits: the caller
// sorts by triangular order afterwards); reports false past capN.
func (f *factor) expandReachRowsFT(capN int) bool {
	reach, mark, stamp := f.reach, f.mark, f.stamp
	for head := 0; head < len(reach); head++ {
		k := reach[head]
		lo := f.rcOff[k]
		for _, s := range f.rcArena[lo : lo+f.rcLen[k]] {
			if mark[s] != stamp {
				mark[s] = stamp
				if len(reach) >= capN {
					f.reach = reach
					return false
				}
				reach = append(reach, s)
			}
		}
	}
	f.reach = reach
	return true
}

// sortReachByOrd reorders f.reach (slots, bit-free) ascending by the
// mutable triangular order: slot bits are consumed if still set, order bits
// are set and swept, and the emitted orders map back to slots. The
// Forrest–Tomlin counterpart of the sweep-by-step trick — slots stop being
// sorted by triangular position the moment an update rotates the order.
func (f *factor) sortReachByOrd(slotBitsSet bool) {
	if slotBitsSet {
		clearBitList(f.bitReach, f.reach)
	}
	bs := f.bitReach
	for _, k := range f.reach {
		o := f.slotOrd[k]
		bs[o>>6] |= 1 << (uint32(o) & 63)
	}
	f.reach = sweepBits(bs, f.reach)
	for i, o := range f.reach {
		f.reach[i] = f.ordSlot[o]
	}
}

// ftranSparseFT is ftranSparse against the Forrest–Tomlin factors: the same
// symbolic-reach contract and dense fallbacks, with the row etas joined
// into the closure between the L and U phases and the U phase walked in the
// mutable triangular order over the per-slot columns. An entering-column
// solve (class ftranEnter) also stashes the spike — the intermediate after
// the row etas, captured in ascending slot order on every path so the
// update that consumes it is bit-identical no matter which kernel ran.
func (f *factor) ftranSparseFT(v []float64, vind []int32, out []int32, class int) ([]int32, bool) {
	out = out[:0]
	m := f.m
	capture := class == ftranEnter
	if f.forceDense || m < hyperMinDim {
		f.ftranDenseFT(v, capture)
		return out, false
	}
	capN := m / hyperDenseDiv
	// Symbolic reach through L (slots are elimination steps; L is frozen).
	f.newStamp()
	reach := f.reach[:0]
	mark, stamp := f.mark, f.stamp
	for _, r := range vind {
		k := f.rowStep[r]
		if mark[k] != stamp {
			mark[k] = stamp
			f.bitReach[k>>6] |= 1 << (uint32(k) & 63)
			reach = append(reach, k)
		}
	}
	f.reach = reach
	if len(f.reach) > capN || !f.expandReach(f.lOff, f.lStep, capN) {
		clearBitList(f.bitReach, f.reach)
		f.ftranDenseFT(v, capture)
		return out, false
	}
	f.reach = sweepBits(f.bitReach, f.reach)
	setBitList(f.bitReach, f.reach)
	for _, k := range f.reach {
		zk := v[f.perm[k]]
		if zk == 0 {
			continue
		}
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			v[f.lRow[e]] -= f.lVal[e] * zk
		}
	}
	// Row etas, oldest first. An eta whose support misses the closure reads
	// only exact zeros (its dot is +0 and its row untouched), so it is
	// skipped symbolically; a hit computes the full recorded dot — the same
	// ops as the dense pass — and joins its row to the closure.
	reach = f.reach
	for e := 0; e < len(f.retaRow); e++ {
		lo, hi := f.retaOff[e], f.retaOff[e+1]
		hit := false
		for q := lo; q < hi; q++ {
			if mark[f.retaIdx[q]] == stamp {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		s := 0.0
		for q := lo; q < hi; q++ {
			s += f.retaVal[q] * v[f.perm[f.retaIdx[q]]]
		}
		r := f.retaRow[e]
		v[f.perm[r]] -= s
		if mark[r] != stamp {
			mark[r] = stamp
			f.bitReach[r>>6] |= 1 << (uint32(r) & 63)
			reach = append(reach, r)
		}
	}
	f.reach = reach
	if capture {
		// The spike must come out ascending by slot exactly as the dense
		// capture scans it: sort the closure, harvest, re-mark.
		f.reach = sweepBits(f.bitReach, f.reach)
		setBitList(f.bitReach, f.reach)
		f.spikeInd = f.spikeInd[:0]
		f.spikeVal = f.spikeVal[:0]
		for _, k := range f.reach {
			if sv := v[f.perm[k]]; sv != 0 {
				f.spikeInd = append(f.spikeInd, k)
				f.spikeVal = append(f.spikeVal, sv)
			}
		}
		f.spikeOK = true
	}
	// Close over the updated U's column patterns, dense-regime gated
	// exactly like the frozen-U path.
	if f.denseRun[class] >= hyperRunMin && f.denseRun[class]%hyperProbeEvery != 0 {
		f.denseRun[class]++
		clearBitList(f.bitReach, f.reach)
		f.ftranUDenseFT(v)
		return out, false
	}
	if !f.expandReachUColsFT(capN) {
		f.denseRun[class]++
		clearBitList(f.bitReach, f.reach)
		f.ftranUDenseFT(v)
		return out, false
	}
	f.denseRun[class] = 0
	// Backward solve through the updated U, descending triangular order.
	f.sortReachByOrd(true)
	reach = f.reach
	y := f.swork
	for i := len(reach) - 1; i >= 0; i-- {
		k := reach[i]
		yk := v[f.perm[k]] / f.uDiag[k]
		y[k] = yk
		if yk == 0 {
			continue
		}
		rows, vals := f.ucRows[k], f.ucVals[k]
		for e, r := range rows {
			v[f.perm[r]] -= vals[e] * yk
		}
	}
	// Consume the engine-row entries, then scatter to basis positions.
	for _, k := range reach {
		v[f.perm[k]] = 0
	}
	bs := f.bitOut
	for _, k := range reach {
		p := f.cperm[k]
		v[p] = y[k]
		y[k] = 0
		bs[p>>6] |= 1 << (uint32(p) & 63)
		out = append(out, p)
	}
	return sweepBits(bs, out), true
}

// btranSparseFT is btranSparse against the Forrest–Tomlin factors: seed the
// Uᵀ reach from the right-hand support, close over the row lists, solve
// ascending the triangular order, apply the row-eta transposes newest first
// (joining their supports to the closure), then close and solve through Lᵀ
// exactly as the frozen path does — with no eta-file pass on either side.
func (f *factor) btranSparseFT(v []float64, vind []int32, out []int32) ([]int32, bool) {
	out = out[:0]
	m := f.m
	if f.forceDense || m < hyperMinDim {
		f.btran(v)
		return out, false
	}
	capN := m / hyperDenseDiv
	f.newStamp()
	reach := f.reach[:0]
	mark, stamp := f.mark, f.stamp
	for _, p := range vind {
		if v[p] == 0 {
			continue
		}
		k := f.posStep[p]
		if mark[k] != stamp {
			mark[k] = stamp
			reach = append(reach, k)
		}
	}
	f.reach = reach
	if len(f.reach) > capN || !f.expandReachRowsFT(capN) {
		f.btran(v)
		return out, false
	}
	// Forward solve through Uᵀ ascending the triangular order, consuming
	// the position-space entries as they are read.
	f.sortReachByOrd(false)
	z := f.swork
	for _, k := range f.reach {
		p := f.cperm[k]
		zk := v[p]
		v[p] = 0
		rows, vals := f.ucRows[k], f.ucVals[k]
		for e, r := range rows {
			zk -= vals[e] * z[r]
		}
		z[k] = zk / f.uDiag[k]
	}
	// Row-eta transposes, newest first, on the slot-space intermediate.
	// A row outside the closure holds an exact zero, so its transform is a
	// no-op both numerically and symbolically — the same zr==0 skip the
	// dense pass takes.
	reach = f.reach
	for e := len(f.retaRow) - 1; e >= 0; e-- {
		zr := z[f.retaRow[e]]
		if zr == 0 {
			continue
		}
		for q := f.retaOff[e]; q < f.retaOff[e+1]; q++ {
			j := f.retaIdx[q]
			z[j] -= f.retaVal[q] * zr
			if mark[j] != stamp {
				mark[j] = stamp
				reach = append(reach, j)
			}
		}
	}
	f.reach = reach
	// Close over the Lᵀ pattern (frozen CSR) and solve descending.
	setBitList(f.bitReach, f.reach)
	if !f.expandReach(f.lrOff, f.lrAdj, capN) {
		clearBitList(f.bitReach, f.reach)
		f.btranLTDense(v)
		return out, false
	}
	f.reach = sweepBits(f.bitReach, f.reach)
	reach = f.reach
	for i := len(reach) - 1; i >= 0; i-- {
		k := reach[i]
		yk := z[k]
		for e := f.lOff[k]; e < f.lOff[k+1]; e++ {
			yk -= f.lVal[e] * z[f.rowStep[f.lRow[e]]]
		}
		z[k] = yk
	}
	bs := f.bitOut
	for _, k := range reach {
		r := f.perm[k]
		v[r] = z[k]
		z[k] = 0
		bs[r>>6] |= 1 << (uint32(r) & 63)
		out = append(out, r)
	}
	return sweepBits(bs, out), true
}

// ftUpdate applies the Forrest–Tomlin basis-change update for the entering
// column whose spike the last entering-class FTRAN stashed, replacing the U
// column of the slot that owns basis position pos. The bump row is
// eliminated by a column-oriented sparse solve over the candidates the row
// lists reach, ascending the triangular order; the multipliers become one
// row eta and the slot rotates to the end of the order. When the eliminated
// diagonal falls below the stability tolerance the update reports false
// with the factors untouched — the caller must refactorize from the
// post-pivot basis before the next solve (KernelStats.ForcedRefactors).
func (f *factor) ftUpdate(pos int) bool {
	if !f.spikeOK {
		return false
	}
	f.spikeOK = false
	kp := f.posStep[pos]
	ordP := f.slotOrd[kp]
	m := f.m
	// Scatter the spike for random access (xwork doubles as the
	// slot-indexed spike while no solve is in flight; restored below).
	x := f.xwork
	spikeMax := 0.0
	for i, k := range f.spikeInd {
		x[k] = f.spikeVal[i]
		if a := math.Abs(f.spikeVal[i]); a > spikeMax {
			spikeMax = a
		}
	}
	// Phase 1 (read-only): locate row kp's live entries — the elimination
	// seeds r₀ — among the columns its row list names.
	f.upCols = f.upCols[:0]
	f.upIdx = f.upIdx[:0]
	f.upProc = f.upProc[:0]
	f.newStamp()
	mark, stamp := f.mark, f.stamp
	bs := f.bitReach
	w := f.swork
	lo := f.rcOff[kp]
	for _, j := range f.rcArena[lo : lo+f.rcLen[kp]] {
		if f.slotOrd[j] <= ordP || mark[j] == stamp {
			continue
		}
		for e, r := range f.ucRows[j] {
			if r == kp {
				mark[j] = stamp
				o := f.slotOrd[j]
				bs[o>>6] |= 1 << (uint32(o) & 63)
				w[j] = f.ucVals[j][e]
				f.upCols = append(f.upCols, j)
				f.upIdx = append(f.upIdx, int32(e))
				break
			}
		}
	}
	// Phase 2 (read-only): solve μᵀ·U_sub = r₀ᵀ column by column ascending
	// the triangular order. The worklist is the order-indexed bitset;
	// propagation along a processed column's row list can only set bits at
	// strictly higher orders, which the per-word re-read picks up.
	etaBase := len(f.retaIdx)
	dNew := x[kp]
	nw := (m + 63) / 64
	for wi := 0; wi < nw; wi++ {
		for bs[wi] != 0 {
			b := bits.TrailingZeros64(bs[wi])
			bs[wi] &^= 1 << uint(b)
			j := f.ordSlot[wi<<6|b]
			f.upProc = append(f.upProc, j)
			acc := w[j]
			rows, vals := f.ucRows[j], f.ucVals[j]
			for e, r := range rows {
				if mark[r] == stamp {
					acc -= vals[e] * w[r]
				}
			}
			mu := acc / f.uDiag[j]
			w[j] = mu
			if mu == 0 {
				continue
			}
			f.retaIdx = append(f.retaIdx, j)
			f.retaVal = append(f.retaVal, mu)
			dNew -= mu * x[j]
			jo := f.slotOrd[j]
			jlo := f.rcOff[j]
			for _, j2 := range f.rcArena[jlo : jlo+f.rcLen[j]] {
				if f.slotOrd[j2] <= jo || mark[j2] == stamp {
					continue
				}
				mark[j2] = stamp
				o := f.slotOrd[j2]
				bs[o>>6] |= 1 << (uint32(o) & 63)
			}
		}
	}
	// Restore the scratch invariants before the stability verdict so the
	// bail path leaves the factor exactly as it found it.
	for _, j := range f.upProc {
		w[j] = 0
	}
	for _, k := range f.spikeInd {
		x[k] = 0
	}
	if math.Abs(dNew) <= ftPivotTol*(1+spikeMax) {
		f.retaIdx = f.retaIdx[:etaBase]
		f.retaVal = f.retaVal[:etaBase]
		return false
	}
	// Commit. Delete row kp's entries from the seed columns (compacting
	// each column in place, order preserved)...
	for i, j := range f.upCols {
		e := int(f.upIdx[i])
		rows, vals := f.ucRows[j], f.ucVals[j]
		n := len(rows) - 1
		copy(rows[e:], rows[e+1:])
		copy(vals[e:], vals[e+1:])
		f.ucRows[j] = rows[:n]
		f.ucVals[j] = vals[:n]
	}
	f.uNNZ -= len(f.upCols)
	// ...record the row eta (identity bumps are not stored)...
	if len(f.retaIdx) > etaBase {
		f.retaRow = append(f.retaRow, kp)
		f.retaOff = append(f.retaOff, int32(len(f.retaIdx)))
	}
	// ...replace column kp with the spike (off-diagonal entries into the
	// spike arena, back-references into the row lists, diagonal = the
	// eliminated value) and drop the old column and row...
	f.uNNZ -= len(f.ucRows[kp])
	start := len(f.spkRows)
	for i, k := range f.spikeInd {
		if k == kp {
			continue
		}
		f.spkRows = append(f.spkRows, k)
		f.spkVals = append(f.spkVals, f.spikeVal[i])
		f.rcAppend(k, kp)
	}
	f.ucRows[kp] = f.spkRows[start:len(f.spkRows):len(f.spkRows)]
	f.ucVals[kp] = f.spkVals[start:len(f.spkVals):len(f.spkVals)]
	f.uNNZ += len(f.ucRows[kp])
	f.uDiag[kp] = dNew
	f.rcLen[kp] = 0
	// ...and rotate the slot to the end of the triangular order.
	op := int(ordP)
	copy(f.ordSlot[op:], f.ordSlot[op+1:])
	f.ordSlot[m-1] = kp
	for o := op; o < m; o++ {
		f.slotOrd[f.ordSlot[o]] = int32(o)
	}
	f.ftUpdates++
	if f.stats != nil {
		f.stats.FTUpdates++
		f.stats.FTSpikeNNZ += len(f.spikeInd)
		if pct := f.ftFill() * 100 / f.luNNZ; pct > f.stats.UFillMaxPct {
			f.stats.UFillMaxPct = pct
		}
	}
	return true
}

// ftFill is the current factor fill under the Forrest–Tomlin rule: L, the
// updated U (diagonal included), and the row etas.
func (f *factor) ftFill() int {
	return len(f.lRow) + f.uNNZ + f.m + len(f.retaIdx)
}

// ftShouldFold reports whether the update state has outgrown the fold
// policy — too many in-place updates or too much fill relative to the
// refactorization-time factors.
func (f *factor) ftShouldFold() bool {
	return f.ftUpdates >= maxFTUpdates || f.ftFill() > ftFillBloat*(f.luNNZ+f.m)
}
