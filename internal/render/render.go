// Package render draws instances and schedules as ASCII Gantt charts, so
// the paper's figures can be reproduced visually from the command line
// (busysim/activesim -gantt) and in the examples.
package render

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// Options controls chart geometry.
type Options struct {
	// Width is the number of character cells for the time axis (default 64).
	Width int
	// From/To clip the drawn time range; zero values mean the instance hull.
	From, To core.Time
}

func (o Options) resolve(in *core.Instance) (from, to core.Time, width int) {
	from, to = o.From, o.To
	if from == 0 && to == 0 {
		from, to = in.MinRelease(), in.Horizon()
	}
	if to <= from {
		to = from + 1
	}
	width = o.Width
	if width <= 0 {
		width = 64
	}
	if span := int(to - from); span < width {
		width = span
	}
	return from, to, width
}

// cell maps a time to a column.
func cell(t, from, to core.Time, width int) int {
	if t <= from {
		return 0
	}
	if t >= to {
		return width
	}
	return int(int64(width) * int64(t-from) / int64(to-from))
}

func drawRow(ivs []core.Interval, from, to core.Time, width int, mark byte) string {
	row := make([]byte, width)
	for i := range row {
		row[i] = '.'
	}
	for _, iv := range ivs {
		lo, hi := cell(iv.Start, from, to, width), cell(iv.End, from, to, width)
		if hi == lo {
			hi = lo + 1 // never let a nonempty interval vanish
		}
		for c := lo; c < hi && c < width; c++ {
			row[c] = mark
		}
	}
	return string(row)
}

// Instance draws each job's window (dots) with its mandatory core if rigid.
func Instance(w io.Writer, in *core.Instance, opts Options) {
	from, to, width := opts.resolve(in)
	fmt.Fprintf(w, "instance %s  g=%d  time [%d,%d)\n", in.Name, in.G, from, to)
	jobs := append([]core.Job(nil), in.Jobs...)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Release != jobs[b].Release {
			return jobs[a].Release < jobs[b].Release
		}
		return jobs[a].ID < jobs[b].ID
	})
	for _, j := range jobs {
		window := drawRow([]core.Interval{j.Window()}, from, to, width, '-')
		if j.IsInterval() {
			window = drawRow([]core.Interval{j.Window()}, from, to, width, '#')
		}
		fmt.Fprintf(w, "  J%-4d |%s| p=%d\n", j.ID, window, j.Length)
	}
}

// BusySchedule draws one row per machine: '#' where the machine is busy,
// and a second line per machine listing its jobs.
func BusySchedule(w io.Writer, in *core.Instance, s *core.BusySchedule, opts Options) error {
	from, to, width := opts.resolve(in)
	cost, err := s.Cost(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "busy schedule: %d machines, busy time %d, time [%d,%d)\n",
		len(s.Bundles), cost, from, to)
	for bi := range s.Bundles {
		b := &s.Bundles[bi]
		ivs, err := b.Intervals(in)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  M%-4d |%s|", bi, drawRow(ivs, from, to, width, '#'))
		var ids []string
		for _, pl := range b.Placements {
			ids = append(ids, fmt.Sprintf("J%d@%d", pl.JobID, pl.Start))
		}
		fmt.Fprintf(w, " %s\n", strings.Join(ids, " "))
	}
	return nil
}

// ActiveSchedule draws the machine's on/off slot profile and per-slot load.
func ActiveSchedule(w io.Writer, in *core.Instance, s *core.ActiveSchedule, opts Options) {
	T := in.Horizon()
	fmt.Fprintf(w, "active schedule: %d open slots of %d\n", len(s.Open), T)
	open := s.OpenSet()
	load := s.Load()
	var profile, digits strings.Builder
	for t := core.Time(1); t <= T; t++ {
		if open[t] {
			profile.WriteByte('#')
			l := load[t]
			if l > 9 {
				digits.WriteByte('+')
			} else {
				digits.WriteByte(byte('0' + l))
			}
		} else {
			profile.WriteByte('.')
			digits.WriteByte('.')
		}
	}
	fmt.Fprintf(w, "  on/off |%s|\n", profile.String())
	fmt.Fprintf(w, "  load   |%s| (capacity %d)\n", digits.String(), in.G)
}

// PreemptiveSchedule draws one row per machine with '#' where busy.
func PreemptiveSchedule(w io.Writer, in *core.Instance, s *core.PreemptiveSchedule, opts Options) {
	from, to, width := opts.resolve(in)
	fmt.Fprintf(w, "preemptive schedule: %d machines, busy time %d, time [%d,%d)\n",
		len(s.Machines), s.Cost(), from, to)
	for mi := range s.Machines {
		m := &s.Machines[mi]
		ivs := make([]core.Interval, 0, len(m.Pieces))
		for _, p := range m.Pieces {
			ivs = append(ivs, p.Span)
		}
		fmt.Fprintf(w, "  M%-4d |%s| %d pieces\n", mi,
			drawRow(ivs, from, to, width, '#'), len(m.Pieces))
	}
}
