package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func fixtures() (*core.Instance, *core.BusySchedule, *core.ActiveSchedule, *core.PreemptiveSchedule) {
	in := &core.Instance{Name: "fix", G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 4},
		{ID: 1, Release: 2, Deadline: 8, Length: 3},
	}}
	busy := &core.BusySchedule{Bundles: []core.Bundle{
		{Placements: []core.Placement{{JobID: 0, Start: 0}, {JobID: 1, Start: 4}}},
	}}
	active := &core.ActiveSchedule{
		Open:   []core.Time{1, 2, 3, 4, 5, 6, 7},
		Assign: map[int][]core.Time{0: {1, 2, 3, 4}, 1: {3, 4, 5}},
	}
	pre := &core.PreemptiveSchedule{Machines: []core.PreemptiveMachine{
		{Pieces: []core.Piece{{JobID: 0, Span: core.Interval{Start: 0, End: 4}}}},
		{Pieces: []core.Piece{{JobID: 1, Span: core.Interval{Start: 4, End: 7}}}},
	}}
	return in, busy, active, pre
}

func TestInstanceRendering(t *testing.T) {
	in, _, _, _ := fixtures()
	var buf bytes.Buffer
	Instance(&buf, in, Options{Width: 8})
	out := buf.String()
	if !strings.Contains(out, "J0") || !strings.Contains(out, "J1") {
		t.Errorf("missing job rows:\n%s", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("rigid job not drawn solid:\n%s", out)
	}
	if !strings.Contains(out, "---") {
		t.Errorf("flexible window not drawn dashed:\n%s", out)
	}
}

func TestBusyScheduleRendering(t *testing.T) {
	in, busy, _, _ := fixtures()
	var buf bytes.Buffer
	if err := BusySchedule(&buf, in, busy, Options{Width: 8}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "busy time 7") {
		t.Errorf("cost missing:\n%s", out)
	}
	if !strings.Contains(out, "|#######") && !strings.Contains(out, "#######") {
		t.Errorf("busy row not filled:\n%s", out)
	}
	if !strings.Contains(out, "J1@4") {
		t.Errorf("placement labels missing:\n%s", out)
	}
}

func TestActiveScheduleRendering(t *testing.T) {
	in, _, active, _ := fixtures()
	var buf bytes.Buffer
	ActiveSchedule(&buf, in, active, Options{})
	out := buf.String()
	if !strings.Contains(out, "7 open slots of 8") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "#######.") {
		t.Errorf("profile wrong:\n%s", out)
	}
	if !strings.Contains(out, "1122100.") {
		t.Errorf("load digits wrong:\n%s", out)
	}
}

func TestPreemptiveRendering(t *testing.T) {
	in, _, _, pre := fixtures()
	var buf bytes.Buffer
	PreemptiveSchedule(&buf, in, pre, Options{Width: 8})
	out := buf.String()
	if !strings.Contains(out, "2 machines") || !strings.Contains(out, "busy time 7") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestCellClipping(t *testing.T) {
	if cell(5, 0, 10, 10) != 5 || cell(-1, 0, 10, 10) != 0 || cell(20, 0, 10, 10) != 10 {
		t.Error("cell mapping broken")
	}
	// Narrow intervals never disappear.
	row := drawRow([]core.Interval{{Start: 3, End: 4}}, 0, 1000, 10, '#')
	if !strings.Contains(row, "#") {
		t.Errorf("narrow interval vanished: %q", row)
	}
}
