package busytime

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// SpanMinimizer fixes non-preemptive start times for flexible jobs so as to
// (approximately) minimize the measure of the union of their execution
// intervals. This is the role played in the paper by the unbounded-g
// dynamic program of Khandekar et al. [9] (Theorem 4): its output span is
// OPT_inf, the strongest span lower bound for bounded g.
type SpanMinimizer interface {
	// MinimizeSpan returns a start time per job ID and the achieved span.
	MinimizeSpan(in *core.Instance) (map[int]core.Time, core.Time, error)
}

// Convert fixes every job's position with the given span minimizer and
// returns the induced interval-job instance (the paper's flexible-to-interval
// reduction in Section 4.3), together with the achieved span.
func Convert(in *core.Instance, sm SpanMinimizer) (*core.Instance, core.Time, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	starts, span, err := sm.MinimizeSpan(in)
	if err != nil {
		return nil, 0, err
	}
	out := &core.Instance{Name: in.Name + "/interval", G: in.G, Jobs: make([]core.Job, len(in.Jobs))}
	for i, j := range in.Jobs {
		s, ok := starts[j.ID]
		if !ok {
			return nil, 0, fmt.Errorf("busytime: span minimizer missed job %d", j.ID)
		}
		if s < j.Release || s+j.Length > j.Deadline {
			return nil, 0, fmt.Errorf("busytime: span minimizer start %d outside window of %v", s, j)
		}
		out.Jobs[i] = core.Job{ID: j.ID, Release: s, Deadline: s + j.Length, Length: j.Length}
	}
	return out, span, nil
}

// IntervalAlgorithm is any busy-time algorithm for interval jobs.
type IntervalAlgorithm func(*core.Instance) (*core.BusySchedule, error)

// SolveFlexible runs the paper's two-step pipeline for flexible jobs:
// convert to interval jobs with the span minimizer, then pack with the given
// interval algorithm. With GreedyTracking and an exact span minimizer this
// is the paper's 3-approximation (Section 4.3); the returned schedule is
// feasible for the original instance because every fixed start lies in its
// job's window.
func SolveFlexible(in *core.Instance, sm SpanMinimizer, algo IntervalAlgorithm) (*core.BusySchedule, error) {
	conv, _, err := Convert(in, sm)
	if err != nil {
		return nil, err
	}
	return algo(conv)
}

// ExactSpan is an exact span minimizer by branch and bound over integral
// start times, for small instances; MaxNodes caps the search (default 4e6).
type ExactSpan struct {
	MaxNodes int64
}

// MinimizeSpan implements SpanMinimizer exactly.
func (e ExactSpan) MinimizeSpan(in *core.Instance) (map[int]core.Time, core.Time, error) {
	maxNodes := e.MaxNodes
	if maxNodes == 0 {
		maxNodes = 4_000_000
	}
	// Order jobs by decreasing length: rigid, long jobs first make the
	// union grow early and prune better.
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	sort.Slice(jobs, func(a, b int) bool {
		sa, sb := jobs[a].WindowLen()-jobs[a].Length, jobs[b].WindowLen()-jobs[b].Length
		if sa != sb {
			return sa < sb // least slack first
		}
		return jobs[a].Length > jobs[b].Length
	})
	s := &spanSearch{jobs: jobs, maxNodes: maxNodes}
	// Greedy warm start: right-aligned.
	warm := make([]core.Time, len(jobs))
	var ivs []core.Interval
	for i, j := range jobs {
		warm[i] = j.LatestStart()
		ivs = append(ivs, core.Interval{Start: warm[i], End: warm[i] + j.Length})
	}
	s.best = core.UnionMeasure(ivs)
	s.bestStarts = warm
	s.dfs(0, nil)
	if s.nodesExceeded {
		return nil, 0, fmt.Errorf("busytime: exact span search exceeded %d nodes", maxNodes)
	}
	starts := make(map[int]core.Time, len(jobs))
	for i, j := range jobs {
		starts[j.ID] = s.bestStarts[i]
	}
	return starts, s.best, nil
}

type spanSearch struct {
	jobs          []core.Job
	best          core.Time
	bestStarts    []core.Time
	nodes         int64
	maxNodes      int64
	nodesExceeded bool
}

func (s *spanSearch) dfs(idx int, placed []core.Interval) {
	if s.nodesExceeded {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.nodesExceeded = true
		return
	}
	cur := core.UnionMeasure(placed)
	if cur >= s.best {
		return
	}
	if idx == len(s.jobs) {
		s.best = cur
		starts := make([]core.Time, len(placed))
		for i, iv := range placed {
			starts[i] = iv.Start
		}
		s.bestStarts = starts
		return
	}
	j := s.jobs[idx]
	// Candidate starts ordered by marginal union growth.
	type cand struct {
		start  core.Time
		growth core.Time
	}
	var cands []cand
	for st := j.Release; st <= j.LatestStart(); st++ {
		iv := core.Interval{Start: st, End: st + j.Length}
		growth := core.UnionMeasure(append(append([]core.Interval(nil), placed...), iv)) - cur
		cands = append(cands, cand{st, growth})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].growth != cands[b].growth {
			return cands[a].growth < cands[b].growth
		}
		return cands[a].start < cands[b].start
	})
	for _, c := range cands {
		iv := core.Interval{Start: c.start, End: c.start + j.Length}
		s.dfs(idx+1, append(placed, iv))
	}
}

// HeuristicSpan is a fast span minimizer for larger instances: start with
// every job right-aligned at its deadline, then iteratively move single jobs
// to the aligned candidate position that most reduces the union, until a
// local optimum (documented as substitution #2 in DESIGN.md; validated
// against ExactSpan on small instances by tests).
type HeuristicSpan struct {
	// MaxPasses bounds improvement sweeps (default 8).
	MaxPasses int
}

// MinimizeSpan implements SpanMinimizer heuristically; the result is always
// feasible, and its span upper-bounds the exact minimum.
func (h HeuristicSpan) MinimizeSpan(in *core.Instance) (map[int]core.Time, core.Time, error) {
	passes := h.MaxPasses
	if passes == 0 {
		passes = 8
	}
	n := len(in.Jobs)
	starts := make([]core.Time, n)
	for i, j := range in.Jobs {
		starts[i] = j.LatestStart()
	}
	unionOf := func() core.Time {
		ivs := make([]core.Interval, n)
		for i, j := range in.Jobs {
			ivs[i] = core.Interval{Start: starts[i], End: starts[i] + j.Length}
		}
		return core.UnionMeasure(ivs)
	}
	cur := unionOf()
	for pass := 0; pass < passes; pass++ {
		improved := false
		for i, j := range in.Jobs {
			if j.IsInterval() {
				continue
			}
			bestStart, bestVal := starts[i], cur
			for _, cand := range h.candidates(in, starts, i) {
				old := starts[i]
				starts[i] = cand
				if v := unionOf(); v < bestVal {
					bestVal, bestStart = v, cand
				}
				starts[i] = old
			}
			if bestVal < cur {
				starts[i] = bestStart
				cur = bestVal
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	out := make(map[int]core.Time, n)
	for i, j := range in.Jobs {
		out[j.ID] = starts[i]
	}
	return out, cur, nil
}

// candidates proposes aligned start positions for job i: window extremes and
// alignments against every other job's current placement.
func (h HeuristicSpan) candidates(in *core.Instance, starts []core.Time, i int) []core.Time {
	j := in.Jobs[i]
	set := map[core.Time]bool{j.Release: true, j.LatestStart(): true}
	for k, other := range in.Jobs {
		if k == i {
			continue
		}
		s, e := starts[k], starts[k]+other.Length
		for _, cand := range []core.Time{s, e, s - j.Length, e - j.Length} {
			if cand >= j.Release && cand <= j.LatestStart() {
				set[cand] = true
			}
		}
	}
	out := make([]core.Time, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
