package busytime

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/intervals"
)

// PairCover is a 2-approximation for busy time with interval jobs — the
// reconstruction of the Alicherry-Bhatia / Kumar-Rudra algorithms sketched
// in Appendix A of the paper (substitution #3 in DESIGN.md).
//
// Dummy interval jobs are first added so the raw demand over every
// interesting interval is a multiple of g (this never changes the demand
// profile). Then bundles are opened in pairs; each pair is filled by g
// peeling rounds. A round computes the maximal intervals where remaining
// demand is positive and covers each of them by the classical greedy chain
// (always extend with the available job reaching furthest): in such a chain
// only consecutive jobs overlap, so splitting it by parity yields two
// genuine tracks, one per bundle of the pair. Every round lowers every
// positive demand by at least one, so after g rounds the pair has consumed
// min(g, demand) everywhere, and the i-th pair spans only points whose
// original demand exceeded (i-1)g. Summing,
//
//	cost(PairCover) <= 2 · DeP(J) <= 2 · OPT(J),
//
// the same charging as the appendix; tests assert the first inequality on
// every run. (A first attempt routed two units of max flow per round, but
// unlike in Alicherry-Bhatia's richer wavelength graph, two edge-disjoint
// forward paths need not exist here even when every vertical cut has
// capacity 2 — the greedy chain with parity split is the clean equivalent.)
func PairCover(in *core.Instance) (*core.BusySchedule, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	jobs, dummies := padToMultipleOfG(in)
	remaining := make([]core.Job, len(jobs))
	copy(remaining, jobs)
	var bundles [][]core.Job
	for len(remaining) > 0 {
		pair := [2][]core.Job{}
		for round := 0; round < in.G && len(remaining) > 0; round++ {
			trackA, trackB, err := coverTracks(remaining)
			if err != nil {
				return nil, err
			}
			if len(trackA)+len(trackB) == 0 {
				return nil, fmt.Errorf("busytime: pair cover made no progress with %d jobs left", len(remaining))
			}
			pair[0] = append(pair[0], trackA...)
			pair[1] = append(pair[1], trackB...)
			remaining = removeJobs(remaining, trackA)
			remaining = removeJobs(remaining, trackB)
		}
		for _, b := range pair {
			if len(b) > 0 {
				bundles = append(bundles, b)
			}
		}
	}
	// Strip the dummy jobs; removing jobs never increases a bundle's span.
	for bi := range bundles {
		kept := bundles[bi][:0]
		for _, j := range bundles[bi] {
			if !dummies[j.ID] {
				kept = append(kept, j)
			}
		}
		bundles[bi] = kept
	}
	sched := placeAtRelease(bundles)
	sortBundlePlacements(sched)
	return sched, nil
}

// padToMultipleOfG adds dummy interval jobs spanning single interesting
// intervals until every raw demand is a multiple of g. Dummy IDs start
// after the maximum real ID; the returned set marks them.
func padToMultipleOfG(in *core.Instance) ([]core.Job, map[int]bool) {
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	nextID := 0
	for _, j := range jobs {
		if j.ID >= nextID {
			nextID = j.ID + 1
		}
	}
	dummies := make(map[int]bool)
	for _, ii := range intervals.InterestingIntervals(in.Jobs) {
		if ii.RawDemand == 0 {
			continue
		}
		missing := (in.G - ii.RawDemand%in.G) % in.G
		for k := 0; k < missing; k++ {
			d := core.Job{
				ID:       nextID,
				Release:  ii.Span.Start,
				Deadline: ii.Span.End,
				Length:   ii.Span.Len(),
			}
			jobs = append(jobs, d)
			dummies[nextID] = true
			nextID++
		}
	}
	return jobs, dummies
}

// coverTracks covers every maximal positive-demand region of the remaining
// jobs with a greedy chain and parity-splits the chains into two tracks.
func coverTracks(remaining []core.Job) (a, b []core.Job, err error) {
	sorted := make([]core.Job, len(remaining))
	copy(sorted, remaining)
	sort.Slice(sorted, func(x, y int) bool {
		if sorted[x].Release != sorted[y].Release {
			return sorted[x].Release < sorted[y].Release
		}
		if sorted[x].Deadline != sorted[y].Deadline {
			return sorted[x].Deadline > sorted[y].Deadline
		}
		return sorted[x].ID < sorted[y].ID
	})
	regions := make([]core.Interval, 0, len(sorted))
	for _, j := range sorted {
		regions = append(regions, j.Window())
	}
	used := make(map[int]bool)
	idx := 0
	for _, region := range core.MergeIntervals(regions) {
		chain, cerr := greedyChain(sorted, used, region)
		if cerr != nil {
			return nil, nil, cerr
		}
		for i, j := range chain {
			used[j.ID] = true
			if i%2 == 0 {
				a = append(a, j)
			} else {
				b = append(b, j)
			}
		}
		_ = idx
	}
	return a, b, nil
}

// greedyChain covers region (a maximal union component of the jobs'
// intervals) with the classical furthest-reaching greedy: consecutive chain
// members overlap, non-consecutive members are disjoint.
func greedyChain(sorted []core.Job, used map[int]bool, region core.Interval) ([]core.Job, error) {
	var chain []core.Job
	cur := region.Start
	for cur < region.End {
		best := -1
		for k, j := range sorted {
			if used[j.ID] || (len(chain) > 0 && chainHas(chain, j.ID)) {
				continue
			}
			if j.Release > cur {
				break // sorted by release: nothing further can cover cur
			}
			if j.Deadline <= cur {
				continue
			}
			if best < 0 || j.Deadline > sorted[best].Deadline {
				best = k
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("busytime: demand region %v not coverable at %d (bug)", region, cur)
		}
		chain = append(chain, sorted[best])
		cur = sorted[best].Deadline
	}
	return chain, nil
}

func chainHas(chain []core.Job, id int) bool {
	for _, j := range chain {
		if j.ID == id {
			return true
		}
	}
	return false
}

// sortBundlePlacements orders placements for stable output.
func sortBundlePlacements(s *core.BusySchedule) {
	for bi := range s.Bundles {
		pls := s.Bundles[bi].Placements
		sort.Slice(pls, func(a, b int) bool {
			if pls[a].Start != pls[b].Start {
				return pls[a].Start < pls[b].Start
			}
			return pls[a].JobID < pls[b].JobID
		})
	}
}
