package busytime

import (
	"sort"

	"repro/internal/core"
)

// GreedyByRelease is the special-case greedy of Flammini et al. discussed
// in footnote 1 of the paper: consider interval jobs in non-decreasing
// order of release time and put each into the first bundle that stays
// within g. On *proper* instances (no window strictly contains another) it
// is a 2-approximation; on general instances it is only a heuristic.
func GreedyByRelease(in *core.Instance) (*core.BusySchedule, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Release != jobs[b].Release {
			return jobs[a].Release < jobs[b].Release
		}
		if jobs[a].Deadline != jobs[b].Deadline {
			return jobs[a].Deadline < jobs[b].Deadline
		}
		return jobs[a].ID < jobs[b].ID
	})
	var bundles [][]core.Job
	for _, j := range jobs {
		placed := false
		for bi := range bundles {
			if fitsBundle(bundles[bi], j, in.G) {
				bundles[bi] = append(bundles[bi], j)
				placed = true
				break
			}
		}
		if !placed {
			bundles = append(bundles, []core.Job{j})
		}
	}
	return placeAtRelease(bundles), nil
}

// IsProper reports whether no job's window strictly contains another's
// (the "proper interval" special case of footnote 1). Identical windows are
// allowed.
func IsProper(in *core.Instance) bool {
	for i := range in.Jobs {
		for k := range in.Jobs {
			if i == k {
				continue
			}
			a, b := in.Jobs[i], in.Jobs[k]
			if a.Release <= b.Release && b.Deadline <= a.Deadline && a.Window() != b.Window() {
				return false
			}
		}
	}
	return true
}

// IsClique reports whether all windows share a common point (the clique
// special case of footnote 1): max_j r_j < min_j d_j.
func IsClique(in *core.Instance) bool {
	if len(in.Jobs) == 0 {
		return true
	}
	maxR, minD := in.Jobs[0].Release, in.Jobs[0].Deadline
	for _, j := range in.Jobs[1:] {
		if j.Release > maxR {
			maxR = j.Release
		}
		if j.Deadline < minD {
			minD = j.Deadline
		}
	}
	return maxR < minD
}

// IsLaminar reports whether every two windows are disjoint or nested (the
// laminar special case for which Khandekar et al. give an exact algorithm).
func IsLaminar(in *core.Instance) bool {
	for i := range in.Jobs {
		for k := i + 1; k < len(in.Jobs); k++ {
			a, b := in.Jobs[i].Window(), in.Jobs[k].Window()
			if !a.Overlaps(b) {
				continue
			}
			aInB := b.Start <= a.Start && a.End <= b.End
			bInA := a.Start <= b.Start && b.End <= a.End
			if !aInB && !bInA {
				return false
			}
		}
	}
	return true
}

// CliqueGreedy is the 2-approximation for clique instances discussed in
// footnote 1: since every job crosses a common point t*, sort jobs by
// length (longest first) and fill machines g at a time; each machine's span
// is at most the span of its longest job's window union, charged against
// the demand profile at t*.
func CliqueGreedy(in *core.Instance) (*core.BusySchedule, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Length != jobs[b].Length {
			return jobs[a].Length > jobs[b].Length
		}
		return jobs[a].ID < jobs[b].ID
	})
	var bundles [][]core.Job
	for i, j := range jobs {
		if i%in.G == 0 {
			bundles = append(bundles, nil)
		}
		bundles[len(bundles)-1] = append(bundles[len(bundles)-1], j)
	}
	return placeAtRelease(bundles), nil
}

// SpecialCase classifies an interval instance for the footnote-1 taxonomy.
func SpecialCase(in *core.Instance) string {
	switch {
	case IsClique(in) && IsProper(in):
		return "proper clique"
	case IsClique(in):
		return "clique"
	case IsProper(in):
		return "proper"
	case IsLaminar(in):
		return "laminar"
	default:
		return "general"
	}
}
