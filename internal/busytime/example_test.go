package busytime_test

import (
	"fmt"

	"repro/internal/busytime"
	"repro/internal/core"
)

// ExampleGreedyTracking packs four interval jobs with g=2 using the paper's
// 3-approximation.
func ExampleGreedyTracking() {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 4},
		{ID: 1, Release: 0, Deadline: 4, Length: 4},
		{ID: 2, Release: 4, Deadline: 6, Length: 2},
		{ID: 3, Release: 4, Deadline: 6, Length: 2},
	}}
	s, err := busytime.GreedyTracking(in, busytime.GTOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	cost, _ := s.Cost(in)
	fmt.Printf("busy time %d on %d machines\n", cost, len(s.Bundles))
	// Output: busy time 6 on 1 machines
}

// ExamplePreemptiveUnbounded schedules a flexible job set exactly with
// Theorem 6's greedy (unbounded parallelism).
func ExamplePreemptiveUnbounded() {
	in := &core.Instance{G: 1, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 10, Length: 3},
		{ID: 1, Release: 2, Deadline: 6, Length: 2},
	}}
	s, err := busytime.PreemptiveUnbounded(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("busy time %d\n", s.Cost())
	// Output: busy time 3
}

// ExampleSolveFlexible runs the flexible-job pipeline of Section 4.3:
// span-minimizing conversion followed by an interval algorithm.
func ExampleSolveFlexible() {
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 8, Length: 3},
		{ID: 1, Release: 0, Deadline: 8, Length: 3},
		{ID: 2, Release: 1, Deadline: 9, Length: 3},
	}}
	s, err := busytime.SolveFlexible(in, busytime.HeuristicSpan{},
		func(i *core.Instance) (*core.BusySchedule, error) {
			return busytime.GreedyTracking(i, busytime.GTOptions{})
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := core.VerifyBusy(in, s); err != nil {
		fmt.Println(err)
		return
	}
	cost, _ := s.Cost(in)
	fmt.Printf("busy time %d\n", cost)
	// Output: busy time 6
}
