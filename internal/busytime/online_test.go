package busytime

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestOnlinePoliciesValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 60; trial++ {
		in := randIntervalInstance(rng, 10, 18, 3)
		exact, err := SolveExactInterval(in, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opt := scheduleCost(t, in, exact)
		for _, p := range []OnlinePolicy{OnlineFirstFit{}, OnlineBestFit{}} {
			s, err := Online(in, p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.Name(), err)
			}
			cost := scheduleCost(t, in, s)
			if cost < opt {
				t.Errorf("trial %d: %s beat the offline optimum (%d < %d)",
					trial, p.Name(), cost, opt)
			}
		}
	}
}

func TestOnlinePacksIdenticalJobsTogether(t *testing.T) {
	jobs := make([]core.Job, 4)
	for i := range jobs {
		jobs[i] = core.Job{ID: i, Release: 0, Deadline: 5, Length: 5}
	}
	in := &core.Instance{G: 4, Jobs: jobs}
	for _, p := range []OnlinePolicy{OnlineFirstFit{}, OnlineBestFit{}} {
		s, err := Online(in, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := scheduleCost(t, in, s); got != 5 {
			t.Errorf("%s: cost %d, want 5", p.Name(), got)
		}
		if len(s.Bundles) != 1 {
			t.Errorf("%s: %d machines, want 1", p.Name(), len(s.Bundles))
		}
	}
}

func TestOnlineBestFitPrefersOverlap(t *testing.T) {
	// A long job, then a short one inside it and a short one beyond it.
	// BestFit keeps the inside job with the long one even if another
	// machine is open.
	in := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 10, Length: 10},
		{ID: 1, Release: 0, Deadline: 10, Length: 10},
		{ID: 2, Release: 1, Deadline: 3, Length: 2}, // forces a second machine
		{ID: 3, Release: 4, Deadline: 6, Length: 2},
	}}
	s, err := Online(in, OnlineBestFit{})
	if err != nil {
		t.Fatal(err)
	}
	cost := scheduleCost(t, in, s)
	// BestFit: jobs 0,1 on M0; job 2 opens M1; job 3 joins M1 with zero...
	// M1 grows to cover [1,6)? No: M1 span [1,3) then adding [4,6) grows by
	// 2, same as a new machine, so it stays on M1 (growth 2 ties, earliest
	// index wins over opening a new machine).
	if cost > 10+5 {
		t.Errorf("BestFit cost %d unexpectedly high", cost)
	}
	if len(s.Bundles) != 2 {
		t.Errorf("BestFit used %d machines, want 2", len(s.Bundles))
	}
}

func TestOnlineRejectsFlexible(t *testing.T) {
	in := &core.Instance{G: 2, Jobs: []core.Job{{ID: 0, Release: 0, Deadline: 9, Length: 3}}}
	if _, err := Online(in, OnlineFirstFit{}); err != ErrNotInterval {
		t.Errorf("err = %v, want ErrNotInterval", err)
	}
}
