package busytime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Every interval algorithm produces a verifiable schedule whose cost sits
// between the best lower bound and its guarantee times the demand profile
// (a crude but universally valid upper envelope).
func TestQuickIntervalAlgorithmsSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randIntervalInstance(rng, 10, 18, 4)
		lb := BestLowerBound(in)
		dep := float64(DemandProfileBound(in))
		for name, algo := range map[string]IntervalAlgorithm{
			"ff": FirstFit,
			"gt": func(i *core.Instance) (*core.BusySchedule, error) {
				return GreedyTracking(i, GTOptions{})
			},
			"pc":  PairCover,
			"rel": GreedyByRelease,
		} {
			s, err := algo(in)
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			if core.VerifyBusy(in, s) != nil {
				return false
			}
			c, err := s.Cost(in)
			if err != nil {
				return false
			}
			if float64(c) < lb-1e-9 {
				return false // beat a lower bound: impossible
			}
			if name == "pc" && float64(c) > 2*dep+1e-9 {
				return false // PairCover's charging bound
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The span minimizers always return feasible starts, and more search effort
// never hurts.
func TestQuickSpanMinimizerMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randFlexInstance(rng, 8, 14, 3)
		starts1, span1, err := HeuristicSpan{MaxPasses: 1}.MinimizeSpan(in)
		if err != nil {
			return false
		}
		starts8, span8, err := HeuristicSpan{MaxPasses: 8}.MinimizeSpan(in)
		if err != nil {
			return false
		}
		for _, j := range in.Jobs {
			for _, starts := range []map[int]core.Time{starts1, starts8} {
				s := starts[j.ID]
				if s < j.Release || s+j.Length > j.Deadline {
					return false
				}
			}
		}
		return span8 <= span1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Preemption never costs more: the preemptive bounded solution is at most
// the cost of any non-preemptive schedule we can compute, and at least
// OPT_inf.
func TestQuickPreemptionHelps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randFlexInstance(rng, 8, 14, 3)
		pre, err := PreemptiveBounded(in)
		if err != nil || core.VerifyPreemptive(in, pre) != nil {
			return false
		}
		optInf, err := PreemptiveUnboundedValue(in)
		if err != nil {
			return false
		}
		if pre.Cost() < optInf {
			return false
		}
		// Against the nonpreemptive pipeline: preemptive 2-approx is within
		// a factor 2 of any nonpreemptive cost (cannot be wildly larger).
		np, err := SolveFlexible(in, HeuristicSpan{}, func(i *core.Instance) (*core.BusySchedule, error) {
			return GreedyTracking(i, GTOptions{})
		})
		if err != nil {
			return false
		}
		npCost, err := np.Cost(in)
		if err != nil {
			return false
		}
		return float64(pre.Cost()) <= 2*float64(npCost)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Dummy padding never changes the demand profile (the Appendix A
// observation PairCover relies on).
func TestQuickPaddingPreservesDemandProfile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randIntervalInstance(rng, 10, 18, 4)
		padded, _ := padToMultipleOfG(in)
		paddedIn := &core.Instance{G: in.G, Jobs: padded}
		return DemandProfileBound(in) == DemandProfileBound(paddedIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
