package busytime

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/intervals"
)

func randIntervalInstance(rng *rand.Rand, maxN, maxT, maxG int) *core.Instance {
	n := 1 + rng.Intn(maxN)
	jobs := make([]core.Job, n)
	for i := range jobs {
		r := core.Time(rng.Intn(maxT))
		p := 1 + core.Time(rng.Intn(maxT/2))
		jobs[i] = core.Job{ID: i, Release: r, Deadline: r + p, Length: p}
	}
	return &core.Instance{G: 1 + rng.Intn(maxG), Jobs: jobs}
}

func randFlexInstance(rng *rand.Rand, maxN, maxT, maxG int) *core.Instance {
	n := 1 + rng.Intn(maxN)
	jobs := make([]core.Job, n)
	for i := range jobs {
		r := core.Time(rng.Intn(maxT))
		p := 1 + core.Time(rng.Intn(4))
		slack := core.Time(rng.Intn(4))
		jobs[i] = core.Job{ID: i, Release: r, Deadline: r + p + slack, Length: p}
	}
	return &core.Instance{G: 1 + rng.Intn(maxG), Jobs: jobs}
}

func scheduleCost(t *testing.T, in *core.Instance, s *core.BusySchedule) core.Time {
	t.Helper()
	if err := core.VerifyBusy(in, s); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	c, err := s.Cost(in)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFirstFitRejectsFlexible(t *testing.T) {
	in := &core.Instance{G: 2, Jobs: []core.Job{{ID: 0, Release: 0, Deadline: 5, Length: 2}}}
	if _, err := FirstFit(in); err != ErrNotInterval {
		t.Errorf("err = %v, want ErrNotInterval", err)
	}
}

func TestFirstFitPacksIdenticalJobs(t *testing.T) {
	// g identical unit jobs must share one machine.
	jobs := make([]core.Job, 3)
	for i := range jobs {
		jobs[i] = core.Job{ID: i, Release: 0, Deadline: 1, Length: 1}
	}
	in := &core.Instance{G: 3, Jobs: jobs}
	s, err := FirstFit(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := scheduleCost(t, in, s); got != 1 {
		t.Errorf("cost = %d, want 1", got)
	}
	if len(s.Bundles) != 1 {
		t.Errorf("bundles = %d, want 1", len(s.Bundles))
	}
}

func TestGreedyTrackingInvariant(t *testing.T) {
	// Theorem 5 charging: cost <= Sp(J) + 2*mass/g.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		in := randIntervalInstance(rng, 12, 20, 4)
		for _, tie := range []intervals.TieBreak{intervals.TieBenign, intervals.TieAdversarial} {
			s, err := GreedyTracking(in, GTOptions{Tie: tie})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			cost := scheduleCost(t, in, s)
			bound := float64(SpanBound(in)) + 2*MassBound(in)
			if float64(cost) > bound+1e-9 {
				t.Errorf("trial %d: GT cost %d > Sp+2*mass/g = %v (instance %+v)",
					trial, cost, bound, in)
			}
		}
	}
}

func TestPairCoverInvariant(t *testing.T) {
	// Appendix A charging: cost <= 2 * demand profile.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 150; trial++ {
		in := randIntervalInstance(rng, 12, 20, 4)
		s, err := PairCover(in)
		if err != nil {
			t.Fatalf("trial %d: %v (instance %+v)", trial, err, in)
		}
		cost := scheduleCost(t, in, s)
		if dep := DemandProfileBound(in); cost > 2*dep {
			t.Errorf("trial %d: PairCover cost %d > 2*DeP %d (instance %+v)",
				trial, cost, 2*dep, in)
		}
	}
}

func TestExactIntervalAgainstBoundsAndHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		in := randIntervalInstance(rng, 7, 12, 3)
		exact, err := SolveExactInterval(in, ExactOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := scheduleCost(t, in, exact)
		if lb := BestLowerBound(in); float64(opt) < lb-1e-9 {
			t.Errorf("trial %d: exact %d below lower bound %v", trial, opt, lb)
		}
		ff, err := FirstFit(in)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := GreedyTracking(in, GTOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fc, err := PairCover(in)
		if err != nil {
			t.Fatal(err)
		}
		ffc, gtc, fcc := scheduleCost(t, in, ff), scheduleCost(t, in, gt), scheduleCost(t, in, fc)
		if ffc < opt || gtc < opt || fcc < opt {
			t.Errorf("trial %d: heuristic beat exact (ff=%d gt=%d fc=%d exact=%d) %+v",
				trial, ffc, gtc, fcc, opt, in)
		}
		if ffc > 4*opt {
			t.Errorf("trial %d: FirstFit %d > 4*OPT %d", trial, ffc, 4*opt)
		}
		if gtc > 3*opt {
			t.Errorf("trial %d: GreedyTracking %d > 3*OPT %d", trial, gtc, 3*opt)
		}
		if fcc > 2*opt {
			t.Errorf("trial %d: PairCover %d > 2*OPT %d", trial, fcc, 2*opt)
		}
	}
}

func TestExactFlexibleMatchesExactIntervalOnRigid(t *testing.T) {
	// Two independent exact searches must agree on interval instances.
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		in := randIntervalInstance(rng, 6, 10, 2)
		a, err := SolveExactInterval(in, ExactOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := SolveExactFlexible(in, ExactOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ca, cb := scheduleCost(t, in, a), scheduleCost(t, in, b)
		if ca != cb {
			t.Errorf("trial %d: interval exact %d != flexible exact %d (%+v)", trial, ca, cb, in)
		}
	}
}

func TestExactSpanMatchesSingleBundleExact(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 30; trial++ {
		in := randFlexInstance(rng, 5, 8, 2)
		_, span, err := ExactSpan{}.MinimizeSpan(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Unbounded-g busy time equals the minimal span.
		unb := in.Clone()
		unb.G = len(unb.Jobs)
		s, err := SolveExactFlexible(unb, ExactOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cost := scheduleCost(t, unb, s)
		if cost != span {
			t.Errorf("trial %d: exact span %d != unbounded busy %d (%+v)", trial, span, cost, in)
		}
	}
}

func TestHeuristicSpanUpperBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	worst := 1.0
	for trial := 0; trial < 60; trial++ {
		in := randFlexInstance(rng, 6, 9, 2)
		_, exact, err := ExactSpan{}.MinimizeSpan(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		starts, heur, err := HeuristicSpan{}.MinimizeSpan(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if heur < exact {
			t.Errorf("trial %d: heuristic %d beat exact %d (bug in exact)", trial, heur, exact)
		}
		for _, j := range in.Jobs {
			s := starts[j.ID]
			if s < j.Release || s+j.Length > j.Deadline {
				t.Errorf("trial %d: heuristic start %d outside window of %v", trial, s, j)
			}
		}
		if r := float64(heur) / float64(exact); r > worst {
			worst = r
		}
	}
	t.Logf("worst heuristic/exact span ratio observed: %.3f", worst)
}

func TestSolveFlexiblePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 40; trial++ {
		in := randFlexInstance(rng, 8, 12, 3)
		conv, span, err := Convert(in, HeuristicSpan{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := intervals.Span(conv.Jobs); got != span {
			t.Errorf("trial %d: converted span %d != reported %d", trial, got, span)
		}
		for _, algo := range []IntervalAlgorithm{
			FirstFit,
			func(i *core.Instance) (*core.BusySchedule, error) {
				return GreedyTracking(i, GTOptions{})
			},
			PairCover,
		} {
			s, err := SolveFlexible(in, HeuristicSpan{}, algo)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			// The schedule must be feasible for the ORIGINAL instance.
			cost := scheduleCost(t, in, s)
			if cost < span/2 {
				t.Errorf("trial %d: suspicious cost %d below half span %d", trial, cost, span)
			}
		}
		// Theorem 5 pipeline invariant with GreedyTracking.
		gts, err := SolveFlexible(in, HeuristicSpan{}, func(i *core.Instance) (*core.BusySchedule, error) {
			return GreedyTracking(i, GTOptions{})
		})
		if err != nil {
			t.Fatal(err)
		}
		cost := scheduleCost(t, in, gts)
		if float64(cost) > float64(span)+2*MassBound(in)+1e-9 {
			t.Errorf("trial %d: pipeline cost %d > span+2*mass/g", trial, cost)
		}
	}
}

func TestPreemptiveUnboundedExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 120; trial++ {
		in := randFlexInstance(rng, 8, 14, 3)
		s, err := PreemptiveUnbounded(in)
		if err != nil {
			t.Fatalf("trial %d: %v (instance %+v)", trial, err, in)
		}
		unb := in.Clone()
		unb.G = len(unb.Jobs) // verify against unlimited capacity
		if err := core.VerifyPreemptive(unb, s); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v (instance %+v)", trial, err, in)
		}
		want, err := PreemptiveUnboundedValue(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Cost(); got != want {
			t.Errorf("trial %d: Theorem 6 greedy = %d, difference-constraint OPT = %d (%+v)",
				trial, got, want, in)
		}
	}
}

func TestPreemptiveBoundedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		in := randFlexInstance(rng, 8, 14, 3)
		s, err := PreemptiveBounded(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.VerifyPreemptive(in, s); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v (instance %+v)", trial, err, in)
		}
		optInf, err := PreemptiveUnboundedValue(in)
		if err != nil {
			t.Fatal(err)
		}
		cost := s.Cost()
		if cost < optInf {
			t.Errorf("trial %d: bounded cost %d below OPT_inf %d", trial, cost, optInf)
		}
		// Theorem 7 charging: cost <= OPT_inf + mass/g.
		if float64(cost) > float64(optInf)+MassBound(in)+1e-9 {
			t.Errorf("trial %d: cost %d > OPT_inf %d + mass/g %v (instance %+v)",
				trial, cost, optInf, MassBound(in), in)
		}
	}
}

func TestDemandProfileBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 40; trial++ {
		in := randIntervalInstance(rng, 6, 10, 3)
		exact, err := SolveExactInterval(in, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opt := scheduleCost(t, in, exact)
		if dep := DemandProfileBound(in); dep > opt {
			t.Errorf("trial %d: DeP %d > OPT %d (%+v)", trial, dep, opt, in)
		}
	}
}

func TestTracksAreDisjointAndCoverAllJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := randIntervalInstance(rng, 15, 25, 3)
	tracks, err := Tracks(in, GTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var prevLen core.Time = 1 << 62
	for _, tr := range tracks {
		if l := intervals.Mass(tr); l > prevLen {
			t.Errorf("track lengths not non-increasing: %d after %d", l, prevLen)
		} else {
			prevLen = l
		}
		for i, j := range tr {
			if seen[j.ID] {
				t.Errorf("job %d in two tracks", j.ID)
			}
			seen[j.ID] = true
			if i > 0 && tr[i-1].Deadline > j.Release {
				t.Errorf("track not disjoint: %v", tr)
			}
		}
	}
	if len(seen) != len(in.Jobs) {
		t.Errorf("tracks cover %d of %d jobs", len(seen), len(in.Jobs))
	}
}
