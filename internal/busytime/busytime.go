// Package busytime implements the busy-time scheduling algorithms of Chang,
// Khuller and Mukherjee (SPAA 2014), Section 4 and the appendices: jobs are
// partitioned across an unbounded pool of machines, each machine may run at
// most g jobs concurrently, and the objective is the total time machines
// spend busy.
//
// Algorithms for interval (rigid) jobs:
//
//   - FirstFit      — the 4-approximation baseline of Flammini et al. [5];
//   - GreedyTracking — the paper's 3-approximation (Theorem 5): repeatedly
//     extract maximum-length tracks and bundle g of them per machine;
//   - PairCover     — a 2-approximation charging the demand profile, the
//     reconstruction of Alicherry-Bhatia [1] / Kumar-Rudra [11]
//     (Appendix A);
//   - SolveExactInterval — exact branch-and-bound baseline.
//
// Flexible jobs are handled by fixing start times with a span minimizer
// (the role of Khandekar et al.'s unbounded-g dynamic program [9]) and then
// running any interval algorithm; see Convert and SolveFlexible. The
// preemptive variants of Section 4.4 are PreemptiveUnbounded (exact,
// Theorem 6) and PreemptiveBounded (2-approximation, Theorem 7).
package busytime

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/intervals"
)

// ErrNotInterval is returned by interval-job algorithms when the instance
// contains flexible jobs.
var ErrNotInterval = errors.New("busytime: instance has flexible (non-interval) jobs")

func requireInterval(in *core.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if !in.AllInterval() {
		return ErrNotInterval
	}
	return nil
}

// MassBound returns the lower bound ℓ(J)/g of Observation 2, rounded up to
// the tick grid (any schedule's busy time is at least mass/g; busy times are
// integral on integral instances).
func MassBound(in *core.Instance) float64 {
	return float64(in.TotalLength()) / float64(in.G)
}

// SpanBound returns the lower bound of Observation 3 for interval jobs:
// OPT >= Sp(J). For flexible jobs the corresponding bound is the optimal
// unbounded-g span; see ExactSpanMin.
func SpanBound(in *core.Instance) core.Time {
	return intervals.Span(in.Jobs)
}

// DemandProfileBound returns the demand-profile lower bound of
// Observation 4 (valid for interval jobs).
func DemandProfileBound(in *core.Instance) core.Time {
	return intervals.NewDemandProfile(in.Jobs, in.G).Cost()
}

// BestLowerBound returns the strongest applicable lower bound for an
// interval instance.
func BestLowerBound(in *core.Instance) float64 {
	lb := MassBound(in)
	if s := float64(SpanBound(in)); s > lb {
		lb = s
	}
	if d := float64(DemandProfileBound(in)); d > lb {
		lb = d
	}
	return lb
}

// placeAtRelease turns bundles of interval jobs into a BusySchedule.
func placeAtRelease(bundles [][]core.Job) *core.BusySchedule {
	s := &core.BusySchedule{}
	for _, b := range bundles {
		if len(b) == 0 {
			continue
		}
		var pls []core.Placement
		for _, j := range b {
			pls = append(pls, core.Placement{JobID: j.ID, Start: j.Release})
		}
		s.Bundles = append(s.Bundles, core.Bundle{Placements: pls})
	}
	return s
}

// FirstFit is the greedy 4-approximation of Flammini et al. for interval
// jobs: consider jobs in non-increasing order of length and put each into
// the first bundle that can still run it without exceeding g concurrent
// jobs; open a new bundle if none can.
func FirstFit(in *core.Instance) (*core.BusySchedule, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Length != jobs[b].Length {
			return jobs[a].Length > jobs[b].Length
		}
		if jobs[a].Release != jobs[b].Release {
			return jobs[a].Release < jobs[b].Release
		}
		return jobs[a].ID < jobs[b].ID
	})
	var bundles [][]core.Job
	for _, j := range jobs {
		placed := false
		for bi := range bundles {
			if fitsBundle(bundles[bi], j, in.G) {
				bundles[bi] = append(bundles[bi], j)
				placed = true
				break
			}
		}
		if !placed {
			bundles = append(bundles, []core.Job{j})
		}
	}
	return placeAtRelease(bundles), nil
}

// fitsBundle reports whether adding interval job j keeps the bundle's
// concurrency within g.
func fitsBundle(bundle []core.Job, j core.Job, g int) bool {
	w := j.Window()
	ivs := make([]core.Interval, 0, len(bundle))
	for _, other := range bundle {
		if iv := other.Window().Intersect(w); !iv.Empty() {
			ivs = append(ivs, iv)
		}
	}
	return core.MaxConcurrency(ivs) < g
}

// GTOptions configures GreedyTracking.
type GTOptions struct {
	// Tie controls tie-breaking in maximum-track extraction; the Figure 6
	// gadget experiment uses TieAdversarial.
	Tie intervals.TieBreak
}

// GreedyTracking is the paper's 3-approximation for interval jobs
// (Algorithm 1 / Theorem 5): repeatedly extract a maximum-length track (a
// set of pairwise-disjoint jobs) from the remaining jobs and bundle every g
// consecutive tracks onto one machine.
func GreedyTracking(in *core.Instance, opts GTOptions) (*core.BusySchedule, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	remaining := make([]core.Job, len(in.Jobs))
	copy(remaining, in.Jobs)
	var bundles [][]core.Job
	track := 0
	for len(remaining) > 0 {
		tr, _ := intervals.MaxTrack(remaining, opts.Tie)
		if len(tr) == 0 {
			return nil, fmt.Errorf("busytime: empty track with %d jobs remaining", len(remaining))
		}
		bi := track / in.G
		if bi == len(bundles) {
			bundles = append(bundles, nil)
		}
		bundles[bi] = append(bundles[bi], tr...)
		remaining = removeJobs(remaining, tr)
		track++
	}
	return placeAtRelease(bundles), nil
}

// Tracks returns the tracks extracted by GreedyTracking in extraction order
// (exposed for experiments and tests).
func Tracks(in *core.Instance, opts GTOptions) ([][]core.Job, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	remaining := make([]core.Job, len(in.Jobs))
	copy(remaining, in.Jobs)
	var tracks [][]core.Job
	for len(remaining) > 0 {
		tr, _ := intervals.MaxTrack(remaining, opts.Tie)
		if len(tr) == 0 {
			break
		}
		tracks = append(tracks, tr)
		remaining = removeJobs(remaining, tr)
	}
	return tracks, nil
}

func removeJobs(jobs, gone []core.Job) []core.Job {
	drop := make(map[int]bool, len(gone))
	for _, j := range gone {
		drop[j.ID] = true
	}
	out := jobs[:0]
	for _, j := range jobs {
		if !drop[j.ID] {
			out = append(out, j)
		}
	}
	return out
}
