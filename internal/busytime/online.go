package busytime

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// OnlinePolicy decides, for a newly arrived interval job, which of the
// feasible open bundles receives it (or -1 to open a new bundle). The
// policy sees the job and the current bundles but not the future — the
// online busy-time model of Shalom et al. discussed in Section 1.3 of the
// paper, where any deterministic algorithm is at least g-competitive on
// general instances.
type OnlinePolicy interface {
	Choose(j core.Job, bundles [][]core.Job, g int) int
	Name() string
}

// OnlineFirstFit assigns each arriving job to the first bundle that stays
// within g.
type OnlineFirstFit struct{}

// Name implements OnlinePolicy.
func (OnlineFirstFit) Name() string { return "online-firstfit" }

// Choose implements OnlinePolicy.
func (OnlineFirstFit) Choose(j core.Job, bundles [][]core.Job, g int) int {
	for bi := range bundles {
		if fitsBundle(bundles[bi], j, g) {
			return bi
		}
	}
	return -1
}

// OnlineBestFit assigns each arriving job to the feasible bundle whose busy
// time grows the least (ties: lowest index), opening a new bundle only when
// none fits or every fit grows the span by the full job length anyway.
type OnlineBestFit struct{}

// Name implements OnlinePolicy.
func (OnlineBestFit) Name() string { return "online-bestfit" }

// Choose implements OnlinePolicy.
func (OnlineBestFit) Choose(j core.Job, bundles [][]core.Job, g int) int {
	best, bestGrowth := -1, j.Length+1
	for bi := range bundles {
		if !fitsBundle(bundles[bi], j, g) {
			continue
		}
		ivs := make([]core.Interval, 0, len(bundles[bi])+1)
		for _, o := range bundles[bi] {
			ivs = append(ivs, o.Window())
		}
		before := core.UnionMeasure(ivs)
		after := core.UnionMeasure(append(ivs, j.Window()))
		if growth := after - before; growth < bestGrowth {
			best, bestGrowth = bi, growth
		}
	}
	return best
}

// Online runs an online policy over the interval jobs in arrival order
// (non-decreasing release time, ties by ID — the adversary fixes the order
// through the IDs). The resulting schedule is feasible for the offline
// instance; its cost measures the policy's competitive performance.
func Online(in *core.Instance, policy OnlinePolicy) (*core.BusySchedule, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Release != jobs[b].Release {
			return jobs[a].Release < jobs[b].Release
		}
		return jobs[a].ID < jobs[b].ID
	})
	var bundles [][]core.Job
	for _, j := range jobs {
		bi := policy.Choose(j, bundles, in.G)
		if bi < 0 {
			bundles = append(bundles, []core.Job{j})
			continue
		}
		if bi >= len(bundles) || !fitsBundle(bundles[bi], j, in.G) {
			return nil, fmt.Errorf("busytime: policy %s chose invalid bundle %d for %v",
				policy.Name(), bi, j)
		}
		bundles[bi] = append(bundles[bi], j)
	}
	return placeAtRelease(bundles), nil
}
