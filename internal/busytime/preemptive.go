package busytime

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// PreemptiveUnbounded implements the exact greedy of Theorem 6 for
// preemptive busy time with unbounded parallelism (g treated as infinite):
// repeatedly take the earliest remaining deadline d, let ℓ be the longest
// remaining length among jobs due at d, open ℓ units of not-yet-open time
// walking left from d, and schedule every live job maximally inside the
// newly opened time. The result is returned on a single machine; verify it
// against an instance clone with G >= n.
//
// On integral instances the optimal value also equals the difference-
// constraint bound computed by PreemptiveUnboundedValue, and tests assert
// the two agree (an independent exactness check).
func PreemptiveUnbounded(in *core.Instance) (*core.PreemptiveSchedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	rem := make(map[int]core.Time, len(in.Jobs))
	for _, j := range in.Jobs {
		rem[j.ID] = j.Length
	}
	var opened []core.Interval // kept merged
	var pieces []core.Piece
	for {
		// Earliest deadline among unfinished jobs.
		var d core.Time
		var lmax core.Time
		found := false
		for _, j := range in.Jobs {
			if rem[j.ID] <= 0 {
				continue
			}
			if !found || j.Deadline < d {
				d, lmax, found = j.Deadline, rem[j.ID], true
			} else if j.Deadline == d && rem[j.ID] > lmax {
				lmax = rem[j.ID]
			}
		}
		if !found {
			break
		}
		newOpen := openLeftFrom(opened, d, lmax)
		if measure(newOpen) < lmax {
			return nil, fmt.Errorf("busytime: cannot open %d units before deadline %d (bug or infeasible input)", lmax, d)
		}
		// Schedule every unfinished job maximally inside the new segments.
		for _, j := range in.Jobs {
			r := rem[j.ID]
			if r <= 0 {
				continue
			}
			avail := clip(newOpen, j.Window())
			for _, iv := range avail {
				if r <= 0 {
					break
				}
				take := iv.Len()
				if take > r {
					take = r
				}
				pieces = append(pieces, core.Piece{JobID: j.ID, Span: core.Interval{Start: iv.Start, End: iv.Start + take}})
				r -= take
			}
			rem[j.ID] = r
		}
		// Every job due at d must now be complete (Theorem 6 invariant).
		for _, j := range in.Jobs {
			if j.Deadline == d && rem[j.ID] > 0 {
				return nil, fmt.Errorf("busytime: job %v unfinished at its deadline (bug)", j)
			}
		}
		opened = core.MergeIntervals(append(opened, newOpen...))
	}
	sort.Slice(pieces, func(a, b int) bool {
		if pieces[a].Span.Start != pieces[b].Span.Start {
			return pieces[a].Span.Start < pieces[b].Span.Start
		}
		return pieces[a].JobID < pieces[b].JobID
	})
	return &core.PreemptiveSchedule{Machines: []core.PreemptiveMachine{{Pieces: pieces}}}, nil
}

// openLeftFrom collects up to amount units of not-yet-open time walking left
// from deadline d.
func openLeftFrom(opened []core.Interval, d, amount core.Time) []core.Interval {
	free := core.SubtractIntervals([]core.Interval{{Start: 0, End: d}}, opened)
	var out []core.Interval
	for i := len(free) - 1; i >= 0 && amount > 0; i-- {
		iv := free[i]
		take := iv.Len()
		if take > amount {
			iv.Start = iv.End - amount
			take = amount
		}
		out = append(out, iv)
		amount -= take
	}
	// Chronological order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func measure(ivs []core.Interval) core.Time {
	var m core.Time
	for _, iv := range ivs {
		m += iv.Len()
	}
	return m
}

func clip(ivs []core.Interval, w core.Interval) []core.Interval {
	var out []core.Interval
	for _, iv := range ivs {
		if x := iv.Intersect(w); !x.Empty() {
			out = append(out, x)
		}
	}
	return out
}

// PreemptiveUnboundedValue returns the optimal preemptive unbounded-g busy
// time of an integral instance by an independent method: with g unbounded
// the problem is exactly "open a minimum-measure set of unit slots such
// that every job's window contains at least p_j open slots", a difference-
// constraint system solved by longest paths (S_t = open measure in [0,t);
// S_{d_j} - S_{r_j} >= p_j, 0 <= S_t - S_{t-1} <= 1).
func PreemptiveUnboundedValue(in *core.Instance) (core.Time, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	T := int(in.Horizon())
	const negInf = int64(-1) << 60
	dist := make([]int64, T+1)
	for t := 1; t <= T; t++ {
		dist[t] = negInf
	}
	relax := func() bool {
		changed := false
		for t := 1; t <= T; t++ {
			if dist[t-1] > dist[t] {
				dist[t] = dist[t-1]
				changed = true
			}
		}
		for t := T; t >= 1; t-- {
			if dist[t] != negInf && dist[t]-1 > dist[t-1] {
				dist[t-1] = dist[t] - 1
				changed = true
			}
		}
		for _, j := range in.Jobs {
			if dist[j.Release] != negInf && dist[j.Release]+j.Length > dist[j.Deadline] {
				dist[j.Deadline] = dist[j.Release] + j.Length
				changed = true
			}
		}
		return changed
	}
	for iter := 0; relax(); iter++ {
		if iter > T+len(in.Jobs)+2 {
			return 0, fmt.Errorf("busytime: difference constraints diverge (infeasible input)")
		}
	}
	return dist[T], nil
}

// PreemptiveBounded implements the 2-approximation of Theorem 7 for
// preemptive busy time with bounded g: compute the exact unbounded solution
// S_inf (Theorem 6), split its busy region at every piece endpoint, and for
// each elementary interval deal its n(I) active jobs onto ceil(n(I)/g)
// machines. At most one machine per interval is below capacity, so
//
//	cost <= OPT_inf + ℓ(J)/g <= 2·OPT ,
//
// an invariant the tests assert.
func PreemptiveBounded(in *core.Instance) (*core.PreemptiveSchedule, error) {
	sInf, err := PreemptiveUnbounded(in)
	if err != nil {
		return nil, err
	}
	pieces := sInf.Machines[0].Pieces
	// Elementary boundaries: all piece endpoints.
	boundSet := make(map[core.Time]bool)
	for _, p := range pieces {
		boundSet[p.Span.Start] = true
		boundSet[p.Span.End] = true
	}
	bounds := make([]core.Time, 0, len(boundSet))
	for t := range boundSet {
		bounds = append(bounds, t)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	var machines []core.PreemptiveMachine
	ensure := func(k int) {
		for len(machines) <= k {
			machines = append(machines, core.PreemptiveMachine{})
		}
	}
	for k := 0; k+1 < len(bounds); k++ {
		iv := core.Interval{Start: bounds[k], End: bounds[k+1]}
		var active []int
		for _, p := range pieces {
			if p.Span.Start <= iv.Start && p.Span.End >= iv.End {
				active = append(active, p.JobID)
			}
		}
		if len(active) == 0 {
			continue
		}
		sort.Ints(active)
		for i, id := range active {
			m := i / in.G
			ensure(m)
			machines[m].Pieces = append(machines[m].Pieces, core.Piece{JobID: id, Span: iv})
		}
	}
	// Coalesce adjacent pieces of the same job on the same machine.
	for mi := range machines {
		machines[mi].Pieces = coalescePieces(machines[mi].Pieces)
	}
	return &core.PreemptiveSchedule{Machines: machines}, nil
}

func coalescePieces(pieces []core.Piece) []core.Piece {
	sort.Slice(pieces, func(a, b int) bool {
		if pieces[a].JobID != pieces[b].JobID {
			return pieces[a].JobID < pieces[b].JobID
		}
		return pieces[a].Span.Start < pieces[b].Span.Start
	})
	var out []core.Piece
	for _, p := range pieces {
		if n := len(out); n > 0 && out[n-1].JobID == p.JobID && out[n-1].Span.End == p.Span.Start {
			out[n-1].Span.End = p.Span.End
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Span.Start != out[b].Span.Start {
			return out[a].Span.Start < out[b].Span.Start
		}
		return out[a].JobID < out[b].JobID
	})
	return out
}
