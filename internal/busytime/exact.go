package busytime

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// ExactOptions bounds the exact busy-time searches.
type ExactOptions struct {
	// MaxNodes caps branch-and-bound nodes (default 5e6).
	MaxNodes int64
}

// SolveExactInterval computes an optimal busy-time schedule for interval
// jobs by branch and bound over job-to-bundle assignments (with first-new-
// bundle symmetry breaking), for small instances. It warm-starts from
// GreedyTracking and prunes with the uncovered-span bound: every remaining
// job must be busy somewhere, so the final cost is at least the current
// cost plus the measure of the remaining jobs' span not yet covered by any
// bundle.
func SolveExactInterval(in *core.Instance, opts ExactOptions) (*core.BusySchedule, error) {
	if err := requireInterval(in); err != nil {
		return nil, err
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 5_000_000
	}
	warm, err := GreedyTracking(in, GTOptions{})
	if err != nil {
		return nil, err
	}
	warmCost, err := warm.Cost(in)
	if err != nil {
		return nil, err
	}
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Release != jobs[b].Release {
			return jobs[a].Release < jobs[b].Release
		}
		return jobs[a].ID < jobs[b].ID
	})
	lb := core.Time(0)
	if d := DemandProfileBound(in); d > lb {
		lb = d
	}
	s := &bundleSearch{
		g:        in.G,
		jobs:     jobs,
		best:     warmCost,
		bestSol:  warm,
		lb:       lb,
		maxNodes: maxNodes,
	}
	s.dfs(0, nil)
	if s.nodesExceeded {
		return nil, fmt.Errorf("busytime: exact interval search exceeded %d nodes", maxNodes)
	}
	return s.bestSol, nil
}

type bundleSearch struct {
	g             int
	jobs          []core.Job
	best          core.Time
	bestSol       *core.BusySchedule
	lb            core.Time
	nodes         int64
	maxNodes      int64
	nodesExceeded bool
}

func (s *bundleSearch) dfs(idx int, bundles [][]core.Job) {
	if s.nodesExceeded || s.best <= s.lb {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.nodesExceeded = true
		return
	}
	cost := bundlesCost(bundles)
	if cost+s.uncovered(idx, bundles) >= s.best {
		return
	}
	if idx == len(s.jobs) {
		s.best = cost
		s.bestSol = placeAtRelease(cloneBundles(bundles))
		return
	}
	j := s.jobs[idx]
	for bi := range bundles {
		if fitsBundle(bundles[bi], j, s.g) {
			bundles[bi] = append(bundles[bi], j)
			s.dfs(idx+1, bundles)
			bundles[bi] = bundles[bi][:len(bundles[bi])-1]
		}
	}
	// Symmetry breaking: at most one fresh bundle.
	bundles = append(bundles, []core.Job{j})
	s.dfs(idx+1, bundles)
}

// uncovered lower-bounds the extra busy time the remaining jobs must add:
// the part of their span no current bundle already covers.
func (s *bundleSearch) uncovered(idx int, bundles [][]core.Job) core.Time {
	var remaining []core.Interval
	for _, j := range s.jobs[idx:] {
		remaining = append(remaining, j.Window())
	}
	if len(remaining) == 0 {
		return 0
	}
	var covered []core.Interval
	for _, b := range bundles {
		for _, j := range b {
			covered = append(covered, j.Window())
		}
	}
	return core.UnionMeasure(core.SubtractIntervals(remaining, covered))
}

func bundlesCost(bundles [][]core.Job) core.Time {
	var total core.Time
	for _, b := range bundles {
		ivs := make([]core.Interval, 0, len(b))
		for _, j := range b {
			ivs = append(ivs, j.Window())
		}
		total += core.UnionMeasure(ivs)
	}
	return total
}

func cloneBundles(bundles [][]core.Job) [][]core.Job {
	out := make([][]core.Job, len(bundles))
	for i, b := range bundles {
		out[i] = append([]core.Job(nil), b...)
	}
	return out
}

// SolveExactFlexible computes an optimal non-preemptive busy-time schedule
// for flexible jobs by exhaustive search over integral start times and
// bundle assignments. Exponential; intended for tiny instances as an
// experimental baseline. When g >= n only a single bundle is explored
// (merging bundles can never hurt with unlimited capacity), which makes it
// double as an exact unbounded-g span optimizer.
func SolveExactFlexible(in *core.Instance, opts ExactOptions) (*core.BusySchedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 5_000_000
	}
	jobs := make([]core.Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	sort.Slice(jobs, func(a, b int) bool {
		sa, sb := jobs[a].WindowLen()-jobs[a].Length, jobs[b].WindowLen()-jobs[b].Length
		if sa != sb {
			return sa < sb
		}
		return jobs[a].ID < jobs[b].ID
	})
	s := &flexSearch{g: in.G, jobs: jobs, maxNodes: maxNodes, best: -1, singleBundle: in.G >= len(in.Jobs)}
	s.dfs(0, nil)
	if s.nodesExceeded {
		return nil, fmt.Errorf("busytime: exact flexible search exceeded %d nodes", maxNodes)
	}
	if s.bestSol == nil {
		return nil, fmt.Errorf("busytime: exact flexible search found no schedule (bug)")
	}
	return s.bestSol, nil
}

type flexSearch struct {
	g             int
	jobs          []core.Job
	best          core.Time // -1 until a solution is found
	bestSol       *core.BusySchedule
	nodes         int64
	maxNodes      int64
	nodesExceeded bool
	singleBundle  bool
}

type flexPlacement struct {
	job    core.Job
	iv     core.Interval
	bundle int
}

func (s *flexSearch) dfs(idx int, placed []flexPlacement) {
	if s.nodesExceeded {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.nodesExceeded = true
		return
	}
	cost := s.cost(placed)
	if s.best >= 0 && cost >= s.best {
		return
	}
	if idx == len(s.jobs) {
		s.best = cost
		sched := &core.BusySchedule{}
		nb := 0
		for _, p := range placed {
			if p.bundle+1 > nb {
				nb = p.bundle + 1
			}
		}
		sched.Bundles = make([]core.Bundle, nb)
		for _, p := range placed {
			sched.Bundles[p.bundle].Placements = append(sched.Bundles[p.bundle].Placements,
				core.Placement{JobID: p.job.ID, Start: p.iv.Start})
		}
		s.bestSol = sched
		return
	}
	j := s.jobs[idx]
	numBundles := 0
	for _, p := range placed {
		if p.bundle+1 > numBundles {
			numBundles = p.bundle + 1
		}
	}
	maxBundle := numBundles // allow one new bundle
	if s.singleBundle {
		maxBundle = 0
	}
	for st := j.Release; st <= j.LatestStart(); st++ {
		iv := core.Interval{Start: st, End: st + j.Length}
		for b := 0; b <= maxBundle; b++ {
			if !s.fits(placed, iv, b) {
				continue
			}
			s.dfs(idx+1, append(placed, flexPlacement{j, iv, b}))
		}
	}
}

func (s *flexSearch) fits(placed []flexPlacement, iv core.Interval, bundle int) bool {
	var ivs []core.Interval
	for _, p := range placed {
		if p.bundle == bundle {
			if x := p.iv.Intersect(iv); !x.Empty() {
				ivs = append(ivs, x)
			}
		}
	}
	return core.MaxConcurrency(ivs) < s.g
}

func (s *flexSearch) cost(placed []flexPlacement) core.Time {
	byBundle := map[int][]core.Interval{}
	for _, p := range placed {
		byBundle[p.bundle] = append(byBundle[p.bundle], p.iv)
	}
	var total core.Time
	for _, ivs := range byBundle {
		total += core.UnionMeasure(ivs)
	}
	return total
}
