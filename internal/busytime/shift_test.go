package busytime

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestShiftInvariance checks that no algorithm's cost depends on absolute
// time: translating every window by a constant leaves busy times unchanged.
func TestShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const delta = core.Time(137)
	for trial := 0; trial < 30; trial++ {
		in := randIntervalInstance(rng, 9, 16, 3)
		shifted := in.Clone().Shift(delta)
		costOf := func(in *core.Instance, algo IntervalAlgorithm) core.Time {
			s, err := algo(in)
			if err != nil {
				t.Fatal(err)
			}
			return scheduleCost(t, in, s)
		}
		for name, algo := range map[string]IntervalAlgorithm{
			"firstfit": FirstFit,
			"greedytracking": func(i *core.Instance) (*core.BusySchedule, error) {
				return GreedyTracking(i, GTOptions{})
			},
			"paircover": PairCover,
			"byrelease": GreedyByRelease,
			"exact": func(i *core.Instance) (*core.BusySchedule, error) {
				return SolveExactInterval(i, ExactOptions{})
			},
			"online-ff": func(i *core.Instance) (*core.BusySchedule, error) {
				return Online(i, OnlineFirstFit{})
			},
		} {
			a, b := costOf(in, algo), costOf(shifted, algo)
			if a != b {
				t.Errorf("trial %d: %s not shift-invariant: %d vs %d", trial, name, a, b)
			}
		}
		// Lower bounds shift too.
		if DemandProfileBound(in) != DemandProfileBound(shifted) {
			t.Errorf("trial %d: demand profile not shift-invariant", trial)
		}
		if SpanBound(in) != SpanBound(shifted) {
			t.Errorf("trial %d: span not shift-invariant", trial)
		}
	}
}

// TestShiftInvariancePreemptive covers the preemptive algorithms, whose
// left-walk from deadlines could plausibly leak absolute positions.
func TestShiftInvariancePreemptive(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const delta = core.Time(211)
	for trial := 0; trial < 30; trial++ {
		in := randFlexInstance(rng, 9, 16, 3)
		shifted := in.Clone().Shift(delta)
		a, err := PreemptiveBounded(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PreemptiveBounded(shifted)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cost() != b.Cost() {
			t.Errorf("trial %d: PreemptiveBounded not shift-invariant: %d vs %d",
				trial, a.Cost(), b.Cost())
		}
		va, err := PreemptiveUnboundedValue(in)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := PreemptiveUnboundedValue(shifted)
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Errorf("trial %d: PreemptiveUnboundedValue not shift-invariant: %d vs %d",
				trial, va, vb)
		}
	}
}
