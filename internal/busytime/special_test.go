package busytime

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func properInstance(rng *rand.Rand, n, g int) *core.Instance {
	jobs := make([]core.Job, n)
	r, d := core.Time(0), core.Time(2+rng.Intn(5))
	for i := range jobs {
		jobs[i] = core.Job{ID: i, Release: r, Deadline: d, Length: d - r}
		r += core.Time(1 + rng.Intn(3))
		d += core.Time(1 + rng.Intn(3))
		if d <= r {
			d = r + 1
		}
	}
	return &core.Instance{G: g, Jobs: jobs}
}

func cliqueInstance(rng *rand.Rand, n, g int) *core.Instance {
	jobs := make([]core.Job, n)
	mid := core.Time(20)
	for i := range jobs {
		l := core.Time(rng.Intn(10)) + 1
		rgt := core.Time(rng.Intn(10)) + 1
		jobs[i] = core.Job{ID: i, Release: mid - l, Deadline: mid + rgt, Length: l + rgt}
	}
	return &core.Instance{G: g, Jobs: jobs}
}

func TestClassifiers(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p := properInstance(rng, 8, 2)
	if !IsProper(p) {
		t.Error("proper instance not classified proper")
	}
	c := cliqueInstance(rng, 8, 2)
	if !IsClique(c) {
		t.Error("clique instance not classified clique")
	}
	nested := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 10, Length: 10},
		{ID: 1, Release: 2, Deadline: 5, Length: 3},
	}}
	if IsProper(nested) {
		t.Error("nested windows classified proper")
	}
	if !IsLaminar(nested) {
		t.Error("nested windows not laminar")
	}
	crossing := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 6, Length: 6},
		{ID: 1, Release: 3, Deadline: 9, Length: 6},
	}}
	if IsLaminar(crossing) {
		t.Error("crossing windows classified laminar")
	}
	if got := SpecialCase(nested); got != "clique" {
		// Both windows share [2,5), so the clique label wins.
		t.Errorf("SpecialCase(nested) = %q, want clique", got)
	}
	laminarOnly := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 10, Length: 10},
		{ID: 1, Release: 0, Deadline: 4, Length: 4},
		{ID: 2, Release: 6, Deadline: 10, Length: 4},
	}}
	if got := SpecialCase(laminarOnly); got != "laminar" {
		t.Errorf("SpecialCase(laminarOnly) = %q, want laminar", got)
	}
	identical := &core.Instance{G: 2, Jobs: []core.Job{
		{ID: 0, Release: 0, Deadline: 4, Length: 4},
		{ID: 1, Release: 0, Deadline: 4, Length: 4},
	}}
	if !IsProper(identical) {
		t.Error("identical windows must count as proper")
	}
}

// TestGreedyByReleaseOnProper checks the footnote-1 claim: the
// release-order greedy is 2-approximate on proper instances.
func TestGreedyByReleaseOnProper(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 60; trial++ {
		in := properInstance(rng, 2+rng.Intn(8), 1+rng.Intn(3))
		if !IsProper(in) {
			t.Fatal("generator broke properness")
		}
		s, err := GreedyByRelease(in)
		if err != nil {
			t.Fatal(err)
		}
		cost := scheduleCost(t, in, s)
		exact, err := SolveExactInterval(in, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opt := scheduleCost(t, in, exact)
		if cost > 2*opt {
			t.Errorf("trial %d: GreedyByRelease %d > 2*OPT %d on proper instance %+v",
				trial, cost, 2*opt, in)
		}
	}
}

// TestCliqueGreedyOnClique checks the footnote-1 claim for cliques: filling
// machines g at a time, longest first, is 2-approximate.
func TestCliqueGreedyOnClique(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 60; trial++ {
		in := cliqueInstance(rng, 2+rng.Intn(8), 1+rng.Intn(3))
		if !IsClique(in) {
			t.Fatal("generator broke clique property")
		}
		s, err := CliqueGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		cost := scheduleCost(t, in, s)
		exact, err := SolveExactInterval(in, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opt := scheduleCost(t, in, exact)
		if cost > 2*opt {
			t.Errorf("trial %d: CliqueGreedy %d > 2*OPT %d on clique instance %+v",
				trial, cost, 2*opt, in)
		}
	}
}

func TestGreedyByReleaseRejectsFlexible(t *testing.T) {
	in := &core.Instance{G: 2, Jobs: []core.Job{{ID: 0, Release: 0, Deadline: 9, Length: 2}}}
	if _, err := GreedyByRelease(in); err != ErrNotInterval {
		t.Errorf("err = %v, want ErrNotInterval", err)
	}
	if _, err := CliqueGreedy(in); err != ErrNotInterval {
		t.Errorf("err = %v, want ErrNotInterval", err)
	}
}
