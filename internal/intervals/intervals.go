// Package intervals provides the interval geometry used throughout the
// busy-time algorithms: span and mass of job sets (Definitions 9-10 of the
// paper), interesting intervals and the demand profile lower bound
// (Definitions 11-13, Observation 4), proper subsets (the Q_i extraction in
// the proof of Theorem 5), and maximum-length track extraction via weighted
// interval scheduling (Definition 14).
package intervals

import (
	"sort"

	"repro/internal/core"
)

// Span returns the span of a set of interval jobs: the measure of the
// projection of their execution intervals onto the time axis (Definition 10
// generalized to sets).
func Span(jobs []core.Job) core.Time {
	ivs := make([]core.Interval, 0, len(jobs))
	for _, j := range jobs {
		ivs = append(ivs, j.Window())
	}
	return core.UnionMeasure(ivs)
}

// Mass returns the total length ℓ(S) of the jobs.
func Mass(jobs []core.Job) core.Time {
	var m core.Time
	for _, j := range jobs {
		m += j.Length
	}
	return m
}

// Boundaries returns the sorted distinct endpoints (releases and deadlines)
// of the jobs' windows.
func Boundaries(jobs []core.Job) []core.Time {
	set := make(map[core.Time]bool, 2*len(jobs))
	for _, j := range jobs {
		set[j.Release] = true
		set[j.Deadline] = true
	}
	out := make([]core.Time, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// InterestingInterval is a maximal interval within which no job begins or
// ends (Definition 12), annotated with its raw demand |A(I)| (the number of
// interval jobs active throughout it).
type InterestingInterval struct {
	Span      core.Interval
	RawDemand int
}

// InterestingIntervals computes the interesting intervals of a set of
// interval jobs, including zero-demand gaps between the first release and
// the last deadline. There are at most 2n-1 of them.
func InterestingIntervals(jobs []core.Job) []InterestingInterval {
	bounds := Boundaries(jobs)
	if len(bounds) < 2 {
		return nil
	}
	out := make([]InterestingInterval, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		iv := core.Interval{Start: bounds[i], End: bounds[i+1]}
		demand := 0
		for _, j := range jobs {
			if j.Release <= iv.Start && j.Deadline >= iv.End {
				demand++
			}
		}
		out = append(out, InterestingInterval{Span: iv, RawDemand: demand})
	}
	return out
}

// DemandProfile is the demand profile DeP(J) of Definition 13: the
// interesting intervals with their demands D(I) = ceil(|A(I)|/g).
type DemandProfile struct {
	G         int
	Intervals []InterestingInterval
}

// NewDemandProfile computes the demand profile of a set of interval jobs.
func NewDemandProfile(jobs []core.Job, g int) DemandProfile {
	return DemandProfile{G: g, Intervals: InterestingIntervals(jobs)}
}

// Demand returns D(I) = ceil(raw/g) for interval index i.
func (dp DemandProfile) Demand(i int) int {
	return ceilDiv(dp.Intervals[i].RawDemand, dp.G)
}

// Cost returns the demand-profile lower bound sum_i D(I_i) * |I_i|
// (Observation 4): no feasible busy-time schedule of the interval jobs can
// be cheaper.
func (dp DemandProfile) Cost() core.Time {
	var total core.Time
	for i, iv := range dp.Intervals {
		total += core.Time(dp.Demand(i)) * iv.Span.Len()
	}
	return total
}

// MaxDemand returns the maximum demand over the profile.
func (dp DemandProfile) MaxDemand() int {
	max := 0
	for i := range dp.Intervals {
		if d := dp.Demand(i); d > max {
			max = d
		}
	}
	return max
}

func ceilDiv(a, g int) int {
	if a <= 0 {
		return 0
	}
	return (a + g - 1) / g
}

// ProperSubset implements the extraction used in the proof of Theorem 5:
// given a bundle of interval jobs, it returns a subset Q with the same span
// such that at most two jobs of Q are live at any point in time. The paper
// charges Sp(B_i) <= ℓ(Q_i) <= 2 ℓ(T*) with this subset.
func ProperSubset(jobs []core.Job) []core.Job {
	if len(jobs) == 0 {
		return nil
	}
	// Drop jobs whose window is contained in another's; the remainder is a
	// "proper" instance sorted by release with strictly increasing deadlines.
	proper := ProperJobs(jobs)
	var out []core.Job
	i := 0
	for i < len(proper) {
		last := i
		if len(out) > 0 {
			dmax := out[len(out)-1].Deadline
			// Jobs live at dmax form a prefix of the remainder (releases are
			// sorted); pick the one with the latest deadline, i.e. the last.
			found := false
			for k := i; k < len(proper) && proper[k].Release < dmax; k++ {
				last = k
				found = true
			}
			if !found {
				last = i // gap in coverage: restart from the earliest job
			}
		}
		out = append(out, proper[last])
		i = last + 1
	}
	return out
}

// ProperJobs removes every job whose window is contained in another job's
// window and returns the rest sorted by release time (ties: longer first).
// The result is a "proper" instance: if r_j < r_i then d_j <= d_i.
func ProperJobs(jobs []core.Job) []core.Job {
	sorted := make([]core.Job, len(jobs))
	copy(sorted, jobs)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Release != sorted[b].Release {
			return sorted[a].Release < sorted[b].Release
		}
		return sorted[a].Deadline > sorted[b].Deadline
	})
	var out []core.Job
	var dmax core.Time
	first := true
	for _, j := range sorted {
		if !first && j.Deadline <= dmax {
			continue // contained in a previously kept job's window
		}
		out = append(out, j)
		dmax = j.Deadline
		first = false
	}
	return out
}

// MaxLiveOverlap returns the maximum number of the jobs' windows sharing a
// common point (used by tests to check the two-live property of
// ProperSubset).
func MaxLiveOverlap(jobs []core.Job) int {
	ivs := make([]core.Interval, 0, len(jobs))
	for _, j := range jobs {
		ivs = append(ivs, j.Window())
	}
	return core.MaxConcurrency(ivs)
}

// TieBreak selects among equally long tracks during extraction.
type TieBreak int

const (
	// TieBenign prefers excluding a job on ties, yielding tracks with fewer,
	// longer jobs.
	TieBenign TieBreak = iota
	// TieAdversarial prefers including a job on ties, yielding tracks with
	// many short jobs; the Figure 6 gadget uses it to drive GreedyTracking
	// toward its worst case.
	TieAdversarial
)

// MaxTrack returns a maximum-length track of the given interval jobs: a set
// of pairwise-disjoint jobs maximizing total length (Definition 14), found
// by the classical weighted-interval-scheduling dynamic program. The second
// return value is the track's total length.
func MaxTrack(jobs []core.Job, tb TieBreak) ([]core.Job, core.Time) {
	n := len(jobs)
	if n == 0 {
		return nil, 0
	}
	sorted := make([]core.Job, n)
	copy(sorted, jobs)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Deadline != sorted[b].Deadline {
			return sorted[a].Deadline < sorted[b].Deadline
		}
		return sorted[a].Release < sorted[b].Release
	})
	// pred[k]: the largest index i < k with sorted[i].Deadline <=
	// sorted[k].Release, or -1.
	pred := make([]int, n)
	ends := make([]core.Time, n)
	for i, j := range sorted {
		ends[i] = j.Deadline
	}
	for k, j := range sorted {
		lo, hi := 0, k // search in [0,k)
		for lo < hi {
			mid := (lo + hi) / 2
			if ends[mid] <= j.Release {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		pred[k] = lo - 1
	}
	dp := make([]core.Time, n+1)
	take := make([]bool, n+1)
	for k := 1; k <= n; k++ {
		skip := dp[k-1]
		with := sorted[k-1].Length
		if pred[k-1] >= 0 {
			with += dp[pred[k-1]+1]
		}
		switch {
		case with > skip:
			dp[k], take[k] = with, true
		case with == skip && tb == TieAdversarial:
			dp[k], take[k] = with, true
		default:
			dp[k], take[k] = skip, false
		}
	}
	var track []core.Job
	for k := n; k > 0; {
		if take[k] {
			track = append(track, sorted[k-1])
			k = pred[k-1] + 1
		} else {
			k--
		}
	}
	// Reverse into chronological order.
	for i, j := 0, len(track)-1; i < j; i, j = i+1, j-1 {
		track[i], track[j] = track[j], track[i]
	}
	return track, dp[n]
}
